package lsm

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"crdbserverless/internal/randutil"
)

// acceleratedOptions is the full-acceleration configuration the cache and
// property tests run under: aggressive value separation plus both caches.
func acceleratedOptions() Options {
	return Options{
		ValueThreshold:  16,
		VlogFileSize:    1 << 10,
		BlockCacheBytes: 32 << 10,
		HotKeyCacheSize: 64,
	}
}

// A repeated Get must hit the hot cache, and a write to the key must
// invalidate it: the very next read sees the new value, never the cached one.
func TestHotCacheWriteAfterHitInvalidates(t *testing.T) {
	e := New(acceleratedOptions())
	defer e.Close()
	if err := e.Set([]byte("k"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if v, _, _ := e.Get([]byte("k")); string(v) != "v1" { // fill
		t.Fatalf("first read = %q", v)
	}
	if v, _, _ := e.Get([]byte("k")); string(v) != "v1" { // hit
		t.Fatalf("second read = %q", v)
	}
	if hits := e.Metrics().HotCacheHits; hits == 0 {
		t.Fatal("repeat read did not hit the hot cache")
	}

	// Write-after-cache-hit: the stale-read check the issue demands.
	if err := e.Set([]byte("k"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := e.Get([]byte("k")); err != nil || !ok || string(v) != "v2" {
		t.Fatalf("read after overwrite = %q ok=%v err=%v (stale cache?)", v, ok, err)
	}

	// Deletion must invalidate too, and the not-found result is cacheable.
	if err := e.Delete([]byte("k")); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := e.Get([]byte("k")); ok {
		t.Fatal("deleted key still visible (stale cache?)")
	}
	if _, ok, _ := e.Get([]byte("k")); ok {
		t.Fatal("deleted key visible on cached re-read")
	}
}

// A fill computed before a concurrent write's epoch bump must be rejected:
// the write may already have invalidated the key, and inserting afterwards
// would resurrect the stale value.
func TestHotCacheStaleFillRejected(t *testing.T) {
	hc := newHotCache(8)
	var epoch atomic.Uint64
	epoch.Store(5)

	hc.addHot([]byte("k"), []byte("stale"), true, 4, &epoch) // probe predates epoch 5
	if hc.len() != 0 {
		t.Fatal("stale fill accepted")
	}
	hc.addHot([]byte("k"), []byte("fresh"), true, 5, &epoch)
	if v, ok, hit := hc.get([]byte("k")); !hit || !ok || string(v) != "fresh" {
		t.Fatalf("current-epoch fill rejected: %q %v %v", v, ok, hit)
	}
}

// The hot cache is bounded: filling past capacity evicts in LRU order.
func TestHotCacheBoundedLRU(t *testing.T) {
	hc := newHotCache(2)
	var epoch atomic.Uint64
	hc.addHot([]byte("a"), []byte("1"), true, 0, &epoch)
	hc.addHot([]byte("b"), []byte("2"), true, 0, &epoch)
	hc.get([]byte("a")) // a is now most recently used
	hc.addHot([]byte("c"), []byte("3"), true, 0, &epoch)
	if hc.len() != 2 {
		t.Fatalf("cache over capacity: %d", hc.len())
	}
	if _, _, hit := hc.get([]byte("b")); hit {
		t.Fatal("LRU victim b survived")
	}
	if _, _, hit := hc.get([]byte("a")); !hit {
		t.Fatal("recently-used a evicted")
	}
}

// Repeated point reads of compacted data must serve block decodes from the
// block cache.
func TestBlockCacheServesRepeatReads(t *testing.T) {
	opts := acceleratedOptions()
	opts.HotKeyCacheSize = 0 // isolate the block cache
	opts.DisableAutoCompactions = true
	e := New(opts)
	defer e.Close()
	for i := 0; i < 200; i++ {
		if err := e.Set([]byte(fmt.Sprintf("k%04d", i)), bigVal(fmt.Sprintf("v%04d-", i), 64)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	e.Compact()

	if v, ok, _ := e.Get([]byte("k0100")); !ok || !bytes.Equal(v, bigVal("v0100-", 64)) {
		t.Fatalf("first read = %d bytes ok=%v", len(v), ok)
	}
	m1 := e.Metrics()
	if m1.BlockCacheMisses == 0 {
		t.Fatal("first read recorded no block-cache miss")
	}
	if v, ok, _ := e.Get([]byte("k0100")); !ok || !bytes.Equal(v, bigVal("v0100-", 64)) {
		t.Fatalf("second read = %d bytes ok=%v", len(v), ok)
	}
	m2 := e.Metrics()
	if m2.BlockCacheHits <= m1.BlockCacheHits {
		t.Fatal("repeat read did not hit the block cache")
	}
}

// Compaction retiring a table must drop its blocks from the cache; the cached
// data of live tables survives.
func TestBlockCacheInvalidatedOnCompaction(t *testing.T) {
	opts := acceleratedOptions()
	opts.HotKeyCacheSize = 0
	opts.DisableAutoCompactions = true
	e := New(opts)
	defer e.Close()
	for i := 0; i < 100; i++ {
		e.Set([]byte(fmt.Sprintf("k%04d", i)), bigVal("gen1-", 64))
	}
	e.Flush()
	e.Compact()
	// Warm the cache against the current table set.
	for i := 0; i < 100; i += 10 {
		e.Get([]byte(fmt.Sprintf("k%04d", i)))
	}
	if e.blockCache.len() == 0 {
		t.Fatal("cache not warmed")
	}
	// Overwrite and compact again: the old tables retire and their blocks go.
	for i := 0; i < 100; i++ {
		e.Set([]byte(fmt.Sprintf("k%04d", i)), bigVal("gen2-", 64))
	}
	e.Flush()
	e.Compact()
	e.mu.RLock()
	live := map[uint64]bool{}
	for lvl := 0; lvl < numLevels; lvl++ {
		for _, tbl := range e.mu.levels[lvl] {
			live[tbl.id] = true
		}
	}
	e.mu.RUnlock()
	for i := range e.blockCache.shards {
		s := &e.blockCache.shards[i]
		s.mu.Lock()
		for k := range s.items {
			if !live[k.tableID] {
				s.mu.Unlock()
				t.Fatalf("retired table %d still cached", k.tableID)
			}
		}
		s.mu.Unlock()
	}
	// Reads after the turnover see gen2 only.
	if v, ok, _ := e.Get([]byte("k0010")); !ok || !bytes.Equal(v, bigVal("gen2-", 64)) {
		t.Fatalf("post-compaction read = %d bytes ok=%v", len(v), ok)
	}
}

// Block-cache eviction is deterministic strict LRU per shard and never
// exceeds the byte budget.
func TestBlockCacheDeterministicEviction(t *testing.T) {
	run := func() []int {
		bc := newBlockCache(8 * 256) // 256 bytes per shard
		for i := 0; i < 64; i++ {
			bc.addBlock(uint64(i), 0, []Entry{{Key: []byte{byte(i)}}}, 100)
		}
		var present []int
		for i := 0; i < 64; i++ {
			if _, ok := bc.get(uint64(i), 0); ok {
				present = append(present, i)
			}
		}
		return present
	}
	a, b := run(), run()
	if len(a) == 0 || len(a) >= 64 {
		t.Fatalf("eviction did not bound the cache: %d blocks live", len(a))
	}
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("eviction not deterministic: %v vs %v", a, b)
	}
	var bytesLive int64
	bc := newBlockCache(8 * 256)
	for i := 0; i < 64; i++ {
		bc.addBlock(uint64(i), 0, nil, 100)
	}
	for i := range bc.shards {
		s := &bc.shards[i]
		s.mu.Lock()
		if s.curB > s.capB {
			t.Fatalf("shard %d over budget: %d > %d", i, s.curB, s.capB)
		}
		bytesLive += s.curB
		s.mu.Unlock()
	}
	if bytesLive > 8*256 {
		t.Fatalf("cache over total budget: %d", bytesLive)
	}
}

// Randomized-interleave property test of the fully accelerated engine (value
// separation + both caches) against a shadow map, with forced flushes,
// compactions, and value-log GC rounds mixed into the op stream. Values
// straddle the separation threshold so both storage paths are exercised.
func TestRandomizedOpsWithSeparationAndCaches(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		opts := acceleratedOptions()
		opts.MemTableSize = 512
		opts.L0CompactionThreshold = 2
		opts.Seed = seed
		e := New(opts)
		rng := randutil.NewRand(seed)
		shadow := map[string]string{}
		key := func() []byte { return []byte(fmt.Sprintf("key-%03d", rng.Intn(200))) }
		value := func(op int) []byte {
			if rng.Intn(2) == 0 {
				return bigVal(fmt.Sprintf("big-%d-", op), 24+rng.Intn(64)) // separated
			}
			return []byte(fmt.Sprintf("v%d", op)) // inline
		}
		for op := 0; op < 2000; op++ {
			switch rng.Intn(11) {
			case 0, 1, 2, 3: // set
				k, v := key(), value(op)
				if err := e.Set(k, v); err != nil {
					t.Fatal(err)
				}
				shadow[string(k)] = string(v)
			case 4: // delete
				k := key()
				if err := e.Delete(k); err != nil {
					t.Fatal(err)
				}
				delete(shadow, string(k))
			case 5: // flush
				if err := e.Flush(); err != nil {
					t.Fatal(err)
				}
			case 6: // manual compaction (includes a GC pass)
				if op%7 == 0 {
					e.Compact()
				}
			case 7: // forced value-log GC round
				e.VlogGC()
			case 8: // scan a window and cross-check the shadow map
				lo := fmt.Sprintf("key-%03d", rng.Intn(200))
				hi := fmt.Sprintf("key-%03d", rng.Intn(200))
				if lo > hi {
					lo, hi = hi, lo
				}
				seen := map[string]string{}
				for it := e.NewIter([]byte(lo), []byte(hi)); it.Valid(); it.Next() {
					seen[string(it.Key())] = string(it.Value())
				}
				for k, want := range shadow {
					if k >= lo && k < hi {
						if got, ok := seen[k]; !ok || got != want {
							t.Fatalf("seed %d op %d: scan[%s,%s) missing %s (got %q ok=%v)",
								seed, op, lo, hi, k, got, ok)
						}
					}
				}
				for k, got := range seen {
					if want, ok := shadow[k]; !ok || want != got {
						t.Fatalf("seed %d op %d: scan surfaced %s=%q, shadow %q ok=%v",
							seed, op, k, got, want, ok)
					}
				}
			default: // get
				k := key()
				v, ok, err := e.Get(k)
				if err != nil {
					t.Fatal(err)
				}
				want, inShadow := shadow[string(k)]
				if ok != inShadow || (ok && string(v) != want) {
					t.Fatalf("seed %d op %d: Get(%s) = %q %v, shadow %q %v",
						seed, op, k, v, ok, want, inShadow)
				}
			}
		}
		for i := 0; i < 200; i++ {
			k := fmt.Sprintf("key-%03d", i)
			v, ok, err := e.Get([]byte(k))
			if err != nil {
				t.Fatal(err)
			}
			want, inShadow := shadow[k]
			if ok != inShadow || (ok && string(v) != want) {
				t.Fatalf("seed %d sweep: %s = %q %v, shadow %q %v", seed, k, v, ok, want, inShadow)
			}
		}
		e.Close()
	}
}

// Concurrent readers and writers against the fully accelerated engine while
// a dedicated goroutine forces value-log GC rounds; under -race this is the
// lock-discipline test for the vlog and both caches, and the final state must
// match what the writers wrote.
func TestConcurrentReadersWritersWithVlogGC(t *testing.T) {
	opts := acceleratedOptions()
	opts.MemTableSize = 512
	opts.L0CompactionThreshold = 2
	e := New(opts)
	defer e.Close()

	const writers, readers, perWriter = 4, 3, 120
	var writerWg, readerWg, gcWg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		readerWg.Add(1)
		go func(r int) {
			defer readerWg.Done()
			rng := randutil.NewRand(int64(1000 + r))
			for {
				select {
				case <-stop:
					return
				default:
				}
				w := rng.Intn(writers)
				i := rng.Intn(perWriter)
				if v, ok, err := e.Get([]byte(fmt.Sprintf("w%d-%04d", w, i))); err != nil {
					t.Error(err)
					return
				} else if ok && len(v) == 0 {
					t.Errorf("empty value for w%d-%04d", w, i)
					return
				}
			}
		}(r)
	}
	gcWg.Add(1)
	go func() {
		defer gcWg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				e.VlogGC()
			}
		}
	}()
	for w := 0; w < writers; w++ {
		writerWg.Add(1)
		go func(w int) {
			defer writerWg.Done()
			for i := 0; i < perWriter; i++ {
				k := []byte(fmt.Sprintf("w%d-%04d", w, i))
				v := bigVal(fmt.Sprintf("val-%d-%d-", w, i), 48) // above threshold
				if err := e.Set(k, v); err != nil {
					t.Error(err)
					return
				}
				if i%2 == 1 { // churn: overwrite to generate dead vlog bytes
					if err := e.Set(k, bigVal(fmt.Sprintf("ovr-%d-%d-", w, i), 48)); err != nil {
						t.Error(err)
						return
					}
				}
				if i%10 == 9 {
					if err := e.Flush(); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { writerWg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("concurrent load did not finish")
	}
	close(stop)
	readerWg.Wait()
	gcWg.Wait()

	e.Compact()
	e.VlogGC()
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			k := fmt.Sprintf("w%d-%04d", w, i)
			var want []byte
			if i%2 == 1 {
				want = bigVal(fmt.Sprintf("ovr-%d-%d-", w, i), 48)
			} else {
				want = bigVal(fmt.Sprintf("val-%d-%d-", w, i), 48)
			}
			if v, ok, _ := e.Get([]byte(k)); !ok || !bytes.Equal(v, want) {
				t.Fatalf("%s = %d bytes %v, want %d bytes", k, len(v), ok, len(want))
			}
		}
	}
}
