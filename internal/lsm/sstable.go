package lsm

import (
	"bytes"
	"fmt"
	"sort"
)

// Entry is a single key-value record. A tombstone marks a deletion that
// shadows older versions of the key in lower levels until compacted away.
type Entry struct {
	Key       []byte
	Value     []byte
	Tombstone bool
}

// size returns the approximate on-disk footprint of the entry.
func (e Entry) size() int64 { return int64(len(e.Key) + len(e.Value) + 16) }

// ssTable is an immutable sorted run of entries. In a disk-backed engine this
// would be a file of blocks; here it is an in-memory sorted slice, which
// preserves every property the system above cares about (sorted immutable
// runs, per-level overlap invariants, compaction byte accounting).
type ssTable struct {
	id      uint64
	entries []Entry
	sizeB   int64
	minKey  []byte
	maxKey  []byte
	filter  *bloomFilter
}

func newSSTable(id uint64, entries []Entry) *ssTable {
	t := &ssTable{id: id, entries: entries, filter: newBloomFilter(entries)}
	for _, e := range entries {
		t.sizeB += e.size()
	}
	if len(entries) > 0 {
		t.minKey = entries[0].Key
		t.maxKey = entries[len(entries)-1].Key
	}
	return t
}

// get returns the entry for key, if present in this table.
func (t *ssTable) get(key []byte) (Entry, bool) {
	i := sort.Search(len(t.entries), func(i int) bool {
		return bytes.Compare(t.entries[i].Key, key) >= 0
	})
	if i < len(t.entries) && bytes.Equal(t.entries[i].Key, key) {
		return t.entries[i], true
	}
	return Entry{}, false
}

// seekIdx returns the index of the first entry with key >= target.
func (t *ssTable) seekIdx(target []byte) int {
	return sort.Search(len(t.entries), func(i int) bool {
		return bytes.Compare(t.entries[i].Key, target) >= 0
	})
}

// overlaps reports whether the table's key range intersects [lo, hi]. A nil
// hi means +infinity; a nil lo means -infinity.
func (t *ssTable) overlaps(lo, hi []byte) bool {
	if len(t.entries) == 0 {
		return false
	}
	if hi != nil && bytes.Compare(t.minKey, hi) > 0 {
		return false
	}
	if lo != nil && bytes.Compare(t.maxKey, lo) < 0 {
		return false
	}
	return true
}

func (t *ssTable) String() string {
	return fmt.Sprintf("sst-%d[%q,%q] %dB", t.id, t.minKey, t.maxKey, t.sizeB)
}

// mergeRuns merges sorted runs into a single sorted run. Runs earlier in the
// slice take precedence for duplicate keys (they are newer). If dropTombstones
// is set, tombstones are elided from the output (valid only when merging into
// the bottommost level).
func mergeRuns(runs [][]Entry, dropTombstones bool) []Entry {
	type cursor struct {
		run []Entry
		idx int
	}
	cursors := make([]cursor, len(runs))
	for i, r := range runs {
		cursors[i] = cursor{run: r}
	}
	var out []Entry
	for {
		best := -1
		for i := range cursors {
			c := &cursors[i]
			if c.idx >= len(c.run) {
				continue
			}
			if best == -1 || bytes.Compare(c.run[c.idx].Key, cursors[best].run[cursors[best].idx].Key) < 0 {
				best = i
			}
		}
		if best == -1 {
			break
		}
		e := cursors[best].run[cursors[best].idx]
		cursors[best].idx++
		// Skip older duplicates in other runs.
		for i := range cursors {
			c := &cursors[i]
			for c.idx < len(c.run) && bytes.Equal(c.run[c.idx].Key, e.Key) {
				c.idx++
			}
		}
		if e.Tombstone && dropTombstones {
			continue
		}
		out = append(out, e)
	}
	return out
}
