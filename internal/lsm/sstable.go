package lsm

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
)

// Entry is a single key-value record. A tombstone marks a deletion that
// shadows older versions of the key in lower levels until compacted away.
// When vptr is set, Value holds an encoded valuePointer into the value log
// instead of the value itself; the flag travels opaquely through memtables,
// sstables, and compactions, and is resolved only at the read boundary.
type Entry struct {
	Key       []byte
	Value     []byte
	Tombstone bool
	vptr      bool
}

// size returns the approximate on-disk footprint of the entry.
func (e Entry) size() int64 { return int64(len(e.Key) + len(e.Value) + 16) }

// Block encoding: entries are packed into ~blockTargetBytes segments of
// [flags u8][keyLen u32][valLen u32][key][val], with a per-table index of
// each block's first key. A point read touches one block; the block cache
// stores decoded blocks keyed by (tableID, blockIdx) so a hot block is
// decoded once.
const (
	blockTargetBytes   = 2048
	entryFlagTombstone = 1 << 0
	entryFlagVptr      = 1 << 1
)

// ssTable is an immutable sorted run stored as encoded blocks. In a
// disk-backed engine the blocks would live in a file; here they are
// in-memory byte slices, which preserves every property the system above
// cares about (sorted immutable runs, per-level overlap invariants, block
// decode cost on the read path, compaction byte accounting).
type ssTable struct {
	id         uint64
	blocks     [][]byte
	firstKeys  [][]byte // firstKeys[i] = first key of blocks[i]
	numEntries int
	sizeB      int64
	minKey     []byte
	maxKey     []byte
	filter     *bloomFilter
}

func newSSTable(id uint64, entries []Entry) *ssTable {
	t := &ssTable{id: id, numEntries: len(entries), filter: newBloomFilter(entries)}
	var block []byte
	var blockFirst []byte
	flush := func() {
		if len(block) > 0 {
			t.blocks = append(t.blocks, block)
			t.firstKeys = append(t.firstKeys, blockFirst)
			block, blockFirst = nil, nil
		}
	}
	for _, e := range entries {
		if blockFirst == nil {
			blockFirst = e.Key
		}
		block = appendEntry(block, e)
		t.sizeB += e.size()
		if len(block) >= blockTargetBytes {
			flush()
		}
	}
	flush()
	if len(entries) > 0 {
		t.minKey = entries[0].Key
		t.maxKey = entries[len(entries)-1].Key
	}
	return t
}

func appendEntry(b []byte, e Entry) []byte {
	var flags byte
	if e.Tombstone {
		flags |= entryFlagTombstone
	}
	if e.vptr {
		flags |= entryFlagVptr
	}
	var hdr [9]byte
	hdr[0] = flags
	binary.BigEndian.PutUint32(hdr[1:5], uint32(len(e.Key)))
	binary.BigEndian.PutUint32(hdr[5:9], uint32(len(e.Value)))
	b = append(b, hdr[:]...)
	b = append(b, e.Key...)
	b = append(b, e.Value...)
	return b
}

// decodeBlock parses one encoded block. The returned entries alias the block
// buffer (immutable); callers clone before handing bytes to users.
func decodeBlock(b []byte) []Entry {
	var out []Entry
	for off := 0; off < len(b); {
		flags := b[off]
		keyLen := int(binary.BigEndian.Uint32(b[off+1 : off+5]))
		valLen := int(binary.BigEndian.Uint32(b[off+5 : off+9]))
		keyStart := off + 9
		valStart := keyStart + keyLen
		out = append(out, Entry{
			Key:       b[keyStart:valStart],
			Value:     b[valStart : valStart+valLen],
			Tombstone: flags&entryFlagTombstone != 0,
			vptr:      flags&entryFlagVptr != 0,
		})
		off = valStart + valLen
	}
	return out
}

// blockFor returns the index of the block that could contain key, or -1.
func (t *ssTable) blockFor(key []byte) int {
	// First block whose firstKey is > key, minus one.
	i := sort.Search(len(t.firstKeys), func(i int) bool {
		return bytes.Compare(t.firstKeys[i], key) > 0
	})
	return i - 1
}

// blockEntries returns the decoded entries of block i, consulting bc when
// non-nil. Cache fills (and the evictions they trigger) happen inside bc;
// callers on a locked path pass nil.
func (t *ssTable) blockEntries(i int, bc *blockCache) (ents []Entry, cached bool) {
	if bc != nil {
		if ents, ok := bc.get(t.id, i); ok {
			return ents, true
		}
	}
	ents = decodeBlock(t.blocks[i])
	if bc != nil {
		bc.addBlock(t.id, i, ents, int64(len(t.blocks[i])))
	}
	return ents, false
}

// get returns the entry for key, if present in this table. bc, when non-nil,
// serves and fills the block cache; hit/miss accounting is the caller's
// (only unlocked point-read paths pass a cache).
func (t *ssTable) get(key []byte, bc *blockCache) (Entry, bool) {
	bi := t.blockFor(key)
	if bi < 0 {
		return Entry{}, false
	}
	ents, _ := t.blockEntries(bi, bc)
	i := sort.Search(len(ents), func(i int) bool {
		return bytes.Compare(ents[i].Key, key) >= 0
	})
	if i < len(ents) && bytes.Equal(ents[i].Key, key) {
		return ents[i], true
	}
	return Entry{}, false
}

// getCounting is get with block-cache hit/miss accounting against rm.
func (t *ssTable) getCounting(key []byte, bc *blockCache, rm *ReadMetrics) (Entry, bool) {
	if bc == nil {
		return t.get(key, nil)
	}
	bi := t.blockFor(key)
	if bi < 0 {
		return Entry{}, false
	}
	ents, cached := t.blockEntries(bi, bc)
	if cached {
		rm.BlockCacheHits.Inc(1)
	} else {
		rm.BlockCacheMisses.Inc(1)
	}
	i := sort.Search(len(ents), func(i int) bool {
		return bytes.Compare(ents[i].Key, key) >= 0
	})
	if i < len(ents) && bytes.Equal(ents[i].Key, key) {
		return ents[i], true
	}
	return Entry{}, false
}

// entries decodes the whole table in key order (compaction input, scans).
func (t *ssTable) entries() []Entry {
	out := make([]Entry, 0, t.numEntries)
	for _, b := range t.blocks {
		out = append(out, decodeBlock(b)...)
	}
	return out
}

// rangeEntries decodes only the blocks overlapping [lo, hi) and returns the
// entries inside the bounds. A nil bound is unbounded on that side.
func (t *ssTable) rangeEntries(lo, hi []byte) []Entry {
	start := 0
	if lo != nil {
		if start = t.blockFor(lo); start < 0 {
			start = 0
		}
	}
	var out []Entry
	for bi := start; bi < len(t.blocks); bi++ {
		if hi != nil && bytes.Compare(t.firstKeys[bi], hi) >= 0 {
			break
		}
		for _, e := range decodeBlock(t.blocks[bi]) {
			if lo != nil && bytes.Compare(e.Key, lo) < 0 {
				continue
			}
			if hi != nil && bytes.Compare(e.Key, hi) >= 0 {
				return out
			}
			out = append(out, e)
		}
	}
	return out
}

// overlaps reports whether the table's key range intersects [lo, hi]. A nil
// hi means +infinity; a nil lo means -infinity.
func (t *ssTable) overlaps(lo, hi []byte) bool {
	if t.numEntries == 0 {
		return false
	}
	if hi != nil && bytes.Compare(t.minKey, hi) > 0 {
		return false
	}
	if lo != nil && bytes.Compare(t.maxKey, lo) < 0 {
		return false
	}
	return true
}

// sortSearchTables returns the index of the one table in a sorted,
// non-overlapping (L1+) level that can contain key, or -1.
func sortSearchTables(tables []*ssTable, key []byte) int {
	i := sort.Search(len(tables), func(i int) bool {
		return bytes.Compare(tables[i].maxKey, key) >= 0
	})
	if i >= len(tables) || bytes.Compare(tables[i].minKey, key) > 0 {
		return -1
	}
	return i
}

func (t *ssTable) String() string {
	return fmt.Sprintf("sst-%d[%q,%q] %dB", t.id, t.minKey, t.maxKey, t.sizeB)
}

// mergeRuns merges sorted runs into a single sorted run. Runs earlier in the
// slice take precedence for duplicate keys (they are newer). If dropTombstones
// is set, tombstones are elided from the output (valid only when merging into
// the bottommost level). onDrop, when non-nil, observes every entry the merge
// discards — shadowed older versions and bottommost tombstones — so the
// caller can report value-log discard stats for them.
func mergeRuns(runs [][]Entry, dropTombstones bool, onDrop func(Entry)) []Entry {
	type cursor struct {
		run []Entry
		idx int
	}
	cursors := make([]cursor, len(runs))
	for i, r := range runs {
		cursors[i] = cursor{run: r}
	}
	var out []Entry
	for {
		best := -1
		for i := range cursors {
			c := &cursors[i]
			if c.idx >= len(c.run) {
				continue
			}
			if best == -1 || bytes.Compare(c.run[c.idx].Key, cursors[best].run[cursors[best].idx].Key) < 0 {
				best = i
			}
		}
		if best == -1 {
			break
		}
		e := cursors[best].run[cursors[best].idx]
		cursors[best].idx++
		// Skip older duplicates in other runs.
		for i := range cursors {
			c := &cursors[i]
			for c.idx < len(c.run) && bytes.Equal(c.run[c.idx].Key, e.Key) {
				if onDrop != nil {
					onDrop(c.run[c.idx])
				}
				c.idx++
			}
		}
		if e.Tombstone && dropTombstones {
			if onDrop != nil {
				onDrop(e)
			}
			continue
		}
		out = append(out, e)
	}
	return out
}
