// Package lsm implements a log-structured merge tree storage engine in the
// style of Pebble (§5.1.3 of the paper): an in-memory memtable backed by a
// write-ahead log, a level 0 of possibly-overlapping immutable runs, and
// levels 1..6 of non-overlapping runs maintained by compaction.
//
// The engine exposes the instrumentation that CockroachDB's admission control
// derives write capacity from: flush throughput, compaction throughput, and
// the L0 file/backlog state that drives read amplification.
package lsm

import (
	"bytes"
	"math/rand"
)

const maxSkipLevel = 12

type skipNode struct {
	key   []byte
	entry Entry
	next  [maxSkipLevel]*skipNode
}

// memTable is a skiplist-based ordered map from key to Entry. It is not
// internally synchronized; the Engine serializes access.
type memTable struct {
	head   *skipNode
	level  int
	rng    *rand.Rand
	count  int
	sizeB  int64 // approximate bytes of keys+values
	maxKey []byte
	minKey []byte
	// firstSeg is the lowest WAL segment holding this memtable's entries
	// (durable engines only). The manifest records the minimum across the
	// active and immutable memtables; recovery replays the WAL from there.
	firstSeg uint64
}

func newMemTable(rng *rand.Rand) *memTable {
	return &memTable{head: &skipNode{}, level: 1, rng: rng}
}

func (m *memTable) randomLevel() int {
	lvl := 1
	for lvl < maxSkipLevel && m.rng.Intn(4) == 0 {
		lvl++
	}
	return lvl
}

// set inserts or overwrites the entry for key. On overwrite it returns the
// replaced entry, so the caller can report a discarded value-log pointer.
func (m *memTable) set(e Entry) (Entry, bool) {
	var update [maxSkipLevel]*skipNode
	x := m.head
	for i := m.level - 1; i >= 0; i-- {
		for x.next[i] != nil && bytes.Compare(x.next[i].key, e.Key) < 0 {
			x = x.next[i]
		}
		update[i] = x
	}
	if n := x.next[0]; n != nil && bytes.Equal(n.key, e.Key) {
		old := n.entry
		m.sizeB += int64(len(e.Value) - len(old.Value))
		n.entry = e
		return old, true
	}
	lvl := m.randomLevel()
	if lvl > m.level {
		for i := m.level; i < lvl; i++ {
			update[i] = m.head
		}
		m.level = lvl
	}
	n := &skipNode{key: e.Key, entry: e}
	for i := 0; i < lvl; i++ {
		n.next[i] = update[i].next[i]
		update[i].next[i] = n
	}
	m.count++
	m.sizeB += int64(len(e.Key) + len(e.Value) + 16)
	if m.minKey == nil || bytes.Compare(e.Key, m.minKey) < 0 {
		m.minKey = e.Key
	}
	if m.maxKey == nil || bytes.Compare(e.Key, m.maxKey) > 0 {
		m.maxKey = e.Key
	}
	return Entry{}, false
}

// get returns the entry for key, if present.
func (m *memTable) get(key []byte) (Entry, bool) {
	x := m.head
	for i := m.level - 1; i >= 0; i-- {
		for x.next[i] != nil && bytes.Compare(x.next[i].key, key) < 0 {
			x = x.next[i]
		}
	}
	if n := x.next[0]; n != nil && bytes.Equal(n.key, key) {
		return n.entry, true
	}
	return Entry{}, false
}

// seek returns the first node with key >= target.
func (m *memTable) seek(target []byte) *skipNode {
	x := m.head
	for i := m.level - 1; i >= 0; i-- {
		for x.next[i] != nil && bytes.Compare(x.next[i].key, target) < 0 {
			x = x.next[i]
		}
	}
	return x.next[0]
}

// entries returns all entries in key order.
func (m *memTable) entries() []Entry {
	out := make([]Entry, 0, m.count)
	for n := m.head.next[0]; n != nil; n = n.next[0] {
		out = append(out, n.entry)
	}
	return out
}

func (m *memTable) empty() bool { return m.count == 0 }
