package lsm

import (
	"bytes"
	"fmt"
	"testing"

	"crdbserverless/internal/faultinject"
)

// bigVal returns a value of n bytes whose content encodes tag, so misdirected
// pointer resolution is caught by content checks, not just lengths.
func bigVal(tag string, n int) []byte {
	b := make([]byte, 0, n)
	for len(b) < n {
		b = append(b, tag...)
	}
	return b[:n]
}

// Values at or above the threshold must round-trip through the value log —
// across the memtable, a flush, and a compaction — while smaller values stay
// inline.
func TestValueSeparationRoundTrip(t *testing.T) {
	e := New(Options{ValueThreshold: 32, DisableAutoCompactions: true})
	defer e.Close()

	big := bigVal("big-a-", 64)
	small := []byte("inline")
	if err := e.Set([]byte("big"), big); err != nil {
		t.Fatal(err)
	}
	if err := e.Set([]byte("small"), small); err != nil {
		t.Fatal(err)
	}
	m := e.Metrics()
	if m.VlogWrites != 1 {
		t.Fatalf("VlogWrites = %d, want 1 (only the large value separates)", m.VlogWrites)
	}

	check := func(stage string) {
		t.Helper()
		if v, ok, err := e.Get([]byte("big")); err != nil || !ok || !bytes.Equal(v, big) {
			t.Fatalf("%s: Get(big) = %d bytes, ok=%v, err=%v", stage, len(v), ok, err)
		}
		if v, ok, err := e.Get([]byte("small")); err != nil || !ok || !bytes.Equal(v, small) {
			t.Fatalf("%s: Get(small) = %q, ok=%v, err=%v", stage, v, ok, err)
		}
		it := e.NewIter(nil, nil)
		got := map[string]string{}
		for ; it.Valid(); it.Next() {
			got[string(it.Key())] = string(it.Value())
		}
		if got["big"] != string(big) || got["small"] != string(small) {
			t.Fatalf("%s: scan resolved wrong values: big=%d bytes small=%q",
				stage, len(got["big"]), got["small"])
		}
	}
	check("memtable")
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	check("L0")
	e.Compact()
	check("compacted")
}

// GC must reclaim at least half the dead value bytes once compaction has
// reported the discards, without losing a single live value.
func TestVlogGCReclaimsDeadBytes(t *testing.T) {
	e := New(Options{
		ValueThreshold:         16,
		VlogFileSize:           1 << 10,
		DisableAutoCompactions: true,
	})
	defer e.Close()

	const keys, valLen = 64, 100
	for i := 0; i < keys; i++ {
		if err := e.Set([]byte(fmt.Sprintf("k%03d", i)), bigVal(fmt.Sprintf("g1-%03d-", i), valLen)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < keys; i++ {
		if err := e.Set([]byte(fmt.Sprintf("k%03d", i)), bigVal(fmt.Sprintf("g2-%03d-", i), valLen)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	before := e.Metrics()
	if before.VlogLiveBytes != 2*keys*valLen {
		t.Fatalf("pre-compaction live bytes = %d, want %d", before.VlogLiveBytes, 2*keys*valLen)
	}

	// Compaction drops the gen-1 versions, reports their discards, and runs
	// GC under the same single-flight guard.
	e.Compact()

	const dead = keys * valLen // every gen-1 value died
	after := e.Metrics()
	if after.VlogGCReclaimedBytes < dead/2 {
		t.Fatalf("GC reclaimed %d of %d dead bytes, want >= %d",
			after.VlogGCReclaimedBytes, dead, dead/2)
	}
	if after.VlogFiles >= before.VlogFiles {
		t.Fatalf("GC deleted no files: %d -> %d", before.VlogFiles, after.VlogFiles)
	}
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("k%03d", i)
		want := bigVal(fmt.Sprintf("g2-%03d-", i), valLen)
		if v, ok, err := e.Get([]byte(k)); err != nil || !ok || !bytes.Equal(v, want) {
			t.Fatalf("after GC: Get(%s) = %d bytes, ok=%v, err=%v", k, len(v), ok, err)
		}
	}
}

// An injected lsm.vlog.gc.error aborts a GC round mid-rewrite; every acked
// write must stay readable through the abort, and GC must complete once the
// fault is lifted.
func TestVlogGCSurvivesInjectedError(t *testing.T) {
	reg := faultinject.New(1, nil)
	e := New(Options{
		ValueThreshold:         16,
		VlogFileSize:           1 << 10,
		DisableAutoCompactions: true,
		Faults:                 reg,
	})
	defer e.Close()

	const keys, valLen = 32, 100
	write := func(gen string) {
		for i := 0; i < keys; i++ {
			if err := e.Set([]byte(fmt.Sprintf("k%03d", i)), bigVal(fmt.Sprintf("%s-%03d-", gen, i), valLen)); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	write("g1")
	write("g2")

	reg.Enable("lsm.vlog.gc.error", faultinject.Site{Probability: 1})
	e.Compact() // GC rounds abort mid-rewrite

	m := e.Metrics()
	if m.VlogGCRounds == 0 {
		t.Fatal("no GC round started under the injected fault")
	}
	if m.VlogGCReclaimedBytes != 0 {
		t.Fatalf("aborted GC reclaimed %d bytes", m.VlogGCReclaimedBytes)
	}
	checkAll := func(stage string) {
		t.Helper()
		for i := 0; i < keys; i++ {
			k := fmt.Sprintf("k%03d", i)
			want := bigVal(fmt.Sprintf("g2-%03d-", i), valLen)
			if v, ok, err := e.Get([]byte(k)); err != nil || !ok || !bytes.Equal(v, want) {
				t.Fatalf("%s: Get(%s) = %d bytes, ok=%v, err=%v", stage, k, len(v), ok, err)
			}
		}
	}
	checkAll("mid-abort")

	reg.Disable("lsm.vlog.gc.error")
	e.VlogGC()
	if got := e.Metrics().VlogGCReclaimedBytes; got < keys*valLen/2 {
		t.Fatalf("post-fault GC reclaimed %d bytes, want >= %d", got, keys*valLen/2)
	}
	checkAll("post-GC")
}

// An injected lsm.vlog.write.error degrades the append to inline storage:
// the write still succeeds and the value still reads back.
func TestVlogWriteErrorFallsBackInline(t *testing.T) {
	reg := faultinject.New(1, nil)
	reg.Enable("lsm.vlog.write.error", faultinject.Site{Probability: 1})
	e := New(Options{ValueThreshold: 16, Faults: reg, DisableAutoCompactions: true})
	defer e.Close()

	big := bigVal("fallback-", 64)
	if err := e.Set([]byte("k"), big); err != nil {
		t.Fatal(err)
	}
	m := e.Metrics()
	if m.VlogWriteFallbacks != 1 || m.VlogWrites != 0 {
		t.Fatalf("fallbacks=%d writes=%d, want 1 and 0", m.VlogWriteFallbacks, m.VlogWrites)
	}
	if v, ok, err := e.Get([]byte("k")); err != nil || !ok || !bytes.Equal(v, big) {
		t.Fatalf("Get after fallback = %d bytes, ok=%v, err=%v", len(v), ok, err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	e.Compact()
	if v, ok, err := e.Get([]byte("k")); err != nil || !ok || !bytes.Equal(v, big) {
		t.Fatalf("Get after compaction = %d bytes, ok=%v, err=%v", len(v), ok, err)
	}
}

// Regression: a tombstone found at a shallow level must short-circuit the
// probe walk — deeper levels hold only shadowed versions.
func TestTombstoneShortCircuitsProbes(t *testing.T) {
	e := New(Options{DisableAutoCompactions: true})
	defer e.Close()

	// The key's only live version sits in L1.
	if err := e.Set([]byte("k"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	e.Compact()

	// Case 1: tombstone in the memtable — no table may be probed at all.
	if err := e.Delete([]byte("k")); err != nil {
		t.Fatal(err)
	}
	probedBefore := e.Metrics().TablesProbed
	if _, ok, err := e.Get([]byte("k")); err != nil || ok {
		t.Fatalf("deleted key visible: ok=%v err=%v", ok, err)
	}
	if d := e.Metrics().TablesProbed - probedBefore; d != 0 {
		t.Fatalf("memtable tombstone probed %d tables, want 0", d)
	}

	// Case 2: tombstone flushed to L0 — exactly the L0 table is probed, never
	// the L1 table beneath it.
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	probedBefore = e.Metrics().TablesProbed
	if _, ok, err := e.Get([]byte("k")); err != nil || ok {
		t.Fatalf("deleted key visible from L0: ok=%v err=%v", ok, err)
	}
	if d := e.Metrics().TablesProbed - probedBefore; d != 1 {
		t.Fatalf("L0 tombstone probed %d tables, want 1 (the L0 table only)", d)
	}
}

// Iterators over a narrow range must consult only the L1+ tables whose
// bounds intersect it; the baseline (DisableReadAcceleration) probes them all.
func TestIterProbesOnlyOverlappingTables(t *testing.T) {
	build := func(disable bool) *Engine {
		e := New(Options{DisableAutoCompactions: true, DisableReadAcceleration: disable})
		// Five disjoint key ranges, each compacted into its own L1 table.
		for r := 0; r < 5; r++ {
			for i := 0; i < 10; i++ {
				if err := e.Set([]byte(fmt.Sprintf("r%d-%02d", r, i)), []byte("v")); err != nil {
					t.Fatal(err)
				}
			}
			if err := e.Flush(); err != nil {
				t.Fatal(err)
			}
			e.Compact()
		}
		e.mu.RLock()
		bottom := len(e.mu.levels[numLevels-1])
		e.mu.RUnlock()
		if bottom < 3 {
			t.Fatalf("level shape did not spread the bottom level: %d tables", bottom)
		}
		return e
	}
	scanProbes := func(e *Engine) int64 {
		before := e.Metrics().TablesProbed
		n := 0
		for it := e.NewIter([]byte("r2-"), []byte("r2-99")); it.Valid(); it.Next() {
			n++
		}
		if n != 10 {
			t.Fatalf("scan returned %d keys, want 10", n)
		}
		return e.Metrics().TablesProbed - before
	}
	accel := build(false)
	defer accel.Close()
	base := build(true)
	defer base.Close()
	ap, bp := scanProbes(accel), scanProbes(base)
	if ap >= bp {
		t.Fatalf("windowed scan probed %d tables, baseline %d — no reduction", ap, bp)
	}
	if ap > 2 {
		t.Fatalf("windowed scan probed %d tables for a single-table range", ap)
	}
}
