package lsm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"testing"

	"crdbserverless/internal/randutil"
)

// durableOpts returns small-table options over dir so tests exercise
// flushes, compactions, and value separation with modest write counts.
func durableOpts(dir *Dir) Options {
	return Options{
		Durable:         dir,
		MemTableSize:    4 << 10,
		WALSegmentSize:  2 << 10,
		ValueThreshold:  64,
		VlogFileSize:    4 << 10,
		BlockCacheBytes: 32 << 10,
		Seed:            7,
	}
}

func TestOpenEmptyDir(t *testing.T) {
	e, err := Open(durableOpts(NewDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if _, ok, err := e.Get([]byte("nothing")); ok || err != nil {
		t.Fatalf("fresh durable engine Get = %v %v", ok, err)
	}
	if err := e.Set([]byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := e.Get([]byte("a")); !ok || string(v) != "1" {
		t.Fatalf("Get after Set = %q %v", v, ok)
	}
}

// TestOpenEmptyWAL covers recovery of a store that crashed after installing
// a manifest but before writing any further WAL records: the WAL segments
// at and above the unflushed floor are empty or absent.
func TestOpenEmptyWAL(t *testing.T) {
	dir := NewDir()
	e := New(durableOpts(dir))
	for i := 0; i < 300; i++ {
		e.Set([]byte(fmt.Sprintf("k%04d", i)), []byte(fmt.Sprintf("v%04d", i)))
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	e.Close()
	dir.Crash(0)
	re, err := Open(durableOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	for i := 0; i < 300; i++ {
		v, ok, err := re.Get([]byte(fmt.Sprintf("k%04d", i)))
		if err != nil || !ok || string(v) != fmt.Sprintf("v%04d", i) {
			t.Fatalf("k%04d: Get = %q %v %v", i, v, ok, err)
		}
	}
}

// writeWorkload applies a deterministic mixed workload (sets, overwrites,
// deletes, large values bound for the value log) to both the engine and a
// shadow map, returning the number of operations applied.
func writeWorkload(e *Engine, shadow map[string]string, seed int64, ops int) {
	rng := randutil.NewRand(seed)
	for i := 0; i < ops; i++ {
		key := fmt.Sprintf("key-%04d", rng.Intn(200))
		switch rng.Intn(10) {
		case 0:
			e.Delete([]byte(key))
			delete(shadow, key)
		case 1, 2:
			// Above ValueThreshold: routed to the value log.
			val := fmt.Sprintf("big-%06d-%s", i, string(make([]byte, 80)))
			e.Set([]byte(key), []byte(val))
			shadow[key] = val
		default:
			val := fmt.Sprintf("val-%06d", i)
			e.Set([]byte(key), []byte(val))
			shadow[key] = val
		}
	}
}

func checkAgainstShadow(t *testing.T, e *Engine, shadow map[string]string) {
	t.Helper()
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%04d", i)
		want, wantOK := shadow[key]
		v, ok, err := e.Get([]byte(key))
		if err != nil {
			t.Fatalf("%s: Get error %v", key, err)
		}
		if ok != wantOK || (ok && string(v) != want) {
			t.Fatalf("%s: Get = %q %v, want %q %v", key, v, ok, want, wantOK)
		}
	}
}

// TestCrashRecoverySyncedEveryRecord crashes a store whose fsync policy is
// sync-per-record: recovery must restore every acknowledged write exactly.
func TestCrashRecoverySyncedEveryRecord(t *testing.T) {
	dir := NewDir()
	e := New(durableOpts(dir)) // WALBytesPerSync 0: every record synced
	shadow := map[string]string{}
	writeWorkload(e, shadow, 42, 1200)
	// No Close: simulate a hard crash with a clean cut at the last sync.
	dir.Crash(0)
	re, err := Open(durableOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	checkAgainstShadow(t, re, shadow)
}

// TestCrashRecoveryAfterCompaction forces the full maintenance pipeline
// (flushes, compactions, value-log GC) before the crash, so recovery
// exercises manifest level state and vlog file reconstruction, not just WAL
// replay.
func TestCrashRecoveryAfterCompaction(t *testing.T) {
	dir := NewDir()
	e := New(durableOpts(dir))
	shadow := map[string]string{}
	writeWorkload(e, shadow, 9, 4000)
	e.Compact()
	writeWorkload(e, shadow, 10, 500)
	dir.Crash(0)
	re, err := Open(durableOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	checkAgainstShadow(t, re, shadow)
	if m := re.Metrics(); m.CorruptionErrors != 0 {
		t.Fatalf("recovery surfaced %d corruption errors", m.CorruptionErrors)
	}
}

// TestCrashPointProperty is the randomized crash-point test: under a relaxed
// fsync policy, crash at arbitrary torn offsets (including mid-record) after
// arbitrary workload prefixes, recover, and require prefix consistency
// against a shadow map — every write synced before the crash is present, and
// any surviving tail value is one the workload actually wrote for that key,
// never garbage.
func TestCrashPointProperty(t *testing.T) {
	for trial := 0; trial < 30; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial=%d", trial), func(t *testing.T) {
			rng := randutil.NewRand(int64(1000 + trial))
			dir := NewDir()
			opts := durableOpts(dir)
			opts.WALBytesPerSync = int64(64 + rng.Intn(2048)) // relaxed: torn tails possible
			e := New(opts)
			shadow := map[string]string{}
			ops := 200 + rng.Intn(1800)
			writeWorkload(e, shadow, int64(trial), ops)
			if rng.Intn(2) == 0 {
				e.Flush()
			}
			// Force a sync barrier at a random point so "everything before
			// this is durable" has a witness set, then a few more unsynced ops
			// whose survival depends on where the tear lands.
			e.walSyncBarrier()
			durable := map[string]string{}
			for k, v := range shadow {
				durable[k] = v
			}
			post := map[string]map[string]bool{} // key → values written after the barrier ("" = delete)
			extra := rng.Intn(100)
			for i := 0; i < extra; i++ {
				key := fmt.Sprintf("key-%04d", rng.Intn(200))
				if post[key] == nil {
					post[key] = map[string]bool{}
				}
				if rng.Intn(10) == 0 {
					e.Delete([]byte(key))
					post[key][""] = true
				} else {
					val := fmt.Sprintf("post-%06d", i)
					e.Set([]byte(key), []byte(val))
					post[key][val] = true
				}
			}
			tear := rng.Intn(64) // 0 = clean cut, else torn mid-record offsets
			dir.Crash(tear)
			re, err := Open(opts)
			if err != nil {
				t.Fatal(err)
			}
			defer re.Close()
			// Every durably-acknowledged write must be present and exact,
			// unless a surviving tail record legally overwrote or deleted it.
			for k, want := range durable {
				v, ok, err := re.Get([]byte(k))
				if err != nil {
					t.Fatalf("%s: %v", k, err)
				}
				switch {
				case ok && string(v) == want:
				case ok && post[k][string(v)]:
				case !ok && post[k][""]:
				default:
					t.Fatalf("%s: recovered %q (found=%v), want durable %q or a post-barrier value %v",
						k, v, ok, want, post[k])
				}
			}
		})
	}
}

// TestRecoveryDeterministic: recovering the same crashed directory state
// twice yields byte-identical engine behavior (same metrics shape, same
// values), the determinism contract the chaos harness depends on.
func TestRecoveryDeterministic(t *testing.T) {
	build := func() *Dir {
		dir := NewDir()
		opts := durableOpts(dir)
		opts.WALBytesPerSync = 512
		e := New(opts)
		shadow := map[string]string{}
		writeWorkload(e, shadow, 77, 2500)
		dir.Crash(13)
		return dir
	}
	snapshot := func(dir *Dir) string {
		e, err := Open(durableOpts(dir))
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		var out []byte
		it := e.NewIter(nil, nil)
		for ; it.Valid(); it.Next() {
			out = append(out, it.Key()...)
			out = append(out, '=')
			out = append(out, it.Value()...)
			out = append(out, '\n')
		}
		m := e.Metrics()
		return fmt.Sprintf("%s|wal=%d|mem=%d", out, m.WALBytes, m.MemTableBytes)
	}
	a, b := snapshot(build()), snapshot(build())
	if a != b {
		t.Fatalf("same-seed crash/recover runs diverged:\n%s\n---\n%s", a, b)
	}
}

// TestTornTailTruncated writes records under a relaxed sync policy, tears
// the final record in half, and verifies replay stops exactly at the torn
// record without corrupting earlier ones.
func TestTornTailTruncated(t *testing.T) {
	dir := NewDir()
	w := newWALWriter(dir, 1, 1<<20, 1<<20) // never auto-syncs
	payloads := [][]byte{[]byte("alpha"), []byte("beta"), []byte("gamma")}
	for _, p := range payloads {
		w.append(appendEntry(nil, Entry{Key: p, Value: p}))
	}
	w.sync()
	// One more record, unsynced; crash keeps only 3 bytes of it.
	w.append(appendEntry(nil, Entry{Key: []byte("torn"), Value: []byte("torn")}))
	dir.Crash(3)
	var got []string
	n, err := replayWAL(dir, 1, func(entries []Entry) {
		for _, e := range entries {
			got = append(got, string(e.Key))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != len(payloads) || len(got) != len(payloads) {
		t.Fatalf("replayed %d records (%v), want %d", n, got, len(payloads))
	}
	for i, p := range payloads {
		if got[i] != string(p) {
			t.Fatalf("record %d = %q, want %q", i, got[i], p)
		}
	}
}

// TestCorruptRecordTruncates flips a payload byte mid-log: replay must stop
// at the corrupt record (CRC mismatch), keeping only the prefix.
func TestCorruptRecordTruncates(t *testing.T) {
	dir := NewDir()
	w := newWALWriter(dir, 1, 1<<20, 0)
	for i := 0; i < 5; i++ {
		w.append(appendEntry(nil, Entry{Key: []byte(fmt.Sprintf("k%d", i)), Value: []byte("v")}))
	}
	name := walSegmentName(1)
	data, _ := dir.ReadFile(name)
	// Corrupt the payload of the third record: records are fixed-size here
	// (8-byte frame + 12-byte entry), after the 8-byte segment header.
	recLen := walRecordHeaderLen + 9 + 2 + 1
	off := walSegmentHeaderLen + 2*recLen + walRecordHeaderLen + 3
	data[off] ^= 0xff
	dir.WriteFileSync(name, data)
	n, err := replayWAL(dir, 1, func([]Entry) {})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("replayed %d records past a CRC mismatch, want 2", n)
	}
}

// TestWALVersionMismatch: a segment stamped with a future format version is
// a hard error, not a silent truncation.
func TestWALVersionMismatch(t *testing.T) {
	dir := NewDir()
	w := newWALWriter(dir, 1, 1<<20, 0)
	w.append(appendEntry(nil, Entry{Key: []byte("k"), Value: []byte("v")}))
	name := walSegmentName(1)
	data, _ := dir.ReadFile(name)
	binary.BigEndian.PutUint32(data[4:8], walFormatVersion+1)
	dir.WriteFileSync(name, data)
	if _, err := replayWAL(dir, 1, func([]Entry) {}); !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("replay error = %v, want ErrVersionMismatch", err)
	}
	// And through Open: the engine must refuse to come up.
	if _, err := Open(durableOpts(dir)); !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("Open error = %v, want ErrVersionMismatch", err)
	}
}

// TestManifestVersionMismatch: same contract for the manifest.
func TestManifestVersionMismatch(t *testing.T) {
	dir := NewDir()
	e := New(durableOpts(dir))
	for i := 0; i < 400; i++ {
		e.Set([]byte(fmt.Sprintf("k%04d", i)), []byte("v"))
	}
	e.Flush()
	e.Close()
	data, ok := dir.ReadFile(manifestName)
	if !ok {
		t.Fatal("no manifest after flush")
	}
	binary.BigEndian.PutUint32(data[4:8], manifestVersion+1)
	// Recompute the checksum so only the version (not the CRC) trips.
	body := data[:len(data)-manifestChecksumLen]
	binary.BigEndian.PutUint32(data[len(data)-manifestChecksumLen:], crc32.Checksum(body, crc32cTable))
	dir.WriteFileSync(manifestName, data)
	if _, err := Open(durableOpts(dir)); !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("Open error = %v, want ErrVersionMismatch", err)
	}
}

// TestManifestChecksumCorruption: a bit-flipped manifest is ErrCorruption.
func TestManifestChecksumCorruption(t *testing.T) {
	dir := NewDir()
	e := New(durableOpts(dir))
	for i := 0; i < 400; i++ {
		e.Set([]byte(fmt.Sprintf("k%04d", i)), []byte("v"))
	}
	e.Flush()
	e.Close()
	data, _ := dir.ReadFile(manifestName)
	data[len(data)/2] ^= 0x01
	dir.WriteFileSync(manifestName, data)
	if _, err := Open(durableOpts(dir)); !errors.Is(err, ErrCorruption) {
		t.Fatalf("Open error = %v, want ErrCorruption", err)
	}
}

// TestWALBytesFramedAccounting verifies the satellite fix: WALBytes reports
// the actual framed bytes (record header + encoded entries), identically for
// durable and volatile engines.
func TestWALBytesFramedAccounting(t *testing.T) {
	key, val := []byte("k"), []byte("hello")
	wantFramed := int64(walRecordHeaderLen + 9 + len(key) + len(val))
	vol := New(Options{})
	defer vol.Close()
	vol.Set(key, val)
	if m := vol.Metrics(); m.WALBytes != wantFramed {
		t.Fatalf("volatile WALBytes = %d, want %d", m.WALBytes, wantFramed)
	}
	dir := NewDir()
	dur := New(Options{Durable: dir})
	defer dur.Close()
	dur.Set(key, val)
	m := dur.Metrics()
	if m.WALBytes != wantFramed {
		t.Fatalf("durable WALBytes = %d, want %d", m.WALBytes, wantFramed)
	}
	if m.WALFsyncs == 0 {
		t.Fatal("durable engine with sync-every-record policy reported 0 fsyncs")
	}
	// The segment file really holds the framed record (plus its header).
	if got := dir.Size(walSegmentName(1)); got != wantFramed+walSegmentHeaderLen {
		t.Fatalf("segment size = %d, want %d", got, wantFramed+walSegmentHeaderLen)
	}
}

// TestGetCorruptionTyped verifies the satellite fix: a pointer into a
// genuinely deleted value-log file surfaces ErrCorruption (not the internal
// retry sentinel) and bumps the corruption counter.
func TestGetCorruptionTyped(t *testing.T) {
	e := New(Options{ValueThreshold: 8, VlogFileSize: 64})
	defer e.Close()
	big := []byte("0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef")
	e.Set([]byte("a"), big) // fills file 1 past rotation size
	e.Set([]byte("b"), big) // rotates to file 2, so file 1 is deletable
	// Simulate corruption: force-delete file 1 while a's pointer still
	// references it (bypassing GC's rewrite-then-delete protocol).
	if n := e.vlog.deleteFile(1); n == 0 {
		t.Fatal("test setup: vlog file 1 not deletable")
	}
	_, ok, err := e.Get([]byte("a"))
	if ok || !errors.Is(err, ErrCorruption) {
		t.Fatalf("Get = %v %v, want ErrCorruption", ok, err)
	}
	if errors.Is(err, errVlogFileGone) {
		t.Fatal("internal errVlogFileGone sentinel leaked through the wrap")
	}
	if m := e.Metrics(); m.CorruptionErrors != 1 {
		t.Fatalf("CorruptionErrors = %d, want 1", m.CorruptionErrors)
	}
}

// TestRecoveryPreservesDeterministicIDs: a recovered engine continues the
// file-id sequence where the crashed one left off, so post-recovery flushes
// produce the same ids a surviving engine would have.
func TestRecoveryPreservesDeterministicIDs(t *testing.T) {
	dir := NewDir()
	e := New(durableOpts(dir))
	for i := 0; i < 800; i++ {
		e.Set([]byte(fmt.Sprintf("k%05d", i)), []byte("v"))
	}
	e.Flush()
	wantNext := e.mu.nextID
	dir.Crash(0)
	re, err := Open(durableOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.mu.nextID != wantNext {
		t.Fatalf("recovered nextID = %d, want %d", re.mu.nextID, wantNext)
	}
}
