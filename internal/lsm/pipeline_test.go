package lsm

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"crdbserverless/internal/randutil"
)

// rotateWithoutBuild performs the under-lock half of a pipelined flush and
// returns the pending job, leaving the engine in the mid-pipeline state a
// reader can observe: data in the immutable queue, not yet in L0.
func rotateWithoutBuild(t *testing.T, e *Engine) *flushJob {
	t.Helper()
	e.mu.Lock()
	sp, job, flushed, err := e.flushLocked()
	e.mu.Unlock()
	if err != nil || !flushed || job == nil {
		t.Fatalf("flushLocked = job=%v flushed=%v err=%v", job, flushed, err)
	}
	if sp != nil {
		sp.Finish()
	}
	return job
}

// While a rotated memtable's SSTable build is in flight, its data must stay
// readable from the immutable queue, new writes must land in the fresh
// memtable, and Metrics must count the extra sorted run.
func TestImmutableMemtableVisibleDuringBuild(t *testing.T) {
	e := New(Options{DisableAutoCompactions: true})
	defer e.Close()
	e.Set([]byte("a"), []byte("1"))
	e.Set([]byte("b"), []byte("2"))

	job := rotateWithoutBuild(t, e)

	// Mid-pipeline: nothing in L0 yet, data only in the immutable queue.
	m := e.Metrics()
	if m.L0Files != 0 || m.FlushCount != 0 {
		t.Fatalf("mid-build metrics: L0Files=%d FlushCount=%d", m.L0Files, m.FlushCount)
	}
	if m.ReadAmplification != 2 { // active memtable + 1 immutable
		t.Fatalf("mid-build read amp = %d, want 2", m.ReadAmplification)
	}
	if v, ok, _ := e.Get([]byte("a")); !ok || string(v) != "1" {
		t.Fatalf("rotated data unreadable mid-build: %q %v", v, ok)
	}
	// Writes during the build land in the fresh memtable and shadow the
	// immutable queue.
	e.Set([]byte("a"), []byte("1x"))
	if v, _, _ := e.Get([]byte("a")); string(v) != "1x" {
		t.Fatalf("fresh memtable does not shadow immutable queue: %q", v)
	}

	e.buildAndInstall(nil, job)

	m = e.Metrics()
	if m.L0Files != 1 || m.FlushCount != 1 || m.ReadAmplification != 2 {
		t.Fatalf("post-install metrics: L0Files=%d FlushCount=%d amp=%d",
			m.L0Files, m.FlushCount, m.ReadAmplification)
	}
	if v, _, _ := e.Get([]byte("a")); string(v) != "1x" {
		t.Fatalf("post-install Get(a) = %q", v)
	}
	if v, ok, _ := e.Get([]byte("b")); !ok || string(v) != "2" {
		t.Fatalf("post-install Get(b) = %q %v", v, ok)
	}
}

// Two rotations can be in flight at once; installing them out of order must
// not invert shadowing, because L0 ordering goes by table id (= rotation
// order), not install order.
func TestOutOfOrderInstallKeepsShadowing(t *testing.T) {
	e := New(Options{DisableAutoCompactions: true})
	defer e.Close()
	e.Set([]byte("k"), []byte("old"))
	first := rotateWithoutBuild(t, e)
	e.Set([]byte("k"), []byte("new"))
	second := rotateWithoutBuild(t, e)

	// Install the newer rotation first, then the older one.
	e.buildAndInstall(nil, second)
	e.buildAndInstall(nil, first)

	if v, _, _ := e.Get([]byte("k")); string(v) != "new" {
		t.Fatalf("out-of-order install inverted shadowing: Get(k) = %q", v)
	}
	e.mu.RLock()
	l0 := e.mu.levels[0]
	e.mu.RUnlock()
	if len(l0) != 2 || l0[0].id <= l0[1].id {
		t.Fatalf("L0 not newest-first by id: %d tables", len(l0))
	}
}

// Drive the three compaction phases by hand with reads, writes, and a flush
// interleaved into the merge window: the install must keep the tables that
// arrived mid-merge and the merged output must not lose or resurrect keys.
func TestCompactionMergeWindowAllowsProgress(t *testing.T) {
	e := New(Options{DisableAutoCompactions: true})
	defer e.Close()
	for i := 0; i < 4; i++ {
		e.Set([]byte(fmt.Sprintf("key-%02d", i)), []byte(fmt.Sprintf("v%d", i)))
		if err := e.Flush(); err != nil {
			t.Fatal(err)
		}
	}

	// Phase 1: plan under the lock.
	e.mu.Lock()
	plan := e.planCompactionLocked(0)
	e.mu.Unlock()
	if plan == nil || len(plan.inputs) != 4 {
		t.Fatalf("plan = %+v", plan)
	}

	// Merge window: the engine lock is free, so reads, writes, and even a
	// whole flush proceed while the merge would be running.
	if v, ok, _ := e.Get([]byte("key-00")); !ok || string(v) != "v0" {
		t.Fatalf("read during merge window: %q %v", v, ok)
	}
	e.Set([]byte("key-00"), []byte("v0-new"))
	e.Set([]byte("mid-merge"), []byte("late"))
	if err := e.Flush(); err != nil { // prepends a 5th L0 table mid-merge
		t.Fatal(err)
	}

	// Phases 2+3: merge outside the lock, install under it.
	out, next, _ := e.runMerge(plan)
	e.mu.Lock()
	e.installCompactionLocked(plan, out, next)
	e.mu.Unlock()

	m := e.Metrics()
	if m.CompactionCount != 1 {
		t.Fatalf("CompactionCount = %d", m.CompactionCount)
	}
	// The mid-merge flush survived in L0; the four planned inputs moved to L1.
	if m.L0Files != 1 {
		t.Fatalf("L0Files = %d, want 1 (the mid-merge flush)", m.L0Files)
	}
	if v, _, _ := e.Get([]byte("key-00")); string(v) != "v0-new" {
		t.Fatalf("mid-merge overwrite lost: %q", v)
	}
	if v, ok, _ := e.Get([]byte("mid-merge")); !ok || string(v) != "late" {
		t.Fatalf("mid-merge write lost: %q %v", v, ok)
	}
	for i := 1; i < 4; i++ {
		k := fmt.Sprintf("key-%02d", i)
		if v, ok, _ := e.Get([]byte(k)); !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("compacted key %s = %q %v", k, v, ok)
		}
	}
}

// A merge whose inputs were superseded before install must be discarded:
// nothing changes and no compaction is counted.
func TestCompactionInstallAbandonedWhenInputsGone(t *testing.T) {
	e := New(Options{DisableAutoCompactions: true})
	defer e.Close()
	for i := 0; i < 3; i++ {
		e.Set([]byte(fmt.Sprintf("k%d", i)), []byte("v"))
		e.Flush()
	}
	e.mu.Lock()
	stale := e.planCompactionLocked(0)
	e.mu.Unlock()

	// A competing round completes first, consuming the stale plan's inputs.
	e.Compact()
	before := e.Metrics()

	out, next, _ := e.runMerge(stale)
	e.mu.Lock()
	e.installCompactionLocked(stale, out, next)
	e.mu.Unlock()

	after := e.Metrics()
	if after.CompactionCount != before.CompactionCount {
		t.Fatalf("stale install counted: %d -> %d", before.CompactionCount, after.CompactionCount)
	}
	if after.L0Files != before.L0Files || after.LevelBytes != before.LevelBytes {
		t.Fatalf("stale install mutated levels: %+v -> %+v", before.LevelBytes, after.LevelBytes)
	}
	for i := 0; i < 3; i++ {
		if _, ok, _ := e.Get([]byte(fmt.Sprintf("k%d", i))); !ok {
			t.Fatalf("k%d lost after abandoned install", i)
		}
	}
}

// Regression test for the compaction stampede: auto-compaction triggers that
// find a round in flight must be absorbed (counted, not queued), and the
// backlog must drain on a later trigger once the round ends.
func TestCompactionSingleFlightCoalesces(t *testing.T) {
	e := New(Options{
		MemTableSize:          64, // every small batch crosses the threshold
		L0CompactionThreshold: 2,
	})
	defer e.Close()

	write := func(i int) {
		if err := e.Set([]byte(fmt.Sprintf("key-%04d", i)), []byte("0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef")); err != nil {
			t.Fatal(err)
		}
	}

	// Hold the single-flight guard as an in-flight round would, then trigger
	// auto-compaction via threshold-crossing writes.
	e.compactMu.Lock()
	for i := 0; i < 6; i++ {
		write(i)
	}
	held := e.Metrics()
	e.compactMu.Unlock()

	if held.CompactionsCoalesced == 0 {
		t.Fatal("no triggers coalesced while a round was in flight")
	}
	if held.CompactionCount != 0 {
		t.Fatalf("CompactionCount = %d while guard held", held.CompactionCount)
	}
	if held.L0Files < e.opts.L0CompactionThreshold {
		t.Fatalf("backlog did not build: L0Files = %d", held.L0Files)
	}

	// The next trigger drains the whole backlog.
	write(6)
	drained := e.Metrics()
	if drained.CompactionCount == 0 {
		t.Fatal("backlog not drained after guard released")
	}
	if drained.L0Files >= e.opts.L0CompactionThreshold {
		t.Fatalf("L0 backlog remains: %d files", drained.L0Files)
	}
	for i := 0; i <= 6; i++ {
		if _, ok, _ := e.Get([]byte(fmt.Sprintf("key-%04d", i))); !ok {
			t.Fatalf("key-%04d lost across coalesced rounds", i)
		}
	}
}

// Reads must complete while a compaction merge is actually in flight: start
// a large manual compaction and require at least one Get that both began and
// finished with the merge still running (the mergesActive hook).
func TestReadsCompleteWhileMergeActive(t *testing.T) {
	e := New(Options{DisableAutoCompactions: true})
	defer e.Close()
	const tables, perTable = 4, 25000
	for tbl := 0; tbl < tables; tbl++ {
		entries := make([]Entry, 0, perTable)
		for k := 0; k < perTable; k++ {
			entries = append(entries, Entry{
				Key:   []byte(fmt.Sprintf("t%d-%06d", tbl, k)),
				Value: []byte("0123456789abcdef"),
			})
		}
		if err := e.ApplyBatch(entries); err != nil {
			t.Fatal(err)
		}
		if err := e.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		e.Compact()
	}()
	overlapped := 0
	rng := randutil.NewRand(7)
	for {
		select {
		case <-done:
			if overlapped == 0 {
				t.Fatal("no Get overlapped an in-flight merge")
			}
			return
		default:
		}
		if e.mergesActive.Load() == 0 {
			continue
		}
		k := []byte(fmt.Sprintf("t%d-%06d", rng.Intn(tables), rng.Intn(perTable)))
		if _, ok, err := e.Get(k); err != nil || !ok {
			t.Fatalf("Get(%s) during merge = %v %v", k, ok, err)
		}
		if e.mergesActive.Load() > 0 {
			overlapped++
		}
	}
}

// Concurrent readers and writers against tiny memtables force constant
// flushes and compactions; under -race this is the pipeline's lock-discipline
// test, and the final state must match a per-writer shadow map.
func TestConcurrentReadersWritersDuringFlushAndCompaction(t *testing.T) {
	for _, disable := range []bool{false, true} {
		name := "pipelined"
		if disable {
			name = "baseline"
		}
		t.Run(name, func(t *testing.T) {
			e := New(Options{
				MemTableSize:           256,
				L0CompactionThreshold:  2,
				DisableWritePipelining: disable,
			})
			defer e.Close()

			const writers, readers, perWriter = 4, 3, 120
			var writerWg, readerWg sync.WaitGroup
			stop := make(chan struct{})
			for r := 0; r < readers; r++ {
				readerWg.Add(1)
				go func(r int) {
					defer readerWg.Done()
					rng := randutil.NewRand(int64(1000 + r))
					for {
						select {
						case <-stop:
							return
						default:
						}
						w := rng.Intn(writers)
						i := rng.Intn(perWriter)
						// Whatever is visible must be a value some writer
						// actually wrote for this key.
						if v, ok, err := e.Get([]byte(fmt.Sprintf("w%d-%04d", w, i))); err != nil {
							t.Error(err)
							return
						} else if ok && len(v) == 0 {
							t.Errorf("empty value for w%d-%04d", w, i)
							return
						}
					}
				}(r)
			}
			for w := 0; w < writers; w++ {
				writerWg.Add(1)
				go func(w int) {
					defer writerWg.Done()
					for i := 0; i < perWriter; i++ {
						k := []byte(fmt.Sprintf("w%d-%04d", w, i))
						v := []byte(fmt.Sprintf("val-%d-%d-%032d", w, i, i))
						if err := e.Set(k, v); err != nil {
							t.Error(err)
							return
						}
						if i%10 == 9 {
							if err := e.Flush(); err != nil {
								t.Error(err)
								return
							}
						}
					}
				}(w)
			}
			done := make(chan struct{})
			go func() { writerWg.Wait(); close(done) }()
			select {
			case <-done:
			case <-time.After(60 * time.Second):
				t.Fatal("concurrent load did not finish")
			}
			close(stop)
			readerWg.Wait()

			e.Compact()
			for w := 0; w < writers; w++ {
				for i := 0; i < perWriter; i++ {
					k := fmt.Sprintf("w%d-%04d", w, i)
					want := fmt.Sprintf("val-%d-%d-%032d", w, i, i)
					if v, ok, _ := e.Get([]byte(k)); !ok || string(v) != want {
						t.Fatalf("%s = %q %v, want %q", k, v, ok, want)
					}
				}
			}
		})
	}
}

// Randomized-interleave property test: a seeded op stream (set, delete,
// batch, flush, compact) runs against the engine and a shadow map, checking
// every read in both pipelined and baseline modes. The stream is deterministic
// per seed, so failures replay exactly.
func TestRandomizedOpsMatchShadowMap(t *testing.T) {
	for _, disable := range []bool{false, true} {
		name := "pipelined"
		if disable {
			name = "baseline"
		}
		t.Run(name, func(t *testing.T) {
			for seed := int64(1); seed <= 4; seed++ {
				e := New(Options{
					MemTableSize:           512,
					L0CompactionThreshold:  2,
					Seed:                   seed,
					DisableWritePipelining: disable,
				})
				rng := randutil.NewRand(seed)
				shadow := map[string]string{}
				key := func() []byte { return []byte(fmt.Sprintf("key-%03d", rng.Intn(200))) }
				for op := 0; op < 2000; op++ {
					switch rng.Intn(10) {
					case 0, 1, 2, 3: // set
						k := key()
						v := []byte(fmt.Sprintf("v%d", op))
						if err := e.Set(k, v); err != nil {
							t.Fatal(err)
						}
						shadow[string(k)] = string(v)
					case 4: // delete
						k := key()
						if err := e.Delete(k); err != nil {
							t.Fatal(err)
						}
						delete(shadow, string(k))
					case 5: // batch
						n := 1 + rng.Intn(8)
						ents := make([]Entry, 0, n)
						for j := 0; j < n; j++ {
							k := key()
							if rng.Intn(5) == 0 {
								ents = append(ents, Entry{Key: k, Tombstone: true})
								delete(shadow, string(k))
							} else {
								v := fmt.Sprintf("b%d-%d", op, j)
								ents = append(ents, Entry{Key: k, Value: []byte(v)})
								shadow[string(k)] = v
							}
						}
						if err := e.ApplyBatch(ents); err != nil {
							t.Fatal(err)
						}
					case 6: // flush
						if err := e.Flush(); err != nil {
							t.Fatal(err)
						}
					case 7: // manual compaction
						if op%7 == 0 {
							e.Compact()
						}
					default: // get
						k := key()
						v, ok, err := e.Get(k)
						if err != nil {
							t.Fatal(err)
						}
						want, inShadow := shadow[string(k)]
						if ok != inShadow || (ok && string(v) != want) {
							t.Fatalf("seed %d op %d: Get(%s) = %q %v, shadow %q %v",
								seed, op, k, v, ok, want, inShadow)
						}
					}
				}
				// Full sweep after the stream.
				for i := 0; i < 200; i++ {
					k := fmt.Sprintf("key-%03d", i)
					v, ok, err := e.Get([]byte(k))
					if err != nil {
						t.Fatal(err)
					}
					want, inShadow := shadow[k]
					if ok != inShadow || (ok && string(v) != want) {
						t.Fatalf("seed %d sweep: %s = %q %v, shadow %q %v", seed, k, v, ok, want, inShadow)
					}
				}
				e.Close()
			}
		})
	}
}

// Same seed, same ops, pipelining on vs off: the resulting engine contents
// and flush/compaction counts must agree — pipelining changes where work runs,
// not what it produces.
func TestPipeliningModeEquivalence(t *testing.T) {
	run := func(disable bool) (*Engine, Metrics) {
		e := New(Options{MemTableSize: 512, L0CompactionThreshold: 2, DisableWritePipelining: disable})
		rng := randutil.NewRand(42)
		for op := 0; op < 1500; op++ {
			k := []byte(fmt.Sprintf("key-%03d", rng.Intn(150)))
			switch rng.Intn(8) {
			case 0:
				e.Delete(k)
			case 1:
				e.Flush()
			default:
				e.Set(k, []byte(fmt.Sprintf("v%d", op)))
			}
		}
		e.Compact()
		return e, e.Metrics()
	}
	pipe, pm := run(false)
	base, bm := run(true)
	defer pipe.Close()
	defer base.Close()
	if pm.FlushCount != bm.FlushCount || pm.CompactionCount != bm.CompactionCount {
		t.Fatalf("op counts diverge: pipelined flush=%d compact=%d, baseline flush=%d compact=%d",
			pm.FlushCount, pm.CompactionCount, bm.FlushCount, bm.CompactionCount)
	}
	for i := 0; i < 150; i++ {
		k := []byte(fmt.Sprintf("key-%03d", i))
		pv, pok, _ := pipe.Get(k)
		bv, bok, _ := base.Get(k)
		if pok != bok || string(pv) != string(bv) {
			t.Fatalf("key-%03d: pipelined %q %v, baseline %q %v", i, pv, pok, bv, bok)
		}
	}
}
