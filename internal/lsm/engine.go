package lsm

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"crdbserverless/internal/faultinject"
	"crdbserverless/internal/metric"
	"crdbserverless/internal/randutil"
	"crdbserverless/internal/trace"
)

// numLevels is the number of on-disk levels (L0..L6), following Pebble.
const numLevels = 7

// Options configures an Engine.
type Options struct {
	// MemTableSize is the flush threshold in bytes. Defaults to 4 MiB.
	MemTableSize int64
	// L0CompactionThreshold is the number of L0 files that triggers an
	// L0->Lbase compaction. Defaults to 4.
	L0CompactionThreshold int
	// LBaseMaxBytes is the target size of L1; each deeper level is 10x
	// larger. Defaults to 16 MiB.
	LBaseMaxBytes int64
	// Seed seeds the skiplist RNG. Defaults to 0 (deterministic).
	Seed int64
	// DisableAutoCompactions turns off compaction scheduling after writes;
	// tests use this to construct specific level shapes.
	DisableAutoCompactions bool
	// DisableReadAcceleration turns off the bloom-filter consult and the
	// L1+ level-bound seek, restoring the probe-every-table read path.
	// Benchmarks and tests use it to measure the acceleration itself.
	DisableReadAcceleration bool
	// Tracer, when non-nil, records background flush and compaction work
	// as root spans (lsm.flush / lsm.compact). The engine has no clock of
	// its own; span timestamps come from the tracer's clock.
	Tracer *trace.Tracer
	// DisableWritePipelining restores the pre-pipelining write path:
	// SSTable builds and compaction merges run inside the engine's
	// exclusive lock, stalling readers for their duration. Benchmarks use
	// it as the baseline, analogous to DisableReadAcceleration.
	DisableWritePipelining bool
	// ReadMetrics, when non-nil, receives the read-path counters. A
	// deployment creates one ReadMetrics per registry and shares it across
	// its engines (Registry panics on duplicate names, so per-engine
	// registration is not an option). When nil the engine allocates
	// private, unregistered counters so the Metrics snapshot still works.
	ReadMetrics *ReadMetrics
	// WriteMetrics, when non-nil, receives the write/maintenance-path
	// counters; shared across engines like ReadMetrics.
	WriteMetrics *WriteMetrics
	// Faults, when non-nil, arms the engine's fault-injection sites:
	// lsm.write.stall delays a write before it takes the engine lock,
	// lsm.flush.error fails a memtable rotation (the memtable stays and is
	// retried at the next threshold crossing), lsm.compact.error skips a
	// compaction round, lsm.vlog.write.error fails a value-log append (the
	// value is stored inline instead — a transparent degradation), and
	// lsm.vlog.gc.error aborts a value-log GC round mid-rewrite. The flush
	// and compaction sites are consulted under the engine lock, so configure
	// them without a Delay; the vlog sites are consulted outside it.
	Faults *faultinject.Registry
	// DisableValueSeparation keeps every value inline in the sstables (the
	// seed behavior). By default values of ValueThreshold bytes or more are
	// stored in the append-only value log, with a (fileID, offset, len)
	// pointer in their place; see vlog.go.
	DisableValueSeparation bool
	// ValueThreshold is the minimum value size routed to the value log.
	// Defaults to 1 KiB.
	ValueThreshold int
	// VlogFileSize is the rotation threshold for value-log segments.
	// Defaults to 1 MiB.
	VlogFileSize int64
	// VlogGCDiscardRatio is the dead-byte fraction at which a value-log file
	// becomes a GC candidate. Defaults to 0.5.
	VlogGCDiscardRatio float64
	// BlockCacheBytes bounds the L1+ block cache; 0 disables it.
	BlockCacheBytes int64
	// HotKeyCacheSize bounds the hot-key read cache (entries); 0 disables it.
	HotKeyCacheSize int
	// Durable, when non-nil, makes the engine crash-survivable: every batch
	// is framed into a WAL inside the commit critical section, flushed
	// sstables and value-log segments are persisted into the directory, and
	// a versioned manifest tracks the level/vlog state. Open recovers an
	// engine from the directory's contents after a crash. nil (the default)
	// keeps the engine volatile, the pre-durability behavior.
	Durable *Dir
	// WALSegmentSize is the WAL's size-based rotation threshold. Defaults to
	// 256 KiB.
	WALSegmentSize int64
	// WALBytesPerSync is the fsync policy: 0 (the default) syncs after every
	// record — no acknowledged write can be lost; > 0 groups syncs until
	// that many bytes have accumulated, trading a torn tail on crash for
	// fewer syncs. Recovery truncates the tail at the first torn record.
	WALBytesPerSync int64
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.MemTableSize == 0 {
		out.MemTableSize = 4 << 20
	}
	if out.L0CompactionThreshold == 0 {
		out.L0CompactionThreshold = 4
	}
	if out.LBaseMaxBytes == 0 {
		out.LBaseMaxBytes = 16 << 20
	}
	if out.ValueThreshold == 0 {
		out.ValueThreshold = 1 << 10
	}
	if out.VlogFileSize == 0 {
		out.VlogFileSize = 1 << 20
	}
	if out.VlogGCDiscardRatio == 0 {
		out.VlogGCDiscardRatio = 0.5
	}
	if out.WALSegmentSize == 0 {
		out.WALSegmentSize = 256 << 10
	}
	return out
}

// Metrics is a point-in-time snapshot of engine instrumentation. Admission
// control's capacity estimator (§5.1.3) consumes FlushedBytes,
// CompactedBytes, and L0 state.
type Metrics struct {
	// L0Files is the current number of sstables in level 0. A backlog here
	// increases read amplification and signals that compactions are behind.
	L0Files int
	// L0Bytes is the total bytes in level 0.
	L0Bytes int64
	// LevelBytes reports the bytes resident in each level.
	LevelBytes [numLevels]int64
	// FlushedBytes is the cumulative bytes flushed from memtables to L0.
	FlushedBytes int64
	// CompactedBytes is the cumulative bytes written by compactions.
	CompactedBytes int64
	// FlushCount and CompactionCount are cumulative operation counts.
	FlushCount      int64
	CompactionCount int64
	// WALBytes is the cumulative framed bytes appended to the write-ahead
	// log — record headers and CRCs included. Volatile engines (no
	// Options.Durable) report the bytes the same batches would have framed,
	// so the metric is comparable across configurations.
	WALBytes int64
	// WALFsyncs is the cumulative number of WAL sync operations issued.
	WALFsyncs int64
	// MemTableBytes is the current size of the active memtable.
	MemTableBytes int64
	// ReadAmplification is the number of sorted runs a read may consult:
	// memtable + L0 files + one per non-empty deeper level.
	ReadAmplification int
	// Reads is the cumulative number of Get calls; BloomFiltered counts
	// candidate sstables skipped by a negative bloom-filter answer, and
	// TablesProbed counts sstables actually binary-searched. The three are
	// drawn from the engine's ReadMetrics counters, which may be shared
	// with other engines in the same deployment.
	Reads         int64
	BloomFiltered int64
	TablesProbed  int64
	// CompactionsCoalesced counts auto-compaction triggers that found
	// another compaction already in flight and handed it the backlog
	// instead of queueing behind the single-flight guard. Drawn from the
	// engine's WriteMetrics counter, which may be shared like ReadMetrics.
	CompactionsCoalesced int64
	// Cache counters (shared ReadMetrics, like Reads above): block-cache
	// hits/misses on L1+ point reads and hot-key cache hits/misses.
	BlockCacheHits   int64
	BlockCacheMisses int64
	HotCacheHits     int64
	HotCacheMisses   int64
	// Value-log counters (shared WriteMetrics): separated writes, inline
	// fallbacks from injected append failures, GC rounds/rewrites/reclaimed
	// bytes, and scan-side resolutions dropped against deleted files.
	VlogWrites           int64
	VlogWriteFallbacks   int64
	VlogGCRounds         int64
	VlogGCRewritten      int64
	VlogGCReclaimedBytes int64
	VlogResolveDropped   int64
	// CorruptionErrors counts reads that surfaced ErrCorruption — a value
	// pointer whose log file stayed unreachable through every retry. Drawn
	// from the engine's ReadMetrics counter (may be shared).
	CorruptionErrors int64
	// Value-log occupancy for this engine (not shared): segment count and
	// live/dead payload bytes.
	VlogFiles     int
	VlogLiveBytes int64
	VlogDeadBytes int64
}

// ReadMetrics holds the read-path counters. One instance is shared by all
// engines registered against the same metric.Registry; see
// Options.ReadMetrics.
type ReadMetrics struct {
	Reads            *metric.Counter
	BloomFiltered    *metric.Counter
	TablesProbed     *metric.Counter
	BlockCacheHits   *metric.Counter
	BlockCacheMisses *metric.Counter
	HotCacheHits     *metric.Counter
	HotCacheMisses   *metric.Counter
	// CorruptionErrors counts reads that returned ErrCorruption: a value
	// pointer that stayed unresolvable after the GC-race retries, meaning
	// the file is genuinely missing rather than mid-rewrite.
	CorruptionErrors *metric.Counter
}

// NewReadMetrics registers the read-path counters on reg and returns the
// shared instance to hand to each engine's Options.
func NewReadMetrics(reg *metric.Registry) *ReadMetrics {
	return &ReadMetrics{
		Reads:            reg.NewCounter("lsm.reads"),
		BloomFiltered:    reg.NewCounter("lsm.bloom.filtered"),
		TablesProbed:     reg.NewCounter("lsm.tables.probed"),
		BlockCacheHits:   reg.NewCounter("lsm.cache.block.hits"),
		BlockCacheMisses: reg.NewCounter("lsm.cache.block.misses"),
		HotCacheHits:     reg.NewCounter("lsm.cache.hot.hits"),
		HotCacheMisses:   reg.NewCounter("lsm.cache.hot.misses"),
		CorruptionErrors: reg.NewCounter("lsm.corruption.errors"),
	}
}

func newUnregisteredReadMetrics() *ReadMetrics {
	return &ReadMetrics{
		Reads:            &metric.Counter{},
		BloomFiltered:    &metric.Counter{},
		TablesProbed:     &metric.Counter{},
		BlockCacheHits:   &metric.Counter{},
		BlockCacheMisses: &metric.Counter{},
		HotCacheHits:     &metric.Counter{},
		HotCacheMisses:   &metric.Counter{},
		CorruptionErrors: &metric.Counter{},
	}
}

// WriteMetrics holds the write/maintenance-path counters. One instance is
// shared by all engines registered against the same metric.Registry; see
// Options.WriteMetrics.
type WriteMetrics struct {
	// CompactCoalesced counts auto-compaction triggers absorbed by an
	// already-running round (the single-flight guard).
	CompactCoalesced *metric.Counter
	// VlogWrites counts values separated into the value log; VlogFallbacks
	// counts injected append failures that degraded to inline storage.
	VlogWrites    *metric.Counter
	VlogFallbacks *metric.Counter
	// VlogGCRounds/VlogGCRewritten/VlogGCReclaimed instrument value-log GC:
	// candidate rounds started, live records moved to the log head, and
	// payload bytes of deleted files.
	VlogGCRounds    *metric.Counter
	VlogGCRewritten *metric.Counter
	VlogGCReclaimed *metric.Counter
	// VlogResolveDropped counts scan-side entries dropped because their
	// value-log file was deleted mid-scan — provably shadowed entries (see
	// resolveForScanLocked).
	VlogResolveDropped *metric.Counter
	// WALBytes counts framed bytes appended to the WAL (headers + CRC);
	// WALFsyncs counts sync operations issued under the fsync policy.
	WALBytes  *metric.Counter
	WALFsyncs *metric.Counter
}

// NewWriteMetrics registers the write-path counters on reg and returns the
// shared instance to hand to each engine's Options.
func NewWriteMetrics(reg *metric.Registry) *WriteMetrics {
	return &WriteMetrics{
		CompactCoalesced:   reg.NewCounter("lsm.compact.coalesced"),
		VlogWrites:         reg.NewCounter("lsm.vlog.writes"),
		VlogFallbacks:      reg.NewCounter("lsm.vlog.write.fallbacks"),
		VlogGCRounds:       reg.NewCounter("lsm.vlog.gc.rounds"),
		VlogGCRewritten:    reg.NewCounter("lsm.vlog.gc.rewritten"),
		VlogGCReclaimed:    reg.NewCounter("lsm.vlog.gc.reclaimed_bytes"),
		VlogResolveDropped: reg.NewCounter("lsm.vlog.resolve.dropped"),
		WALBytes:           reg.NewCounter("lsm.wal.bytes"),
		WALFsyncs:          reg.NewCounter("lsm.wal.fsyncs"),
	}
}

func newUnregisteredWriteMetrics() *WriteMetrics {
	return &WriteMetrics{
		CompactCoalesced:   &metric.Counter{},
		VlogWrites:         &metric.Counter{},
		VlogFallbacks:      &metric.Counter{},
		VlogGCRounds:       &metric.Counter{},
		VlogGCRewritten:    &metric.Counter{},
		VlogGCReclaimed:    &metric.Counter{},
		VlogResolveDropped: &metric.Counter{},
		WALBytes:           &metric.Counter{},
		WALFsyncs:          &metric.Counter{},
	}
}

// flushJob is a rotated (immutable) memtable waiting for its SSTable build
// to install. The table id is reserved at rotation time so id order — which
// seeds the replacement memtable and orders L0 — matches rotation order even
// when concurrent builds install out of order.
type flushJob struct {
	mem *memTable
	id  uint64
}

// Engine is a single-node LSM storage engine. It is safe for concurrent use.
type Engine struct {
	opts Options

	// readMetrics is Options.ReadMetrics or a private instance. The
	// counters are atomic, so reads bump them under the shared RLock.
	readMetrics *ReadMetrics
	// writeMetrics is Options.WriteMetrics or a private instance.
	writeMetrics *WriteMetrics

	// compactMu is the compaction single-flight guard. Auto-compaction
	// (maybeCompact) TryLocks it and counts a coalesced round on failure;
	// manual Compact blocks on it. It is always acquired before e.mu, never
	// while holding it.
	compactMu sync.Mutex

	// mergesActive counts compaction merges currently running outside the
	// engine lock — a test hook for asserting reads stay unblocked.
	mergesActive atomic.Int32

	// vlog is the value-separation log (nil when disabled). It has its own
	// lock; the order is e.mu before vlog.mu, never the reverse.
	vlog *valueLog
	// blockCache caches decoded L1+ blocks (nil when off).
	blockCache *blockCache
	// hotCache caches resolved point-read results (nil when off).
	hotCache *hotCache
	// writeEpoch increments under e.mu on every ApplyBatch before its keys
	// are invalidated in the hot cache; fills computed against an older
	// epoch are rejected (see hotCache.addHot).
	writeEpoch atomic.Uint64

	mu struct {
		sync.RWMutex
		mem *memTable
		// imm holds rotated memtables whose SSTable builds are in flight,
		// newest-first. Reads consult mem → imm → levels.
		imm     []*flushJob
		levels  [numLevels][]*ssTable // L0 newest-first; L1+ sorted, non-overlapping
		nextID  uint64
		metrics Metrics
		closed  bool
		// wal is the write-ahead log writer (nil for volatile engines). It
		// is mutated only under the exclusive lock: batch commits append,
		// flushes rotate, installs advance the manifest and prune segments.
		wal *walWriter
	}
}

// ErrClosed is returned by operations on a closed engine.
var ErrClosed = errors.New("lsm: engine is closed")

// newEngineShell builds an engine with metrics and caches wired but no
// memtable, value log, or WAL state — New fills those in fresh, Open from
// the recovered durable state.
func newEngineShell(opts Options) *Engine {
	e := &Engine{opts: opts.withDefaults()}
	e.readMetrics = e.opts.ReadMetrics
	if e.readMetrics == nil {
		e.readMetrics = newUnregisteredReadMetrics()
	}
	e.writeMetrics = e.opts.WriteMetrics
	if e.writeMetrics == nil {
		e.writeMetrics = newUnregisteredWriteMetrics()
	}
	if e.opts.BlockCacheBytes > 0 {
		e.blockCache = newBlockCache(e.opts.BlockCacheBytes)
	}
	if e.opts.HotKeyCacheSize > 0 {
		e.hotCache = newHotCache(e.opts.HotKeyCacheSize)
	}
	return e
}

// New returns an empty Engine. With Options.Durable set it starts a fresh
// durable engine over the directory (assumed empty); use Open to recover
// existing durable state after a crash.
func New(opts Options) *Engine {
	e := newEngineShell(opts)
	if !e.opts.DisableValueSeparation {
		e.vlog = newValueLog(e.opts.VlogFileSize, e.opts.Durable)
	}
	e.mu.mem = newMemTable(randutil.NewRand(e.opts.Seed))
	e.mu.nextID = 1
	if e.opts.Durable != nil {
		e.mu.wal = newWALWriter(e.opts.Durable, 1, e.opts.WALSegmentSize, e.opts.WALBytesPerSync)
		e.mu.mem.firstSeg = 1
	}
	return e
}

// Open recovers an Engine from the durable state in opts.Durable: it loads
// the manifest (verifying its checksum and format version), rebuilds the
// levels from the persisted sstables, re-opens the value-log files found in
// the directory, and replays the WAL from the manifest's minimum unflushed
// segment into a fresh memtable, truncating at the first torn or corrupt
// record. New appends go to a segment beyond every recovered one — a torn
// tail is never appended to. With a nil Durable (or an empty directory)
// Open is equivalent to New.
func Open(opts Options) (*Engine, error) {
	dir := opts.Durable
	if dir == nil {
		return New(opts), nil
	}
	m, exists, err := loadManifest(dir)
	if err != nil {
		return nil, err
	}
	if !exists {
		// No manifest: nothing was ever flushed. There may still be WAL
		// segments (a crash before the first flush), so replay from the
		// beginning with the initial state New would have used.
		m = &manifest{nextID: 1, minUnflushedSeg: 1, walSeg: 1}
	}
	e := newEngineShell(opts)
	for lvl := 0; lvl < numLevels; lvl++ {
		for _, id := range m.levels[lvl] {
			t, err := loadSSTable(dir, id)
			if err != nil {
				return nil, err
			}
			e.mu.levels[lvl] = append(e.mu.levels[lvl], t)
		}
	}
	if !e.opts.DisableValueSeparation {
		e.vlog = recoverValueLog(e.opts.VlogFileSize, dir, m)
	}
	e.mu.nextID = m.nextID
	// The replacement-memtable convention from flushLocked: the skiplist seed
	// derives from the next table id, so recovery lands on the same seed a
	// surviving engine would have used for a memtable created at this point.
	mem := newMemTable(randutil.NewRand(e.opts.Seed + int64(m.nextID)))
	mem.firstSeg = m.minUnflushedSeg
	var discards []valuePointer
	if _, err := replayWAL(dir, m.minUnflushedSeg, func(entries []Entry) {
		for _, ent := range entries {
			if old, replaced := mem.set(ent); replaced && old.vptr {
				if p, perr := decodeValuePointer(old.Value); perr == nil {
					discards = append(discards, p)
				}
			}
		}
	}); err != nil {
		return nil, err
	}
	e.mu.mem = mem
	e.mu.metrics.MemTableBytes = mem.sizeB
	if e.vlog != nil {
		// Same-memtable overwrites rediscovered by replay retire their old
		// value-log records, as the original commits did.
		for _, p := range discards {
			e.vlog.discard(p)
		}
	}
	// Resume the WAL beyond every segment present: the last one may end in a
	// torn record, and appending after a truncated tail would resurrect it.
	nextSeg := m.walSeg
	if segs := walSegments(dir); len(segs) > 0 {
		if last := segs[len(segs)-1]; last > nextSeg {
			nextSeg = last
		}
	}
	e.mu.wal = newWALWriter(dir, nextSeg+1, e.opts.WALSegmentSize, e.opts.WALBytesPerSync)
	removeOrphanSSTables(dir, m)
	return e, nil
}

// removeOrphanSSTables deletes sstable files the manifest does not
// reference — the residue of a crash between persisting a table and
// installing the manifest that would have adopted it.
func removeOrphanSSTables(dir *Dir, m *manifest) {
	referenced := make(map[uint64]bool)
	for lvl := 0; lvl < numLevels; lvl++ {
		for _, id := range m.levels[lvl] {
			referenced[id] = true
		}
	}
	for _, name := range dir.List("sst-") {
		var id uint64
		if _, err := fmt.Sscanf(name, "sst-%d", &id); err != nil {
			continue
		}
		if !referenced[id] {
			dir.Remove(name)
		}
	}
}

// walAppendLocked frames one record into the WAL and keeps the byte/fsync
// metrics current. Caller holds e.mu exclusively and has checked wal != nil.
func (e *Engine) walAppendLocked(payload []byte) {
	w := e.mu.wal
	pre := w.fsyncs
	framed, _ := w.append(payload)
	e.mu.metrics.WALBytes += framed
	e.writeMetrics.WALBytes.Inc(framed)
	e.noteWALFsyncsLocked(pre)
}

// noteWALFsyncsLocked folds syncs issued since pre into the metrics.
func (e *Engine) noteWALFsyncsLocked(pre int64) {
	if d := e.mu.wal.fsyncs - pre; d > 0 {
		e.mu.metrics.WALFsyncs += d
		e.writeMetrics.WALFsyncs.Inc(d)
	}
}

// minUnflushedSegLocked returns the lowest WAL segment still holding
// unflushed data: the minimum firstSeg over the active memtable and every
// immutable memtable whose sstable build has not installed.
func (e *Engine) minUnflushedSegLocked() uint64 {
	min := e.mu.mem.firstSeg
	for _, j := range e.mu.imm {
		if j.mem.firstSeg < min {
			min = j.mem.firstSeg
		}
	}
	return min
}

// writeManifestLocked installs a manifest describing the current durable
// state and prunes WAL segments recovery can no longer need. Called under
// e.mu after every flush or compaction install; a no-op for volatile
// engines.
func (e *Engine) writeManifestLocked() {
	if e.mu.wal == nil {
		return
	}
	m := &manifest{
		nextID:          e.mu.nextID,
		minUnflushedSeg: e.minUnflushedSegLocked(),
		walSeg:          e.mu.wal.seg,
	}
	for lvl := 0; lvl < numLevels; lvl++ {
		for _, t := range e.mu.levels[lvl] {
			m.levels[lvl] = append(m.levels[lvl], t.id)
		}
	}
	if e.vlog != nil {
		// Lock order: e.mu before vlog.mu, the established direction.
		m.vlogActiveID, m.vlogFiles = e.vlog.manifestState()
	}
	installManifest(e.opts.Durable, m)
	e.mu.wal.deleteSegmentsBelow(m.minUnflushedSeg)
}

// walSyncBarrier forces any buffered WAL tail to durability. Value-log GC
// invokes it before deleting a rewritten file: the relocated pointers ride
// WAL records that must survive a crash that the deletion does.
func (e *Engine) walSyncBarrier() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.mu.wal == nil || e.mu.closed {
		return
	}
	pre := e.mu.wal.fsyncs
	e.mu.wal.sync()
	e.noteWALFsyncsLocked(pre)
}

// Set writes key=value.
func (e *Engine) Set(key, value []byte) error {
	return e.apply(Entry{Key: cloneBytes(key), Value: cloneBytes(value)})
}

// Delete writes a tombstone for key.
func (e *Engine) Delete(key []byte) error {
	return e.apply(Entry{Key: cloneBytes(key), Tombstone: true})
}

// ApplyBatch writes a batch of entries atomically with respect to flushes.
// If the batch pushes the memtable past its threshold, the rotation happens
// inside the same critical section as the writes: a concurrent writer that
// also crossed the threshold observes the already-rotated (empty) memtable
// instead of re-flushing it.
func (e *Engine) ApplyBatch(entries []Entry) error {
	// An injected write stall (a backed-up WAL or flush queue) delays the
	// batch before it reaches the engine lock, so stalled writers don't block
	// readers for the stall's duration.
	e.opts.Faults.Should("lsm.write.stall")
	// Value separation happens before the engine lock: large values go to
	// the value log (its own lock) and only the 12-byte pointer enters the
	// critical section. An injected append failure degrades to inline
	// storage — logically transparent, so replicas whose fault streams
	// diverge still converge on reads.
	sep := make([]Entry, len(entries))
	for i, ent := range entries {
		ent.Key = cloneBytes(ent.Key)
		ent.Value = cloneBytes(ent.Value)
		if e.vlog != nil && !ent.Tombstone && !ent.vptr && len(ent.Value) >= e.opts.ValueThreshold {
			if err := e.opts.Faults.MaybeErr("lsm.vlog.write.error"); err != nil {
				e.writeMetrics.VlogFallbacks.Inc(1)
			} else {
				ent.Value = encodeValuePointer(e.vlog.append(ent.Key, ent.Value))
				ent.vptr = true
				e.writeMetrics.VlogWrites.Inc(1)
			}
		}
		sep[i] = ent
	}
	var discards []valuePointer
	e.mu.Lock()
	if e.mu.closed {
		e.mu.Unlock()
		return ErrClosed
	}
	// WAL first, inside the critical section: the record is framed and (per
	// the fsync policy) synced before any entry becomes visible, and record
	// order is exactly apply order. Volatile engines account the bytes the
	// batch would have framed, so WALBytes stays comparable.
	if len(sep) > 0 {
		if e.mu.wal != nil {
			var payload []byte
			for _, ent := range sep {
				payload = appendEntry(payload, ent)
			}
			e.walAppendLocked(payload)
		} else {
			framed := int64(walRecordHeaderLen)
			for _, ent := range sep {
				framed += int64(9 + len(ent.Key) + len(ent.Value))
			}
			e.mu.metrics.WALBytes += framed
			e.writeMetrics.WALBytes.Inc(framed)
		}
	}
	// The epoch bump precedes the invalidations, so a racing fill either
	// sees the new epoch (and rejects itself) or lands before the
	// invalidation (and is removed by it).
	e.writeEpoch.Add(1)
	for _, ent := range sep {
		if e.hotCache != nil {
			e.hotCache.invalidate(ent.Key)
		}
		if old, replaced := e.mu.mem.set(ent); replaced && old.vptr {
			if p, err := decodeValuePointer(old.Value); err == nil {
				discards = append(discards, p)
			}
		}
	}
	e.mu.metrics.MemTableBytes = e.mu.mem.sizeB
	var sp *trace.Span
	var job *flushJob
	var flushed bool
	if e.mu.mem.sizeB >= e.opts.MemTableSize {
		// A failed background flush is not a write failure: the entries are
		// already durable in the memtable (and WAL, in a real engine) and the
		// rotation is retried at the next threshold crossing.
		sp, job, flushed, _ = e.flushLocked() //lint:allow faulterr a failed background flush is not a write failure; rotation retries at the next threshold crossing
	}
	e.mu.Unlock()
	// Same-memtable overwrites retire their old value-log records; reported
	// outside the lock (discard stats drive GC, nothing on the read path).
	for _, p := range discards {
		e.vlog.discard(p)
	}
	if job != nil {
		e.buildAndInstall(sp, job)
	}
	if flushed && !e.opts.DisableAutoCompactions {
		e.maybeCompact()
	}
	sp.Finish()
	return nil
}

func (e *Engine) apply(ent Entry) error {
	return e.ApplyBatch([]Entry{ent})
}

// Get returns the value for key. The boolean reports whether the key exists
// (a tombstone reads as not found).
//
// The read path holds the engine lock only long enough to probe the active
// memtable and snapshot the immutable runs (every install is copy-on-write,
// so the snapshotted slices never mutate); the level walk, block decodes,
// cache fills, and value-log resolution all run outside it. A pointer whose
// value-log file was deleted by a GC that raced the unlocked window simply
// retries from a fresh snapshot — the rewrite installed the new pointer
// before the deletion, so the retry finds it.
func (e *Engine) Get(key []byte) ([]byte, bool, error) {
	e.readMetrics.Reads.Inc(1)
	if e.hotCache != nil {
		if v, ok, hit := e.hotCache.get(key); hit {
			e.readMetrics.HotCacheHits.Inc(1)
			return v, ok, nil
		}
		e.readMetrics.HotCacheMisses.Inc(1)
	}
	for attempt := 0; ; attempt++ {
		v, ok, err := e.getOnce(key)
		if err == errVlogFileGone {
			if attempt < 16 {
				continue
			}
			// A pointer that stays unresolvable through every retry is not a
			// GC race (the rewrite installs the new pointer before deleting
			// the file): the value-log file is genuinely missing. Surface it
			// as typed corruption, not the internal retry sentinel.
			e.readMetrics.CorruptionErrors.Inc(1)
			return nil, false, fmt.Errorf("%w: value-log file unresolvable after %d attempts for key %q",
				ErrCorruption, attempt+1, key)
		}
		// getOnce returns an engine-owned view; the caller gets its own copy.
		return cloneBytes(v), ok, err
	}
}

// getOnce runs one snapshot-probe-resolve pass of the read path.
func (e *Engine) getOnce(key []byte) ([]byte, bool, error) {
	e.mu.RLock()
	if e.mu.closed {
		e.mu.RUnlock()
		return nil, false, ErrClosed
	}
	epoch := e.writeEpoch.Load()
	ent, found := e.mu.mem.get(key)
	imm := e.mu.imm
	levels := e.mu.levels // an array of slice headers: a cheap, stable snapshot
	e.mu.RUnlock()

	if !found {
		ent, found = e.probeRuns(key, imm, levels)
	}
	var v []byte
	ok := false
	if found && !ent.Tombstone {
		var err error
		v, err = e.resolveValue(ent)
		if err != nil {
			return nil, false, err
		}
		ok = true
	}
	if e.hotCache != nil {
		e.hotCache.addHot(key, v, ok, epoch, &e.writeEpoch)
	}
	return v, ok, nil
}

// probeRuns walks a snapshot of the immutable runs newest-first and returns
// the first authoritative entry for key (tombstones included — the walk
// never continues past one).
func (e *Engine) probeRuns(key []byte, imm []*flushJob, levels [numLevels][]*ssTable) (Entry, bool) {
	// Immutable memtables whose SSTable builds are in flight, newest-first.
	// They hold data that has left the active memtable but not yet reached
	// L0; skipping them would un-ack acknowledged writes.
	for _, j := range imm {
		if ent, ok := j.mem.get(key); ok {
			return ent, true
		}
	}
	accel := !e.opts.DisableReadAcceleration
	// L0: newest first. Any L0 table may overlap the key, but the bloom
	// filter lets most of a deep backlog be skipped without a search. L0
	// bypasses the block cache: compaction churns it too fast to earn hits.
	for _, t := range levels[0] {
		if accel && !t.filter.mayContain(key) {
			e.readMetrics.BloomFiltered.Inc(1)
			continue
		}
		e.readMetrics.TablesProbed.Inc(1)
		if ent, ok := t.get(key, nil); ok {
			return ent, true
		}
	}
	for lvl := 1; lvl < numLevels; lvl++ {
		tables := levels[lvl]
		if !accel {
			for _, t := range tables {
				e.readMetrics.TablesProbed.Inc(1)
				if ent, ok := t.getCounting(key, e.blockCache, e.readMetrics); ok {
					return ent, true
				}
			}
			continue
		}
		// L1+ tables are sorted and non-overlapping: binary-search the
		// level's maxKey bounds for the one table that can contain key.
		i := sortSearchTables(tables, key)
		if i < 0 {
			continue
		}
		t := tables[i]
		if !t.filter.mayContain(key) {
			e.readMetrics.BloomFiltered.Inc(1)
			continue
		}
		e.readMetrics.TablesProbed.Inc(1)
		if ent, ok := t.getCounting(key, e.blockCache, e.readMetrics); ok {
			return ent, true
		}
	}
	return Entry{}, false
}

// resolveValue returns a stable engine-owned view of a non-tombstone
// entry's value, chasing its value-log pointer if separated. Inline values
// alias immutable memtable entries or sstable blocks; separated values
// alias the immutable value-log buffer. Callers hand out copies, not the
// view — the hot cache stores the view as is.
func (e *Engine) resolveValue(ent Entry) ([]byte, error) {
	if !ent.vptr {
		return ent.Value, nil
	}
	ptr, err := decodeValuePointer(ent.Value)
	if err != nil {
		return nil, err
	}
	return e.vlog.get(ptr)
}

// Flush moves the active memtable into a new L0 sstable. The flush is
// complete — data queryable from L0, metrics updated — by the time Flush
// returns, even though the build runs outside the engine lock.
func (e *Engine) Flush() error {
	e.mu.Lock()
	if e.mu.closed {
		e.mu.Unlock()
		return ErrClosed
	}
	sp, job, flushed, err := e.flushLocked()
	e.mu.Unlock()
	if job != nil {
		e.buildAndInstall(sp, job)
	}
	if flushed && !e.opts.DisableAutoCompactions {
		e.maybeCompact()
	}
	sp.Finish()
	return err
}

// flushLocked rotates the active memtable. The caller must hold e.mu
// (write-locked) and is responsible for two follow-ups after releasing it:
// calling buildAndInstall on the returned job (nil in baseline mode, where
// the build already happened here, under the lock), and finishing the
// returned span (whose duration is meant to cover any follow-up
// compaction). The boolean reports whether a rotation happened; the span
// alone can't signal that, since a nil Tracer yields nil spans for real
// flushes. An injected flush error (lsm.flush.error) leaves the memtable in
// place — nothing is lost, the rotation just didn't happen.
//
// In the default pipelined mode the rotation is a pointer swap: the old
// memtable joins e.mu.imm, where reads keep finding it, and the sort +
// bloom build runs outside the lock on the calling goroutine. The
// synchronous handoff — not a free-running background goroutine — is what
// keeps same-seed runs byte-identical (DESIGN.md §8). The sstable id is
// reserved here so id order matches rotation order; the replacement
// memtable's seed derives from nextID exactly as the seed code did.
func (e *Engine) flushLocked() (*trace.Span, *flushJob, bool, error) {
	if e.mu.mem.empty() {
		return nil, nil, false, nil
	}
	//lint:allow lockscope fault site is delay-free by contract (Options.Faults)
	if err := e.opts.Faults.MaybeErr("lsm.flush.error"); err != nil {
		return nil, nil, false, err
	}
	sp := e.opts.Tracer.StartRoot("lsm.flush")
	job := &flushJob{mem: e.mu.mem, id: e.mu.nextID}
	e.mu.nextID++
	if e.mu.wal != nil {
		// Rotate the WAL with the memtable: the rotated memtable's records
		// end at the segment boundary, and once its sstable installs, the
		// manifest's unflushed floor advances past them.
		pre := e.mu.wal.fsyncs
		e.mu.wal.rotate()
		e.noteWALFsyncsLocked(pre)
	}
	e.mu.mem = newMemTable(randutil.NewRand(e.opts.Seed + int64(e.mu.nextID)))
	if e.mu.wal != nil {
		e.mu.mem.firstSeg = e.mu.wal.seg
	}
	e.mu.metrics.MemTableBytes = 0
	if e.opts.DisableWritePipelining {
		// Baseline: build the sstable inside the critical section, stalling
		// every reader and writer for the duration (the seed behavior).
		//lint:allow lockscope DisableWritePipelining baseline builds under the lock by design
		t := newSSTable(job.id, job.mem.entries())
		e.installFlushLocked(nil, t, sp)
		return sp, nil, true, nil
	}
	e.mu.imm = append([]*flushJob{job}, e.mu.imm...)
	return sp, job, true, nil
}

// buildAndInstall constructs the sstable for a rotated memtable outside the
// engine lock and publishes it into L0. It runs synchronously on the
// goroutine that triggered the rotation: readers are not blocked by the
// build, yet the flush still completes before the write (or Flush call)
// that caused it returns.
func (e *Engine) buildAndInstall(sp *trace.Span, job *flushJob) {
	t := newSSTable(job.id, job.mem.entries())
	e.mu.Lock()
	e.installFlushLocked(job, t, sp)
	e.mu.Unlock()
}

// installFlushLocked publishes a built sstable into L0, retiring its flush
// job from the immutable queue (job is nil on the baseline path, which
// never queued one). L0 is kept ordered newest-first by table id, so
// out-of-order installs from concurrent builds cannot invert shadowing.
//
// Every slice mutation here is copy-on-write: readers snapshot the imm and
// level slice headers under RLock and keep walking them after releasing the
// lock, so the arrays behind a published header must never change.
func (e *Engine) installFlushLocked(job *flushJob, t *ssTable, sp *trace.Span) {
	if job != nil {
		imm := make([]*flushJob, 0, len(e.mu.imm))
		for _, j := range e.mu.imm {
			if j != job {
				imm = append(imm, j)
			}
		}
		e.mu.imm = imm
	}
	pos := sort.Search(len(e.mu.levels[0]), func(i int) bool {
		return e.mu.levels[0][i].id < t.id
	})
	l0 := make([]*ssTable, 0, len(e.mu.levels[0])+1)
	l0 = append(l0, e.mu.levels[0][:pos]...)
	l0 = append(l0, t)
	l0 = append(l0, e.mu.levels[0][pos:]...)
	e.mu.levels[0] = l0
	e.mu.metrics.FlushedBytes += t.sizeB
	e.mu.metrics.FlushCount++
	if e.mu.wal != nil {
		// Persist the table before the manifest that references it; a crash
		// between the two leaves an orphan file that recovery deletes.
		persistSSTable(e.opts.Durable, t)
		e.writeManifestLocked()
	}
	sp.SetAttr("lsm.flushed_bytes", t.sizeB)
	sp.SetAttr("lsm.l0_files", len(e.mu.levels[0]))
}

// Metrics returns a snapshot of the engine's instrumentation.
func (e *Engine) Metrics() Metrics {
	e.mu.RLock()
	defer e.mu.RUnlock()
	m := e.mu.metrics
	m.L0Files = len(e.mu.levels[0])
	m.MemTableBytes = e.mu.mem.sizeB
	var l0Bytes int64
	for _, t := range e.mu.levels[0] {
		l0Bytes += t.sizeB
	}
	m.L0Bytes = l0Bytes
	// Each immutable memtable is one more sorted run a read may consult.
	m.ReadAmplification = 1 + len(e.mu.imm) + len(e.mu.levels[0])
	for lvl := 0; lvl < numLevels; lvl++ {
		var b int64
		for _, t := range e.mu.levels[lvl] {
			b += t.sizeB
		}
		m.LevelBytes[lvl] = b
		if lvl >= 1 && len(e.mu.levels[lvl]) > 0 {
			m.ReadAmplification++
		}
	}
	m.Reads = e.readMetrics.Reads.Value()
	m.BloomFiltered = e.readMetrics.BloomFiltered.Value()
	m.TablesProbed = e.readMetrics.TablesProbed.Value()
	m.CompactionsCoalesced = e.writeMetrics.CompactCoalesced.Value()
	m.BlockCacheHits = e.readMetrics.BlockCacheHits.Value()
	m.BlockCacheMisses = e.readMetrics.BlockCacheMisses.Value()
	m.HotCacheHits = e.readMetrics.HotCacheHits.Value()
	m.HotCacheMisses = e.readMetrics.HotCacheMisses.Value()
	m.VlogWrites = e.writeMetrics.VlogWrites.Value()
	m.VlogWriteFallbacks = e.writeMetrics.VlogFallbacks.Value()
	m.VlogGCRounds = e.writeMetrics.VlogGCRounds.Value()
	m.VlogGCRewritten = e.writeMetrics.VlogGCRewritten.Value()
	m.VlogGCReclaimedBytes = e.writeMetrics.VlogGCReclaimed.Value()
	m.VlogResolveDropped = e.writeMetrics.VlogResolveDropped.Value()
	m.CorruptionErrors = e.readMetrics.CorruptionErrors.Value()
	if e.vlog != nil {
		vs := e.vlog.stats()
		m.VlogFiles = vs.files
		m.VlogLiveBytes = vs.liveBytes
		m.VlogDeadBytes = vs.deadBytes
	}
	return m
}

// Close releases the engine. Subsequent operations return ErrClosed. A
// durable engine syncs any buffered WAL tail first, so a clean close loses
// nothing even under a relaxed fsync policy.
func (e *Engine) Close() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.mu.closed {
		return
	}
	if e.mu.wal != nil {
		pre := e.mu.wal.fsyncs
		e.mu.wal.sync()
		e.noteWALFsyncsLocked(pre)
	}
	e.mu.closed = true
}

// String summarizes the level shape for debugging.
func (e *Engine) String() string {
	m := e.Metrics()
	s := fmt.Sprintf("mem=%dB", m.MemTableBytes)
	for lvl := 0; lvl < numLevels; lvl++ {
		s += fmt.Sprintf(" L%d=%dB", lvl, m.LevelBytes[lvl])
	}
	return s
}

func cloneBytes(b []byte) []byte {
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}
