package lsm

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"sync"

	"crdbserverless/internal/faultinject"
	"crdbserverless/internal/metric"
	"crdbserverless/internal/randutil"
	"crdbserverless/internal/trace"
)

// numLevels is the number of on-disk levels (L0..L6), following Pebble.
const numLevels = 7

// Options configures an Engine.
type Options struct {
	// MemTableSize is the flush threshold in bytes. Defaults to 4 MiB.
	MemTableSize int64
	// L0CompactionThreshold is the number of L0 files that triggers an
	// L0->Lbase compaction. Defaults to 4.
	L0CompactionThreshold int
	// LBaseMaxBytes is the target size of L1; each deeper level is 10x
	// larger. Defaults to 16 MiB.
	LBaseMaxBytes int64
	// Seed seeds the skiplist RNG. Defaults to 0 (deterministic).
	Seed int64
	// DisableAutoCompactions turns off compaction scheduling after writes;
	// tests use this to construct specific level shapes.
	DisableAutoCompactions bool
	// DisableReadAcceleration turns off the bloom-filter consult and the
	// L1+ level-bound seek, restoring the probe-every-table read path.
	// Benchmarks and tests use it to measure the acceleration itself.
	DisableReadAcceleration bool
	// Tracer, when non-nil, records background flush and compaction work
	// as root spans (lsm.flush / lsm.compact). The engine has no clock of
	// its own; span timestamps come from the tracer's clock.
	Tracer *trace.Tracer
	// ReadMetrics, when non-nil, receives the read-path counters. A
	// deployment creates one ReadMetrics per registry and shares it across
	// its engines (Registry panics on duplicate names, so per-engine
	// registration is not an option). When nil the engine allocates
	// private, unregistered counters so the Metrics snapshot still works.
	ReadMetrics *ReadMetrics
	// Faults, when non-nil, arms the engine's fault-injection sites:
	// lsm.write.stall delays a write before it takes the engine lock,
	// lsm.flush.error fails a memtable rotation (the memtable stays and is
	// retried at the next threshold crossing), and lsm.compact.error skips a
	// compaction round. The flush and compaction sites are consulted under
	// the engine lock, so configure them without a Delay.
	Faults *faultinject.Registry
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.MemTableSize == 0 {
		out.MemTableSize = 4 << 20
	}
	if out.L0CompactionThreshold == 0 {
		out.L0CompactionThreshold = 4
	}
	if out.LBaseMaxBytes == 0 {
		out.LBaseMaxBytes = 16 << 20
	}
	return out
}

// Metrics is a point-in-time snapshot of engine instrumentation. Admission
// control's capacity estimator (§5.1.3) consumes FlushedBytes,
// CompactedBytes, and L0 state.
type Metrics struct {
	// L0Files is the current number of sstables in level 0. A backlog here
	// increases read amplification and signals that compactions are behind.
	L0Files int
	// L0Bytes is the total bytes in level 0.
	L0Bytes int64
	// LevelBytes reports the bytes resident in each level.
	LevelBytes [numLevels]int64
	// FlushedBytes is the cumulative bytes flushed from memtables to L0.
	FlushedBytes int64
	// CompactedBytes is the cumulative bytes written by compactions.
	CompactedBytes int64
	// FlushCount and CompactionCount are cumulative operation counts.
	FlushCount      int64
	CompactionCount int64
	// WALBytes is the cumulative bytes appended to the write-ahead log.
	WALBytes int64
	// MemTableBytes is the current size of the active memtable.
	MemTableBytes int64
	// ReadAmplification is the number of sorted runs a read may consult:
	// memtable + L0 files + one per non-empty deeper level.
	ReadAmplification int
	// Reads is the cumulative number of Get calls; BloomFiltered counts
	// candidate sstables skipped by a negative bloom-filter answer, and
	// TablesProbed counts sstables actually binary-searched. The three are
	// drawn from the engine's ReadMetrics counters, which may be shared
	// with other engines in the same deployment.
	Reads         int64
	BloomFiltered int64
	TablesProbed  int64
}

// ReadMetrics holds the read-path counters. One instance is shared by all
// engines registered against the same metric.Registry; see
// Options.ReadMetrics.
type ReadMetrics struct {
	Reads         *metric.Counter
	BloomFiltered *metric.Counter
	TablesProbed  *metric.Counter
}

// NewReadMetrics registers the read-path counters on reg and returns the
// shared instance to hand to each engine's Options.
func NewReadMetrics(reg *metric.Registry) *ReadMetrics {
	return &ReadMetrics{
		Reads:         reg.NewCounter("lsm.reads"),
		BloomFiltered: reg.NewCounter("lsm.bloom.filtered"),
		TablesProbed:  reg.NewCounter("lsm.tables.probed"),
	}
}

func newUnregisteredReadMetrics() *ReadMetrics {
	return &ReadMetrics{
		Reads:         &metric.Counter{},
		BloomFiltered: &metric.Counter{},
		TablesProbed:  &metric.Counter{},
	}
}

// Engine is a single-node LSM storage engine. It is safe for concurrent use.
type Engine struct {
	opts Options

	// readMetrics is Options.ReadMetrics or a private instance. The
	// counters are atomic, so reads bump them under the shared RLock.
	readMetrics *ReadMetrics

	mu struct {
		sync.RWMutex
		mem     *memTable
		levels  [numLevels][]*ssTable // L0 newest-first; L1+ sorted, non-overlapping
		nextID  uint64
		metrics Metrics
		closed  bool
	}
}

// ErrClosed is returned by operations on a closed engine.
var ErrClosed = errors.New("lsm: engine is closed")

// New returns an empty Engine.
func New(opts Options) *Engine {
	e := &Engine{opts: opts.withDefaults()}
	e.readMetrics = e.opts.ReadMetrics
	if e.readMetrics == nil {
		e.readMetrics = newUnregisteredReadMetrics()
	}
	e.mu.mem = newMemTable(randutil.NewRand(e.opts.Seed))
	e.mu.nextID = 1
	return e
}

// Set writes key=value.
func (e *Engine) Set(key, value []byte) error {
	return e.apply(Entry{Key: cloneBytes(key), Value: cloneBytes(value)})
}

// Delete writes a tombstone for key.
func (e *Engine) Delete(key []byte) error {
	return e.apply(Entry{Key: cloneBytes(key), Tombstone: true})
}

// ApplyBatch writes a batch of entries atomically with respect to flushes.
// If the batch pushes the memtable past its threshold, the rotation happens
// inside the same critical section as the writes: a concurrent writer that
// also crossed the threshold observes the already-rotated (empty) memtable
// instead of re-flushing it.
func (e *Engine) ApplyBatch(entries []Entry) error {
	// An injected write stall (a backed-up WAL or flush queue) delays the
	// batch before it reaches the engine lock, so stalled writers don't block
	// readers for the stall's duration.
	e.opts.Faults.Should("lsm.write.stall")
	e.mu.Lock()
	if e.mu.closed {
		e.mu.Unlock()
		return ErrClosed
	}
	for _, ent := range entries {
		ent.Key = cloneBytes(ent.Key)
		ent.Value = cloneBytes(ent.Value)
		e.mu.metrics.WALBytes += ent.size()
		e.mu.mem.set(ent)
	}
	e.mu.metrics.MemTableBytes = e.mu.mem.sizeB
	var sp *trace.Span
	var flushed bool
	if e.mu.mem.sizeB >= e.opts.MemTableSize {
		// A failed background flush is not a write failure: the entries are
		// already durable in the memtable (and WAL, in a real engine) and the
		// rotation is retried at the next threshold crossing.
		sp, flushed, _ = e.flushLocked()
	}
	auto := flushed && !e.opts.DisableAutoCompactions
	e.mu.Unlock()
	if auto {
		e.maybeCompact()
	}
	sp.Finish()
	return nil
}

func (e *Engine) apply(ent Entry) error {
	return e.ApplyBatch([]Entry{ent})
}

// Get returns the value for key. The boolean reports whether the key exists
// (a tombstone reads as not found).
func (e *Engine) Get(key []byte) ([]byte, bool, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.mu.closed {
		return nil, false, ErrClosed
	}
	e.readMetrics.Reads.Inc(1)
	if ent, ok := e.mu.mem.get(key); ok {
		return entryValue(ent)
	}
	accel := !e.opts.DisableReadAcceleration
	// L0: newest first. Any L0 table may overlap the key, but the bloom
	// filter lets most of a deep backlog be skipped without a search.
	for _, t := range e.mu.levels[0] {
		if accel && !t.filter.mayContain(key) {
			e.readMetrics.BloomFiltered.Inc(1)
			continue
		}
		e.readMetrics.TablesProbed.Inc(1)
		if ent, ok := t.get(key); ok {
			return entryValue(ent)
		}
	}
	for lvl := 1; lvl < numLevels; lvl++ {
		tables := e.mu.levels[lvl]
		if !accel {
			for _, t := range tables {
				e.readMetrics.TablesProbed.Inc(1)
				if ent, ok := t.get(key); ok {
					return entryValue(ent)
				}
			}
			continue
		}
		// L1+ tables are sorted and non-overlapping: binary-search the
		// level's maxKey bounds for the one table that can contain key.
		i := sort.Search(len(tables), func(i int) bool {
			return bytes.Compare(tables[i].maxKey, key) >= 0
		})
		if i >= len(tables) || bytes.Compare(tables[i].minKey, key) > 0 {
			continue
		}
		t := tables[i]
		if !t.filter.mayContain(key) {
			e.readMetrics.BloomFiltered.Inc(1)
			continue
		}
		e.readMetrics.TablesProbed.Inc(1)
		if ent, ok := t.get(key); ok {
			return entryValue(ent)
		}
	}
	return nil, false, nil
}

// entryValue translates a found entry into Get's return convention (a
// tombstone reads as not found).
func entryValue(ent Entry) ([]byte, bool, error) {
	if ent.Tombstone {
		return nil, false, nil
	}
	return cloneBytes(ent.Value), true, nil
}

// Flush moves the active memtable into a new L0 sstable.
func (e *Engine) Flush() error {
	e.mu.Lock()
	if e.mu.closed {
		e.mu.Unlock()
		return ErrClosed
	}
	sp, flushed, err := e.flushLocked()
	auto := flushed && !e.opts.DisableAutoCompactions
	e.mu.Unlock()
	if auto {
		e.maybeCompact()
	}
	sp.Finish()
	return err
}

// flushLocked rotates the active memtable into a new L0 sstable. The caller
// must hold e.mu (write-locked) and is responsible for finishing the
// returned span after releasing the lock (and after any follow-up
// compaction, which the span's duration is meant to cover). The boolean
// reports whether a rotation happened; the span alone can't signal that,
// since a nil Tracer yields nil spans for real flushes. An injected flush
// error (lsm.flush.error) leaves the memtable in place — nothing is lost,
// the rotation just didn't happen.
func (e *Engine) flushLocked() (*trace.Span, bool, error) {
	if e.mu.mem.empty() {
		return nil, false, nil
	}
	if err := e.opts.Faults.MaybeErr("lsm.flush.error"); err != nil {
		return nil, false, err
	}
	sp := e.opts.Tracer.StartRoot("lsm.flush")
	entries := e.mu.mem.entries()
	t := newSSTable(e.mu.nextID, entries)
	e.mu.nextID++
	// L0 is ordered newest-first so reads hit the freshest run first.
	e.mu.levels[0] = append([]*ssTable{t}, e.mu.levels[0]...)
	e.mu.mem = newMemTable(randutil.NewRand(e.opts.Seed + int64(e.mu.nextID)))
	e.mu.metrics.FlushedBytes += t.sizeB
	e.mu.metrics.FlushCount++
	e.mu.metrics.MemTableBytes = 0
	sp.SetAttr("lsm.flushed_bytes", t.sizeB)
	sp.SetAttr("lsm.l0_files", len(e.mu.levels[0]))
	return sp, true, nil
}

// Metrics returns a snapshot of the engine's instrumentation.
func (e *Engine) Metrics() Metrics {
	e.mu.RLock()
	defer e.mu.RUnlock()
	m := e.mu.metrics
	m.L0Files = len(e.mu.levels[0])
	m.MemTableBytes = e.mu.mem.sizeB
	var l0Bytes int64
	for _, t := range e.mu.levels[0] {
		l0Bytes += t.sizeB
	}
	m.L0Bytes = l0Bytes
	m.ReadAmplification = 1 + len(e.mu.levels[0])
	for lvl := 0; lvl < numLevels; lvl++ {
		var b int64
		for _, t := range e.mu.levels[lvl] {
			b += t.sizeB
		}
		m.LevelBytes[lvl] = b
		if lvl >= 1 && len(e.mu.levels[lvl]) > 0 {
			m.ReadAmplification++
		}
	}
	m.Reads = e.readMetrics.Reads.Value()
	m.BloomFiltered = e.readMetrics.BloomFiltered.Value()
	m.TablesProbed = e.readMetrics.TablesProbed.Value()
	return m
}

// Close releases the engine. Subsequent operations return ErrClosed.
func (e *Engine) Close() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.mu.closed = true
}

// String summarizes the level shape for debugging.
func (e *Engine) String() string {
	m := e.Metrics()
	s := fmt.Sprintf("mem=%dB", m.MemTableBytes)
	for lvl := 0; lvl < numLevels; lvl++ {
		s += fmt.Sprintf(" L%d=%dB", lvl, m.LevelBytes[lvl])
	}
	return s
}

func cloneBytes(b []byte) []byte {
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}
