package lsm

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"crdbserverless/internal/faultinject"
	"crdbserverless/internal/metric"
	"crdbserverless/internal/randutil"
	"crdbserverless/internal/trace"
)

// numLevels is the number of on-disk levels (L0..L6), following Pebble.
const numLevels = 7

// Options configures an Engine.
type Options struct {
	// MemTableSize is the flush threshold in bytes. Defaults to 4 MiB.
	MemTableSize int64
	// L0CompactionThreshold is the number of L0 files that triggers an
	// L0->Lbase compaction. Defaults to 4.
	L0CompactionThreshold int
	// LBaseMaxBytes is the target size of L1; each deeper level is 10x
	// larger. Defaults to 16 MiB.
	LBaseMaxBytes int64
	// Seed seeds the skiplist RNG. Defaults to 0 (deterministic).
	Seed int64
	// DisableAutoCompactions turns off compaction scheduling after writes;
	// tests use this to construct specific level shapes.
	DisableAutoCompactions bool
	// DisableReadAcceleration turns off the bloom-filter consult and the
	// L1+ level-bound seek, restoring the probe-every-table read path.
	// Benchmarks and tests use it to measure the acceleration itself.
	DisableReadAcceleration bool
	// Tracer, when non-nil, records background flush and compaction work
	// as root spans (lsm.flush / lsm.compact). The engine has no clock of
	// its own; span timestamps come from the tracer's clock.
	Tracer *trace.Tracer
	// DisableWritePipelining restores the pre-pipelining write path:
	// SSTable builds and compaction merges run inside the engine's
	// exclusive lock, stalling readers for their duration. Benchmarks use
	// it as the baseline, analogous to DisableReadAcceleration.
	DisableWritePipelining bool
	// ReadMetrics, when non-nil, receives the read-path counters. A
	// deployment creates one ReadMetrics per registry and shares it across
	// its engines (Registry panics on duplicate names, so per-engine
	// registration is not an option). When nil the engine allocates
	// private, unregistered counters so the Metrics snapshot still works.
	ReadMetrics *ReadMetrics
	// WriteMetrics, when non-nil, receives the write/maintenance-path
	// counters; shared across engines like ReadMetrics.
	WriteMetrics *WriteMetrics
	// Faults, when non-nil, arms the engine's fault-injection sites:
	// lsm.write.stall delays a write before it takes the engine lock,
	// lsm.flush.error fails a memtable rotation (the memtable stays and is
	// retried at the next threshold crossing), and lsm.compact.error skips a
	// compaction round. The flush and compaction sites are consulted under
	// the engine lock, so configure them without a Delay.
	Faults *faultinject.Registry
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.MemTableSize == 0 {
		out.MemTableSize = 4 << 20
	}
	if out.L0CompactionThreshold == 0 {
		out.L0CompactionThreshold = 4
	}
	if out.LBaseMaxBytes == 0 {
		out.LBaseMaxBytes = 16 << 20
	}
	return out
}

// Metrics is a point-in-time snapshot of engine instrumentation. Admission
// control's capacity estimator (§5.1.3) consumes FlushedBytes,
// CompactedBytes, and L0 state.
type Metrics struct {
	// L0Files is the current number of sstables in level 0. A backlog here
	// increases read amplification and signals that compactions are behind.
	L0Files int
	// L0Bytes is the total bytes in level 0.
	L0Bytes int64
	// LevelBytes reports the bytes resident in each level.
	LevelBytes [numLevels]int64
	// FlushedBytes is the cumulative bytes flushed from memtables to L0.
	FlushedBytes int64
	// CompactedBytes is the cumulative bytes written by compactions.
	CompactedBytes int64
	// FlushCount and CompactionCount are cumulative operation counts.
	FlushCount      int64
	CompactionCount int64
	// WALBytes is the cumulative bytes appended to the write-ahead log.
	WALBytes int64
	// MemTableBytes is the current size of the active memtable.
	MemTableBytes int64
	// ReadAmplification is the number of sorted runs a read may consult:
	// memtable + L0 files + one per non-empty deeper level.
	ReadAmplification int
	// Reads is the cumulative number of Get calls; BloomFiltered counts
	// candidate sstables skipped by a negative bloom-filter answer, and
	// TablesProbed counts sstables actually binary-searched. The three are
	// drawn from the engine's ReadMetrics counters, which may be shared
	// with other engines in the same deployment.
	Reads         int64
	BloomFiltered int64
	TablesProbed  int64
	// CompactionsCoalesced counts auto-compaction triggers that found
	// another compaction already in flight and handed it the backlog
	// instead of queueing behind the single-flight guard. Drawn from the
	// engine's WriteMetrics counter, which may be shared like ReadMetrics.
	CompactionsCoalesced int64
}

// ReadMetrics holds the read-path counters. One instance is shared by all
// engines registered against the same metric.Registry; see
// Options.ReadMetrics.
type ReadMetrics struct {
	Reads         *metric.Counter
	BloomFiltered *metric.Counter
	TablesProbed  *metric.Counter
}

// NewReadMetrics registers the read-path counters on reg and returns the
// shared instance to hand to each engine's Options.
func NewReadMetrics(reg *metric.Registry) *ReadMetrics {
	return &ReadMetrics{
		Reads:         reg.NewCounter("lsm.reads"),
		BloomFiltered: reg.NewCounter("lsm.bloom.filtered"),
		TablesProbed:  reg.NewCounter("lsm.tables.probed"),
	}
}

func newUnregisteredReadMetrics() *ReadMetrics {
	return &ReadMetrics{
		Reads:         &metric.Counter{},
		BloomFiltered: &metric.Counter{},
		TablesProbed:  &metric.Counter{},
	}
}

// WriteMetrics holds the write/maintenance-path counters. One instance is
// shared by all engines registered against the same metric.Registry; see
// Options.WriteMetrics.
type WriteMetrics struct {
	// CompactCoalesced counts auto-compaction triggers absorbed by an
	// already-running round (the single-flight guard).
	CompactCoalesced *metric.Counter
}

// NewWriteMetrics registers the write-path counters on reg and returns the
// shared instance to hand to each engine's Options.
func NewWriteMetrics(reg *metric.Registry) *WriteMetrics {
	return &WriteMetrics{
		CompactCoalesced: reg.NewCounter("lsm.compact.coalesced"),
	}
}

func newUnregisteredWriteMetrics() *WriteMetrics {
	return &WriteMetrics{CompactCoalesced: &metric.Counter{}}
}

// flushJob is a rotated (immutable) memtable waiting for its SSTable build
// to install. The table id is reserved at rotation time so id order — which
// seeds the replacement memtable and orders L0 — matches rotation order even
// when concurrent builds install out of order.
type flushJob struct {
	mem *memTable
	id  uint64
}

// Engine is a single-node LSM storage engine. It is safe for concurrent use.
type Engine struct {
	opts Options

	// readMetrics is Options.ReadMetrics or a private instance. The
	// counters are atomic, so reads bump them under the shared RLock.
	readMetrics *ReadMetrics
	// writeMetrics is Options.WriteMetrics or a private instance.
	writeMetrics *WriteMetrics

	// compactMu is the compaction single-flight guard. Auto-compaction
	// (maybeCompact) TryLocks it and counts a coalesced round on failure;
	// manual Compact blocks on it. It is always acquired before e.mu, never
	// while holding it.
	compactMu sync.Mutex

	// mergesActive counts compaction merges currently running outside the
	// engine lock — a test hook for asserting reads stay unblocked.
	mergesActive atomic.Int32

	mu struct {
		sync.RWMutex
		mem *memTable
		// imm holds rotated memtables whose SSTable builds are in flight,
		// newest-first. Reads consult mem → imm → levels.
		imm     []*flushJob
		levels  [numLevels][]*ssTable // L0 newest-first; L1+ sorted, non-overlapping
		nextID  uint64
		metrics Metrics
		closed  bool
	}
}

// ErrClosed is returned by operations on a closed engine.
var ErrClosed = errors.New("lsm: engine is closed")

// New returns an empty Engine.
func New(opts Options) *Engine {
	e := &Engine{opts: opts.withDefaults()}
	e.readMetrics = e.opts.ReadMetrics
	if e.readMetrics == nil {
		e.readMetrics = newUnregisteredReadMetrics()
	}
	e.writeMetrics = e.opts.WriteMetrics
	if e.writeMetrics == nil {
		e.writeMetrics = newUnregisteredWriteMetrics()
	}
	e.mu.mem = newMemTable(randutil.NewRand(e.opts.Seed))
	e.mu.nextID = 1
	return e
}

// Set writes key=value.
func (e *Engine) Set(key, value []byte) error {
	return e.apply(Entry{Key: cloneBytes(key), Value: cloneBytes(value)})
}

// Delete writes a tombstone for key.
func (e *Engine) Delete(key []byte) error {
	return e.apply(Entry{Key: cloneBytes(key), Tombstone: true})
}

// ApplyBatch writes a batch of entries atomically with respect to flushes.
// If the batch pushes the memtable past its threshold, the rotation happens
// inside the same critical section as the writes: a concurrent writer that
// also crossed the threshold observes the already-rotated (empty) memtable
// instead of re-flushing it.
func (e *Engine) ApplyBatch(entries []Entry) error {
	// An injected write stall (a backed-up WAL or flush queue) delays the
	// batch before it reaches the engine lock, so stalled writers don't block
	// readers for the stall's duration.
	e.opts.Faults.Should("lsm.write.stall")
	e.mu.Lock()
	if e.mu.closed {
		e.mu.Unlock()
		return ErrClosed
	}
	for _, ent := range entries {
		ent.Key = cloneBytes(ent.Key)
		ent.Value = cloneBytes(ent.Value)
		e.mu.metrics.WALBytes += ent.size()
		e.mu.mem.set(ent)
	}
	e.mu.metrics.MemTableBytes = e.mu.mem.sizeB
	var sp *trace.Span
	var job *flushJob
	var flushed bool
	if e.mu.mem.sizeB >= e.opts.MemTableSize {
		// A failed background flush is not a write failure: the entries are
		// already durable in the memtable (and WAL, in a real engine) and the
		// rotation is retried at the next threshold crossing.
		sp, job, flushed, _ = e.flushLocked() //lint:allow faulterr a failed background flush is not a write failure; rotation retries at the next threshold crossing
	}
	e.mu.Unlock()
	if job != nil {
		e.buildAndInstall(sp, job)
	}
	if flushed && !e.opts.DisableAutoCompactions {
		e.maybeCompact()
	}
	sp.Finish()
	return nil
}

func (e *Engine) apply(ent Entry) error {
	return e.ApplyBatch([]Entry{ent})
}

// Get returns the value for key. The boolean reports whether the key exists
// (a tombstone reads as not found).
func (e *Engine) Get(key []byte) ([]byte, bool, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.mu.closed {
		return nil, false, ErrClosed
	}
	e.readMetrics.Reads.Inc(1)
	if ent, ok := e.mu.mem.get(key); ok {
		return entryValue(ent)
	}
	// Immutable memtables whose SSTable builds are in flight, newest-first.
	// They hold data that has left the active memtable but not yet reached
	// L0; skipping them would un-ack acknowledged writes.
	for _, j := range e.mu.imm {
		if ent, ok := j.mem.get(key); ok {
			return entryValue(ent)
		}
	}
	accel := !e.opts.DisableReadAcceleration
	// L0: newest first. Any L0 table may overlap the key, but the bloom
	// filter lets most of a deep backlog be skipped without a search.
	for _, t := range e.mu.levels[0] {
		if accel && !t.filter.mayContain(key) {
			e.readMetrics.BloomFiltered.Inc(1)
			continue
		}
		e.readMetrics.TablesProbed.Inc(1)
		if ent, ok := t.get(key); ok {
			return entryValue(ent)
		}
	}
	for lvl := 1; lvl < numLevels; lvl++ {
		tables := e.mu.levels[lvl]
		if !accel {
			for _, t := range tables {
				e.readMetrics.TablesProbed.Inc(1)
				if ent, ok := t.get(key); ok {
					return entryValue(ent)
				}
			}
			continue
		}
		// L1+ tables are sorted and non-overlapping: binary-search the
		// level's maxKey bounds for the one table that can contain key.
		i := sort.Search(len(tables), func(i int) bool {
			return bytes.Compare(tables[i].maxKey, key) >= 0
		})
		if i >= len(tables) || bytes.Compare(tables[i].minKey, key) > 0 {
			continue
		}
		t := tables[i]
		if !t.filter.mayContain(key) {
			e.readMetrics.BloomFiltered.Inc(1)
			continue
		}
		e.readMetrics.TablesProbed.Inc(1)
		if ent, ok := t.get(key); ok {
			return entryValue(ent)
		}
	}
	return nil, false, nil
}

// entryValue translates a found entry into Get's return convention (a
// tombstone reads as not found).
func entryValue(ent Entry) ([]byte, bool, error) {
	if ent.Tombstone {
		return nil, false, nil
	}
	return cloneBytes(ent.Value), true, nil
}

// Flush moves the active memtable into a new L0 sstable. The flush is
// complete — data queryable from L0, metrics updated — by the time Flush
// returns, even though the build runs outside the engine lock.
func (e *Engine) Flush() error {
	e.mu.Lock()
	if e.mu.closed {
		e.mu.Unlock()
		return ErrClosed
	}
	sp, job, flushed, err := e.flushLocked()
	e.mu.Unlock()
	if job != nil {
		e.buildAndInstall(sp, job)
	}
	if flushed && !e.opts.DisableAutoCompactions {
		e.maybeCompact()
	}
	sp.Finish()
	return err
}

// flushLocked rotates the active memtable. The caller must hold e.mu
// (write-locked) and is responsible for two follow-ups after releasing it:
// calling buildAndInstall on the returned job (nil in baseline mode, where
// the build already happened here, under the lock), and finishing the
// returned span (whose duration is meant to cover any follow-up
// compaction). The boolean reports whether a rotation happened; the span
// alone can't signal that, since a nil Tracer yields nil spans for real
// flushes. An injected flush error (lsm.flush.error) leaves the memtable in
// place — nothing is lost, the rotation just didn't happen.
//
// In the default pipelined mode the rotation is a pointer swap: the old
// memtable joins e.mu.imm, where reads keep finding it, and the sort +
// bloom build runs outside the lock on the calling goroutine. The
// synchronous handoff — not a free-running background goroutine — is what
// keeps same-seed runs byte-identical (DESIGN.md §8). The sstable id is
// reserved here so id order matches rotation order; the replacement
// memtable's seed derives from nextID exactly as the seed code did.
func (e *Engine) flushLocked() (*trace.Span, *flushJob, bool, error) {
	if e.mu.mem.empty() {
		return nil, nil, false, nil
	}
	//lint:allow lockscope fault site is delay-free by contract (Options.Faults)
	if err := e.opts.Faults.MaybeErr("lsm.flush.error"); err != nil {
		return nil, nil, false, err
	}
	sp := e.opts.Tracer.StartRoot("lsm.flush")
	job := &flushJob{mem: e.mu.mem, id: e.mu.nextID}
	e.mu.nextID++
	e.mu.mem = newMemTable(randutil.NewRand(e.opts.Seed + int64(e.mu.nextID)))
	e.mu.metrics.MemTableBytes = 0
	if e.opts.DisableWritePipelining {
		// Baseline: build the sstable inside the critical section, stalling
		// every reader and writer for the duration (the seed behavior).
		//lint:allow lockscope DisableWritePipelining baseline builds under the lock by design
		t := newSSTable(job.id, job.mem.entries())
		e.installFlushLocked(nil, t, sp)
		return sp, nil, true, nil
	}
	e.mu.imm = append([]*flushJob{job}, e.mu.imm...)
	return sp, job, true, nil
}

// buildAndInstall constructs the sstable for a rotated memtable outside the
// engine lock and publishes it into L0. It runs synchronously on the
// goroutine that triggered the rotation: readers are not blocked by the
// build, yet the flush still completes before the write (or Flush call)
// that caused it returns.
func (e *Engine) buildAndInstall(sp *trace.Span, job *flushJob) {
	t := newSSTable(job.id, job.mem.entries())
	e.mu.Lock()
	e.installFlushLocked(job, t, sp)
	e.mu.Unlock()
}

// installFlushLocked publishes a built sstable into L0, retiring its flush
// job from the immutable queue (job is nil on the baseline path, which
// never queued one). L0 is kept ordered newest-first by table id, so
// out-of-order installs from concurrent builds cannot invert shadowing.
func (e *Engine) installFlushLocked(job *flushJob, t *ssTable, sp *trace.Span) {
	if job != nil {
		for i, j := range e.mu.imm {
			if j == job {
				e.mu.imm = append(e.mu.imm[:i], e.mu.imm[i+1:]...)
				break
			}
		}
	}
	pos := sort.Search(len(e.mu.levels[0]), func(i int) bool {
		return e.mu.levels[0][i].id < t.id
	})
	l0 := append(e.mu.levels[0], nil)
	copy(l0[pos+1:], l0[pos:])
	l0[pos] = t
	e.mu.levels[0] = l0
	e.mu.metrics.FlushedBytes += t.sizeB
	e.mu.metrics.FlushCount++
	sp.SetAttr("lsm.flushed_bytes", t.sizeB)
	sp.SetAttr("lsm.l0_files", len(e.mu.levels[0]))
}

// Metrics returns a snapshot of the engine's instrumentation.
func (e *Engine) Metrics() Metrics {
	e.mu.RLock()
	defer e.mu.RUnlock()
	m := e.mu.metrics
	m.L0Files = len(e.mu.levels[0])
	m.MemTableBytes = e.mu.mem.sizeB
	var l0Bytes int64
	for _, t := range e.mu.levels[0] {
		l0Bytes += t.sizeB
	}
	m.L0Bytes = l0Bytes
	// Each immutable memtable is one more sorted run a read may consult.
	m.ReadAmplification = 1 + len(e.mu.imm) + len(e.mu.levels[0])
	for lvl := 0; lvl < numLevels; lvl++ {
		var b int64
		for _, t := range e.mu.levels[lvl] {
			b += t.sizeB
		}
		m.LevelBytes[lvl] = b
		if lvl >= 1 && len(e.mu.levels[lvl]) > 0 {
			m.ReadAmplification++
		}
	}
	m.Reads = e.readMetrics.Reads.Value()
	m.BloomFiltered = e.readMetrics.BloomFiltered.Value()
	m.TablesProbed = e.readMetrics.TablesProbed.Value()
	m.CompactionsCoalesced = e.writeMetrics.CompactCoalesced.Value()
	return m
}

// Close releases the engine. Subsequent operations return ErrClosed.
func (e *Engine) Close() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.mu.closed = true
}

// String summarizes the level shape for debugging.
func (e *Engine) String() string {
	m := e.Metrics()
	s := fmt.Sprintf("mem=%dB", m.MemTableBytes)
	for lvl := 0; lvl < numLevels; lvl++ {
		s += fmt.Sprintf(" L%d=%dB", lvl, m.LevelBytes[lvl])
	}
	return s
}

func cloneBytes(b []byte) []byte {
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}
