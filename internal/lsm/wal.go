package lsm

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// The write-ahead log is a sequence of numbered segment files
// (wal-000001.log, ...). Each segment opens with a header
//
//	[magic "WALS"][format version u32]
//
// and is followed by records framed as
//
//	[crc32c u32][length u32][payload]
//
// where the CRC (Castagnoli) covers the payload and the payload is a batch of
// entries in the same [flags][keyLen][valLen][key][val] encoding sstable
// blocks use (appendEntry / decodeBlock). Records are appended inside
// ApplyBatch's critical section, so WAL order is exactly memtable apply
// order. Segments rotate on size and at every memtable rotation, so each
// memtable's contents live in a dense run of segments; the manifest records
// the lowest segment still holding unflushed data and recovery replays from
// there. Everything below that floor is deleted after the manifest installs.
//
// Sync policy: WALBytesPerSync == 0 syncs after every record (no acked write
// can be lost); > 0 syncs once that many bytes have accumulated, leaving an
// unsynced tail a crash can tear mid-record. Replay verifies each record's
// CRC and truncates at the first torn or corrupt record, dropping everything
// after it.

const (
	walRecordHeaderLen  = 8
	walSegmentHeaderLen = 8
	walMagic            = uint32('W')<<24 | uint32('A')<<16 | uint32('L')<<8 | uint32('S')
	walFormatVersion    = 1
)

var crc32cTable = crc32.MakeTable(crc32.Castagnoli)

func walSegmentName(seg uint64) string { return fmt.Sprintf("wal-%06d.log", seg) }

// walWriter appends framed records to the active segment. It is not
// internally synchronized; the engine serializes access under e.mu.
type walWriter struct {
	dir          *Dir
	seg          uint64 // active segment number
	segBytes     int64  // bytes written to the active segment
	segmentSize  int64
	bytesPerSync int64
	unsynced     int64 // bytes appended since the last sync
	fsyncs       int64 // cumulative syncs issued
}

func newWALWriter(dir *Dir, seg uint64, segmentSize, bytesPerSync int64) *walWriter {
	return &walWriter{dir: dir, seg: seg, segmentSize: segmentSize, bytesPerSync: bytesPerSync}
}

// append frames payload into the active segment and applies the sync policy.
// It returns the framed size (header + payload) and whether a sync was
// issued. Rotation happens before the append when the active segment is
// already at its size target, so a record is never split across segments.
func (w *walWriter) append(payload []byte) (framed int64, synced bool) {
	if w.segBytes >= w.segmentSize {
		w.rotate()
	}
	name := walSegmentName(w.seg)
	if w.segBytes == 0 {
		var sh [walSegmentHeaderLen]byte
		binary.BigEndian.PutUint32(sh[0:4], walMagic)
		binary.BigEndian.PutUint32(sh[4:8], walFormatVersion)
		w.dir.Append(name, sh[:])
		w.segBytes += walSegmentHeaderLen
		w.unsynced += walSegmentHeaderLen
	}
	var hdr [walRecordHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[0:4], crc32.Checksum(payload, crc32cTable))
	binary.BigEndian.PutUint32(hdr[4:8], uint32(len(payload)))
	w.dir.Append(name, hdr[:])
	w.dir.Append(name, payload)
	framed = int64(walRecordHeaderLen + len(payload))
	w.segBytes += framed
	w.unsynced += framed
	if w.bytesPerSync == 0 || w.unsynced >= w.bytesPerSync {
		w.sync()
		synced = true
	}
	return framed, synced
}

// sync makes the active segment durable up to its current length.
func (w *walWriter) sync() {
	if w.unsynced == 0 {
		return
	}
	w.dir.Sync(walSegmentName(w.seg))
	w.unsynced = 0
	w.fsyncs++
}

// rotate syncs and closes the active segment and starts the next one. The
// engine calls it at every memtable rotation (in addition to the size-based
// rotation in append), so a memtable's records span a dense segment run.
func (w *walWriter) rotate() {
	w.sync()
	w.seg++
	w.segBytes = 0
}

// deleteSegmentsBelow removes segments numbered below floor. Only called
// after a manifest recording floor as the minimum unflushed segment has
// installed, so no replay can need them.
func (w *walWriter) deleteSegmentsBelow(floor uint64) {
	for _, seg := range walSegments(w.dir) {
		if seg < floor {
			w.dir.Remove(walSegmentName(seg))
		}
	}
}

// walSegments lists the WAL segment numbers present in dir, sorted.
func walSegments(dir *Dir) []uint64 {
	var segs []uint64
	for _, name := range dir.List("wal-") {
		var seg uint64
		if _, err := fmt.Sscanf(name, "wal-%d.log", &seg); err != nil {
			continue
		}
		segs = append(segs, seg)
	}
	return segs
}

// replayWAL decodes every record of the segments numbered >= fromSeg, in
// segment order, calling apply for each record's entries. Replay stops —
// dropping the rest of the log — at the first torn or corrupt record: a
// record whose header or payload is cut short, or whose CRC does not match.
// That is the crash-recovery contract for a tail written under a relaxed
// sync policy; the lost suffix was never acknowledged as durable. A segment
// whose header carries the right magic but a different format version is a
// hard error (the log was written by an incompatible engine, not torn by a
// crash). The returned count is the number of records applied.
func replayWAL(dir *Dir, fromSeg uint64, apply func(entries []Entry)) (int, error) {
	records := 0
	for _, seg := range walSegments(dir) {
		if seg < fromSeg {
			continue
		}
		data, ok := dir.ReadFile(walSegmentName(seg))
		if !ok {
			continue
		}
		if len(data) < walSegmentHeaderLen {
			return records, nil // torn segment header: no durable records here
		}
		if binary.BigEndian.Uint32(data[0:4]) != walMagic {
			return records, nil // garbage where the header should be: torn
		}
		if v := binary.BigEndian.Uint32(data[4:8]); v != walFormatVersion {
			return records, fmt.Errorf("%w: wal segment %d has format version %d, want %d",
				ErrVersionMismatch, seg, v, walFormatVersion)
		}
		for off := walSegmentHeaderLen; off < len(data); {
			if off+walRecordHeaderLen > len(data) {
				return records, nil // torn record header
			}
			sum := binary.BigEndian.Uint32(data[off : off+4])
			length := int(binary.BigEndian.Uint32(data[off+4 : off+8]))
			start := off + walRecordHeaderLen
			if start+length > len(data) {
				return records, nil // torn payload
			}
			payload := data[start : start+length]
			if crc32.Checksum(payload, crc32cTable) != sum {
				return records, nil // corrupt record: truncate here
			}
			apply(decodeBlock(payload))
			records++
			off = start + length
		}
	}
	return records, nil
}
