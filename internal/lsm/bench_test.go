package lsm

import (
	"fmt"
	"testing"
)

// BenchmarkKVPointReadDeepL0 measures point reads against the deep shape (a
// 10-file L0 backlog plus populated L1-L3) with and without the bloom
// filters and the level-bound seek.
func BenchmarkKVPointReadDeepL0(b *testing.B) {
	for _, mode := range []struct {
		name         string
		disableAccel bool
	}{
		{"accelerated", false},
		{"baseline", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			e := buildDeepEngine(b, mode.disableAccel)
			defer e.Close()
			// Alternate L3 hits (worst present-key case) and misses.
			var reads [][]byte
			for tbl := 0; tbl < 4; tbl++ {
				for k := 0; k < 8; k++ {
					reads = append(reads, []byte(fmt.Sprintf("l3-%d%d", tbl, k)))
					reads = append(reads, []byte(fmt.Sprintf("zz-%d%d", tbl, k)))
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := e.Get(reads[i%len(reads)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkKVBloomFilter measures the filter probe itself on hits and misses.
func BenchmarkKVBloomFilter(b *testing.B) {
	var entries []Entry
	for i := 0; i < 4096; i++ {
		entries = append(entries, Entry{Key: []byte(fmt.Sprintf("key-%06d", i))})
	}
	f := newBloomFilter(entries)
	b.Run("hit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if !f.mayContain(entries[i%len(entries)].Key) {
				b.Fatal("false negative")
			}
		}
	})
	b.Run("miss", func(b *testing.B) {
		miss := []byte("absent-000000")
		for i := 0; i < b.N; i++ {
			f.mayContain(miss)
		}
	})
}

// BenchmarkKVWriteFlush measures the write path through memtable rotation.
func BenchmarkKVWriteFlush(b *testing.B) {
	e := New(Options{MemTableSize: 64 << 10, DisableAutoCompactions: true})
	defer e.Close()
	val := make([]byte, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Set([]byte(fmt.Sprintf("key-%09d", i)), val); err != nil {
			b.Fatal(err)
		}
	}
}
