package lsm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// The manifest is the engine's durable source of truth for everything outside
// the WAL: which sstables make up each level, how far the WAL has been
// flushed (the minimum segment recovery must replay), the next file ID, and
// the value log's file set with its discard stats. It is rewritten in full on
// every flush and compaction install — the state is small — and installed
// atomically by writing MANIFEST.tmp and renaming over MANIFEST, so a crash
// leaves either the old or the new manifest, never a blend.
//
// Encoding (all big-endian):
//
//	[magic "MANI"][format version u32]
//	[nextID u64][minUnflushedSeg u64][walSeg u64]
//	numLevels x ([count u32][id u64]...)
//	[vlog activeID u32][vlog file count u32]
//	  per file: [id u32][totalBytes u64][discardBytes u64]
//	[crc32c u32 over everything above]

// ErrCorruption reports on-disk state that fails its integrity checks — a
// manifest with a bad CRC, or a value-log file referenced by live data that
// no longer exists. Distinct from a torn WAL tail, which is expected after a
// crash and silently truncated.
var ErrCorruption = errors.New("lsm: corruption detected")

// ErrVersionMismatch reports durable state written by an incompatible engine
// format version. Unlike corruption, the bytes are intact — they just cannot
// be interpreted by this build.
var ErrVersionMismatch = errors.New("lsm: on-disk format version mismatch")

const (
	manifestName        = "MANIFEST"
	manifestTmpName     = "MANIFEST.tmp"
	manifestMagic       = uint32('M')<<24 | uint32('A')<<16 | uint32('N')<<8 | uint32('I')
	manifestVersion     = 1
	manifestHeaderLen   = 8 // magic + version
	manifestChecksumLen = 4
)

func sstFileName(id uint64) string  { return fmt.Sprintf("sst-%06d", id) }
func vlogFileName(id uint32) string { return fmt.Sprintf("vlog-%06d", id) }

// manifestVlogFile is the durable record of one value-log file's occupancy.
// Discard stats are advisory (they steer GC candidate selection); byte
// contents live in the vlog file itself.
type manifestVlogFile struct {
	id           uint32
	totalBytes   int64
	discardBytes int64
}

// manifest is the decoded durable engine state.
type manifest struct {
	nextID          uint64
	minUnflushedSeg uint64 // lowest WAL segment holding unflushed data
	walSeg          uint64 // active WAL segment at install time
	levels          [numLevels][]uint64
	vlogActiveID    uint32
	vlogFiles       []manifestVlogFile
}

func (m *manifest) encode() []byte {
	var b []byte
	b = binary.BigEndian.AppendUint32(b, manifestMagic)
	b = binary.BigEndian.AppendUint32(b, manifestVersion)
	b = binary.BigEndian.AppendUint64(b, m.nextID)
	b = binary.BigEndian.AppendUint64(b, m.minUnflushedSeg)
	b = binary.BigEndian.AppendUint64(b, m.walSeg)
	for lvl := 0; lvl < numLevels; lvl++ {
		b = binary.BigEndian.AppendUint32(b, uint32(len(m.levels[lvl])))
		for _, id := range m.levels[lvl] {
			b = binary.BigEndian.AppendUint64(b, id)
		}
	}
	b = binary.BigEndian.AppendUint32(b, m.vlogActiveID)
	b = binary.BigEndian.AppendUint32(b, uint32(len(m.vlogFiles)))
	for _, f := range m.vlogFiles {
		b = binary.BigEndian.AppendUint32(b, f.id)
		b = binary.BigEndian.AppendUint64(b, uint64(f.totalBytes))
		b = binary.BigEndian.AppendUint64(b, uint64(f.discardBytes))
	}
	return binary.BigEndian.AppendUint32(b, crc32.Checksum(b, crc32cTable))
}

func decodeManifest(b []byte) (*manifest, error) {
	if len(b) < manifestHeaderLen+manifestChecksumLen {
		return nil, fmt.Errorf("%w: manifest truncated to %d bytes", ErrCorruption, len(b))
	}
	body, tail := b[:len(b)-manifestChecksumLen], b[len(b)-manifestChecksumLen:]
	if crc32.Checksum(body, crc32cTable) != binary.BigEndian.Uint32(tail) {
		return nil, fmt.Errorf("%w: manifest checksum mismatch", ErrCorruption)
	}
	if magic := binary.BigEndian.Uint32(body[0:4]); magic != manifestMagic {
		return nil, fmt.Errorf("%w: bad manifest magic %#x", ErrCorruption, magic)
	}
	if v := binary.BigEndian.Uint32(body[4:8]); v != manifestVersion {
		return nil, fmt.Errorf("%w: manifest has format version %d, want %d",
			ErrVersionMismatch, v, manifestVersion)
	}
	r := manifestReader{b: body, off: manifestHeaderLen}
	m := &manifest{}
	m.nextID = r.uint64()
	m.minUnflushedSeg = r.uint64()
	m.walSeg = r.uint64()
	for lvl := 0; lvl < numLevels; lvl++ {
		n := int(r.uint32())
		for i := 0; i < n && !r.bad; i++ {
			m.levels[lvl] = append(m.levels[lvl], r.uint64())
		}
	}
	m.vlogActiveID = r.uint32()
	nFiles := int(r.uint32())
	for i := 0; i < nFiles && !r.bad; i++ {
		m.vlogFiles = append(m.vlogFiles, manifestVlogFile{
			id:           r.uint32(),
			totalBytes:   int64(r.uint64()),
			discardBytes: int64(r.uint64()),
		})
	}
	if r.bad || r.off != len(body) {
		return nil, fmt.Errorf("%w: manifest body malformed", ErrCorruption)
	}
	return m, nil
}

// manifestReader cursors over the manifest body, latching any overrun into
// bad instead of panicking — the CRC already vouched for the bytes, but a
// same-version encoder bug should surface as ErrCorruption, not a crash.
type manifestReader struct {
	b   []byte
	off int
	bad bool
}

func (r *manifestReader) uint32() uint32 {
	if r.bad || r.off+4 > len(r.b) {
		r.bad = true
		return 0
	}
	v := binary.BigEndian.Uint32(r.b[r.off : r.off+4])
	r.off += 4
	return v
}

func (r *manifestReader) uint64() uint64 {
	if r.bad || r.off+8 > len(r.b) {
		r.bad = true
		return 0
	}
	v := binary.BigEndian.Uint64(r.b[r.off : r.off+8])
	r.off += 8
	return v
}

// installManifest durably replaces the manifest via write-temp-then-rename.
func installManifest(dir *Dir, m *manifest) {
	dir.WriteFileSync(manifestTmpName, m.encode())
	// Rename of a file we just wrote cannot fail; a Dir error here would be a
	// harness bug, not a modeled fault.
	if err := dir.Rename(manifestTmpName, manifestName); err != nil {
		panic(err)
	}
}

// loadManifest reads and decodes the manifest. ok is false when no manifest
// exists (a fresh directory).
func loadManifest(dir *Dir) (*manifest, bool, error) {
	data, ok := dir.ReadFile(manifestName)
	if !ok {
		return nil, false, nil
	}
	m, err := decodeManifest(data)
	if err != nil {
		return nil, true, err
	}
	return m, true, nil
}

// persistSSTable writes a built table as one durable file: the concatenation
// of its encoded blocks, which decodeBlock parses back into the exact entry
// sequence. Tables are immutable, so a single synced write at build time is
// the whole durability story.
func persistSSTable(dir *Dir, t *ssTable) {
	var buf []byte
	for _, b := range t.blocks {
		buf = append(buf, b...)
	}
	dir.WriteFileSync(sstFileName(t.id), buf)
}

// loadSSTable re-reads a persisted table. Rebuilding via newSSTable re-chunks
// the entries deterministically, so block boundaries, bloom filters, and size
// accounting come back identical to the pre-crash table.
func loadSSTable(dir *Dir, id uint64) (*ssTable, error) {
	data, ok := dir.ReadFile(sstFileName(id))
	if !ok {
		return nil, fmt.Errorf("%w: manifest references missing sstable sst-%06d", ErrCorruption, id)
	}
	return newSSTable(id, decodeBlock(data)), nil
}
