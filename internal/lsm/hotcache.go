package lsm

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// hotCache is the hot-key read cache: a bounded LRU from user key to the
// fully resolved read result (value pointer already chased; tombstones and
// misses cached as not-found). Under a Zipfian distribution the few hottest
// keys serve from here without touching the memtable, levels, or value log.
//
// Correctness is version-tagged: every write (including tombstones and MVCC
// intent resolution, which reach the engine as ordinary Set/Delete batches)
// bumps the engine's write epoch and invalidates its keys under the
// exclusive lock, and a fill is accepted only if the epoch still matches the
// snapshot the probe was computed from. A fill that raced any write is
// dropped — conservative (a write to an unrelated key also rejects it) but
// race-free: a stale value can neither survive invalidation nor sneak in
// after it.
type hotCache struct {
	mu    sync.Mutex
	cap   int
	lru   *list.List // front = most recently used
	items map[string]*list.Element
}

type hotEntry struct {
	key string
	val []byte
	ok  bool
}

func newHotCache(capacity int) *hotCache {
	return &hotCache{cap: capacity, lru: list.New(), items: map[string]*list.Element{}}
}

// get returns the cached result for key. The returned value is a copy.
func (c *hotCache) get(key []byte) ([]byte, bool, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[string(key)]
	if !ok {
		return nil, false, false
	}
	c.lru.MoveToFront(el)
	he := el.Value.(*hotEntry)
	return cloneBytes(he.val), he.ok, true
}

// addHot inserts a resolved read result computed while the engine was at
// fillEpoch. If the engine's epoch has moved (any write landed since the
// probe's snapshot), the fill is rejected: it may predate an invalidation
// that already ran. val must be an immutable engine-owned view (a memtable
// entry, sstable block, or value-log alias) — it is stored without a copy;
// get clones on the way out. addHot must never be called while the engine
// mutex is held (crdb-lint lockscope enforces this).
func (c *hotCache) addHot(key, val []byte, ok bool, fillEpoch uint64, cur *atomic.Uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	// The epoch check happens under c.mu — the same lock invalidate takes —
	// so it cannot interleave with a concurrent write's invalidation: either
	// the fill sees the bumped epoch and rejects itself, or the invalidation
	// runs after the insert and removes it.
	if cur.Load() != fillEpoch {
		return
	}
	k := string(key)
	if el, exists := c.items[k]; exists {
		he := el.Value.(*hotEntry)
		he.val, he.ok = val, ok
		c.lru.MoveToFront(el)
		return
	}
	c.items[k] = c.lru.PushFront(&hotEntry{key: k, val: val, ok: ok})
	for len(c.items) > c.cap {
		back := c.lru.Back()
		if back == nil {
			break
		}
		victim := back.Value.(*hotEntry)
		c.lru.Remove(back)
		delete(c.items, victim.key)
	}
}

// invalidate drops the cached result for key. Called under the engine's
// exclusive lock on every write — a single map delete, cheap by contract.
func (c *hotCache) invalidate(key []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[string(key)]; ok {
		c.lru.Remove(el)
		delete(c.items, string(key))
	}
}

// len reports the number of cached keys (test hook).
func (c *hotCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}
