package lsm

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Dir is the crash-survivable directory a durable Engine writes its WAL,
// manifest, sstables, and value-log segments into. Like the sstables
// themselves, "disk" here is in-memory — what matters for the systems above
// is the durability contract, which Dir models faithfully: an append is
// volatile until the file is synced, a rename is atomic and durable, and
// Crash discards everything that was not synced. Tests and the chaos harness
// crash a Dir and hand it to Open to exercise the recovery path.
//
// Dir is safe for concurrent use and may outlive any number of Engine
// incarnations opened over it.
type Dir struct {
	mu    sync.Mutex
	files map[string]*dirFile
}

// dirFile is one named append-only file. data beyond synced is volatile: a
// crash truncates it away (except for the torn tail Crash may keep, modeling
// a partial sector write).
type dirFile struct {
	data   []byte
	synced int
}

// NewDir returns an empty durable directory.
func NewDir() *Dir {
	return &Dir{files: make(map[string]*dirFile)}
}

// Append appends b to the named file, creating it if needed. The bytes are
// volatile until the next Sync of the file.
func (d *Dir) Append(name string, b []byte) {
	d.mu.Lock()
	defer d.mu.Unlock()
	f := d.files[name]
	if f == nil {
		f = &dirFile{}
		d.files[name] = f
	}
	f.data = append(f.data, b...)
}

// Sync makes every byte appended to the named file so far durable. Syncing a
// missing file is a no-op (matching fsync-after-unlink).
func (d *Dir) Sync(name string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if f := d.files[name]; f != nil {
		f.synced = len(f.data)
	}
}

// WriteFileSync atomically replaces the named file's contents and syncs it —
// the write-temp-file step of an atomic install.
func (d *Dir) WriteFileSync(name string, b []byte) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.files[name] = &dirFile{data: append([]byte(nil), b...), synced: len(b)}
}

// Rename atomically and durably renames a file, replacing any existing
// target — the install step of write-temp-then-rename. The renamed file is
// durable in its entirety (rename-into-place implies the directory sync).
func (d *Dir) Rename(oldName, newName string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	f := d.files[oldName]
	if f == nil {
		return fmt.Errorf("lsm: rename %s: file does not exist", oldName)
	}
	f.synced = len(f.data)
	delete(d.files, oldName)
	d.files[newName] = f
	return nil
}

// ReadFile returns a copy of the named file's current contents, and whether
// the file exists.
func (d *Dir) ReadFile(name string) ([]byte, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	f := d.files[name]
	if f == nil {
		return nil, false
	}
	return append([]byte(nil), f.data...), true
}

// Remove deletes the named file. Removing a missing file is a no-op.
func (d *Dir) Remove(name string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.files, name)
}

// List returns the names of files with the given prefix, sorted.
func (d *Dir) List(prefix string) []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []string
	for name := range d.files {
		if strings.HasPrefix(name, prefix) {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Size returns the current length of the named file (0 if absent).
func (d *Dir) Size(name string) int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if f := d.files[name]; f != nil {
		return int64(len(f.data))
	}
	return 0
}

// Crash simulates a process crash: every file loses its unsynced tail,
// except that up to tear bytes of the unsynced suffix survive on each file —
// the partially-flushed page a real disk can leave behind, which is what
// produces a torn WAL record for recovery to detect and truncate. tear <= 0
// models a clean cut at the last sync.
func (d *Dir) Crash(tear int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, f := range d.files {
		keep := f.synced
		if tear > 0 {
			keep += tear
			if keep > len(f.data) {
				keep = len(f.data)
			}
		}
		f.data = f.data[:keep:keep]
		if f.synced > keep {
			f.synced = keep
		}
	}
}
