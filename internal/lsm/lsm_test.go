package lsm

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"crdbserverless/internal/randutil"
)

func TestEngineSetGet(t *testing.T) {
	e := New(Options{})
	defer e.Close()
	if err := e.Set([]byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := e.Get([]byte("a"))
	if err != nil || !ok || string(v) != "1" {
		t.Fatalf("Get = %q %v %v", v, ok, err)
	}
	if _, ok, _ := e.Get([]byte("missing")); ok {
		t.Fatal("missing key found")
	}
}

func TestEngineOverwrite(t *testing.T) {
	e := New(Options{})
	defer e.Close()
	e.Set([]byte("k"), []byte("v1"))
	e.Set([]byte("k"), []byte("v2"))
	v, ok, _ := e.Get([]byte("k"))
	if !ok || string(v) != "v2" {
		t.Fatalf("Get = %q %v", v, ok)
	}
}

func TestEngineDelete(t *testing.T) {
	e := New(Options{})
	defer e.Close()
	e.Set([]byte("k"), []byte("v"))
	e.Delete([]byte("k"))
	if _, ok, _ := e.Get([]byte("k")); ok {
		t.Fatal("deleted key still visible")
	}
	// Deleting a missing key is fine.
	if err := e.Delete([]byte("nope")); err != nil {
		t.Fatal(err)
	}
}

func TestEngineDeleteAcrossFlush(t *testing.T) {
	e := New(Options{})
	defer e.Close()
	e.Set([]byte("k"), []byte("v"))
	e.Flush()
	e.Delete([]byte("k"))
	if _, ok, _ := e.Get([]byte("k")); ok {
		t.Fatal("tombstone in memtable should shadow flushed value")
	}
	e.Flush()
	if _, ok, _ := e.Get([]byte("k")); ok {
		t.Fatal("tombstone in L0 should shadow older L0 value")
	}
	e.Compact()
	if _, ok, _ := e.Get([]byte("k")); ok {
		t.Fatal("key resurrected after compaction")
	}
}

func TestEngineGetReadsThroughLevels(t *testing.T) {
	e := New(Options{DisableAutoCompactions: true})
	defer e.Close()
	e.Set([]byte("old"), []byte("bottom"))
	e.Flush()
	e.Compact() // push to deeper level
	e.Set([]byte("newer"), []byte("l0"))
	e.Flush()
	e.Set([]byte("newest"), []byte("mem"))
	for _, tc := range []struct{ k, v string }{
		{"old", "bottom"}, {"newer", "l0"}, {"newest", "mem"},
	} {
		v, ok, _ := e.Get([]byte(tc.k))
		if !ok || string(v) != tc.v {
			t.Fatalf("Get(%s) = %q %v", tc.k, v, ok)
		}
	}
}

func TestEngineNewerLevelsShadowOlder(t *testing.T) {
	e := New(Options{DisableAutoCompactions: true})
	defer e.Close()
	e.Set([]byte("k"), []byte("v1"))
	e.Flush()
	e.Set([]byte("k"), []byte("v2"))
	e.Flush()
	v, ok, _ := e.Get([]byte("k"))
	if !ok || string(v) != "v2" {
		t.Fatalf("newest L0 run must win: got %q", v)
	}
	e.Set([]byte("k"), []byte("v3"))
	v, _, _ = e.Get([]byte("k"))
	if string(v) != "v3" {
		t.Fatalf("memtable must win: got %q", v)
	}
}

func TestFlushMovesDataToL0(t *testing.T) {
	e := New(Options{DisableAutoCompactions: true})
	defer e.Close()
	for i := 0; i < 10; i++ {
		e.Set([]byte(fmt.Sprintf("k%02d", i)), []byte("v"))
	}
	m := e.Metrics()
	if m.L0Files != 0 || m.MemTableBytes == 0 {
		t.Fatalf("before flush: %+v", m)
	}
	e.Flush()
	m = e.Metrics()
	if m.L0Files != 1 || m.MemTableBytes != 0 || m.FlushedBytes == 0 || m.FlushCount != 1 {
		t.Fatalf("after flush: %+v", m)
	}
	// Flushing an empty memtable is a no-op.
	e.Flush()
	if got := e.Metrics().FlushCount; got != 1 {
		t.Fatalf("empty flush counted: %d", got)
	}
}

func TestAutoFlushAtThreshold(t *testing.T) {
	e := New(Options{MemTableSize: 1024, DisableAutoCompactions: true})
	defer e.Close()
	big := bytes.Repeat([]byte("x"), 512)
	e.Set([]byte("a"), big)
	e.Set([]byte("b"), big) // crosses threshold -> flush
	if m := e.Metrics(); m.FlushCount == 0 {
		t.Fatalf("no auto flush: %+v", m)
	}
}

func TestL0CompactionTriggersAtThreshold(t *testing.T) {
	e := New(Options{L0CompactionThreshold: 3})
	defer e.Close()
	for i := 0; i < 3; i++ {
		e.Set([]byte(fmt.Sprintf("k%d", i)), []byte("v"))
		e.Flush()
	}
	m := e.Metrics()
	if m.L0Files >= 3 {
		t.Fatalf("L0 not compacted: %d files", m.L0Files)
	}
	if m.CompactionCount == 0 || m.CompactedBytes == 0 {
		t.Fatalf("compaction not recorded: %+v", m)
	}
	// Data survives compaction.
	for i := 0; i < 3; i++ {
		if _, ok, _ := e.Get([]byte(fmt.Sprintf("k%d", i))); !ok {
			t.Fatalf("k%d lost in compaction", i)
		}
	}
}

func TestCompactionDropsTombstonesAtBottom(t *testing.T) {
	e := New(Options{DisableAutoCompactions: true})
	defer e.Close()
	e.Set([]byte("k"), []byte("v"))
	e.Flush()
	e.Delete([]byte("k"))
	e.Flush()
	e.Compact()
	// After full compaction the tombstone should be gone entirely.
	it := e.NewIter(nil, nil)
	if it.Valid() {
		t.Fatalf("expected empty engine, found %q", it.Key())
	}
	m := e.Metrics()
	var total int64
	for _, b := range m.LevelBytes {
		total += b
	}
	if total != 0 {
		t.Fatalf("tombstones not dropped: %d bytes remain", total)
	}
}

func TestIteratorOrderedScan(t *testing.T) {
	e := New(Options{})
	defer e.Close()
	keys := []string{"d", "a", "c", "b", "e"}
	for _, k := range keys {
		e.Set([]byte(k), []byte("v-"+k))
	}
	var got []string
	for it := e.NewIter(nil, nil); it.Valid(); it.Next() {
		got = append(got, string(it.Key()))
		if want := "v-" + string(it.Key()); string(it.Value()) != want {
			t.Fatalf("value mismatch at %q: %q", it.Key(), it.Value())
		}
	}
	want := []string{"a", "b", "c", "d", "e"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("scan order %v, want %v", got, want)
	}
}

func TestIteratorBounds(t *testing.T) {
	e := New(Options{})
	defer e.Close()
	for _, k := range []string{"a", "b", "c", "d"} {
		e.Set([]byte(k), []byte("v"))
	}
	var got []string
	for it := e.NewIter([]byte("b"), []byte("d")); it.Valid(); it.Next() {
		got = append(got, string(it.Key()))
	}
	if fmt.Sprint(got) != fmt.Sprint([]string{"b", "c"}) {
		t.Fatalf("bounded scan = %v", got)
	}
}

func TestIteratorMergesAcrossRunsWithShadowing(t *testing.T) {
	e := New(Options{DisableAutoCompactions: true})
	defer e.Close()
	e.Set([]byte("a"), []byte("old"))
	e.Set([]byte("b"), []byte("keep"))
	e.Flush()
	e.Set([]byte("a"), []byte("new"))
	e.Delete([]byte("b"))
	e.Flush()
	e.Set([]byte("c"), []byte("mem"))

	var got []string
	for it := e.NewIter(nil, nil); it.Valid(); it.Next() {
		got = append(got, string(it.Key())+"="+string(it.Value()))
	}
	want := []string{"a=new", "c=mem"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("merged scan = %v, want %v", got, want)
	}
}

func TestEngineClosed(t *testing.T) {
	e := New(Options{})
	e.Close()
	if err := e.Set([]byte("a"), []byte("b")); err != ErrClosed {
		t.Fatalf("Set after close = %v", err)
	}
	if _, _, err := e.Get([]byte("a")); err != ErrClosed {
		t.Fatalf("Get after close = %v", err)
	}
	if err := e.Flush(); err != ErrClosed {
		t.Fatalf("Flush after close = %v", err)
	}
}

func TestEngineVsMapProperty(t *testing.T) {
	// Property: after an arbitrary mix of sets/deletes/flushes, the engine
	// agrees with a reference map, both for point reads and full scans.
	type op struct {
		Key    uint8
		Val    uint16
		Delete bool
		Flush  bool
	}
	f := func(ops []op) bool {
		e := New(Options{MemTableSize: 1 << 30})
		defer e.Close()
		ref := map[string]string{}
		for _, o := range ops {
			k := fmt.Sprintf("key-%03d", o.Key)
			if o.Flush {
				e.Flush()
			}
			if o.Delete {
				e.Delete([]byte(k))
				delete(ref, k)
			} else {
				v := fmt.Sprintf("val-%05d", o.Val)
				e.Set([]byte(k), []byte(v))
				ref[k] = v
			}
		}
		// Point reads.
		for k, v := range ref {
			got, ok, err := e.Get([]byte(k))
			if err != nil || !ok || string(got) != v {
				return false
			}
		}
		// Full scan matches sorted reference.
		var refKeys []string
		for k := range ref {
			refKeys = append(refKeys, k)
		}
		sort.Strings(refKeys)
		i := 0
		for it := e.NewIter(nil, nil); it.Valid(); it.Next() {
			if i >= len(refKeys) || string(it.Key()) != refKeys[i] || string(it.Value()) != ref[refKeys[i]] {
				return false
			}
			i++
		}
		return i == len(refKeys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEngineVsMapWithCompactions(t *testing.T) {
	e := New(Options{MemTableSize: 2048, L0CompactionThreshold: 2, LBaseMaxBytes: 8192})
	defer e.Close()
	rng := randutil.NewRand(99)
	ref := map[string]string{}
	for i := 0; i < 5000; i++ {
		k := fmt.Sprintf("key-%04d", rng.Intn(500))
		if rng.Intn(4) == 0 {
			e.Delete([]byte(k))
			delete(ref, k)
		} else {
			v := fmt.Sprintf("val-%08d", i)
			e.Set([]byte(k), []byte(v))
			ref[k] = v
		}
	}
	for k, v := range ref {
		got, ok, _ := e.Get([]byte(k))
		if !ok || string(got) != v {
			t.Fatalf("Get(%s) = %q %v, want %q", k, got, ok, v)
		}
	}
	n := 0
	for it := e.NewIter(nil, nil); it.Valid(); it.Next() {
		if want, ok := ref[string(it.Key())]; !ok || want != string(it.Value()) {
			t.Fatalf("scan surfaced %q=%q, want %q (ok=%v)", it.Key(), it.Value(), want, ok)
		}
		n++
	}
	if n != len(ref) {
		t.Fatalf("scan found %d keys, want %d", n, len(ref))
	}
}

func TestEngineConcurrentReadsAndWrites(t *testing.T) {
	e := New(Options{MemTableSize: 4096})
	defer e.Close()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 500; i++ {
				k := []byte(fmt.Sprintf("g%d-k%d", g, rng.Intn(100)))
				switch rng.Intn(3) {
				case 0:
					e.Set(k, []byte("v"))
				case 1:
					e.Get(k)
				case 2:
					it := e.NewIter(k, nil)
					for j := 0; j < 5 && it.Valid(); j++ {
						it.Next()
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestMetricsReadAmplification(t *testing.T) {
	e := New(Options{DisableAutoCompactions: true})
	defer e.Close()
	if ra := e.Metrics().ReadAmplification; ra != 1 {
		t.Fatalf("empty engine read amp = %d, want 1 (memtable)", ra)
	}
	e.Set([]byte("a"), []byte("v"))
	e.Flush()
	e.Set([]byte("b"), []byte("v"))
	e.Flush()
	if ra := e.Metrics().ReadAmplification; ra != 3 {
		t.Fatalf("read amp = %d, want 3 (memtable + 2 L0)", ra)
	}
}

func TestApplyBatchAtomicVisibility(t *testing.T) {
	e := New(Options{})
	defer e.Close()
	batch := []Entry{
		{Key: []byte("x"), Value: []byte("1")},
		{Key: []byte("y"), Value: []byte("2")},
		{Key: []byte("z"), Tombstone: true},
	}
	if err := e.ApplyBatch(batch); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := e.Get([]byte("x")); !ok || string(v) != "1" {
		t.Fatal("batch write x missing")
	}
	if v, ok, _ := e.Get([]byte("y")); !ok || string(v) != "2" {
		t.Fatal("batch write y missing")
	}
}

func TestEngineValueIsolation(t *testing.T) {
	// Mutating buffers passed in or returned must not corrupt the engine.
	e := New(Options{})
	defer e.Close()
	k := []byte("k")
	v := []byte("hello")
	e.Set(k, v)
	v[0] = 'X'
	got, _, _ := e.Get(k)
	if string(got) != "hello" {
		t.Fatalf("caller mutation leaked into engine: %q", got)
	}
	got[0] = 'Y'
	got2, _, _ := e.Get(k)
	if string(got2) != "hello" {
		t.Fatalf("returned buffer aliases engine state: %q", got2)
	}
}

func TestMergeRunsPrecedence(t *testing.T) {
	newer := []Entry{{Key: []byte("a"), Value: []byte("new")}}
	older := []Entry{{Key: []byte("a"), Value: []byte("old")}, {Key: []byte("b"), Value: []byte("b")}}
	out := mergeRuns([][]Entry{newer, older}, false, nil)
	if len(out) != 2 || string(out[0].Value) != "new" {
		t.Fatalf("merge precedence: %+v", out)
	}
}

func TestMergeRunsTombstoneHandling(t *testing.T) {
	newer := []Entry{{Key: []byte("a"), Tombstone: true}}
	older := []Entry{{Key: []byte("a"), Value: []byte("old")}}
	kept := mergeRuns([][]Entry{newer, older}, false, nil)
	if len(kept) != 1 || !kept[0].Tombstone {
		t.Fatalf("tombstone should be kept when not bottommost: %+v", kept)
	}
	dropped := mergeRuns([][]Entry{newer, older}, true, nil)
	if len(dropped) != 0 {
		t.Fatalf("tombstone should be dropped at bottom: %+v", dropped)
	}
}
