package lsm

import (
	"container/list"
	"hash/fnv"
	"sync"
)

// blockCache caches decoded sstable blocks for L1+ point reads, keyed by
// (tableID, blockIdx). It is sharded to keep reader contention low,
// byte-capacity bounded, and its eviction order is deterministic (strict LRU
// per shard, with the shard chosen by an FNV hash of the key — no
// randomness, no clocks). Fills and evictions run on the read path after the
// engine lock is released; the only cache call made under e.mu is
// invalidateTable, a plain map sweep, when compaction retires a table.
//
// Iterators bypass the cache entirely: a scan decodes each overlapping block
// once and would otherwise flush the point-read working set.
type blockCache struct {
	shards []blockCacheShard
}

const blockCacheShards = 8

type blockKey struct {
	tableID  uint64
	blockIdx int
}

type blockCacheEntry struct {
	key     blockKey
	entries []Entry
	bytes   int64
}

type blockCacheShard struct {
	mu    sync.Mutex
	capB  int64
	curB  int64
	lru   *list.List // front = most recently used
	items map[blockKey]*list.Element
}

func newBlockCache(capacityBytes int64) *blockCache {
	c := &blockCache{shards: make([]blockCacheShard, blockCacheShards)}
	per := capacityBytes / blockCacheShards
	if per < 1 {
		per = 1
	}
	for i := range c.shards {
		c.shards[i].capB = per
		c.shards[i].lru = list.New()
		c.shards[i].items = map[blockKey]*list.Element{}
	}
	return c
}

func (c *blockCache) shard(k blockKey) *blockCacheShard {
	h := fnv.New32a()
	var b [12]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(k.tableID >> (8 * i))
	}
	for i := 0; i < 4; i++ {
		b[8+i] = byte(uint32(k.blockIdx) >> (8 * i))
	}
	h.Write(b[:])
	return &c.shards[h.Sum32()%blockCacheShards]
}

// get returns the decoded block, if cached. The returned slice is shared and
// must be treated as immutable (sstable blocks are).
func (c *blockCache) get(tableID uint64, blockIdx int) ([]Entry, bool) {
	k := blockKey{tableID, blockIdx}
	s := c.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[k]
	if !ok {
		return nil, false
	}
	s.lru.MoveToFront(el)
	return el.Value.(*blockCacheEntry).entries, true
}

// addBlock inserts a decoded block, evicting least-recently-used blocks
// until the shard fits its byte budget. It must never be called while the
// engine mutex is held (crdb-lint lockscope enforces this).
func (c *blockCache) addBlock(tableID uint64, blockIdx int, entries []Entry, bytes int64) {
	k := blockKey{tableID, blockIdx}
	s := c.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if bytes > s.capB {
		return // a block bigger than the shard would evict everything for nothing
	}
	if el, ok := s.items[k]; ok {
		s.lru.MoveToFront(el)
		return
	}
	ent := &blockCacheEntry{key: k, entries: entries, bytes: bytes}
	s.items[k] = s.lru.PushFront(ent)
	s.curB += bytes
	for s.curB > s.capB {
		back := s.lru.Back()
		if back == nil {
			break
		}
		victim := back.Value.(*blockCacheEntry)
		s.lru.Remove(back)
		delete(s.items, victim.key)
		s.curB -= victim.bytes
	}
}

// invalidateTable drops every cached block of a retired table. Safe (and
// cheap — a map sweep per shard) to call under the engine lock.
func (c *blockCache) invalidateTable(tableID uint64) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for k, el := range s.items {
			if k.tableID == tableID {
				s.curB -= el.Value.(*blockCacheEntry).bytes
				s.lru.Remove(el)
				delete(s.items, k)
			}
		}
		s.mu.Unlock()
	}
}

// len reports the number of cached blocks (test hook).
func (c *blockCache) len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.items)
		s.mu.Unlock()
	}
	return n
}
