package lsm

// bloomFilter is a per-sstable bloom filter consulted before a table is
// searched: a definitive "absent" answer lets point reads skip the table's
// binary search entirely, which is what keeps deep L0 backlogs (the read
// amplification condition of §5.1.3) from turning every Get into
// O(tables) probes. Pebble attaches the same structure to its sstables.
//
// The filter uses double hashing (Kirsch–Mitzenmacher): k probe positions
// derived as h1 + i*h2 from two FNV-1a style hashes with distinct, fixed
// offset bases. The hash is fully deterministic — no per-process seeding —
// so same-seed engine runs build byte-identical filters and the simulator's
// reproducibility guarantees hold.
type bloomFilter struct {
	bits  []uint64
	nbits uint64
	k     int
}

const (
	// bloomBitsPerKey sizes the filter at ~10 bits per key; with
	// bloomHashes probes that gives a ~1% false-positive rate.
	bloomBitsPerKey = 10
	bloomHashes     = 6

	// FNV-1a parameters. The second basis is an arbitrary fixed odd
	// constant so h1 and h2 are effectively independent.
	fnvPrime   = 1099511628211
	fnvOffset1 = 14695981039346656037
	fnvOffset2 = 0x9e3779b97f4a7c15
)

// newBloomFilter builds a filter over the keys of entries. An empty table
// gets no filter (nil filters admit everything).
func newBloomFilter(entries []Entry) *bloomFilter {
	if len(entries) == 0 {
		return nil
	}
	nbits := uint64(len(entries)) * bloomBitsPerKey
	if nbits < 64 {
		nbits = 64
	}
	f := &bloomFilter{
		bits:  make([]uint64, (nbits+63)/64),
		nbits: nbits,
		k:     bloomHashes,
	}
	for _, e := range entries {
		f.add(e.Key)
	}
	return f
}

// bloomHash returns the two independent hashes the probe sequence derives
// from. The stride (h2) is forced odd so successive probes always move.
func bloomHash(key []byte) (h1, h2 uint64) {
	h1, h2 = fnvOffset1, fnvOffset2
	for _, b := range key {
		h1 = (h1 ^ uint64(b)) * fnvPrime
		h2 = (h2 ^ uint64(b)) * fnvPrime
	}
	return h1, h2 | 1
}

func (f *bloomFilter) add(key []byte) {
	h1, h2 := bloomHash(key)
	for i := 0; i < f.k; i++ {
		bit := (h1 + uint64(i)*h2) % f.nbits
		f.bits[bit/64] |= 1 << (bit % 64)
	}
}

// mayContain reports whether key may be present. False negatives are
// impossible; false positives occur at the configured rate. A nil filter
// admits everything.
func (f *bloomFilter) mayContain(key []byte) bool {
	if f == nil {
		return true
	}
	h1, h2 := bloomHash(key)
	for i := 0; i < f.k; i++ {
		bit := (h1 + uint64(i)*h2) % f.nbits
		if f.bits[bit/64]&(1<<(bit%64)) == 0 {
			return false
		}
	}
	return true
}
