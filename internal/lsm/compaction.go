package lsm

import (
	"bytes"
	"sort"
)

// maybeCompact runs compactions until the level invariants hold: L0 file
// count below threshold and every level below its size target. Compactions
// run synchronously on the caller; the engine is single-writer from the
// perspective of the replica state machine above it, so deterministic
// caller-driven compaction keeps experiments reproducible.
func (e *Engine) maybeCompact() {
	for i := 0; i < 64; i++ { // bound runaway loops defensively
		if !e.compactOnce() {
			return
		}
	}
}

// compactOnce picks and executes at most one compaction. It reports whether
// any work was done.
func (e *Engine) compactOnce() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.mu.closed {
		return false
	}
	// An injected compaction failure skips this round; the backlog persists
	// until a later write re-triggers the scheduler.
	if e.opts.Faults.Should("lsm.compact.error") {
		return false
	}
	// Priority 1: L0 backlog. A deep L0 inflates read amplification, which
	// is exactly the bottleneck §5.1.3 describes.
	if len(e.mu.levels[0]) >= e.opts.L0CompactionThreshold {
		e.compactLevelLocked(0)
		return true
	}
	// Priority 2: size-triggered compaction of L1..L5 into the next level.
	target := e.opts.LBaseMaxBytes
	for lvl := 1; lvl < numLevels-1; lvl++ {
		var b int64
		for _, t := range e.mu.levels[lvl] {
			b += t.sizeB
		}
		if b > target {
			e.compactLevelLocked(lvl)
			return true
		}
		target *= 10
	}
	return false
}

// compactLevelLocked merges all of level lvl plus the overlapping tables of
// lvl+1 into lvl+1.
func (e *Engine) compactLevelLocked(lvl int) {
	from := e.mu.levels[lvl]
	if len(from) == 0 {
		return
	}
	sp := e.opts.Tracer.StartRoot("lsm.compact")
	defer sp.Finish()
	sp.SetAttr("lsm.level", lvl)
	sp.SetAttr("lsm.input_tables", len(from))
	next := lvl + 1

	// Compute the key range covered by the input tables.
	var lo, hi []byte
	for _, t := range from {
		if len(t.entries) == 0 {
			continue
		}
		if lo == nil || bytes.Compare(t.minKey, lo) < 0 {
			lo = t.minKey
		}
		if hi == nil || bytes.Compare(t.maxKey, hi) > 0 {
			hi = t.maxKey
		}
	}

	var overlapping, keep []*ssTable
	for _, t := range e.mu.levels[next] {
		if t.overlaps(lo, hi) {
			overlapping = append(overlapping, t)
		} else {
			keep = append(keep, t)
		}
	}

	// Newer runs first: L0 is stored newest-first; within L1+ tables are
	// disjoint so order does not matter, but inputs from the upper level
	// are newer than the lower level.
	runs := make([][]Entry, 0, len(from)+len(overlapping))
	for _, t := range from {
		runs = append(runs, t.entries)
	}
	for _, t := range overlapping {
		runs = append(runs, t.entries)
	}
	// Tombstones can be dropped only when no data can exist beneath the
	// output level: the merge then contains every surviving version of the
	// deleted keys, so the tombstone shadows nothing.
	bottommost := true
	for l := next + 1; l < numLevels; l++ {
		if len(e.mu.levels[l]) > 0 {
			bottommost = false
			break
		}
	}
	merged := mergeRuns(runs, bottommost)

	out := newSSTable(e.mu.nextID, merged)
	e.mu.nextID++
	keep = append(keep, out)
	sort.Slice(keep, func(i, j int) bool {
		return bytes.Compare(keep[i].minKey, keep[j].minKey) < 0
	})
	e.mu.levels[lvl] = nil
	e.mu.levels[next] = keep
	e.mu.metrics.CompactedBytes += out.sizeB
	e.mu.metrics.CompactionCount++
	sp.SetAttr("lsm.output_bytes", out.sizeB)
}

// Compact forces a full manual compaction of every level down to the bottom.
func (e *Engine) Compact() {
	for lvl := 0; lvl < numLevels-1; lvl++ {
		e.mu.Lock()
		if len(e.mu.levels[lvl]) > 0 {
			e.compactLevelLocked(lvl)
		}
		e.mu.Unlock()
	}
}
