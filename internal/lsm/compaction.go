package lsm

import (
	"bytes"
	"sort"
)

// maybeCompact runs compactions until the level invariants hold: L0 file
// count below threshold and every level below its size target. Compactions
// run synchronously on the caller; the engine is single-writer from the
// perspective of the replica state machine above it, so deterministic
// caller-driven compaction keeps experiments reproducible.
//
// maybeCompact is the auto-compaction entry point and is single-flight:
// when another caller is already draining the backlog, this trigger is
// absorbed (counted on lsm.compact.coalesced) instead of queueing a
// redundant round behind it — the running round re-checks the invariants
// after every compaction and picks up any backlog added meanwhile. In the
// worst interleaving a trigger is absorbed just as the runner finishes its
// final check; the backlog then waits for the next write, which is also
// what happens when a round fails (see lsm.compact.error).
func (e *Engine) maybeCompact() {
	if !e.compactMu.TryLock() {
		e.writeMetrics.CompactCoalesced.Inc(1)
		return
	}
	defer e.compactMu.Unlock()
	for i := 0; i < 64; i++ { // bound runaway loops defensively
		if !e.compactOnce() {
			break
		}
	}
	// Compaction rounds just reported discard stats; collect any value-log
	// file they pushed past the threshold while still holding the
	// single-flight guard (GC rewrites never race a compaction merge).
	e.runVlogGC()
}

// compactionPlan is the under-lock half of a compaction: the inputs picked
// from level lvl and the overlapping tables of lvl+1, snapshotted so the
// merge can run outside the engine lock.
type compactionPlan struct {
	lvl         int
	inputs      []*ssTable // all of level lvl at plan time
	overlapping []*ssTable // tables of lvl+1 the inputs' key range overlaps
	keep        []*ssTable // tables of lvl+1 untouched by the merge
	bottommost  bool
	outID       uint64
}

// compactOnce picks and executes at most one compaction. It reports whether
// any work was done. The caller must hold e.compactMu.
//
// The level pick and input snapshot happen under the engine lock; the merge
// and sstable build run outside it (readers and writers proceed); the
// install re-takes the lock and verifies the inputs are still current
// before swapping them for the output.
func (e *Engine) compactOnce() bool {
	e.mu.Lock()
	if e.mu.closed {
		e.mu.Unlock()
		return false
	}
	// An injected compaction failure skips this round; the backlog persists
	// until a later write re-triggers the scheduler.
	//lint:allow lockscope fault site is delay-free by contract (Options.Faults)
	if e.opts.Faults.Should("lsm.compact.error") {
		e.mu.Unlock()
		return false
	}
	lvl := e.pickCompactionLocked()
	if lvl < 0 {
		e.mu.Unlock()
		return false
	}
	plan := e.planCompactionLocked(lvl)
	if plan == nil {
		e.mu.Unlock()
		return false
	}
	if e.opts.DisableWritePipelining {
		// Baseline: merge and install inside the critical section, stalling
		// every reader and writer for the duration (the seed behavior).
		out, next, discards := e.runMerge(plan)
		installed := e.installCompactionLocked(plan, out, next)
		e.mu.Unlock()
		e.finishCompaction(plan, installed, discards)
		return true
	}
	e.mu.Unlock()
	out, next, discards := e.runMerge(plan)
	e.mu.Lock()
	installed := e.installCompactionLocked(plan, out, next)
	e.mu.Unlock()
	e.finishCompaction(plan, installed, discards)
	return true
}

// finishCompaction applies a round's deferred side effects outside the engine
// lock: value-log discard stats for every entry the merge dropped, and
// block-cache invalidation for the retired input tables. Both wait for a
// successful install — an abandoned round changed nothing. (A reader racing
// the invalidation may re-fill a retired table's block from its old snapshot;
// table ids are never reused, so the stale fill is correct data that only
// occupies cache space until LRU evicts it.)
func (e *Engine) finishCompaction(plan *compactionPlan, installed bool, discards []valuePointer) {
	if !installed {
		return
	}
	if e.vlog != nil {
		for _, p := range discards {
			e.vlog.discard(p)
		}
	}
	if e.blockCache != nil {
		for _, t := range plan.inputs {
			e.blockCache.invalidateTable(t.id)
		}
		for _, t := range plan.overlapping {
			e.blockCache.invalidateTable(t.id)
		}
	}
}

// pickCompactionLocked chooses the level to compact, or -1 for none.
func (e *Engine) pickCompactionLocked() int {
	// Priority 1: L0 backlog. A deep L0 inflates read amplification, which
	// is exactly the bottleneck §5.1.3 describes.
	if len(e.mu.levels[0]) >= e.opts.L0CompactionThreshold {
		return 0
	}
	// Priority 2: size-triggered compaction of L1..L5 into the next level.
	target := e.opts.LBaseMaxBytes
	for lvl := 1; lvl < numLevels-1; lvl++ {
		var b int64
		for _, t := range e.mu.levels[lvl] {
			b += t.sizeB
		}
		if b > target {
			return lvl
		}
		target *= 10
	}
	return -1
}

// planCompactionLocked snapshots the inputs for merging all of level lvl
// plus the overlapping tables of lvl+1 into lvl+1, and reserves the output
// table id. Returns nil when the level is empty.
func (e *Engine) planCompactionLocked(lvl int) *compactionPlan {
	from := e.mu.levels[lvl]
	if len(from) == 0 {
		return nil
	}
	next := lvl + 1

	// Compute the key range covered by the input tables.
	var lo, hi []byte
	for _, t := range from {
		if t.numEntries == 0 {
			continue
		}
		if lo == nil || bytes.Compare(t.minKey, lo) < 0 {
			lo = t.minKey
		}
		if hi == nil || bytes.Compare(t.maxKey, hi) > 0 {
			hi = t.maxKey
		}
	}

	plan := &compactionPlan{
		lvl:    lvl,
		inputs: append([]*ssTable(nil), from...),
		outID:  e.mu.nextID,
	}
	e.mu.nextID++
	for _, t := range e.mu.levels[next] {
		if t.overlaps(lo, hi) {
			plan.overlapping = append(plan.overlapping, t)
		} else {
			plan.keep = append(plan.keep, t)
		}
	}
	// Tombstones can be dropped only when no data can exist beneath the
	// output level: the merge then contains every surviving version of the
	// deleted keys, so the tombstone shadows nothing.
	plan.bottommost = true
	for l := next + 1; l < numLevels; l++ {
		if len(e.mu.levels[l]) > 0 {
			plan.bottommost = false
			break
		}
	}
	return plan
}

// runMerge executes a plan's merge and builds the output table and the new
// next-level layout. In pipelined mode it runs outside the engine lock; the
// e.mergesActive counter is the test hook that asserts reads stay live
// while it does.
func (e *Engine) runMerge(plan *compactionPlan) (*ssTable, []*ssTable, []valuePointer) {
	e.mergesActive.Add(1)
	defer e.mergesActive.Add(-1)
	sp := e.opts.Tracer.StartRoot("lsm.compact")
	defer sp.Finish()
	sp.SetAttr("lsm.level", plan.lvl)
	sp.SetAttr("lsm.input_tables", len(plan.inputs))

	// Newer runs first: L0 is stored newest-first; within L1+ tables are
	// disjoint so order does not matter, but inputs from the upper level
	// are newer than the lower level.
	runs := make([][]Entry, 0, len(plan.inputs)+len(plan.overlapping))
	for _, t := range plan.inputs {
		runs = append(runs, t.entries())
	}
	for _, t := range plan.overlapping {
		runs = append(runs, t.entries())
	}
	// Entries the merge drops — shadowed versions and bottommost tombstones —
	// retire their value-log records; collect the pointers for discard
	// reporting after the install commits the drop.
	var discards []valuePointer
	onDrop := func(ent Entry) {
		if !ent.vptr {
			return
		}
		if p, err := decodeValuePointer(ent.Value); err == nil {
			discards = append(discards, p)
		}
	}
	merged := mergeRuns(runs, plan.bottommost, onDrop)
	out := newSSTable(plan.outID, merged)
	next := append(append([]*ssTable(nil), plan.keep...), out)
	sort.Slice(next, func(i, j int) bool {
		return bytes.Compare(next[i].minKey, next[j].minKey) < 0
	})
	sp.SetAttr("lsm.output_bytes", out.sizeB)
	return out, next, discards
}

// installCompactionLocked swaps a finished merge into the level layout. The
// inputs must still be exactly the engine's current state for the affected
// levels: a concurrent flush prepends new L0 tables (which must survive the
// install), and a concurrent round could in principle have superseded the
// inputs entirely — in that case the output is discarded and the round
// abandoned (the invariant re-check in maybeCompact's loop redoes the work
// against current state).
func (e *Engine) installCompactionLocked(plan *compactionPlan, out *ssTable, next []*ssTable) bool {
	if e.mu.closed || !e.planInputsCurrentLocked(plan) {
		return false
	}
	// Keep the tables of the from-level that arrived after the plan was
	// taken (flushes prepend to L0 while the merge runs); drop exactly the
	// planned inputs.
	planned := make(map[uint64]bool, len(plan.inputs))
	for _, t := range plan.inputs {
		planned[t.id] = true
	}
	var remain []*ssTable
	for _, t := range e.mu.levels[plan.lvl] {
		if !planned[t.id] {
			remain = append(remain, t)
		}
	}
	e.mu.levels[plan.lvl] = remain
	e.mu.levels[plan.lvl+1] = next
	e.mu.metrics.CompactedBytes += out.sizeB
	e.mu.metrics.CompactionCount++
	if e.mu.wal != nil {
		// Output file before the manifest adopting it; input files only
		// after the manifest stops referencing them. A crash at any point
		// leaves a recoverable state (orphan outputs are deleted by Open).
		persistSSTable(e.opts.Durable, out)
		e.writeManifestLocked()
		for _, t := range plan.inputs {
			e.opts.Durable.Remove(sstFileName(t.id))
		}
		for _, t := range plan.overlapping {
			e.opts.Durable.Remove(sstFileName(t.id))
		}
	}
	return true
}

// planInputsCurrentLocked reports whether every planned input (from-level
// tables and the next level's overlapping-or-kept split) is still present
// in the engine. Single-flight makes competing rounds impossible today, so
// this is a cheap belt-and-suspenders invariant; new L0 arrivals from
// concurrent flushes do not invalidate a plan.
func (e *Engine) planInputsCurrentLocked(plan *compactionPlan) bool {
	present := make(map[uint64]bool, len(e.mu.levels[plan.lvl])+len(e.mu.levels[plan.lvl+1]))
	for _, t := range e.mu.levels[plan.lvl] {
		present[t.id] = true
	}
	for _, t := range e.mu.levels[plan.lvl+1] {
		present[t.id] = true
	}
	for _, t := range plan.inputs {
		if !present[t.id] {
			return false
		}
	}
	for _, t := range plan.overlapping {
		if !present[t.id] {
			return false
		}
	}
	for _, t := range plan.keep {
		if !present[t.id] {
			return false
		}
	}
	return true
}

// Compact forces a full manual compaction of every level down to the
// bottom. Unlike maybeCompact it queues behind any in-flight round rather
// than coalescing with it: callers rely on the level shape being fully
// compacted on return.
func (e *Engine) Compact() {
	e.compactMu.Lock()
	defer e.compactMu.Unlock()
	for lvl := 0; lvl < numLevels-1; lvl++ {
		e.mu.Lock()
		plan := e.planCompactionLocked(lvl)
		if plan == nil {
			e.mu.Unlock()
			continue
		}
		if e.opts.DisableWritePipelining {
			out, next, discards := e.runMerge(plan)
			installed := e.installCompactionLocked(plan, out, next)
			e.mu.Unlock()
			e.finishCompaction(plan, installed, discards)
			continue
		}
		e.mu.Unlock()
		out, next, discards := e.runMerge(plan)
		e.mu.Lock()
		installed := e.installCompactionLocked(plan, out, next)
		e.mu.Unlock()
		e.finishCompaction(plan, installed, discards)
	}
	// The full compaction concentrated discard stats; reclaim eligible
	// value-log files before returning (still under the single-flight guard).
	e.runVlogGC()
}
