package lsm

import (
	"testing"

	"crdbserverless/internal/faultinject"
)

// An injected flush failure is a background error: the memtable stays, the
// write that crossed the threshold still succeeds, and the rotation is
// retried at the next opportunity. Only an explicit Flush surfaces the error.
func TestInjectedFlushErrorKeepsMemTable(t *testing.T) {
	reg := faultinject.New(1, nil)
	e := New(Options{MemTableSize: 8, Faults: reg})
	reg.Enable("lsm.flush.error", faultinject.Site{Probability: 1, MaxFires: 2})

	// Crosses the threshold; the flush attempt fails silently.
	if err := e.Set([]byte("alpha"), []byte("one")); err != nil {
		t.Fatal(err)
	}
	if m := e.Metrics(); m.FlushCount != 0 || m.MemTableBytes == 0 {
		t.Fatalf("after failed flush: FlushCount=%d MemTableBytes=%d", m.FlushCount, m.MemTableBytes)
	}
	if v, ok, err := e.Get([]byte("alpha")); err != nil || !ok || string(v) != "one" {
		t.Fatalf("read after failed flush = %q %v %v", v, ok, err)
	}
	// The second fire surfaces on the explicit flush.
	if err := e.Flush(); !faultinject.IsInjected(err) {
		t.Fatalf("explicit flush err = %v, want injected fault", err)
	}
	if v, ok, _ := e.Get([]byte("alpha")); !ok || string(v) != "one" {
		t.Fatalf("read after failed explicit flush = %q %v", v, ok)
	}
	// Fires exhausted: the retried flush succeeds and nothing was lost.
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	m := e.Metrics()
	if m.FlushCount != 1 || m.L0Files != 1 || m.MemTableBytes != 0 {
		t.Fatalf("after recovery: %+v", m)
	}
	if v, ok, _ := e.Get([]byte("alpha")); !ok || string(v) != "one" {
		t.Fatalf("read after recovered flush = %q %v", v, ok)
	}
}

// An injected compaction failure skips the round, leaving the L0 backlog in
// place; once the site stops firing, the next write re-triggers the
// scheduler and the backlog drains.
func TestInjectedCompactionErrorSkipsRound(t *testing.T) {
	reg := faultinject.New(2, nil)
	e := New(Options{MemTableSize: 8, L0CompactionThreshold: 2, Faults: reg})
	reg.Enable("lsm.compact.error", faultinject.Site{Probability: 1})

	for i := 0; i < 4; i++ {
		if err := e.Set([]byte{byte('a' + i)}, []byte("value")); err != nil {
			t.Fatal(err)
		}
	}
	m := e.Metrics()
	if m.CompactionCount != 0 || m.L0Files < e.opts.L0CompactionThreshold {
		t.Fatalf("backlog should persist under injected failures: %+v", m)
	}
	reg.Disable("lsm.compact.error")
	if err := e.Set([]byte("zz"), []byte("value")); err != nil {
		t.Fatal(err)
	}
	m = e.Metrics()
	if m.CompactionCount == 0 || m.L0Files >= e.opts.L0CompactionThreshold {
		t.Fatalf("backlog should drain once the site is disabled: %+v", m)
	}
	// Every key still reads back through the compacted shape.
	for i := 0; i < 4; i++ {
		if v, ok, err := e.Get([]byte{byte('a' + i)}); err != nil || !ok || string(v) != "value" {
			t.Fatalf("read %c = %q %v %v", 'a'+i, v, ok, err)
		}
	}
}
