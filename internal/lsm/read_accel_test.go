package lsm

import (
	"fmt"
	"sync"
	"testing"
)

func TestBloomFilterNoFalseNegatives(t *testing.T) {
	var entries []Entry
	for i := 0; i < 1000; i++ {
		entries = append(entries, Entry{Key: []byte(fmt.Sprintf("key-%05d", i))})
	}
	f := newBloomFilter(entries)
	for _, e := range entries {
		if !f.mayContain(e.Key) {
			t.Fatalf("false negative for %q", e.Key)
		}
	}
	// Absent keys mostly filter out: at ~10 bits/key the false-positive
	// rate is ~1%; allow a wide margin.
	fp := 0
	for i := 0; i < 1000; i++ {
		if f.mayContain([]byte(fmt.Sprintf("absent-%05d", i))) {
			fp++
		}
	}
	if fp > 50 {
		t.Fatalf("false-positive rate too high: %d/1000", fp)
	}
	// A nil filter (empty table) admits everything rather than lying.
	var nilF *bloomFilter
	if !nilF.mayContain([]byte("anything")) {
		t.Fatal("nil filter must admit all keys")
	}
	if newBloomFilter(nil) != nil {
		t.Fatal("empty table should have no filter")
	}
}

func TestBloomFilterDeterministic(t *testing.T) {
	entries := []Entry{{Key: []byte("a")}, {Key: []byte("b")}, {Key: []byte("c")}}
	a, b := newBloomFilter(entries), newBloomFilter(entries)
	if fmt.Sprint(a.bits) != fmt.Sprint(b.bits) {
		t.Fatalf("same keys produced different filters:\n%v\n%v", a.bits, b.bits)
	}
}

// buildDeepEngine constructs the acceptance shape — a 10-file L0 backlog
// plus populated L1-L3 — twice over identical data, once with read
// acceleration and once without. L0 keys are l0-*, and each deeper level
// holds 4 non-overlapping tables of level-distinct keys.
func buildDeepEngine(t testing.TB, disableAccel bool) *Engine {
	t.Helper()
	e := New(Options{DisableAutoCompactions: true, DisableReadAcceleration: disableAccel})
	for i := 0; i < 10; i++ {
		if err := e.Set([]byte(fmt.Sprintf("l0-%02d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
		if err := e.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for lvl := 1; lvl <= 3; lvl++ {
		for tbl := 0; tbl < 4; tbl++ {
			var entries []Entry
			for k := 0; k < 8; k++ {
				entries = append(entries, Entry{
					Key:   []byte(fmt.Sprintf("l%d-%d%d", lvl, tbl, k)),
					Value: []byte("v"),
				})
			}
			e.mu.levels[lvl] = append(e.mu.levels[lvl], newSSTable(e.mu.nextID, entries))
			e.mu.nextID++
		}
	}
	return e
}

// TestReadAccelerationProbeReduction is the ≥5x acceptance criterion: point
// reads against a 10-file L0 + populated L1-L3 shape must probe at least 5x
// fewer sstables with bloom filters and the level-bound seek than the
// probe-every-table baseline, while returning identical results.
func TestReadAccelerationProbeReduction(t *testing.T) {
	accel := buildDeepEngine(t, false)
	base := buildDeepEngine(t, true)
	defer accel.Close()
	defer base.Close()

	// Reads: every key present in L3 (the worst present-key case: all of
	// L0, L1, L2 must be ruled out first) plus an equal number of misses.
	var reads [][]byte
	for tbl := 0; tbl < 4; tbl++ {
		for k := 0; k < 8; k++ {
			reads = append(reads, []byte(fmt.Sprintf("l3-%d%d", tbl, k)))
			reads = append(reads, []byte(fmt.Sprintf("zz-%d%d", tbl, k)))
		}
	}
	for _, e := range []*Engine{accel, base} {
		for _, key := range reads {
			v, ok, err := e.Get(key)
			if err != nil {
				t.Fatal(err)
			}
			if want := key[0] == 'l'; ok != want {
				t.Fatalf("Get(%q) found=%v, want %v", key, ok, want)
			}
			if ok && string(v) != "v" {
				t.Fatalf("Get(%q) = %q", key, v)
			}
		}
	}

	am, bm := accel.Metrics(), base.Metrics()
	if am.Reads != int64(len(reads)) || bm.Reads != int64(len(reads)) {
		t.Fatalf("reads: accel %d, base %d, want %d", am.Reads, bm.Reads, len(reads))
	}
	if am.TablesProbed == 0 || bm.TablesProbed == 0 {
		t.Fatalf("probe counters not wired: accel %d, base %d", am.TablesProbed, bm.TablesProbed)
	}
	if bm.TablesProbed < 5*am.TablesProbed {
		t.Fatalf("acceleration below 5x: accelerated path probed %d tables, baseline %d",
			am.TablesProbed, bm.TablesProbed)
	}
	if am.BloomFiltered == 0 {
		t.Fatal("bloom filter never rejected a table")
	}
	if bm.BloomFiltered != 0 {
		t.Fatalf("baseline consulted bloom filters: %d", bm.BloomFiltered)
	}
	t.Logf("tables probed: accelerated=%d baseline=%d (%.1fx), bloom filtered=%d",
		am.TablesProbed, bm.TablesProbed,
		float64(bm.TablesProbed)/float64(am.TablesProbed), am.BloomFiltered)
}

// TestConcurrentApplyBatchFlushAtThreshold is the regression test for the
// ApplyBatch/Flush race: with the memtable threshold at one byte, every
// single-entry batch must trigger exactly one flush of exactly that batch.
// Under the old two-critical-section scheme a concurrent writer could rotate
// the memtable between another writer's size check and its Flush call,
// merging or double-counting flushes nondeterministically.
func TestConcurrentApplyBatchFlushAtThreshold(t *testing.T) {
	const writers, batches = 8, 20
	e := New(Options{MemTableSize: 1, DisableAutoCompactions: true})
	defer e.Close()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				key := []byte(fmt.Sprintf("w%02d-b%02d", w, b))
				if err := e.ApplyBatch([]Entry{{Key: key, Value: []byte("v")}}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	m := e.Metrics()
	if m.FlushCount != writers*batches {
		t.Fatalf("FlushCount = %d, want exactly %d (one flush per threshold-crossing batch)",
			m.FlushCount, writers*batches)
	}
	if m.L0Files != writers*batches {
		t.Fatalf("L0Files = %d, want %d", m.L0Files, writers*batches)
	}
	for w := 0; w < writers; w++ {
		for b := 0; b < batches; b++ {
			key := []byte(fmt.Sprintf("w%02d-b%02d", w, b))
			if _, ok, err := e.Get(key); err != nil || !ok {
				t.Fatalf("key %q lost (ok=%v err=%v)", key, ok, err)
			}
		}
	}
}
