package lsm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Value separation (WiscKey/BadgerDB style): values above
// Options.ValueThreshold are appended to a value log and the sstables store a
// fixed-size (fileID, offset, len) pointer instead, keeping keys dense. The
// log is a set of append-only files; compaction reports dead values per file
// (discard stats), and GC rewrites the remaining live entries of a
// mostly-dead file to the log head before deleting it.
//
// Concurrency contract (see DESIGN.md §8):
//   - Appends and discards take only vlog.mu; they never run under e.mu.
//   - A GC rewrite installs the moved pointer into the active memtable under
//     e.mu (exclusive), and the file is deleted only after every live record
//     was either rewritten or found dead. A reader that resolves pointers
//     while holding e.mu.RLock therefore never observes a deleted file: any
//     pointer reachable from its snapshot was rewritten under a lock that
//     excludes it. Point reads resolve outside the lock for throughput and
//     retry from a fresh snapshot on errVlogFileGone instead.

// errVlogFileGone reports a pointer into a value-log file that GC has
// deleted. For point reads this is a retry signal (the rewrite committed a
// fresh pointer before the deletion); for scans it proves the entry was
// already shadowed (see resolveForScanLocked).
var errVlogFileGone = errors.New("lsm: value-log file deleted by GC")

// valuePointer locates a value in the log. It is encoded into Entry.Value
// (with Entry.vptr set) as 12 big-endian bytes.
type valuePointer struct {
	fileID uint32
	offset uint32
	length uint32
}

const valuePointerLen = 12

func encodeValuePointer(p valuePointer) []byte {
	b := make([]byte, valuePointerLen)
	binary.BigEndian.PutUint32(b[0:4], p.fileID)
	binary.BigEndian.PutUint32(b[4:8], p.offset)
	binary.BigEndian.PutUint32(b[8:12], p.length)
	return b
}

func decodeValuePointer(b []byte) (valuePointer, error) {
	if len(b) != valuePointerLen {
		return valuePointer{}, fmt.Errorf("lsm: bad value pointer length %d", len(b))
	}
	return valuePointer{
		fileID: binary.BigEndian.Uint32(b[0:4]),
		offset: binary.BigEndian.Uint32(b[4:8]),
		length: binary.BigEndian.Uint32(b[8:12]),
	}, nil
}

// vlogFile is one append-only segment. Records are self-describing —
// [keyLen u32][valLen u32][key][val] — so GC can iterate a file without
// consulting the sstables. totalBytes and discardBytes count value payload
// bytes; their ratio drives GC candidate selection.
type vlogFile struct {
	id           uint32
	buf          []byte
	totalBytes   int64
	discardBytes int64
}

const vlogRecordHeaderLen = 8

// valueLog is the append-only value store. It has its own mutex; the lock
// order is e.mu before vlog.mu (ApplyBatch appends before taking e.mu, reads
// resolve after releasing it, and nothing holding vlog.mu ever takes e.mu).
type valueLog struct {
	mu       sync.RWMutex
	files    map[uint32]*vlogFile
	activeID uint32
	fileSize int64
	// dir, when non-nil, mirrors every append into a durable file per
	// segment, synced eagerly — a value record must be durable before the
	// WAL record referencing it can be (ApplyBatch separates values before
	// the WAL append, so program order gives the ordering for free).
	dir *Dir
}

func newValueLog(fileSize int64, dir *Dir) *valueLog {
	vl := &valueLog{files: map[uint32]*vlogFile{}, activeID: 1, fileSize: fileSize, dir: dir}
	vl.files[1] = &vlogFile{id: 1}
	return vl
}

// recoverValueLog rebuilds the log from the durable files in dir. The file
// set comes from the directory, not the manifest — segments created after
// the last manifest install hold values the replayed WAL references.
// Discard stats are seeded from the manifest where it lists the file (they
// are advisory, steering GC candidate order). The active file is the
// highest-numbered one present.
func recoverValueLog(fileSize int64, dir *Dir, m *manifest) *valueLog {
	vl := &valueLog{files: map[uint32]*vlogFile{}, activeID: 1, fileSize: fileSize, dir: dir}
	discard := make(map[uint32]int64, len(m.vlogFiles))
	for _, mf := range m.vlogFiles {
		discard[mf.id] = mf.discardBytes
	}
	for _, name := range dir.List("vlog-") {
		var id uint32
		if _, err := fmt.Sscanf(name, "vlog-%d", &id); err != nil {
			continue
		}
		data, _ := dir.ReadFile(name)
		f := &vlogFile{id: id, buf: data}
		for off := 0; off+vlogRecordHeaderLen <= len(data); {
			keyLen := int(binary.BigEndian.Uint32(data[off : off+4]))
			valLen := int(binary.BigEndian.Uint32(data[off+4 : off+8]))
			end := off + vlogRecordHeaderLen + keyLen + valLen
			if end > len(data) {
				break // defensive: appends sync eagerly, so no torn tails
			}
			f.totalBytes += int64(valLen)
			off = end
		}
		if d, ok := discard[id]; ok {
			f.discardBytes = d
			if f.discardBytes > f.totalBytes {
				f.discardBytes = f.totalBytes
			}
		}
		vl.files[id] = f
		if id > vl.activeID {
			vl.activeID = id
		}
	}
	if vl.files[vl.activeID] == nil {
		vl.files[vl.activeID] = &vlogFile{id: vl.activeID}
	}
	return vl
}

// manifestState snapshots the file set for a manifest install, sorted by id
// so same-state manifests are byte-identical.
func (vl *valueLog) manifestState() (uint32, []manifestVlogFile) {
	vl.mu.RLock()
	active := vl.activeID
	out := make([]manifestVlogFile, 0, len(vl.files))
	for _, f := range vl.files {
		out = append(out, manifestVlogFile{id: f.id, totalBytes: f.totalBytes, discardBytes: f.discardBytes})
	}
	vl.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return active, out
}

// append writes key/val to the active file and returns its pointer, rotating
// to a new file when the active one is full.
func (vl *valueLog) append(key, val []byte) valuePointer {
	vl.mu.Lock()
	defer vl.mu.Unlock()
	f := vl.files[vl.activeID]
	if int64(len(f.buf)) >= vl.fileSize {
		vl.activeID++
		f = &vlogFile{id: vl.activeID}
		vl.files[vl.activeID] = f
	}
	off := uint32(len(f.buf))
	var hdr [vlogRecordHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(key)))
	binary.BigEndian.PutUint32(hdr[4:8], uint32(len(val)))
	f.buf = append(f.buf, hdr[:]...)
	f.buf = append(f.buf, key...)
	f.buf = append(f.buf, val...)
	f.totalBytes += int64(len(val))
	if vl.dir != nil {
		name := vlogFileName(f.id)
		vl.dir.Append(name, f.buf[off:])
		vl.dir.Sync(name)
	}
	return valuePointer{fileID: f.id, offset: off, length: uint32(len(val))}
}

// get resolves a pointer to its value. The returned slice aliases the
// file's buffer — immutable once appended, and kept alive by the alias even
// after GC deletes the file — so callers must clone before handing it to
// code that may mutate it. A deleted file yields errVlogFileGone (see the
// concurrency contract above).
func (vl *valueLog) get(p valuePointer) ([]byte, error) {
	vl.mu.RLock()
	defer vl.mu.RUnlock()
	f, ok := vl.files[p.fileID]
	if !ok {
		return nil, errVlogFileGone
	}
	start := int64(p.offset) + vlogRecordHeaderLen
	keyLen := int64(binary.BigEndian.Uint32(f.buf[p.offset : p.offset+4]))
	start += keyLen
	end := start + int64(p.length)
	if end > int64(len(f.buf)) {
		return nil, fmt.Errorf("lsm: value pointer %+v out of bounds (file has %d bytes)", p, len(f.buf))
	}
	return f.buf[start:end:end], nil
}

// discard records that a pointer's value is dead (its key was overwritten,
// deleted, or dropped by compaction). Discards against already-deleted files
// are no-ops.
func (vl *valueLog) discard(p valuePointer) {
	vl.mu.Lock()
	defer vl.mu.Unlock()
	if f, ok := vl.files[p.fileID]; ok {
		f.discardBytes += int64(p.length)
		if f.discardBytes > f.totalBytes {
			f.discardBytes = f.totalBytes
		}
	}
}

// pickGC returns the lowest-id non-active file whose discard ratio meets
// threshold. Lowest-id-first keeps GC order deterministic.
func (vl *valueLog) pickGC(threshold float64) (uint32, bool) {
	vl.mu.RLock()
	defer vl.mu.RUnlock()
	best := uint32(0)
	for id, f := range vl.files {
		if id == vl.activeID || f.totalBytes == 0 {
			continue
		}
		if float64(f.discardBytes)/float64(f.totalBytes) >= threshold {
			if best == 0 || id < best {
				best = id
			}
		}
	}
	return best, best != 0
}

// vlogRecord is one decoded record of a file, with the pointer that sstable
// entries referencing it would carry.
type vlogRecord struct {
	key []byte
	val []byte
	ptr valuePointer
}

// records decodes every record of a file. Non-active files are immutable, so
// the returned slices alias the file's buffer safely; a missing file returns
// nil.
func (vl *valueLog) records(id uint32) []vlogRecord {
	vl.mu.RLock()
	defer vl.mu.RUnlock()
	f, ok := vl.files[id]
	if !ok {
		return nil
	}
	var out []vlogRecord
	for off := 0; off < len(f.buf); {
		keyLen := int(binary.BigEndian.Uint32(f.buf[off : off+4]))
		valLen := int(binary.BigEndian.Uint32(f.buf[off+4 : off+8]))
		keyStart := off + vlogRecordHeaderLen
		valStart := keyStart + keyLen
		out = append(out, vlogRecord{
			key: f.buf[keyStart:valStart],
			val: f.buf[valStart : valStart+valLen],
			ptr: valuePointer{fileID: id, offset: uint32(off), length: uint32(valLen)},
		})
		off = valStart + valLen
	}
	return out
}

// deleteFile removes a fully-GC'd file and returns its payload bytes (the
// space reclaimed). The durable mirror is removed with it — callers must
// first force any WAL records carrying the relocated pointers to durability
// (see Engine.walSyncBarrier).
func (vl *valueLog) deleteFile(id uint32) int64 {
	vl.mu.Lock()
	defer vl.mu.Unlock()
	f, ok := vl.files[id]
	if !ok || id == vl.activeID {
		return 0
	}
	delete(vl.files, id)
	if vl.dir != nil {
		vl.dir.Remove(vlogFileName(id))
	}
	return f.totalBytes
}

// vlogStats is a snapshot of log-wide occupancy.
type vlogStats struct {
	files     int
	liveBytes int64
	deadBytes int64
}

func (vl *valueLog) stats() vlogStats {
	vl.mu.RLock()
	defer vl.mu.RUnlock()
	s := vlogStats{files: len(vl.files)}
	for _, f := range vl.files {
		s.liveBytes += f.totalBytes - f.discardBytes
		s.deadBytes += f.discardBytes
	}
	return s
}

// --- engine-side GC -------------------------------------------------------

// VlogGC runs value-log garbage collection until no file meets the discard
// threshold. It takes the compaction single-flight lock, so it never
// overlaps a compaction (whose discard reports it consumes).
func (e *Engine) VlogGC() {
	if e.vlog == nil {
		return
	}
	e.compactMu.Lock()
	defer e.compactMu.Unlock()
	e.runVlogGC()
}

// runVlogGC drains GC candidates. The caller holds e.compactMu (NOT
// e.mu — the rewrite work below takes e.mu itself, briefly, per entry).
func (e *Engine) runVlogGC() {
	if e.vlog == nil {
		return
	}
	for i := 0; i < 64; i++ { // bound runaway loops defensively
		id, ok := e.vlog.pickGC(e.opts.VlogGCDiscardRatio)
		if !ok {
			return
		}
		e.writeMetrics.VlogGCRounds.Inc(1)
		if !e.rewriteVlogFile(id) {
			return
		}
	}
}

// rewriteVlogFile relocates the live records of one value-log file to the log
// head and deletes the file. It reports whether the round completed (an
// injected lsm.vlog.gc.error aborts mid-file, leaving the file in place —
// nothing is lost, because deletion only ever follows a complete pass).
//
// Per record the protocol is: snapshot-check liveness under RLock (the
// current newest version must still reference this exact pointer), append
// the value to the log head, then re-check and install the moved pointer
// into the active memtable under the exclusive lock. The re-check is three
// cheap probes — active memtable, immutable queue, and the bloom filters of
// L0 tables created after the snapshot — because any write racing the
// rewrite must surface in one of those before compaction (which we exclude
// via compactMu) can move it deeper. A record that raced a write is simply
// skipped; the file survives to the next GC round.
func (e *Engine) rewriteVlogFile(id uint32) bool {
	recs := e.vlog.records(id)
	skipped := false
	for _, rec := range recs {
		// An injected GC failure aborts the round mid-rewrite. Acked writes
		// stay readable: pointers move only after their new record is durable,
		// and the file outlives the abort.
		if e.opts.Faults.Should("lsm.vlog.gc.error") {
			return false
		}
		live, minNewID := e.vlogRecordLive(rec)
		if !live {
			continue
		}
		newPtr := e.vlog.append(rec.key, rec.val)
		if e.installRewrittenPointer(rec.key, newPtr, minNewID) {
			e.writeMetrics.VlogGCRewritten.Inc(1)
		} else {
			// The install lost a race with a fresh write; the new record is
			// orphaned garbage and the old file must survive this round.
			e.vlog.discard(newPtr)
			skipped = true
		}
	}
	if skipped {
		return true // file stays; its remaining live records retry later
	}
	// The relocated pointers were WAL-logged by their installs; force that
	// tail durable before the old file disappears, so no crash can leave a
	// durable pointer aimed at a deleted file.
	e.walSyncBarrier()
	reclaimed := e.vlog.deleteFile(id)
	e.writeMetrics.VlogGCReclaimed.Inc(reclaimed)
	return true
}

// vlogRecordLive reports whether rec's pointer is still what a read of its
// key resolves to, plus the engine's next table id at snapshot time (used by
// the install-side re-check to spot L0 tables that appeared afterwards).
func (e *Engine) vlogRecordLive(rec vlogRecord) (bool, uint64) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.mu.closed {
		return false, 0
	}
	minNewID := e.mu.nextID
	ent, ok := e.getRawLocked(rec.key)
	if !ok || ent.Tombstone || !ent.vptr {
		return false, minNewID
	}
	cur, err := decodeValuePointer(ent.Value)
	if err != nil {
		return false, minNewID
	}
	return cur == rec.ptr, minNewID
}

// getRawLocked probes mem → imm → levels for the newest version of key
// without resolving value pointers. Caller holds e.mu (either mode). The
// block cache is bypassed: GC liveness checks must not evict under the lock.
func (e *Engine) getRawLocked(key []byte) (Entry, bool) {
	if ent, ok := e.mu.mem.get(key); ok {
		return ent, true
	}
	for _, j := range e.mu.imm {
		if ent, ok := j.mem.get(key); ok {
			return ent, true
		}
	}
	for _, t := range e.mu.levels[0] {
		if !t.filter.mayContain(key) {
			continue
		}
		if ent, ok := t.get(key, nil); ok {
			return ent, true
		}
	}
	for lvl := 1; lvl < numLevels; lvl++ {
		tables := e.mu.levels[lvl]
		i := sortSearchTables(tables, key)
		if i < 0 {
			continue
		}
		if ent, ok := tables[i].get(key, nil); ok {
			return ent, true
		}
	}
	return Entry{}, false
}

// installRewrittenPointer publishes a GC-moved pointer into the active
// memtable, unless a write newer than the liveness snapshot may exist (in
// the memtable, the immutable queue, or an L0 table with id >= minNewID that
// may contain the key). The moved value is logically identical, so neither
// the write epoch nor the hot cache is touched.
func (e *Engine) installRewrittenPointer(key []byte, ptr valuePointer, minNewID uint64) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.mu.closed {
		return false
	}
	if _, ok := e.mu.mem.get(key); ok {
		return false
	}
	for _, j := range e.mu.imm {
		if _, ok := j.mem.get(key); ok {
			return false
		}
	}
	for _, t := range e.mu.levels[0] {
		if t.id >= minNewID && t.filter.mayContain(key) {
			return false
		}
	}
	ent := Entry{Key: cloneBytes(key), Value: encodeValuePointer(ptr), vptr: true}
	// The moved pointer must survive a crash like any other write: WAL it
	// before it becomes visible, in the same critical section.
	if e.mu.wal != nil {
		e.walAppendLocked(appendEntry(nil, ent))
	}
	old, replaced := e.mu.mem.set(ent)
	_ = old
	_ = replaced // mem.get above ruled out a resident entry
	e.mu.metrics.MemTableBytes = e.mu.mem.sizeB
	return true
}
