package lsm

import (
	"bytes"
	"container/heap"
	"sort"
)

// Iterator merges the memtable and all levels into a single forward scan over
// [lo, hi). A nil hi means scan to the end of the keyspace. Tombstones are
// resolved: deleted keys are not surfaced. The iterator operates over a
// snapshot of the engine's runs taken at creation time.
type Iterator struct {
	h       iterHeap
	cur     Entry
	valid   bool
	hi      []byte
	lastKey []byte
}

// NewIter returns an iterator positioned before the first key >= lo.
//
// The whole snapshot — including value-pointer resolution — is taken under
// the read lock, so the returned iterator never touches the engine or the
// value log again. Scans bypass both caches: a range decode would flush the
// point-read working set for blocks it touches once.
func (e *Engine) NewIter(lo, hi []byte) *Iterator {
	e.mu.RLock()
	defer e.mu.RUnlock()

	it := &Iterator{hi: hi}
	prio := 0

	// Memtable is the newest source.
	var memEntries []Entry
	for n := e.mu.mem.seek(lo); n != nil; n = n.next[0] {
		if hi != nil && bytes.Compare(n.key, hi) >= 0 {
			break
		}
		memEntries = append(memEntries, n.entry)
	}
	if memEntries = e.resolveForScanLocked(memEntries); len(memEntries) > 0 {
		it.h = append(it.h, &iterCursor{entries: memEntries, prio: prio})
	}
	prio++

	// Immutable memtables (rotated, build in flight) are newer than any
	// sstable; the queue is newest-first.
	for _, j := range e.mu.imm {
		var immEntries []Entry
		for n := j.mem.seek(lo); n != nil; n = n.next[0] {
			if hi != nil && bytes.Compare(n.key, hi) >= 0 {
				break
			}
			immEntries = append(immEntries, n.entry)
		}
		if immEntries = e.resolveForScanLocked(immEntries); len(immEntries) > 0 {
			it.h = append(it.h, &iterCursor{entries: immEntries, prio: prio})
		}
		prio++
	}

	// L0 newest-first: any table may overlap the bounds, but the min/max
	// pre-check skips the ones that provably don't.
	for _, t := range e.mu.levels[0] {
		if t.overlaps(lo, hi) {
			e.readMetrics.TablesProbed.Inc(1)
			if ents := e.resolveForScanLocked(t.rangeEntries(lo, hi)); len(ents) > 0 {
				it.h = append(it.h, &iterCursor{entries: ents, prio: prio})
			}
		}
		prio++
	}
	// L1+ tables are sorted and non-overlapping: binary-search the window of
	// tables intersecting [lo, hi) instead of probing every table (the
	// baseline, under DisableReadAcceleration, probes them all).
	accel := !e.opts.DisableReadAcceleration
	for lvl := 1; lvl < numLevels; lvl++ {
		tables := e.mu.levels[lvl]
		start := 0
		if accel && lo != nil {
			start = sort.Search(len(tables), func(i int) bool {
				return bytes.Compare(tables[i].maxKey, lo) >= 0
			})
		}
		for i := start; i < len(tables); i++ {
			t := tables[i]
			if accel && hi != nil && bytes.Compare(t.minKey, hi) >= 0 {
				break
			}
			e.readMetrics.TablesProbed.Inc(1)
			if ents := e.resolveForScanLocked(t.rangeEntries(lo, hi)); len(ents) > 0 {
				it.h = append(it.h, &iterCursor{entries: ents, prio: prio})
			}
		}
		prio++
	}
	heap.Init(&it.h)
	it.Next()
	return it
}

// resolveForScanLocked inlines the value-log values of a run snapshot. The
// caller holds e.mu (read-locked). An entry whose value-log file is gone is
// dropped, and that is provably safe: deletion happens only after every live
// record of the file had its replacement pointer installed under the
// exclusive lock, so if this reader observes the deletion, those installs
// happened before its read lock — a newer version of the key sits in a
// higher-priority run of this same snapshot and shadows the dropped entry.
func (e *Engine) resolveForScanLocked(ents []Entry) []Entry {
	out := ents[:0]
	for _, ent := range ents {
		if ent.vptr {
			ptr, err := decodeValuePointer(ent.Value)
			if err != nil {
				e.writeMetrics.VlogResolveDropped.Inc(1)
				continue
			}
			v, err := e.vlog.get(ptr)
			if err != nil {
				e.writeMetrics.VlogResolveDropped.Inc(1)
				continue
			}
			ent.Value = v
			ent.vptr = false
		}
		out = append(out, ent)
	}
	return out
}

// Valid reports whether the iterator is positioned on an entry.
func (it *Iterator) Valid() bool { return it.valid }

// Key returns the current key. Only valid while Valid() is true.
func (it *Iterator) Key() []byte { return it.cur.Key }

// Value returns the current value. Only valid while Valid() is true.
func (it *Iterator) Value() []byte { return it.cur.Value }

// Next advances to the next live (non-tombstone) key.
func (it *Iterator) Next() {
	for {
		e, ok := it.popNext()
		if !ok {
			it.valid = false
			return
		}
		if e.Tombstone {
			continue
		}
		it.cur = e
		it.valid = true
		return
	}
}

// popNext pops the next distinct key, resolving shadowing by priority.
func (it *Iterator) popNext() (Entry, bool) {
	for it.h.Len() > 0 {
		c := it.h[0]
		e := c.entries[c.idx]
		if it.hi != nil && bytes.Compare(e.Key, it.hi) >= 0 {
			heap.Pop(&it.h)
			continue
		}
		c.idx++
		if c.idx >= len(c.entries) {
			heap.Pop(&it.h)
		} else {
			heap.Fix(&it.h, 0)
		}
		if it.lastKey != nil && bytes.Equal(e.Key, it.lastKey) {
			continue // shadowed by a newer run already surfaced
		}
		it.lastKey = e.Key
		return e, true
	}
	return Entry{}, false
}

type iterCursor struct {
	entries []Entry
	idx     int
	prio    int // lower is newer
}

type iterHeap []*iterCursor

func (h iterHeap) Len() int { return len(h) }
func (h iterHeap) Less(i, j int) bool {
	cmp := bytes.Compare(h[i].entries[h[i].idx].Key, h[j].entries[h[j].idx].Key)
	if cmp != 0 {
		return cmp < 0
	}
	return h[i].prio < h[j].prio
}
func (h iterHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *iterHeap) Push(x interface{}) { *h = append(*h, x.(*iterCursor)) }
func (h *iterHeap) Pop() interface{} {
	old := *h
	n := len(old)
	c := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return c
}
