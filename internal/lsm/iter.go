package lsm

import (
	"bytes"
	"container/heap"
)

// Iterator merges the memtable and all levels into a single forward scan over
// [lo, hi). A nil hi means scan to the end of the keyspace. Tombstones are
// resolved: deleted keys are not surfaced. The iterator operates over a
// snapshot of the engine's runs taken at creation time.
type Iterator struct {
	h       iterHeap
	cur     Entry
	valid   bool
	hi      []byte
	lastKey []byte
}

// NewIter returns an iterator positioned before the first key >= lo.
func (e *Engine) NewIter(lo, hi []byte) *Iterator {
	e.mu.RLock()
	defer e.mu.RUnlock()

	it := &Iterator{hi: hi}
	prio := 0

	// Memtable is the newest source.
	var memEntries []Entry
	for n := e.mu.mem.seek(lo); n != nil; n = n.next[0] {
		if hi != nil && bytes.Compare(n.key, hi) >= 0 {
			break
		}
		memEntries = append(memEntries, n.entry)
	}
	if len(memEntries) > 0 {
		it.h = append(it.h, &iterCursor{entries: memEntries, prio: prio})
	}
	prio++

	// Immutable memtables (rotated, build in flight) are newer than any
	// sstable; the queue is newest-first.
	for _, j := range e.mu.imm {
		var immEntries []Entry
		for n := j.mem.seek(lo); n != nil; n = n.next[0] {
			if hi != nil && bytes.Compare(n.key, hi) >= 0 {
				break
			}
			immEntries = append(immEntries, n.entry)
		}
		if len(immEntries) > 0 {
			it.h = append(it.h, &iterCursor{entries: immEntries, prio: prio})
		}
		prio++
	}

	// L0 newest-first, then deeper levels.
	for _, t := range e.mu.levels[0] {
		if c := cursorFor(t, lo, hi, prio); c != nil {
			it.h = append(it.h, c)
		}
		prio++
	}
	for lvl := 1; lvl < numLevels; lvl++ {
		for _, t := range e.mu.levels[lvl] {
			if c := cursorFor(t, lo, hi, prio); c != nil {
				it.h = append(it.h, c)
			}
		}
		prio++
	}
	heap.Init(&it.h)
	it.Next()
	return it
}

func cursorFor(t *ssTable, lo, hi []byte, prio int) *iterCursor {
	start := 0
	if lo != nil {
		start = t.seekIdx(lo)
	}
	if start >= len(t.entries) {
		return nil
	}
	if hi != nil && bytes.Compare(t.entries[start].Key, hi) >= 0 {
		return nil
	}
	return &iterCursor{entries: t.entries, idx: start, prio: prio}
}

// Valid reports whether the iterator is positioned on an entry.
func (it *Iterator) Valid() bool { return it.valid }

// Key returns the current key. Only valid while Valid() is true.
func (it *Iterator) Key() []byte { return it.cur.Key }

// Value returns the current value. Only valid while Valid() is true.
func (it *Iterator) Value() []byte { return it.cur.Value }

// Next advances to the next live (non-tombstone) key.
func (it *Iterator) Next() {
	for {
		e, ok := it.popNext()
		if !ok {
			it.valid = false
			return
		}
		if e.Tombstone {
			continue
		}
		it.cur = e
		it.valid = true
		return
	}
}

// popNext pops the next distinct key, resolving shadowing by priority.
func (it *Iterator) popNext() (Entry, bool) {
	for it.h.Len() > 0 {
		c := it.h[0]
		e := c.entries[c.idx]
		if it.hi != nil && bytes.Compare(e.Key, it.hi) >= 0 {
			heap.Pop(&it.h)
			continue
		}
		c.idx++
		if c.idx >= len(c.entries) {
			heap.Pop(&it.h)
		} else {
			heap.Fix(&it.h, 0)
		}
		if it.lastKey != nil && bytes.Equal(e.Key, it.lastKey) {
			continue // shadowed by a newer run already surfaced
		}
		it.lastKey = e.Key
		return e, true
	}
	return Entry{}, false
}

type iterCursor struct {
	entries []Entry
	idx     int
	prio    int // lower is newer
}

type iterHeap []*iterCursor

func (h iterHeap) Len() int { return len(h) }
func (h iterHeap) Less(i, j int) bool {
	cmp := bytes.Compare(h[i].entries[h[i].idx].Key, h[j].entries[h[j].idx].Key)
	if cmp != 0 {
		return cmp < 0
	}
	return h[i].prio < h[j].prio
}
func (h iterHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *iterHeap) Push(x interface{}) { *h = append(*h, x.(*iterCursor)) }
func (h *iterHeap) Pop() interface{} {
	old := *h
	n := len(old)
	c := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return c
}
