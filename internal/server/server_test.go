package server

import (
	"context"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"crdbserverless/internal/core"
	"crdbserverless/internal/kvserver"
	"crdbserverless/internal/sql"
	"crdbserverless/internal/tenantcost"
	"crdbserverless/internal/timeutil"
	"crdbserverless/internal/txn"
	"crdbserverless/internal/wire"
)

var instanceIDs int64

type testEnv struct {
	cluster *kvserver.Cluster
	reg     *core.Registry
	buckets *tenantcost.BucketServer
}

func newEnv(t *testing.T) *testEnv {
	t.Helper()
	cheap := kvserver.CostConfig{ReadBatchOverhead: time.Nanosecond, WriteBatchOverhead: time.Nanosecond}
	var nodes []*kvserver.Node
	for i := 1; i <= 3; i++ {
		nodes = append(nodes, kvserver.NewNode(kvserver.NodeConfig{
			ID: kvserver.NodeID(i), VCPUs: 2, Cost: cheap,
		}))
	}
	c, err := kvserver.NewCluster(kvserver.ClusterConfig{}, nodes)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	buckets := tenantcost.NewBucketServer(timeutil.NewRealClock())
	reg, err := core.NewRegistry(c, buckets)
	if err != nil {
		t.Fatal(err)
	}
	return &testEnv{cluster: c, reg: reg, buckets: buckets}
}

func (e *testEnv) startNode(t *testing.T, tenant *core.Tenant) *SQLNode {
	t.Helper()
	n := NewSQLNode(SQLNodeConfig{
		InstanceID: atomic.AddInt64(&instanceIDs, 1),
		Cluster:    e.cluster,
		Registry:   e.reg,
		Region:     "us-central1",
		Buckets:    e.buckets,
	})
	if err := n.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Close)
	if tenant != nil {
		if err := n.AssignTenant(context.Background(), tenant); err != nil {
			t.Fatal(err)
		}
	}
	return n
}

func TestSQLNodeServesQueries(t *testing.T) {
	env := newEnv(t)
	tn, _ := env.reg.CreateTenant(context.Background(), "acme", core.TenantOptions{Password: "pw"})
	n := env.startNode(t, tn)

	c, err := wire.Connect(n.Addr(), map[string]string{"tenant": "acme", "user": "app", "password": "pw"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Query("CREATE TABLE t (a INT PRIMARY KEY, b STRING)"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query("INSERT INTO t VALUES (1, 'x'), (2, 'y')"); err != nil {
		t.Fatal(err)
	}
	res, err := c.Query("SELECT b FROM t WHERE a = 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].S != "y" {
		t.Fatalf("query over wire = %+v", res)
	}
	if n.QueryCount() != 3 {
		t.Fatalf("query count = %d", n.QueryCount())
	}
	if n.ConnCount() != 1 {
		t.Fatalf("conn count = %d", n.ConnCount())
	}
}

func TestSQLNodeAuthFailure(t *testing.T) {
	env := newEnv(t)
	tn, _ := env.reg.CreateTenant(context.Background(), "acme", core.TenantOptions{Password: "pw"})
	n := env.startNode(t, tn)

	if _, err := wire.Connect(n.Addr(), map[string]string{"tenant": "acme", "password": "wrong"}); err == nil {
		t.Fatal("wrong password accepted")
	}
	if _, err := wire.Connect(n.Addr(), map[string]string{"tenant": "other", "password": "pw"}); err == nil {
		t.Fatal("wrong tenant accepted")
	}
}

func TestSQLNodePreWarmedConnectionWaits(t *testing.T) {
	// The §4.3.1 optimization: the listener is open before the tenant is
	// assigned; a client handshake blocks (no TCP reset) and completes once
	// the "certificates" arrive.
	env := newEnv(t)
	tn, _ := env.reg.CreateTenant(context.Background(), "acme", core.TenantOptions{})
	n := env.startNode(t, nil) // not yet assigned

	type result struct {
		c   *wire.Client
		err error
	}
	done := make(chan result, 1)
	go func() {
		c, err := wire.Connect(n.Addr(), map[string]string{"tenant": "acme"})
		done <- result{c, err}
	}()
	select {
	case <-done:
		t.Fatal("handshake completed before tenant assignment")
	case <-time.After(50 * time.Millisecond):
	}
	if err := n.AssignTenant(context.Background(), tn); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-done:
		if r.err != nil {
			t.Fatal(r.err)
		}
		defer r.c.Close()
		if _, err := r.c.Query("SHOW TABLES"); err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("handshake did not complete after assignment")
	}
	// Double assignment is rejected.
	if err := n.AssignTenant(context.Background(), tn); err == nil {
		t.Fatal("double assignment accepted")
	}
}

func TestSQLNodeRegistersInstance(t *testing.T) {
	env := newEnv(t)
	ctx := context.Background()
	tn, _ := env.reg.CreateTenant(ctx, "acme", core.TenantOptions{})
	n := env.startNode(t, tn)

	ds := kvserver.NewDistSender(env.cluster, kvserver.Identity{Tenant: tn.ID})
	coord := txn.NewCoordinator(ds, env.cluster.Clock(), tn.ID)
	instances, err := sql.ListInstances(ctx, coord, tn.ID)
	if err != nil || len(instances) != 1 {
		t.Fatalf("instances = %v, %v", instances, err)
	}
	if instances[0].Addr != n.Addr() || instances[0].Region != "us-central1" {
		t.Fatalf("instance = %+v", instances[0])
	}
	// Closing deregisters.
	n.Close()
	instances, _ = sql.ListInstances(ctx, coord, tn.ID)
	if len(instances) != 0 {
		t.Fatalf("instances after close = %v", instances)
	}
}

func TestSQLNodeSerializeAndRestoreSession(t *testing.T) {
	env := newEnv(t)
	ctx := context.Background()
	tn, _ := env.reg.CreateTenant(ctx, "acme", core.TenantOptions{})
	n1 := env.startNode(t, tn)
	n2 := env.startNode(t, tn)

	c, err := wire.Connect(n1.Addr(), map[string]string{"tenant": "acme", "user": "app"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query("SET app = 'migrated'"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query("CREATE TABLE t (a INT PRIMARY KEY)"); err != nil {
		t.Fatal(err)
	}

	// Proxy-side serialize: raw wire exchange on the same connection.
	// (We reach into the Client's conn via a second client conn; here we
	// simulate the proxy directly.)
	blob := serializeViaWire(t, n1.Addr())

	// Restore onto node 2.
	conn, err := netDial(n2.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := wire.WriteMessage(conn, wire.MsgRestore, &wire.Restore{Data: blob}); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := wire.ReadMessage(conn)
	if err != nil || typ != wire.MsgAuth {
		t.Fatalf("restore response = %c, %v", typ, err)
	}
	var auth wire.Auth
	wire.Decode(payload, &auth)
	if !auth.OK {
		t.Fatalf("restore rejected: %s", auth.Msg)
	}
	// The restored session still has its settings and can run queries.
	wire.WriteMessage(conn, wire.MsgQuery, &wire.Query{SQL: "SELECT COUNT(*) FROM t"})
	typ, payload, err = wire.ReadMessage(conn)
	if err != nil || typ != wire.MsgResult {
		t.Fatalf("restored query = %c, %v", typ, err)
	}
	var res wire.Result
	wire.Decode(payload, &res)
	if res.Err != "" {
		t.Fatalf("restored query error: %s", res.Err)
	}
}

// serializeViaWire opens a session, sets state, and asks the node to
// serialize it, returning the blob.
func serializeViaWire(t *testing.T, addr string) []byte {
	t.Helper()
	conn, err := netDial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	wire.WriteMessage(conn, wire.MsgStartup, &wire.Startup{Params: map[string]string{"tenant": "acme", "user": "app"}})
	typ, _, err := wire.ReadMessage(conn)
	if err != nil || typ != wire.MsgAuth {
		t.Fatalf("startup = %c %v", typ, err)
	}
	wire.WriteMessage(conn, wire.MsgQuery, &wire.Query{SQL: "SET app = 'migrated'"})
	if typ, _, err = wire.ReadMessage(conn); err != nil || typ != wire.MsgResult {
		t.Fatalf("set = %c %v", typ, err)
	}
	wire.WriteMessage(conn, wire.MsgSerialize, &wire.Serialize{})
	typ, payload, err := wire.ReadMessage(conn)
	if err != nil || typ != wire.MsgSerialized {
		t.Fatalf("serialize = %c %v", typ, err)
	}
	var ser wire.Serialized
	wire.Decode(payload, &ser)
	if ser.Err != "" {
		t.Fatalf("serialize error: %s", ser.Err)
	}
	return ser.Data
}

func TestSQLNodeDrainRefusesNewConns(t *testing.T) {
	env := newEnv(t)
	tn, _ := env.reg.CreateTenant(context.Background(), "acme", core.TenantOptions{})
	n := env.startNode(t, tn)
	n.Drain()
	if !n.Draining() {
		t.Fatal("not draining")
	}
	c, err := wire.Connect(n.Addr(), map[string]string{"tenant": "acme"})
	if err != nil {
		t.Fatal(err) // auth still succeeds; the first query is refused
	}
	defer c.Close()
	if _, err := c.Query("SHOW TABLES"); err == nil {
		t.Fatal("draining node served a new connection")
	}
}

func TestSQLNodeSyntheticLoadAndCPUReporting(t *testing.T) {
	env := newEnv(t)
	tn, _ := env.reg.CreateTenant(context.Background(), "acme", core.TenantOptions{})
	mc := timeutil.NewManualClock(time.Unix(0, 0))
	n := NewSQLNode(SQLNodeConfig{
		InstanceID: atomic.AddInt64(&instanceIDs, 1),
		Cluster:    env.cluster,
		Registry:   env.reg,
		Region:     "us-central1",
		Clock:      mc,
	})
	if err := n.Start(); err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if err := n.AssignTenant(context.Background(), tn); err != nil {
		t.Fatal(err)
	}
	n.SetSyntheticLoad(2.5)
	mc.Advance(10 * time.Second)
	got := n.CumulativeCPUSeconds()
	if got < 24.9 || got > 25.1 {
		t.Fatalf("cumulative cpu = %f, want ~25", got)
	}
	n.SetSyntheticLoad(0)
	mc.Advance(10 * time.Second)
	if after := n.CumulativeCPUSeconds(); after-got > 0.1 {
		t.Fatalf("cpu accrued after load stopped: %f", after-got)
	}
}

func TestMeteredSenderAccumulates(t *testing.T) {
	env := newEnv(t)
	ctx := context.Background()
	tn, _ := env.reg.CreateTenant(ctx, "acme", core.TenantOptions{})
	n := env.startNode(t, tn)
	c, err := wire.Connect(n.Addr(), map[string]string{"tenant": "acme"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Query("CREATE TABLE t (a INT PRIMARY KEY)")
	c.Query("INSERT INTO t VALUES (1)")
	c.Query("SELECT * FROM t")
	n.mu.Lock()
	f := n.mu.metered.Features()
	batches := n.mu.metered.Batches()
	n.mu.Unlock()
	if f.ReadBatches == 0 || f.WriteBatches == 0 || batches == 0 {
		t.Fatalf("metering empty: %+v (%d batches)", f, batches)
	}
	if n.ECPUConsumedTokens() <= 0 {
		t.Fatal("no eCPU recorded")
	}
}

// netDial is a tiny helper for raw wire exchanges in tests.
func netDial(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
