// Package server assembles processes: the per-tenant SQL node (§4.1) that
// serves the wire protocol, meters tenant resource consumption, enforces the
// tenant's eCPU quota via the distributed token bucket, and supports the
// pre-warmed cold-start flow (§4.3.1) and session migration (§4.2.4).
package server

import (
	"context"
	"sync"

	"crdbserverless/internal/kvpb"
	"crdbserverless/internal/tenantcost"
	"crdbserverless/internal/txn"
)

// MeteredSender wraps a KV sender, accumulating the batch features the
// estimated-CPU model prices (§5.2.1). Every KV round trip a SQL node makes
// flows through one of these.
type MeteredSender struct {
	inner txn.Sender

	mu       sync.Mutex
	features tenantcost.BatchFeatures
	batches  int64
}

// NewMeteredSender wraps inner.
func NewMeteredSender(inner txn.Sender) *MeteredSender {
	return &MeteredSender{inner: inner}
}

// Send implements txn.Sender.
func (m *MeteredSender) Send(ctx context.Context, ba *kvpb.BatchRequest) (*kvpb.BatchResponse, error) {
	resp, err := m.inner.Send(ctx, ba)
	if err != nil {
		return nil, err
	}
	f := tenantcost.FeaturesFromBatch(ba, resp)
	m.mu.Lock()
	m.features.Add(f)
	m.batches++
	m.mu.Unlock()
	return resp, nil
}

// Features returns the accumulated batch features.
func (m *MeteredSender) Features() tenantcost.BatchFeatures {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.features
}

// Batches returns the number of KV batches sent.
func (m *MeteredSender) Batches() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.batches
}
