package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"crdbserverless/internal/core"
	"crdbserverless/internal/kvpb"
	"crdbserverless/internal/kvserver"
	"crdbserverless/internal/region"
	"crdbserverless/internal/sql"
	"crdbserverless/internal/tenantcost"
	"crdbserverless/internal/tenantobs"
	"crdbserverless/internal/timeutil"
	"crdbserverless/internal/trace"
	"crdbserverless/internal/txn"
	"crdbserverless/internal/wire"
)

// SQLNodeConfig configures a SQL node process.
type SQLNodeConfig struct {
	// InstanceID is the node's identity in system.sql_instances.
	InstanceID int64
	Cluster    *kvserver.Cluster
	Registry   *core.Registry
	Region     region.Region
	// Model prices KV traffic in estimated CPU.
	Model *tenantcost.Model
	// Buckets is the distributed token-bucket server enforcing quotas.
	Buckets *tenantcost.BucketServer
	// RevivalSecret signs session revival tokens (§4.2.4).
	RevivalSecret []byte
	// Colocated marks traditional deployments (SQL in the KV process).
	Colocated bool
	Clock     timeutil.Clock
	// Addr is the TCP address to listen on; defaults to 127.0.0.1:0.
	Addr string
	// Tracer, when non-nil, continues request traces propagated by the
	// proxy (wire.Query trace IDs) through statement execution.
	Tracer *trace.Tracer
	// Obs, when non-nil, is the tenant observability plane: the node's
	// executor, coordinator, and DistSender report per-tenant signals
	// through it.
	Obs *tenantobs.Plane
}

// SQLNode is one tenant's SQL process. It follows the optimized cold-start
// flow of §4.3.1: Start opens the TCP listener and begins accepting before a
// tenant is assigned (connections wait in the accept path instead of being
// reset); AssignTenant — the analogue of certificates appearing on the
// file system — completes initialization.
type SQLNode struct {
	cfg SQLNodeConfig
	ln  net.Listener

	tenantReady chan struct{}

	mu struct {
		sync.Mutex
		tenant   *core.Tenant
		exec     *sql.Executor
		metered  *MeteredSender
		bucket   *tenantcost.NodeBucket
		draining bool
		closed   bool
		conns    map[net.Conn]*connState
		// sessionCount is current open sessions; queries is cumulative.
		queries int64
		// lastECPUTokens snapshots consumed estimate for per-query deltas.
		lastECPUTokens float64
		// synthetic load for autoscaling experiments (vCPUs).
		synthRate   float64
		synthAccum  float64
		synthSince  time.Time
		activeConns int
	}
	wg sync.WaitGroup
}

type connState struct {
	session *sql.Session
}

// NewSQLNode creates a node; call Start to open its listener.
func NewSQLNode(cfg SQLNodeConfig) *SQLNode {
	if cfg.Clock == nil {
		cfg.Clock = timeutil.NewRealClock()
	}
	if cfg.Model == nil {
		cfg.Model = tenantcost.DefaultModel()
	}
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if len(cfg.RevivalSecret) == 0 {
		cfg.RevivalSecret = []byte("cluster-revival-secret")
	}
	n := &SQLNode{cfg: cfg, tenantReady: make(chan struct{})}
	n.mu.conns = make(map[net.Conn]*connState)
	n.mu.synthSince = cfg.Clock.Now()
	return n
}

// Start opens the listener and begins accepting. The process is "pre-warmed":
// it serves the accept queue even before AssignTenant.
func (n *SQLNode) Start() error {
	ln, err := net.Listen("tcp", n.cfg.Addr)
	if err != nil {
		return err
	}
	n.ln = ln
	n.wg.Add(1)
	go n.acceptLoop()
	return nil
}

// Addr returns the node's listen address.
func (n *SQLNode) Addr() string {
	if n.ln == nil {
		return ""
	}
	return n.ln.Addr().String()
}

// InstanceID returns the node's instance ID.
func (n *SQLNode) InstanceID() int64 { return n.cfg.InstanceID }

// Region returns the node's region.
func (n *SQLNode) Region() region.Region { return n.cfg.Region }

// AssignTenant stamps the node with its tenant — the moment the tenant's
// certificates land on the pod's file system in production (§4.3.1). The
// node connects to the KV layer, builds its SQL stack, and registers itself
// in system.sql_instances for DistSQL discovery.
func (n *SQLNode) AssignTenant(ctx context.Context, t *core.Tenant) error {
	n.mu.Lock()
	if n.mu.tenant != nil {
		n.mu.Unlock()
		return errors.New("server: tenant already assigned")
	}
	ds := kvserver.NewDistSender(n.cfg.Cluster, kvserver.Identity{Tenant: t.ID}, kvserver.Config{Obs: n.cfg.Obs})
	metered := NewMeteredSender(colocatedSender{inner: ds, colocated: n.cfg.Colocated})
	coord := txn.NewCoordinator(metered, n.cfg.Cluster.Clock(), t.ID)
	coord.SetObs(n.cfg.Obs)
	catalog := sql.NewCatalog(coord, t.ID)
	exec := sql.NewExecutor(catalog, coord, sql.ExecutorConfig{Colocated: n.cfg.Colocated, Obs: n.cfg.Obs})
	n.mu.tenant = t
	n.mu.exec = exec
	n.mu.metered = metered
	if n.cfg.Buckets != nil {
		n.mu.bucket = tenantcost.NewNodeBucket(n.cfg.Buckets, n.cfg.Clock, t.ID, int32(n.cfg.InstanceID))
	}
	n.mu.Unlock()
	close(n.tenantReady)

	// The startup write to system.sql_instances (§3.2.5).
	return sql.RegisterInstance(ctx, coord, t.ID, sql.SQLInstance{
		ID: n.cfg.InstanceID, Region: n.cfg.Region, Addr: n.Addr(),
	})
}

// colocatedSender stamps batches with the deployment's process topology.
type colocatedSender struct {
	inner     txn.Sender
	colocated bool
}

func (c colocatedSender) Send(ctx context.Context, ba *kvpb.BatchRequest) (*kvpb.BatchResponse, error) {
	ba.Colocated = c.colocated
	return c.inner.Send(ctx, ba)
}

// Tenant returns the assigned tenant, if any.
func (n *SQLNode) Tenant() *core.Tenant {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.mu.tenant
}

// Executor exposes the node's SQL executor (nil before assignment).
func (n *SQLNode) Executor() *sql.Executor {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.mu.exec
}

// Drain puts the node into draining: new connections are refused while
// existing ones finish or migrate (§4.2.3).
func (n *SQLNode) Drain() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.mu.draining = true
}

// Undrain returns a draining node to service — the churn-reduction path of
// §4.2.3 where draining nodes are reused before pre-warmed ones.
func (n *SQLNode) Undrain() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.mu.draining = false
}

// Draining reports whether the node is draining.
func (n *SQLNode) Draining() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.mu.draining
}

// ConnCount returns the number of open connections.
func (n *SQLNode) ConnCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.mu.activeConns
}

// QueryCount returns the number of queries served.
func (n *SQLNode) QueryCount() int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.mu.queries
}

// Close shuts the node down.
func (n *SQLNode) Close() {
	n.mu.Lock()
	if n.mu.closed {
		n.mu.Unlock()
		return
	}
	n.mu.closed = true
	conns := make([]net.Conn, 0, len(n.mu.conns))
	for c := range n.mu.conns {
		conns = append(conns, c)
	}
	sort.Slice(conns, func(i, j int) bool {
		return conns[i].RemoteAddr().String() < conns[j].RemoteAddr().String()
	})
	tenant := n.mu.tenant
	n.mu.Unlock()
	if n.ln != nil {
		n.ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	n.wg.Wait()
	// Deregister from system.sql_instances.
	if tenant != nil && n.mu.exec != nil {
		ds := kvserver.NewDistSender(n.cfg.Cluster, kvserver.Identity{Tenant: tenant.ID})
		coord := txn.NewCoordinator(ds, n.cfg.Cluster.Clock(), tenant.ID)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		//lint:allow faulterr best-effort deregistration during shutdown; the node is gone either way and the orchestrator prunes stale rows
		_ = sql.UnregisterInstance(ctx, coord, tenant.ID, n.cfg.Region, n.cfg.InstanceID)
	}
}

// CumulativeCPUSeconds returns the node's total CPU consumption: measured
// SQL CPU plus any synthetic load injected for experiments. The autoscaler
// scrapes this directly at a 3-second cadence (§4.3.2).
func (n *SQLNode) CumulativeCPUSeconds() float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.accrueSynthLocked()
	var sqlCPU float64
	if n.mu.exec != nil {
		sqlCPU = n.mu.exec.SQLCPUSeconds()
	}
	return sqlCPU + n.mu.synthAccum
}

// SetSyntheticLoad makes the node report a steady CPU usage of the given
// vCPUs — the experiment harness uses this to replay production load traces
// through the autoscaler.
func (n *SQLNode) SetSyntheticLoad(vcpus float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.accrueSynthLocked()
	n.mu.synthRate = vcpus
}

func (n *SQLNode) accrueSynthLocked() {
	now := n.cfg.Clock.Now()
	dt := now.Sub(n.mu.synthSince).Seconds()
	if dt > 0 {
		n.mu.synthAccum += n.mu.synthRate * dt
	}
	n.mu.synthSince = now
}

// ECPUConsumedTokens returns the node's total estimated-CPU consumption in
// bucket tokens (milliseconds), per the §5.2.1 model.
func (n *SQLNode) ECPUConsumedTokens() float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.mu.exec == nil {
		return 0
	}
	est := n.cfg.Model.Estimate(
		tenantcost.ECPU(n.mu.exec.SQLCPUSeconds()+n.mu.synthAccum),
		n.mu.metered.Features(),
	)
	return est.Tokens()
}

func (n *SQLNode) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return
		}
		n.mu.Lock()
		if n.mu.closed {
			n.mu.Unlock()
			conn.Close()
			continue
		}
		n.mu.Unlock()
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.handleConn(conn)
		}()
	}
}

// handleConn serves one wire-protocol connection.
func (n *SQLNode) handleConn(conn net.Conn) {
	defer conn.Close()

	// Pre-warmed nodes accept the TCP connection before the tenant is known
	// — the client's handshake waits here rather than seeing a reset.
	<-n.tenantReady

	typ, payload, err := wire.ReadMessage(conn)
	if err != nil {
		return
	}
	var session *sql.Session
	switch typ {
	case wire.MsgStartup:
		var s wire.Startup
		if err := wire.Decode(payload, &s); err != nil {
			return
		}
		session = n.authenticate(conn, &s)
	case wire.MsgRestore:
		var r wire.Restore
		if err := wire.Decode(payload, &r); err != nil {
			return
		}
		session = n.restore(conn, &r)
	default:
		return
	}
	if session == nil {
		return
	}

	st := &connState{session: session}
	n.mu.Lock()
	if n.mu.draining || n.mu.closed {
		n.mu.Unlock()
		wire.WriteMessage(conn, wire.MsgResult, &wire.Result{Err: "server is draining"})
		return
	}
	n.mu.conns[conn] = st
	n.mu.activeConns++
	n.mu.Unlock()
	defer func() {
		n.mu.Lock()
		delete(n.mu.conns, conn)
		n.mu.activeConns--
		n.mu.Unlock()
	}()

	n.serveSession(conn, st)
}

// authenticate validates startup credentials against the tenant record and
// answers with an Auth message.
func (n *SQLNode) authenticate(conn net.Conn, s *wire.Startup) *sql.Session {
	tenant := n.Tenant()
	name := s.Params["tenant"]
	if name != "" && name != tenant.Name {
		wire.WriteMessage(conn, wire.MsgAuth, &wire.Auth{OK: false, Msg: "tenant mismatch"})
		return nil
	}
	if tenant.Password != "" && s.Params["password"] != tenant.Password {
		wire.WriteMessage(conn, wire.MsgAuth, &wire.Auth{OK: false, Msg: "invalid credentials"})
		return nil
	}
	if err := wire.WriteMessage(conn, wire.MsgAuth, &wire.Auth{OK: true}); err != nil {
		return nil
	}
	user := s.Params["user"]
	if user == "" {
		user = "root"
	}
	return sql.NewSession(n.Executor(), user)
}

// restore resumes a migrated session (§4.2.4): the revival token inside the
// serialized payload authenticates it without client credentials.
func (n *SQLNode) restore(conn net.Conn, r *wire.Restore) *sql.Session {
	ser, err := sql.DecodeSerializedSession(r.Data)
	if err != nil {
		wire.WriteMessage(conn, wire.MsgAuth, &wire.Auth{OK: false, Msg: "bad session payload"})
		return nil
	}
	session, err := sql.RestoreSession(n.Executor(), ser, n.cfg.RevivalSecret)
	if err != nil {
		wire.WriteMessage(conn, wire.MsgAuth, &wire.Auth{OK: false, Msg: err.Error()})
		return nil
	}
	if err := wire.WriteMessage(conn, wire.MsgAuth, &wire.Auth{OK: true}); err != nil {
		return nil
	}
	return session
}

// serveSession runs the query loop.
func (n *SQLNode) serveSession(conn net.Conn, st *connState) {
	ctx := context.Background()
	for {
		typ, payload, err := wire.ReadMessage(conn)
		if err != nil {
			return
		}
		switch typ {
		case wire.MsgTerminate:
			return
		case wire.MsgQuery:
			var q wire.Query
			if err := wire.Decode(payload, &q); err != nil {
				return
			}
			qctx := ctx
			var qsp *trace.Span
			if n.cfg.Tracer != nil && q.TraceID != 0 {
				qsp = n.cfg.Tracer.StartRemote(q.TraceID, q.SpanID, "sqlnode.query")
				qsp.SetAttr("sqlnode.instance", n.cfg.InstanceID)
				qctx = trace.ContextWithSpan(qctx, qsp)
			}
			res, qerr := st.session.Execute(qctx, q.SQL, q.Args...)
			qsp.Finish()
			n.mu.Lock()
			n.mu.queries++
			n.mu.Unlock()
			n.enforceQuota()
			out := &wire.Result{}
			if qerr != nil {
				out.Err = qerr.Error()
			} else {
				out.Columns = res.Columns
				out.Rows = res.Rows
				out.RowsAffected = res.RowsAffected
			}
			if err := wire.WriteMessage(conn, wire.MsgResult, out); err != nil {
				return
			}
		case wire.MsgSerialize:
			ser, serr := st.session.Serialize(n.cfg.RevivalSecret)
			resp := &wire.Serialized{}
			if serr != nil {
				resp.Err = serr.Error()
			} else {
				data, eerr := ser.Encode()
				if eerr != nil {
					resp.Err = eerr.Error()
				} else {
					resp.Data = data
				}
			}
			if err := wire.WriteMessage(conn, wire.MsgSerialized, resp); err != nil {
				return
			}
			if resp.Err == "" {
				// The proxy takes the session elsewhere; this connection is
				// done.
				return
			}
		default:
			return
		}
	}
}

// enforceQuota charges the node's eCPU consumption delta against the
// tenant's distributed token bucket and smooth-throttles when over quota
// (§5.2.2).
func (n *SQLNode) enforceQuota() {
	n.mu.Lock()
	bucket := n.mu.bucket
	if bucket == nil {
		n.mu.Unlock()
		return
	}
	total := 0.0
	if n.mu.exec != nil {
		est := n.cfg.Model.Estimate(tenantcost.ECPU(n.mu.exec.SQLCPUSeconds()), n.mu.metered.Features())
		total = est.Tokens()
	}
	delta := total - n.mu.lastECPUTokens
	n.mu.lastECPUTokens = total
	n.mu.Unlock()
	if delta <= 0 {
		return
	}
	if delay := bucket.Consume(delta); delay > 0 {
		n.cfg.Clock.Sleep(delay)
	}
}

// String implements fmt.Stringer.
func (n *SQLNode) String() string {
	t := n.Tenant()
	name := "<unassigned>"
	if t != nil {
		name = t.Name
	}
	return fmt.Sprintf("sqlnode-%d[%s@%s]", n.cfg.InstanceID, name, n.cfg.Region)
}
