package orchestrator

import (
	"context"
	"testing"
	"time"

	"crdbserverless/internal/core"
	"crdbserverless/internal/kvserver"
	"crdbserverless/internal/tenantcost"
	"crdbserverless/internal/timeutil"
	"crdbserverless/internal/wire"
)

type env struct {
	cluster *kvserver.Cluster
	reg     *core.Registry
	clock   *timeutil.ManualClock
}

func newEnv(t *testing.T) *env {
	t.Helper()
	cheap := kvserver.CostConfig{ReadBatchOverhead: time.Nanosecond, WriteBatchOverhead: time.Nanosecond}
	var nodes []*kvserver.Node
	for i := 1; i <= 3; i++ {
		nodes = append(nodes, kvserver.NewNode(kvserver.NodeConfig{
			ID: kvserver.NodeID(i), VCPUs: 2, Cost: cheap,
		}))
	}
	c, err := kvserver.NewCluster(kvserver.ClusterConfig{}, nodes)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	reg, err := core.NewRegistry(c, tenantcost.NewBucketServer(timeutil.NewRealClock()))
	if err != nil {
		t.Fatal(err)
	}
	return &env{cluster: c, reg: reg, clock: timeutil.NewManualClock(time.Unix(0, 0))}
}

func (e *env) newOrch(t *testing.T, warm int, preStart bool) *Orchestrator {
	t.Helper()
	o, err := New(Config{
		Cluster:         e.cluster,
		Registry:        e.reg,
		Region:          "us-central1",
		WarmPoolSize:    warm,
		PreStartProcess: preStart,
		NodeVCPUs:       4,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(o.Close)
	return o
}

func TestWarmPoolMaintained(t *testing.T) {
	e := newEnv(t)
	o := e.newOrch(t, 3, true)
	if got := o.WarmCount(); got != 3 {
		t.Fatalf("warm = %d", got)
	}
	ctx := context.Background()
	tn, _ := e.reg.CreateTenant(ctx, "acme", core.TenantOptions{})
	pod, err := o.AssignPod(ctx, tn)
	if err != nil {
		t.Fatal(err)
	}
	if pod.State() != PodAssigned || pod.TenantName() != "acme" {
		t.Fatalf("pod = %s %s", pod.State(), pod.TenantName())
	}
	// The pool refills asynchronously.
	deadline := time.Now().Add(3 * time.Second)
	for o.WarmCount() < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("warm pool not refilled: %d", o.WarmCount())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestPreStartedPodServesImmediately(t *testing.T) {
	e := newEnv(t)
	o := e.newOrch(t, 1, true)
	ctx := context.Background()
	tn, _ := e.reg.CreateTenant(ctx, "acme", core.TenantOptions{})
	pod, err := o.AssignPod(ctx, tn)
	if err != nil {
		t.Fatal(err)
	}
	c, err := wire.Connect(pod.Node.Addr(), map[string]string{"tenant": "acme"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Query("SHOW TABLES"); err != nil {
		t.Fatal(err)
	}
}

func TestUnoptimizedPodStartsAtAssignment(t *testing.T) {
	e := newEnv(t)
	o := e.newOrch(t, 1, false)
	ctx := context.Background()
	tn, _ := e.reg.CreateTenant(ctx, "acme", core.TenantOptions{})
	// Warm pod has no listener yet.
	o.mu.Lock()
	warmAddr := o.mu.warm[0].Node.Addr()
	o.mu.Unlock()
	if warmAddr != "" {
		t.Fatalf("unoptimized warm pod has a listener: %q", warmAddr)
	}
	pod, err := o.AssignPod(ctx, tn)
	if err != nil {
		t.Fatal(err)
	}
	if pod.Node.Addr() == "" {
		t.Fatal("assigned pod has no listener")
	}
}

func TestScaleUpAndDown(t *testing.T) {
	e := newEnv(t)
	o := e.newOrch(t, 2, true)
	ctx := context.Background()
	tn, _ := e.reg.CreateTenant(ctx, "acme", core.TenantOptions{})

	pods, err := o.ScaleTenant(ctx, tn, 3)
	if err != nil || len(pods) != 3 {
		t.Fatalf("scale up = %d pods, %v", len(pods), err)
	}
	// Scale down to 1: two pods drain.
	pods, err = o.ScaleTenant(ctx, tn, 1)
	if err != nil || len(pods) != 1 {
		t.Fatalf("scale down = %d pods, %v", len(pods), err)
	}
	draining := 0
	for _, p := range o.PodsForTenant("acme") {
		if p.State() == PodDraining {
			draining++
		}
	}
	if draining != 2 {
		t.Fatalf("draining = %d", draining)
	}
	// Tick reaps connection-free draining pods.
	o.Tick()
	if got := len(o.PodsForTenant("acme")); got != 1 {
		t.Fatalf("pods after reap = %d", got)
	}
}

func TestDrainingPodReusedBeforeWarm(t *testing.T) {
	e := newEnv(t)
	o := e.newOrch(t, 2, true)
	ctx := context.Background()
	tn, _ := e.reg.CreateTenant(ctx, "acme", core.TenantOptions{})
	o.ScaleTenant(ctx, tn, 2)
	pods := o.PodsForTenant("acme")
	// Scale down then immediately back up: the drained pod is reused.
	o.ScaleTenant(ctx, tn, 1)
	o.ScaleTenant(ctx, tn, 2)
	after := o.PodsForTenant("acme")
	if len(after) != 2 {
		t.Fatalf("pods = %d", len(after))
	}
	same := 0
	for _, p := range pods {
		for _, q := range after {
			if p == q {
				same++
			}
		}
	}
	if same != 2 {
		t.Fatalf("expected both original pods reused, got %d", same)
	}
}

func TestSuspendAndResumeViaLookup(t *testing.T) {
	e := newEnv(t)
	o := e.newOrch(t, 2, true)
	ctx := context.Background()
	tn, _ := e.reg.CreateTenant(ctx, "acme", core.TenantOptions{})
	o.ScaleTenant(ctx, tn, 2)

	if err := o.SuspendTenant(ctx, "acme"); err != nil {
		t.Fatal(err)
	}
	if got, _ := e.reg.GetByName("acme"); got.State != core.StateSuspended {
		t.Fatalf("state = %s", got.State)
	}
	if got := len(o.PodsForTenant("acme")); got != 0 {
		t.Fatalf("pods after suspend = %d", got)
	}

	// A proxy lookup resumes the tenant and pulls a warm pod (§4.2.3).
	backends, err := o.Lookup(ctx, "acme")
	if err != nil || len(backends) != 1 {
		t.Fatalf("lookup = %v, %v", backends, err)
	}
	if got, _ := e.reg.GetByName("acme"); got.State != core.StateActive {
		t.Fatalf("state after lookup = %s", got.State)
	}
	// The new backend serves.
	c, err := wire.Connect(backends[0].Addr, map[string]string{"tenant": "acme"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Query("SHOW TABLES"); err != nil {
		t.Fatal(err)
	}
}

func TestLookupUnknownAndDropped(t *testing.T) {
	e := newEnv(t)
	o := e.newOrch(t, 1, true)
	ctx := context.Background()
	if _, err := o.Lookup(ctx, "ghost"); err == nil {
		t.Fatal("unknown tenant lookup succeeded")
	}
	e.reg.CreateTenant(ctx, "gone", core.TenantOptions{})
	e.reg.Drop(ctx, "gone")
	if _, err := o.Lookup(ctx, "gone"); err == nil {
		t.Fatal("dropped tenant lookup succeeded")
	}
}

func TestDrainTimeoutForcesStop(t *testing.T) {
	e := newEnv(t)
	o, err := New(Config{
		Cluster:         e.cluster,
		Registry:        e.reg,
		Region:          "us-central1",
		WarmPoolSize:    1,
		PreStartProcess: true,
		DrainTimeout:    10 * time.Minute,
		Clock:           e.clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(o.Close)
	ctx := context.Background()
	tn, _ := e.reg.CreateTenant(ctx, "acme", core.TenantOptions{})
	o.ScaleTenant(ctx, tn, 2)
	pods := o.PodsForTenant("acme")
	// Hold a connection open on both pods so draining cannot complete.
	for _, p := range pods {
		c, err := wire.Connect(p.Node.Addr(), map[string]string{"tenant": "acme"})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if _, err := c.Query("SHOW TABLES"); err != nil {
			t.Fatal(err)
		}
	}
	o.ScaleTenant(ctx, tn, 1)
	o.Tick()
	if got := len(o.PodsForTenant("acme")); got != 2 {
		t.Fatalf("draining pod with conns reaped early: %d", got)
	}
	e.clock.Advance(11 * time.Minute)
	o.Tick()
	if got := len(o.PodsForTenant("acme")); got != 1 {
		t.Fatalf("drain timeout did not stop pod: %d", got)
	}
}
