// Package orchestrator plays the role of the Kubernetes-based control plane
// of §4.2.1: it manages pods hosting SQL node processes, maintains the
// pre-warmed pool that makes sub-second cold starts possible (§4.3.1),
// assigns pods to tenants (stamping them with tenant identity, the analogue
// of delivering mTLS certificates to the pod file system), drains and reaps
// pods on scale-down, and suspends idle tenants to zero compute.
package orchestrator

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"crdbserverless/internal/core"
	"crdbserverless/internal/faultinject"
	"crdbserverless/internal/kvserver"
	"crdbserverless/internal/metric"
	"crdbserverless/internal/proxy"
	"crdbserverless/internal/region"
	"crdbserverless/internal/server"
	"crdbserverless/internal/tenantcost"
	"crdbserverless/internal/tenantobs"
	"crdbserverless/internal/timeutil"
	"crdbserverless/internal/trace"
)

// PodState tracks a pod through its lifecycle.
type PodState int

// Pod lifecycle states.
const (
	// PodWarm: process pre-started, TCP listener open, no tenant assigned.
	PodWarm PodState = iota
	// PodAssigned: stamped with a tenant and serving.
	PodAssigned
	// PodDraining: excluded from routing; connections migrate away.
	PodDraining
	// PodStopped: terminated.
	PodStopped
)

// String implements fmt.Stringer.
func (s PodState) String() string {
	switch s {
	case PodWarm:
		return "warm"
	case PodAssigned:
		return "assigned"
	case PodDraining:
		return "draining"
	case PodStopped:
		return "stopped"
	default:
		return fmt.Sprintf("PodState(%d)", int(s))
	}
}

// Pod is one SQL-node container.
type Pod struct {
	Node *server.SQLNode

	mu         sync.Mutex
	state      PodState
	tenant     string
	drainSince time.Time
}

// State returns the pod's lifecycle state.
func (p *Pod) State() PodState {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.state
}

// TenantName returns the assigned tenant name ("" while warm).
func (p *Pod) TenantName() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.tenant
}

// Config configures an Orchestrator.
type Config struct {
	Cluster  *kvserver.Cluster
	Registry *core.Registry
	Buckets  *tenantcost.BucketServer
	Clock    timeutil.Clock
	Region   region.Region
	// WarmPoolSize is the number of pre-warmed pods to maintain.
	WarmPoolSize int
	// PreStartProcess enables the §4.3.1 optimization: the SQL process (and
	// its TCP listener) starts when the pod is created, before any tenant
	// is known. Disabled, the process starts only at assignment — the
	// unoptimized baseline of Fig 10a.
	PreStartProcess bool
	// DrainTimeout force-stops a draining pod that still has connections.
	// Defaults to 10 minutes (§4.2.3).
	DrainTimeout time.Duration
	// NodeVCPUs is each SQL node's allocation (the paper uses 4).
	NodeVCPUs int
	// Metrics receives the orchestrator's counters (orchestrator.*). A
	// fresh registry is created when nil.
	Metrics *metric.Registry
	// RevivalSecret for session migration.
	RevivalSecret []byte
	Colocated     bool
	// Tracer is handed to each SQL node so request traces propagated by
	// the proxy continue through statement execution.
	Tracer *trace.Tracer
	// Obs is handed to each SQL node so its executor, coordinator, and
	// DistSender report per-tenant signals to the observability plane.
	Obs *tenantobs.Plane
	// Faults, when non-nil, arms the orchestrator's fault-injection sites:
	// orchestrator.start.crash kills a pod's VM during cold start (creation
	// retries with a fresh pod), and orchestrator.pod.evict reclaims an
	// assigned pod's VM at the next Tick (the following directory lookup
	// re-assigns from the warm pool).
	Faults *faultinject.Registry
}

// Orchestrator manages the pod fleet for one region.
type Orchestrator struct {
	cfg Config

	podsCreated   *metric.Counter
	podsAssigned  *metric.Counter
	podsReaped    *metric.Counter
	coldResumes   *metric.Counter
	suspendedPods *metric.Counter
	podsEvicted   *metric.Counter

	mu struct {
		sync.Mutex
		warm     []*Pod
		byTenant map[string][]*Pod
		all      []*Pod
		closed   bool
	}
	instanceIDs atomic.Int64
}

// New returns an Orchestrator and fills its warm pool.
func New(cfg Config) (*Orchestrator, error) {
	if cfg.Clock == nil {
		cfg.Clock = timeutil.NewRealClock()
	}
	if cfg.DrainTimeout == 0 {
		cfg.DrainTimeout = 10 * time.Minute
	}
	if cfg.NodeVCPUs == 0 {
		cfg.NodeVCPUs = 4
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metric.NewRegistry()
	}
	o := &Orchestrator{cfg: cfg}
	o.podsCreated = cfg.Metrics.NewCounter("orchestrator.pods_created")
	o.podsAssigned = cfg.Metrics.NewCounter("orchestrator.pods_assigned")
	o.podsReaped = cfg.Metrics.NewCounter("orchestrator.pods_reaped")
	o.coldResumes = cfg.Metrics.NewCounter("orchestrator.cold_resumes")
	o.suspendedPods = cfg.Metrics.NewCounter("orchestrator.pods_suspended")
	o.podsEvicted = cfg.Metrics.NewCounter("orchestrator.pods_evicted")
	o.mu.byTenant = make(map[string][]*Pod)
	if err := o.EnsureWarm(cfg.WarmPoolSize); err != nil {
		return nil, err
	}
	return o, nil
}

// NodeVCPUs returns the per-SQL-node vCPU allocation.
func (o *Orchestrator) NodeVCPUs() int { return o.cfg.NodeVCPUs }

// EnsureWarm tops the warm pool up to n pods.
func (o *Orchestrator) EnsureWarm(n int) error {
	for {
		o.mu.Lock()
		if o.mu.closed || len(o.mu.warm) >= n {
			o.mu.Unlock()
			return nil
		}
		o.mu.Unlock()
		pod, err := o.createPod()
		if err != nil {
			return err
		}
		o.mu.Lock()
		o.mu.warm = append(o.mu.warm, pod)
		o.mu.all = append(o.mu.all, pod)
		o.mu.Unlock()
	}
}

// createPod provisions a pod. With PreStartProcess the SQL process starts
// (and opens its listener) immediately. An injected VM crash during startup
// (orchestrator.start.crash) discards the pod and retries with a fresh one,
// as the control plane would reschedule a crashed container.
func (o *Orchestrator) createPod() (*Pod, error) {
	const maxStartAttempts = 3
	var lastErr error
	for attempt := 0; attempt < maxStartAttempts; attempt++ {
		node := server.NewSQLNode(server.SQLNodeConfig{
			InstanceID:    o.instanceIDs.Add(1),
			Cluster:       o.cfg.Cluster,
			Registry:      o.cfg.Registry,
			Region:        o.cfg.Region,
			Buckets:       o.cfg.Buckets,
			Clock:         o.cfg.Clock,
			RevivalSecret: o.cfg.RevivalSecret,
			Colocated:     o.cfg.Colocated,
			Tracer:        o.cfg.Tracer,
			Obs:           o.cfg.Obs,
		})
		pod := &Pod{Node: node, state: PodWarm}
		o.podsCreated.Inc(1)
		if err := o.cfg.Faults.MaybeErr("orchestrator.start.crash"); err != nil {
			node.Close()
			lastErr = err
			continue
		}
		if o.cfg.PreStartProcess {
			if err := node.Start(); err != nil {
				node.Close()
				lastErr = err
				continue
			}
		}
		return pod, nil
	}
	return nil, fmt.Errorf("orchestrator: pod failed to start after %d attempts: %w", maxStartAttempts, lastErr)
}

// WarmCount returns the warm pool size.
func (o *Orchestrator) WarmCount() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.mu.warm)
}

// PodsForTenant returns the tenant's non-stopped pods.
func (o *Orchestrator) PodsForTenant(name string) []*Pod {
	o.mu.Lock()
	defer o.mu.Unlock()
	return append([]*Pod(nil), o.mu.byTenant[name]...)
}

// AssignPod pulls a pod for the tenant: draining pods of the same tenant are
// reused first (§4.2.3: "draining nodes are reused before pre-warmed ones"),
// then warm pods, then a cold-created pod.
func (o *Orchestrator) AssignPod(ctx context.Context, t *core.Tenant) (*Pod, error) {
	ctx, sp := trace.StartSpan(ctx, "orchestrator.assign_pod")
	defer sp.Finish()
	sp.SetAttr("orchestrator.tenant", t.Name)
	o.mu.Lock()
	if o.mu.closed {
		o.mu.Unlock()
		return nil, errors.New("orchestrator: closed")
	}
	// Reuse a draining pod of this tenant.
	for _, p := range o.mu.byTenant[t.Name] {
		p.mu.Lock()
		if p.state == PodDraining {
			p.state = PodAssigned
			p.Node.Undrain()
			p.mu.Unlock()
			o.mu.Unlock()
			sp.Eventf("reused draining pod %d", p.Node.InstanceID())
			return p, nil
		}
		p.mu.Unlock()
	}
	// Pull from the warm pool.
	var pod *Pod
	if len(o.mu.warm) > 0 {
		pod = o.mu.warm[0]
		o.mu.warm = o.mu.warm[1:]
	}
	o.mu.Unlock()

	if pod == nil {
		sp.Eventf("warm pool empty: creating pod cold")
		var err error
		pod, err = o.createPod()
		if err != nil {
			return nil, err
		}
		o.mu.Lock()
		o.mu.all = append(o.mu.all, pod)
		o.mu.Unlock()
	} else {
		sp.Eventf("pulled warm pod %d", pod.Node.InstanceID())
	}
	// Unoptimized flow: the process starts only now.
	if !o.cfg.PreStartProcess {
		if err := pod.Node.Start(); err != nil {
			return nil, err
		}
	}
	// Stamp with the tenant (the "certificates arrive" moment).
	certCtx, certSp := trace.StartSpan(ctx, "orchestrator.cert_issue")
	if err := pod.Node.AssignTenant(certCtx, t); err != nil {
		certSp.Finish()
		return nil, err
	}
	certSp.Finish()
	pod.mu.Lock()
	pod.state = PodAssigned
	pod.tenant = t.Name
	pod.mu.Unlock()
	o.podsAssigned.Inc(1)
	o.mu.Lock()
	o.mu.byTenant[t.Name] = append(o.mu.byTenant[t.Name], pod)
	o.mu.Unlock()
	// Backfill the warm pool.
	//lint:allow faulterr warm-pool backfill is asynchronous best-effort; a failure surfaces as a slower next cold start, not a lost request
	go o.EnsureWarm(o.cfg.WarmPoolSize)
	return pod, nil
}

// ScaleTenant reconciles the tenant's assigned pod count to want. Scale-down
// drains the pods with the fewest connections. It returns the pods now
// serving.
func (o *Orchestrator) ScaleTenant(ctx context.Context, t *core.Tenant, want int) ([]*Pod, error) {
	if want < 0 {
		want = 0
	}
	for {
		serving := o.servingPods(t.Name)
		if len(serving) == want {
			return serving, nil
		}
		if len(serving) < want {
			if _, err := o.AssignPod(ctx, t); err != nil {
				return nil, err
			}
			continue
		}
		// Scale down: drain the pod with the fewest connections.
		victim := serving[0]
		for _, p := range serving[1:] {
			if p.Node.ConnCount() < victim.Node.ConnCount() {
				victim = p
			}
		}
		victim.mu.Lock()
		victim.state = PodDraining
		victim.drainSince = o.cfg.Clock.Now()
		victim.mu.Unlock()
		victim.Node.Drain()
	}
}

func (o *Orchestrator) servingPods(name string) []*Pod {
	o.mu.Lock()
	defer o.mu.Unlock()
	var out []*Pod
	for _, p := range o.mu.byTenant[name] {
		if p.State() == PodAssigned {
			out = append(out, p)
		}
	}
	return out
}

// Tick reaps draining pods whose connections have closed (or whose drain
// timeout expired): "a node shuts down once all connections close or after
// 10 minutes" (§4.2.3).
func (o *Orchestrator) Tick() {
	o.mu.Lock()
	pods := append([]*Pod(nil), o.mu.all...)
	o.mu.Unlock()
	now := o.cfg.Clock.Now()
	for _, p := range pods {
		p.mu.Lock()
		if p.state == PodAssigned && o.cfg.Faults.Should("orchestrator.pod.evict") {
			// Injected eviction: the infrastructure reclaims the VM out from
			// under an assigned pod. The pod stops without draining; the next
			// directory lookup re-assigns the tenant from the warm pool.
			p.state = PodStopped
			p.mu.Unlock()
			o.stopPod(p)
			o.podsEvicted.Inc(1)
			continue
		}
		if p.state == PodDraining &&
			(p.Node.ConnCount() == 0 || now.Sub(p.drainSince) >= o.cfg.DrainTimeout) {
			p.state = PodStopped
			p.mu.Unlock()
			o.stopPod(p)
			continue
		}
		p.mu.Unlock()
	}
}

func (o *Orchestrator) stopPod(p *Pod) {
	o.podsReaped.Inc(1)
	p.Node.Close()
	o.mu.Lock()
	defer o.mu.Unlock()
	name := p.TenantName()
	list := o.mu.byTenant[name]
	for i, q := range list {
		if q == p {
			o.mu.byTenant[name] = append(list[:i], list[i+1:]...)
			break
		}
	}
}

// SuspendTenant scales the tenant to zero and marks it suspended: the
// scale-to-zero transition of §4.2.3. All pods stop immediately.
func (o *Orchestrator) SuspendTenant(ctx context.Context, name string) error {
	o.mu.Lock()
	pods := append([]*Pod(nil), o.mu.byTenant[name]...)
	delete(o.mu.byTenant, name)
	o.mu.Unlock()
	for _, p := range pods {
		p.mu.Lock()
		p.state = PodStopped
		p.mu.Unlock()
		p.Node.Close()
		o.suspendedPods.Inc(1)
	}
	return o.cfg.Registry.Suspend(ctx, name)
}

// Lookup implements proxy.Directory: it returns the tenant's SQL nodes,
// resuming a suspended tenant by pulling a warm pod first — the cold-start
// flow a connection to a scaled-to-zero tenant triggers (§4.2.3).
func (o *Orchestrator) Lookup(ctx context.Context, tenantName string) ([]proxy.Backend, error) {
	t, err := o.cfg.Registry.GetByName(tenantName)
	if err != nil {
		return nil, err
	}
	if t.State == core.StateDropped {
		return nil, core.ErrTenantDropped
	}
	if t.State == core.StateSuspended {
		trace.SpanFromContext(ctx).Eventf("cold resume: tenant %s was scaled to zero", tenantName)
		if err := o.cfg.Registry.Resume(ctx, tenantName); err != nil {
			return nil, err
		}
		t.State = core.StateActive
		o.coldResumes.Inc(1)
	}
	if len(o.servingPods(tenantName)) == 0 {
		if _, err := o.AssignPod(ctx, t); err != nil {
			return nil, err
		}
	}
	var out []proxy.Backend
	for _, p := range o.servingPods(tenantName) {
		out = append(out, proxy.Backend{
			ID:       p.Node.InstanceID(),
			Addr:     p.Node.Addr(),
			Draining: p.Node.Draining(),
		})
	}
	return out, nil
}

// Close stops every pod.
func (o *Orchestrator) Close() {
	o.mu.Lock()
	o.mu.closed = true
	pods := append([]*Pod(nil), o.mu.all...)
	o.mu.Unlock()
	for _, p := range pods {
		p.Node.Close()
	}
}
