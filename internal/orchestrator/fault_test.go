package orchestrator

import (
	"context"
	"testing"

	"crdbserverless/internal/core"
	"crdbserverless/internal/faultinject"
	"crdbserverless/internal/wire"
)

func (e *env) newFaultOrch(t *testing.T, warm int, reg *faultinject.Registry) *Orchestrator {
	t.Helper()
	o, err := New(Config{
		Cluster:         e.cluster,
		Registry:        e.reg,
		Region:          "us-central1",
		WarmPoolSize:    warm,
		PreStartProcess: true,
		NodeVCPUs:       4,
		Faults:          reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(o.Close)
	return o
}

// A VM crash during cold start (orchestrator.start.crash) is absorbed by
// provisioning: the crashed pod is discarded and a fresh one started.
func TestStartCrashRetriesWithFreshPod(t *testing.T) {
	e := newEnv(t)
	reg := faultinject.New(11, nil)
	reg.Enable("orchestrator.start.crash", faultinject.Site{Probability: 1, MaxFires: 2})
	o := e.newFaultOrch(t, 1, reg)
	if got := o.WarmCount(); got != 1 {
		t.Fatalf("warm = %d after crashes, want 1", got)
	}
	// Two crashed attempts plus the survivor.
	if got := o.podsCreated.Value(); got != 3 {
		t.Fatalf("pods created = %d, want 3", got)
	}
	// Exhausting the retry budget surfaces the failure.
	reg.Enable("orchestrator.start.crash", faultinject.Site{Probability: 1})
	if err := o.EnsureWarm(2); !faultinject.IsInjected(err) {
		t.Fatalf("EnsureWarm under persistent crashes = %v, want injected fault", err)
	}
}

// An evicted pod (orchestrator.pod.evict) stops without draining; the next
// directory lookup re-assigns the tenant from the warm pool and the tenant's
// data — in the shared KV cluster — is still there.
func TestPodEvictionRecoversViaLookup(t *testing.T) {
	e := newEnv(t)
	ctx := context.Background()
	reg := faultinject.New(12, nil)
	o := e.newFaultOrch(t, 2, reg)
	if _, err := e.reg.CreateTenant(ctx, "acme", core.TenantOptions{}); err != nil {
		t.Fatal(err)
	}
	backends, err := o.Lookup(ctx, "acme")
	if err != nil || len(backends) != 1 {
		t.Fatalf("lookup = %v, %v", backends, err)
	}
	// Write through the first pod so recovery can be checked end to end.
	conn, err := wire.Connect(backends[0].Addr, map[string]string{"tenant": "acme"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Query("CREATE TABLE t (a INT PRIMARY KEY)"); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Query("INSERT INTO t VALUES (7)"); err != nil {
		t.Fatal(err)
	}
	conn.Close()

	reg.Enable("orchestrator.pod.evict", faultinject.Site{Probability: 1, MaxFires: 1})
	o.Tick()
	if got := o.podsEvicted.Value(); got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
	if pods := o.PodsForTenant("acme"); len(pods) != 0 {
		t.Fatalf("evicted tenant still has %d pods", len(pods))
	}
	// Recovery: the next lookup assigns a fresh pod and the data survives.
	backends, err = o.Lookup(ctx, "acme")
	if err != nil || len(backends) != 1 {
		t.Fatalf("post-eviction lookup = %v, %v", backends, err)
	}
	conn, err = wire.Connect(backends[0].Addr, map[string]string{"tenant": "acme"})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	res, err := conn.Query("SELECT a FROM t")
	if err != nil || len(res.Rows) != 1 || res.Rows[0][0].I != 7 {
		t.Fatalf("post-eviction read = %+v, %v", res, err)
	}
}
