// Package faultinject is a deterministic, seed-driven fault injector. Code
// under test declares named sites ("raftlite.propose.err", "lsm.flush.error",
// ...) and consults them on the hot path; a Registry decides — from a seeded
// per-site schedule — whether each consultation fires. Because every site
// draws from its own RNG stream (forked from the master seed and the site
// name), the nth consultation of a site fires identically across runs
// regardless of how consultations of *different* sites interleave, so a
// single seed is a complete, byte-identical repro of a fault schedule (the
// FoundationDB-style simulation discipline).
//
// A nil *Registry is valid and inert: every consultation on it returns "no
// fault" without locking, so production wiring passes nil and pays only a
// pointer test per site.
package faultinject

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"strings"
	"sync"
	"time"

	"crdbserverless/internal/randutil"
	"crdbserverless/internal/timeutil"
)

// Error is the failure injected at a site. It unwraps to nothing: an injected
// fault models an opaque infrastructure failure (dropped RPC, crashed disk),
// not any particular structured KV error.
type Error struct {
	// Site is the name of the site that fired.
	Site string
	// Fire is the 1-based count of fires at the site, so the message alone
	// pins a position in the schedule.
	Fire int
	// Retriable mirrors the site's Site.Retriable configuration.
	Retriable bool
}

// Error implements error.
func (e *Error) Error() string {
	return fmt.Sprintf("faultinject: injected fault at %s (fire %d)", e.Site, e.Fire)
}

// RetriableFault reports whether retry loops should treat the fault as
// transient. kvpb.IsRetriable recognizes this method.
func (e *Error) RetriableFault() bool { return e.Retriable }

// IsInjected reports whether err is (or wraps) an injected fault.
func IsInjected(err error) bool {
	var fe *Error
	return errors.As(err, &fe)
}

// Site configures one named fault site.
type Site struct {
	// Probability is the chance each eligible consultation fires, in [0, 1].
	Probability float64
	// After skips the first After consultations unconditionally (arming the
	// site partway into a run, or pinning "fail exactly the nth call" shapes
	// together with MaxFires).
	After int
	// MaxFires caps the total number of fires; 0 means unlimited.
	MaxFires int
	// Delay, when nonzero, is slept on the registry's clock at each fire —
	// write stalls and scheduling delays rather than hard failures.
	Delay time.Duration
	// Retriable marks injected errors as transient to kvpb.IsRetriable.
	Retriable bool
}

// siteState is the runtime state of an enabled site.
type siteState struct {
	cfg   Site
	rng   *rand.Rand
	hits  int
	fires int
}

// Registry owns the fault schedule for one deployment. All methods are safe
// for concurrent use and are no-ops on a nil receiver.
type Registry struct {
	seed  int64
	clock timeutil.Clock

	mu struct {
		sync.Mutex
		sites map[string]*siteState
		log   strings.Builder
	}
}

// New returns a Registry whose schedules derive from seed. Delays sleep on
// clock (nil means real time).
func New(seed int64, clock timeutil.Clock) *Registry {
	if clock == nil {
		clock = timeutil.NewRealClock()
	}
	r := &Registry{seed: seed, clock: clock}
	r.mu.sites = make(map[string]*siteState)
	return r
}

// siteSeed derives a site's RNG seed from the master seed and the site name,
// so per-site streams are independent of both each other and of the order
// sites are enabled in.
func (r *Registry) siteSeed(name string) int64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	return r.seed ^ int64(h.Sum64())
}

// Enable arms a site. Re-enabling a site resets its counters and restarts its
// RNG stream.
func (r *Registry) Enable(name string, cfg Site) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.mu.sites[name] = &siteState{cfg: cfg, rng: randutil.NewRand(r.siteSeed(name))}
}

// Disable disarms a site; subsequent consultations never fire.
func (r *Registry) Disable(name string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.mu.sites, name)
}

// DisableAll disarms every site (the chaos harness's quiescence step). The
// schedule log is retained.
func (r *Registry) DisableAll() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.mu.sites = make(map[string]*siteState)
}

// consult advances name's schedule by one consultation and reports whether it
// fired, along with the fire ordinal, configured delay, and retriability.
func (r *Registry) consult(name string) (fired bool, fire int, delay time.Duration, retriable bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	st, ok := r.mu.sites[name]
	if !ok {
		return false, 0, 0, false
	}
	st.hits++
	if st.hits <= st.cfg.After {
		return false, 0, 0, false
	}
	if st.cfg.MaxFires > 0 && st.fires >= st.cfg.MaxFires {
		return false, 0, 0, false
	}
	if st.rng.Float64() >= st.cfg.Probability {
		return false, 0, 0, false
	}
	st.fires++
	fmt.Fprintf(&r.mu.log, "%s hit=%d fire=%d\n", name, st.hits, st.fires)
	return true, st.fires, st.cfg.Delay, st.cfg.Retriable
}

// Should consults the site and reports whether it fired, sleeping the site's
// configured delay first. Use it for faults that are conditions rather than
// errors (stalls, forced expirations, kills).
func (r *Registry) Should(name string) bool {
	if r == nil {
		return false
	}
	fired, _, delay, _ := r.consult(name)
	if fired && delay > 0 {
		r.clock.Sleep(delay)
	}
	return fired
}

// MaybeErr consults the site and returns an injected *Error when it fires
// (sleeping any configured delay first), or nil.
func (r *Registry) MaybeErr(name string) error {
	if r == nil {
		return nil
	}
	fired, fire, delay, retriable := r.consult(name)
	if !fired {
		return nil
	}
	if delay > 0 {
		r.clock.Sleep(delay)
	}
	return &Error{Site: name, Fire: fire, Retriable: retriable}
}

// Fires returns how many times the site has fired.
func (r *Registry) Fires(name string) int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if st, ok := r.mu.sites[name]; ok {
		return st.fires
	}
	return 0
}

// TotalFires returns the total number of fires across all sites, including
// sites since disabled (it is derived from the schedule log).
func (r *Registry) TotalFires() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.mu.log.Len() == 0 {
		return 0
	}
	return strings.Count(r.mu.log.String(), "\n")
}

// Schedule returns the fault schedule so far, one line per fire in the order
// fires happened. Same seed + same workload ⇒ byte-identical schedules; the
// chaos harness's determinism test compares these directly.
func (r *Registry) Schedule() string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.mu.log.String()
}
