package faultinject

import (
	"errors"
	"testing"
	"time"

	"crdbserverless/internal/kvpb"
	"crdbserverless/internal/timeutil"
)

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	r.Enable("x", Site{Probability: 1})
	if r.Should("x") {
		t.Fatal("nil registry fired")
	}
	if err := r.MaybeErr("x"); err != nil {
		t.Fatalf("nil registry returned %v", err)
	}
	if r.Fires("x") != 0 || r.TotalFires() != 0 || r.Schedule() != "" {
		t.Fatal("nil registry reported state")
	}
	r.Disable("x")
	r.DisableAll()
}

func TestUnknownSiteNeverFires(t *testing.T) {
	r := New(1, nil)
	for i := 0; i < 100; i++ {
		if r.Should("never.enabled") {
			t.Fatal("unknown site fired")
		}
	}
}

func TestAfterAndMaxFires(t *testing.T) {
	r := New(42, nil)
	r.Enable("s", Site{Probability: 1, After: 3, MaxFires: 2})
	var fired []int
	for i := 0; i < 10; i++ {
		if r.Should("s") {
			fired = append(fired, i)
		}
	}
	if len(fired) != 2 || fired[0] != 3 || fired[1] != 4 {
		t.Fatalf("fired at %v, want [3 4]", fired)
	}
	if got := r.Fires("s"); got != 2 {
		t.Fatalf("Fires = %d, want 2", got)
	}
}

func TestSameSeedSameSchedule(t *testing.T) {
	run := func(seed int64) string {
		r := New(seed, nil)
		r.Enable("a", Site{Probability: 0.3})
		r.Enable("b", Site{Probability: 0.7, MaxFires: 5})
		for i := 0; i < 200; i++ {
			r.Should("a")
			_ = r.MaybeErr("b")
		}
		return r.Schedule()
	}
	if run(7) != run(7) {
		t.Fatal("same seed produced different schedules")
	}
	if run(7) == run(8) {
		t.Fatal("different seeds produced identical schedules (suspicious)")
	}
}

// TestSiteStreamsIndependent pins the core determinism property: a site's
// schedule depends only on its own consultation count, not on how other
// sites' consultations interleave with it.
func TestSiteStreamsIndependent(t *testing.T) {
	fires := func(interleave bool) []int {
		r := New(99, nil)
		r.Enable("a", Site{Probability: 0.4})
		r.Enable("noise", Site{Probability: 0.5})
		var out []int
		for i := 0; i < 100; i++ {
			if interleave {
				r.Should("noise")
			}
			if r.Should("a") {
				out = append(out, i)
			}
		}
		return out
	}
	a, b := fires(false), fires(true)
	if len(a) != len(b) {
		t.Fatalf("interleaving changed site a's schedule: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("interleaving changed site a's schedule: %v vs %v", a, b)
		}
	}
}

func TestErrorRetriability(t *testing.T) {
	r := New(3, nil)
	r.Enable("transient", Site{Probability: 1, Retriable: true})
	r.Enable("hard", Site{Probability: 1})
	terr := r.MaybeErr("transient")
	herr := r.MaybeErr("hard")
	if terr == nil || herr == nil {
		t.Fatal("probability-1 sites did not fire")
	}
	if !IsInjected(terr) || !IsInjected(herr) {
		t.Fatal("IsInjected missed an injected error")
	}
	if !kvpb.IsRetriable(terr) {
		t.Fatalf("retriable injected fault not retriable: %v", terr)
	}
	if kvpb.IsRetriable(herr) {
		t.Fatalf("non-retriable injected fault reported retriable: %v", herr)
	}
	if IsInjected(errors.New("other")) {
		t.Fatal("IsInjected matched a foreign error")
	}
}

func TestDelaySleepsOnClock(t *testing.T) {
	clock := timeutil.NewManualClock(time.Unix(0, 0))
	r := New(5, clock)
	r.Enable("stall", Site{Probability: 1, Delay: time.Second})
	done := make(chan bool)
	go func() { done <- r.Should("stall") }()
	for clock.NumWaiters() == 0 {
		time.Sleep(time.Millisecond)
	}
	clock.Advance(time.Second)
	if !<-done {
		t.Fatal("stall site did not fire")
	}
}

func TestDisableStopsFiring(t *testing.T) {
	r := New(11, nil)
	r.Enable("s", Site{Probability: 1})
	if !r.Should("s") {
		t.Fatal("armed site did not fire")
	}
	r.Disable("s")
	if r.Should("s") {
		t.Fatal("disabled site fired")
	}
	if r.TotalFires() != 1 {
		t.Fatalf("TotalFires = %d, want 1 (log survives disable)", r.TotalFires())
	}
}
