// Package core implements cluster virtualization, the paper's primary
// contribution (§3.2): each tenant ("virtual cluster") is a segment of the
// shared KV keyspace plus its own SQL layer instances, with a security
// boundary at the SQL/KV interface that confines every authenticated
// identity to its own segment.
//
// The package provides:
//   - Authorizer: the KV-side check that a request's identity matches the
//     keyspace it addresses (§3.2.3).
//   - Registry: tenant lifecycle — create, suspend, resume, drop (§3.2.4,
//     managed through the system tenant) — including carving each tenant's
//     keyspace onto dedicated range boundaries so no two tenants ever share
//     a range (§3.2.1).
package core

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"sort"
	"sync"

	"crdbserverless/internal/keys"
	"crdbserverless/internal/kvpb"
	"crdbserverless/internal/kvserver"
	"crdbserverless/internal/region"
	"crdbserverless/internal/tenantcost"
	"crdbserverless/internal/txn"
)

// Authorizer enforces the SQL/KV security boundary: a request authenticated
// as tenant T may only address keys inside T's segment. The system tenant is
// exempt (it is the low-level control interface of §3.2.4 and is reachable
// only through operator credentials).
type Authorizer struct{}

// Authorize implements kvserver.Authorizer.
func (Authorizer) Authorize(id kvserver.Identity, ba *kvpb.BatchRequest) error {
	if id.Tenant.IsSystem() {
		return nil
	}
	if !id.Tenant.IsValid() {
		return &kvpb.TenantAuthError{Authenticated: id.Tenant, Requested: ba.Tenant}
	}
	if ba.Tenant != id.Tenant {
		return &kvpb.TenantAuthError{Authenticated: id.Tenant, Requested: ba.Tenant}
	}
	span := keys.MakeTenantSpan(id.Tenant)
	for _, r := range ba.Requests {
		rs := r.Span()
		if !span.ContainsKey(rs.Key) {
			return &kvpb.TenantAuthError{Authenticated: id.Tenant, Requested: ba.Tenant, Key: rs.Key}
		}
		if !rs.IsPoint() && span.EndKey.Less(rs.EndKey) {
			return &kvpb.TenantAuthError{Authenticated: id.Tenant, Requested: ba.Tenant, Key: rs.EndKey}
		}
	}
	return nil
}

// State is a tenant's lifecycle state.
type State int

// Tenant lifecycle states.
const (
	// StateActive: the tenant may have SQL nodes and serve queries.
	StateActive State = iota
	// StateSuspended: no SQL nodes are allocated; the tenant consumes only
	// storage (§6.2). A connection attempt resumes it.
	StateSuspended
	// StateDropped: the tenant is deleted; its keyspace is reclaimable.
	StateDropped
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateActive:
		return "active"
	case StateSuspended:
		return "suspended"
	case StateDropped:
		return "dropped"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Tenant is one virtual cluster's control-plane record.
type Tenant struct {
	ID    keys.TenantID
	Name  string
	State State
	// Regions the tenant selected (§4.2.5). The system database presents
	// these as the only regions in the cluster.
	Regions []region.Region
	// Password authenticates SQL connections for this tenant.
	Password string
	// QuotaVCPUs is the CPU quota enforced by the distributed token bucket
	// (0 = unlimited).
	QuotaVCPUs float64
	// RegionAware selects the optimized multi-region system database
	// localities (§3.2.5).
	RegionAware bool
}

// TenantOptions configure CreateTenant.
type TenantOptions struct {
	Regions     []region.Region
	Password    string
	QuotaVCPUs  float64
	RegionAware bool
}

// Registry manages tenants. Tenant records persist in the system tenant's
// keyspace; mutations run through the system tenant, mirroring §3.2.4.
type Registry struct {
	cluster *kvserver.Cluster
	buckets *tenantcost.BucketServer
	sysTxn  *txn.Coordinator

	mu struct {
		sync.Mutex
		byID   map[keys.TenantID]*Tenant
		byName map[string]*Tenant
		nextID keys.TenantID
	}
}

// tenantRecordTableID is the system-tenant table holding tenant records.
const tenantRecordTableID keys.TableID = 50

func tenantRecordKey(name string) keys.Key {
	k := keys.MakeTableIndexPrefix(keys.SystemTenantID, tenantRecordTableID, keys.PrimaryIndexID)
	return keys.EncodeString(k, name)
}

// NewRegistry returns a Registry over the cluster. It installs the
// authorization boundary on the cluster and loads any persisted tenants.
func NewRegistry(cluster *kvserver.Cluster, buckets *tenantcost.BucketServer) (*Registry, error) {
	r := &Registry{cluster: cluster, buckets: buckets}
	r.mu.byID = make(map[keys.TenantID]*Tenant)
	r.mu.byName = make(map[string]*Tenant)
	r.mu.nextID = keys.SystemTenantID + 1
	cluster.SetAuthorizer(Authorizer{})

	sysSender := kvserver.NewDistSender(cluster, kvserver.Identity{Tenant: keys.SystemTenantID})
	r.sysTxn = txn.NewCoordinator(sysSender, cluster.Clock(), keys.SystemTenantID)

	// Carve the system tenant's own boundary.
	if err := cluster.SplitAt(keys.MakeTenantPrefix(keys.SystemTenantID)); err != nil {
		return nil, err
	}
	if err := r.load(context.Background()); err != nil {
		return nil, err
	}
	return r, nil
}

// load restores persisted tenant records.
func (r *Registry) load(ctx context.Context) error {
	prefix := keys.MakeTableIndexPrefix(keys.SystemTenantID, tenantRecordTableID, keys.PrimaryIndexID)
	span := keys.Span{Key: prefix, EndKey: prefix.PrefixEnd()}
	return r.sysTxn.RunTxn(ctx, func(ctx context.Context, t *txn.Txn) error {
		rows, err := t.Scan(ctx, span, 0)
		if err != nil {
			return err
		}
		r.mu.Lock()
		defer r.mu.Unlock()
		for _, kv := range rows {
			var ten Tenant
			if err := gob.NewDecoder(bytes.NewReader(kv.Value)).Decode(&ten); err != nil {
				return err
			}
			t := ten
			r.mu.byID[t.ID] = &t
			r.mu.byName[t.Name] = &t
			if t.ID >= r.mu.nextID {
				r.mu.nextID = t.ID + 1
			}
		}
		return nil
	})
}

// Errors returned by Registry methods.
var (
	ErrTenantExists    = errors.New("core: tenant already exists")
	ErrTenantNotFound  = errors.New("core: tenant not found")
	ErrTenantDropped   = errors.New("core: tenant is dropped")
	ErrTenantSuspended = errors.New("core: tenant is suspended")
)

// CreateTenant provisions a new virtual cluster: allocates its ID, splits
// its keyspace onto dedicated ranges, persists the record, and configures
// its quota.
func (r *Registry) CreateTenant(ctx context.Context, name string, opts TenantOptions) (*Tenant, error) {
	if name == "" {
		return nil, errors.New("core: tenant name required")
	}
	r.mu.Lock()
	if _, dup := r.mu.byName[name]; dup {
		r.mu.Unlock()
		return nil, ErrTenantExists
	}
	id := r.mu.nextID
	r.mu.nextID++
	t := &Tenant{
		ID:          id,
		Name:        name,
		State:       StateActive,
		Regions:     append([]region.Region(nil), opts.Regions...),
		Password:    opts.Password,
		QuotaVCPUs:  opts.QuotaVCPUs,
		RegionAware: opts.RegionAware,
	}
	r.mu.byID[id] = t
	r.mu.byName[name] = t
	r.mu.Unlock()

	// Carve the tenant's keyspace onto its own ranges: no two tenants may
	// share a range (§3.2.1).
	span := keys.MakeTenantSpan(id)
	if err := r.cluster.SplitAt(span.Key); err != nil {
		return nil, err
	}
	if err := r.cluster.SplitAt(span.EndKey); err != nil {
		return nil, err
	}
	if err := r.persist(ctx, t); err != nil {
		return nil, err
	}
	if opts.QuotaVCPUs > 0 {
		r.buckets.SetQuota(id, opts.QuotaVCPUs)
	}
	return t.clone(), nil
}

func (r *Registry) persist(ctx context.Context, t *Tenant) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(t); err != nil {
		return err
	}
	return r.sysTxn.RunTxn(ctx, func(ctx context.Context, tx *txn.Txn) error {
		return tx.Put(ctx, tenantRecordKey(t.Name), buf.Bytes())
	})
}

// GetByName returns a tenant record.
func (r *Registry) GetByName(name string) (*Tenant, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.mu.byName[name]
	if !ok {
		return nil, ErrTenantNotFound
	}
	return t.clone(), nil
}

// GetByID returns a tenant record.
func (r *Registry) GetByID(id keys.TenantID) (*Tenant, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.mu.byID[id]
	if !ok {
		return nil, ErrTenantNotFound
	}
	return t.clone(), nil
}

// List returns all tenants sorted by name.
func (r *Registry) List() []*Tenant {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Tenant, 0, len(r.mu.byID))
	for _, t := range r.mu.byID {
		out = append(out, t.clone())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Suspend scales a tenant's compute to zero (§4.2.3): its record moves to
// StateSuspended; only storage remains.
func (r *Registry) Suspend(ctx context.Context, name string) error {
	return r.setState(ctx, name, StateSuspended, StateActive)
}

// Resume reactivates a suspended tenant (the control-plane half of a cold
// start).
func (r *Registry) Resume(ctx context.Context, name string) error {
	return r.setState(ctx, name, StateActive, StateSuspended)
}

func (r *Registry) setState(ctx context.Context, name string, to State, from State) error {
	r.mu.Lock()
	t, ok := r.mu.byName[name]
	if !ok {
		r.mu.Unlock()
		return ErrTenantNotFound
	}
	if t.State == StateDropped {
		r.mu.Unlock()
		return ErrTenantDropped
	}
	if t.State == to {
		r.mu.Unlock()
		return nil // idempotent
	}
	if t.State != from {
		r.mu.Unlock()
		return fmt.Errorf("core: tenant %s is %s, cannot move to %s", name, t.State, to)
	}
	t.State = to
	snapshot := t.clone()
	r.mu.Unlock()
	return r.persist(ctx, snapshot)
}

// Drop deletes a tenant: the record is tombstoned and the tenant's keyspace
// is deleted through the system tenant.
func (r *Registry) Drop(ctx context.Context, name string) error {
	r.mu.Lock()
	t, ok := r.mu.byName[name]
	if !ok {
		r.mu.Unlock()
		return ErrTenantNotFound
	}
	t.State = StateDropped
	id := t.ID
	snapshot := t.clone()
	r.mu.Unlock()
	if err := r.persist(ctx, snapshot); err != nil {
		return err
	}
	// Reclaim the keyspace.
	span := keys.MakeTenantSpan(id)
	return r.sysTxn.RunTxn(ctx, func(ctx context.Context, tx *txn.Txn) error {
		_, err := tx.Send(ctx, kvpb.Request{
			Method: kvpb.DeleteRange, Key: span.Key, EndKey: span.EndKey,
		})
		return err
	})
}

// Authenticate validates a connection attempt against the tenant record and
// returns the tenant. Suspended tenants authenticate successfully — the
// caller then triggers a resume (cold start).
func (r *Registry) Authenticate(name, password string) (*Tenant, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.mu.byName[name]
	if !ok {
		return nil, ErrTenantNotFound
	}
	if t.State == StateDropped {
		return nil, ErrTenantDropped
	}
	if t.Password != password {
		return nil, errors.New("core: invalid credentials")
	}
	return t.clone(), nil
}

// SystemCoordinator exposes the system tenant's transaction coordinator —
// the control interface of §3.2.4.
func (r *Registry) SystemCoordinator() *txn.Coordinator { return r.sysTxn }

// Cluster returns the underlying KV cluster.
func (r *Registry) Cluster() *kvserver.Cluster { return r.cluster }

// Buckets returns the tenant token-bucket server.
func (r *Registry) Buckets() *tenantcost.BucketServer { return r.buckets }

func (t *Tenant) clone() *Tenant {
	out := *t
	out.Regions = append([]region.Region(nil), t.Regions...)
	return &out
}
