package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"crdbserverless/internal/keys"
	"crdbserverless/internal/kvpb"
	"crdbserverless/internal/kvserver"
	"crdbserverless/internal/tenantcost"
	"crdbserverless/internal/timeutil"
	"crdbserverless/internal/txn"
)

func newTestRegistry(t *testing.T) *Registry {
	t.Helper()
	cheap := kvserver.CostConfig{ReadBatchOverhead: time.Nanosecond, WriteBatchOverhead: time.Nanosecond}
	var nodes []*kvserver.Node
	for i := 1; i <= 3; i++ {
		nodes = append(nodes, kvserver.NewNode(kvserver.NodeConfig{
			ID: kvserver.NodeID(i), VCPUs: 2, Cost: cheap,
		}))
	}
	c, err := kvserver.NewCluster(kvserver.ClusterConfig{}, nodes)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	reg, err := NewRegistry(c, tenantcost.NewBucketServer(timeutil.NewRealClock()))
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

func TestAuthorizerSystemTenantUnrestricted(t *testing.T) {
	a := Authorizer{}
	ba := &kvpb.BatchRequest{Tenant: 5, Requests: []kvpb.Request{
		{Method: kvpb.Get, Key: keys.MakeTenantPrefix(5)},
	}}
	if err := a.Authorize(kvserver.Identity{Tenant: keys.SystemTenantID}, ba); err != nil {
		t.Fatalf("system tenant blocked: %v", err)
	}
}

func TestAuthorizerConfinesTenant(t *testing.T) {
	a := Authorizer{}
	own := &kvpb.BatchRequest{Tenant: 5, Requests: []kvpb.Request{
		{Method: kvpb.Put, Key: append(keys.MakeTenantPrefix(5), 'x')},
	}}
	if err := a.Authorize(kvserver.Identity{Tenant: 5}, own); err != nil {
		t.Fatalf("own keyspace blocked: %v", err)
	}
	// Foreign key.
	foreign := &kvpb.BatchRequest{Tenant: 5, Requests: []kvpb.Request{
		{Method: kvpb.Get, Key: append(keys.MakeTenantPrefix(6), 'x')},
	}}
	var tae *kvpb.TenantAuthError
	if err := a.Authorize(kvserver.Identity{Tenant: 5}, foreign); !errors.As(err, &tae) {
		t.Fatalf("foreign key allowed: %v", err)
	}
	// Mismatched batch tenant header.
	mismatch := &kvpb.BatchRequest{Tenant: 6, Requests: []kvpb.Request{
		{Method: kvpb.Get, Key: append(keys.MakeTenantPrefix(5), 'x')},
	}}
	if err := a.Authorize(kvserver.Identity{Tenant: 5}, mismatch); !errors.As(err, &tae) {
		t.Fatalf("mismatched header allowed: %v", err)
	}
	// Span leaking past the tenant boundary.
	leak := &kvpb.BatchRequest{Tenant: 5, Requests: []kvpb.Request{
		{Method: kvpb.Scan, Key: keys.MakeTenantPrefix(5), EndKey: keys.MakeTenantPrefix(7)},
	}}
	if err := a.Authorize(kvserver.Identity{Tenant: 5}, leak); !errors.As(err, &tae) {
		t.Fatalf("leaking span allowed: %v", err)
	}
	// Invalid identity.
	if err := a.Authorize(kvserver.Identity{Tenant: 0}, own); !errors.As(err, &tae) {
		t.Fatalf("invalid identity allowed: %v", err)
	}
}

func TestCreateTenantCarvesRanges(t *testing.T) {
	reg := newTestRegistry(t)
	ctx := context.Background()
	tn, err := reg.CreateTenant(ctx, "acme", TenantOptions{Password: "pw"})
	if err != nil {
		t.Fatal(err)
	}
	if !tn.ID.IsValid() || tn.ID.IsSystem() {
		t.Fatalf("tenant id = %v", tn.ID)
	}
	// The tenant's span boundaries must be range boundaries.
	span := keys.MakeTenantSpan(tn.ID)
	descs := reg.Cluster().Descriptors()
	var startBoundary, endBoundary bool
	for _, d := range descs {
		if d.Span.Key.Equal(span.Key) {
			startBoundary = true
		}
		if d.Span.Key.Equal(span.EndKey) {
			endBoundary = true
		}
		// No range may straddle the tenant boundary.
		if d.Span.ContainsKey(span.Key) && !d.Span.Key.Equal(span.Key) {
			t.Fatalf("range %s straddles tenant start", d)
		}
	}
	if !startBoundary || !endBoundary {
		t.Fatalf("tenant boundaries not split: start=%v end=%v", startBoundary, endBoundary)
	}
}

func TestCreateTenantDuplicate(t *testing.T) {
	reg := newTestRegistry(t)
	ctx := context.Background()
	if _, err := reg.CreateTenant(ctx, "acme", TenantOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.CreateTenant(ctx, "acme", TenantOptions{}); err != ErrTenantExists {
		t.Fatalf("duplicate create = %v", err)
	}
	if _, err := reg.CreateTenant(ctx, "", TenantOptions{}); err == nil {
		t.Fatal("empty name accepted")
	}
}

func TestTenantLifecycle(t *testing.T) {
	reg := newTestRegistry(t)
	ctx := context.Background()
	reg.CreateTenant(ctx, "acme", TenantOptions{})

	if err := reg.Suspend(ctx, "acme"); err != nil {
		t.Fatal(err)
	}
	tn, _ := reg.GetByName("acme")
	if tn.State != StateSuspended {
		t.Fatalf("state = %s", tn.State)
	}
	// Suspend is idempotent.
	if err := reg.Suspend(ctx, "acme"); err != nil {
		t.Fatal(err)
	}
	if err := reg.Resume(ctx, "acme"); err != nil {
		t.Fatal(err)
	}
	tn, _ = reg.GetByName("acme")
	if tn.State != StateActive {
		t.Fatalf("state after resume = %s", tn.State)
	}
	if err := reg.Suspend(ctx, "missing"); err != ErrTenantNotFound {
		t.Fatalf("suspend missing = %v", err)
	}
}

func TestTenantDropReclaimsKeyspace(t *testing.T) {
	reg := newTestRegistry(t)
	ctx := context.Background()
	tn, _ := reg.CreateTenant(ctx, "acme", TenantOptions{})

	// Write tenant data through the tenant's own identity.
	ds := kvserver.NewDistSender(reg.Cluster(), kvserver.Identity{Tenant: tn.ID})
	coord := txn.NewCoordinator(ds, reg.Cluster().Clock(), tn.ID)
	k := append(keys.MakeTenantPrefix(tn.ID), []byte("data")...)
	if err := coord.RunTxn(ctx, func(ctx context.Context, tx *txn.Txn) error {
		return tx.Put(ctx, k, []byte("v"))
	}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Drop(ctx, "acme"); err != nil {
		t.Fatal(err)
	}
	// Data is gone (read through the system tenant, which sees everything).
	if err := reg.SystemCoordinator().RunTxn(ctx, func(ctx context.Context, tx *txn.Txn) error {
		rows, err := tx.Scan(ctx, keys.MakeTenantSpan(tn.ID), 0)
		if err != nil {
			return err
		}
		if len(rows) != 0 {
			t.Fatalf("dropped tenant still has %d rows", len(rows))
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Lifecycle transitions on a dropped tenant fail.
	if err := reg.Resume(ctx, "acme"); err != ErrTenantDropped {
		t.Fatalf("resume dropped = %v", err)
	}
	if _, err := reg.Authenticate("acme", ""); err != ErrTenantDropped {
		t.Fatalf("auth dropped = %v", err)
	}
}

func TestAuthenticate(t *testing.T) {
	reg := newTestRegistry(t)
	ctx := context.Background()
	reg.CreateTenant(ctx, "acme", TenantOptions{Password: "secret"})
	if _, err := reg.Authenticate("acme", "secret"); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Authenticate("acme", "wrong"); err == nil {
		t.Fatal("wrong password accepted")
	}
	if _, err := reg.Authenticate("nope", "x"); err != ErrTenantNotFound {
		t.Fatalf("unknown tenant auth = %v", err)
	}
	// Suspended tenants still authenticate (triggers cold start).
	reg.Suspend(ctx, "acme")
	if _, err := reg.Authenticate("acme", "secret"); err != nil {
		t.Fatalf("suspended auth = %v", err)
	}
}

func TestRegistryPersistenceReload(t *testing.T) {
	reg := newTestRegistry(t)
	ctx := context.Background()
	reg.CreateTenant(ctx, "acme", TenantOptions{Password: "pw", QuotaVCPUs: 4})
	reg.CreateTenant(ctx, "globex", TenantOptions{})
	reg.Suspend(ctx, "globex")

	// A second registry over the same cluster reloads the records.
	reg2, err := NewRegistry(reg.Cluster(), tenantcost.NewBucketServer(timeutil.NewRealClock()))
	if err != nil {
		t.Fatal(err)
	}
	tn, err := reg2.GetByName("acme")
	if err != nil || tn.Password != "pw" || tn.QuotaVCPUs != 4 {
		t.Fatalf("reloaded acme = %+v, %v", tn, err)
	}
	g, err := reg2.GetByName("globex")
	if err != nil || g.State != StateSuspended {
		t.Fatalf("reloaded globex = %+v, %v", g, err)
	}
	// ID allocation continues after the loaded tenants.
	n, err := reg2.CreateTenant(ctx, "initech", TenantOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if n.ID <= g.ID {
		t.Fatalf("id %d not beyond loaded ids", n.ID)
	}
	if got := len(reg2.List()); got != 3 {
		t.Fatalf("list = %d tenants", got)
	}
}

func TestTenantQuotaConfigured(t *testing.T) {
	reg := newTestRegistry(t)
	ctx := context.Background()
	tn, _ := reg.CreateTenant(ctx, "acme", TenantOptions{QuotaVCPUs: 2})
	if q := reg.Buckets().Quota(tn.ID); q != 2 {
		t.Fatalf("quota = %f", q)
	}
}

func TestCrossTenantIsolationEndToEnd(t *testing.T) {
	// The whole point of cluster virtualization: tenant A cannot read
	// tenant B's rows through the KV API, under any request shape.
	reg := newTestRegistry(t)
	ctx := context.Background()
	a, _ := reg.CreateTenant(ctx, "a", TenantOptions{})
	b, _ := reg.CreateTenant(ctx, "b", TenantOptions{})

	// B writes data.
	bsender := kvserver.NewDistSender(reg.Cluster(), kvserver.Identity{Tenant: b.ID})
	bcoord := txn.NewCoordinator(bsender, reg.Cluster().Clock(), b.ID)
	secret := append(keys.MakeTenantPrefix(b.ID), []byte("secret")...)
	if err := bcoord.RunTxn(ctx, func(ctx context.Context, tx *txn.Txn) error {
		return tx.Put(ctx, secret, []byte("b-data"))
	}); err != nil {
		t.Fatal(err)
	}

	// A attempts reads with its own identity.
	asender := kvserver.NewDistSender(reg.Cluster(), kvserver.Identity{Tenant: a.ID})
	var tae *kvpb.TenantAuthError
	// Point read of B's key.
	_, err := asender.Send(ctx, &kvpb.BatchRequest{Tenant: b.ID, Requests: []kvpb.Request{
		{Method: kvpb.Get, Key: secret},
	}})
	if !errors.As(err, &tae) {
		t.Fatalf("cross-tenant get = %v", err)
	}
	// Scan spanning B's keyspace.
	_, err = asender.Send(ctx, &kvpb.BatchRequest{Tenant: a.ID, Requests: []kvpb.Request{
		{Method: kvpb.Scan, Key: keys.MakeTenantPrefix(a.ID), EndKey: keys.MakeTenantPrefix(b.ID + 1)},
	}})
	if !errors.As(err, &tae) {
		t.Fatalf("cross-tenant scan = %v", err)
	}
	// Write into B's keyspace.
	_, err = asender.Send(ctx, &kvpb.BatchRequest{Tenant: a.ID, Requests: []kvpb.Request{
		{Method: kvpb.Put, Key: secret, Value: []byte("overwrite")},
	}})
	if !errors.As(err, &tae) {
		t.Fatalf("cross-tenant put = %v", err)
	}
}
