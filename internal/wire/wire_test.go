package wire

import (
	"bytes"
	"io"
	"net"
	"testing"

	"crdbserverless/internal/sql"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := &Query{SQL: "SELECT 1", Args: []sql.Datum{sql.DInt(42), sql.DString("x")}}
	if err := WriteMessage(&buf, MsgQuery, in); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if typ != MsgQuery {
		t.Fatalf("type = %c", typ)
	}
	var out Query
	if err := Decode(payload, &out); err != nil {
		t.Fatal(err)
	}
	if out.SQL != in.SQL || len(out.Args) != 2 || out.Args[0].I != 42 || out.Args[1].S != "x" {
		t.Fatalf("round trip = %+v", out)
	}
}

func TestFrameMultipleMessages(t *testing.T) {
	var buf bytes.Buffer
	WriteMessage(&buf, MsgStartup, &Startup{Params: map[string]string{"tenant": "acme"}})
	WriteMessage(&buf, MsgTerminate, &Terminate{})
	typ, payload, err := ReadMessage(&buf)
	if err != nil || typ != MsgStartup {
		t.Fatalf("first = %c, %v", typ, err)
	}
	var s Startup
	if err := Decode(payload, &s); err != nil || s.Params["tenant"] != "acme" {
		t.Fatalf("startup = %+v, %v", s, err)
	}
	typ, _, err = ReadMessage(&buf)
	if err != nil || typ != MsgTerminate {
		t.Fatalf("second = %c, %v", typ, err)
	}
	if _, _, err := ReadMessage(&buf); err != io.EOF {
		t.Fatalf("empty read = %v", err)
	}
}

func TestReadMessageTruncated(t *testing.T) {
	var buf bytes.Buffer
	WriteMessage(&buf, MsgQuery, &Query{SQL: "SELECT 1"})
	raw := buf.Bytes()
	if _, _, err := ReadMessage(bytes.NewReader(raw[:3])); err == nil {
		t.Fatal("truncated header accepted")
	}
	if _, _, err := ReadMessage(bytes.NewReader(raw[:len(raw)-2])); err == nil {
		t.Fatal("truncated payload accepted")
	}
}

func TestReadMessageOversizeRejected(t *testing.T) {
	hdr := []byte{MsgQuery, 0xff, 0xff, 0xff, 0xff}
	if _, _, err := ReadMessage(bytes.NewReader(hdr)); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

// echoServer answers startup with auth-ok (or failure for a bad password)
// and echoes queries back as single-cell results.
func echoServer(t *testing.T, ln net.Listener) {
	t.Helper()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				typ, payload, err := ReadMessage(conn)
				if err != nil || typ != MsgStartup {
					return
				}
				var s Startup
				if err := Decode(payload, &s); err != nil {
					return
				}
				if s.Params["password"] == "wrong" {
					WriteMessage(conn, MsgAuth, &Auth{OK: false, Msg: "bad password"})
					return
				}
				WriteMessage(conn, MsgAuth, &Auth{OK: true})
				for {
					typ, payload, err := ReadMessage(conn)
					if err != nil || typ == MsgTerminate {
						return
					}
					if typ != MsgQuery {
						continue
					}
					var q Query
					if err := Decode(payload, &q); err != nil {
						return
					}
					WriteMessage(conn, MsgResult, &Result{
						Columns: []string{"echo"},
						Rows:    [][]sql.Datum{{sql.DString(q.SQL)}},
					})
				}
			}(conn)
		}
	}()
}

func TestClientServerRoundTrip(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	echoServer(t, ln)

	c, err := Connect(ln.Addr().String(), map[string]string{"tenant": "acme", "user": "app"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res, err := c.Query("SELECT 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].S != "SELECT 1" {
		t.Fatalf("echo = %+v", res)
	}
}

func TestClientAuthFailure(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	echoServer(t, ln)

	_, err = Connect(ln.Addr().String(), map[string]string{"password": "wrong"})
	if err == nil {
		t.Fatal("bad password accepted")
	}
	if _, ok := err.(*AuthError); !ok {
		t.Fatalf("error type = %T", err)
	}
}

func TestConnectRefused(t *testing.T) {
	// A port with nothing listening.
	ln, _ := net.Listen("tcp", "127.0.0.1:0")
	addr := ln.Addr().String()
	ln.Close()
	if _, err := Connect(addr, nil); err == nil {
		t.Fatal("connect to closed port succeeded")
	}
}
