// Package wire implements the client/server protocol spoken between SQL
// clients, the routing proxy, and SQL nodes. It is a compact analogue of the
// PostgreSQL wire protocol (§4.2.2): a startup message carries routing
// parameters (tenant, user, password) so the proxy can identify the tenant
// before any query flows, and dedicated control messages support the session
// serialization handshake used by connection migration (§4.2.4).
//
// Framing: 1 type byte, 4-byte big-endian payload length, gob payload.
package wire

import (
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"net"

	"crdbserverless/internal/sql"
)

// Message type bytes.
const (
	// MsgStartup opens a connection: params include tenant, user, password.
	MsgStartup = byte('S')
	// MsgAuth answers a startup or restore attempt.
	MsgAuth = byte('R')
	// MsgQuery carries one SQL statement with arguments.
	MsgQuery = byte('Q')
	// MsgResult carries a statement's result (or error).
	MsgResult = byte('D')
	// MsgTerminate closes the connection gracefully.
	MsgTerminate = byte('X')
	// MsgSerialize asks a SQL node to serialize an idle session (proxy to
	// node, during migration).
	MsgSerialize = byte('M')
	// MsgSerialized returns the serialized session blob.
	MsgSerialized = byte('m')
	// MsgRestore opens a connection resuming a serialized session.
	MsgRestore = byte('r')
)

// maxFrame bounds a frame payload (16 MiB).
const maxFrame = 16 << 20

// Startup is the first message on a client connection.
type Startup struct {
	// Params carries routing and authentication data. Recognized keys:
	// "tenant" (cluster name), "user", "password", "database".
	Params map[string]string
}

// Auth is the server's response to Startup or Restore.
type Auth struct {
	OK  bool
	Msg string
}

// Query is one SQL statement with bound arguments.
type Query struct {
	SQL  string
	Args []sql.Datum
	// TraceID/SpanID propagate the request trace across the hop from the
	// proxy to the SQL node: the proxy stamps its exchange span here and
	// the node continues the trace under it. Zero means untraced.
	TraceID uint64
	SpanID  uint64
}

// Result is a statement outcome.
type Result struct {
	Columns      []string
	Rows         [][]sql.Datum
	RowsAffected int
	Err          string
}

// Serialize asks the node to capture the connection's session.
type Serialize struct{}

// Serialized carries the captured session.
type Serialized struct {
	Data []byte
	Err  string
}

// Restore resumes a migrated session on a new node.
type Restore struct {
	Data []byte
}

// Terminate closes the connection.
type Terminate struct{}

// WriteMessage frames and writes one message.
func WriteMessage(w io.Writer, typ byte, payload interface{}) error {
	var body frameBuffer
	if err := gob.NewEncoder(&body).Encode(payload); err != nil {
		return fmt.Errorf("wire: encoding %c: %w", typ, err)
	}
	if len(body.b) > maxFrame {
		return fmt.Errorf("wire: frame too large (%d bytes)", len(body.b))
	}
	hdr := make([]byte, 5)
	hdr[0] = typ
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(body.b)))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	_, err := w.Write(body.b)
	return err
}

// ReadMessage reads one frame, returning its type and raw payload.
func ReadMessage(r io.Reader) (byte, []byte, error) {
	hdr := make([]byte, 5)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > maxFrame {
		return 0, nil, fmt.Errorf("wire: frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[0], payload, nil
}

// Decode unmarshals a payload into out.
func Decode(payload []byte, out interface{}) error {
	return gob.NewDecoder(&sliceReader{b: payload}).Decode(out)
}

type frameBuffer struct{ b []byte }

func (f *frameBuffer) Write(p []byte) (int, error) {
	f.b = append(f.b, p...)
	return len(p), nil
}

type sliceReader struct {
	b []byte
	i int
}

func (s *sliceReader) Read(p []byte) (int, error) {
	if s.i >= len(s.b) {
		return 0, io.EOF
	}
	n := copy(p, s.b[s.i:])
	s.i += n
	return n, nil
}

// Client is a SQL client connection.
type Client struct {
	conn net.Conn
}

// Connect dials addr and performs the startup handshake.
func Connect(addr string, params map[string]string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return ConnectOn(conn, params)
}

// ConnectOn performs the startup handshake on an existing connection.
func ConnectOn(conn net.Conn, params map[string]string) (*Client, error) {
	if err := WriteMessage(conn, MsgStartup, &Startup{Params: params}); err != nil {
		conn.Close()
		return nil, err
	}
	typ, payload, err := ReadMessage(conn)
	if err != nil {
		conn.Close()
		return nil, err
	}
	if typ != MsgAuth {
		conn.Close()
		return nil, fmt.Errorf("wire: expected auth response, got %c", typ)
	}
	var auth Auth
	if err := Decode(payload, &auth); err != nil {
		conn.Close()
		return nil, err
	}
	if !auth.OK {
		conn.Close()
		return nil, &AuthError{Msg: auth.Msg}
	}
	return &Client{conn: conn}, nil
}

// AuthError reports a rejected startup.
type AuthError struct{ Msg string }

// Error implements error.
func (e *AuthError) Error() string { return "wire: authentication failed: " + e.Msg }

// Query runs one statement and returns its result.
func (c *Client) Query(sqlText string, args ...sql.Datum) (*Result, error) {
	if err := WriteMessage(c.conn, MsgQuery, &Query{SQL: sqlText, Args: args}); err != nil {
		return nil, err
	}
	typ, payload, err := ReadMessage(c.conn)
	if err != nil {
		return nil, err
	}
	if typ != MsgResult {
		return nil, fmt.Errorf("wire: expected result, got %c", typ)
	}
	var res Result
	if err := Decode(payload, &res); err != nil {
		return nil, err
	}
	if res.Err != "" {
		return &res, fmt.Errorf("wire: %s", res.Err)
	}
	return &res, nil
}

// Close terminates the connection gracefully.
func (c *Client) Close() error {
	_ = WriteMessage(c.conn, MsgTerminate, &Terminate{})
	return c.conn.Close()
}
