package admission

import (
	"context"
	"sync"
	"time"

	"crdbserverless/internal/keys"
	"crdbserverless/internal/tenantobs"
	"crdbserverless/internal/timeutil"
	"crdbserverless/internal/trace"
)

// CPUQueue admits operations onto a bounded number of CPU "slots". The slot
// count is the dynamically estimated concurrency that keeps CPU utilization
// high while bounding runnable-queue buildup (§5.1.3); AdjustSlots implements
// the additive increase/decrease feedback loop the paper drives with 1000Hz
// runnable-queue sampling.
type CPUQueue struct {
	clock timeutil.Clock
	obs   *tenantobs.Plane

	mu struct {
		sync.Mutex
		fq       *fairQueue
		slots    int
		used     int
		admitted int64
		queued   int64
	}
	minSlots int
	maxSlots int
}

// CPUQueueOptions configures a CPUQueue.
type CPUQueueOptions struct {
	// InitialSlots is the starting concurrency. Defaults to 4.
	InitialSlots int
	// MinSlots and MaxSlots bound the AIMD loop. Default 1 and 512.
	MinSlots int
	MaxSlots int
	// UsageHalfLife controls how quickly a tenant's recent CPU consumption
	// ages out of the fairness metric. Defaults to 1s.
	UsageHalfLife time.Duration
	// Clock defaults to the real clock.
	Clock timeutil.Clock
	// Obs, when non-nil, records each request's admission wait against its
	// tenant (admission.tenant_wait).
	Obs *tenantobs.Plane
}

// NewCPUQueue returns a CPUQueue.
func NewCPUQueue(opts CPUQueueOptions) *CPUQueue {
	if opts.InitialSlots <= 0 {
		opts.InitialSlots = 4
	}
	if opts.MinSlots <= 0 {
		opts.MinSlots = 1
	}
	if opts.MaxSlots <= 0 {
		opts.MaxSlots = 512
	}
	if opts.Clock == nil {
		opts.Clock = timeutil.NewRealClock()
	}
	q := &CPUQueue{clock: opts.Clock, obs: opts.Obs, minSlots: opts.MinSlots, maxSlots: opts.MaxSlots}
	q.mu.fq = newFairQueue(opts.UsageHalfLife, opts.Clock.Now())
	q.mu.slots = opts.InitialSlots
	return q
}

// Admit blocks until the operation is granted a CPU slot (or ctx is done).
// The returned release function must be called exactly once when the
// operation finishes its bounded chunk of work, passing the CPU time actually
// consumed; consumption feeds inter-tenant fairness (§5.1.4).
func (q *CPUQueue) Admit(ctx context.Context, info WorkInfo) (release func(cpu time.Duration), err error) {
	q.mu.Lock()
	if q.mu.used < q.mu.slots && q.mu.fq.peekNext() == nil {
		q.mu.used++
		q.mu.admitted++
		q.mu.Unlock()
		q.obs.AdmissionWait(info.Tenant, 0)
		return q.releaseFunc(info.Tenant), nil
	}
	w := &waiter{info: info, grantCh: make(chan struct{})}
	q.mu.fq.enqueue(w)
	q.mu.queued++
	q.mu.Unlock()

	sp := trace.SpanFromContext(ctx)
	enqueued := q.clock.Now()
	sp.Eventf("admission: cpu queued tenant=%d", info.Tenant)

	select {
	case <-w.grantCh:
		wait := q.clock.Since(enqueued)
		sp.SetAttr("admission.cpu_wait", wait)
		q.obs.AdmissionWait(info.Tenant, wait)
		return q.releaseFunc(info.Tenant), nil
	case <-ctx.Done():
		q.mu.Lock()
		select {
		case <-w.grantCh:
			// Granted concurrently with cancellation: hand the slot back.
			q.mu.Unlock()
			q.releaseFunc(info.Tenant)(0)
			return nil, ctx.Err()
		default:
		}
		w.canceled = true
		q.mu.Unlock()
		return nil, ctx.Err()
	}
}

// releaseFunc returns the function an admitted operation calls when done.
func (q *CPUQueue) releaseFunc(tenant keys.TenantID) func(cpu time.Duration) {
	var once sync.Once
	return func(cpu time.Duration) {
		once.Do(func() {
			q.mu.Lock()
			defer q.mu.Unlock()
			q.mu.fq.recordUsage(tenant, cpu.Seconds(), q.clock.Now())
			q.mu.used--
			q.grantLocked()
		})
	}
}

// grantLocked hands free slots to waiting work, least-consuming tenant first.
func (q *CPUQueue) grantLocked() {
	for q.mu.used < q.mu.slots {
		w := q.mu.fq.popNext()
		if w == nil {
			return
		}
		q.mu.used++
		q.mu.admitted++
		close(w.grantCh)
	}
}

// AdjustSlots runs one step of the additive increase/decrease loop given the
// current number of runnable goroutines and processors: when the runnable
// queue builds beyond one runnable per processor the slot count shrinks;
// when the queue is short and all slots are busy it grows (work-conserving).
func (q *CPUQueue) AdjustSlots(runnable, procs int) {
	if procs <= 0 {
		procs = 1
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	switch {
	case runnable > procs:
		if q.mu.slots > q.minSlots {
			q.mu.slots--
		}
	case q.mu.used >= q.mu.slots:
		if q.mu.slots < q.maxSlots {
			q.mu.slots++
			q.grantLocked()
		}
	}
}

// CPUQueueStats is a point-in-time snapshot.
type CPUQueueStats struct {
	Slots    int
	Used     int
	Waiting  int
	Admitted int64
	Queued   int64
}

// Stats returns a snapshot of queue state.
func (q *CPUQueue) Stats() CPUQueueStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return CPUQueueStats{
		Slots:    q.mu.slots,
		Used:     q.mu.used,
		Waiting:  q.mu.fq.waiting,
		Admitted: q.mu.admitted,
		Queued:   q.mu.queued,
	}
}

// TenantUsage returns the tenant's decayed recent CPU seconds, for tests and
// introspection.
func (q *CPUQueue) TenantUsage(id keys.TenantID) float64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.mu.fq.usage(id)
}
