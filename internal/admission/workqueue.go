// Package admission implements CockroachDB-style admission control (§5.1 of
// the paper): per-node queues that keep a KV node stable under overload while
// sharing bottleneck resources fairly across tenants.
//
// Two resources are controlled. CPU admission uses a dynamic number of
// concurrency "slots" tuned by an additive increase/decrease loop driven by
// runnable-queue sampling (§5.1.3). Write admission uses a token bucket whose
// refill rate is estimated from LSM flush and compaction throughput, reduced
// when level 0 develops a backlog.
//
// Both queues share the same fairness structure: a heap of tenants ordered by
// recent resource consumption (least-consuming first), each holding a heap of
// waiting operations ordered by priority and then create time (§5.1.2).
package admission

import (
	"container/heap"
	"math"
	"time"

	"crdbserverless/internal/keys"
	"crdbserverless/internal/kvpb"
)

// WorkInfo describes one operation seeking admission.
type WorkInfo struct {
	Tenant   keys.TenantID
	Priority kvpb.Priority
	// CreateTime orders work within (tenant, priority); transactions pass
	// their start time so older transactions are served first.
	CreateTime time.Time
}

// waiter is one queued operation.
type waiter struct {
	info     WorkInfo
	amount   float64 // resource amount needed at grant time (write bytes); 0 for CPU
	grantCh  chan struct{}
	canceled bool
	idx      int
}

// waiterHeap orders waiters by priority (higher first) then create time
// (older first).
type waiterHeap []*waiter

func (h waiterHeap) Len() int { return len(h) }
func (h waiterHeap) Less(i, j int) bool {
	if h[i].info.Priority != h[j].info.Priority {
		return h[i].info.Priority > h[j].info.Priority
	}
	return h[i].info.CreateTime.Before(h[j].info.CreateTime)
}
func (h waiterHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *waiterHeap) Push(x interface{}) {
	w := x.(*waiter)
	w.idx = len(*h)
	*h = append(*h, w)
}
func (h *waiterHeap) Pop() interface{} {
	old := *h
	n := len(old)
	w := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return w
}

// tenantQueue tracks one tenant's recent consumption and queued work.
type tenantQueue struct {
	id      keys.TenantID
	used    float64 // decayed recent consumption (cpu-seconds or bytes)
	waiters waiterHeap
	heapIdx int // position in the tenant heap, -1 if not enqueued
}

// tenantHeap orders tenants so the least-consuming tenant with waiting work
// is on top — it receives the next grant (§5.1.2).
type tenantHeap []*tenantQueue

func (h tenantHeap) Len() int           { return len(h) }
func (h tenantHeap) Less(i, j int) bool { return h[i].used < h[j].used }
func (h tenantHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIdx = i
	h[j].heapIdx = j
}
func (h *tenantHeap) Push(x interface{}) {
	t := x.(*tenantQueue)
	t.heapIdx = len(*h)
	*h = append(*h, t)
}
func (h *tenantHeap) Pop() interface{} {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.heapIdx = -1
	*h = old[:n-1]
	return t
}

// fairQueue is the shared heap-of-heaps. It is not internally synchronized;
// the owning queue provides locking.
type fairQueue struct {
	tenants   map[keys.TenantID]*tenantQueue
	active    tenantHeap
	halfLife  time.Duration
	lastDecay time.Time
	waiting   int
}

func newFairQueue(halfLife time.Duration, now time.Time) *fairQueue {
	if halfLife <= 0 {
		halfLife = time.Second
	}
	return &fairQueue{
		tenants:   make(map[keys.TenantID]*tenantQueue),
		halfLife:  halfLife,
		lastDecay: now,
	}
}

func (f *fairQueue) tenant(id keys.TenantID) *tenantQueue {
	t, ok := f.tenants[id]
	if !ok {
		t = &tenantQueue{id: id, heapIdx: -1}
		f.tenants[id] = t
	}
	return t
}

// enqueue adds a waiter for its tenant.
func (f *fairQueue) enqueue(w *waiter) {
	t := f.tenant(w.info.Tenant)
	heap.Push(&t.waiters, w)
	if t.heapIdx == -1 {
		heap.Push(&f.active, t)
	}
	f.waiting++
}

// popNext removes and returns the next waiter: the highest-priority oldest
// operation of the least-consuming tenant. Returns nil if nothing waits.
func (f *fairQueue) popNext() *waiter {
	for f.active.Len() > 0 {
		t := f.active[0]
		for t.waiters.Len() > 0 {
			w := heap.Pop(&t.waiters).(*waiter)
			f.waiting--
			if !w.canceled {
				if t.waiters.Len() == 0 {
					heap.Pop(&f.active)
				}
				return w
			}
		}
		heap.Pop(&f.active)
	}
	return nil
}

// peekNext returns the next waiter without removing it, or nil.
func (f *fairQueue) peekNext() *waiter {
	for f.active.Len() > 0 {
		t := f.active[0]
		// Drop canceled waiters lazily.
		for t.waiters.Len() > 0 && t.waiters[0].canceled {
			heap.Pop(&t.waiters)
			f.waiting--
		}
		if t.waiters.Len() > 0 {
			return t.waiters[0]
		}
		heap.Pop(&f.active)
	}
	return nil
}

// recordUsage charges amount of the resource to tenant, after applying decay
// so "recent interval" consumption governs fairness.
func (f *fairQueue) recordUsage(id keys.TenantID, amount float64, now time.Time) {
	f.decay(now)
	t := f.tenant(id)
	t.used += amount
	if t.heapIdx >= 0 {
		heap.Fix(&f.active, t.heapIdx)
	}
}

// decay exponentially ages all tenants' usage with the configured half-life.
// A uniform multiplicative decay preserves heap order, so the heap needs no
// re-fix.
func (f *fairQueue) decay(now time.Time) {
	dt := now.Sub(f.lastDecay)
	if dt < f.halfLife/20 {
		return
	}
	factor := math.Pow(0.5, float64(dt)/float64(f.halfLife))
	for _, t := range f.tenants {
		t.used *= factor
	}
	f.lastDecay = now
}

// usage returns the tenant's current decayed usage.
func (f *fairQueue) usage(id keys.TenantID) float64 {
	if t, ok := f.tenants[id]; ok {
		return t.used
	}
	return 0
}
