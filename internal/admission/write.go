package admission

import (
	"context"
	"sync"
	"time"

	"crdbserverless/internal/keys"
	"crdbserverless/internal/lsm"
	"crdbserverless/internal/timeutil"
	"crdbserverless/internal/trace"
)

// WriteQueue admits write work against a token bucket denominated in bytes.
// The refill rate is the estimated sustainable write capacity of the storage
// engine (see CapacityEstimator), so a write burst that outruns flush and
// compaction bandwidth queues here instead of growing an L0 backlog
// (§5.1.3). Fairness across tenants follows the same least-consuming-first
// rule as the CPU queue.
type WriteQueue struct {
	clock timeutil.Clock

	mu struct {
		sync.Mutex
		fq         *fairQueue
		tokens     float64 // available bytes
		rate       float64 // refill bytes/sec
		burst      float64
		lastRefill time.Time
		admitted   int64
		queued     int64
	}
}

// WriteQueueOptions configures a WriteQueue.
type WriteQueueOptions struct {
	// InitialRate is the starting refill rate in bytes/sec. Defaults to
	// 64 MiB/s.
	InitialRate float64
	// Burst is the bucket capacity in bytes. Defaults to one second of the
	// initial rate.
	Burst float64
	// UsageHalfLife ages tenant write consumption. Defaults to 1s.
	UsageHalfLife time.Duration
	// Clock defaults to the real clock.
	Clock timeutil.Clock
}

// NewWriteQueue returns a WriteQueue.
func NewWriteQueue(opts WriteQueueOptions) *WriteQueue {
	if opts.InitialRate <= 0 {
		opts.InitialRate = 64 << 20
	}
	if opts.Burst <= 0 {
		opts.Burst = opts.InitialRate
	}
	if opts.Clock == nil {
		opts.Clock = timeutil.NewRealClock()
	}
	q := &WriteQueue{clock: opts.Clock}
	q.mu.fq = newFairQueue(opts.UsageHalfLife, opts.Clock.Now())
	q.mu.rate = opts.InitialRate
	q.mu.burst = opts.Burst
	q.mu.tokens = opts.Burst
	q.mu.lastRefill = opts.Clock.Now()
	return q
}

// Admit blocks until bytes of write capacity are available (or ctx is done).
// bytes should be the *estimated actual* write bytes, i.e. the linear model's
// prediction including the raft log and state-machine writes (§5.1.4).
func (q *WriteQueue) Admit(ctx context.Context, info WorkInfo, bytes int64) error {
	if bytes <= 0 {
		return nil
	}
	q.mu.Lock()
	q.refillLocked()
	if q.mu.fq.peekNext() == nil && q.mu.tokens >= float64(bytes) {
		q.mu.tokens -= float64(bytes)
		q.mu.admitted++
		q.mu.fq.recordUsage(info.Tenant, float64(bytes), q.clock.Now())
		q.mu.Unlock()
		return nil
	}
	w := &waiter{info: info, amount: float64(bytes), grantCh: make(chan struct{})}
	q.mu.fq.enqueue(w)
	q.mu.queued++
	q.mu.Unlock()

	sp := trace.SpanFromContext(ctx)
	enqueued := q.clock.Now()
	sp.Eventf("admission: write queued tenant=%d bytes=%d", info.Tenant, bytes)

	select {
	case <-w.grantCh:
		sp.SetAttr("admission.write_wait", q.clock.Since(enqueued))
		return nil
	case <-ctx.Done():
		q.mu.Lock()
		select {
		case <-w.grantCh:
			q.mu.Unlock()
			return ctx.Err()
		default:
		}
		w.canceled = true
		q.mu.Unlock()
		return ctx.Err()
	}
}

// Tick refills the bucket and grants waiting work. Call periodically (the KV
// node drives this from its heartbeat loop) or rely on refill at Admit time.
func (q *WriteQueue) Tick() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.refillLocked()
	q.grantLocked()
}

// SetRate updates the refill rate from a fresh capacity estimate.
func (q *WriteQueue) SetRate(bytesPerSec float64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.refillLocked()
	if bytesPerSec < 1 {
		bytesPerSec = 1
	}
	q.mu.rate = bytesPerSec
	q.mu.burst = bytesPerSec // one second of capacity
	if q.mu.tokens > q.mu.burst {
		q.mu.tokens = q.mu.burst
	}
	q.grantLocked()
}

func (q *WriteQueue) refillLocked() {
	now := q.clock.Now()
	dt := now.Sub(q.mu.lastRefill).Seconds()
	if dt <= 0 {
		return
	}
	q.mu.tokens += q.mu.rate * dt
	if q.mu.tokens > q.mu.burst {
		q.mu.tokens = q.mu.burst
	}
	q.mu.lastRefill = now
}

func (q *WriteQueue) grantLocked() {
	for {
		w := q.mu.fq.peekNext()
		if w == nil || q.mu.tokens < w.amount {
			return
		}
		w = q.mu.fq.popNext()
		q.mu.tokens -= w.amount
		q.mu.admitted++
		q.mu.fq.recordUsage(w.info.Tenant, w.amount, q.clock.Now())
		close(w.grantCh)
	}
}

// WriteQueueStats is a point-in-time snapshot.
type WriteQueueStats struct {
	Tokens   float64
	Rate     float64
	Waiting  int
	Admitted int64
	Queued   int64
}

// Stats returns a snapshot of queue state.
func (q *WriteQueue) Stats() WriteQueueStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return WriteQueueStats{
		Tokens:   q.mu.tokens,
		Rate:     q.mu.rate,
		Waiting:  q.mu.fq.waiting,
		Admitted: q.mu.admitted,
		Queued:   q.mu.queued,
	}
}

// TenantUsage returns the tenant's decayed recent write bytes.
func (q *WriteQueue) TenantUsage(id keys.TenantID) float64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.mu.fq.usage(id)
}

// LinearModel estimates actual resource use as a*x + b. The paper fits such
// models from Pebble instrumentation to translate a request's logical write
// bytes x into physical write bytes (raft log + state machine application).
type LinearModel struct {
	A float64
	B float64
}

// Predict returns the modeled resource use for input x, never negative.
func (m LinearModel) Predict(x float64) float64 {
	y := m.A*x + m.B
	if y < 0 {
		return 0
	}
	return y
}

// FitLinearModel least-squares fits y = a*x + b to the samples. With fewer
// than two distinct x values it falls back to a pass-through model (a=1)
// with b matching the mean residual.
func FitLinearModel(xs, ys []float64) LinearModel {
	n := len(xs)
	if n == 0 || n != len(ys) {
		return LinearModel{A: 1}
	}
	var sumX, sumY, sumXX, sumXY float64
	for i := 0; i < n; i++ {
		sumX += xs[i]
		sumY += ys[i]
		sumXX += xs[i] * xs[i]
		sumXY += xs[i] * ys[i]
	}
	den := float64(n)*sumXX - sumX*sumX
	if den == 0 {
		return LinearModel{A: 1, B: (sumY - sumX) / float64(n)}
	}
	a := (float64(n)*sumXY - sumX*sumY) / den
	b := (sumY - a*sumX) / float64(n)
	return LinearModel{A: a, B: b}
}

// CapacityEstimator turns LSM instrumentation into a write-capacity estimate
// in bytes/sec, re-evaluated at a fixed interval (15s in the paper). The
// estimate is the observed flush+compaction throughput, scaled down when L0
// accumulates files so compactions can drain the backlog.
type CapacityEstimator struct {
	// Interval is the minimum time between re-estimates. Defaults to 15s.
	Interval time.Duration
	// L0Threshold is the L0 file count above which capacity is reduced.
	// Defaults to 8.
	L0Threshold int
	// Floor is the minimum capacity returned. Defaults to 1 MiB/s.
	Floor float64

	initialized bool
	lastMetrics lsm.Metrics
	lastAt      time.Time
	smoothed    float64
}

func (ce *CapacityEstimator) defaults() {
	if ce.Interval == 0 {
		ce.Interval = 15 * time.Second
	}
	if ce.L0Threshold == 0 {
		ce.L0Threshold = 8
	}
	if ce.Floor == 0 {
		ce.Floor = 1 << 20
	}
}

// Update folds in a metrics snapshot taken at now and returns the current
// capacity estimate in bytes/sec. Snapshots arriving before Interval has
// elapsed return the previous estimate.
func (ce *CapacityEstimator) Update(m lsm.Metrics, now time.Time) float64 {
	ce.defaults()
	if !ce.initialized {
		ce.initialized = true
		ce.lastMetrics = m
		ce.lastAt = now
		ce.smoothed = ce.Floor * 64 // optimistic until measured
		return ce.estimate(m)
	}
	dt := now.Sub(ce.lastAt).Seconds()
	if dt < ce.Interval.Seconds() {
		return ce.estimate(m)
	}
	deltaBytes := float64((m.FlushedBytes - ce.lastMetrics.FlushedBytes) +
		(m.CompactedBytes - ce.lastMetrics.CompactedBytes))
	observed := deltaBytes / dt
	if observed > 0 {
		// EWMA smoothing keeps the estimate stable across bursty intervals.
		ce.smoothed = 0.5*ce.smoothed + 0.5*observed
	}
	ce.lastMetrics = m
	ce.lastAt = now
	return ce.estimate(m)
}

// estimate applies the L0-backlog reduction to the smoothed throughput.
func (ce *CapacityEstimator) estimate(m lsm.Metrics) float64 {
	cap := ce.smoothed
	if m.L0Files > ce.L0Threshold {
		cap *= float64(ce.L0Threshold) / float64(m.L0Files)
	}
	if cap < ce.Floor {
		cap = ce.Floor
	}
	return cap
}
