package admission

import (
	"context"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"crdbserverless/internal/keys"
	"crdbserverless/internal/kvpb"
	"crdbserverless/internal/lsm"
	"crdbserverless/internal/timeutil"
)

func info(tenant keys.TenantID) WorkInfo {
	return WorkInfo{Tenant: tenant, Priority: kvpb.PriorityNormal}
}

func TestCPUQueueImmediateAdmit(t *testing.T) {
	q := NewCPUQueue(CPUQueueOptions{InitialSlots: 2})
	release, err := q.Admit(context.Background(), info(2))
	if err != nil {
		t.Fatal(err)
	}
	s := q.Stats()
	if s.Used != 1 || s.Admitted != 1 {
		t.Fatalf("stats = %+v", s)
	}
	release(10 * time.Millisecond)
	if s := q.Stats(); s.Used != 0 {
		t.Fatalf("slot not released: %+v", s)
	}
	if u := q.TenantUsage(2); u <= 0 {
		t.Fatalf("usage not recorded: %f", u)
	}
}

func TestCPUQueueReleaseIdempotent(t *testing.T) {
	q := NewCPUQueue(CPUQueueOptions{InitialSlots: 1})
	release, _ := q.Admit(context.Background(), info(2))
	release(time.Millisecond)
	release(time.Millisecond) // second call must be a no-op
	if s := q.Stats(); s.Used != 0 {
		t.Fatalf("double release corrupted used count: %+v", s)
	}
}

func TestCPUQueueBlocksAtCapacity(t *testing.T) {
	q := NewCPUQueue(CPUQueueOptions{InitialSlots: 1})
	r1, _ := q.Admit(context.Background(), info(2))
	admitted := make(chan struct{})
	go func() {
		r2, err := q.Admit(context.Background(), info(3))
		if err == nil {
			r2(0)
		}
		close(admitted)
	}()
	// The second admit must wait for the first release.
	select {
	case <-admitted:
		t.Fatal("second admit should have queued")
	case <-time.After(50 * time.Millisecond):
	}
	r1(time.Millisecond)
	select {
	case <-admitted:
	case <-time.After(2 * time.Second):
		t.Fatal("queued work never granted")
	}
}

func TestCPUQueueContextCancel(t *testing.T) {
	q := NewCPUQueue(CPUQueueOptions{InitialSlots: 1})
	r1, _ := q.Admit(context.Background(), info(2))
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := q.Admit(ctx, info(3))
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	if err := <-errCh; err != context.Canceled {
		t.Fatalf("canceled admit = %v", err)
	}
	// The canceled waiter must not absorb the next grant.
	r1(time.Millisecond)
	release, err := q.Admit(context.Background(), info(4))
	if err != nil {
		t.Fatal(err)
	}
	release(0)
}

func TestCPUQueueFairnessFavorsLightTenant(t *testing.T) {
	// A heavy tenant (1000) and a light tenant (2): when both queue, grants
	// go to the tenant with less recent consumption.
	mc := timeutil.NewManualClock(time.Unix(0, 0))
	q := NewCPUQueue(CPUQueueOptions{InitialSlots: 1, Clock: mc, UsageHalfLife: time.Hour})
	hold, _ := q.Admit(context.Background(), info(1000))

	// Charge the heavy tenant with prior consumption.
	q.mu.Lock()
	q.mu.fq.recordUsage(1000, 100, mc.Now())
	q.mu.Unlock()

	order := make(chan keys.TenantID, 2)
	var wg sync.WaitGroup
	for _, tid := range []keys.TenantID{1000, 2} {
		wg.Add(1)
		go func(tid keys.TenantID) {
			defer wg.Done()
			release, err := q.Admit(context.Background(), info(tid))
			if err != nil {
				t.Error(err)
				return
			}
			order <- tid
			release(time.Millisecond)
		}(tid)
		// Ensure deterministic enqueue order: heavy enqueues first.
		time.Sleep(20 * time.Millisecond)
	}
	hold(50 * time.Millisecond)
	wg.Wait()
	close(order)
	first := <-order
	if first != 2 {
		t.Fatalf("light tenant should be granted first, got tenant %d", first)
	}
}

func TestCPUQueuePriorityWithinTenant(t *testing.T) {
	q := NewCPUQueue(CPUQueueOptions{InitialSlots: 1})
	hold, _ := q.Admit(context.Background(), info(5))
	order := make(chan string, 2)
	var wg sync.WaitGroup
	start := func(label string, pri kvpb.Priority, createTime time.Time) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			release, err := q.Admit(context.Background(),
				WorkInfo{Tenant: 5, Priority: pri, CreateTime: createTime})
			if err != nil {
				t.Error(err)
				return
			}
			order <- label
			release(0)
		}()
		time.Sleep(20 * time.Millisecond)
	}
	base := time.Unix(100, 0)
	start("low-old", kvpb.PriorityLow, base)
	start("high-new", kvpb.PriorityHigh, base.Add(time.Hour))
	hold(0)
	wg.Wait()
	close(order)
	if first := <-order; first != "high-new" {
		t.Fatalf("high priority should preempt: first = %s", first)
	}
}

func TestCPUQueueAIMD(t *testing.T) {
	q := NewCPUQueue(CPUQueueOptions{InitialSlots: 4, MinSlots: 1, MaxSlots: 8})
	// Runnable queue deep: slots shrink.
	for i := 0; i < 10; i++ {
		q.AdjustSlots(100, 4)
	}
	if s := q.Stats().Slots; s != 1 {
		t.Fatalf("slots after overload = %d, want min 1", s)
	}
	// All slots busy, runnable short: slots grow (work-conserving).
	release, _ := q.Admit(context.Background(), info(2))
	for i := 0; i < 20; i++ {
		q.AdjustSlots(0, 4)
	}
	if s := q.Stats().Slots; s <= 1 {
		t.Fatalf("slots did not grow: %d", s)
	}
	release(0)
	// Idle (used < slots): no growth.
	before := q.Stats().Slots
	q.AdjustSlots(0, 4)
	if got := q.Stats().Slots; got != before {
		t.Fatalf("idle growth: %d -> %d", before, got)
	}
}

func TestCPUQueueGrantOnSlotGrowth(t *testing.T) {
	q := NewCPUQueue(CPUQueueOptions{InitialSlots: 1, MaxSlots: 4})
	r1, _ := q.Admit(context.Background(), info(2))
	defer r1(0)
	granted := make(chan struct{})
	go func() {
		r2, err := q.Admit(context.Background(), info(2))
		if err == nil {
			defer r2(0)
		}
		close(granted)
	}()
	time.Sleep(20 * time.Millisecond)
	q.AdjustSlots(0, 4) // used >= slots -> grow and grant
	select {
	case <-granted:
	case <-time.After(2 * time.Second):
		t.Fatal("slot growth did not grant waiter")
	}
}

func TestWriteQueueImmediateAndBlocked(t *testing.T) {
	mc := timeutil.NewManualClock(time.Unix(0, 0))
	q := NewWriteQueue(WriteQueueOptions{InitialRate: 1000, Burst: 1000, Clock: mc})
	// Bucket starts full: 600 bytes admit immediately.
	if err := q.Admit(context.Background(), info(2), 600); err != nil {
		t.Fatal(err)
	}
	// 600 more exceed remaining 400: must wait for refill.
	done := make(chan error, 1)
	go func() { done <- q.Admit(context.Background(), info(2), 600) }()
	select {
	case <-done:
		t.Fatal("admit should have blocked")
	case <-time.After(50 * time.Millisecond):
	}
	mc.Advance(time.Second) // refills 1000 (capped at burst)
	q.Tick()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("refill did not grant")
	}
}

func TestWriteQueueZeroBytesNoop(t *testing.T) {
	q := NewWriteQueue(WriteQueueOptions{})
	if err := q.Admit(context.Background(), info(2), 0); err != nil {
		t.Fatal(err)
	}
	if err := q.Admit(context.Background(), info(2), -5); err != nil {
		t.Fatal(err)
	}
	if s := q.Stats(); s.Admitted != 0 {
		t.Fatalf("no-op admits counted: %+v", s)
	}
}

func TestWriteQueueContextCancel(t *testing.T) {
	mc := timeutil.NewManualClock(time.Unix(0, 0))
	q := NewWriteQueue(WriteQueueOptions{InitialRate: 10, Burst: 10, Clock: mc})
	q.Admit(context.Background(), info(2), 10) // drain bucket
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() { errCh <- q.Admit(ctx, info(3), 10) }()
	time.Sleep(20 * time.Millisecond)
	cancel()
	if err := <-errCh; err != context.Canceled {
		t.Fatalf("canceled write admit = %v", err)
	}
}

func TestWriteQueueFairness(t *testing.T) {
	mc := timeutil.NewManualClock(time.Unix(0, 0))
	q := NewWriteQueue(WriteQueueOptions{InitialRate: 100, Burst: 100, Clock: mc, UsageHalfLife: time.Hour})
	q.Admit(context.Background(), info(1000), 100) // heavy tenant drains bucket & records usage

	order := make(chan keys.TenantID, 2)
	var wg sync.WaitGroup
	for _, tid := range []keys.TenantID{1000, 2} {
		wg.Add(1)
		go func(tid keys.TenantID) {
			defer wg.Done()
			if err := q.Admit(context.Background(), info(tid), 50); err != nil {
				t.Error(err)
				return
			}
			order <- tid
		}(tid)
		time.Sleep(20 * time.Millisecond)
	}
	mc.Advance(500 * time.Millisecond) // refill 50 bytes: one grant possible
	q.Tick()
	first := <-order
	if first != 2 {
		t.Fatalf("light tenant should get tokens first, got %d", first)
	}
	mc.Advance(time.Second)
	q.Tick()
	wg.Wait()
}

func TestWriteQueueSetRate(t *testing.T) {
	mc := timeutil.NewManualClock(time.Unix(0, 0))
	q := NewWriteQueue(WriteQueueOptions{InitialRate: 10, Burst: 10, Clock: mc})
	q.Admit(context.Background(), info(2), 10)
	done := make(chan error, 1)
	go func() { done <- q.Admit(context.Background(), info(2), 500) }()
	time.Sleep(20 * time.Millisecond)
	q.SetRate(1 << 20) // capacity estimate jumped; burst now covers the wait
	mc.Advance(time.Second)
	q.Tick()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("rate increase did not grant")
	}
	if got := q.Stats().Rate; got != 1<<20 {
		t.Fatalf("rate = %f", got)
	}
}

func TestFairQueueDecay(t *testing.T) {
	now := time.Unix(0, 0)
	fq := newFairQueue(time.Second, now)
	fq.recordUsage(5, 100, now)
	if u := fq.usage(5); u != 100 {
		t.Fatalf("usage = %f", u)
	}
	// After one half-life, usage should be halved (recorded via decay).
	fq.decay(now.Add(time.Second))
	if u := fq.usage(5); math.Abs(u-50) > 1 {
		t.Fatalf("decayed usage = %f, want ~50", u)
	}
	// Unknown tenant reads as zero.
	if u := fq.usage(99); u != 0 {
		t.Fatalf("unknown tenant usage = %f", u)
	}
}

func TestFairQueuePopOrderAcrossTenants(t *testing.T) {
	now := time.Unix(0, 0)
	fq := newFairQueue(time.Hour, now)
	mk := func(tid keys.TenantID) *waiter {
		return &waiter{info: WorkInfo{Tenant: tid}, grantCh: make(chan struct{})}
	}
	fq.recordUsage(1, 300, now)
	fq.recordUsage(2, 100, now)
	fq.recordUsage(3, 200, now)
	fq.enqueue(mk(1))
	fq.enqueue(mk(2))
	fq.enqueue(mk(3))
	var got []keys.TenantID
	for w := fq.popNext(); w != nil; w = fq.popNext() {
		got = append(got, w.info.Tenant)
	}
	want := []keys.TenantID{2, 3, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order = %v, want %v", got, want)
		}
	}
}

func TestFairQueueCanceledWaitersSkipped(t *testing.T) {
	now := time.Unix(0, 0)
	fq := newFairQueue(time.Hour, now)
	w1 := &waiter{info: WorkInfo{Tenant: 1}, grantCh: make(chan struct{})}
	w2 := &waiter{info: WorkInfo{Tenant: 1, CreateTime: now.Add(time.Second)}, grantCh: make(chan struct{})}
	fq.enqueue(w1)
	fq.enqueue(w2)
	w1.canceled = true
	if got := fq.peekNext(); got != w2 {
		t.Fatalf("peek skipped wrong waiter: %+v", got)
	}
	if got := fq.popNext(); got != w2 {
		t.Fatal("pop returned canceled waiter")
	}
	if fq.popNext() != nil {
		t.Fatal("queue should be empty")
	}
}

func TestLinearModelFitAndPredict(t *testing.T) {
	// y = 2x + 10 exactly.
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{12, 14, 16, 18, 20}
	m := FitLinearModel(xs, ys)
	if math.Abs(m.A-2) > 1e-9 || math.Abs(m.B-10) > 1e-9 {
		t.Fatalf("fit = %+v", m)
	}
	if got := m.Predict(10); math.Abs(got-30) > 1e-9 {
		t.Fatalf("predict = %f", got)
	}
	if got := (LinearModel{A: 1, B: -100}).Predict(5); got != 0 {
		t.Fatalf("negative prediction not clamped: %f", got)
	}
}

func TestLinearModelDegenerate(t *testing.T) {
	if m := FitLinearModel(nil, nil); m.A != 1 {
		t.Fatalf("empty fit = %+v", m)
	}
	if m := FitLinearModel([]float64{1}, []float64{2, 3}); m.A != 1 {
		t.Fatalf("mismatched fit = %+v", m)
	}
	// All same x: fall back to pass-through with mean offset.
	m := FitLinearModel([]float64{5, 5}, []float64{7, 9})
	if m.A != 1 || math.Abs(m.B-3) > 1e-9 {
		t.Fatalf("same-x fit = %+v", m)
	}
}

func TestCapacityEstimatorTracksThroughput(t *testing.T) {
	var ce CapacityEstimator
	now := time.Unix(0, 0)
	m := lsm.Metrics{}
	first := ce.Update(m, now)
	if first <= 0 {
		t.Fatal("initial estimate must be positive")
	}
	// 30 MiB flushed + 30 MiB compacted over 15s => 4 MiB/s observed.
	m.FlushedBytes = 30 << 20
	m.CompactedBytes = 30 << 20
	got := ce.Update(m, now.Add(15*time.Second))
	// EWMA moves halfway from the optimistic prior toward 4 MiB/s; after
	// several intervals it converges.
	for i := 2; i <= 8; i++ {
		m.FlushedBytes += 30 << 20
		m.CompactedBytes += 30 << 20
		got = ce.Update(m, now.Add(time.Duration(i)*15*time.Second))
	}
	want := 4.0 * (1 << 20)
	if math.Abs(got-want)/want > 0.1 {
		t.Fatalf("capacity = %f, want ~%f", got, want)
	}
}

func TestCapacityEstimatorL0Backlog(t *testing.T) {
	ce := CapacityEstimator{L0Threshold: 4}
	now := time.Unix(0, 0)
	base := lsm.Metrics{}
	ce.Update(base, now)
	base.FlushedBytes = 60 << 20
	healthy := ce.Update(base, now.Add(15*time.Second))
	backlogged := base
	backlogged.L0Files = 16
	reduced := ce.Update(backlogged, now.Add(16*time.Second))
	if reduced >= healthy {
		t.Fatalf("L0 backlog should reduce capacity: %f >= %f", reduced, healthy)
	}
	if math.Abs(reduced-healthy/4) > healthy*0.05 {
		t.Fatalf("reduction factor wrong: healthy=%f reduced=%f", healthy, reduced)
	}
}

func TestCapacityEstimatorFloor(t *testing.T) {
	ce := CapacityEstimator{Floor: 100}
	now := time.Unix(0, 0)
	ce.Update(lsm.Metrics{}, now)
	// No throughput ever observed: smoothed stays at optimistic prior, but
	// a massive backlog cannot push below the floor.
	m := lsm.Metrics{L0Files: 1 << 20}
	if got := ce.Update(m, now.Add(time.Hour)); got < 100 {
		t.Fatalf("capacity %f below floor", got)
	}
}

func TestCPUQueueConcurrentStress(t *testing.T) {
	q := NewCPUQueue(CPUQueueOptions{InitialSlots: 4})
	var inFlight, maxSeen int64
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				release, err := q.Admit(context.Background(), info(keys.TenantID(g%4+2)))
				if err != nil {
					t.Error(err)
					return
				}
				cur := atomic.AddInt64(&inFlight, 1)
				for {
					old := atomic.LoadInt64(&maxSeen)
					if cur <= old || atomic.CompareAndSwapInt64(&maxSeen, old, cur) {
						break
					}
				}
				atomic.AddInt64(&inFlight, -1)
				release(time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	if maxSeen > 4 {
		t.Fatalf("concurrency %d exceeded slot limit 4", maxSeen)
	}
	if s := q.Stats(); s.Used != 0 || s.Waiting != 0 {
		t.Fatalf("leaked state: %+v", s)
	}
}
