// Package trace is a stdlib-only, deterministic tracing layer for the
// request path: proxy → SQL → txn → DistSender → KV → LSM.
//
// A Tracer mints spans whose trace/span IDs come from a seeded
// randutil RNG and whose timestamps come from a timeutil.Clock, so two
// runs of the simulator with the same seed produce byte-identical trace
// IDs and span structure. Spans nest parent→child, carry structured
// events and attributes, and — when the root finishes — land in a
// bounded in-memory Recorder that force-retains slow outliers (see
// recorder.go) and feeds the /debug/tracez renderer.
//
// All Span methods are safe on a nil receiver, so uninstrumented paths
// (no tracer configured, or no span in the context) pay only a nil
// check. The free StartSpan function starts a child of whatever span is
// in the context, which keeps deep layers (txn, DistSender, admission)
// free of any Tracer plumbing.
package trace

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"crdbserverless/internal/metric"
	"crdbserverless/internal/randutil"
	"crdbserverless/internal/timeutil"
)

// Options configures a Tracer.
type Options struct {
	// Clock supplies span timestamps. Defaults to timeutil.RealClock.
	Clock timeutil.Clock
	// Seed seeds the trace/span ID stream. The default (0) is a fixed
	// seed, so even unconfigured tracers are reproducible.
	Seed int64
	// Metrics, when non-nil, receives the tracer's own counters
	// (trace.spans_started, trace.spans_finished, trace.roots_recorded,
	// trace.slow_retained).
	Metrics *metric.Registry
	// SlowThreshold is the root-span duration at or above which a
	// finished trace is force-retained by the recorder regardless of
	// ring-buffer churn. Defaults to 250ms.
	SlowThreshold time.Duration
	// RingSize bounds the recorder's ring of recently finished root
	// traces. Defaults to 64.
	RingSize int
	// SlowSize bounds the recorder's list of retained slow traces
	// (oldest evicted first). Defaults to 32.
	SlowSize int
}

// Tracer mints and records spans. The zero value is not usable; use New.
// A nil *Tracer is a valid no-op tracer: every Start method returns a
// nil (no-op) span.
type Tracer struct {
	clock    timeutil.Clock
	recorder *Recorder
	// ids is the root ID stream seeded by Options.Seed. Spans inherit
	// their parent's stream, so an unforked trace draws every ID from
	// this one stream in creation order — exactly the pre-fork behavior.
	ids *idStream

	spansStarted  *metric.Counter
	spansFinished *metric.Counter

	mu struct {
		sync.Mutex
		// live maps span ID → unfinished span, so a logically remote
		// layer (the SQL node, reached over the wire) can attach child
		// spans to the in-flight parent by ID alone.
		live map[uint64]*Span
	}
}

// idStream is an independent deterministic source of span IDs. A parallel
// region forks one stream per branch — in deterministic order, before any
// goroutine launches — so each branch's descendants draw IDs from their own
// seeded stream and same-seed runs produce byte-identical traces regardless
// of goroutine scheduling.
type idStream struct {
	mu  sync.Mutex
	rng *rand.Rand
}

func newIDStream(seed int64) *idStream {
	return &idStream{rng: randutil.NewRand(seed)}
}

// next returns a fresh nonzero ID.
func (ids *idStream) next() uint64 {
	ids.mu.Lock()
	defer ids.mu.Unlock()
	for {
		if id := ids.rng.Uint64(); id != 0 {
			return id
		}
	}
}

// fork derives a new stream whose seed is drawn from this one.
func (ids *idStream) fork() *idStream {
	ids.mu.Lock()
	seed := ids.rng.Int63()
	ids.mu.Unlock()
	return newIDStream(seed)
}

// New returns a Tracer.
func New(opts Options) *Tracer {
	if opts.Clock == nil {
		opts.Clock = timeutil.RealClock{}
	}
	t := &Tracer{
		clock:         opts.Clock,
		recorder:      newRecorder(opts),
		spansStarted:  &metric.Counter{},
		spansFinished: &metric.Counter{},
	}
	t.ids = newIDStream(opts.Seed)
	t.mu.live = map[uint64]*Span{}
	if opts.Metrics != nil {
		opts.Metrics.MustRegister("trace.spans_started", t.spansStarted)
		opts.Metrics.MustRegister("trace.spans_finished", t.spansFinished)
		opts.Metrics.MustRegister("trace.roots_recorded", t.recorder.rootsRecorded)
		opts.Metrics.MustRegister("trace.slow_retained", t.recorder.slowRetained)
	}
	return t
}

// Recorder returns the tracer's recorder of finished root traces.
func (t *Tracer) Recorder() *Recorder {
	if t == nil {
		return nil
	}
	return t.recorder
}

// Clock returns the clock span timestamps are drawn from.
func (t *Tracer) Clock() timeutil.Clock {
	if t == nil {
		return nil
	}
	return t.clock
}

// newSpan mints a span. IDs come from ids when non-nil, otherwise from the
// parent's stream (which, unforked, is the tracer's root stream).
func (t *Tracer) newSpan(op string, traceID, parentID uint64, parent *Span, ids *idStream) *Span {
	if ids == nil {
		if parent != nil && parent.ids != nil {
			ids = parent.ids
		} else {
			ids = t.ids
		}
	}
	s := &Span{tracer: t, op: op, start: t.clock.Now(), ids: ids}
	if traceID == 0 {
		traceID = ids.next()
	}
	s.traceID = traceID
	s.spanID = ids.next()
	s.parentID = parentID
	t.mu.Lock()
	t.mu.live[s.spanID] = s
	t.mu.Unlock()
	if parent != nil {
		parent.addChild(s)
	}
	t.spansStarted.Inc(1)
	return s
}

// StartRoot starts a new root span — the head of a fresh trace. Used
// for entry points (a proxy connection) and background work (LSM
// flushes and compactions) that have no inbound context.
func (t *Tracer) StartRoot(op string) *Span {
	if t == nil {
		return nil
	}
	return t.newSpan(op, 0, 0, nil, nil)
}

// StartSpan starts a span as a child of the span in ctx, or a new root
// if ctx carries none, and returns a context carrying the new span.
func (t *Tracer) StartSpan(ctx context.Context, op string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	var s *Span
	if parent := SpanFromContext(ctx); parent != nil {
		s = t.newSpan(op, parent.traceID, parent.spanID, parent, nil)
	} else {
		s = t.newSpan(op, 0, 0, nil, nil)
	}
	return ContextWithSpan(ctx, s), s
}

// StartRemote continues a trace whose parent span lives on the other
// side of a wire hop: the caller supplies the propagated trace and
// parent span IDs. If the parent is still in flight in this tracer the
// child is attached to it (the simulator's proxy and SQL pods share a
// process); otherwise the child is recorded as a detached root carrying
// the remote trace ID.
func (t *Tracer) StartRemote(traceID, parentSpanID uint64, op string) *Span {
	if t == nil || traceID == 0 {
		return nil
	}
	t.mu.Lock()
	parent := t.mu.live[parentSpanID]
	t.mu.Unlock()
	if parent != nil {
		return t.newSpan(op, traceID, parentSpanID, parent, nil)
	}
	return t.newSpan(op, traceID, 0, nil, nil)
}

// StartSpan starts a child of the span carried by ctx using that span's
// own tracer, or returns a no-op span when ctx carries none. This is
// the form deep layers use: no Tracer handle needed.
func StartSpan(ctx context.Context, op string) (context.Context, *Span) {
	parent := SpanFromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	return parent.tracer.StartSpan(ctx, op)
}

type ctxKey struct{}

// ContextWithSpan returns ctx carrying s. A nil span returns ctx
// unchanged.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// SpanFromContext returns the span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// Event is a timestamped structured annotation on a span.
type Event struct {
	At  time.Time
	Msg string
}

// Attr is a key/value attribute on a span.
type Attr struct {
	Key   string
	Value any
}

// Span is one timed operation in a trace. All methods are safe on a nil
// receiver (no-ops), so call sites never need to check whether tracing
// is enabled.
type Span struct {
	tracer   *Tracer
	traceID  uint64
	spanID   uint64
	parentID uint64
	op       string
	start    time.Time
	// ids is the stream this span's descendants draw IDs from: the
	// tracer's root stream normally, or a branch-private stream when the
	// span was created by StartForkedChild.
	ids *idStream

	mu struct {
		sync.Mutex
		end      time.Time
		finished bool
		events   []Event
		attrs    []Attr
		children []*Span
	}
}

// Op returns the span's operation name.
func (s *Span) Op() string {
	if s == nil {
		return ""
	}
	return s.op
}

// TraceID returns the span's trace ID (0 for a no-op span).
func (s *Span) TraceID() uint64 {
	if s == nil {
		return 0
	}
	return s.traceID
}

// SpanID returns the span's ID (0 for a no-op span).
func (s *Span) SpanID() uint64 {
	if s == nil {
		return 0
	}
	return s.spanID
}

// Start returns the span's start time.
func (s *Span) Start() time.Time {
	if s == nil {
		return time.Time{}
	}
	return s.start
}

// Eventf records a timestamped structured event on the span.
func (s *Span) Eventf(format string, args ...any) {
	if s == nil {
		return
	}
	at := s.tracer.clock.Now()
	s.mu.Lock()
	s.mu.events = append(s.mu.events, Event{At: at, Msg: fmt.Sprintf(format, args...)})
	s.mu.Unlock()
}

// SetAttr sets a key/value attribute, overwriting any prior value for
// the key.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.mu.attrs {
		if s.mu.attrs[i].Key == key {
			s.mu.attrs[i].Value = value
			return
		}
	}
	s.mu.attrs = append(s.mu.attrs, Attr{Key: key, Value: value})
}

// Attr returns the value for key and whether it is set.
func (s *Span) Attr(key string) (any, bool) {
	if s == nil {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, a := range s.mu.attrs {
		if a.Key == key {
			return a.Value, true
		}
	}
	return nil, false
}

// Attrs returns a copy of the span's attributes in set order.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Attr(nil), s.mu.attrs...)
}

// Events returns a copy of the span's events in record order.
func (s *Span) Events() []Event {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Event(nil), s.mu.events...)
}

// Children returns a copy of the span's child spans in start order.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.mu.children...)
}

// Duration returns the span's duration: end−start once finished, and
// zero while still in flight.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.mu.finished {
		return 0
	}
	return s.mu.end.Sub(s.start)
}

// StartChild starts a child span without going through a context —
// used where a span handle is held directly (e.g. proxy connection
// migration, which runs outside any request context).
func (s *Span) StartChild(op string) *Span {
	if s == nil {
		return nil
	}
	return s.tracer.newSpan(op, s.traceID, s.spanID, s, nil)
}

// StartForkedChild starts a child span whose descendants draw span IDs
// from an independent stream seeded deterministically from this span's
// stream. Branch-parallel code (the DistSender fan-out) creates one forked
// child per branch — in deterministic order, before launching goroutines —
// so every branch's subtree has reproducible IDs no matter how the
// goroutines interleave. The caller must also attach branches to the
// parent in deterministic order, which pre-creation guarantees.
func (s *Span) StartForkedChild(op string) *Span {
	if s == nil {
		return nil
	}
	src := s.ids
	if src == nil {
		src = s.tracer.ids
	}
	return s.tracer.newSpan(op, s.traceID, s.spanID, s, src.fork())
}

func (s *Span) addChild(c *Span) {
	s.mu.Lock()
	s.mu.children = append(s.mu.children, c)
	s.mu.Unlock()
}

// Finish ends the span. Finishing a root span hands the whole trace to
// the tracer's recorder; every finish feeds the per-operation duration
// histograms behind /debug/tracez. Finish is idempotent.
func (s *Span) Finish() {
	if s == nil {
		return
	}
	end := s.tracer.clock.Now()
	s.mu.Lock()
	if s.mu.finished {
		s.mu.Unlock()
		return
	}
	s.mu.finished = true
	s.mu.end = end
	s.mu.Unlock()

	t := s.tracer
	t.mu.Lock()
	delete(t.mu.live, s.spanID)
	t.mu.Unlock()
	t.spansFinished.Inc(1)
	t.recorder.spanFinished(s, end.Sub(s.start), s.parentID == 0)
}
