package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"crdbserverless/internal/metric"
)

// Recorder keeps the observable residue of finished traces: a bounded
// ring of recently finished root traces, a bounded list of slow traces
// force-retained past ring churn, and per-operation span-duration
// histograms for the /debug/tracez percentile table.
type Recorder struct {
	slowThreshold time.Duration

	rootsRecorded *metric.Counter
	slowRetained  *metric.Counter

	mu struct {
		sync.Mutex
		ring     []*Span // ring buffer of finished roots
		ringNext int
		ringLen  int
		slow     []*Span // retained slow roots, oldest first
		slowCap  int
		perOp    map[string]*metric.Histogram
	}
}

const (
	defaultSlowThreshold = 250 * time.Millisecond
	defaultRingSize      = 64
	defaultSlowSize      = 32
)

func newRecorder(opts Options) *Recorder {
	if opts.SlowThreshold <= 0 {
		opts.SlowThreshold = defaultSlowThreshold
	}
	if opts.RingSize <= 0 {
		opts.RingSize = defaultRingSize
	}
	if opts.SlowSize <= 0 {
		opts.SlowSize = defaultSlowSize
	}
	r := &Recorder{
		slowThreshold: opts.SlowThreshold,
		rootsRecorded: &metric.Counter{},
		slowRetained:  &metric.Counter{},
	}
	r.mu.ring = make([]*Span, opts.RingSize)
	r.mu.slowCap = opts.SlowSize
	r.mu.perOp = map[string]*metric.Histogram{}
	return r
}

// SlowThreshold returns the root duration at or above which traces are
// force-retained.
func (r *Recorder) SlowThreshold() time.Duration { return r.slowThreshold }

// spanFinished feeds every finished span into the per-op histograms and
// files finished roots into the ring (and the slow list when over
// threshold).
func (r *Recorder) spanFinished(s *Span, d time.Duration, isRoot bool) {
	r.mu.Lock()
	h := r.mu.perOp[s.op]
	if h == nil {
		h = metric.NewHistogram()
		r.mu.perOp[s.op] = h
	}
	if !isRoot {
		r.mu.Unlock()
		h.Record(d)
		return
	}
	r.mu.ring[r.mu.ringNext] = s
	r.mu.ringNext = (r.mu.ringNext + 1) % len(r.mu.ring)
	if r.mu.ringLen < len(r.mu.ring) {
		r.mu.ringLen++
	}
	if d >= r.slowThreshold {
		r.mu.slow = append(r.mu.slow, s)
		if len(r.mu.slow) > r.mu.slowCap {
			r.mu.slow = r.mu.slow[1:]
		}
		r.slowRetained.Inc(1)
	}
	r.mu.Unlock()
	h.Record(d)
	r.rootsRecorded.Inc(1)
}

// RecentRoots returns the finished root traces still in the ring,
// oldest first.
func (r *Recorder) RecentRoots() []*Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Span, 0, r.mu.ringLen)
	start := r.mu.ringNext - r.mu.ringLen
	for i := 0; i < r.mu.ringLen; i++ {
		out = append(out, r.mu.ring[(start+i+len(r.mu.ring))%len(r.mu.ring)])
	}
	return out
}

// SlowRoots returns the force-retained slow traces, oldest first.
func (r *Recorder) SlowRoots() []*Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*Span(nil), r.mu.slow...)
}

// OpNames returns every operation with at least one finished span, in
// sorted order.
func (r *Recorder) OpNames() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.mu.perOp))
	for op := range r.mu.perOp {
		names = append(names, op)
	}
	sort.Strings(names)
	return names
}

// OpSummary returns the duration summary for one operation.
func (r *Recorder) OpSummary(op string) metric.Summary {
	if r == nil {
		return metric.Summary{}
	}
	r.mu.Lock()
	h := r.mu.perOp[op]
	r.mu.Unlock()
	if h == nil {
		return metric.Summary{}
	}
	return h.Snapshot()
}

// WriteTracez renders the /debug/tracez text page: the per-operation
// span-duration percentile table, the retained slow traces, and the
// most recent finished traces.
func (r *Recorder) WriteTracez(w io.Writer) error {
	if r == nil {
		_, err := io.WriteString(w, "tracez: tracing disabled\n")
		return err
	}
	var b strings.Builder
	b.WriteString("tracez — per-operation span durations\n")
	fmt.Fprintf(&b, "%-28s %8s %10s %10s %10s %10s\n", "OPERATION", "COUNT", "P50", "P95", "P99", "MAX")
	for _, op := range r.OpNames() {
		s := r.OpSummary(op)
		fmt.Fprintf(&b, "%-28s %8d %10v %10v %10v %10v\n", op, s.Count, s.P50, s.P95, s.P99, s.Max)
	}

	slow := r.SlowRoots()
	fmt.Fprintf(&b, "\nretained slow traces (threshold %v): %d\n", r.slowThreshold, len(slow))
	for _, root := range slow {
		b.WriteString("\n")
		writeSpanTree(&b, root, 0, true)
	}

	recent := r.RecentRoots()
	const maxRecent = 8
	if len(recent) > maxRecent {
		recent = recent[len(recent)-maxRecent:]
	}
	fmt.Fprintf(&b, "\nrecent traces (last %d of ring):\n", len(recent))
	for _, root := range recent {
		b.WriteString("\n")
		writeSpanTree(&b, root, 0, true)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeSpanTree renders one span subtree, indented two spaces per
// level. With detail, events and attributes are included.
func writeSpanTree(b *strings.Builder, s *Span, depth int, detail bool) {
	indent := strings.Repeat("  ", depth)
	if depth == 0 {
		fmt.Fprintf(b, "%s=== trace %016x (%v)\n", indent, s.TraceID(), s.Duration())
	}
	fmt.Fprintf(b, "%s%s %v", indent, s.Op(), s.Duration())
	if detail {
		for _, a := range s.Attrs() {
			fmt.Fprintf(b, " %s=%v", a.Key, a.Value)
		}
	}
	b.WriteString("\n")
	if detail {
		for _, e := range s.Events() {
			fmt.Fprintf(b, "%s  · event: %s\n", indent, e.Msg)
		}
	}
	for _, c := range s.Children() {
		writeSpanTree(b, c, depth+1, detail)
	}
}

// RenderTree returns the detailed text rendering of one trace.
func RenderTree(root *Span) string {
	var b strings.Builder
	writeSpanTree(&b, root, 0, true)
	return b.String()
}

// StructureString renders a trace's deterministic skeleton — trace ID,
// span IDs, parent links, and operation names, with no timestamps or
// durations. Two same-seed runs must produce byte-identical structure
// strings for equivalent workloads.
func StructureString(root *Span) string {
	var b strings.Builder
	writeStructure(&b, root, 0)
	return b.String()
}

func writeStructure(b *strings.Builder, s *Span, depth int) {
	fmt.Fprintf(b, "%s%016x/%016x %s\n", strings.Repeat("  ", depth), s.TraceID(), s.SpanID(), s.Op())
	for _, c := range s.Children() {
		writeStructure(b, c, depth+1)
	}
}
