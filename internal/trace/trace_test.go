package trace

import (
	"context"
	"strings"
	"testing"
	"time"

	"crdbserverless/internal/metric"
	"crdbserverless/internal/timeutil"
)

func newTestTracer(seed int64) (*Tracer, *timeutil.ManualClock) {
	mc := timeutil.NewManualClock(time.Unix(0, 0))
	return New(Options{Clock: mc, Seed: seed}), mc
}

func TestSpanNesting(t *testing.T) {
	tr, mc := newTestTracer(1)
	root := tr.StartRoot("root")
	ctx := ContextWithSpan(context.Background(), root)

	ctx2, child := StartSpan(ctx, "child")
	mc.Advance(10 * time.Millisecond)
	_, grand := StartSpan(ctx2, "grandchild")
	mc.Advance(5 * time.Millisecond)
	grand.Finish()
	child.Finish()
	mc.Advance(time.Millisecond)
	root.Finish()

	if got := root.Duration(); got != 16*time.Millisecond {
		t.Fatalf("root duration = %v, want 16ms", got)
	}
	kids := root.Children()
	if len(kids) != 1 || kids[0].Op() != "child" {
		t.Fatalf("root children = %v", kids)
	}
	gk := kids[0].Children()
	if len(gk) != 1 || gk[0].Op() != "grandchild" {
		t.Fatalf("child children = %v", gk)
	}
	if gk[0].TraceID() != root.TraceID() {
		t.Fatalf("grandchild trace ID %x != root %x", gk[0].TraceID(), root.TraceID())
	}
	if gk[0].Duration() != 5*time.Millisecond {
		t.Fatalf("grandchild duration = %v", gk[0].Duration())
	}
}

func TestDeterministicIDs(t *testing.T) {
	run := func() string {
		tr, mc := newTestTracer(42)
		root := tr.StartRoot("proxy.conn")
		ctx := ContextWithSpan(context.Background(), root)
		ctx2, s1 := StartSpan(ctx, "sql.exec")
		mc.Advance(time.Millisecond)
		_, s2 := StartSpan(ctx2, "dist.send")
		s2.Finish()
		s1.Finish()
		root.Finish()
		return StructureString(root)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same-seed structure differs:\n%s\nvs\n%s", a, b)
	}
	tr, _ := newTestTracer(43)
	other := tr.StartRoot("proxy.conn")
	other.Finish()
	if strings.Contains(a, StructureString(other)[:17]) {
		t.Fatalf("different seeds produced the same trace ID")
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	if s := tr.StartRoot("x"); s != nil {
		t.Fatal("nil tracer StartRoot should return nil span")
	}
	ctx, s := tr.StartSpan(context.Background(), "x")
	if s != nil {
		t.Fatal("nil tracer StartSpan should return nil span")
	}
	ctx, s = StartSpan(ctx, "y") // no span in ctx → no-op
	if s != nil {
		t.Fatal("free StartSpan without parent should return nil span")
	}
	// All methods must be no-ops on a nil span.
	s.Eventf("ev %d", 1)
	s.SetAttr("k", 1)
	if _, ok := s.Attr("k"); ok {
		t.Fatal("nil span Attr should report unset")
	}
	s.Finish()
	if s.StartChild("c") != nil {
		t.Fatal("nil span StartChild should return nil")
	}
	if SpanFromContext(ctx) != nil {
		t.Fatal("no span should be in ctx")
	}
}

func TestEventsAndAttrs(t *testing.T) {
	tr, mc := newTestTracer(1)
	s := tr.StartRoot("op")
	s.Eventf("first %s", "event")
	mc.Advance(time.Second)
	s.Eventf("second")
	s.SetAttr("k", 1)
	s.SetAttr("k", 2) // overwrite
	s.SetAttr("wait", 3*time.Millisecond)
	s.Finish()

	evs := s.Events()
	if len(evs) != 2 || evs[0].Msg != "first event" || evs[1].Msg != "second" {
		t.Fatalf("events = %v", evs)
	}
	if evs[1].At.Sub(evs[0].At) != time.Second {
		t.Fatalf("event timestamps not clock-driven: %v", evs)
	}
	if v, ok := s.Attr("k"); !ok || v.(int) != 2 {
		t.Fatalf("attr k = %v, %v", v, ok)
	}
	if len(s.Attrs()) != 2 {
		t.Fatalf("attrs = %v", s.Attrs())
	}
}

func TestRecorderRingAndSlowRetention(t *testing.T) {
	mc := timeutil.NewManualClock(time.Unix(0, 0))
	tr := New(Options{Clock: mc, Seed: 1, RingSize: 4, SlowSize: 2, SlowThreshold: 100 * time.Millisecond})
	rec := tr.Recorder()

	finishRoot := func(op string, d time.Duration) {
		s := tr.StartRoot(op)
		mc.Advance(d)
		s.Finish()
	}
	for i := 0; i < 10; i++ {
		finishRoot("fast", time.Millisecond)
	}
	if got := len(rec.RecentRoots()); got != 4 {
		t.Fatalf("ring holds %d, want 4", got)
	}
	finishRoot("slow1", 150*time.Millisecond)
	finishRoot("slow2", 200*time.Millisecond)
	finishRoot("slow3", 300*time.Millisecond)
	for i := 0; i < 10; i++ {
		finishRoot("fast", time.Millisecond)
	}
	slow := rec.SlowRoots()
	if len(slow) != 2 {
		t.Fatalf("slow retained %d, want 2 (bounded)", len(slow))
	}
	if slow[0].Op() != "slow2" || slow[1].Op() != "slow3" {
		t.Fatalf("slow eviction should drop oldest: %s, %s", slow[0].Op(), slow[1].Op())
	}
	// Slow traces survive ring churn.
	for _, s := range rec.RecentRoots() {
		if s.Op() == "slow2" || s.Op() == "slow3" {
			t.Fatalf("ring should have churned past slow traces")
		}
	}
	if s := rec.OpSummary("fast"); s.Count != 20 {
		t.Fatalf("fast count = %d, want 20", s.Count)
	}
}

func TestStartRemoteAttachesToLiveParent(t *testing.T) {
	tr, _ := newTestTracer(1)
	parent := tr.StartRoot("proxy.exchange")
	remote := tr.StartRemote(parent.TraceID(), parent.SpanID(), "sqlnode.query")
	if remote.TraceID() != parent.TraceID() {
		t.Fatalf("remote trace ID %x != parent %x", remote.TraceID(), parent.TraceID())
	}
	remote.Finish()
	parent.Finish()
	kids := parent.Children()
	if len(kids) != 1 || kids[0] != remote {
		t.Fatalf("remote span should attach to live parent; children=%v", kids)
	}
	// After the parent finished it is no longer live: a late remote
	// child becomes a detached root on the same trace.
	late := tr.StartRemote(parent.TraceID(), parent.SpanID(), "late")
	late.Finish()
	roots := tr.Recorder().RecentRoots()
	found := false
	for _, r := range roots {
		if r == late {
			found = true
		}
	}
	if !found {
		t.Fatal("detached remote span should be recorded as a root")
	}
	if tr.StartRemote(0, 0, "none") != nil {
		t.Fatal("zero trace ID should yield a no-op span")
	}
}

func TestWriteTracez(t *testing.T) {
	mc := timeutil.NewManualClock(time.Unix(0, 0))
	reg := metric.NewRegistry()
	tr := New(Options{Clock: mc, Seed: 1, Metrics: reg, SlowThreshold: 50 * time.Millisecond})
	root := tr.StartRoot("proxy.conn")
	ctx := ContextWithSpan(context.Background(), root)
	_, child := StartSpan(ctx, "sql.exec")
	child.SetAttr("stmt", "select")
	child.Eventf("row fetched")
	mc.Advance(60 * time.Millisecond)
	child.Finish()
	root.Finish()

	var b strings.Builder
	if err := tr.Recorder().WriteTracez(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"proxy.conn", "sql.exec", "retained slow traces", "stmt=select", "event: row fetched", "P99"} {
		if !strings.Contains(out, want) {
			t.Fatalf("tracez output missing %q:\n%s", want, out)
		}
	}
	if c, ok := reg.Get("trace.spans_finished").(*metric.Counter); !ok || c.Value() != 2 {
		t.Fatalf("trace.spans_finished not registered/counted")
	}
	// Nil recorder renders a placeholder rather than crashing.
	var nilRec *Recorder
	b.Reset()
	if err := nilRec.WriteTracez(&b); err != nil || !strings.Contains(b.String(), "disabled") {
		t.Fatalf("nil recorder render: %q, %v", b.String(), err)
	}
}

func TestFinishIdempotent(t *testing.T) {
	tr, mc := newTestTracer(1)
	s := tr.StartRoot("op")
	mc.Advance(time.Millisecond)
	s.Finish()
	mc.Advance(time.Hour)
	s.Finish()
	if s.Duration() != time.Millisecond {
		t.Fatalf("second Finish must not move end time: %v", s.Duration())
	}
	if got := tr.Recorder().OpSummary("op").Count; got != 1 {
		t.Fatalf("double-record on repeat Finish: count=%d", got)
	}
}

// TestForkedChildDeterminism: descendants of forked children draw span IDs
// from branch-private streams, so a parallel region produces byte-identical
// structure across same-seed runs regardless of goroutine interleaving.
func TestForkedChildDeterminism(t *testing.T) {
	run := func(seed int64, reverse bool) string {
		tr, _ := newTestTracer(seed)
		root := tr.StartRoot("root")
		// Fork branches in deterministic order (as the DistSender fan-out
		// does before launching goroutines)...
		branches := make([]*Span, 4)
		for i := range branches {
			branches[i] = root.StartForkedChild("branch")
		}
		// ...then run the per-branch work in an arbitrary order to model
		// scheduler nondeterminism. Each branch's descendants draw from its
		// private stream, so the order must not matter.
		order := []int{0, 1, 2, 3}
		if reverse {
			order = []int{3, 2, 1, 0}
		}
		for _, i := range order {
			ctx := ContextWithSpan(context.Background(), branches[i])
			_, inner := StartSpan(ctx, "work")
			inner.Finish()
			branches[i].Finish()
		}
		root.Finish()
		return StructureString(root)
	}
	a, b := run(7, false), run(7, true)
	if a != b {
		t.Fatalf("forked-branch traces differ across interleavings:\n--- in order\n%s\n--- reversed\n%s", a, b)
	}
	if c := run(8, false); c == a {
		t.Fatal("different seeds produced identical forked traces")
	}
	// Branches must have distinct IDs from each other and the root stream.
	tr, _ := newTestTracer(7)
	root := tr.StartRoot("root")
	b1 := root.StartForkedChild("b1")
	b2 := root.StartForkedChild("b2")
	plain := root.StartChild("plain")
	seen := map[uint64]bool{root.SpanID(): true}
	for _, s := range []*Span{b1, b2, plain} {
		if s.TraceID() != root.TraceID() {
			t.Fatalf("%s trace ID %x != root %x", s.Op(), s.TraceID(), root.TraceID())
		}
		if seen[s.SpanID()] {
			t.Fatalf("duplicate span ID %x", s.SpanID())
		}
		seen[s.SpanID()] = true
		s.Finish()
	}
	root.Finish()
}

// TestForkedChildNilSafety: forking from a nil span is a no-op.
func TestForkedChildNilSafety(t *testing.T) {
	var s *Span
	if got := s.StartForkedChild("x"); got != nil {
		t.Fatalf("nil span forked child = %v", got)
	}
}
