package sql

import (
	"bytes"
	"context"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"

	"crdbserverless/internal/txn"
)

// Session is one client connection's SQL state: settings, prepared
// statements, and the open explicit transaction, if any. Sessions serialize
// for dynamic session migration (§4.2.4): when idle, the proxy captures the
// session (settings + prepared statements + a revival token) and restores it
// on another SQL node without client re-authentication.
type Session struct {
	exec *Executor

	mu struct {
		sync.Mutex
		user     string
		settings map[string]string
		prepared map[string]string // name -> statement text
		txn      *txn.Txn
		queries  int64
	}
}

// NewSession returns a session for the given user.
func NewSession(exec *Executor, user string) *Session {
	s := &Session{exec: exec}
	s.mu.user = user
	s.mu.settings = make(map[string]string)
	s.mu.prepared = make(map[string]string)
	return s
}

// User returns the authenticated user.
func (s *Session) User() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mu.user
}

// QueryCount returns the number of statements executed.
func (s *Session) QueryCount() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mu.queries
}

// InTxn reports whether an explicit transaction is open — a session with an
// open transaction is not idle and cannot migrate.
func (s *Session) InTxn() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mu.txn != nil
}

// Execute parses and runs one statement, honoring the session's transaction
// state.
func (s *Session) Execute(ctx context.Context, sqlText string, args ...Datum) (*Result, error) {
	stmt, err := Parse(sqlText)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.mu.queries++
	s.mu.Unlock()
	switch st := stmt.(type) {
	case *BeginTxn:
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.mu.txn != nil {
			return nil, errors.New("sql: transaction already open")
		}
		s.mu.txn = s.exec.coord.Begin()
		return &Result{}, nil
	case *CommitTxn:
		s.mu.Lock()
		t := s.mu.txn
		s.mu.txn = nil
		s.mu.Unlock()
		if t == nil {
			return nil, errors.New("sql: no transaction open")
		}
		if err := t.Commit(ctx); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *RollbackTxn:
		s.mu.Lock()
		t := s.mu.txn
		s.mu.txn = nil
		s.mu.Unlock()
		if t == nil {
			return nil, errors.New("sql: no transaction open")
		}
		if err := t.Abort(ctx); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *SetVar:
		v, err := evalExpr(&evalEnv{args: args}, st.Value)
		if err != nil {
			return nil, err
		}
		s.mu.Lock()
		s.mu.settings[st.Name] = v.String()
		s.mu.Unlock()
		return &Result{}, nil
	default:
		s.mu.Lock()
		t := s.mu.txn
		s.mu.Unlock()
		res, err := s.exec.ExecuteStmt(ctx, stmt, args, t)
		if err != nil && t != nil {
			// A failed statement poisons the explicit transaction.
			//lint:allow faulterr the statement error is what the client sees; a failed abort only leaves intents for the next reader to resolve
			_ = t.Abort(ctx)
			s.mu.Lock()
			s.mu.txn = nil
			s.mu.Unlock()
		}
		return res, err
	}
}

// Prepare registers a named prepared statement.
func (s *Session) Prepare(name, sqlText string) error {
	if _, err := Parse(sqlText); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mu.prepared[name] = sqlText
	return nil
}

// ExecutePrepared runs a previously prepared statement with arguments.
func (s *Session) ExecutePrepared(ctx context.Context, name string, args ...Datum) (*Result, error) {
	s.mu.Lock()
	text, ok := s.mu.prepared[name]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("sql: prepared statement %q not found", name)
	}
	return s.Execute(ctx, text, args...)
}

// Setting returns a session setting value.
func (s *Session) Setting(name string) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.mu.settings[name]
	return v, ok
}

// SerializedSession is the migratable snapshot of a session: client settings,
// prepared statements, and a revival token that lets the proxy resume the
// session on a new SQL node without client re-authentication (§4.2.4).
type SerializedSession struct {
	User         string
	Settings     map[string]string
	Prepared     map[string]string
	RevivalToken string
}

// ErrSessionBusy is returned when serializing a session with an open
// transaction: migration only happens while the session is idle.
var ErrSessionBusy = errors.New("sql: session has an open transaction; not idle")

// Serialize captures the session for migration. secret is the cluster's
// shared revival-token key.
func (s *Session) Serialize(secret []byte) (*SerializedSession, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.mu.txn != nil {
		return nil, ErrSessionBusy
	}
	out := &SerializedSession{
		User:         s.mu.user,
		Settings:     make(map[string]string, len(s.mu.settings)),
		Prepared:     make(map[string]string, len(s.mu.prepared)),
		RevivalToken: MakeRevivalToken(secret, s.mu.user),
	}
	for k, v := range s.mu.settings {
		out.Settings[k] = v
	}
	for k, v := range s.mu.prepared {
		out.Prepared[k] = v
	}
	return out, nil
}

// RestoreSession validates the revival token and reconstructs the session on
// a new executor (SQL node).
func RestoreSession(exec *Executor, ser *SerializedSession, secret []byte) (*Session, error) {
	if !ValidateRevivalToken(secret, ser.RevivalToken, ser.User) {
		return nil, errors.New("sql: invalid revival token")
	}
	s := NewSession(exec, ser.User)
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, v := range ser.Settings {
		s.mu.settings[k] = v
	}
	for k, v := range ser.Prepared {
		s.mu.prepared[k] = v
	}
	return s, nil
}

// Encode serializes the snapshot for transport through the proxy.
func (ss *SerializedSession) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(ss); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeSerializedSession parses a transported session snapshot.
func DecodeSerializedSession(b []byte) (*SerializedSession, error) {
	var ss SerializedSession
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&ss); err != nil {
		return nil, err
	}
	return &ss, nil
}

// MakeRevivalToken derives the internal authentication credential embedded
// in serialized sessions.
func MakeRevivalToken(secret []byte, user string) string {
	mac := hmac.New(sha256.New, secret)
	mac.Write([]byte("revival:" + user))
	return hex.EncodeToString(mac.Sum(nil))
}

// ValidateRevivalToken checks a revival token in constant time.
func ValidateRevivalToken(secret []byte, token, user string) bool {
	want := MakeRevivalToken(secret, user)
	return hmac.Equal([]byte(want), []byte(token))
}
