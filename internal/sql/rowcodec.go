package sql

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"crdbserverless/internal/keys"
)

// Row layout in the KV keyspace (§3.1: "SQL schema metadata and individual
// table accesses are translated by the SQL layer into basic KV operations"):
//
//	primary:   /Tenant/<t>/Table/<id>/Index/1/<pk datums>      -> gob(all datums)
//	secondary: /Tenant/<t>/Table/<id>/Index/<n>/<idx datums><pk datums> -> empty

// primaryKey builds a row's primary index key.
func primaryKey(tenant keys.TenantID, desc *TableDescriptor, row []Datum) (keys.Key, error) {
	k := keys.MakeTableIndexPrefix(tenant, desc.ID, keys.PrimaryIndexID)
	for _, pkIdx := range desc.PrimaryKey {
		if pkIdx >= len(row) {
			return nil, fmt.Errorf("sql: row too short for primary key of %s", desc.Name)
		}
		if row[pkIdx].Null {
			return nil, fmt.Errorf("sql: NULL in primary key of %s", desc.Name)
		}
		k = encodeDatumKey(k, row[pkIdx])
	}
	return k, nil
}

// primaryKeyFromValues builds a primary key from just the PK datums (for
// point lookups planned from WHERE clauses).
func primaryKeyFromValues(tenant keys.TenantID, desc *TableDescriptor, pkVals []Datum) keys.Key {
	k := keys.MakeTableIndexPrefix(tenant, desc.ID, keys.PrimaryIndexID)
	for _, d := range pkVals {
		k = encodeDatumKey(k, d)
	}
	return k
}

// tableSpan covers the table's primary index.
func tableSpan(tenant keys.TenantID, desc *TableDescriptor) keys.Span {
	return keys.MakeTableIndexSpan(tenant, desc.ID, keys.PrimaryIndexID)
}

// encodeRowValue serializes the full datum row as the primary index value.
func encodeRowValue(row []Datum) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(row); err != nil {
		return nil, fmt.Errorf("sql: encoding row: %w", err)
	}
	return buf.Bytes(), nil
}

// decodeRowValue deserializes a primary index value.
func decodeRowValue(b []byte) ([]Datum, error) {
	var row []Datum
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&row); err != nil {
		return nil, fmt.Errorf("sql: decoding row: %w", err)
	}
	return row, nil
}

// indexKey builds a secondary index entry key for a row.
func indexKey(tenant keys.TenantID, desc *TableDescriptor, idx *IndexDescriptor, row []Datum) (keys.Key, error) {
	k := keys.MakeTableIndexPrefix(tenant, desc.ID, idx.ID)
	for _, col := range idx.Columns {
		if col >= len(row) {
			return nil, fmt.Errorf("sql: row too short for index %s", idx.Name)
		}
		k = encodeDatumKey(k, row[col])
	}
	// Append the primary key to make the entry unique and to let index
	// scans recover the row.
	for _, pkIdx := range desc.PrimaryKey {
		k = encodeDatumKey(k, row[pkIdx])
	}
	return k, nil
}

// indexPrefix builds the scan prefix for an index constrained to the given
// leading datum values (may be fewer than the indexed columns).
func indexPrefix(tenant keys.TenantID, desc *TableDescriptor, idx *IndexDescriptor, vals []Datum) keys.Key {
	k := keys.MakeTableIndexPrefix(tenant, desc.ID, idx.ID)
	for _, d := range vals {
		k = encodeDatumKey(k, d)
	}
	return k
}

// decodeIndexKeyPK extracts the primary key datums from a secondary index
// entry key.
func decodeIndexKeyPK(tenant keys.TenantID, desc *TableDescriptor, idx *IndexDescriptor, key keys.Key) ([]Datum, error) {
	prefix := keys.MakeTableIndexPrefix(tenant, desc.ID, idx.ID)
	if len(key) < len(prefix) || !key[:len(prefix)].Equal(prefix) {
		return nil, fmt.Errorf("sql: key not in index %s", idx.Name)
	}
	rest := key[len(prefix):]
	// Skip the indexed datums.
	var err error
	for range idx.Columns {
		rest, _, err = decodeDatumKey(rest)
		if err != nil {
			return nil, err
		}
	}
	// Decode the primary key datums.
	pk := make([]Datum, 0, len(desc.PrimaryKey))
	for range desc.PrimaryKey {
		var d Datum
		rest, d, err = decodeDatumKey(rest)
		if err != nil {
			return nil, err
		}
		pk = append(pk, d)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("sql: trailing bytes in index key")
	}
	return pk, nil
}
