package sql

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"crdbserverless/internal/keys"
	"crdbserverless/internal/kvpb"
	"crdbserverless/internal/tenantobs"
	"crdbserverless/internal/trace"
	"crdbserverless/internal/txn"
)

// SQL-side CPU accounting (directly measurable per tenant since SQL nodes
// are single-tenant, §5.2.1). Charged per row processed, per aggregate
// update, and — in separate-process deployments — per response byte
// unmarshaled from the KV layer.
const (
	perRowCPUSeconds       = 2e-6
	perAggUpdateCPUSeconds = 5e-7
	perByteUnmarshalCPU    = 15e-9
)

// scanPageSize bounds rows fetched per KV batch, exercising the resumption
// markers of §5.1.4.
const scanPageSize = 4096

// ExecutorConfig configures an Executor.
type ExecutorConfig struct {
	// Colocated marks the traditional deployment (SQL and KV in one
	// process): scans skip cross-process marshaling on both sides (§6.1.2).
	Colocated bool
	// FilterPushdown compiles eligible WHERE conjuncts into KV-evaluated
	// row filters on full-table-scan plans (the §8 future-work
	// optimization). Requires sql.KVRowDecoder registered on the cluster.
	FilterPushdown bool
	// Obs, when non-nil, receives per-tenant statement outcomes and
	// latencies (sql.tenant_queries, sql.tenant_exec_latency, and the
	// tenant's SLO/window series).
	Obs *tenantobs.Plane
}

// Executor compiles and runs SQL statements for one tenant.
type Executor struct {
	catalog *Catalog
	coord   *txn.Coordinator
	tenant  keys.TenantID
	cfg     ExecutorConfig

	mu struct {
		sync.Mutex
		sqlCPUSeconds float64
		rowsProcessed int64
	}
}

// NewExecutor returns an executor over the catalog's tenant.
func NewExecutor(catalog *Catalog, coord *txn.Coordinator, cfg ExecutorConfig) *Executor {
	return &Executor{catalog: catalog, coord: coord, tenant: catalog.Tenant(), cfg: cfg}
}

// Result is the outcome of a statement.
type Result struct {
	Columns      []string
	Rows         [][]Datum
	RowsAffected int
}

// SQLCPUSeconds returns the cumulative directly-measured SQL CPU.
func (e *Executor) SQLCPUSeconds() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.mu.sqlCPUSeconds
}

// RowsProcessed returns the cumulative rows flowed through the executor.
func (e *Executor) RowsProcessed() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.mu.rowsProcessed
}

func (e *Executor) chargeRows(n int) {
	e.mu.Lock()
	e.mu.sqlCPUSeconds += float64(n) * perRowCPUSeconds
	e.mu.rowsProcessed += int64(n)
	e.mu.Unlock()
}

func (e *Executor) chargeAgg(n int) {
	e.mu.Lock()
	e.mu.sqlCPUSeconds += float64(n) * perAggUpdateCPUSeconds
	e.mu.Unlock()
}

func (e *Executor) chargeUnmarshal(bytes int64) {
	if e.cfg.Colocated {
		return
	}
	e.mu.Lock()
	e.mu.sqlCPUSeconds += float64(bytes) * perByteUnmarshalCPU
	e.mu.Unlock()
}

// ExecuteStmt runs a parsed statement. When tx is nil the statement runs in
// its own (retried) implicit transaction; otherwise it joins tx.
func (e *Executor) ExecuteStmt(ctx context.Context, stmt Statement, args []Datum, tx *txn.Txn) (*Result, error) {
	var start time.Time
	if e.cfg.Obs != nil {
		start = e.cfg.Obs.Now()
	}
	res, err := e.executeStmt(ctx, stmt, args, tx)
	if e.cfg.Obs != nil {
		e.cfg.Obs.QueryDone(e.tenant, e.cfg.Obs.Now().Sub(start), err != nil)
	}
	return res, err
}

func (e *Executor) executeStmt(ctx context.Context, stmt Statement, args []Datum, tx *txn.Txn) (*Result, error) {
	ctx, sp := trace.StartSpan(ctx, "sql.exec")
	defer sp.Finish()
	sp.SetAttr("sql.stmt", strings.TrimPrefix(fmt.Sprintf("%T", stmt), "*sql."))
	switch s := stmt.(type) {
	case *CreateTable:
		if _, err := e.catalog.CreateTable(ctx, s); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *CreateIndex:
		return e.createIndex(ctx, s)
	case *DropTable:
		return e.dropTable(ctx, s)
	case *ShowTables:
		names, err := e.catalog.List(ctx)
		if err != nil {
			return nil, err
		}
		res := &Result{Columns: []string{"table_name"}}
		for _, n := range names {
			res.Rows = append(res.Rows, []Datum{DString(n)})
		}
		return res, nil
	case *Insert:
		return e.runMaybeTxn(ctx, tx, func(ctx context.Context, t *txn.Txn) (*Result, error) {
			return e.insert(ctx, t, s, args)
		})
	case *Select:
		return e.runMaybeTxn(ctx, tx, func(ctx context.Context, t *txn.Txn) (*Result, error) {
			return e.selectStmt(ctx, t, s, args)
		})
	case *Update:
		return e.runMaybeTxn(ctx, tx, func(ctx context.Context, t *txn.Txn) (*Result, error) {
			return e.update(ctx, t, s, args)
		})
	case *Delete:
		return e.runMaybeTxn(ctx, tx, func(ctx context.Context, t *txn.Txn) (*Result, error) {
			return e.delete(ctx, t, s, args)
		})
	default:
		return nil, fmt.Errorf("sql: statement %T must be executed by the session", stmt)
	}
}

// runMaybeTxn executes fn in tx, or in a fresh retried implicit transaction.
func (e *Executor) runMaybeTxn(ctx context.Context, tx *txn.Txn, fn func(context.Context, *txn.Txn) (*Result, error)) (*Result, error) {
	if tx != nil {
		return fn(ctx, tx)
	}
	var res *Result
	err := e.coord.RunTxn(ctx, func(ctx context.Context, t *txn.Txn) error {
		var err error
		res, err = fn(ctx, t)
		return err
	})
	return res, err
}

// scanSpan reads all rows in span through paginated KV scans.
func (e *Executor) scanSpan(ctx context.Context, t *txn.Txn, span keys.Span) ([]kvpb.KeyValue, error) {
	return e.scanSpanFiltered(ctx, t, span, nil)
}

// scanSpanFiltered is scanSpan with an optional pushed-down row filter.
func (e *Executor) scanSpanFiltered(ctx context.Context, t *txn.Txn, span keys.Span, filter []byte) ([]kvpb.KeyValue, error) {
	var out []kvpb.KeyValue
	cur := span
	for {
		resp, err := t.Send(ctx, kvpb.Request{
			Method: kvpb.Scan, Key: cur.Key, EndKey: cur.EndKey, MaxKeys: scanPageSize,
			Filter: filter,
		})
		if err != nil {
			return nil, err
		}
		r := resp.Responses[0]
		out = append(out, r.Rows...)
		e.chargeUnmarshal(resp.ReadBytes())
		if r.ResumeSpan == nil {
			return out, nil
		}
		cur = *r.ResumeSpan
	}
}

// tableRow pairs a decoded row with its primary key.
type tableRow struct {
	pk  keys.Key
	row []Datum
}

// readTableRows returns the table's rows, using a primary-key point lookup
// or a secondary-index scan when the WHERE clause allows, and a full scan
// otherwise. The returned rows are not yet filtered by WHERE (the caller
// applies the filter; constrained plans just read less).
func (e *Executor) readTableRows(ctx context.Context, t *txn.Txn, desc *TableDescriptor, where Expr, args []Datum) ([]tableRow, error) {
	return e.readTableRowsAliased(ctx, t, desc, "", where, args)
}

// readTableRowsAliased is readTableRows with an alias accepted as a column
// qualifier (join inputs reference their tables by alias).
func (e *Executor) readTableRowsAliased(ctx context.Context, t *txn.Txn, desc *TableDescriptor, alias string, where Expr, args []Datum) ([]tableRow, error) {
	// Plan 1: full primary key equality -> point get.
	if pkVals, ok := extractPKConstraint(desc, alias, where, args); ok {
		key := primaryKeyFromValues(e.tenant, desc, pkVals)
		raw, found, err := t.Get(ctx, key)
		if err != nil {
			return nil, err
		}
		if !found {
			return nil, nil
		}
		row, err := decodeRowValue(raw)
		if err != nil {
			return nil, err
		}
		e.chargeRows(1)
		e.chargeUnmarshal(int64(len(raw)))
		return []tableRow{{pk: key, row: row}}, nil
	}
	// Plan 2: secondary index equality -> index scan + point lookups (the
	// "index join" plan shape of TPC-H Q9, §6.1.2).
	if idx, vals, ok := extractIndexConstraint(desc, alias, where, args); ok {
		prefix := indexPrefix(e.tenant, desc, idx, vals)
		entries, err := e.scanSpan(ctx, t, keys.Span{Key: prefix, EndKey: prefix.PrefixEnd()})
		if err != nil {
			return nil, err
		}
		var out []tableRow
		for _, entry := range entries {
			pkVals, err := decodeIndexKeyPK(e.tenant, desc, idx, entry.Key)
			if err != nil {
				return nil, err
			}
			key := primaryKeyFromValues(e.tenant, desc, pkVals)
			raw, found, err := t.Get(ctx, key)
			if err != nil {
				return nil, err
			}
			if !found {
				continue // index entry racing a delete
			}
			row, err := decodeRowValue(raw)
			if err != nil {
				return nil, err
			}
			out = append(out, tableRow{pk: key, row: row})
			e.chargeUnmarshal(int64(len(raw)))
		}
		e.chargeRows(len(out))
		return out, nil
	}
	// Plan 3: full table scan, with row-filter push-down when enabled.
	var filter []byte
	if e.cfg.FilterPushdown {
		filter = compilePushdownFilter(desc, where, args)
	}
	kvs, err := e.scanSpanFiltered(ctx, t, tableSpan(e.tenant, desc), filter)
	if err != nil {
		return nil, err
	}
	out := make([]tableRow, 0, len(kvs))
	for _, kv := range kvs {
		row, err := decodeRowValue(kv.Value)
		if err != nil {
			return nil, err
		}
		out = append(out, tableRow{pk: kv.Key, row: row})
	}
	e.chargeRows(len(out))
	return out, nil
}

// extractPKConstraint finds constant equality constraints covering the whole
// primary key.
func extractPKConstraint(desc *TableDescriptor, alias string, where Expr, args []Datum) ([]Datum, bool) {
	if where == nil {
		return nil, false
	}
	eq := equalityConstraints(desc, alias, where, args)
	vals := make([]Datum, 0, len(desc.PrimaryKey))
	for _, pkIdx := range desc.PrimaryKey {
		d, ok := eq[pkIdx]
		if !ok {
			return nil, false
		}
		coerced, err := d.coerce(desc.Columns[pkIdx].Type)
		if err != nil {
			return nil, false
		}
		vals = append(vals, coerced)
	}
	return vals, true
}

// extractIndexConstraint finds an index whose leading column(s) are
// constrained by constant equality.
func extractIndexConstraint(desc *TableDescriptor, alias string, where Expr, args []Datum) (*IndexDescriptor, []Datum, bool) {
	if where == nil || len(desc.Indexes) == 0 {
		return nil, nil, false
	}
	eq := equalityConstraints(desc, alias, where, args)
	var best *IndexDescriptor
	var bestVals []Datum
	for i := range desc.Indexes {
		idx := &desc.Indexes[i]
		var vals []Datum
		for _, col := range idx.Columns {
			d, ok := eq[col]
			if !ok {
				break
			}
			coerced, err := d.coerce(desc.Columns[col].Type)
			if err != nil {
				break
			}
			vals = append(vals, coerced)
		}
		if len(vals) > len(bestVals) {
			best = idx
			bestVals = vals
		}
	}
	if best == nil || len(bestVals) == 0 {
		return nil, nil, false
	}
	return best, bestVals, true
}

// equalityConstraints maps column offsets to constant equality values found
// in the WHERE conjuncts.
func equalityConstraints(desc *TableDescriptor, alias string, where Expr, args []Datum) map[int]Datum {
	out := make(map[int]Datum)
	for _, c := range conjuncts(where) {
		b, ok := c.(*BinaryExpr)
		if !ok || b.Op != "=" {
			continue
		}
		tryBind := func(colSide, valSide Expr) {
			ref, ok := colSide.(*ColumnRef)
			if !ok {
				return
			}
			if ref.Table != "" && ref.Table != desc.Name && ref.Table != alias {
				return
			}
			i := desc.ColumnIndex(ref.Column)
			if i < 0 {
				return
			}
			if v, ok := constantValue(valSide, args); ok {
				out[i] = v
			}
		}
		tryBind(b.Left, b.Right)
		tryBind(b.Right, b.Left)
	}
	return out
}

// filterRows applies WHERE over rows with the given environment template.
func (e *Executor) filterRows(rows []tableRow, desc *TableDescriptor, alias string, where Expr, args []Datum) ([]tableRow, error) {
	if where == nil {
		return rows, nil
	}
	cols := make(map[string]int)
	bindColumns(desc, alias, 0, cols, map[string]bool{})
	out := rows[:0]
	for _, r := range rows {
		env := &evalEnv{cols: cols, row: r.row, args: args}
		v, err := evalExpr(env, where)
		if err != nil {
			return nil, err
		}
		if !v.Null && v.Kind == TypeBool && v.B {
			out = append(out, r)
		}
	}
	return out, nil
}

// insert writes rows, maintaining secondary indexes and rejecting duplicate
// primary keys.
func (e *Executor) insert(ctx context.Context, t *txn.Txn, s *Insert, args []Datum) (*Result, error) {
	desc, err := e.catalog.Lookup(ctx, s.Table)
	if err != nil {
		return nil, err
	}
	colOrder := make([]int, 0, len(desc.Columns))
	if len(s.Columns) == 0 {
		for i := range desc.Columns {
			colOrder = append(colOrder, i)
		}
	} else {
		for _, name := range s.Columns {
			i := desc.ColumnIndex(name)
			if i < 0 {
				return nil, fmt.Errorf("sql: column %q not in table %s", name, s.Table)
			}
			colOrder = append(colOrder, i)
		}
	}
	affected := 0
	for _, exprs := range s.Rows {
		if len(exprs) != len(colOrder) {
			return nil, fmt.Errorf("sql: INSERT has %d values for %d columns", len(exprs), len(colOrder))
		}
		row := make([]Datum, len(desc.Columns))
		for i := range row {
			row[i] = DNull
		}
		env := &evalEnv{args: args}
		for i, ex := range exprs {
			v, err := evalExpr(env, ex)
			if err != nil {
				return nil, err
			}
			coerced, err := v.coerce(desc.Columns[colOrder[i]].Type)
			if err != nil {
				return nil, err
			}
			row[colOrder[i]] = coerced
		}
		if err := e.writeRow(ctx, t, desc, row, true); err != nil {
			return nil, err
		}
		affected++
	}
	e.chargeRows(affected)
	return &Result{RowsAffected: affected}, nil
}

// writeRow persists a row and its index entries. checkDup rejects an
// existing primary key.
func (e *Executor) writeRow(ctx context.Context, t *txn.Txn, desc *TableDescriptor, row []Datum, checkDup bool) error {
	pk, err := primaryKey(e.tenant, desc, row)
	if err != nil {
		return err
	}
	if checkDup {
		if _, exists, err := t.Get(ctx, pk); err != nil {
			return err
		} else if exists {
			return fmt.Errorf("sql: duplicate primary key in %s", desc.Name)
		}
	}
	val, err := encodeRowValue(row)
	if err != nil {
		return err
	}
	if err := t.Put(ctx, pk, val); err != nil {
		return err
	}
	for i := range desc.Indexes {
		ik, err := indexKey(e.tenant, desc, &desc.Indexes[i], row)
		if err != nil {
			return err
		}
		if err := t.Put(ctx, ik, []byte{}); err != nil {
			return err
		}
	}
	return nil
}

// deleteRow removes a row and its index entries.
func (e *Executor) deleteRow(ctx context.Context, t *txn.Txn, desc *TableDescriptor, r tableRow) error {
	if err := t.Delete(ctx, r.pk); err != nil {
		return err
	}
	for i := range desc.Indexes {
		ik, err := indexKey(e.tenant, desc, &desc.Indexes[i], r.row)
		if err != nil {
			return err
		}
		if err := t.Delete(ctx, ik); err != nil {
			return err
		}
	}
	return nil
}

func (e *Executor) update(ctx context.Context, t *txn.Txn, s *Update, args []Datum) (*Result, error) {
	desc, err := e.catalog.Lookup(ctx, s.Table)
	if err != nil {
		return nil, err
	}
	rows, err := e.readTableRows(ctx, t, desc, s.Where, args)
	if err != nil {
		return nil, err
	}
	rows, err = e.filterRows(rows, desc, "", s.Where, args)
	if err != nil {
		return nil, err
	}
	cols := make(map[string]int)
	bindColumns(desc, "", 0, cols, map[string]bool{})
	affected := 0
	for _, r := range rows {
		newRow := append([]Datum(nil), r.row...)
		env := &evalEnv{cols: cols, row: r.row, args: args}
		pkChanged := false
		for _, set := range s.Set {
			i := desc.ColumnIndex(set.Column)
			if i < 0 {
				return nil, fmt.Errorf("sql: column %q not in table %s", set.Column, s.Table)
			}
			v, err := evalExpr(env, set.Expr)
			if err != nil {
				return nil, err
			}
			coerced, err := v.coerce(desc.Columns[i].Type)
			if err != nil {
				return nil, err
			}
			if desc.IsPrimaryKeyColumn(i) && !coerced.Equal(r.row[i]) {
				pkChanged = true
			}
			newRow[i] = coerced
		}
		if pkChanged {
			if err := e.deleteRow(ctx, t, desc, r); err != nil {
				return nil, err
			}
			if err := e.writeRow(ctx, t, desc, newRow, true); err != nil {
				return nil, err
			}
		} else {
			// Refresh index entries whose keys changed.
			for i := range desc.Indexes {
				oldKey, err := indexKey(e.tenant, desc, &desc.Indexes[i], r.row)
				if err != nil {
					return nil, err
				}
				newKey, err := indexKey(e.tenant, desc, &desc.Indexes[i], newRow)
				if err != nil {
					return nil, err
				}
				if !oldKey.Equal(newKey) {
					if err := t.Delete(ctx, oldKey); err != nil {
						return nil, err
					}
					if err := t.Put(ctx, newKey, []byte{}); err != nil {
						return nil, err
					}
				}
			}
			val, err := encodeRowValue(newRow)
			if err != nil {
				return nil, err
			}
			if err := t.Put(ctx, r.pk, val); err != nil {
				return nil, err
			}
		}
		affected++
	}
	e.chargeRows(affected)
	return &Result{RowsAffected: affected}, nil
}

func (e *Executor) delete(ctx context.Context, t *txn.Txn, s *Delete, args []Datum) (*Result, error) {
	desc, err := e.catalog.Lookup(ctx, s.Table)
	if err != nil {
		return nil, err
	}
	rows, err := e.readTableRows(ctx, t, desc, s.Where, args)
	if err != nil {
		return nil, err
	}
	rows, err = e.filterRows(rows, desc, "", s.Where, args)
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		if err := e.deleteRow(ctx, t, desc, r); err != nil {
			return nil, err
		}
	}
	e.chargeRows(len(rows))
	return &Result{RowsAffected: len(rows)}, nil
}

func (e *Executor) createIndex(ctx context.Context, s *CreateIndex) (*Result, error) {
	desc, err := e.catalog.Lookup(ctx, s.Table)
	if err != nil {
		return nil, err
	}
	idx := IndexDescriptor{Name: s.Name}
	for _, col := range s.Columns {
		i := desc.ColumnIndex(col)
		if i < 0 {
			return nil, fmt.Errorf("sql: column %q not in table %s", col, s.Table)
		}
		idx.Columns = append(idx.Columns, i)
	}
	updated, err := e.catalog.CreateIndex(ctx, s.Table, idx)
	if err != nil {
		return nil, err
	}
	// Backfill existing rows.
	newIdx := &updated.Indexes[len(updated.Indexes)-1]
	err = e.coord.RunTxn(ctx, func(ctx context.Context, t *txn.Txn) error {
		kvs, err := e.scanSpan(ctx, t, tableSpan(e.tenant, updated))
		if err != nil {
			return err
		}
		for _, kv := range kvs {
			row, err := decodeRowValue(kv.Value)
			if err != nil {
				return err
			}
			ik, err := indexKey(e.tenant, updated, newIdx, row)
			if err != nil {
				return err
			}
			if err := t.Put(ctx, ik, []byte{}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Result{}, nil
}

func (e *Executor) dropTable(ctx context.Context, s *DropTable) (*Result, error) {
	desc, err := e.catalog.DropTable(ctx, s.Name)
	if err != nil {
		return nil, err
	}
	// Delete all table data (every index) in one ranged delete.
	prefix := keys.MakeTenantPrefix(e.tenant)
	prefix = keys.EncodeUint64(prefix, uint64(desc.ID))
	err = e.coord.RunTxn(ctx, func(ctx context.Context, t *txn.Txn) error {
		_, err := t.Send(ctx, kvpb.Request{
			Method: kvpb.DeleteRange, Key: prefix, EndKey: prefix.PrefixEnd(),
		})
		return err
	})
	if err != nil {
		return nil, err
	}
	return &Result{}, nil
}

// selectStmt plans and runs a SELECT.
func (e *Executor) selectStmt(ctx context.Context, t *txn.Txn, s *Select, args []Datum) (*Result, error) {
	desc, err := e.catalog.Lookup(ctx, s.Table)
	if err != nil {
		return nil, err
	}
	cols := make(map[string]int)
	ambiguous := map[string]bool{}
	bindColumns(desc, s.TableAs, 0, cols, ambiguous)

	var rows [][]Datum
	var joinDesc *TableDescriptor
	if s.Join == nil {
		trs, err := e.readTableRows(ctx, t, desc, s.Where, args)
		if err != nil {
			return nil, err
		}
		trs, err = e.filterRows(trs, desc, s.TableAs, s.Where, args)
		if err != nil {
			return nil, err
		}
		for _, tr := range trs {
			rows = append(rows, tr.row)
		}
	} else {
		joinDesc, err = e.catalog.Lookup(ctx, s.Join.Table)
		if err != nil {
			return nil, err
		}
		bindColumns(joinDesc, s.Join.As, len(desc.Columns), cols, ambiguous)
		rows, err = e.joinRows(ctx, t, desc, joinDesc, s, args, cols)
		if err != nil {
			return nil, err
		}
		// Apply WHERE on joined rows.
		if s.Where != nil {
			filtered := rows[:0]
			for _, r := range rows {
				env := &evalEnv{cols: cols, row: r, args: args}
				v, err := evalExpr(env, s.Where)
				if err != nil {
					return nil, err
				}
				if !v.Null && v.Kind == TypeBool && v.B {
					filtered = append(filtered, r)
				}
			}
			rows = filtered
		}
	}

	// Aggregate or plain projection.
	hasAgg := len(s.GroupBy) > 0
	for _, se := range s.Exprs {
		if !se.Star && exprHasAggregate(se.Expr) {
			hasAgg = true
		}
	}
	var res *Result
	if hasAgg {
		res, err = e.aggregate(s, rows, cols, args)
		if err != nil {
			return nil, err
		}
		if len(s.OrderBy) > 0 {
			if err := orderAggResult(res, s); err != nil {
				return nil, err
			}
		}
	} else {
		if len(s.OrderBy) > 0 {
			if err := orderSourceRows(rows, s, cols, args); err != nil {
				return nil, err
			}
		}
		res, err = e.project(s, desc, joinDesc, rows, cols, args)
		if err != nil {
			return nil, err
		}
	}

	if s.Distinct {
		res.Rows = distinctRows(res.Rows)
	}
	if s.Limit >= 0 && int64(len(res.Rows)) > s.Limit {
		res.Rows = res.Rows[:s.Limit]
	}
	return res, nil
}

// joinRows executes an inner join, preferring a hash join on an equality
// condition.
func (e *Executor) joinRows(ctx context.Context, t *txn.Txn, left, right *TableDescriptor, s *Select, args []Datum, cols map[string]int) ([][]Datum, error) {
	// Each input reads under the WHERE clause so per-table constraints
	// (e.g. an indexed equality on the fact table) constrain the plan —
	// the "index joins resulting in remote KV lookups" shape of Q9.
	// Constraints referencing the other table's columns simply don't bind.
	leftRows, err := e.readTableRowsAliased(ctx, t, left, s.TableAs, s.Where, args)
	if err != nil {
		return nil, err
	}
	rightRows, err := e.readTableRowsAliased(ctx, t, right, s.Join.As, s.Where, args)
	if err != nil {
		return nil, err
	}
	leftName, rightName := left.Name, right.Name
	if s.TableAs != "" {
		leftName = s.TableAs
	}
	if s.Join.As != "" {
		rightName = s.Join.As
	}

	// Try to extract a.col = b.col for a hash join.
	if lcol, rcol, ok := extractJoinEquality(s.Join.On, left, right, leftName, rightName); ok {
		ht := make(map[string][][]Datum, len(rightRows))
		for _, rr := range rightRows {
			k := rr.row[rcol].groupKey()
			ht[k] = append(ht[k], rr.row)
		}
		var out [][]Datum
		for _, lr := range leftRows {
			for _, rrow := range ht[lr.row[lcol].groupKey()] {
				combined := make([]Datum, 0, len(lr.row)+len(rrow))
				combined = append(combined, lr.row...)
				combined = append(combined, rrow...)
				out = append(out, combined)
			}
		}
		e.chargeRows(len(out))
		return out, nil
	}

	// Fallback: nested-loop join with the ON condition as a filter.
	var out [][]Datum
	for _, lr := range leftRows {
		for _, rr := range rightRows {
			combined := make([]Datum, 0, len(lr.row)+len(rr.row))
			combined = append(combined, lr.row...)
			combined = append(combined, rr.row...)
			env := &evalEnv{cols: cols, row: combined, args: args}
			v, err := evalExpr(env, s.Join.On)
			if err != nil {
				return nil, err
			}
			if !v.Null && v.Kind == TypeBool && v.B {
				out = append(out, combined)
			}
		}
	}
	e.chargeRows(len(out))
	return out, nil
}

// extractJoinEquality recognizes ON conditions of the form l.col = r.col.
func extractJoinEquality(on Expr, left, right *TableDescriptor, leftName, rightName string) (lcol, rcol int, ok bool) {
	b, isBin := on.(*BinaryExpr)
	if !isBin || b.Op != "=" {
		return 0, 0, false
	}
	lref, lok := b.Left.(*ColumnRef)
	rref, rok := b.Right.(*ColumnRef)
	if !lok || !rok {
		return 0, 0, false
	}
	resolve := func(ref *ColumnRef) (table int, col int, ok bool) {
		if ref.Table == leftName || ref.Table == left.Name {
			if i := left.ColumnIndex(ref.Column); i >= 0 {
				return 0, i, true
			}
		}
		if ref.Table == rightName || ref.Table == right.Name {
			if i := right.ColumnIndex(ref.Column); i >= 0 {
				return 1, i, true
			}
		}
		if ref.Table == "" {
			if i := left.ColumnIndex(ref.Column); i >= 0 {
				return 0, i, true
			}
			if i := right.ColumnIndex(ref.Column); i >= 0 {
				return 1, i, true
			}
		}
		return 0, 0, false
	}
	lt, lc, lok2 := resolve(lref)
	rt, rc, rok2 := resolve(rref)
	if !lok2 || !rok2 || lt == rt {
		return 0, 0, false
	}
	if lt == 0 {
		return lc, rc, true
	}
	return rc, lc, true
}

// project evaluates plain (non-aggregate) select expressions.
func (e *Executor) project(s *Select, desc, joinDesc *TableDescriptor, rows [][]Datum, cols map[string]int, args []Datum) (*Result, error) {
	res := &Result{}
	// Column headers.
	for _, se := range s.Exprs {
		switch {
		case se.Star:
			for _, c := range desc.Columns {
				res.Columns = append(res.Columns, c.Name)
			}
			if joinDesc != nil {
				for _, c := range joinDesc.Columns {
					res.Columns = append(res.Columns, c.Name)
				}
			}
		case se.As != "":
			res.Columns = append(res.Columns, se.As)
		default:
			res.Columns = append(res.Columns, exprName(se.Expr))
		}
	}
	for _, row := range rows {
		var out []Datum
		env := &evalEnv{cols: cols, row: row, args: args}
		for _, se := range s.Exprs {
			if se.Star {
				out = append(out, row...)
				continue
			}
			v, err := evalExpr(env, se.Expr)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		res.Rows = append(res.Rows, out)
	}
	return res, nil
}

func exprName(e Expr) string {
	switch x := e.(type) {
	case *ColumnRef:
		if x.Table != "" {
			return x.Table + "." + x.Column
		}
		return x.Column
	case *FuncExpr:
		return strings.ToLower(x.Name)
	default:
		return "column"
	}
}

// aggState accumulates one aggregate function over a group.
type aggState struct {
	fn    string
	count int64
	sum   float64
	sumI  int64
	isInt bool
	min   Datum
	max   Datum
	seen  bool
}

func (a *aggState) update(d Datum) {
	if d.Null {
		return
	}
	a.count++
	if d.isNumeric() {
		if d.Kind == TypeInt {
			a.sumI += d.I
		} else {
			a.isInt = false
		}
		a.sum += d.asFloat()
	}
	if !a.seen || d.Compare(a.min) < 0 {
		a.min = d
	}
	if !a.seen || d.Compare(a.max) > 0 {
		a.max = d
	}
	a.seen = true
}

func (a *aggState) result() Datum {
	switch a.fn {
	case "COUNT":
		return DInt(a.count)
	case "SUM":
		if !a.seen {
			return DNull
		}
		if a.isInt {
			return DInt(a.sumI)
		}
		return DFloat(a.sum)
	case "AVG":
		if a.count == 0 {
			return DNull
		}
		return DFloat(a.sum / float64(a.count))
	case "MIN":
		if !a.seen {
			return DNull
		}
		return a.min
	case "MAX":
		if !a.seen {
			return DNull
		}
		return a.max
	default:
		return DNull
	}
}

// aggregate evaluates GROUP BY and aggregate functions.
func (e *Executor) aggregate(s *Select, rows [][]Datum, cols map[string]int, args []Datum) (*Result, error) {
	type group struct {
		key      []Datum // GROUP BY values
		firstRow []Datum
		aggs     []*aggState
	}
	// One aggState slot per select expression (nil for non-aggregates).
	mkAggs := func() ([]*aggState, error) {
		out := make([]*aggState, len(s.Exprs))
		for i, se := range s.Exprs {
			if se.Star {
				return nil, fmt.Errorf("sql: * not allowed with aggregates")
			}
			if fe, ok := se.Expr.(*FuncExpr); ok {
				out[i] = &aggState{fn: fe.Name, isInt: true}
			}
		}
		return out, nil
	}

	groups := make(map[string]*group)
	var order []string
	for _, row := range rows {
		env := &evalEnv{cols: cols, row: row, args: args}
		var keyParts []string
		var keyVals []Datum
		for _, ge := range s.GroupBy {
			v, err := evalExpr(env, ge)
			if err != nil {
				return nil, err
			}
			keyParts = append(keyParts, v.groupKey())
			keyVals = append(keyVals, v)
		}
		k := strings.Join(keyParts, "|")
		g, ok := groups[k]
		if !ok {
			aggs, err := mkAggs()
			if err != nil {
				return nil, err
			}
			g = &group{key: keyVals, firstRow: row, aggs: aggs}
			groups[k] = g
			order = append(order, k)
		}
		for i, se := range s.Exprs {
			if g.aggs[i] == nil {
				continue
			}
			fe := se.Expr.(*FuncExpr)
			if fe.Star {
				g.aggs[i].count++
				g.aggs[i].seen = true
				continue
			}
			v, err := evalExpr(env, fe.Arg)
			if err != nil {
				return nil, err
			}
			g.aggs[i].update(v)
			e.chargeAgg(1)
		}
	}
	// No GROUP BY over zero rows still yields one (empty-aggregate) row.
	if len(s.GroupBy) == 0 && len(order) == 0 {
		aggs, err := mkAggs()
		if err != nil {
			return nil, err
		}
		groups[""] = &group{aggs: aggs}
		order = append(order, "")
	}

	res := &Result{}
	for _, se := range s.Exprs {
		if se.As != "" {
			res.Columns = append(res.Columns, se.As)
		} else {
			res.Columns = append(res.Columns, exprName(se.Expr))
		}
	}
	for _, k := range order {
		g := groups[k]
		var out []Datum
		for i, se := range s.Exprs {
			if g.aggs[i] != nil {
				out = append(out, g.aggs[i].result())
				continue
			}
			// Non-aggregate expression: evaluate on the group's first row.
			row := g.firstRow
			if row == nil {
				out = append(out, DNull)
				continue
			}
			env := &evalEnv{cols: cols, row: row, args: args}
			v, err := evalExpr(env, se.Expr)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		res.Rows = append(res.Rows, out)
	}
	return res, nil
}

// orderSourceRows sorts the pre-projection rows of a non-aggregate query.
// ORDER BY terms may reference any source column, a select alias, or an
// arbitrary expression over source columns.
func orderSourceRows(rows [][]Datum, s *Select, cols map[string]int, args []Datum) error {
	// Aliases resolve to their select expressions.
	aliases := make(map[string]Expr)
	for _, se := range s.Exprs {
		if se.As != "" && !se.Star {
			aliases[se.As] = se.Expr
		}
	}
	resolve := func(oc OrderClause) Expr {
		if ref, ok := oc.Expr.(*ColumnRef); ok && ref.Table == "" {
			if ex, ok := aliases[ref.Column]; ok {
				if _, isCol := cols[ref.Column]; !isCol {
					return ex
				}
			}
		}
		return oc.Expr
	}
	keys := make([][]Datum, len(rows))
	for i, row := range rows {
		env := &evalEnv{cols: cols, row: row, args: args}
		for _, oc := range s.OrderBy {
			v, err := evalExpr(env, resolve(oc))
			if err != nil {
				return err
			}
			keys[i] = append(keys[i], v)
		}
	}
	idx := make([]int, len(rows))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		for k, oc := range s.OrderBy {
			cmp := keys[idx[a]][k].Compare(keys[idx[b]][k])
			if cmp == 0 {
				continue
			}
			if oc.Desc {
				return cmp > 0
			}
			return cmp < 0
		}
		return false
	})
	sorted := make([][]Datum, len(rows))
	for i, j := range idx {
		sorted[i] = rows[j]
	}
	copy(rows, sorted)
	return nil
}

// orderAggResult sorts aggregate output rows; ORDER BY terms must name an
// output column or alias of the aggregation.
func orderAggResult(res *Result, s *Select) error {
	resCols := make(map[string]int)
	for i, name := range res.Columns {
		resCols[name] = i
	}
	keyIdx := make([]int, len(s.OrderBy))
	for k, oc := range s.OrderBy {
		ref, ok := oc.Expr.(*ColumnRef)
		if !ok || ref.Table != "" {
			return fmt.Errorf("sql: ORDER BY %s must reference an output column of the aggregation", exprName(oc.Expr))
		}
		j, ok := resCols[ref.Column]
		if !ok {
			return fmt.Errorf("sql: ORDER BY column %q is not in the aggregation output", ref.Column)
		}
		keyIdx[k] = j
	}
	sort.SliceStable(res.Rows, func(a, b int) bool {
		for k, oc := range s.OrderBy {
			cmp := res.Rows[a][keyIdx[k]].Compare(res.Rows[b][keyIdx[k]])
			if cmp == 0 {
				continue
			}
			if oc.Desc {
				return cmp > 0
			}
			return cmp < 0
		}
		return false
	})
	return nil
}

func distinctRows(rows [][]Datum) [][]Datum {
	seen := make(map[string]bool, len(rows))
	out := rows[:0]
	for _, r := range rows {
		var parts []string
		for _, d := range r {
			parts = append(parts, d.groupKey())
		}
		k := strings.Join(parts, "|")
		if !seen[k] {
			seen[k] = true
			out = append(out, r)
		}
	}
	return out
}
