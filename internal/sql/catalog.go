package sql

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"sort"
	"sync"

	"crdbserverless/internal/keys"
	"crdbserverless/internal/region"
	"crdbserverless/internal/txn"
)

// Reserved table IDs within each tenant's keyspace.
const (
	// DescriptorTableID holds the catalog itself: system.descriptor. It is
	// configured with GLOBAL locality so SQL nodes in any region can read
	// schemas with consistent local reads at startup (§3.2.5).
	DescriptorTableID keys.TableID = 1
	// SQLInstancesTableID holds system.sql_instances, the registry of live
	// SQL nodes used for DistSQL routing. REGIONAL BY ROW locality keeps a
	// starting node's registration write local (§3.2.5).
	SQLInstancesTableID keys.TableID = 2
	// firstUserTableID is where user table IDs begin.
	firstUserTableID keys.TableID = 100
)

// IndexDescriptor describes a secondary index.
type IndexDescriptor struct {
	ID      keys.IndexID
	Name    string
	Columns []int // offsets into the table's Columns
}

// TableDescriptor is the schema of one table, stored in system.descriptor.
type TableDescriptor struct {
	ID         keys.TableID
	Name       string
	Columns    []ColumnDef
	PrimaryKey []int // offsets into Columns
	Indexes    []IndexDescriptor
	// Locality and HomeRegion configure multi-region behavior (§3.2.5).
	Locality   region.Locality
	HomeRegion region.Region
}

// ColumnIndex returns the offset of the named column, or -1.
func (d *TableDescriptor) ColumnIndex(name string) int {
	for i, c := range d.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// IsPrimaryKeyColumn reports whether column offset i is part of the PK.
func (d *TableDescriptor) IsPrimaryKeyColumn(i int) bool {
	for _, pk := range d.PrimaryKey {
		if pk == i {
			return true
		}
	}
	return false
}

func encodeDescriptor(d *TableDescriptor) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(d); err != nil {
		return nil, fmt.Errorf("sql: encoding descriptor %s: %w", d.Name, err)
	}
	return buf.Bytes(), nil
}

func decodeDescriptor(b []byte) (*TableDescriptor, error) {
	var d TableDescriptor
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&d); err != nil {
		return nil, fmt.Errorf("sql: decoding descriptor: %w", err)
	}
	return &d, nil
}

// descriptorKey returns the system.descriptor row key for a table name.
func descriptorKey(tenant keys.TenantID, name string) keys.Key {
	k := keys.MakeTableIndexPrefix(tenant, DescriptorTableID, keys.PrimaryIndexID)
	return keys.EncodeString(k, name)
}

// nextIDKey holds the tenant's table-ID allocation counter.
func nextIDKey(tenant keys.TenantID) keys.Key {
	k := keys.MakeTableIndexPrefix(tenant, DescriptorTableID, keys.IndexID(2))
	return keys.EncodeString(k, "next_table_id")
}

// Catalog reads and writes a tenant's schema. A Catalog caches descriptors;
// DDL through the same Catalog invalidates the cache (cross-node schema
// leasing is out of scope — CRDB's lease protocol fills that role).
type Catalog struct {
	tenant keys.TenantID
	coord  *txn.Coordinator

	mu    sync.Mutex
	cache map[string]*TableDescriptor
}

// NewCatalog returns a catalog for the tenant backed by the coordinator.
func NewCatalog(coord *txn.Coordinator, tenant keys.TenantID) *Catalog {
	return &Catalog{tenant: tenant, coord: coord, cache: make(map[string]*TableDescriptor)}
}

// CreateTable allocates an ID and persists a descriptor for the statement.
func (c *Catalog) CreateTable(ctx context.Context, stmt *CreateTable) (*TableDescriptor, error) {
	desc := &TableDescriptor{Name: stmt.Name, Columns: stmt.Columns}
	seen := map[string]bool{}
	for _, col := range stmt.Columns {
		if seen[col.Name] {
			return nil, fmt.Errorf("sql: duplicate column %q", col.Name)
		}
		seen[col.Name] = true
	}
	for _, pk := range stmt.PrimaryKey {
		i := desc.ColumnIndex(pk)
		if i < 0 {
			return nil, fmt.Errorf("sql: primary key column %q not found", pk)
		}
		desc.PrimaryKey = append(desc.PrimaryKey, i)
	}
	err := c.coord.RunTxn(ctx, func(ctx context.Context, t *txn.Txn) error {
		// Name must be free.
		if _, ok, err := t.Get(ctx, descriptorKey(c.tenant, stmt.Name)); err != nil {
			return err
		} else if ok {
			return fmt.Errorf("sql: table %q already exists", stmt.Name)
		}
		// Allocate the ID.
		id, err := c.allocateTableID(ctx, t)
		if err != nil {
			return err
		}
		desc.ID = id
		return c.writeDescriptor(ctx, t, desc)
	})
	if err != nil {
		return nil, err
	}
	c.noteDescriptor(desc)
	return desc, nil
}

func (c *Catalog) allocateTableID(ctx context.Context, t *txn.Txn) (keys.TableID, error) {
	key := nextIDKey(c.tenant)
	raw, ok, err := t.Get(ctx, key)
	if err != nil {
		return 0, err
	}
	next := uint64(firstUserTableID)
	if ok {
		_, v, err := keys.DecodeUint64(keys.Key(raw))
		if err != nil {
			return 0, err
		}
		next = v
	}
	if err := t.Put(ctx, key, keys.EncodeUint64(nil, next+1)); err != nil {
		return 0, err
	}
	return keys.TableID(next), nil
}

func (c *Catalog) writeDescriptor(ctx context.Context, t *txn.Txn, desc *TableDescriptor) error {
	raw, err := encodeDescriptor(desc)
	if err != nil {
		return err
	}
	return t.Put(ctx, descriptorKey(c.tenant, desc.Name), raw)
}

// CreateIndex adds a secondary index descriptor. Backfilling existing rows
// is the executor's job (see Executor.createIndex).
func (c *Catalog) CreateIndex(ctx context.Context, table string, idx IndexDescriptor) (*TableDescriptor, error) {
	var updated *TableDescriptor
	err := c.coord.RunTxn(ctx, func(ctx context.Context, t *txn.Txn) error {
		desc, err := c.readDescriptor(ctx, t, table)
		if err != nil {
			return err
		}
		for _, existing := range desc.Indexes {
			if existing.Name == idx.Name {
				return fmt.Errorf("sql: index %q already exists", idx.Name)
			}
		}
		// Index IDs: primary is 1; secondaries start at 2.
		idx.ID = keys.IndexID(2 + len(desc.Indexes))
		desc.Indexes = append(desc.Indexes, idx)
		updated = desc
		return c.writeDescriptor(ctx, t, desc)
	})
	if err != nil {
		return nil, err
	}
	c.noteDescriptor(updated)
	return updated, nil
}

// DropTable removes the descriptor. Row data is deleted by the executor.
func (c *Catalog) DropTable(ctx context.Context, name string) (*TableDescriptor, error) {
	var dropped *TableDescriptor
	err := c.coord.RunTxn(ctx, func(ctx context.Context, t *txn.Txn) error {
		desc, err := c.readDescriptor(ctx, t, name)
		if err != nil {
			return err
		}
		dropped = desc
		return t.Delete(ctx, descriptorKey(c.tenant, name))
	})
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	delete(c.cache, name)
	c.mu.Unlock()
	return dropped, nil
}

// Lookup returns the descriptor for a table, from cache or storage.
func (c *Catalog) Lookup(ctx context.Context, name string) (*TableDescriptor, error) {
	c.mu.Lock()
	if d, ok := c.cache[name]; ok {
		c.mu.Unlock()
		return d, nil
	}
	c.mu.Unlock()
	var desc *TableDescriptor
	err := c.coord.RunTxn(ctx, func(ctx context.Context, t *txn.Txn) error {
		d, err := c.readDescriptor(ctx, t, name)
		if err != nil {
			return err
		}
		desc = d
		return nil
	})
	if err != nil {
		return nil, err
	}
	c.noteDescriptor(desc)
	return desc, nil
}

func (c *Catalog) readDescriptor(ctx context.Context, t *txn.Txn, name string) (*TableDescriptor, error) {
	raw, ok, err := t.Get(ctx, descriptorKey(c.tenant, name))
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("sql: table %q does not exist", name)
	}
	return decodeDescriptor(raw)
}

// List returns the names of the tenant's tables, sorted.
func (c *Catalog) List(ctx context.Context) ([]string, error) {
	prefix := keys.MakeTableIndexPrefix(c.tenant, DescriptorTableID, keys.PrimaryIndexID)
	span := keys.Span{Key: prefix, EndKey: prefix.PrefixEnd()}
	var names []string
	err := c.coord.RunTxn(ctx, func(ctx context.Context, t *txn.Txn) error {
		names = names[:0]
		rows, err := t.Scan(ctx, span, 0)
		if err != nil {
			return err
		}
		for _, kv := range rows {
			d, err := decodeDescriptor(kv.Value)
			if err != nil {
				return err
			}
			names = append(names, d.Name)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	return names, nil
}

// Invalidate clears the descriptor cache (tests and DDL coordination).
func (c *Catalog) Invalidate() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cache = make(map[string]*TableDescriptor)
}

func (c *Catalog) noteDescriptor(d *TableDescriptor) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cache[d.Name] = d
}

// Tenant returns the catalog's tenant.
func (c *Catalog) Tenant() keys.TenantID { return c.tenant }
