package sql

import (
	"context"
	"fmt"
	"testing"
	"time"

	"crdbserverless/internal/kvserver"
	"crdbserverless/internal/rowfilter"
	"crdbserverless/internal/txn"
)

// newPushdownDB builds a DB with the row decoder registered and pushdown on.
func newPushdownDB(t *testing.T, pushdown bool) (*kvserver.Cluster, *Executor, *Session) {
	t.Helper()
	cheap := kvserver.CostConfig{ReadBatchOverhead: time.Nanosecond, WriteBatchOverhead: time.Nanosecond}
	var nodes []*kvserver.Node
	for i := 1; i <= 3; i++ {
		nodes = append(nodes, kvserver.NewNode(kvserver.NodeConfig{
			ID: kvserver.NodeID(i), VCPUs: 2, Cost: cheap,
		}))
	}
	c, err := kvserver.NewCluster(kvserver.ClusterConfig{}, nodes)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	c.SetRowDecoder(KVRowDecoder())
	ds := kvserver.NewDistSender(c, kvserver.Identity{Tenant: 2})
	coord := txn.NewCoordinator(ds, c.Clock(), 2)
	catalog := NewCatalog(coord, 2)
	exec := NewExecutor(catalog, coord, ExecutorConfig{FilterPushdown: pushdown})
	return c, exec, NewSession(exec, "app")
}

func loadFilterTable(t *testing.T, s *Session, n int) {
	t.Helper()
	mustExec(t, s, "CREATE TABLE t (a INT PRIMARY KEY, b INT, c STRING)")
	for i := 0; i < n; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO t VALUES (%d, %d, 'g%d')", i, i*10, i%3))
	}
}

func TestPushdownSameResultsAsSQLFilter(t *testing.T) {
	queries := []string{
		"SELECT a FROM t WHERE b > 100 AND b <= 300 ORDER BY a",
		"SELECT a FROM t WHERE c = 'g1' ORDER BY a",
		"SELECT a FROM t WHERE b >= 200 AND c != 'g0' ORDER BY a",
		"SELECT COUNT(*) FROM t WHERE b < 250",
		// Mixed: one pushable conjunct, one not (arithmetic on the column).
		"SELECT a FROM t WHERE b > 100 AND a + 1 < 20 ORDER BY a",
		// Constant on the left (flipped operator).
		"SELECT a FROM t WHERE 100 < b ORDER BY a LIMIT 5",
	}
	_, _, plain := newPushdownDB(t, false)
	_, _, pushed := newPushdownDB(t, true)
	loadFilterTable(t, plain, 40)
	loadFilterTable(t, pushed, 40)
	for _, q := range queries {
		a := rowStrings(mustExec(t, plain, q))
		b := rowStrings(mustExec(t, pushed, q))
		if fmt.Sprint(a) != fmt.Sprint(b) {
			t.Fatalf("%s: plain=%v pushed=%v", q, a, b)
		}
	}
}

func TestPushdownReducesReturnedBytes(t *testing.T) {
	// A selective filter on a full scan should shrink the bytes that cross
	// the SQL/KV boundary (the whole point of §8's proposal).
	cluster, execPlain, plain := newPushdownDB(t, false)
	_, execPushed, pushed := newPushdownDB(t, true)
	_ = cluster
	loadFilterTable(t, plain, 200)
	loadFilterTable(t, pushed, 200)

	q := "SELECT a FROM t WHERE b = 500" // matches exactly one of 200 rows
	plainBefore := execPlain.RowsProcessed()
	mustExec(t, plain, q)
	plainRows := execPlain.RowsProcessed() - plainBefore

	pushedBefore := execPushed.RowsProcessed()
	mustExec(t, pushed, q)
	pushedRows := execPushed.RowsProcessed() - pushedBefore

	if pushedRows >= plainRows {
		t.Fatalf("pushdown processed %d rows vs %d without — no reduction", pushedRows, plainRows)
	}
	if pushedRows > 5 {
		t.Fatalf("pushdown returned %d rows for a 1-row predicate", pushedRows)
	}
}

func TestPushdownWithoutDecoderFailsOpen(t *testing.T) {
	// A cluster without a registered decoder ignores the filter; results
	// are still correct because SQL re-applies the predicate.
	cheap := kvserver.CostConfig{ReadBatchOverhead: time.Nanosecond, WriteBatchOverhead: time.Nanosecond}
	n1 := kvserver.NewNode(kvserver.NodeConfig{ID: 1, VCPUs: 2, Cost: cheap})
	c, err := kvserver.NewCluster(kvserver.ClusterConfig{ReplicationFactor: 1}, []*kvserver.Node{n1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	ds := kvserver.NewDistSender(c, kvserver.Identity{Tenant: 2})
	coord := txn.NewCoordinator(ds, c.Clock(), 2)
	exec := NewExecutor(NewCatalog(coord, 2), coord, ExecutorConfig{FilterPushdown: true})
	s := NewSession(exec, "app")
	loadFilterTable(t, s, 20)
	res := mustExec(t, s, "SELECT COUNT(*) FROM t WHERE b >= 100")
	if res.Rows[0][0].I != 10 {
		t.Fatalf("count = %d, want 10", res.Rows[0][0].I)
	}
}

func TestCompilePushdownFilter(t *testing.T) {
	desc := &TableDescriptor{
		Name:    "t",
		Columns: []ColumnDef{{Name: "a", Type: TypeInt}, {Name: "b", Type: TypeString}},
	}
	// Eligible: a > 5 AND b = 'x'.
	stmt, err := Parse("SELECT a FROM t WHERE a > 5 AND b = 'x'")
	if err != nil {
		t.Fatal(err)
	}
	enc := compilePushdownFilter(desc, stmt.(*Select).Where, nil)
	if enc == nil {
		t.Fatal("no filter compiled")
	}
	f, err := rowfilter.Decode(enc)
	if err != nil || len(f.Conds) != 2 {
		t.Fatalf("filter = %+v, %v", f, err)
	}
	// Ineligible: OR at the top, function calls, column-to-column.
	for _, q := range []string{
		"SELECT a FROM t WHERE a > 5 OR b = 'x'",
		"SELECT a FROM t WHERE a + 1 > 5",
		"SELECT a FROM t WHERE a = a",
	} {
		stmt, err := Parse(q)
		if err != nil {
			t.Fatal(err)
		}
		if enc := compilePushdownFilter(desc, stmt.(*Select).Where, nil); enc != nil {
			t.Fatalf("%s compiled a filter", q)
		}
	}
	// Placeholders are constants.
	stmt, _ = Parse("SELECT a FROM t WHERE a <= $1")
	enc = compilePushdownFilter(desc, stmt.(*Select).Where, []Datum{DInt(9)})
	f, _ = rowfilter.Decode(enc)
	if len(f.Conds) != 1 || f.Conds[0].Value.I != 9 || f.Conds[0].Op != rowfilter.OpLe {
		t.Fatalf("placeholder filter = %+v", f)
	}
	// Flipped constant-on-left comparisons.
	stmt, _ = Parse("SELECT a FROM t WHERE 5 < a")
	f, _ = rowfilter.Decode(compilePushdownFilter(desc, stmt.(*Select).Where, nil))
	if len(f.Conds) != 1 || f.Conds[0].Op != rowfilter.OpGt {
		t.Fatalf("flipped filter = %+v", f)
	}
	_ = context.Background()
}
