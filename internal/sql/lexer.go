// Package sql implements the per-tenant SQL layer (§3.1 of the paper): a
// lexer/parser for a practical SQL subset, a catalog of table descriptors
// persisted in the tenant's keyspace, a planner/executor that compiles
// statements into KV batches through the transaction layer, sessions with
// serialization for connection migration (§4.2.4), and the multi-region
// system database (§3.2.5).
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexical tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokSymbol // punctuation and operators
)

type token struct {
	kind tokenKind
	text string // keywords are upper-cased; identifiers keep original case-folded lower
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "INSERT": true, "INTO": true,
	"VALUES": true, "CREATE": true, "TABLE": true, "INDEX": true, "ON": true,
	"PRIMARY": true, "KEY": true, "INT": true, "STRING": true, "FLOAT": true,
	"BOOL": true, "UPDATE": true, "SET": true, "DELETE": true, "AND": true,
	"OR": true, "NOT": true, "NULL": true, "TRUE": true, "FALSE": true,
	"ORDER": true, "BY": true, "LIMIT": true, "GROUP": true, "JOIN": true,
	"AS": true, "ASC": true, "DESC": true, "BEGIN": true, "COMMIT": true,
	"ROLLBACK": true, "DROP": true, "COUNT": true, "SUM": true, "AVG": true,
	"MIN": true, "MAX": true, "DISTINCT": true, "SHOW": true, "TABLES": true,
}

// lex splits input into tokens.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := rune(input[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '-' && i+1 < n && input[i+1] == '-':
			// Line comment.
			for i < n && input[i] != '\n' {
				i++
			}
		case unicode.IsLetter(c) || c == '_':
			start := i
			for i < n && (isIdentChar(rune(input[i]))) {
				i++
			}
			word := input[start:i]
			up := strings.ToUpper(word)
			if keywords[up] {
				toks = append(toks, token{kind: tokKeyword, text: up, pos: start})
			} else {
				toks = append(toks, token{kind: tokIdent, text: strings.ToLower(word), pos: start})
			}
		case unicode.IsDigit(c) || (c == '.' && i+1 < n && unicode.IsDigit(rune(input[i+1]))):
			start := i
			seenDot := false
			for i < n && (unicode.IsDigit(rune(input[i])) || (input[i] == '.' && !seenDot)) {
				if input[i] == '.' {
					seenDot = true
				}
				i++
			}
			toks = append(toks, token{kind: tokNumber, text: input[start:i], pos: start})
		case c == '\'':
			i++
			var sb strings.Builder
			closed := false
			for i < n {
				if input[i] == '\'' {
					if i+1 < n && input[i+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						i += 2
						continue
					}
					closed = true
					i++
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("sql: unterminated string literal at %d", i)
			}
			toks = append(toks, token{kind: tokString, text: sb.String(), pos: i})
		case strings.ContainsRune("(),*;=+-/<>.", c):
			// Multi-char operators.
			if i+1 < n {
				two := input[i : i+2]
				if two == "<=" || two == ">=" || two == "!=" || two == "<>" {
					toks = append(toks, token{kind: tokSymbol, text: two, pos: i})
					i += 2
					continue
				}
			}
			toks = append(toks, token{kind: tokSymbol, text: string(c), pos: i})
			i++
		case c == '!':
			if i+1 < n && input[i+1] == '=' {
				toks = append(toks, token{kind: tokSymbol, text: "!=", pos: i})
				i += 2
				continue
			}
			return nil, fmt.Errorf("sql: unexpected character %q at %d", c, i)
		case c == '$':
			// Placeholder, e.g. $1.
			start := i
			i++
			for i < n && unicode.IsDigit(rune(input[i])) {
				i++
			}
			if i == start+1 {
				return nil, fmt.Errorf("sql: bare $ at %d", start)
			}
			toks = append(toks, token{kind: tokSymbol, text: input[start:i], pos: start})
		default:
			return nil, fmt.Errorf("sql: unexpected character %q at %d", c, i)
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: n})
	return toks, nil
}

func isIdentChar(c rune) bool {
	return unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_'
}
