package sql

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses one SQL statement.
func Parse(input string) (Statement, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	// Optional trailing semicolon.
	p.maybe(";")
	if !p.atEOF() {
		return nil, fmt.Errorf("sql: unexpected %s after statement", p.peek())
	}
	return stmt, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) atEOF() bool { return p.peek().kind == tokEOF }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

// maybe consumes the token if it matches (keyword or symbol text).
func (p *parser) maybe(text string) bool {
	t := p.peek()
	if (t.kind == tokKeyword || t.kind == tokSymbol) && t.text == text {
		p.pos++
		return true
	}
	return false
}

// expect consumes a token matching text or errors.
func (p *parser) expect(text string) error {
	if !p.maybe(text) {
		return fmt.Errorf("sql: expected %q, found %s", text, p.peek())
	}
	return nil
}

// ident consumes an identifier.
func (p *parser) ident() (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", fmt.Errorf("sql: expected identifier, found %s", t)
	}
	p.pos++
	return t.text, nil
}

func (p *parser) parseStatement() (Statement, error) {
	t := p.peek()
	if t.kind != tokKeyword {
		return nil, fmt.Errorf("sql: expected statement, found %s", t)
	}
	switch t.text {
	case "CREATE":
		return p.parseCreate()
	case "DROP":
		return p.parseDrop()
	case "INSERT":
		return p.parseInsert()
	case "SELECT":
		return p.parseSelect()
	case "UPDATE":
		return p.parseUpdate()
	case "DELETE":
		return p.parseDelete()
	case "BEGIN":
		p.next()
		return &BeginTxn{}, nil
	case "COMMIT":
		p.next()
		return &CommitTxn{}, nil
	case "ROLLBACK":
		p.next()
		return &RollbackTxn{}, nil
	case "SET":
		return p.parseSet()
	case "SHOW":
		p.next()
		if err := p.expect("TABLES"); err != nil {
			return nil, err
		}
		return &ShowTables{}, nil
	default:
		return nil, fmt.Errorf("sql: unsupported statement %s", t)
	}
}

func (p *parser) parseCreate() (Statement, error) {
	p.next() // CREATE
	switch {
	case p.maybe("TABLE"):
		return p.parseCreateTable()
	case p.maybe("INDEX"):
		return p.parseCreateIndex()
	default:
		return nil, fmt.Errorf("sql: CREATE %s not supported", p.peek())
	}
}

func (p *parser) parseCreateTable() (Statement, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	ct := &CreateTable{Name: name}
	for {
		if p.maybe("PRIMARY") {
			if err := p.expect("KEY"); err != nil {
				return nil, err
			}
			if err := p.expect("("); err != nil {
				return nil, err
			}
			for {
				col, err := p.ident()
				if err != nil {
					return nil, err
				}
				ct.PrimaryKey = append(ct.PrimaryKey, col)
				if !p.maybe(",") {
					break
				}
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
		} else {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			typ, err := p.parseType()
			if err != nil {
				return nil, err
			}
			ct.Columns = append(ct.Columns, ColumnDef{Name: col, Type: typ})
			// Inline PRIMARY KEY on a single column.
			if p.maybe("PRIMARY") {
				if err := p.expect("KEY"); err != nil {
					return nil, err
				}
				ct.PrimaryKey = append(ct.PrimaryKey, col)
			}
		}
		if !p.maybe(",") {
			break
		}
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	if len(ct.Columns) == 0 {
		return nil, fmt.Errorf("sql: table %s has no columns", name)
	}
	if len(ct.PrimaryKey) == 0 {
		return nil, fmt.Errorf("sql: table %s has no primary key", name)
	}
	return ct, nil
}

func (p *parser) parseType() (ColumnType, error) {
	t := p.peek()
	if t.kind != tokKeyword {
		return 0, fmt.Errorf("sql: expected type, found %s", t)
	}
	p.pos++
	switch t.text {
	case "INT":
		return TypeInt, nil
	case "STRING":
		return TypeString, nil
	case "FLOAT":
		return TypeFloat, nil
	case "BOOL":
		return TypeBool, nil
	default:
		return 0, fmt.Errorf("sql: unknown type %s", t.text)
	}
}

func (p *parser) parseCreateIndex() (Statement, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect("ON"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	ci := &CreateIndex{Name: name, Table: table}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		ci.Columns = append(ci.Columns, col)
		if !p.maybe(",") {
			break
		}
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	return ci, nil
}

func (p *parser) parseDrop() (Statement, error) {
	p.next() // DROP
	if err := p.expect("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	return &DropTable{Name: name}, nil
}

func (p *parser) parseInsert() (Statement, error) {
	p.next() // INSERT
	if err := p.expect("INTO"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	ins := &Insert{Table: table}
	if p.maybe("(") {
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			ins.Columns = append(ins.Columns, col)
			if !p.maybe(",") {
				break
			}
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expect("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expect("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.maybe(",") {
				break
			}
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		ins.Rows = append(ins.Rows, row)
		if !p.maybe(",") {
			break
		}
	}
	return ins, nil
}

func (p *parser) parseSelect() (Statement, error) {
	p.next() // SELECT
	sel := &Select{Limit: -1}
	sel.Distinct = p.maybe("DISTINCT")
	for {
		if p.maybe("*") {
			sel.Exprs = append(sel.Exprs, SelectExpr{Star: true})
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			se := SelectExpr{Expr: e}
			if p.maybe("AS") {
				as, err := p.ident()
				if err != nil {
					return nil, err
				}
				se.As = as
			}
			sel.Exprs = append(sel.Exprs, se)
		}
		if !p.maybe(",") {
			break
		}
	}
	if err := p.expect("FROM"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	sel.Table = table
	if p.maybe("AS") {
		sel.TableAs, err = p.ident()
		if err != nil {
			return nil, err
		}
	} else if p.peek().kind == tokIdent {
		sel.TableAs, _ = p.ident()
	}
	if p.maybe("JOIN") {
		jt, err := p.ident()
		if err != nil {
			return nil, err
		}
		j := &JoinClause{Table: jt}
		if p.maybe("AS") {
			j.As, err = p.ident()
			if err != nil {
				return nil, err
			}
		} else if p.peek().kind == tokIdent {
			j.As, _ = p.ident()
		}
		if err := p.expect("ON"); err != nil {
			return nil, err
		}
		j.On, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Join = j
	}
	if p.maybe("WHERE") {
		sel.Where, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	if p.maybe("GROUP") {
		if err := p.expect("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if !p.maybe(",") {
				break
			}
		}
	}
	if p.maybe("ORDER") {
		if err := p.expect("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			oc := OrderClause{Expr: e}
			if p.maybe("DESC") {
				oc.Desc = true
			} else {
				p.maybe("ASC")
			}
			sel.OrderBy = append(sel.OrderBy, oc)
			if !p.maybe(",") {
				break
			}
		}
	}
	if p.maybe("LIMIT") {
		t := p.peek()
		if t.kind != tokNumber {
			return nil, fmt.Errorf("sql: LIMIT expects a number, found %s", t)
		}
		p.pos++
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, err
		}
		sel.Limit = n
	}
	return sel, nil
}

func (p *parser) parseUpdate() (Statement, error) {
	p.next() // UPDATE
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect("SET"); err != nil {
		return nil, err
	}
	up := &Update{Table: table}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect("="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		up.Set = append(up.Set, SetClause{Column: col, Expr: e})
		if !p.maybe(",") {
			break
		}
	}
	if p.maybe("WHERE") {
		up.Where, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	return up, nil
}

func (p *parser) parseDelete() (Statement, error) {
	p.next() // DELETE
	if err := p.expect("FROM"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	del := &Delete{Table: table}
	if p.maybe("WHERE") {
		where, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		del.Where = where
	}
	return del, nil
}

func (p *parser) parseSet() (Statement, error) {
	p.next() // SET
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect("="); err != nil {
		return nil, err
	}
	val, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &SetVar{Name: name, Value: val}, nil
}

// Expression parsing with precedence climbing:
// OR < AND < NOT < comparison < additive < multiplicative < unary.

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.maybe("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "OR", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.maybe("AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "AND", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.maybe("NOT") {
		operand, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", Operand: operand}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.kind == tokSymbol {
		op := t.text
		if op == "<>" {
			op = "!="
		}
		switch op {
		case "=", "!=", "<", "<=", ">", ">=":
			p.pos++
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &BinaryExpr{Op: op, Left: left, Right: right}, nil
		}
	}
	return left, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokSymbol && (t.text == "+" || t.text == "-") {
			p.pos++
			right, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: t.text, Left: left, Right: right}
			continue
		}
		return left, nil
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokSymbol && (t.text == "*" || t.text == "/") {
			p.pos++
			right, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: t.text, Left: left, Right: right}
			continue
		}
		return left, nil
	}
}

func (p *parser) parseUnary() (Expr, error) {
	t := p.peek()
	if t.kind == tokSymbol && t.text == "-" {
		p.pos++
		operand, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "-", Operand: operand}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch {
	case t.kind == tokNumber:
		p.pos++
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, err
			}
			return &Literal{Value: f}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, err
		}
		return &Literal{Value: n}, nil
	case t.kind == tokString:
		p.pos++
		return &Literal{Value: t.text}, nil
	case t.kind == tokKeyword:
		switch t.text {
		case "TRUE":
			p.pos++
			return &Literal{Value: true}, nil
		case "FALSE":
			p.pos++
			return &Literal{Value: false}, nil
		case "NULL":
			p.pos++
			return &Literal{Value: nil}, nil
		case "COUNT", "SUM", "AVG", "MIN", "MAX":
			p.pos++
			if err := p.expect("("); err != nil {
				return nil, err
			}
			fe := &FuncExpr{Name: t.text}
			if p.maybe("*") {
				fe.Star = true
			} else {
				arg, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				fe.Arg = arg
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return fe, nil
		}
		return nil, fmt.Errorf("sql: unexpected keyword %s in expression", t.text)
	case t.kind == tokIdent:
		p.pos++
		if p.maybe(".") {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			return &ColumnRef{Table: t.text, Column: col}, nil
		}
		return &ColumnRef{Column: t.text}, nil
	case t.kind == tokSymbol && t.text == "(":
		p.pos++
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tokSymbol && strings.HasPrefix(t.text, "$"):
		p.pos++
		idx, err := strconv.Atoi(t.text[1:])
		if err != nil || idx < 1 {
			return nil, fmt.Errorf("sql: bad placeholder %s", t.text)
		}
		return &Placeholder{Index: idx}, nil
	default:
		return nil, fmt.Errorf("sql: unexpected %s in expression", t)
	}
}
