package sql

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"crdbserverless/internal/kvserver"
	"crdbserverless/internal/region"
	"crdbserverless/internal/txn"
)

// newTestDB builds a 3-node KV cluster plus an executor/session for tenant 2.
func newTestDB(t *testing.T) (*Executor, *Session) {
	t.Helper()
	cheap := kvserver.CostConfig{ReadBatchOverhead: time.Nanosecond, WriteBatchOverhead: time.Nanosecond}
	var nodes []*kvserver.Node
	for i := 1; i <= 3; i++ {
		nodes = append(nodes, kvserver.NewNode(kvserver.NodeConfig{
			ID: kvserver.NodeID(i), VCPUs: 2, Cost: cheap,
		}))
	}
	c, err := kvserver.NewCluster(kvserver.ClusterConfig{}, nodes)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	ds := kvserver.NewDistSender(c, kvserver.Identity{Tenant: 2})
	coord := txn.NewCoordinator(ds, c.Clock(), 2)
	catalog := NewCatalog(coord, 2)
	exec := NewExecutor(catalog, coord, ExecutorConfig{})
	return exec, NewSession(exec, "app")
}

func mustExec(t *testing.T, s *Session, q string, args ...Datum) *Result {
	t.Helper()
	res, err := s.Execute(context.Background(), q, args...)
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	return res
}

func rowStrings(res *Result) []string {
	var out []string
	for _, r := range res.Rows {
		var parts []string
		for _, d := range r {
			parts = append(parts, d.String())
		}
		out = append(out, strings.Join(parts, ","))
	}
	return out
}

func TestCreateInsertSelect(t *testing.T) {
	_, s := newTestDB(t)
	mustExec(t, s, "CREATE TABLE users (id INT PRIMARY KEY, name STRING, age INT)")
	mustExec(t, s, "INSERT INTO users VALUES (1, 'alice', 30), (2, 'bob', 25)")
	res := mustExec(t, s, "SELECT id, name, age FROM users ORDER BY id")
	want := []string{"1,alice,30", "2,bob,25"}
	if fmt.Sprint(rowStrings(res)) != fmt.Sprint(want) {
		t.Fatalf("rows = %v", rowStrings(res))
	}
	if fmt.Sprint(res.Columns) != fmt.Sprint([]string{"id", "name", "age"}) {
		t.Fatalf("columns = %v", res.Columns)
	}
}

func TestSelectStar(t *testing.T) {
	_, s := newTestDB(t)
	mustExec(t, s, "CREATE TABLE t (a INT PRIMARY KEY, b STRING)")
	mustExec(t, s, "INSERT INTO t VALUES (1, 'x')")
	res := mustExec(t, s, "SELECT * FROM t")
	if len(res.Rows) != 1 || len(res.Rows[0]) != 2 {
		t.Fatalf("star select = %+v", res.Rows)
	}
}

func TestWherePointLookup(t *testing.T) {
	_, s := newTestDB(t)
	mustExec(t, s, "CREATE TABLE t (a INT PRIMARY KEY, b STRING)")
	for i := 0; i < 20; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO t VALUES (%d, 'v%d')", i, i))
	}
	res := mustExec(t, s, "SELECT b FROM t WHERE a = 7")
	if len(res.Rows) != 1 || res.Rows[0][0].S != "v7" {
		t.Fatalf("point lookup = %v", rowStrings(res))
	}
	// Missing key.
	res = mustExec(t, s, "SELECT b FROM t WHERE a = 999")
	if len(res.Rows) != 0 {
		t.Fatalf("missing point lookup returned %v", rowStrings(res))
	}
}

func TestWhereFilters(t *testing.T) {
	_, s := newTestDB(t)
	mustExec(t, s, "CREATE TABLE t (a INT PRIMARY KEY, b INT)")
	for i := 1; i <= 10; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO t VALUES (%d, %d)", i, i*10))
	}
	res := mustExec(t, s, "SELECT a FROM t WHERE b > 50 AND b <= 80 ORDER BY a")
	if got := rowStrings(res); fmt.Sprint(got) != fmt.Sprint([]string{"6", "7", "8"}) {
		t.Fatalf("filter = %v", got)
	}
	res = mustExec(t, s, "SELECT a FROM t WHERE a = 1 OR a = 10 ORDER BY a DESC")
	if got := rowStrings(res); fmt.Sprint(got) != fmt.Sprint([]string{"10", "1"}) {
		t.Fatalf("or filter = %v", got)
	}
	res = mustExec(t, s, "SELECT a FROM t WHERE NOT (a < 9) ORDER BY a")
	if got := rowStrings(res); fmt.Sprint(got) != fmt.Sprint([]string{"9", "10"}) {
		t.Fatalf("not filter = %v", got)
	}
}

func TestCompositePrimaryKey(t *testing.T) {
	_, s := newTestDB(t)
	mustExec(t, s, "CREATE TABLE orders (w INT, d INT, o INT, total FLOAT, PRIMARY KEY (w, d, o))")
	mustExec(t, s, "INSERT INTO orders VALUES (1, 2, 3, 9.5), (1, 2, 4, 1.25)")
	res := mustExec(t, s, "SELECT total FROM orders WHERE w = 1 AND d = 2 AND o = 3")
	if len(res.Rows) != 1 || res.Rows[0][0].F != 9.5 {
		t.Fatalf("composite pk lookup = %v", rowStrings(res))
	}
	// Duplicate composite key rejected.
	if _, err := s.Execute(context.Background(), "INSERT INTO orders VALUES (1, 2, 3, 0.0)"); err == nil {
		t.Fatal("duplicate pk accepted")
	}
}

func TestAggregates(t *testing.T) {
	_, s := newTestDB(t)
	mustExec(t, s, "CREATE TABLE sales (id INT PRIMARY KEY, region STRING, amount INT)")
	mustExec(t, s, "INSERT INTO sales VALUES (1,'east',10),(2,'east',20),(3,'west',5),(4,'west',15),(5,'north',100)")
	res := mustExec(t, s, "SELECT COUNT(*), SUM(amount), AVG(amount), MIN(amount), MAX(amount) FROM sales")
	if got := rowStrings(res)[0]; got != "5,150,30,5,100" {
		t.Fatalf("aggregates = %s", got)
	}
}

func TestGroupBy(t *testing.T) {
	_, s := newTestDB(t)
	mustExec(t, s, "CREATE TABLE sales (id INT PRIMARY KEY, region STRING, amount INT)")
	mustExec(t, s, "INSERT INTO sales VALUES (1,'east',10),(2,'east',20),(3,'west',5),(4,'west',15)")
	res := mustExec(t, s, "SELECT region, SUM(amount) AS total FROM sales GROUP BY region ORDER BY total DESC")
	want := []string{"east,30", "west,20"}
	if fmt.Sprint(rowStrings(res)) != fmt.Sprint(want) {
		t.Fatalf("group by = %v", rowStrings(res))
	}
	if res.Columns[1] != "total" {
		t.Fatalf("alias column = %v", res.Columns)
	}
}

func TestAggregateEmptyTable(t *testing.T) {
	_, s := newTestDB(t)
	mustExec(t, s, "CREATE TABLE t (a INT PRIMARY KEY)")
	res := mustExec(t, s, "SELECT COUNT(*), SUM(a) FROM t")
	if got := rowStrings(res)[0]; got != "0,NULL" {
		t.Fatalf("empty aggregate = %s", got)
	}
}

func TestJoinHash(t *testing.T) {
	_, s := newTestDB(t)
	mustExec(t, s, "CREATE TABLE users (id INT PRIMARY KEY, name STRING)")
	mustExec(t, s, "CREATE TABLE orders (oid INT PRIMARY KEY, uid INT, total INT)")
	mustExec(t, s, "INSERT INTO users VALUES (1,'alice'),(2,'bob'),(3,'carol')")
	mustExec(t, s, "INSERT INTO orders VALUES (10,1,100),(11,1,50),(12,2,75)")
	res := mustExec(t, s, "SELECT name, total FROM users JOIN orders ON id = uid ORDER BY total")
	want := []string{"alice,50", "bob,75", "alice,100"}
	if fmt.Sprint(rowStrings(res)) != fmt.Sprint(want) {
		t.Fatalf("join = %v", rowStrings(res))
	}
}

func TestJoinWithAliasesAndAggregate(t *testing.T) {
	_, s := newTestDB(t)
	mustExec(t, s, "CREATE TABLE u (id INT PRIMARY KEY, name STRING)")
	mustExec(t, s, "CREATE TABLE o (oid INT PRIMARY KEY, uid INT, total INT)")
	mustExec(t, s, "INSERT INTO u VALUES (1,'alice'),(2,'bob')")
	mustExec(t, s, "INSERT INTO o VALUES (10,1,100),(11,1,50),(12,2,75)")
	res := mustExec(t, s, "SELECT a.name, SUM(b.total) AS spent FROM u AS a JOIN o AS b ON a.id = b.uid GROUP BY a.name ORDER BY spent DESC")
	want := []string{"alice,150", "bob,75"}
	if fmt.Sprint(rowStrings(res)) != fmt.Sprint(want) {
		t.Fatalf("aliased join agg = %v", rowStrings(res))
	}
}

func TestUpdate(t *testing.T) {
	_, s := newTestDB(t)
	mustExec(t, s, "CREATE TABLE t (a INT PRIMARY KEY, b INT)")
	mustExec(t, s, "INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)")
	res := mustExec(t, s, "UPDATE t SET b = b + 1 WHERE a >= 2")
	if res.RowsAffected != 2 {
		t.Fatalf("affected = %d", res.RowsAffected)
	}
	got := rowStrings(mustExec(t, s, "SELECT b FROM t ORDER BY a"))
	if fmt.Sprint(got) != fmt.Sprint([]string{"10", "21", "31"}) {
		t.Fatalf("after update = %v", got)
	}
}

func TestUpdatePrimaryKeyMove(t *testing.T) {
	_, s := newTestDB(t)
	mustExec(t, s, "CREATE TABLE t (a INT PRIMARY KEY, b STRING)")
	mustExec(t, s, "INSERT INTO t VALUES (1, 'x')")
	mustExec(t, s, "UPDATE t SET a = 9 WHERE a = 1")
	got := rowStrings(mustExec(t, s, "SELECT a, b FROM t"))
	if fmt.Sprint(got) != fmt.Sprint([]string{"9,x"}) {
		t.Fatalf("after pk update = %v", got)
	}
}

func TestDeleteRows(t *testing.T) {
	_, s := newTestDB(t)
	mustExec(t, s, "CREATE TABLE t (a INT PRIMARY KEY)")
	mustExec(t, s, "INSERT INTO t VALUES (1),(2),(3),(4)")
	res := mustExec(t, s, "DELETE FROM t WHERE a > 2")
	if res.RowsAffected != 2 {
		t.Fatalf("deleted = %d", res.RowsAffected)
	}
	got := rowStrings(mustExec(t, s, "SELECT a FROM t ORDER BY a"))
	if fmt.Sprint(got) != fmt.Sprint([]string{"1", "2"}) {
		t.Fatalf("after delete = %v", got)
	}
}

func TestSecondaryIndexLookup(t *testing.T) {
	exec, s := newTestDB(t)
	mustExec(t, s, "CREATE TABLE t (a INT PRIMARY KEY, b STRING, c INT)")
	for i := 0; i < 30; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO t VALUES (%d, 'g%d', %d)", i, i%3, i))
	}
	mustExec(t, s, "CREATE INDEX t_b ON t (b)")
	before := exec.RowsProcessed()
	res := mustExec(t, s, "SELECT a FROM t WHERE b = 'g1' ORDER BY a")
	if len(res.Rows) != 10 {
		t.Fatalf("index lookup rows = %d", len(res.Rows))
	}
	// The index join plan should process ~10 rows, not all 30.
	if delta := exec.RowsProcessed() - before; delta > 15 {
		t.Fatalf("index plan processed %d rows; looks like a full scan", delta)
	}
	// Index maintenance: update a row's indexed column and re-query.
	mustExec(t, s, "UPDATE t SET b = 'moved' WHERE a = 1")
	res = mustExec(t, s, "SELECT a FROM t WHERE b = 'moved'")
	if len(res.Rows) != 1 || res.Rows[0][0].I != 1 {
		t.Fatalf("post-update index lookup = %v", rowStrings(res))
	}
	res = mustExec(t, s, "SELECT a FROM t WHERE b = 'g1'")
	if len(res.Rows) != 9 {
		t.Fatalf("stale index entry: %d rows", len(res.Rows))
	}
	// Deletes remove index entries.
	mustExec(t, s, "DELETE FROM t WHERE a = 4")
	res = mustExec(t, s, "SELECT a FROM t WHERE b = 'g1'")
	if len(res.Rows) != 8 {
		t.Fatalf("index after delete: %d rows", len(res.Rows))
	}
}

func TestLimitAndDistinct(t *testing.T) {
	_, s := newTestDB(t)
	mustExec(t, s, "CREATE TABLE t (a INT PRIMARY KEY, b INT)")
	mustExec(t, s, "INSERT INTO t VALUES (1,1),(2,1),(3,2),(4,2),(5,3)")
	res := mustExec(t, s, "SELECT DISTINCT b FROM t ORDER BY b")
	if got := rowStrings(res); fmt.Sprint(got) != fmt.Sprint([]string{"1", "2", "3"}) {
		t.Fatalf("distinct = %v", got)
	}
	res = mustExec(t, s, "SELECT a FROM t ORDER BY a DESC LIMIT 2")
	if got := rowStrings(res); fmt.Sprint(got) != fmt.Sprint([]string{"5", "4"}) {
		t.Fatalf("limit = %v", got)
	}
}

func TestPlaceholders(t *testing.T) {
	_, s := newTestDB(t)
	mustExec(t, s, "CREATE TABLE t (a INT PRIMARY KEY, b STRING)")
	mustExec(t, s, "INSERT INTO t VALUES ($1, $2)", DInt(5), DString("five"))
	res := mustExec(t, s, "SELECT b FROM t WHERE a = $1", DInt(5))
	if len(res.Rows) != 1 || res.Rows[0][0].S != "five" {
		t.Fatalf("placeholder select = %v", rowStrings(res))
	}
	// Missing placeholder errors.
	if _, err := s.Execute(context.Background(), "SELECT b FROM t WHERE a = $1"); err == nil {
		t.Fatal("missing placeholder accepted")
	}
}

func TestPreparedStatements(t *testing.T) {
	_, s := newTestDB(t)
	mustExec(t, s, "CREATE TABLE t (a INT PRIMARY KEY, b INT)")
	if err := s.Prepare("ins", "INSERT INTO t VALUES ($1, $2)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := s.ExecutePrepared(context.Background(), "ins", DInt(int64(i)), DInt(int64(i*i))); err != nil {
			t.Fatal(err)
		}
	}
	res := mustExec(t, s, "SELECT COUNT(*) FROM t")
	if res.Rows[0][0].I != 5 {
		t.Fatalf("count = %s", res.Rows[0][0])
	}
	if _, err := s.ExecutePrepared(context.Background(), "nope"); err == nil {
		t.Fatal("unknown prepared statement accepted")
	}
	if err := s.Prepare("bad", "NOT SQL AT ALL"); err == nil {
		t.Fatal("invalid prepared statement accepted")
	}
}

func TestExplicitTransactionCommitRollback(t *testing.T) {
	_, s := newTestDB(t)
	mustExec(t, s, "CREATE TABLE t (a INT PRIMARY KEY)")
	mustExec(t, s, "BEGIN")
	if !s.InTxn() {
		t.Fatal("not in txn after BEGIN")
	}
	mustExec(t, s, "INSERT INTO t VALUES (1)")
	mustExec(t, s, "COMMIT")
	if s.InTxn() {
		t.Fatal("still in txn after COMMIT")
	}
	if got := mustExec(t, s, "SELECT COUNT(*) FROM t").Rows[0][0].I; got != 1 {
		t.Fatalf("count after commit = %d", got)
	}

	mustExec(t, s, "BEGIN")
	mustExec(t, s, "INSERT INTO t VALUES (2)")
	mustExec(t, s, "ROLLBACK")
	if got := mustExec(t, s, "SELECT COUNT(*) FROM t").Rows[0][0].I; got != 1 {
		t.Fatalf("count after rollback = %d", got)
	}
	// Errors on txn control.
	if _, err := s.Execute(context.Background(), "COMMIT"); err == nil {
		t.Fatal("COMMIT without txn accepted")
	}
	if _, err := s.Execute(context.Background(), "ROLLBACK"); err == nil {
		t.Fatal("ROLLBACK without txn accepted")
	}
}

func TestSessionSettings(t *testing.T) {
	_, s := newTestDB(t)
	mustExec(t, s, "SET application_name = 'myapp'")
	if v, ok := s.Setting("application_name"); !ok || v != "myapp" {
		t.Fatalf("setting = %q %v", v, ok)
	}
}

func TestShowTablesAndDrop(t *testing.T) {
	_, s := newTestDB(t)
	mustExec(t, s, "CREATE TABLE bbb (a INT PRIMARY KEY)")
	mustExec(t, s, "CREATE TABLE aaa (a INT PRIMARY KEY)")
	res := mustExec(t, s, "SHOW TABLES")
	if got := rowStrings(res); fmt.Sprint(got) != fmt.Sprint([]string{"aaa", "bbb"}) {
		t.Fatalf("show tables = %v", got)
	}
	mustExec(t, s, "INSERT INTO aaa VALUES (1)")
	mustExec(t, s, "DROP TABLE aaa")
	if _, err := s.Execute(context.Background(), "SELECT * FROM aaa"); err == nil {
		t.Fatal("dropped table still queryable")
	}
	res = mustExec(t, s, "SHOW TABLES")
	if got := rowStrings(res); fmt.Sprint(got) != fmt.Sprint([]string{"bbb"}) {
		t.Fatalf("show tables after drop = %v", got)
	}
}

func TestSessionSerializeRestore(t *testing.T) {
	exec, s := newTestDB(t)
	secret := []byte("cluster-secret")
	mustExec(t, s, "SET app = 'x'")
	s.Prepare("q", "SELECT 1 FROM t")
	ser, err := s.Serialize(secret)
	if err != nil {
		t.Fatal(err)
	}
	if ser.RevivalToken == "" {
		t.Fatal("no revival token")
	}
	// Round trip through the wire encoding the proxy uses.
	raw, err := ser.Encode()
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeSerializedSession(raw)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreSession(exec, decoded, secret)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := restored.Setting("app"); !ok || v != "x" {
		t.Fatalf("restored setting = %q %v", v, ok)
	}
	if restored.User() != "app" {
		t.Fatalf("restored user = %s", restored.User())
	}
	// Tampered token rejected.
	decoded.RevivalToken = "forged"
	if _, err := RestoreSession(exec, decoded, secret); err == nil {
		t.Fatal("forged revival token accepted")
	}
	// Wrong secret rejected.
	if _, err := RestoreSession(exec, ser, []byte("other")); err == nil {
		t.Fatal("wrong secret accepted")
	}
}

func TestSessionBusyNotSerializable(t *testing.T) {
	_, s := newTestDB(t)
	mustExec(t, s, "CREATE TABLE t (a INT PRIMARY KEY)")
	mustExec(t, s, "BEGIN")
	if _, err := s.Serialize([]byte("k")); err != ErrSessionBusy {
		t.Fatalf("busy serialize = %v", err)
	}
	mustExec(t, s, "ROLLBACK")
	if _, err := s.Serialize([]byte("k")); err != nil {
		t.Fatalf("idle serialize = %v", err)
	}
}

func TestSQLInstancesRegistry(t *testing.T) {
	exec, _ := newTestDB(t)
	ctx := context.Background()
	coord := exec.coord
	for i := int64(1); i <= 3; i++ {
		r := "us-central1"
		if i == 3 {
			r = "europe-west1"
		}
		if err := RegisterInstance(ctx, coord, 2, SQLInstance{ID: i, Region: region.Region(r), Addr: fmt.Sprintf("10.0.0.%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	instances, err := ListInstances(ctx, coord, 2)
	if err != nil || len(instances) != 3 {
		t.Fatalf("instances = %v, %v", instances, err)
	}
	if err := UnregisterInstance(ctx, coord, 2, "us-central1", 1); err != nil {
		t.Fatal(err)
	}
	instances, _ = ListInstances(ctx, coord, 2)
	if len(instances) != 2 {
		t.Fatalf("after unregister = %v", instances)
	}
}

func TestSystemTableLocalities(t *testing.T) {
	aware := SystemTableLocalities{RegionAware: true, Home: "asia-southeast1"}
	if aware.Placement(SystemDescriptorTable).Locality.String() != "GLOBAL" {
		t.Fatal("descriptor should be GLOBAL when region-aware")
	}
	if aware.Placement(SystemSQLInstancesTable).Locality.String() != "REGIONAL BY ROW" {
		t.Fatal("sql_instances should be REGIONAL BY ROW when region-aware")
	}
	pinned := SystemTableLocalities{RegionAware: false, Home: "asia-southeast1"}
	p := pinned.Placement(SystemDescriptorTable)
	if p.Locality.String() != "REGIONAL BY TABLE" || p.Home != "asia-southeast1" {
		t.Fatalf("unoptimized placement = %+v", p)
	}
}

func TestParserErrors(t *testing.T) {
	bad := []string{
		"",
		"SELEC 1",
		"CREATE TABLE t (a INT)",                // no primary key
		"CREATE TABLE t (a INT PRIMARY KEY",     // unbalanced
		"INSERT INTO t",                         // no values
		"SELECT FROM t",                         // no exprs
		"SELECT a FROM t WHERE",                 // dangling where
		"SELECT a FROM t LIMIT x",               // bad limit
		"INSERT INTO t VALUES (1, 'unclosed)",   // bad string
		"SELECT a FROM t ORDER",                 // missing BY
		"UPDATE t SET",                          // missing assignment
		"SELECT a FROM t; SELECT b FROM t",      // trailing statement
		"CREATE TABLE t (a WIBBLE PRIMARY KEY)", // unknown type
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Fatalf("parse accepted %q", q)
		}
	}
}

func TestArithmeticAndStrings(t *testing.T) {
	_, s := newTestDB(t)
	mustExec(t, s, "CREATE TABLE t (a INT PRIMARY KEY, f FLOAT, name STRING)")
	mustExec(t, s, "INSERT INTO t VALUES (4, 2.5, 'ab')")
	res := mustExec(t, s, "SELECT a + 1, a * 2, a / 4, f * 2.0, name + 'cd' FROM t")
	if got := rowStrings(res)[0]; got != "5,8,1,5,abcd" {
		t.Fatalf("arithmetic = %s", got)
	}
	if _, err := s.Execute(context.Background(), "SELECT a / 0 FROM t"); err == nil {
		t.Fatal("division by zero accepted")
	}
}

func TestErrorInExplicitTxnAborts(t *testing.T) {
	_, s := newTestDB(t)
	mustExec(t, s, "CREATE TABLE t (a INT PRIMARY KEY)")
	mustExec(t, s, "BEGIN")
	mustExec(t, s, "INSERT INTO t VALUES (1)")
	if _, err := s.Execute(context.Background(), "INSERT INTO t VALUES (1)"); err == nil {
		t.Fatal("duplicate insert accepted")
	}
	if s.InTxn() {
		t.Fatal("failed statement should abort the txn")
	}
	if got := mustExec(t, s, "SELECT COUNT(*) FROM t").Rows[0][0].I; got != 0 {
		t.Fatalf("aborted txn leaked %d rows", got)
	}
}

func TestNullHandling(t *testing.T) {
	_, s := newTestDB(t)
	mustExec(t, s, "CREATE TABLE t (a INT PRIMARY KEY, b INT)")
	mustExec(t, s, "INSERT INTO t (a) VALUES (1)")
	mustExec(t, s, "INSERT INTO t VALUES (2, 5)")
	// NULL never matches comparisons.
	res := mustExec(t, s, "SELECT a FROM t WHERE b = 5")
	if len(res.Rows) != 1 {
		t.Fatalf("null comparison rows = %v", rowStrings(res))
	}
	// Aggregates skip NULLs; COUNT(*) does not.
	res = mustExec(t, s, "SELECT COUNT(*), SUM(b) FROM t")
	if got := rowStrings(res)[0]; got != "2,5" {
		t.Fatalf("null aggregate = %s", got)
	}
	// NULL in PK rejected.
	if _, err := s.Execute(context.Background(), "INSERT INTO t (b) VALUES (9)"); err == nil {
		t.Fatal("NULL pk accepted")
	}
}

func TestSQLCPUAccounting(t *testing.T) {
	exec, s := newTestDB(t)
	mustExec(t, s, "CREATE TABLE t (a INT PRIMARY KEY)")
	before := exec.SQLCPUSeconds()
	for i := 0; i < 50; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO t VALUES (%d)", i))
	}
	mustExec(t, s, "SELECT COUNT(*) FROM t")
	if exec.SQLCPUSeconds() <= before {
		t.Fatal("no SQL CPU recorded")
	}
	if s.QueryCount() != 52 {
		t.Fatalf("query count = %d", s.QueryCount())
	}
}
