package sql

import (
	"context"
	"fmt"

	"crdbserverless/internal/keys"
	"crdbserverless/internal/region"
	"crdbserverless/internal/txn"
)

// The system database (§3.2.5). Every tenant carries its own copy: the
// descriptor table holding its schema, and the sql_instances registry that
// makes SQL nodes discoverable to each other for DistSQL routing. The table
// localities configured here are the multi-region cold-start optimization:
// system.descriptor is GLOBAL (consistent local reads everywhere) and
// system.sql_instances is REGIONAL BY ROW (a starting node's registration
// write stays in its own region).

// SystemTableName constants.
const (
	SystemDescriptorTable   = "system_descriptor"
	SystemSQLInstancesTable = "system_sql_instances"
)

// SystemTableLocalities describes how the system database is configured for
// a tenant's region set. RegionAware enables the optimized localities of
// §3.2.5; with it disabled, every system table is pinned to Home (the
// unoptimized baseline of Fig 10b).
type SystemTableLocalities struct {
	RegionAware bool
	Home        region.Region
}

// Placement returns the lease placement for a system table under this
// configuration.
func (l SystemTableLocalities) Placement(table string) region.LeasePlacement {
	if !l.RegionAware {
		return region.LeasePlacement{Locality: region.LocalityRegionalByTable, Home: l.Home}
	}
	switch table {
	case SystemDescriptorTable:
		return region.LeasePlacement{Locality: region.LocalityGlobal}
	case SystemSQLInstancesTable:
		return region.LeasePlacement{Locality: region.LocalityRegionalByRow}
	default:
		return region.LeasePlacement{Locality: region.LocalityRegionalByTable, Home: l.Home}
	}
}

// SQLInstance is one row of system.sql_instances.
type SQLInstance struct {
	ID     int64
	Region region.Region
	Addr   string
}

// instanceKey returns the sql_instances row key. The region is the key's
// leading component, mirroring REGIONAL BY ROW partitioning.
func instanceKey(tenant keys.TenantID, r region.Region, id int64) keys.Key {
	k := keys.MakeTableIndexPrefix(tenant, SQLInstancesTableID, keys.PrimaryIndexID)
	k = keys.EncodeString(k, string(r))
	return keys.EncodeInt64(k, id)
}

// RegisterInstance writes a SQL node's row into system.sql_instances — one
// of the blocking startup writes whose latency the REGIONAL BY ROW locality
// keeps local (§3.2.5).
func RegisterInstance(ctx context.Context, coord *txn.Coordinator, tenant keys.TenantID, inst SQLInstance) error {
	return coord.RunTxn(ctx, func(ctx context.Context, t *txn.Txn) error {
		return t.Put(ctx, instanceKey(tenant, inst.Region, inst.ID),
			[]byte(fmt.Sprintf("%s|%s", inst.Region, inst.Addr)))
	})
}

// UnregisterInstance removes a SQL node's registration at shutdown.
func UnregisterInstance(ctx context.Context, coord *txn.Coordinator, tenant keys.TenantID, r region.Region, id int64) error {
	return coord.RunTxn(ctx, func(ctx context.Context, t *txn.Txn) error {
		return t.Delete(ctx, instanceKey(tenant, r, id))
	})
}

// ListInstances returns the tenant's live SQL instances, across all regions.
func ListInstances(ctx context.Context, coord *txn.Coordinator, tenant keys.TenantID) ([]SQLInstance, error) {
	span := keys.MakeTableIndexSpan(tenant, SQLInstancesTableID, keys.PrimaryIndexID)
	var out []SQLInstance
	err := coord.RunTxn(ctx, func(ctx context.Context, t *txn.Txn) error {
		out = out[:0]
		rows, err := t.Scan(ctx, span, 0)
		if err != nil {
			return err
		}
		prefix := keys.MakeTableIndexPrefix(tenant, SQLInstancesTableID, keys.PrimaryIndexID)
		for _, kv := range rows {
			rest := kv.Key[len(prefix):]
			rest, regionName, err := keys.DecodeString(rest)
			if err != nil {
				return err
			}
			_, id, err := keys.DecodeInt64(rest)
			if err != nil {
				return err
			}
			var addr string
			// Value format: region|addr.
			for i := 0; i < len(kv.Value); i++ {
				if kv.Value[i] == '|' {
					addr = string(kv.Value[i+1:])
					break
				}
			}
			out = append(out, SQLInstance{ID: id, Region: region.Region(regionName), Addr: addr})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
