package sql

import (
	"fmt"
)

// evalEnv resolves column references during expression evaluation. Columns
// may be qualified by table name or alias.
type evalEnv struct {
	// cols maps "column" and "qualifier.column" to datum positions.
	cols map[string]int
	row  []Datum
	args []Datum // placeholder values
}

// bindColumns builds the name→position map for a table's columns under the
// given qualifiers (table name and optional alias).
func bindColumns(desc *TableDescriptor, alias string, base int, into map[string]int, ambiguous map[string]bool) {
	for i, c := range desc.Columns {
		pos := base + i
		if prev, ok := into[c.Name]; ok && prev != pos {
			ambiguous[c.Name] = true
		} else {
			into[c.Name] = pos
		}
		into[desc.Name+"."+c.Name] = pos
		if alias != "" {
			into[alias+"."+c.Name] = pos
		}
	}
}

// lookup resolves a column reference.
func (env *evalEnv) lookup(ref *ColumnRef) (Datum, error) {
	name := ref.Column
	if ref.Table != "" {
		name = ref.Table + "." + ref.Column
	}
	pos, ok := env.cols[name]
	if !ok {
		return Datum{}, fmt.Errorf("sql: column %q not found", name)
	}
	return env.row[pos], nil
}

// evalExpr evaluates an expression against the environment.
func evalExpr(env *evalEnv, e Expr) (Datum, error) {
	switch x := e.(type) {
	case *Literal:
		return datumFromLiteral(x.Value)
	case *ColumnRef:
		return env.lookup(x)
	case *Placeholder:
		if x.Index < 1 || x.Index > len(env.args) {
			return Datum{}, fmt.Errorf("sql: missing value for placeholder $%d", x.Index)
		}
		return env.args[x.Index-1], nil
	case *UnaryExpr:
		v, err := evalExpr(env, x.Operand)
		if err != nil {
			return Datum{}, err
		}
		switch x.Op {
		case "NOT":
			if v.Null {
				return DNull, nil
			}
			if v.Kind != TypeBool {
				return Datum{}, fmt.Errorf("sql: NOT requires a boolean")
			}
			return DBool(!v.B), nil
		case "-":
			switch {
			case v.Null:
				return DNull, nil
			case v.Kind == TypeInt:
				return DInt(-v.I), nil
			case v.Kind == TypeFloat:
				return DFloat(-v.F), nil
			default:
				return Datum{}, fmt.Errorf("sql: cannot negate %s", v.Kind)
			}
		default:
			return Datum{}, fmt.Errorf("sql: unknown unary operator %s", x.Op)
		}
	case *BinaryExpr:
		return evalBinary(env, x)
	case *FuncExpr:
		return Datum{}, fmt.Errorf("sql: aggregate %s not allowed here", x.Name)
	default:
		return Datum{}, fmt.Errorf("sql: unsupported expression %T", e)
	}
}

func evalBinary(env *evalEnv, x *BinaryExpr) (Datum, error) {
	// Short-circuit logical operators.
	if x.Op == "AND" || x.Op == "OR" {
		l, err := evalExpr(env, x.Left)
		if err != nil {
			return Datum{}, err
		}
		lb := !l.Null && l.Kind == TypeBool && l.B
		if x.Op == "AND" && (l.Null || !lb) {
			return DBool(false), nil
		}
		if x.Op == "OR" && lb {
			return DBool(true), nil
		}
		r, err := evalExpr(env, x.Right)
		if err != nil {
			return Datum{}, err
		}
		rb := !r.Null && r.Kind == TypeBool && r.B
		return DBool(rb), nil
	}

	l, err := evalExpr(env, x.Left)
	if err != nil {
		return Datum{}, err
	}
	r, err := evalExpr(env, x.Right)
	if err != nil {
		return Datum{}, err
	}
	switch x.Op {
	case "=", "!=", "<", "<=", ">", ">=":
		if l.Null || r.Null {
			return DBool(false), nil // SQL NULL comparisons are never true
		}
		cmp := l.Compare(r)
		switch x.Op {
		case "=":
			return DBool(cmp == 0), nil
		case "!=":
			return DBool(cmp != 0), nil
		case "<":
			return DBool(cmp < 0), nil
		case "<=":
			return DBool(cmp <= 0), nil
		case ">":
			return DBool(cmp > 0), nil
		default:
			return DBool(cmp >= 0), nil
		}
	case "+", "-", "*", "/":
		return evalArith(x.Op, l, r)
	default:
		return Datum{}, fmt.Errorf("sql: unknown operator %s", x.Op)
	}
}

func evalArith(op string, l, r Datum) (Datum, error) {
	if l.Null || r.Null {
		return DNull, nil
	}
	// String concatenation via +.
	if op == "+" && l.Kind == TypeString && r.Kind == TypeString {
		return DString(l.S + r.S), nil
	}
	if !l.isNumeric() || !r.isNumeric() {
		return Datum{}, fmt.Errorf("sql: %s requires numeric operands", op)
	}
	if l.Kind == TypeInt && r.Kind == TypeInt && op != "/" {
		switch op {
		case "+":
			return DInt(l.I + r.I), nil
		case "-":
			return DInt(l.I - r.I), nil
		case "*":
			return DInt(l.I * r.I), nil
		}
	}
	a, b := l.asFloat(), r.asFloat()
	switch op {
	case "+":
		return DFloat(a + b), nil
	case "-":
		return DFloat(a - b), nil
	case "*":
		return DFloat(a * b), nil
	case "/":
		if b == 0 {
			return Datum{}, fmt.Errorf("sql: division by zero")
		}
		return DFloat(a / b), nil
	}
	return Datum{}, fmt.Errorf("sql: unknown arithmetic operator %s", op)
}

// exprHasAggregate reports whether the expression contains an aggregate call.
func exprHasAggregate(e Expr) bool {
	switch x := e.(type) {
	case *FuncExpr:
		return true
	case *BinaryExpr:
		return exprHasAggregate(x.Left) || exprHasAggregate(x.Right)
	case *UnaryExpr:
		return exprHasAggregate(x.Operand)
	default:
		return false
	}
}

// conjuncts flattens an AND tree.
func conjuncts(e Expr) []Expr {
	if b, ok := e.(*BinaryExpr); ok && b.Op == "AND" {
		return append(conjuncts(b.Left), conjuncts(b.Right)...)
	}
	if e == nil {
		return nil
	}
	return []Expr{e}
}

// constantValue evaluates an expression with no column references (literals,
// placeholders, arithmetic on them). ok is false if columns are referenced.
func constantValue(e Expr, args []Datum) (Datum, bool) {
	switch x := e.(type) {
	case *ColumnRef:
		return Datum{}, false
	case *FuncExpr:
		return Datum{}, false
	case *BinaryExpr:
		if _, ok := constantValue(x.Left, args); !ok {
			return Datum{}, false
		}
		if _, ok := constantValue(x.Right, args); !ok {
			return Datum{}, false
		}
	case *UnaryExpr:
		if _, ok := constantValue(x.Operand, args); !ok {
			return Datum{}, false
		}
	}
	env := &evalEnv{args: args}
	d, err := evalExpr(env, e)
	if err != nil {
		return Datum{}, false
	}
	return d, true
}
