package sql

import (
	"crdbserverless/internal/kvserver"
	"crdbserverless/internal/rowfilter"
)

// Row-filter push-down (the paper's §8 future work): full-table-scan plans
// compile the WHERE clause's eligible conjuncts — single-column comparisons
// against constants — into a rowfilter.Filter carried in the Scan request,
// so the KV node drops non-matching rows before they cross the process
// boundary. The executor still re-applies the complete WHERE clause to the
// surviving rows, so push-down is purely an optimization: disabling it (or a
// KV node ignoring it) changes no results.

// KVRowDecoder returns the row codec the KV layer uses to evaluate pushed-
// down filters. Register it with kvserver.Cluster.SetRowDecoder.
func KVRowDecoder() kvserver.RowDecoder {
	return func(value []byte) (rowfilter.RowAccessor, error) {
		row, err := decodeRowValue(value)
		if err != nil {
			return nil, err
		}
		return datumRowAccessor(row), nil
	}
}

// datumRowAccessor adapts a decoded datum row to the filter evaluator.
type datumRowAccessor []Datum

// Column implements rowfilter.RowAccessor.
func (r datumRowAccessor) Column(i int) (rowfilter.Value, bool) {
	if i < 0 || i >= len(r) {
		return rowfilter.Value{}, false
	}
	v, ok := datumToFilterValue(r[i])
	if !ok {
		return rowfilter.Value{}, false
	}
	return v, true
}

// datumToFilterValue converts a datum to the filter value model.
func datumToFilterValue(d Datum) (rowfilter.Value, bool) {
	if d.Null {
		return rowfilter.Value{Null: true}, true
	}
	switch d.Kind {
	case TypeInt:
		return rowfilter.Value{Kind: rowfilter.KindInt, I: d.I}, true
	case TypeFloat:
		return rowfilter.Value{Kind: rowfilter.KindFloat, F: d.F}, true
	case TypeString:
		return rowfilter.Value{Kind: rowfilter.KindString, S: d.S}, true
	case TypeBool:
		return rowfilter.Value{Kind: rowfilter.KindBool, B: d.B}, true
	default:
		return rowfilter.Value{}, false
	}
}

var pushdownOps = map[string]rowfilter.Op{
	"=": rowfilter.OpEq, "!=": rowfilter.OpNe,
	"<": rowfilter.OpLt, "<=": rowfilter.OpLe,
	">": rowfilter.OpGt, ">=": rowfilter.OpGe,
}

var flippedOps = map[rowfilter.Op]rowfilter.Op{
	rowfilter.OpEq: rowfilter.OpEq, rowfilter.OpNe: rowfilter.OpNe,
	rowfilter.OpLt: rowfilter.OpGt, rowfilter.OpLe: rowfilter.OpGe,
	rowfilter.OpGt: rowfilter.OpLt, rowfilter.OpGe: rowfilter.OpLe,
}

// compilePushdownFilter extracts the WHERE conjuncts expressible in the
// restricted filter language. It returns the encoded filter, or nil when
// nothing is eligible. Ineligible conjuncts are simply left for the SQL-side
// filter; eligible ones are also re-checked there (fail-open contract).
func compilePushdownFilter(desc *TableDescriptor, where Expr, args []Datum) []byte {
	if where == nil {
		return nil
	}
	var f rowfilter.Filter
	for _, c := range conjuncts(where) {
		b, ok := c.(*BinaryExpr)
		if !ok {
			continue
		}
		op, ok := pushdownOps[b.Op]
		if !ok {
			continue
		}
		// col OP const, or const OP col (flipped).
		if cond, ok := compileCond(desc, b.Left, b.Right, op, args); ok {
			f.Conds = append(f.Conds, cond)
			continue
		}
		if cond, ok := compileCond(desc, b.Right, b.Left, flippedOps[op], args); ok {
			f.Conds = append(f.Conds, cond)
		}
	}
	if f.Empty() {
		return nil
	}
	enc, err := f.Encode()
	if err != nil {
		return nil // fail open: the SQL-side filter still applies
	}
	return enc
}

func compileCond(desc *TableDescriptor, colSide, valSide Expr, op rowfilter.Op, args []Datum) (rowfilter.Cond, bool) {
	ref, ok := colSide.(*ColumnRef)
	if !ok {
		return rowfilter.Cond{}, false
	}
	if ref.Table != "" && ref.Table != desc.Name {
		return rowfilter.Cond{}, false
	}
	col := desc.ColumnIndex(ref.Column)
	if col < 0 {
		return rowfilter.Cond{}, false
	}
	d, ok := constantValue(valSide, args)
	if !ok {
		return rowfilter.Cond{}, false
	}
	v, ok := datumToFilterValue(d)
	if !ok || v.Null {
		return rowfilter.Cond{}, false
	}
	return rowfilter.Cond{Col: col, Op: op, Value: v}, true
}
