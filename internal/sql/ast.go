package sql

import "fmt"

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// ColumnType enumerates supported column types.
type ColumnType int

// Supported column types.
const (
	TypeInt ColumnType = iota
	TypeString
	TypeFloat
	TypeBool
)

// String implements fmt.Stringer.
func (t ColumnType) String() string {
	switch t {
	case TypeInt:
		return "INT"
	case TypeString:
		return "STRING"
	case TypeFloat:
		return "FLOAT"
	case TypeBool:
		return "BOOL"
	default:
		return fmt.Sprintf("ColumnType(%d)", int(t))
	}
}

// ColumnDef is one column in CREATE TABLE.
type ColumnDef struct {
	Name string
	Type ColumnType
}

// CreateTable is CREATE TABLE name (cols..., PRIMARY KEY (...)).
type CreateTable struct {
	Name       string
	Columns    []ColumnDef
	PrimaryKey []string
}

// CreateIndex is CREATE INDEX name ON table (cols...).
type CreateIndex struct {
	Name    string
	Table   string
	Columns []string
}

// DropTable is DROP TABLE name.
type DropTable struct{ Name string }

// Insert is INSERT INTO table [(cols)] VALUES (...), (...).
type Insert struct {
	Table   string
	Columns []string // empty = table order
	Rows    [][]Expr
}

// Select is a single-table or two-table (inner join) select.
type Select struct {
	Exprs    []SelectExpr
	Table    string
	TableAs  string
	Join     *JoinClause
	Where    Expr
	GroupBy  []Expr
	OrderBy  []OrderClause
	Limit    int64 // -1 = none
	Distinct bool
}

// SelectExpr is one projection, possibly aliased; Star marks "*".
type SelectExpr struct {
	Expr Expr
	As   string
	Star bool
}

// JoinClause is JOIN table [AS alias] ON cond.
type JoinClause struct {
	Table string
	As    string
	On    Expr
}

// OrderClause is one ORDER BY term.
type OrderClause struct {
	Expr Expr
	Desc bool
}

// Update is UPDATE table SET col=expr,... [WHERE].
type Update struct {
	Table string
	Set   []SetClause
	Where Expr
}

// SetClause is one col=expr assignment.
type SetClause struct {
	Column string
	Expr   Expr
}

// Delete is DELETE FROM table [WHERE].
type Delete struct {
	Table string
	Where Expr
}

// BeginTxn, CommitTxn, RollbackTxn control explicit transactions.
type BeginTxn struct{}

// CommitTxn commits the session's explicit transaction.
type CommitTxn struct{}

// RollbackTxn aborts the session's explicit transaction.
type RollbackTxn struct{}

// SetVar is SET name = value (session settings).
type SetVar struct {
	Name  string
	Value Expr
}

// ShowTables lists the tenant's tables.
type ShowTables struct{}

func (*CreateTable) stmt() {}
func (*CreateIndex) stmt() {}
func (*DropTable) stmt()   {}
func (*Insert) stmt()      {}
func (*Select) stmt()      {}
func (*Update) stmt()      {}
func (*Delete) stmt()      {}
func (*BeginTxn) stmt()    {}
func (*CommitTxn) stmt()   {}
func (*RollbackTxn) stmt() {}
func (*SetVar) stmt()      {}
func (*ShowTables) stmt()  {}

// Expr is an expression tree node.
type Expr interface{ expr() }

// Literal is a constant value (int64, float64, string, bool, or nil).
type Literal struct{ Value interface{} }

// ColumnRef references a column, optionally qualified by table/alias.
type ColumnRef struct {
	Table  string
	Column string
}

// BinaryExpr applies an operator to two operands.
type BinaryExpr struct {
	Op          string // = != < <= > >= + - * / AND OR
	Left, Right Expr
}

// UnaryExpr applies NOT or unary minus.
type UnaryExpr struct {
	Op      string // NOT -
	Operand Expr
}

// FuncExpr is an aggregate call: COUNT(*|expr), SUM, AVG, MIN, MAX.
type FuncExpr struct {
	Name string
	Arg  Expr // nil for COUNT(*)
	Star bool
}

// Placeholder is $N in a prepared statement.
type Placeholder struct{ Index int } // 1-based

func (*Literal) expr()     {}
func (*ColumnRef) expr()   {}
func (*BinaryExpr) expr()  {}
func (*UnaryExpr) expr()   {}
func (*FuncExpr) expr()    {}
func (*Placeholder) expr() {}
