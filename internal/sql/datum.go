package sql

import (
	"fmt"
	"math"
	"strings"

	"crdbserverless/internal/keys"
)

// Datum is one SQL value. The concrete representation (rather than
// interface{}) keeps gob encoding simple and comparisons allocation-free.
type Datum struct {
	Null bool
	Kind ColumnType
	I    int64
	F    float64
	S    string
	B    bool
}

// DNull is the SQL NULL.
var DNull = Datum{Null: true}

// DInt returns an INT datum.
func DInt(v int64) Datum { return Datum{Kind: TypeInt, I: v} }

// DString returns a STRING datum.
func DString(v string) Datum { return Datum{Kind: TypeString, S: v} }

// DFloat returns a FLOAT datum.
func DFloat(v float64) Datum { return Datum{Kind: TypeFloat, F: v} }

// DBool returns a BOOL datum.
func DBool(v bool) Datum { return Datum{Kind: TypeBool, B: v} }

// String renders the datum for result output.
func (d Datum) String() string {
	if d.Null {
		return "NULL"
	}
	switch d.Kind {
	case TypeInt:
		return fmt.Sprintf("%d", d.I)
	case TypeString:
		return d.S
	case TypeFloat:
		return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%f", d.F), "0"), ".")
	case TypeBool:
		return fmt.Sprintf("%t", d.B)
	default:
		return "?"
	}
}

// Compare orders two datums. NULL sorts first. Numeric kinds compare by
// value across INT/FLOAT.
func (d Datum) Compare(o Datum) int {
	switch {
	case d.Null && o.Null:
		return 0
	case d.Null:
		return -1
	case o.Null:
		return 1
	}
	// Cross-numeric comparison.
	if d.isNumeric() && o.isNumeric() {
		a, b := d.asFloat(), o.asFloat()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	}
	switch d.Kind {
	case TypeString:
		return strings.Compare(d.S, o.S)
	case TypeBool:
		switch {
		case !d.B && o.B:
			return -1
		case d.B && !o.B:
			return 1
		default:
			return 0
		}
	default:
		return 0
	}
}

// Equal reports value equality.
func (d Datum) Equal(o Datum) bool { return d.Compare(o) == 0 }

func (d Datum) isNumeric() bool { return d.Kind == TypeInt || d.Kind == TypeFloat }

func (d Datum) asFloat() float64 {
	if d.Kind == TypeInt {
		return float64(d.I)
	}
	return d.F
}

// groupKey renders a canonical string key for GROUP BY hashing.
func (d Datum) groupKey() string {
	if d.Null {
		return "\x00null"
	}
	return fmt.Sprintf("%d:%s", d.Kind, d.String())
}

// datumFromLiteral converts a parsed literal value to a Datum.
func datumFromLiteral(v interface{}) (Datum, error) {
	switch x := v.(type) {
	case nil:
		return DNull, nil
	case int64:
		return DInt(x), nil
	case float64:
		return DFloat(x), nil
	case string:
		return DString(x), nil
	case bool:
		return DBool(x), nil
	default:
		return Datum{}, fmt.Errorf("sql: unsupported literal %T", v)
	}
}

// coerce converts d to the target column type where a lossless conversion
// exists.
func (d Datum) coerce(t ColumnType) (Datum, error) {
	if d.Null {
		return DNull, nil
	}
	if d.Kind == t {
		return d, nil
	}
	switch {
	case d.Kind == TypeInt && t == TypeFloat:
		return DFloat(float64(d.I)), nil
	case d.Kind == TypeFloat && t == TypeInt && d.F == math.Trunc(d.F):
		return DInt(int64(d.F)), nil
	default:
		return Datum{}, fmt.Errorf("sql: cannot use %s value as %s", d.Kind, t)
	}
}

// Order-preserving key encoding per datum, with a leading type tag so mixed
// keys decode unambiguously.
const (
	tagNull   byte = 0x01
	tagInt    byte = 0x02
	tagFloat  byte = 0x03
	tagString byte = 0x04
	tagBool   byte = 0x05
)

// encodeDatumKey appends an order-preserving encoding of d.
func encodeDatumKey(b keys.Key, d Datum) keys.Key {
	if d.Null {
		return append(b, tagNull)
	}
	switch d.Kind {
	case TypeInt:
		b = append(b, tagInt)
		return keys.EncodeInt64(b, d.I)
	case TypeFloat:
		b = append(b, tagFloat)
		return keys.EncodeUint64(b, sortableFloatBits(d.F))
	case TypeString:
		b = append(b, tagString)
		return keys.EncodeString(b, d.S)
	case TypeBool:
		b = append(b, tagBool)
		if d.B {
			return append(b, 1)
		}
		return append(b, 0)
	default:
		return append(b, tagNull)
	}
}

// decodeDatumKey consumes one datum encoding.
func decodeDatumKey(b keys.Key) (keys.Key, Datum, error) {
	if len(b) == 0 {
		return nil, Datum{}, fmt.Errorf("sql: empty datum key")
	}
	tag := b[0]
	b = b[1:]
	switch tag {
	case tagNull:
		return b, DNull, nil
	case tagInt:
		rest, v, err := keys.DecodeInt64(b)
		if err != nil {
			return nil, Datum{}, err
		}
		return rest, DInt(v), nil
	case tagFloat:
		rest, bits, err := keys.DecodeUint64(b)
		if err != nil {
			return nil, Datum{}, err
		}
		return rest, DFloat(floatFromSortableBits(bits)), nil
	case tagString:
		rest, s, err := keys.DecodeString(b)
		if err != nil {
			return nil, Datum{}, err
		}
		return rest, DString(s), nil
	case tagBool:
		if len(b) == 0 {
			return nil, Datum{}, fmt.Errorf("sql: truncated bool datum")
		}
		return b[1:], DBool(b[0] != 0), nil
	default:
		return nil, Datum{}, fmt.Errorf("sql: unknown datum tag 0x%02x", tag)
	}
}

// sortableFloatBits maps float64 onto uint64 so unsigned byte order matches
// numeric order (IEEE 754 trick: flip all bits of negatives, flip the sign
// bit of positives).
func sortableFloatBits(f float64) uint64 {
	bits := math.Float64bits(f)
	if bits&(1<<63) != 0 {
		return ^bits
	}
	return bits | (1 << 63)
}

func floatFromSortableBits(bits uint64) float64 {
	if bits&(1<<63) != 0 {
		return math.Float64frombits(bits &^ (1 << 63))
	}
	return math.Float64frombits(^bits)
}
