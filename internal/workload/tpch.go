package workload

import (
	"context"
	"fmt"
	"math/rand"

	"crdbserverless/internal/randutil"
	"crdbserverless/internal/sql"
)

// TPCH holds the analytical tables the §6.1.2 evaluation uses: a lineitem
// fact table (for Q1's full-scan aggregation) and a part dimension with a
// secondary index on lineitem.partkey (for Q9's index-join plan shape).
type TPCH struct {
	Rows  int // lineitem rows
	Parts int
	rng   *rand.Rand
}

// NewTPCH returns a generator producing Rows lineitem rows.
func NewTPCH(rows int, seed int64) *TPCH {
	if rows <= 0 {
		rows = 1000
	}
	parts := rows / 10
	if parts < 4 {
		parts = 4
	}
	return &TPCH{Rows: rows, Parts: parts, rng: randutil.NewRand(seed)}
}

// Setup creates and loads the schema.
func (h *TPCH) Setup(ctx context.Context, db DB) error {
	ddl := []string{
		"CREATE TABLE part (p_key INT PRIMARY KEY, p_name STRING, p_mfgr INT)",
		"CREATE TABLE lineitem (l_key INT PRIMARY KEY, l_partkey INT, l_quantity INT, l_price FLOAT, l_returnflag STRING, l_shipdate INT)",
	}
	for _, q := range ddl {
		if _, err := exec(ctx, db, q); err != nil {
			return err
		}
	}
	for p := 1; p <= h.Parts; p++ {
		if _, err := exec(ctx, db, "INSERT INTO part VALUES ($1, $2, $3)",
			sql.DInt(int64(p)), sql.DString(randString(h.rng, 8)), sql.DInt(int64(p%5))); err != nil {
			return err
		}
	}
	flags := []string{"A", "N", "R"}
	for i := 1; i <= h.Rows; i++ {
		if _, err := exec(ctx, db, "INSERT INTO lineitem VALUES ($1, $2, $3, $4, $5, $6)",
			sql.DInt(int64(i)),
			sql.DInt(int64(h.rng.Intn(h.Parts)+1)),
			sql.DInt(int64(1+h.rng.Intn(50))),
			sql.DFloat(h.rng.Float64()*1000),
			sql.DString(flags[h.rng.Intn(len(flags))]),
			sql.DInt(int64(h.rng.Intn(2500)))); err != nil {
			return err
		}
	}
	// The secondary index Q9's plan uses for its lookups.
	_, err := exec(ctx, db, "CREATE INDEX lineitem_partkey ON lineitem (l_partkey)")
	return err
}

// Q1 is the TPC-H Q1 analogue: a full table scan with grouping and
// aggregation — the query whose rows must all be marshaled across the
// process boundary in a Serverless deployment (§6.1.2: 2.3x CPU).
func (h *TPCH) Q1(ctx context.Context, db DB) (*sql.Result, error) {
	return exec(ctx, db,
		"SELECT l_returnflag, SUM(l_quantity) AS sum_qty, SUM(l_price) AS sum_price, "+
			"AVG(l_quantity) AS avg_qty, COUNT(*) AS count_order "+
			"FROM lineitem WHERE l_shipdate <= 2400 GROUP BY l_returnflag ORDER BY l_returnflag")
}

// Q9 is the TPC-H Q9 analogue: a join driven by secondary-index lookups
// before an aggregation — the plan shape where Serverless and traditional
// deployments have similar efficiency (§6.1.2).
func (h *TPCH) Q9(ctx context.Context, db DB) (*sql.Result, error) {
	part := int64(h.rng.Intn(h.Parts) + 1)
	return exec(ctx, db,
		fmt.Sprintf("SELECT p.p_mfgr, SUM(l.l_price * l.l_quantity) AS profit "+
			"FROM lineitem AS l JOIN part AS p ON l.l_partkey = p.p_key "+
			"WHERE l.l_partkey = %d GROUP BY p.p_mfgr", part))
}
