package workload

import (
	"context"
	"fmt"
	"math/rand"

	"crdbserverless/internal/randutil"
	"crdbserverless/internal/sql"
)

// YCSB implements the YCSB core workloads A-F over a single usertable, with
// the standard Zipfian request distribution. These are among the held-out
// workloads of the Fig 11 model-accuracy evaluation.
type YCSB struct {
	Records  int
	Workload byte // 'A'..'F'
	rng      *rand.Rand
	zipf     *randutil.Zipf
	inserted int
}

// NewYCSB returns a generator for the given core workload letter.
func NewYCSB(records int, letter byte, seed int64) *YCSB {
	if records <= 0 {
		records = 100
	}
	rng := randutil.NewRand(seed)
	return &YCSB{
		Records:  records,
		Workload: letter,
		rng:      rng,
		zipf:     randutil.NewZipf(randutil.Fork(rng), uint64(records), 0.99),
		inserted: records,
	}
}

// Setup creates and loads the usertable.
func (y *YCSB) Setup(ctx context.Context, db DB) error {
	if _, err := exec(ctx, db, "CREATE TABLE usertable (ycsb_key INT PRIMARY KEY, field0 STRING)"); err != nil {
		return err
	}
	for i := 0; i < y.Records; i++ {
		if _, err := exec(ctx, db, "INSERT INTO usertable VALUES ($1, $2)",
			sql.DInt(int64(i)), sql.DString(randString(y.rng, 64))); err != nil {
			return err
		}
	}
	return nil
}

// Run executes one operation from the workload's mix.
func (y *YCSB) Run(ctx context.Context, db DB) error {
	key := int64(y.zipf.Next())
	switch y.Workload {
	case 'A': // 50/50 read/update
		if y.rng.Intn(2) == 0 {
			return y.read(ctx, db, key)
		}
		return y.update(ctx, db, key)
	case 'B': // 95/5 read/update
		if y.rng.Intn(100) < 95 {
			return y.read(ctx, db, key)
		}
		return y.update(ctx, db, key)
	case 'C': // read only
		return y.read(ctx, db, key)
	case 'D': // read latest / insert
		if y.rng.Intn(100) < 95 {
			return y.read(ctx, db, int64(y.inserted-1))
		}
		return y.insert(ctx, db)
	case 'E': // short scans / insert
		if y.rng.Intn(100) < 95 {
			return y.scan(ctx, db, key)
		}
		return y.insert(ctx, db)
	case 'F': // read-modify-write
		if err := y.read(ctx, db, key); err != nil {
			return err
		}
		return y.update(ctx, db, key)
	default:
		return fmt.Errorf("workload: unknown YCSB workload %q", y.Workload)
	}
}

func (y *YCSB) read(ctx context.Context, db DB, key int64) error {
	_, err := exec(ctx, db, "SELECT field0 FROM usertable WHERE ycsb_key = $1", sql.DInt(key))
	return err
}

func (y *YCSB) update(ctx context.Context, db DB, key int64) error {
	_, err := exec(ctx, db, "UPDATE usertable SET field0 = $1 WHERE ycsb_key = $2",
		sql.DString(randString(y.rng, 64)), sql.DInt(key))
	return err
}

func (y *YCSB) insert(ctx context.Context, db DB) error {
	y.inserted++
	_, err := exec(ctx, db, "INSERT INTO usertable VALUES ($1, $2)",
		sql.DInt(int64(y.inserted)), sql.DString(randString(y.rng, 64)))
	return err
}

func (y *YCSB) scan(ctx context.Context, db DB, key int64) error {
	_, err := exec(ctx, db,
		"SELECT ycsb_key, field0 FROM usertable WHERE ycsb_key >= $1 ORDER BY ycsb_key LIMIT 10",
		sql.DInt(key))
	return err
}

// KV is a minimal key-value workload with a configurable read fraction and
// value size — the "kv" workload used for calibration sweeps.
type KV struct {
	Keys         int
	ReadFraction float64
	ValueSize    int
	rng          *rand.Rand
	created      bool
}

// NewKV returns a KV generator.
func NewKV(keys int, readFraction float64, valueSize int, seed int64) *KV {
	if keys <= 0 {
		keys = 100
	}
	if valueSize <= 0 {
		valueSize = 32
	}
	return &KV{Keys: keys, ReadFraction: readFraction, ValueSize: valueSize, rng: randutil.NewRand(seed)}
}

// Setup creates the kv table.
func (k *KV) Setup(ctx context.Context, db DB) error {
	if _, err := exec(ctx, db, "CREATE TABLE kv (k INT PRIMARY KEY, v STRING)"); err != nil {
		return err
	}
	k.created = true
	return nil
}

// Run executes one read or write.
func (k *KV) Run(ctx context.Context, db DB) error {
	key := int64(k.rng.Intn(k.Keys))
	if k.rng.Float64() < k.ReadFraction {
		_, err := exec(ctx, db, "SELECT v FROM kv WHERE k = $1", sql.DInt(key))
		return err
	}
	// Upsert-ish: delete + insert keeps the statement mix simple.
	if _, err := exec(ctx, db, "DELETE FROM kv WHERE k = $1", sql.DInt(key)); err != nil {
		return err
	}
	_, err := exec(ctx, db, "INSERT INTO kv VALUES ($1, $2)",
		sql.DInt(key), sql.DString(randString(k.rng, k.ValueSize)))
	return err
}

// Import bulk-loads rows into a fresh table — the "data import" workload of
// the Fig 11 evaluation.
type Import struct {
	Rows      int
	BatchSize int
	rng       *rand.Rand
}

// NewImport returns an import generator.
func NewImport(rows int, seed int64) *Import {
	if rows <= 0 {
		rows = 500
	}
	return &Import{Rows: rows, BatchSize: 10, rng: randutil.NewRand(seed)}
}

// Run creates the table and loads all rows in multi-row inserts.
func (im *Import) Run(ctx context.Context, db DB) error {
	if _, err := exec(ctx, db, "CREATE TABLE imported (id INT PRIMARY KEY, payload STRING)"); err != nil {
		return err
	}
	for start := 0; start < im.Rows; start += im.BatchSize {
		stmt := "INSERT INTO imported VALUES "
		n := im.BatchSize
		if start+n > im.Rows {
			n = im.Rows - start
		}
		for i := 0; i < n; i++ {
			if i > 0 {
				stmt += ", "
			}
			stmt += fmt.Sprintf("(%d, '%s')", start+i, randString(im.rng, 100))
		}
		if _, err := exec(ctx, db, stmt); err != nil {
			return err
		}
	}
	return nil
}
