package workload

import (
	"context"
	"fmt"
	"math/rand"

	"crdbserverless/internal/randutil"
	"crdbserverless/internal/sql"
)

// TPCC is a scaled-down TPC-C: warehouses, districts, customers, items,
// stock, orders, and order lines, with the new-order/payment/order-status
// transaction mix. The stock configuration carries think time and ten
// workers per warehouse; the "no wait" configuration used by the noisy
// tenants of §6.6 runs transactions in a tight loop.
type TPCC struct {
	Warehouses           int
	DistrictsPerWH       int
	CustomersPerDistrict int
	Items                int
	// PinnedWarehouse, when nonzero, makes every transaction target that
	// warehouse — noisy-neighbor workers each pin a distinct warehouse so
	// they run "with no contention" (§6.6).
	PinnedWarehouse int

	rng     *rand.Rand
	orderID int64
}

// NewTPCC returns a generator with lite-scale defaults.
func NewTPCC(warehouses int, seed int64) *TPCC {
	if warehouses <= 0 {
		warehouses = 1
	}
	return &TPCC{
		Warehouses:           warehouses,
		DistrictsPerWH:       2,
		CustomersPerDistrict: 5,
		Items:                50,
		rng:                  randutil.NewRand(seed),
	}
}

// Setup creates and loads the schema.
func (w *TPCC) Setup(ctx context.Context, db DB) error {
	ddl := []string{
		"CREATE TABLE warehouse (w_id INT PRIMARY KEY, w_name STRING, w_ytd FLOAT)",
		"CREATE TABLE district (d_w_id INT, d_id INT, d_next_o_id INT, d_ytd FLOAT, PRIMARY KEY (d_w_id, d_id))",
		"CREATE TABLE customer (c_w_id INT, c_d_id INT, c_id INT, c_name STRING, c_balance FLOAT, PRIMARY KEY (c_w_id, c_d_id, c_id))",
		"CREATE TABLE item (i_id INT PRIMARY KEY, i_name STRING, i_price FLOAT)",
		"CREATE TABLE stock (s_w_id INT, s_i_id INT, s_quantity INT, PRIMARY KEY (s_w_id, s_i_id))",
		"CREATE TABLE orders (o_w_id INT, o_d_id INT, o_id INT, o_c_id INT, o_ol_cnt INT, PRIMARY KEY (o_w_id, o_d_id, o_id))",
		"CREATE TABLE order_line (ol_w_id INT, ol_d_id INT, ol_o_id INT, ol_number INT, ol_i_id INT, ol_amount FLOAT, PRIMARY KEY (ol_w_id, ol_d_id, ol_o_id, ol_number))",
	}
	for _, q := range ddl {
		if _, err := exec(ctx, db, q); err != nil {
			return err
		}
	}
	for wh := 1; wh <= w.Warehouses; wh++ {
		if _, err := exec(ctx, db, "INSERT INTO warehouse VALUES ($1, $2, 0.0)",
			sql.DInt(int64(wh)), sql.DString(fmt.Sprintf("wh-%d", wh))); err != nil {
			return err
		}
		for d := 1; d <= w.DistrictsPerWH; d++ {
			if _, err := exec(ctx, db, "INSERT INTO district VALUES ($1, $2, 1, 0.0)",
				sql.DInt(int64(wh)), sql.DInt(int64(d))); err != nil {
				return err
			}
			for c := 1; c <= w.CustomersPerDistrict; c++ {
				if _, err := exec(ctx, db, "INSERT INTO customer VALUES ($1, $2, $3, $4, 0.0)",
					sql.DInt(int64(wh)), sql.DInt(int64(d)), sql.DInt(int64(c)),
					sql.DString(randString(w.rng, 8))); err != nil {
					return err
				}
			}
		}
	}
	for i := 1; i <= w.Items; i++ {
		if _, err := exec(ctx, db, "INSERT INTO item VALUES ($1, $2, $3)",
			sql.DInt(int64(i)), sql.DString(randString(w.rng, 6)),
			sql.DFloat(1+w.rng.Float64()*99)); err != nil {
			return err
		}
		for wh := 1; wh <= w.Warehouses; wh++ {
			if _, err := exec(ctx, db, "INSERT INTO stock VALUES ($1, $2, 100)",
				sql.DInt(int64(wh)), sql.DInt(int64(i))); err != nil {
				return err
			}
		}
	}
	return nil
}

// pickWarehouse honors PinnedWarehouse.
func (w *TPCC) pickWarehouse() int64 {
	if w.PinnedWarehouse > 0 {
		return int64(w.PinnedWarehouse)
	}
	return int64(w.rng.Intn(w.Warehouses) + 1)
}

// NewOrder runs one new-order transaction: read customer and district,
// insert the order and its lines, update stock.
func (w *TPCC) NewOrder(ctx context.Context, db DB) error {
	wh := w.pickWarehouse()
	d := int64(w.rng.Intn(w.DistrictsPerWH) + 1)
	c := int64(w.rng.Intn(w.CustomersPerDistrict) + 1)
	nLines := 2 + w.rng.Intn(3)

	if _, err := exec(ctx, db, "BEGIN"); err != nil {
		return err
	}
	abort := func(err error) error {
		//lint:allow faulterr ROLLBACK is best-effort on the abort path; the statement's own error is returned to the caller
		_, _ = db.Execute(ctx, "ROLLBACK")
		return err
	}
	if _, err := exec(ctx, db, "SELECT c_balance FROM customer WHERE c_w_id = $1 AND c_d_id = $2 AND c_id = $3",
		sql.DInt(wh), sql.DInt(d), sql.DInt(c)); err != nil {
		return abort(err)
	}
	res, err := exec(ctx, db, "SELECT d_next_o_id FROM district WHERE d_w_id = $1 AND d_id = $2",
		sql.DInt(wh), sql.DInt(d))
	if err != nil {
		return abort(err)
	}
	if len(res.Rows) == 0 {
		return abort(fmt.Errorf("workload: district (%d,%d) missing", wh, d))
	}
	w.orderID++
	oid := w.orderID
	if _, err := exec(ctx, db, "UPDATE district SET d_next_o_id = d_next_o_id + 1 WHERE d_w_id = $1 AND d_id = $2",
		sql.DInt(wh), sql.DInt(d)); err != nil {
		return abort(err)
	}
	if _, err := exec(ctx, db, "INSERT INTO orders VALUES ($1, $2, $3, $4, $5)",
		sql.DInt(wh), sql.DInt(d), sql.DInt(oid), sql.DInt(c), sql.DInt(int64(nLines))); err != nil {
		return abort(err)
	}
	for ln := 1; ln <= nLines; ln++ {
		item := int64(w.rng.Intn(w.Items) + 1)
		if _, err := exec(ctx, db, "SELECT i_price FROM item WHERE i_id = $1", sql.DInt(item)); err != nil {
			return abort(err)
		}
		if _, err := exec(ctx, db, "UPDATE stock SET s_quantity = s_quantity - 1 WHERE s_w_id = $1 AND s_i_id = $2",
			sql.DInt(wh), sql.DInt(item)); err != nil {
			return abort(err)
		}
		if _, err := exec(ctx, db, "INSERT INTO order_line VALUES ($1, $2, $3, $4, $5, $6)",
			sql.DInt(wh), sql.DInt(d), sql.DInt(oid), sql.DInt(int64(ln)),
			sql.DInt(item), sql.DFloat(w.rng.Float64()*100)); err != nil {
			return abort(err)
		}
	}
	_, err = exec(ctx, db, "COMMIT")
	return err
}

// Payment runs one payment transaction.
func (w *TPCC) Payment(ctx context.Context, db DB) error {
	wh := w.pickWarehouse()
	d := int64(w.rng.Intn(w.DistrictsPerWH) + 1)
	c := int64(w.rng.Intn(w.CustomersPerDistrict) + 1)
	amount := w.rng.Float64() * 500

	if _, err := exec(ctx, db, "BEGIN"); err != nil {
		return err
	}
	abort := func(err error) error {
		//lint:allow faulterr ROLLBACK is best-effort on the abort path; the statement's own error is returned to the caller
		_, _ = db.Execute(ctx, "ROLLBACK")
		return err
	}
	if _, err := exec(ctx, db, "UPDATE warehouse SET w_ytd = w_ytd + $1 WHERE w_id = $2",
		sql.DFloat(amount), sql.DInt(wh)); err != nil {
		return abort(err)
	}
	if _, err := exec(ctx, db, "UPDATE district SET d_ytd = d_ytd + $1 WHERE d_w_id = $2 AND d_id = $3",
		sql.DFloat(amount), sql.DInt(wh), sql.DInt(d)); err != nil {
		return abort(err)
	}
	if _, err := exec(ctx, db, "UPDATE customer SET c_balance = c_balance - $1 WHERE c_w_id = $2 AND c_d_id = $3 AND c_id = $4",
		sql.DFloat(amount), sql.DInt(wh), sql.DInt(d), sql.DInt(c)); err != nil {
		return abort(err)
	}
	_, err := exec(ctx, db, "COMMIT")
	return err
}

// OrderStatus reads a customer's most recent order.
func (w *TPCC) OrderStatus(ctx context.Context, db DB) error {
	wh := w.pickWarehouse()
	d := int64(w.rng.Intn(w.DistrictsPerWH) + 1)
	c := int64(w.rng.Intn(w.CustomersPerDistrict) + 1)
	if _, err := exec(ctx, db, "SELECT c_balance, c_name FROM customer WHERE c_w_id = $1 AND c_d_id = $2 AND c_id = $3",
		sql.DInt(wh), sql.DInt(d), sql.DInt(c)); err != nil {
		return err
	}
	_, err := exec(ctx, db,
		"SELECT o_id, o_ol_cnt FROM orders WHERE o_w_id = $1 AND o_d_id = $2 ORDER BY o_id DESC LIMIT 1",
		sql.DInt(wh), sql.DInt(d))
	return err
}

// RunMix executes one transaction drawn from the standard-ish mix
// (45% new-order, 43% payment, 12% order-status).
func (w *TPCC) RunMix(ctx context.Context, db DB) error {
	switch randutil.WeightedChoice(w.rng, []float64{45, 43, 12}) {
	case 0:
		return w.NewOrder(ctx, db)
	case 1:
		return w.Payment(ctx, db)
	default:
		return w.OrderStatus(ctx, db)
	}
}
