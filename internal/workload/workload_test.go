package workload

import (
	"context"
	"testing"
	"time"

	"crdbserverless/internal/kvserver"
	"crdbserverless/internal/sql"
	"crdbserverless/internal/txn"
)

func newSession(t *testing.T) *sql.Session {
	t.Helper()
	cheap := kvserver.CostConfig{ReadBatchOverhead: time.Nanosecond, WriteBatchOverhead: time.Nanosecond}
	var nodes []*kvserver.Node
	for i := 1; i <= 3; i++ {
		nodes = append(nodes, kvserver.NewNode(kvserver.NodeConfig{
			ID: kvserver.NodeID(i), VCPUs: 2, Cost: cheap,
		}))
	}
	c, err := kvserver.NewCluster(kvserver.ClusterConfig{}, nodes)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	ds := kvserver.NewDistSender(c, kvserver.Identity{Tenant: 2})
	coord := txn.NewCoordinator(ds, c.Clock(), 2)
	catalog := sql.NewCatalog(coord, 2)
	exec := sql.NewExecutor(catalog, coord, sql.ExecutorConfig{})
	return sql.NewSession(exec, "bench")
}

func TestTPCCSetupAndMix(t *testing.T) {
	s := newSession(t)
	ctx := context.Background()
	w := NewTPCC(2, 1)
	if err := w.Setup(ctx, s); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := w.RunMix(ctx, s); err != nil {
			t.Fatalf("mix iteration %d: %v", i, err)
		}
	}
	// Orders were created and are readable.
	res, err := s.Execute(ctx, "SELECT COUNT(*) FROM orders")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I == 0 {
		t.Fatal("no orders created")
	}
	// Order lines reference orders consistently.
	res, err = s.Execute(ctx, "SELECT COUNT(*) FROM order_line")
	if err != nil || res.Rows[0][0].I == 0 {
		t.Fatalf("order lines = %+v, %v", res, err)
	}
}

func TestTPCCNewOrderAtomicity(t *testing.T) {
	s := newSession(t)
	ctx := context.Background()
	w := NewTPCC(1, 2)
	if err := w.Setup(ctx, s); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := w.NewOrder(ctx, s); err != nil {
			t.Fatal(err)
		}
	}
	// Each order's ol_cnt matches its actual line count.
	orders, err := s.Execute(ctx, "SELECT o_id, o_ol_cnt FROM orders ORDER BY o_id")
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range orders.Rows {
		lines, err := s.Execute(ctx,
			"SELECT COUNT(*) FROM order_line WHERE ol_o_id = $1", sql.DInt(row[0].I))
		if err != nil {
			t.Fatal(err)
		}
		if lines.Rows[0][0].I != row[1].I {
			t.Fatalf("order %d: %d lines, expected %d", row[0].I, lines.Rows[0][0].I, row[1].I)
		}
	}
}

func TestTPCHQueries(t *testing.T) {
	s := newSession(t)
	ctx := context.Background()
	h := NewTPCH(200, 3)
	if err := h.Setup(ctx, s); err != nil {
		t.Fatal(err)
	}
	q1, err := h.Q1(ctx, s)
	if err != nil {
		t.Fatal(err)
	}
	// Q1 groups by returnflag: at most 3 groups, each with aggregates.
	if len(q1.Rows) == 0 || len(q1.Rows) > 3 {
		t.Fatalf("q1 groups = %d", len(q1.Rows))
	}
	var total int64
	for _, r := range q1.Rows {
		total += r[4].I // count_order
	}
	if total == 0 || total > 200 {
		t.Fatalf("q1 total count = %d", total)
	}
	q9, err := h.Q9(ctx, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(q9.Columns) != 2 {
		t.Fatalf("q9 columns = %v", q9.Columns)
	}
}

func TestYCSBWorkloads(t *testing.T) {
	for _, letter := range []byte{'A', 'B', 'C', 'D', 'E', 'F'} {
		letter := letter
		t.Run(string(letter), func(t *testing.T) {
			s := newSession(t)
			ctx := context.Background()
			y := NewYCSB(50, letter, int64(letter))
			if err := y.Setup(ctx, s); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 30; i++ {
				if err := y.Run(ctx, s); err != nil {
					t.Fatalf("op %d: %v", i, err)
				}
			}
		})
	}
	// Unknown letter errors.
	s := newSession(t)
	y := NewYCSB(10, 'Z', 1)
	y.Setup(context.Background(), s)
	if err := y.Run(context.Background(), s); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestKVWorkload(t *testing.T) {
	s := newSession(t)
	ctx := context.Background()
	kv := NewKV(20, 0.5, 16, 7)
	if err := kv.Setup(ctx, s); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := kv.Run(ctx, s); err != nil {
			t.Fatal(err)
		}
	}
}

func TestImportWorkload(t *testing.T) {
	s := newSession(t)
	ctx := context.Background()
	im := NewImport(95, 5)
	if err := im.Run(ctx, s); err != nil {
		t.Fatal(err)
	}
	res, err := s.Execute(ctx, "SELECT COUNT(*) FROM imported")
	if err != nil || res.Rows[0][0].I != 95 {
		t.Fatalf("imported = %+v, %v", res, err)
	}
}
