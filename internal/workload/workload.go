// Package workload implements the benchmark workloads the paper evaluates
// with (§6): a scaled-down TPC-C (the OLTP workload of Fig 6, Table 1, and
// the noisy-neighbor experiments), TPC-H Q1/Q9 analogues (the OLAP queries
// of §6.1.2), YCSB A-F, a raw KV workload, and a bulk import — the held-out
// workloads of the Fig 11 model-accuracy evaluation.
package workload

import (
	"context"
	"fmt"
	"math/rand"

	"crdbserverless/internal/sql"
)

// DB abstracts a SQL session (sql.Session implements it; the bench harness
// also adapts wire clients).
type DB interface {
	Execute(ctx context.Context, sqlText string, args ...sql.Datum) (*sql.Result, error)
}

// exec runs a statement and fails loudly on error.
func exec(ctx context.Context, db DB, q string, args ...sql.Datum) (*sql.Result, error) {
	res, err := db.Execute(ctx, q, args...)
	if err != nil {
		return nil, fmt.Errorf("workload: %q: %w", q, err)
	}
	return res, nil
}

// randString returns an n-char pseudo-random string.
func randString(rng *rand.Rand, n int) string {
	const chars = "abcdefghijklmnopqrstuvwxyz"
	b := make([]byte, n)
	for i := range b {
		b[i] = chars[rng.Intn(len(chars))]
	}
	return string(b)
}
