package kvscaler

import (
	"context"
	"fmt"
	"testing"
	"time"

	"crdbserverless/internal/keys"
	"crdbserverless/internal/kvpb"
	"crdbserverless/internal/kvserver"
	"crdbserverless/internal/timeutil"
)

func cheapNode(id kvserver.NodeID, clock timeutil.Clock) *kvserver.Node {
	return kvserver.NewNode(kvserver.NodeConfig{
		ID:    id,
		VCPUs: 2,
		Clock: clock,
		Cost: kvserver.CostConfig{
			ReadBatchOverhead:  time.Nanosecond,
			WriteBatchOverhead: time.Nanosecond,
			// Inflated so a modest batch volume saturates the simulated
			// fleet (busy time is accounted, not slept, on manual clocks).
			WriteByteCost: 8 * time.Microsecond,
		},
	})
}

type fixture struct {
	cluster *kvserver.Cluster
	clock   *timeutil.ManualClock
	scaler  *Scaler
}

func newFixture(t *testing.T, minNodes int) *fixture {
	t.Helper()
	clock := timeutil.NewManualClock(time.Unix(0, 0))
	var nodes []*kvserver.Node
	for i := 1; i <= 3; i++ {
		nodes = append(nodes, cheapNode(kvserver.NodeID(i), clock))
	}
	c, err := kvserver.NewCluster(kvserver.ClusterConfig{Clock: clock}, nodes)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	// Several ranges so rebalancing has something to move.
	for tid := keys.TenantID(2); tid < 10; tid++ {
		if err := c.SplitAt(keys.MakeTenantPrefix(tid)); err != nil {
			t.Fatal(err)
		}
	}
	s, err := New(Config{
		Cluster:     c,
		Clock:       clock,
		Provisioner: func(id kvserver.NodeID) *kvserver.Node { return cheapNode(id, clock) },
		MinNodes:    minNodes,
		Window:      30 * time.Second,
		Cooldown:    10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{cluster: c, clock: clock, scaler: s}
}

// driveLoad pushes real KV traffic so CPUBusy advances; with a manual clock
// the executor accounts (but does not block on) service time, so busy time
// accrues relative to wall advancement controlled here.
func (f *fixture) driveLoad(t *testing.T, heavy bool, ticks int) {
	t.Helper()
	ds := kvserver.NewDistSender(f.cluster, kvserver.Identity{Tenant: 2})
	ctx := context.Background()
	i := 0
	for tick := 0; tick < ticks; tick++ {
		if heavy {
			// Enough batches that accounted busy time outruns the 5s of
			// wall time each tick advances: 8KiB * 8µs/B ≈ 65ms per batch,
			// 400 batches ≈ 26s of busy time per 5s tick.
			for j := 0; j < 400; j++ {
				i++
				k := append(keys.MakeTenantPrefix(2), []byte(fmt.Sprintf("k%06d", i%512))...)
				if _, err := ds.Send(ctx, &kvpb.BatchRequest{Tenant: 2, Requests: []kvpb.Request{
					{Method: kvpb.Put, Key: k, Value: make([]byte, 8<<10)},
				}}); err != nil {
					t.Fatal(err)
				}
			}
		}
		f.clock.Advance(5 * time.Second)
		if _, err := f.scaler.Tick(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestScalerValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("missing cluster accepted")
	}
}

func TestScalerAddsNodeUnderLoad(t *testing.T) {
	f := newFixture(t, 3)
	before := len(f.cluster.Nodes())
	f.driveLoad(t, true, 12)
	after := len(f.cluster.Nodes())
	if after <= before {
		t.Fatalf("fleet did not grow under load: %d -> %d (util %.2f)",
			before, after, f.scaler.Utilization())
	}
	// Replicas were rebalanced onto the new node(s).
	counts := f.cluster.ReplicaCounts()
	grew := false
	for _, n := range f.cluster.Nodes() {
		if n.ID() > 3 && counts[n.ID()] > 0 {
			grew = true
		}
	}
	if !grew {
		t.Fatalf("no replicas moved to added nodes: %v", counts)
	}
}

func TestScalerRemovesIdleNode(t *testing.T) {
	f := newFixture(t, 3)
	// Grow to 4 nodes first.
	f.driveLoad(t, true, 12)
	if len(f.cluster.Nodes()) < 4 {
		t.Skipf("fleet did not grow; util %.2f", f.scaler.Utilization())
	}
	// Then go idle long enough for the window average to collapse.
	f.driveLoad(t, false, 30)
	if got := len(f.cluster.Nodes()); got != 3 {
		t.Fatalf("fleet did not shrink to min: %d nodes (util %.2f)",
			got, f.scaler.Utilization())
	}
	// Never below the minimum.
	f.driveLoad(t, false, 20)
	if got := len(f.cluster.Nodes()); got < 3 {
		t.Fatalf("fleet below minimum: %d", got)
	}
}

func TestScalerCooldownPreventsFlapping(t *testing.T) {
	f := newFixture(t, 3)
	clockActions := 0
	f.driveLoad(t, true, 2) // 10s: at most one action within the cooldown
	for _, n := range f.cluster.Nodes() {
		if n.ID() > 3 {
			clockActions++
		}
	}
	if clockActions > 1 {
		t.Fatalf("%d add actions within one cooldown window", clockActions)
	}
}

func TestScalerDataSurvivesScaleCycle(t *testing.T) {
	f := newFixture(t, 3)
	ds := kvserver.NewDistSender(f.cluster, kvserver.Identity{Tenant: 2})
	ctx := context.Background()
	k := append(keys.MakeTenantPrefix(2), []byte("precious")...)
	if _, err := ds.Send(ctx, &kvpb.BatchRequest{Tenant: 2, Requests: []kvpb.Request{
		{Method: kvpb.Put, Key: k, Value: []byte("v")},
	}}); err != nil {
		t.Fatal(err)
	}
	f.driveLoad(t, true, 12)  // grow
	f.driveLoad(t, false, 30) // shrink back
	ds2 := kvserver.NewDistSender(f.cluster, kvserver.Identity{Tenant: 2})
	resp, err := ds2.Send(ctx, &kvpb.BatchRequest{Tenant: 2, Requests: []kvpb.Request{
		{Method: kvpb.Get, Key: k},
	}})
	if err != nil || !resp.Responses[0].Exists || string(resp.Responses[0].Value) != "v" {
		t.Fatalf("data lost across scale cycle: %v", err)
	}
}
