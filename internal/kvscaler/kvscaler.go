// Package kvscaler implements automatic KV/storage node scaling — the first
// future-work item of the paper's §8: "while the system already scales SQL
// nodes up and down dynamically, it requires manual intervention to scale KV
// nodes. Ideally it would automatically add and remove KV nodes as needed."
//
// The scaler watches fleet CPU utilization over a window. Sustained
// utilization above the high-water mark adds a node and rebalances replicas
// onto it; sustained utilization below the low-water mark (above the minimum
// fleet size) drains the least-loaded node's replicas and removes it.
package kvscaler

import (
	"fmt"
	"sync"
	"time"

	"crdbserverless/internal/kvserver"
	"crdbserverless/internal/metric"
	"crdbserverless/internal/timeutil"
)

// Provisioner builds a new KV node with the given ID (the cloud-provider
// "add a VM" call).
type Provisioner func(id kvserver.NodeID) *kvserver.Node

// Config configures a Scaler.
type Config struct {
	Cluster     *kvserver.Cluster
	Provisioner Provisioner
	Clock       timeutil.Clock
	// HighWater and LowWater bound the target fleet utilization band.
	// Defaults 0.70 and 0.25.
	HighWater float64
	LowWater  float64
	// MinNodes is the smallest fleet (replication needs it). Default 3.
	MinNodes int
	// MaxNodes caps growth. Default 32.
	MaxNodes int
	// Window is the utilization averaging window. Default 1 minute.
	Window time.Duration
	// Cooldown is the minimum time between scaling actions. Default 30s.
	Cooldown time.Duration
	// RebalanceMovesPerTick bounds data movement per tick. Default 8.
	RebalanceMovesPerTick int
}

// Action describes what a Tick did.
type Action int

// Tick outcomes.
const (
	ActionNone Action = iota
	ActionAddNode
	ActionRemoveNode
)

// String implements fmt.Stringer.
func (a Action) String() string {
	switch a {
	case ActionNone:
		return "none"
	case ActionAddNode:
		return "add-node"
	case ActionRemoveNode:
		return "remove-node"
	default:
		return fmt.Sprintf("Action(%d)", int(a))
	}
}

// Scaler drives KV fleet sizing.
type Scaler struct {
	cfg Config

	mu struct {
		sync.Mutex
		lastBusy   map[kvserver.NodeID]time.Duration
		lastAt     time.Time
		util       *metric.TimeSeries
		lastAction time.Time
		nextNodeID kvserver.NodeID
	}
}

// New returns a Scaler.
func New(cfg Config) (*Scaler, error) {
	if cfg.Cluster == nil || cfg.Provisioner == nil {
		return nil, fmt.Errorf("kvscaler: cluster and provisioner required")
	}
	if cfg.Clock == nil {
		cfg.Clock = timeutil.NewRealClock()
	}
	if cfg.HighWater == 0 {
		cfg.HighWater = 0.70
	}
	if cfg.LowWater == 0 {
		cfg.LowWater = 0.25
	}
	if cfg.MinNodes == 0 {
		cfg.MinNodes = 3
	}
	if cfg.MaxNodes == 0 {
		cfg.MaxNodes = 32
	}
	if cfg.Window == 0 {
		cfg.Window = time.Minute
	}
	if cfg.Cooldown == 0 {
		cfg.Cooldown = 30 * time.Second
	}
	if cfg.RebalanceMovesPerTick == 0 {
		cfg.RebalanceMovesPerTick = 8
	}
	s := &Scaler{cfg: cfg}
	s.mu.lastBusy = make(map[kvserver.NodeID]time.Duration)
	s.mu.lastAt = cfg.Clock.Now()
	s.mu.util = metric.NewTimeSeries(2 * cfg.Window)
	var maxID kvserver.NodeID
	for _, n := range cfg.Cluster.Nodes() {
		if n.ID() > maxID {
			maxID = n.ID()
		}
	}
	s.mu.nextNodeID = maxID + 1
	return s, nil
}

// Utilization returns the latest sampled fleet utilization (0..1).
func (s *Scaler) Utilization() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if sample, ok := s.mu.util.Latest(); ok {
		return sample.Value
	}
	return 0
}

// sample records the fleet utilization since the previous call.
func (s *Scaler) sample() {
	now := s.cfg.Clock.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	dt := now.Sub(s.mu.lastAt).Seconds()
	if dt <= 0 {
		return
	}
	s.mu.lastAt = now
	var busyDelta time.Duration
	var capacity float64
	for _, n := range s.cfg.Cluster.Nodes() {
		busy := n.CPUBusy()
		if prev, ok := s.mu.lastBusy[n.ID()]; ok && busy > prev {
			busyDelta += busy - prev
		}
		s.mu.lastBusy[n.ID()] = busy
		capacity += float64(n.VCPUs())
	}
	if capacity > 0 {
		s.mu.util.Add(now, busyDelta.Seconds()/dt/capacity)
	}
}

// Tick samples utilization and performs at most one scaling action.
func (s *Scaler) Tick() (Action, error) {
	s.sample()
	now := s.cfg.Clock.Now()
	s.mu.Lock()
	avg := s.mu.util.WindowAvg(now, s.cfg.Window)
	inCooldown := now.Sub(s.mu.lastAction) < s.cfg.Cooldown
	s.mu.Unlock()
	if inCooldown {
		return ActionNone, nil
	}

	nodes := s.cfg.Cluster.Nodes()
	switch {
	case avg > s.cfg.HighWater && len(nodes) < s.cfg.MaxNodes:
		s.mu.Lock()
		id := s.mu.nextNodeID
		s.mu.nextNodeID++
		s.mu.lastAction = now
		s.mu.Unlock()
		n := s.cfg.Provisioner(id)
		if err := s.cfg.Cluster.AddNode(n); err != nil {
			return ActionNone, err
		}
		// Shift data toward the new node.
		s.cfg.Cluster.RebalanceReplicas(s.cfg.RebalanceMovesPerTick)
		return ActionAddNode, nil

	case avg < s.cfg.LowWater && len(nodes) > s.cfg.MinNodes:
		// Drain and remove the node with the fewest replicas.
		counts := s.cfg.Cluster.ReplicaCounts()
		victim := nodes[len(nodes)-1]
		for _, n := range nodes {
			if counts[n.ID()] < counts[victim.ID()] {
				victim = n
			}
		}
		if err := s.cfg.Cluster.DrainNodeReplicas(victim.ID()); err != nil {
			return ActionNone, err
		}
		if err := s.cfg.Cluster.RemoveNode(victim.ID()); err != nil {
			return ActionNone, err
		}
		s.mu.Lock()
		s.mu.lastAction = now
		delete(s.mu.lastBusy, victim.ID())
		s.mu.Unlock()
		return ActionRemoveNode, nil
	}
	// Opportunistic balance upkeep.
	s.cfg.Cluster.RebalanceReplicas(2)
	return ActionNone, nil
}
