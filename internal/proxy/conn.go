package proxy

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"

	"crdbserverless/internal/trace"
	"crdbserverless/internal/wire"
)

// proxiedConn is one client connection pinned to a backend SQL node. The
// proxy relays whole frames; because the protocol is strict request/response,
// the moments between a response and the next request are exactly the idle
// windows in which a session may migrate (§4.2.4: migration happens when the
// client session is idle).
type proxiedConn struct {
	proxy *Proxy
	// id is the proxy-assigned accept sequence number; iteration over the
	// connection set sorts by it so migration and shutdown visit
	// connections in a deterministic order.
	id         uint64
	client     net.Conn
	tenantName string
	origin     string
	startup    wire.Startup
	// span is the connection's root trace span (nil when tracing is off).
	span *trace.Span

	mu      sync.Mutex
	backend net.Conn
	baddr   string

	migrateCh chan string
	closedCh  chan struct{}
	closeOnce sync.Once
}

// connectBackend dials the SQL node and forwards the startup handshake.
func (pc *proxiedConn) connectBackend(addr string, startup *wire.Startup) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	if err := wire.WriteMessage(conn, wire.MsgStartup, startup); err != nil {
		conn.Close()
		return err
	}
	typ, payload, err := wire.ReadMessage(conn)
	if err != nil {
		conn.Close()
		return err
	}
	if typ != wire.MsgAuth {
		conn.Close()
		return fmt.Errorf("proxy: unexpected handshake response %c", typ)
	}
	var auth wire.Auth
	if err := wire.Decode(payload, &auth); err != nil {
		conn.Close()
		return err
	}
	if !auth.OK {
		conn.Close()
		return &wire.AuthError{Msg: auth.Msg}
	}
	pc.mu.Lock()
	pc.backend = conn
	pc.baddr = addr
	pc.mu.Unlock()
	return nil
}

func (pc *proxiedConn) backendAddr() string {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.baddr
}

func (pc *proxiedConn) close() {
	pc.closeOnce.Do(func() {
		close(pc.closedCh)
		pc.client.Close()
		pc.mu.Lock()
		if pc.backend != nil {
			pc.backend.Close()
		}
		pc.mu.Unlock()
	})
}

type frame struct {
	typ     byte
	payload []byte
	err     error
}

// relay runs the request/response pump until either side closes. Between
// exchanges — while the client is idle — pending migration requests execute.
func (pc *proxiedConn) relay() {
	defer pc.close()

	clientFrames := make(chan frame)
	go func() {
		for {
			typ, payload, err := wire.ReadMessage(pc.client)
			select {
			case clientFrames <- frame{typ, payload, err}:
				if err != nil {
					return
				}
			case <-pc.closedCh:
				return
			}
		}
	}()

	for {
		select {
		case <-pc.closedCh:
			return
		case to := <-pc.migrateCh:
			if err := pc.migrate(to); err != nil {
				// Migration failure must not disturb the client; the
				// session simply stays where it is.
				continue
			}
		case fr := <-clientFrames:
			if fr.err != nil {
				return
			}
			if fr.typ == wire.MsgTerminate {
				pc.mu.Lock()
				if pc.backend != nil {
					wire.WriteMessage(pc.backend, wire.MsgTerminate, &wire.Terminate{})
				}
				pc.mu.Unlock()
				return
			}
			if pc.proxy.cfg.Faults.Should("proxy.backend.kill") {
				// Injected SQL-node death between exchanges. The session must
				// re-route to a healthy backend; only if no backend can be
				// reached does the client connection die with it.
				if err := pc.killBackendAndReconnect(); err != nil {
					return
				}
			}
			if err := pc.exchange(fr); err != nil {
				return
			}
		}
	}
}

// exchange forwards one request and pumps its response back. On a traced
// connection, queries are decoded, stamped with a fresh exchange span's
// IDs, and re-encoded, so the SQL node continues the trace under it.
func (pc *proxiedConn) exchange(fr frame) error {
	pc.mu.Lock()
	backend := pc.backend
	pc.mu.Unlock()
	if backend == nil {
		return errors.New("proxy: no backend")
	}
	if fr.typ == wire.MsgQuery && pc.span != nil {
		var q wire.Query
		if err := wire.Decode(fr.payload, &q); err == nil {
			sp := pc.span.StartChild("proxy.exchange")
			defer sp.Finish()
			q.TraceID = sp.TraceID()
			q.SpanID = sp.SpanID()
			if err := wire.WriteMessage(backend, wire.MsgQuery, &q); err != nil {
				return err
			}
			typ, payload, err := wire.ReadMessage(backend)
			if err != nil {
				return err
			}
			return writeRaw(pc.client, typ, payload)
		}
	}
	if err := writeRaw(backend, fr.typ, fr.payload); err != nil {
		return err
	}
	typ, payload, err := wire.ReadMessage(backend)
	if err != nil {
		return err
	}
	return writeRaw(pc.client, typ, payload)
}

// killBackendAndReconnect severs the current backend connection (modeling a
// SQL-node crash mid-session) and re-routes the session to a healthy node via
// the directory. Unlike the idle-window serialize/restore path, session state
// cannot be captured from a dead node: a fresh startup handshake re-establishes
// the session, while the client's TCP connection survives untouched.
func (pc *proxiedConn) killBackendAndReconnect() error {
	pc.mu.Lock()
	old := pc.backend
	oldAddr := pc.baddr
	pc.backend = nil
	pc.mu.Unlock()
	if old != nil {
		old.Close()
	}
	pc.proxy.releaseBackend(oldAddr)
	backends, err := pc.proxy.cfg.Directory.Lookup(context.Background(), pc.tenantName)
	if err != nil {
		return err
	}
	// Prefer a node other than the one that just died; fall back to it only
	// when it is the sole backend (the directory may have restarted it).
	candidates := backends[:0:0]
	for _, b := range backends {
		if b.Addr != oldAddr {
			candidates = append(candidates, b)
		}
	}
	if len(candidates) == 0 {
		candidates = backends
	}
	backend, err := pc.proxy.pickBackend(candidates)
	if err != nil {
		return err
	}
	startup := pc.startup
	if err := pc.connectBackend(backend.Addr, &startup); err != nil {
		pc.proxy.releaseBackend(backend.Addr)
		return err
	}
	pc.span.Eventf("backend %s died; session re-routed to %s", oldAddr, backend.Addr)
	pc.proxy.noteBackendReconnect()
	return nil
}

// migrate executes the session-migration protocol: serialize on the old
// node, restore on the new one, swap connections (§4.2.4). The client never
// observes the swap.
func (pc *proxiedConn) migrate(toAddr string) error {
	pc.mu.Lock()
	old := pc.backend
	oldAddr := pc.baddr
	pc.mu.Unlock()
	if old == nil {
		return errors.New("proxy: no backend to migrate from")
	}
	if oldAddr == toAddr {
		return nil
	}
	sp := pc.span.StartChild("proxy.migrate")
	defer sp.Finish()
	sp.SetAttr("proxy.from", oldAddr)
	sp.SetAttr("proxy.to", toAddr)
	err := pc.runMigration(sp, old, oldAddr, toAddr)
	if err != nil {
		sp.Eventf("migration failed: %v", err)
	}
	return err
}

// runMigration performs the three-step migration handshake, recording
// each step on sp.
func (pc *proxiedConn) runMigration(sp *trace.Span, old net.Conn, oldAddr, toAddr string) error {
	// 1. Capture the session. The node refuses if the session is not idle
	// (open transaction), in which case we simply don't migrate now.
	if err := wire.WriteMessage(old, wire.MsgSerialize, &wire.Serialize{}); err != nil {
		return err
	}
	typ, payload, err := wire.ReadMessage(old)
	if err != nil || typ != wire.MsgSerialized {
		return fmt.Errorf("proxy: serialize handshake failed: %v", err)
	}
	var ser wire.Serialized
	if err := wire.Decode(payload, &ser); err != nil {
		return err
	}
	if ser.Err != "" {
		return errors.New(ser.Err)
	}
	sp.Eventf("session serialized on %s (%d bytes)", oldAddr, len(ser.Data))

	// 2. Restore on the new node using the revival token inside the blob —
	// no client re-authentication.
	conn, err := net.Dial("tcp", toAddr)
	if err != nil {
		return err
	}
	if err := wire.WriteMessage(conn, wire.MsgRestore, &wire.Restore{Data: ser.Data}); err != nil {
		conn.Close()
		return err
	}
	typ, payload, err = wire.ReadMessage(conn)
	if err != nil || typ != wire.MsgAuth {
		conn.Close()
		return fmt.Errorf("proxy: restore handshake failed: %v", err)
	}
	var auth wire.Auth
	if err := wire.Decode(payload, &auth); err != nil || !auth.OK {
		conn.Close()
		return fmt.Errorf("proxy: restore rejected: %s", auth.Msg)
	}
	sp.Eventf("session restored on %s", toAddr)

	// 3. Swap.
	pc.mu.Lock()
	pc.backend = conn
	pc.baddr = toAddr
	pc.mu.Unlock()
	old.Close()
	pc.proxy.releaseBackend(oldAddr)
	pc.proxy.mu.Lock()
	pc.proxy.mu.connsPerBackend[toAddr]++
	pc.proxy.mu.Unlock()
	pc.proxy.noteMigration()
	return nil
}

func writeRaw(conn net.Conn, typ byte, payload []byte) error {
	hdr := []byte{typ, byte(len(payload) >> 24), byte(len(payload) >> 16), byte(len(payload) >> 8), byte(len(payload))}
	if _, err := conn.Write(hdr); err != nil {
		return err
	}
	_, err := conn.Write(payload)
	return err
}
