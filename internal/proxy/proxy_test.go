package proxy

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"crdbserverless/internal/core"
	"crdbserverless/internal/kvserver"
	"crdbserverless/internal/server"
	"crdbserverless/internal/sql"
	"crdbserverless/internal/tenantcost"
	"crdbserverless/internal/timeutil"
	"crdbserverless/internal/wire"
)

var instanceIDs int64

type env struct {
	cluster *kvserver.Cluster
	reg     *core.Registry
	nodes   []*server.SQLNode
	mu      sync.Mutex
}

func newEnv(t *testing.T) *env {
	t.Helper()
	cheap := kvserver.CostConfig{ReadBatchOverhead: time.Nanosecond, WriteBatchOverhead: time.Nanosecond}
	var nodes []*kvserver.Node
	for i := 1; i <= 3; i++ {
		nodes = append(nodes, kvserver.NewNode(kvserver.NodeConfig{
			ID: kvserver.NodeID(i), VCPUs: 2, Cost: cheap,
		}))
	}
	c, err := kvserver.NewCluster(kvserver.ClusterConfig{}, nodes)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	reg, err := core.NewRegistry(c, tenantcost.NewBucketServer(timeutil.NewRealClock()))
	if err != nil {
		t.Fatal(err)
	}
	return &env{cluster: c, reg: reg}
}

func (e *env) addNode(t *testing.T, tenant *core.Tenant) *server.SQLNode {
	t.Helper()
	n := server.NewSQLNode(server.SQLNodeConfig{
		InstanceID: atomic.AddInt64(&instanceIDs, 1),
		Cluster:    e.cluster,
		Registry:   e.reg,
		Region:     "us-central1",
	})
	if err := n.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Close)
	if err := n.AssignTenant(context.Background(), tenant); err != nil {
		t.Fatal(err)
	}
	e.mu.Lock()
	e.nodes = append(e.nodes, n)
	e.mu.Unlock()
	return n
}

// Lookup implements Directory over the env's nodes.
func (e *env) Lookup(ctx context.Context, tenantName string) ([]Backend, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []Backend
	for _, n := range e.nodes {
		if tn := n.Tenant(); tn != nil && tn.Name == tenantName {
			out = append(out, Backend{ID: n.InstanceID(), Addr: n.Addr(), Draining: n.Draining()})
		}
	}
	if len(out) == 0 {
		return nil, errors.New("tenant not found")
	}
	return out, nil
}

func startProxy(t *testing.T, cfg Config) *Proxy {
	t.Helper()
	p := New(cfg)
	if err := p.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

func TestProxyRoutesByTenant(t *testing.T) {
	e := newEnv(t)
	ctx := context.Background()
	acme, _ := e.reg.CreateTenant(ctx, "acme", core.TenantOptions{})
	globex, _ := e.reg.CreateTenant(ctx, "globex", core.TenantOptions{})
	e.addNode(t, acme)
	e.addNode(t, globex)
	p := startProxy(t, Config{Directory: e})

	ca, err := wire.Connect(p.Addr(), map[string]string{"tenant": "acme"})
	if err != nil {
		t.Fatal(err)
	}
	defer ca.Close()
	cg, err := wire.Connect(p.Addr(), map[string]string{"tenant": "globex"})
	if err != nil {
		t.Fatal(err)
	}
	defer cg.Close()

	// Each tenant sees only its own schema.
	if _, err := ca.Query("CREATE TABLE acme_t (a INT PRIMARY KEY)"); err != nil {
		t.Fatal(err)
	}
	if _, err := cg.Query("CREATE TABLE globex_t (a INT PRIMARY KEY)"); err != nil {
		t.Fatal(err)
	}
	res, err := ca.Query("SHOW TABLES")
	if err != nil || len(res.Rows) != 1 || res.Rows[0][0].S != "acme_t" {
		t.Fatalf("acme tables = %+v, %v", res, err)
	}
	res, err = cg.Query("SHOW TABLES")
	if err != nil || len(res.Rows) != 1 || res.Rows[0][0].S != "globex_t" {
		t.Fatalf("globex tables = %+v, %v", res, err)
	}
}

func TestProxyRequiresTenantParam(t *testing.T) {
	e := newEnv(t)
	p := startProxy(t, Config{Directory: e})
	if _, err := wire.Connect(p.Addr(), map[string]string{}); err == nil {
		t.Fatal("connection without tenant accepted")
	}
}

func TestProxyUnknownTenant(t *testing.T) {
	e := newEnv(t)
	p := startProxy(t, Config{Directory: e})
	if _, err := wire.Connect(p.Addr(), map[string]string{"tenant": "ghost"}); err == nil {
		t.Fatal("unknown tenant accepted")
	}
}

func TestProxyLeastConnections(t *testing.T) {
	e := newEnv(t)
	ctx := context.Background()
	acme, _ := e.reg.CreateTenant(ctx, "acme", core.TenantOptions{})
	n1 := e.addNode(t, acme)
	n2 := e.addNode(t, acme)
	p := startProxy(t, Config{Directory: e})

	var clients []*wire.Client
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()
	for i := 0; i < 8; i++ {
		c, err := wire.Connect(p.Addr(), map[string]string{"tenant": "acme"})
		if err != nil {
			t.Fatal(err)
		}
		clients = append(clients, c)
	}
	counts := p.ConnsPerBackend()
	if counts[n1.Addr()] != 4 || counts[n2.Addr()] != 4 {
		t.Fatalf("least-connections imbalance: %v", counts)
	}
}

func TestProxySkipsDrainingBackends(t *testing.T) {
	e := newEnv(t)
	ctx := context.Background()
	acme, _ := e.reg.CreateTenant(ctx, "acme", core.TenantOptions{})
	n1 := e.addNode(t, acme)
	n2 := e.addNode(t, acme)
	n1.Drain()
	p := startProxy(t, Config{Directory: e})
	for i := 0; i < 4; i++ {
		c, err := wire.Connect(p.Addr(), map[string]string{"tenant": "acme"})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
	}
	counts := p.ConnsPerBackend()
	if counts[n1.Addr()] != 0 || counts[n2.Addr()] != 4 {
		t.Fatalf("draining backend received connections: %v", counts)
	}
}

func TestProxyAuthThrottling(t *testing.T) {
	e := newEnv(t)
	ctx := context.Background()
	acme, _ := e.reg.CreateTenant(ctx, "acme", core.TenantOptions{Password: "secret"})
	e.addNode(t, acme)
	mc := timeutil.NewManualClock(time.Unix(0, 0))
	p := startProxy(t, Config{Directory: e, Clock: mc, ThrottleBase: time.Second})

	// First failure: rejected by the backend, throttle armed.
	if _, err := wire.Connect(p.Addr(), map[string]string{"tenant": "acme", "password": "bad"}); err == nil {
		t.Fatal("bad password accepted")
	}
	if p.AuthFailures() != 1 {
		t.Fatalf("auth failures = %d", p.AuthFailures())
	}
	// Second attempt within backoff: rejected by the proxy itself, even
	// with the right password.
	_, err := wire.Connect(p.Addr(), map[string]string{"tenant": "acme", "password": "secret"})
	if err == nil {
		t.Fatal("throttled origin admitted")
	}
	// After the backoff expires, the connection succeeds and clears state.
	mc.Advance(2 * time.Second)
	c, err := wire.Connect(p.Addr(), map[string]string{"tenant": "acme", "password": "secret"})
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
}

func TestProxyExponentialBackoffGrows(t *testing.T) {
	e := newEnv(t)
	ctx := context.Background()
	acme, _ := e.reg.CreateTenant(ctx, "acme", core.TenantOptions{Password: "secret"})
	e.addNode(t, acme)
	mc := timeutil.NewManualClock(time.Unix(0, 0))
	p := startProxy(t, Config{Directory: e, Clock: mc, ThrottleBase: time.Second})

	wire.Connect(p.Addr(), map[string]string{"tenant": "acme", "password": "bad"})
	mc.Advance(1100 * time.Millisecond) // past first backoff (1s)
	wire.Connect(p.Addr(), map[string]string{"tenant": "acme", "password": "bad"})
	// Second backoff is 2s; 1.1s later we must still be throttled.
	mc.Advance(1100 * time.Millisecond)
	if _, err := wire.Connect(p.Addr(), map[string]string{"tenant": "acme", "password": "secret"}); err == nil {
		t.Fatal("backoff did not grow")
	}
}

func TestProxyDenyList(t *testing.T) {
	e := newEnv(t)
	ctx := context.Background()
	acme, _ := e.reg.CreateTenant(ctx, "acme", core.TenantOptions{})
	e.addNode(t, acme)
	p := startProxy(t, Config{Directory: e, DenyList: []string{"127.0.0.1"}})
	if _, err := wire.Connect(p.Addr(), map[string]string{"tenant": "acme"}); err == nil {
		t.Fatal("denied origin admitted")
	}
	// Allow list without a match also rejects.
	p2 := startProxy(t, Config{Directory: e, AllowList: []string{"10.1.2."}})
	if _, err := wire.Connect(p2.Addr(), map[string]string{"tenant": "acme"}); err == nil {
		t.Fatal("non-allowlisted origin admitted")
	}
}

func TestProxySessionMigration(t *testing.T) {
	e := newEnv(t)
	ctx := context.Background()
	acme, _ := e.reg.CreateTenant(ctx, "acme", core.TenantOptions{})
	n1 := e.addNode(t, acme)
	p := startProxy(t, Config{Directory: e})

	c, err := wire.Connect(p.Addr(), map[string]string{"tenant": "acme", "user": "app"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Query("CREATE TABLE t (a INT PRIMARY KEY, b INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query("INSERT INTO t VALUES (1, 10)"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query("SET app = 'x'"); err != nil {
		t.Fatal(err)
	}

	// Scale up: a second node appears; drain the first and migrate.
	n2 := e.addNode(t, acme)
	n1.Drain()
	if n := p.RequestMigrations(n1.Addr(), n2.Addr()); n != 1 {
		t.Fatalf("requested %d migrations", n)
	}
	// The migration happens at the next idle moment; poll until done.
	deadline := time.Now().Add(5 * time.Second)
	for p.Migrations() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("migration never completed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The client continues transparently — same session, same data.
	res, err := c.Query("SELECT b FROM t WHERE a = 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].I != 10 {
		t.Fatalf("post-migration query = %+v", res)
	}
	// And it is genuinely served by n2 now.
	if got := n2.ConnCount(); got != 1 {
		t.Fatalf("n2 conns = %d", got)
	}
	_ = ctx
}

func TestProxyMigrationSkipsBusySessions(t *testing.T) {
	e := newEnv(t)
	ctx := context.Background()
	acme, _ := e.reg.CreateTenant(ctx, "acme", core.TenantOptions{})
	n1 := e.addNode(t, acme)
	p := startProxy(t, Config{Directory: e})

	c, err := wire.Connect(p.Addr(), map[string]string{"tenant": "acme", "user": "app"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Query("CREATE TABLE t (a INT PRIMARY KEY)")
	c.Query("BEGIN")
	c.Query("INSERT INTO t VALUES (1)")

	n2 := e.addNode(t, acme)
	p.RequestMigrations(n1.Addr(), n2.Addr())
	time.Sleep(100 * time.Millisecond)
	if p.Migrations() != 0 {
		t.Fatal("busy session migrated")
	}
	// The transaction still completes on the original node.
	if _, err := c.Query("COMMIT"); err != nil {
		t.Fatal(err)
	}
	res, err := c.Query("SELECT COUNT(*) FROM t")
	if err != nil || res.Rows[0][0].I != 1 {
		t.Fatalf("post-commit count = %+v, %v", res, err)
	}
}

func TestProxyConcurrentClients(t *testing.T) {
	e := newEnv(t)
	ctx := context.Background()
	acme, _ := e.reg.CreateTenant(ctx, "acme", core.TenantOptions{})
	e.addNode(t, acme)
	e.addNode(t, acme)
	p := startProxy(t, Config{Directory: e})

	setup, err := wire.Connect(p.Addr(), map[string]string{"tenant": "acme"})
	if err != nil {
		t.Fatal(err)
	}
	setup.Query("CREATE TABLE t (a INT PRIMARY KEY, g INT)")
	setup.Close()

	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := wire.Connect(p.Addr(), map[string]string{"tenant": "acme"})
			if err != nil {
				errCh <- err
				return
			}
			defer c.Close()
			for i := 0; i < 10; i++ {
				if _, err := c.Query(fmt.Sprintf("INSERT INTO t VALUES (%d, %d)", g*100+i, g)); err != nil {
					errCh <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	check, _ := wire.Connect(p.Addr(), map[string]string{"tenant": "acme"})
	defer check.Close()
	res, err := check.Query("SELECT COUNT(*) FROM t")
	if err != nil || res.Rows[0][0].I != 80 {
		t.Fatalf("count = %+v, %v", res, err)
	}
	_ = sql.DInt(0)
}

func TestProxyRebalanceTickSmoothsAfterScaleUp(t *testing.T) {
	e := newEnv(t)
	ctx := context.Background()
	acme, _ := e.reg.CreateTenant(ctx, "acme", core.TenantOptions{})
	n1 := e.addNode(t, acme)
	p := startProxy(t, Config{Directory: e})

	// Six idle connections all land on the only node.
	var clients []*wire.Client
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()
	for i := 0; i < 6; i++ {
		c, err := wire.Connect(p.Addr(), map[string]string{"tenant": "acme", "user": "app"})
		if err != nil {
			t.Fatal(err)
		}
		clients = append(clients, c)
	}
	if got := p.ConnsPerBackend()[n1.Addr()]; got != 6 {
		t.Fatalf("pre-scale distribution: %v", p.ConnsPerBackend())
	}

	// Scale up: a second node appears; the rebalance tick smooths the
	// distribution without any client noticing.
	n2 := e.addNode(t, acme)
	deadline := time.Now().Add(5 * time.Second)
	for {
		p.RebalanceTick(ctx)
		counts := p.ConnsPerBackend()
		if counts[n1.Addr()] == 3 && counts[n2.Addr()] == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebalance never converged: %v", counts)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// All sessions still work after being shuffled.
	for _, c := range clients {
		if _, err := c.Query("SHOW TABLES"); err != nil {
			t.Fatal(err)
		}
	}
	if p.Migrations() == 0 {
		t.Fatal("no migrations recorded")
	}
}
