package proxy

import (
	"context"
	"testing"

	"crdbserverless/internal/core"
	"crdbserverless/internal/faultinject"
	"crdbserverless/internal/wire"
)

// An injected backend death between exchanges must be invisible to the
// client: the session re-routes to another SQL node serving the tenant and
// keeps answering queries (data lives in the shared KV cluster, so only
// session-local state is lost).
func TestBackendKillForcesReconnect(t *testing.T) {
	e := newEnv(t)
	ctx := context.Background()
	acme, err := e.reg.CreateTenant(ctx, "acme", core.TenantOptions{})
	if err != nil {
		t.Fatal(err)
	}
	e.addNode(t, acme)
	e.addNode(t, acme)
	reg := faultinject.New(5, nil)
	p := startProxy(t, Config{Directory: e, Faults: reg})

	conn, err := wire.Connect(p.Addr(), map[string]string{"tenant": "acme"})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Query("CREATE TABLE t (a INT PRIMARY KEY)"); err != nil {
		t.Fatal(err)
	}
	// The backend dies out from under the session before its next query.
	reg.Enable("proxy.backend.kill", faultinject.Site{Probability: 1, MaxFires: 1})
	if _, err := conn.Query("INSERT INTO t VALUES (1)"); err != nil {
		t.Fatalf("query across backend death = %v", err)
	}
	res, err := conn.Query("SELECT a FROM t")
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("follow-up query = %+v, %v", res, err)
	}
	if got := p.BackendReconnects(); got != 1 {
		t.Fatalf("backend reconnects = %d, want 1", got)
	}
}

// With a single backend, the reconnect lands on the same (restarted) node;
// the session still survives.
func TestBackendKillReconnectsToSoleBackend(t *testing.T) {
	e := newEnv(t)
	ctx := context.Background()
	acme, err := e.reg.CreateTenant(ctx, "acme", core.TenantOptions{})
	if err != nil {
		t.Fatal(err)
	}
	e.addNode(t, acme)
	reg := faultinject.New(6, nil)
	p := startProxy(t, Config{Directory: e, Faults: reg})

	conn, err := wire.Connect(p.Addr(), map[string]string{"tenant": "acme"})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Query("CREATE TABLE t (a INT PRIMARY KEY)"); err != nil {
		t.Fatal(err)
	}
	reg.Enable("proxy.backend.kill", faultinject.Site{Probability: 1, MaxFires: 1})
	if _, err := conn.Query("SELECT a FROM t"); err != nil {
		t.Fatalf("query across backend death = %v", err)
	}
	if got := p.BackendReconnects(); got != 1 {
		t.Fatalf("backend reconnects = %d, want 1", got)
	}
}
