// Package proxy implements the routing and load-balancing layer of §4.2.2:
// a TCP proxy that identifies the tenant from the startup message, routes to
// the tenant's SQL nodes with a least-connections policy, throttles failed
// authentication with exponential backoff, enforces IP allow/deny lists, and
// transparently migrates idle sessions between SQL nodes (§4.2.4).
package proxy

import (
	"context"
	"errors"
	"net"
	"sort"
	"strings"
	"sync"
	"time"

	"crdbserverless/internal/faultinject"
	"crdbserverless/internal/metric"
	"crdbserverless/internal/tenantobs"
	"crdbserverless/internal/timeutil"
	"crdbserverless/internal/trace"
	"crdbserverless/internal/wire"
)

// Backend is one SQL node a tenant connection may be routed to.
type Backend struct {
	ID       int64
	Addr     string
	Draining bool
}

// Directory resolves tenants to SQL nodes. The orchestrator implements it;
// for a suspended tenant, Lookup triggers the cold-start path (pulling a
// warm node and stamping it) before returning.
type Directory interface {
	Lookup(ctx context.Context, tenantName string) ([]Backend, error)
}

// Config configures a Proxy.
type Config struct {
	Directory Directory
	Clock     timeutil.Clock
	// Metrics receives the proxy's counters (proxy.*). A fresh registry is
	// created when nil.
	Metrics *metric.Registry
	// ThrottleBase is the initial backoff after a failed authentication
	// (doubles per failure). Defaults to 100ms.
	ThrottleBase time.Duration
	// AllowList and DenyList match client IP prefixes. An empty allow list
	// admits everyone not denied; deny wins over allow.
	AllowList []string
	DenyList  []string
	// Tracer, when non-nil, records a root span per proxied connection
	// (with routing, per-exchange, and migration child spans) and stamps
	// each forwarded query with trace IDs so the SQL node continues the
	// trace.
	Tracer *trace.Tracer
	// Faults, when non-nil, arms the proxy's fault-injection sites:
	// proxy.backend.kill severs the backend connection between exchanges,
	// forcing the session to re-route to a healthy SQL node while the
	// client's connection survives.
	Faults *faultinject.Registry
	// Obs, when non-nil, receives per-tenant connection counts
	// (proxy.tenant_conns).
	Obs *tenantobs.Plane
}

// Proxy is a running proxy server.
type Proxy struct {
	cfg Config
	ln  net.Listener

	mu struct {
		sync.Mutex
		closed bool
		// connsPerBackend drives least-connections routing.
		connsPerBackend map[string]int
		conns           map[*proxiedConn]struct{}
		throttle        map[string]*throttleState
		// nextConnID seeds proxiedConn.id in accept order.
		nextConnID uint64
	}
	wg sync.WaitGroup

	migrations        *metric.Counter
	authFailures      *metric.Counter
	backendReconnects *metric.Counter
}

type throttleState struct {
	failures int
	until    time.Time
}

// New returns a Proxy (call Start).
func New(cfg Config) *Proxy {
	if cfg.Clock == nil {
		cfg.Clock = timeutil.NewRealClock()
	}
	if cfg.ThrottleBase == 0 {
		cfg.ThrottleBase = 100 * time.Millisecond
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metric.NewRegistry()
	}
	p := &Proxy{cfg: cfg}
	p.migrations = cfg.Metrics.NewCounter("proxy.migrations")
	p.authFailures = cfg.Metrics.NewCounter("proxy.auth_failures")
	p.backendReconnects = cfg.Metrics.NewCounter("proxy.backend_reconnects")
	p.mu.connsPerBackend = make(map[string]int)
	p.mu.conns = make(map[*proxiedConn]struct{})
	p.mu.throttle = make(map[string]*throttleState)
	return p
}

// Start listens on addr ("127.0.0.1:0" for an ephemeral port).
func (p *Proxy) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	p.ln = ln
	p.wg.Add(1)
	go p.acceptLoop()
	return nil
}

// Addr returns the proxy's listen address.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Close shuts the proxy down, closing all proxied connections.
func (p *Proxy) Close() {
	p.mu.Lock()
	if p.mu.closed {
		p.mu.Unlock()
		return
	}
	p.mu.closed = true
	conns := sortedConns(p.mu.conns)
	p.mu.Unlock()
	p.ln.Close()
	for _, c := range conns {
		c.close()
	}
	p.wg.Wait()
}

// Migrations returns the number of completed session migrations.
func (p *Proxy) Migrations() int64 { return p.migrations.Value() }

// BackendReconnects returns the number of sessions re-routed to a new SQL
// node after their backend connection died mid-session.
func (p *Proxy) BackendReconnects() int64 { return p.backendReconnects.Value() }

// AuthFailures returns the number of rejected authentication attempts seen.
func (p *Proxy) AuthFailures() int64 { return p.authFailures.Value() }

// ActiveConns returns the number of proxied connections.
func (p *Proxy) ActiveConns() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.mu.conns)
}

// ConnsPerBackend returns a snapshot of per-backend connection counts.
func (p *Proxy) ConnsPerBackend() map[string]int {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]int, len(p.mu.connsPerBackend))
	for k, v := range p.mu.connsPerBackend {
		out[k] = v
	}
	return out
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.handleConn(conn)
		}()
	}
}

func clientOrigin(conn net.Conn) string {
	host, _, err := net.SplitHostPort(conn.RemoteAddr().String())
	if err != nil {
		return conn.RemoteAddr().String()
	}
	return host
}

// ipAllowed applies the deny/allow lists (§4.2.2's second security control).
func (p *Proxy) ipAllowed(origin string) bool {
	for _, d := range p.cfg.DenyList {
		if strings.HasPrefix(origin, d) {
			return false
		}
	}
	if len(p.cfg.AllowList) == 0 {
		return true
	}
	for _, a := range p.cfg.AllowList {
		if strings.HasPrefix(origin, a) {
			return true
		}
	}
	return false
}

// throttled reports whether the origin is inside its auth-failure backoff.
func (p *Proxy) throttled(origin string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	st, ok := p.mu.throttle[origin]
	return ok && p.cfg.Clock.Now().Before(st.until)
}

// noteAuthFailure applies exponential backoff to the origin.
func (p *Proxy) noteAuthFailure(origin string) {
	p.authFailures.Inc(1)
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.mu.throttle[origin]
	if st == nil {
		st = &throttleState{}
		p.mu.throttle[origin] = st
	}
	st.failures++
	backoff := p.cfg.ThrottleBase << uint(st.failures-1)
	if backoff > time.Minute {
		backoff = time.Minute
	}
	st.until = p.cfg.Clock.Now().Add(backoff)
}

// noteAuthSuccess clears the origin's backoff.
func (p *Proxy) noteAuthSuccess(origin string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.mu.throttle, origin)
}

// pickBackend chooses the non-draining backend with the fewest proxied
// connections ("least connections", §4.2.2).
func (p *Proxy) pickBackend(backends []Backend) (Backend, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	best := -1
	for i, b := range backends {
		if b.Draining {
			continue
		}
		if best == -1 || p.mu.connsPerBackend[b.Addr] < p.mu.connsPerBackend[backends[best].Addr] {
			best = i
		}
	}
	if best == -1 {
		return Backend{}, errors.New("proxy: no healthy SQL nodes")
	}
	p.mu.connsPerBackend[backends[best].Addr]++
	return backends[best], nil
}

func (p *Proxy) releaseBackend(addr string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.mu.connsPerBackend[addr] > 0 {
		p.mu.connsPerBackend[addr]--
	}
}

func (p *Proxy) handleConn(client net.Conn) {
	defer client.Close()
	origin := clientOrigin(client)
	if !p.ipAllowed(origin) {
		wire.WriteMessage(client, wire.MsgAuth, &wire.Auth{OK: false, Msg: "address not allowed"})
		return
	}
	if p.throttled(origin) {
		wire.WriteMessage(client, wire.MsgAuth, &wire.Auth{OK: false, Msg: "too many failed attempts; backoff in effect"})
		return
	}
	// Identify the tenant from the startup message before any routing.
	typ, payload, err := wire.ReadMessage(client)
	if err != nil || typ != wire.MsgStartup {
		return
	}
	var startup wire.Startup
	if err := wire.Decode(payload, &startup); err != nil {
		return
	}
	tenantName := startup.Params["tenant"]
	if tenantName == "" {
		wire.WriteMessage(client, wire.MsgAuth, &wire.Auth{OK: false, Msg: "tenant parameter required"})
		return
	}

	ctx := context.Background()
	var span *trace.Span
	if p.cfg.Tracer != nil {
		span = p.cfg.Tracer.StartRoot("proxy.conn")
		defer span.Finish()
		span.SetAttr("proxy.tenant", tenantName)
		span.SetAttr("proxy.origin", origin)
		ctx = trace.ContextWithSpan(ctx, span)
	}
	// Routing — for a suspended tenant this is the cold-start path, and
	// the orchestrator's pod-assignment work nests under proxy.route.
	rctx, routeSp := trace.StartSpan(ctx, "proxy.route")
	backends, err := p.cfg.Directory.Lookup(rctx, tenantName)
	if err != nil {
		routeSp.Finish()
		wire.WriteMessage(client, wire.MsgAuth, &wire.Auth{OK: false, Msg: err.Error()})
		return
	}
	backend, err := p.pickBackend(backends)
	if err != nil {
		routeSp.Finish()
		wire.WriteMessage(client, wire.MsgAuth, &wire.Auth{OK: false, Msg: err.Error()})
		return
	}
	routeSp.SetAttr("proxy.backend", backend.Addr)
	routeSp.Finish()

	pc := &proxiedConn{
		proxy:      p,
		client:     client,
		tenantName: tenantName,
		origin:     origin,
		startup:    startup,
		span:       span,
		migrateCh:  make(chan string, 1),
		closedCh:   make(chan struct{}),
	}
	if err := pc.connectBackend(backend.Addr, &startup); err != nil {
		p.releaseBackend(backend.Addr)
		// Detect the backend's negative auth response and throttle.
		var authErr *wire.AuthError
		if errors.As(err, &authErr) {
			p.noteAuthFailure(origin)
			wire.WriteMessage(client, wire.MsgAuth, &wire.Auth{OK: false, Msg: authErr.Msg})
		} else {
			wire.WriteMessage(client, wire.MsgAuth, &wire.Auth{OK: false, Msg: err.Error()})
		}
		return
	}
	p.noteAuthSuccess(origin)
	if err := wire.WriteMessage(client, wire.MsgAuth, &wire.Auth{OK: true}); err != nil {
		pc.close()
		p.releaseBackend(backend.Addr)
		return
	}
	p.cfg.Obs.ConnOpened(tenantName)

	p.mu.Lock()
	p.mu.nextConnID++
	pc.id = p.mu.nextConnID
	p.mu.conns[pc] = struct{}{}
	p.mu.Unlock()
	defer func() {
		p.mu.Lock()
		delete(p.mu.conns, pc)
		p.mu.Unlock()
		p.releaseBackend(pc.backendAddr())
	}()

	pc.relay()
}

// RequestMigrations asks every connection currently on fromAddr to migrate
// to toAddr at its next idle moment (used for scale-down draining and
// post-scale-up smoothing, §4.2.2).
func (p *Proxy) RequestMigrations(fromAddr, toAddr string) int {
	p.mu.Lock()
	all := sortedConns(p.mu.conns)
	p.mu.Unlock()
	conns := make([]*proxiedConn, 0)
	for _, pc := range all {
		if pc.backendAddr() == fromAddr {
			conns = append(conns, pc)
		}
	}
	n := 0
	for _, pc := range conns {
		select {
		case pc.migrateCh <- toAddr:
			n++
		default: // a migration is already pending
		}
	}
	return n
}

// RequestMigration asks exactly one connection on fromAddr to migrate to
// toAddr at its next idle moment. It reports whether a connection accepted
// the request.
func (p *Proxy) RequestMigration(fromAddr, toAddr string) bool {
	p.mu.Lock()
	all := sortedConns(p.mu.conns)
	p.mu.Unlock()
	conns := make([]*proxiedConn, 0)
	for _, pc := range all {
		if pc.backendAddr() == fromAddr {
			conns = append(conns, pc)
		}
	}
	for _, pc := range conns {
		select {
		case pc.migrateCh <- toAddr:
			return true
		default:
		}
	}
	return false
}

func (p *Proxy) noteMigration() { p.migrations.Inc(1) }

func (p *Proxy) noteBackendReconnect() { p.backendReconnects.Inc(1) }

// RebalanceTick evens connection counts across each tenant's healthy
// backends (§4.2.2: "proxy servers periodically re-balance connections
// across available SQL nodes"; after a scale-up, connections migrate from
// loaded nodes to new ones to smooth the distribution). It requests at most
// one migration per overloaded backend per tick, and returns the number of
// migrations requested.
func (p *Proxy) RebalanceTick(ctx context.Context) int {
	// Group connections by tenant, visiting tenants in name order so each
	// tick requests the same migrations given the same connection set.
	p.mu.Lock()
	all := sortedConns(p.mu.conns)
	p.mu.Unlock()
	byTenant := make(map[string][]*proxiedConn)
	tenants := make([]string, 0)
	for _, pc := range all {
		if _, ok := byTenant[pc.tenantName]; !ok {
			tenants = append(tenants, pc.tenantName)
		}
		byTenant[pc.tenantName] = append(byTenant[pc.tenantName], pc)
	}
	sort.Strings(tenants)

	requested := 0
	for _, tenant := range tenants {
		conns := byTenant[tenant]
		backends, err := p.cfg.Directory.Lookup(ctx, tenant)
		if err != nil {
			continue
		}
		healthy := make([]Backend, 0, len(backends))
		for _, b := range backends {
			if !b.Draining {
				healthy = append(healthy, b)
			}
		}
		if len(healthy) < 2 {
			continue
		}
		counts := make(map[string]int, len(healthy))
		for _, b := range healthy {
			counts[b.Addr] = 0
		}
		for _, pc := range conns {
			if _, ok := counts[pc.backendAddr()]; ok {
				counts[pc.backendAddr()]++
			}
		}
		// Move one connection at a time from the most- to the least-loaded
		// backend whenever they differ by more than one.
		for {
			var maxA, minA string
			maxC, minC := -1, 1<<30
			for addr, c := range counts {
				// Ties break toward the lexically smaller address so the
				// chosen pair does not depend on map iteration order.
				if c > maxC || (c == maxC && addr < maxA) {
					maxC, maxA = c, addr
				}
				if c < minC || (c == minC && addr < minA) {
					minC, minA = c, addr
				}
			}
			if maxC-minC <= 1 {
				break
			}
			if !p.RequestMigration(maxA, minA) {
				break
			}
			requested++
			counts[maxA]--
			counts[minA]++
		}
	}
	return requested
}

// sortedConns snapshots a connection set in accept-id order. Callers hold
// p.mu; the returned slice is safe to use after release.
func sortedConns(set map[*proxiedConn]struct{}) []*proxiedConn {
	conns := make([]*proxiedConn, 0, len(set))
	for pc := range set {
		conns = append(conns, pc)
	}
	sort.Slice(conns, func(i, j int) bool { return conns[i].id < conns[j].id })
	return conns
}
