// Package autoscaler implements the SQL-compute autoscaling algorithm of
// §4.2.3: per tenant, the target capacity is the larger of 4x the 5-minute
// average CPU usage and 1.33x the 5-minute peak — a moving average for
// stability combined with an instantaneous maximum for responsiveness. The
// autoscaler scrapes CPU metrics directly from SQL nodes at a 3-second
// interval (§4.3.2's just-in-time scraping, replacing the 20-30s Prometheus
// pipeline) and reconciles pod counts through the orchestrator.
package autoscaler

import (
	"context"
	"math"
	"sync"
	"time"

	"crdbserverless/internal/core"
	"crdbserverless/internal/metric"
	"crdbserverless/internal/orchestrator"
	"crdbserverless/internal/tenantobs"
	"crdbserverless/internal/timeutil"
)

// Config configures an Autoscaler.
type Config struct {
	Orchestrator *orchestrator.Orchestrator
	Registry     *core.Registry
	Clock        timeutil.Clock
	// ScrapeInterval is the metrics cadence. Defaults to 3s (§4.3.2).
	ScrapeInterval time.Duration
	// Window is the averaging window. Defaults to 5 minutes.
	Window time.Duration
	// AvgMultiplier and PeakMultiplier form the target rule
	// max(avg*AvgMultiplier, peak*PeakMultiplier). Defaults 4 and 1.33.
	AvgMultiplier  float64
	PeakMultiplier float64
	// SuspendAfter is how long a tenant must be idle (zero CPU, zero
	// connections) before it is suspended to zero. Defaults to 5 minutes.
	SuspendAfter time.Duration
	// DisablePeakTerm turns off the 1.33x max component (ablation).
	DisablePeakTerm bool
	// Obs, when non-nil, records each scaling decision against its tenant
	// (autoscaler.tenant_scale_events{result=up|down|suspend}).
	Obs *tenantobs.Plane
}

// Autoscaler drives SQL node allocation for all tenants of one region.
type Autoscaler struct {
	cfg       Config
	nodeVCPUs float64

	mu struct {
		sync.Mutex
		// usage holds each tenant's CPU usage (vCPUs) time series.
		usage map[string]*metric.TimeSeries
		// lastCPU holds per-pod cumulative CPU at the last scrape.
		lastCPU   map[int64]float64
		lastAt    time.Time
		idleSince map[string]time.Time
	}
}

// New returns an Autoscaler.
func New(cfg Config) *Autoscaler {
	if cfg.Clock == nil {
		cfg.Clock = timeutil.NewRealClock()
	}
	if cfg.ScrapeInterval == 0 {
		cfg.ScrapeInterval = 3 * time.Second
	}
	if cfg.Window == 0 {
		cfg.Window = 5 * time.Minute
	}
	if cfg.AvgMultiplier == 0 {
		cfg.AvgMultiplier = 4
	}
	if cfg.PeakMultiplier == 0 {
		cfg.PeakMultiplier = 1.33
	}
	if cfg.SuspendAfter == 0 {
		cfg.SuspendAfter = 5 * time.Minute
	}
	a := &Autoscaler{cfg: cfg, nodeVCPUs: float64(cfg.Orchestrator.NodeVCPUs())}
	a.mu.usage = make(map[string]*metric.TimeSeries)
	a.mu.lastCPU = make(map[int64]float64)
	a.mu.idleSince = make(map[string]time.Time)
	a.mu.lastAt = cfg.Clock.Now()
	return a
}

// ScrapeInterval returns the configured scrape cadence.
func (a *Autoscaler) ScrapeInterval() time.Duration { return a.cfg.ScrapeInterval }

// Scrape reads cumulative CPU from every assigned pod and folds per-tenant
// usage rates into the time series.
func (a *Autoscaler) Scrape() {
	now := a.cfg.Clock.Now()
	a.mu.Lock()
	defer a.mu.Unlock()
	dt := now.Sub(a.mu.lastAt).Seconds()
	if dt <= 0 {
		return
	}
	a.mu.lastAt = now

	for _, t := range a.cfg.Registry.List() {
		if t.State != core.StateActive {
			continue
		}
		pods := a.cfg.Orchestrator.PodsForTenant(t.Name)
		var rate float64
		for _, p := range pods {
			cum := p.Node.CumulativeCPUSeconds()
			prev, seen := a.mu.lastCPU[p.Node.InstanceID()]
			a.mu.lastCPU[p.Node.InstanceID()] = cum
			if seen && cum > prev {
				rate += (cum - prev) / dt
			}
		}
		ts, ok := a.mu.usage[t.Name]
		if !ok {
			ts = metric.NewTimeSeries(2 * a.cfg.Window)
			a.mu.usage[t.Name] = ts
		}
		ts.Add(now, rate)
	}
}

// TenantUsage returns the tenant's usage series (for the experiment harness).
func (a *Autoscaler) TenantUsage(name string) *metric.TimeSeries {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.mu.usage[name]
}

// DesiredNodes computes the node count for a tenant from its usage series:
// ceil(max(4*avg, 1.33*peak) / nodeVCPUs), with a floor of one node while
// the tenant has connections or recent usage.
func (a *Autoscaler) DesiredNodes(name string) int {
	a.mu.Lock()
	ts := a.mu.usage[name]
	a.mu.Unlock()
	if ts == nil {
		return 0
	}
	now := a.cfg.Clock.Now()
	avg := ts.WindowAvg(now, a.cfg.Window)
	peak := ts.WindowMax(now, a.cfg.Window)
	target := avg * a.cfg.AvgMultiplier
	if !a.cfg.DisablePeakTerm {
		if p := peak * a.cfg.PeakMultiplier; p > target {
			target = p
		}
	}
	nodes := int(math.Ceil(target / a.nodeVCPUs))
	hasConns := false
	for _, p := range a.cfg.Orchestrator.PodsForTenant(name) {
		if p.Node.ConnCount() > 0 {
			hasConns = true
			break
		}
	}
	if nodes < 1 && (hasConns || peak > 0) {
		nodes = 1
	}
	return nodes
}

// Reconcile scales every active tenant toward its desired node count, and
// suspends tenants that have been fully idle past the suspend deadline.
func (a *Autoscaler) Reconcile(ctx context.Context) error {
	now := a.cfg.Clock.Now()
	for _, t := range a.cfg.Registry.List() {
		if t.State != core.StateActive {
			continue
		}
		pods := a.cfg.Orchestrator.PodsForTenant(t.Name)
		if len(pods) == 0 {
			continue // already at zero; the proxy resumes it on demand
		}
		want := a.DesiredNodes(t.Name)

		// Idle tracking for suspension.
		conns := 0
		for _, p := range pods {
			conns += p.Node.ConnCount()
		}
		idle := want == 0 && conns == 0
		a.mu.Lock()
		since, tracked := a.mu.idleSince[t.Name]
		if idle && !tracked {
			a.mu.idleSince[t.Name] = now
			since = now
		} else if !idle && tracked {
			delete(a.mu.idleSince, t.Name)
		}
		a.mu.Unlock()

		if idle && now.Sub(since) >= a.cfg.SuspendAfter {
			if err := a.cfg.Orchestrator.SuspendTenant(ctx, t.Name); err != nil {
				return err
			}
			a.cfg.Obs.ScaleEvent(t.Name, "suspend")
			a.mu.Lock()
			delete(a.mu.idleSince, t.Name)
			a.mu.Unlock()
			continue
		}
		if want < 1 {
			want = 1 // keep one node while not yet suspendable
		}
		if want > len(pods) {
			a.cfg.Obs.ScaleEvent(t.Name, "up")
		} else if want < len(pods) {
			a.cfg.Obs.ScaleEvent(t.Name, "down")
		}
		if _, err := a.cfg.Orchestrator.ScaleTenant(ctx, t, want); err != nil {
			return err
		}
	}
	a.cfg.Orchestrator.Tick()
	return nil
}

// Tick performs one scrape+reconcile step. The caller drives it at
// ScrapeInterval (tests and the simulation use a manual clock).
func (a *Autoscaler) Tick(ctx context.Context) error {
	a.Scrape()
	return a.Reconcile(ctx)
}
