package autoscaler

import (
	"context"
	"testing"
	"time"

	"crdbserverless/internal/core"
	"crdbserverless/internal/kvserver"
	"crdbserverless/internal/orchestrator"
	"crdbserverless/internal/tenantcost"
	"crdbserverless/internal/timeutil"
)

type env struct {
	cluster *kvserver.Cluster
	reg     *core.Registry
	orch    *orchestrator.Orchestrator
	clock   *timeutil.ManualClock
	as      *Autoscaler
}

func newEnv(t *testing.T) *env {
	t.Helper()
	cheap := kvserver.CostConfig{ReadBatchOverhead: time.Nanosecond, WriteBatchOverhead: time.Nanosecond}
	var nodes []*kvserver.Node
	for i := 1; i <= 3; i++ {
		nodes = append(nodes, kvserver.NewNode(kvserver.NodeConfig{
			ID: kvserver.NodeID(i), VCPUs: 2, Cost: cheap,
		}))
	}
	c, err := kvserver.NewCluster(kvserver.ClusterConfig{}, nodes)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	reg, err := core.NewRegistry(c, tenantcost.NewBucketServer(timeutil.NewRealClock()))
	if err != nil {
		t.Fatal(err)
	}
	clock := timeutil.NewManualClock(time.Unix(0, 0))
	orch, err := orchestrator.New(orchestrator.Config{
		Cluster:         c,
		Registry:        reg,
		Region:          "us-central1",
		WarmPoolSize:    4,
		PreStartProcess: true,
		NodeVCPUs:       4,
		Clock:           clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(orch.Close)
	as := New(Config{
		Orchestrator: orch,
		Registry:     reg,
		Clock:        clock,
		SuspendAfter: 5 * time.Minute,
	})
	return &env{cluster: c, reg: reg, orch: orch, clock: clock, as: as}
}

// driveLoad sets every assigned pod's synthetic CPU to totalVCPUs spread
// evenly, then advances the clock and ticks the autoscaler.
func (e *env) driveLoad(t *testing.T, ctx context.Context, tenant string, totalVCPUs float64, ticks int) {
	t.Helper()
	for i := 0; i < ticks; i++ {
		pods := e.orch.PodsForTenant(tenant)
		per := 0.0
		if len(pods) > 0 {
			per = totalVCPUs / float64(len(pods))
		}
		for _, p := range pods {
			p.Node.SetSyntheticLoad(per)
		}
		e.clock.Advance(e.as.ScrapeInterval())
		if err := e.as.Tick(ctx); err != nil {
			t.Fatal(err)
		}
	}
}

func TestAutoscalerScalesUpWithLoad(t *testing.T) {
	e := newEnv(t)
	ctx := context.Background()
	tn, _ := e.reg.CreateTenant(ctx, "acme", core.TenantOptions{})
	e.orch.ScaleTenant(ctx, tn, 1)

	// Steady 2.5 vCPUs: target = 4*2.5 = 10 -> ceil(10/4) = 3 nodes (the
	// paper's own worked example in §4.2.3).
	e.driveLoad(t, ctx, "acme", 2.5, 40)
	if got := len(e.orch.PodsForTenant("acme")); got != 3 {
		t.Fatalf("pods = %d, want 3", got)
	}
	if want := e.as.DesiredNodes("acme"); want != 3 {
		t.Fatalf("desired = %d, want 3", want)
	}
}

func TestAutoscalerPeakTermReactsToSpike(t *testing.T) {
	e := newEnv(t)
	ctx := context.Background()
	tn, _ := e.reg.CreateTenant(ctx, "acme", core.TenantOptions{})
	e.orch.ScaleTenant(ctx, tn, 1)
	// Small steady load, then a spike of 11 vCPUs: target = 11*1.33 = 14.6
	// -> 4 nodes (the paper's second worked example).
	e.driveLoad(t, ctx, "acme", 2.5, 10)
	e.driveLoad(t, ctx, "acme", 11, 2)
	if got := e.as.DesiredNodes("acme"); got != 4 {
		t.Fatalf("desired after spike = %d, want 4", got)
	}
	e.driveLoad(t, ctx, "acme", 11, 2)
	if got := len(e.orch.PodsForTenant("acme")); got < 4 {
		t.Fatalf("pods after spike = %d, want >= 4", got)
	}
}

func TestAutoscalerAblationNoPeakTerm(t *testing.T) {
	e := newEnv(t)
	ctx := context.Background()
	tn, _ := e.reg.CreateTenant(ctx, "acme", core.TenantOptions{})
	e.orch.ScaleTenant(ctx, tn, 1)
	asNoPeak := New(Config{
		Orchestrator:    e.orch,
		Registry:        e.reg,
		Clock:           e.clock,
		DisablePeakTerm: true,
	})
	// Build up a long low-load history, then spike for one scrape. A short
	// spike barely moves the 5-minute average, so without the peak term the
	// desired count stays low — the peak term is what makes the autoscaler
	// react within seconds.
	step := func(vcpus float64, ticks int) {
		for i := 0; i < ticks; i++ {
			for _, p := range e.orch.PodsForTenant("acme") {
				p.Node.SetSyntheticLoad(vcpus)
			}
			e.clock.Advance(3 * time.Second)
			asNoPeak.Scrape()
		}
	}
	step(0.5, 90) // ~4.5 minutes of light load
	step(11, 2)   // a 6-second spike
	if got := asNoPeak.DesiredNodes("acme"); got >= 4 {
		t.Fatalf("no-peak desired = %d, expected sluggish response", got)
	}
	// The full rule (with the peak term) sees the same history and reacts.
	withPeak := New(Config{Orchestrator: e.orch, Registry: e.reg, Clock: e.clock})
	step2 := func(vcpus float64, ticks int) {
		for i := 0; i < ticks; i++ {
			for _, p := range e.orch.PodsForTenant("acme") {
				p.Node.SetSyntheticLoad(vcpus)
			}
			e.clock.Advance(3 * time.Second)
			withPeak.Scrape()
		}
	}
	step2(0.5, 90)
	step2(11, 2)
	if got := withPeak.DesiredNodes("acme"); got < 4 {
		t.Fatalf("with-peak desired = %d, expected fast reaction", got)
	}
}

func TestAutoscalerScalesDownAfterLoadDrops(t *testing.T) {
	e := newEnv(t)
	ctx := context.Background()
	tn, _ := e.reg.CreateTenant(ctx, "acme", core.TenantOptions{})
	e.orch.ScaleTenant(ctx, tn, 1)
	e.driveLoad(t, ctx, "acme", 8, 20)
	if got := len(e.orch.PodsForTenant("acme")); got < 2 {
		t.Fatalf("pods under load = %d", got)
	}
	// Load stops: after the 5-minute window drains, scale down to 1.
	e.driveLoad(t, ctx, "acme", 0.4, 120)
	if got := len(e.orch.PodsForTenant("acme")); got != 1 {
		t.Fatalf("pods after cooldown = %d, want 1", got)
	}
}

func TestAutoscalerSuspendsIdleTenant(t *testing.T) {
	e := newEnv(t)
	ctx := context.Background()
	tn, _ := e.reg.CreateTenant(ctx, "acme", core.TenantOptions{})
	e.orch.ScaleTenant(ctx, tn, 1)
	// Brief activity, then total silence.
	e.driveLoad(t, ctx, "acme", 1, 5)
	e.driveLoad(t, ctx, "acme", 0, 250) // >10 minutes of zero CPU
	got, _ := e.reg.GetByName("acme")
	if got.State != core.StateSuspended {
		t.Fatalf("state = %s, want suspended", got.State)
	}
	if pods := len(e.orch.PodsForTenant("acme")); pods != 0 {
		t.Fatalf("pods after suspend = %d", pods)
	}
}

func TestAutoscalerIgnoresSuspendedTenants(t *testing.T) {
	e := newEnv(t)
	ctx := context.Background()
	e.reg.CreateTenant(ctx, "acme", core.TenantOptions{})
	e.reg.Suspend(ctx, "acme")
	if err := e.as.Tick(ctx); err != nil {
		t.Fatal(err)
	}
	if pods := len(e.orch.PodsForTenant("acme")); pods != 0 {
		t.Fatalf("suspended tenant got pods: %d", pods)
	}
}

func TestDesiredNodesNoData(t *testing.T) {
	e := newEnv(t)
	if got := e.as.DesiredNodes("ghost"); got != 0 {
		t.Fatalf("desired for unknown tenant = %d", got)
	}
}
