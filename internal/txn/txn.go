// Package txn implements the client-side transaction coordinator over the KV
// layer: it assigns transaction IDs and timestamps, tracks written intents,
// resolves them at commit or abort, and drives automatic retries for
// retriable errors (§3.1: the KV layer "supports transactions"; SQL sessions
// run their statements through this coordinator).
package txn

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"crdbserverless/internal/faultinject"
	"crdbserverless/internal/hlc"
	"crdbserverless/internal/keys"
	"crdbserverless/internal/kvpb"
	"crdbserverless/internal/kvserver"
	"crdbserverless/internal/tenantobs"
	"crdbserverless/internal/trace"
)

// Sender abstracts the KV entry point (a DistSender in production wiring).
type Sender interface {
	Send(ctx context.Context, ba *kvpb.BatchRequest) (*kvpb.BatchResponse, error)
}

// nextTxnID issues process-wide unique transaction IDs.
var nextTxnID uint64

// Coordinator creates transactions for one tenant through one sender.
type Coordinator struct {
	sender Sender
	clock  *hlc.Clock
	tenant keys.TenantID
	faults *faultinject.Registry
	obs    *tenantobs.Plane
}

// NewCoordinator returns a Coordinator.
func NewCoordinator(sender Sender, clock *hlc.Clock, tenant keys.TenantID) *Coordinator {
	return &Coordinator{sender: sender, clock: clock, tenant: tenant}
}

// SetFaults arms the coordinator's fault-injection sites (txn.postsend fails
// a transactional batch after the send returned but before the coordinator
// processes the response).
func (c *Coordinator) SetFaults(f *faultinject.Registry) { c.faults = f }

// SetObs wires the tenant observability plane; each transaction retry is
// then counted against the coordinator's tenant (txn.tenant_retries).
func (c *Coordinator) SetObs(p *tenantobs.Plane) { c.obs = p }

// Txn is one transaction. It is not safe for concurrent use (like a SQL
// session, it executes one statement at a time).
type Txn struct {
	coord *Coordinator
	meta  kvpb.TxnMeta

	mu struct {
		sync.Mutex
		intents map[string]keys.Key // keys with unresolved provisional writes
		// spans are DeleteRange footprints, recorded before the batch goes
		// out; the exact tombstoned keys may never come back if the batch
		// fails after partial application.
		spans    []keys.Span
		finished bool
		aborted  bool
	}
}

// Begin starts a transaction at the current HLC time.
func (c *Coordinator) Begin() *Txn {
	t := &Txn{coord: c}
	t.meta = kvpb.TxnMeta{
		ID:       atomic.AddUint64(&nextTxnID, 1),
		Ts:       c.clock.Now(),
		Priority: kvpb.PriorityNormal,
	}
	t.mu.intents = make(map[string]keys.Key)
	return t
}

// ID returns the transaction's unique ID.
func (t *Txn) ID() uint64 { return t.meta.ID }

// Ts returns the transaction's current timestamp.
func (t *Txn) Ts() hlc.Timestamp { return t.meta.Ts }

// ErrTxnFinished is returned by operations on a committed/aborted txn.
var ErrTxnFinished = errors.New("txn: transaction already finished")

// Send executes a batch inside the transaction, tracking write intents.
func (t *Txn) Send(ctx context.Context, reqs ...kvpb.Request) (*kvpb.BatchResponse, error) {
	t.mu.Lock()
	if t.mu.finished {
		t.mu.Unlock()
		return nil, ErrTxnFinished
	}
	// Record write footprints BEFORE the batch goes out: with parallel
	// DistSender fan-out, a batch that returns an error may still have
	// applied some of its per-range sub-batches, and those intents must be
	// resolvable at abort — recording only on success orphans them, blocking
	// every later reader of the keys. Resolution of a key that was never
	// actually written is a no-op, so over-recording is safe.
	for _, r := range reqs {
		switch r.Method {
		case kvpb.Put, kvpb.Delete:
			t.mu.intents[string(r.Key)] = r.Key.Clone()
		case kvpb.DeleteRange:
			t.mu.spans = append(t.mu.spans, keys.Span{
				Key: r.Key.Clone(), EndKey: r.EndKey.Clone(),
			})
		}
	}
	t.mu.Unlock()
	meta := t.meta
	ba := &kvpb.BatchRequest{
		Tenant:   t.coord.tenant,
		Txn:      &meta,
		Requests: reqs,
	}
	resp, err := t.coord.sender.Send(ctx, ba)
	if err != nil {
		return nil, err
	}
	if err := t.coord.faults.MaybeErr("txn.postsend"); err != nil {
		// The batch applied server-side but the coordinator fails before
		// processing the response. The pre-send recording above keeps the
		// laid-down intents resolvable regardless.
		return nil, err
	}
	t.mu.Lock()
	for i, r := range reqs {
		if r.Method == kvpb.DeleteRange && i < len(resp.Responses) {
			// The response reports which keys the range delete tombstoned;
			// track them as point intents for precise resolution (the span
			// recorded above stays as the safety net).
			for _, kv := range resp.Responses[i].Rows {
				t.mu.intents[string(kv.Key)] = kv.Key.Clone()
			}
		}
	}
	t.mu.Unlock()
	return resp, nil
}

// Get reads a key within the transaction.
func (t *Txn) Get(ctx context.Context, key keys.Key) ([]byte, bool, error) {
	resp, err := t.Send(ctx, kvpb.Request{Method: kvpb.Get, Key: key})
	if err != nil {
		return nil, false, err
	}
	return resp.Responses[0].Value, resp.Responses[0].Exists, nil
}

// Put writes a key within the transaction.
func (t *Txn) Put(ctx context.Context, key keys.Key, value []byte) error {
	_, err := t.Send(ctx, kvpb.Request{Method: kvpb.Put, Key: key, Value: value})
	return err
}

// Delete removes a key within the transaction.
func (t *Txn) Delete(ctx context.Context, key keys.Key) error {
	_, err := t.Send(ctx, kvpb.Request{Method: kvpb.Delete, Key: key})
	return err
}

// Scan reads a span within the transaction.
func (t *Txn) Scan(ctx context.Context, span keys.Span, maxKeys int64) ([]kvpb.KeyValue, error) {
	resp, err := t.Send(ctx, kvpb.Request{
		Method: kvpb.Scan, Key: span.Key, EndKey: span.EndKey, MaxKeys: maxKeys,
	})
	if err != nil {
		return nil, err
	}
	return resp.Responses[0].Rows, nil
}

// Commit resolves all intents as committed at the transaction timestamp.
func (t *Txn) Commit(ctx context.Context) error {
	return t.finish(ctx, true)
}

// Abort rolls the transaction back, removing its intents.
func (t *Txn) Abort(ctx context.Context) error {
	return t.finish(ctx, false)
}

func (t *Txn) finish(ctx context.Context, commit bool) error {
	t.mu.Lock()
	if t.mu.finished {
		aborted := t.mu.aborted
		t.mu.Unlock()
		if commit && aborted {
			return &kvpb.TransactionAbortedError{TxnID: t.meta.ID}
		}
		return nil
	}
	t.mu.finished = true
	t.mu.aborted = !commit
	intents := make([]keys.Key, 0, len(t.mu.intents))
	for _, k := range t.mu.intents {
		intents = append(intents, k)
	}
	spans := t.mu.spans
	t.mu.Unlock()
	// Key order, not map order: the resolution batch's request order decides
	// which key a redirect retry re-routes by, so map iteration here made
	// the fault-consult schedule — and with it same-seed chaos replay —
	// depend on Go's per-run map randomization whenever a fresh split
	// divided a transaction's footprint.
	sort.Slice(intents, func(i, j int) bool { return intents[i].Less(intents[j]) })

	if len(intents) == 0 && len(spans) == 0 {
		return nil
	}
	trace.SpanFromContext(ctx).Eventf("resolve %d intents txn=%d commit=%v", len(intents), t.meta.ID, commit)
	reqs := make([]kvpb.Request, 0, len(intents)+len(spans))
	for _, k := range intents {
		reqs = append(reqs, kvpb.Request{
			Method:        kvpb.ResolveIntent,
			Key:           k,
			ResolveTxnID:  t.meta.ID,
			ResolveCommit: commit,
			ResolveTs:     t.meta.Ts,
		})
	}
	// DeleteRange footprints resolve by span: the leaseholder enumerates
	// this transaction's intents itself, covering keys the coordinator never
	// learned about because the batch failed after partial application.
	for _, sp := range spans {
		reqs = append(reqs, kvpb.Request{
			Method:        kvpb.ResolveIntentRange,
			Key:           sp.Key,
			EndKey:        sp.EndKey,
			ResolveTxnID:  t.meta.ID,
			ResolveCommit: commit,
			ResolveTs:     t.meta.Ts,
		})
	}
	// Resolution is non-transactional and idempotent; retry on routing
	// errors until it lands. Each attempt honors cancellation, and retries
	// back off with the same jittered schedule as RunTxn — resolution
	// contends on exactly the lease/routing churn that failed the previous
	// attempt, and a tight loop just re-collides with it.
	ba := &kvpb.BatchRequest{Tenant: t.coord.tenant, Timestamp: t.meta.Ts, Requests: reqs}
	const maxResolveAttempts = 8
	var lastErr error
	for attempt := 0; attempt < maxResolveAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("txn: resolving %d intents: %w", len(reqs), err)
		}
		if attempt > 0 {
			shift := attempt - 1
			if shift > 4 {
				shift = 4
			}
			backoff := (100 * time.Microsecond) << uint(shift)
			backoff += time.Duration(t.meta.ID%13) * 37 * time.Microsecond
			t.coord.clock.Physical().Sleep(backoff)
		}
		if _, lastErr = t.coord.sender.Send(ctx, ba); lastErr == nil {
			return nil
		}
		if !kvpb.IsRetriable(lastErr) {
			return lastErr
		}
	}
	return fmt.Errorf("txn: resolving %d intents: %w", len(reqs), lastErr)
}

// RunTxn executes fn inside a transaction, retrying it from scratch on
// retriable errors (write conflicts, redirects). fn must be idempotent up to
// its writes: each retry begins a fresh transaction. fn receives a context
// carrying the coordinator's txn.run span, so work done inside the
// transaction nests under it in the request trace.
func (c *Coordinator) RunTxn(ctx context.Context, fn func(context.Context, *Txn) error) error {
	ctx, sp := trace.StartSpan(ctx, "txn.run")
	defer sp.Finish()
	const maxAttempts = 256
	var lastErr error
	for attempt := 0; attempt < maxAttempts; attempt++ {
		t := c.Begin()
		if attempt == 0 {
			sp.SetAttr("txn.id", t.meta.ID)
		}
		sp.Eventf("begin txn=%d ts=%v attempt=%d", t.meta.ID, t.meta.Ts, attempt)
		err := fn(ctx, t)
		if err == nil {
			err = t.Commit(ctx)
		}
		if err == nil {
			sp.Eventf("commit txn=%d", t.meta.ID)
			sp.SetAttr("txn.attempts", attempt+1)
			return nil
		}
		if aerr := t.Abort(ctx); aerr != nil {
			// The retry loop's own error wins, but an abort failure is worth a
			// trace event: it means intents may linger for lazy resolution.
			sp.Eventf("abort failed txn=%d: %v", t.meta.ID, aerr)
		}
		if !kvpb.IsRetriable(err) {
			sp.Eventf("abort txn=%d: %v", t.meta.ID, err)
			sp.SetAttr("txn.attempts", attempt+1)
			return err
		}
		sp.Eventf("retry attempt=%d: %v", attempt+1, err)
		c.obs.TxnRetry(c.tenant)
		lastErr = err
		// Advance our clock reading past the conflict so the next attempt
		// starts above it.
		var wto *kvpb.WriteTooOldError
		if errors.As(err, &wto) {
			c.clock.Update(wto.ActualTs)
		}
		// Jittered exponential backoff desynchronizes contending
		// transactions; without it, symmetric read-modify-write loops can
		// livelock, repeatedly colliding on each other's intents and
		// timestamp-cache windows.
		shift := attempt
		if shift > 4 {
			shift = 4
		}
		backoff := (100 * time.Microsecond) << uint(shift)
		backoff += time.Duration(t.meta.ID%13) * 37 * time.Microsecond
		c.clock.Physical().Sleep(backoff)
	}
	return fmt.Errorf("txn: retry budget exhausted: %w", lastErr)
}

// NewCoordinatorForDistSender is a convenience constructor wiring a
// DistSender directly.
func NewCoordinatorForDistSender(ds *kvserver.DistSender, cl *kvserver.Cluster) *Coordinator {
	return NewCoordinator(ds, cl.Clock(), ds.Identity().Tenant)
}
