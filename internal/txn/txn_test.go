package txn

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"crdbserverless/internal/keys"
	"crdbserverless/internal/kvpb"
	"crdbserverless/internal/kvserver"
	"crdbserverless/internal/timeutil"
	"crdbserverless/internal/trace"
)

func newTestSetup(t *testing.T) (*kvserver.Cluster, *Coordinator) {
	t.Helper()
	cheap := kvserver.CostConfig{ReadBatchOverhead: time.Nanosecond, WriteBatchOverhead: time.Nanosecond}
	var nodes []*kvserver.Node
	for i := 1; i <= 3; i++ {
		nodes = append(nodes, kvserver.NewNode(kvserver.NodeConfig{
			ID: kvserver.NodeID(i), VCPUs: 2, Cost: cheap,
		}))
	}
	c, err := kvserver.NewCluster(kvserver.ClusterConfig{}, nodes)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	ds := kvserver.NewDistSender(c, kvserver.Identity{Tenant: 2})
	return c, NewCoordinatorForDistSender(ds, c)
}

func k(s string) keys.Key {
	return append(keys.MakeTenantPrefix(2), []byte(s)...)
}

func TestTxnCommitMakesWritesVisible(t *testing.T) {
	_, coord := newTestSetup(t)
	ctx := context.Background()

	t1 := coord.Begin()
	if err := t1.Put(ctx, k("a"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	// The writer sees its own intent.
	v, ok, err := t1.Get(ctx, k("a"))
	if err != nil || !ok || string(v) != "v1" {
		t.Fatalf("own read = %q %v %v", v, ok, err)
	}
	// A second transaction starting before commit does not see it — it
	// conflicts on the intent instead.
	t2 := coord.Begin()
	_, _, err = t2.Get(ctx, k("a"))
	var wie *kvpb.WriteIntentError
	if !errors.As(err, &wie) {
		t.Fatalf("pre-commit foreign read = %v", err)
	}
	if err := t1.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	// A fresh transaction sees the committed value.
	t3 := coord.Begin()
	v, ok, err = t3.Get(ctx, k("a"))
	if err != nil || !ok || string(v) != "v1" {
		t.Fatalf("post-commit read = %q %v %v", v, ok, err)
	}
	t3.Abort(ctx)
}

func TestTxnAbortRemovesIntents(t *testing.T) {
	_, coord := newTestSetup(t)
	ctx := context.Background()
	t1 := coord.Begin()
	t1.Put(ctx, k("a"), []byte("doomed"))
	if err := t1.Abort(ctx); err != nil {
		t.Fatal(err)
	}
	t2 := coord.Begin()
	_, ok, err := t2.Get(ctx, k("a"))
	if err != nil || ok {
		t.Fatalf("read after abort = ok=%v err=%v", ok, err)
	}
	t2.Abort(ctx)
}

func TestTxnFinishedRejectsFurtherOps(t *testing.T) {
	_, coord := newTestSetup(t)
	ctx := context.Background()
	t1 := coord.Begin()
	t1.Put(ctx, k("a"), []byte("v"))
	t1.Commit(ctx)
	if err := t1.Put(ctx, k("b"), []byte("v")); err != ErrTxnFinished {
		t.Fatalf("put after commit = %v", err)
	}
	// Commit after commit is a no-op; commit after abort errors.
	if err := t1.Commit(ctx); err != nil {
		t.Fatalf("double commit = %v", err)
	}
	t2 := coord.Begin()
	t2.Abort(ctx)
	if err := t2.Commit(ctx); err == nil {
		t.Fatal("commit after abort should error")
	}
	if err := t2.Abort(ctx); err != nil {
		t.Fatalf("double abort = %v", err)
	}
}

func TestTxnScan(t *testing.T) {
	_, coord := newTestSetup(t)
	ctx := context.Background()
	setup := coord.Begin()
	for i := 0; i < 5; i++ {
		setup.Put(ctx, k(fmt.Sprintf("s%d", i)), []byte("v"))
	}
	if err := setup.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	t1 := coord.Begin()
	rows, err := t1.Scan(ctx, keys.MakeTenantSpan(2), 0)
	if err != nil || len(rows) != 5 {
		t.Fatalf("scan = %d rows, %v", len(rows), err)
	}
	t1.Abort(ctx)
}

func TestRunTxnRetriesConflicts(t *testing.T) {
	_, coord := newTestSetup(t)
	ctx := context.Background()

	// Seed a counter.
	if err := coord.RunTxn(ctx, func(ctx context.Context, tx *Txn) error {
		return tx.Put(ctx, k("counter"), []byte{0})
	}); err != nil {
		t.Fatal(err)
	}

	// Concurrent read-modify-write increments; all must succeed and the
	// final value must equal the increment count (atomicity under retry).
	const workers = 4
	const perWorker = 5
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				err := coord.RunTxn(ctx, func(ctx context.Context, tx *Txn) error {
					v, _, err := tx.Get(ctx, k("counter"))
					if err != nil {
						return err
					}
					return tx.Put(ctx, k("counter"), []byte{v[0] + 1})
				})
				if err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	var final byte
	if err := coord.RunTxn(ctx, func(ctx context.Context, tx *Txn) error {
		v, _, err := tx.Get(ctx, k("counter"))
		if err == nil {
			final = v[0]
		}
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if final != workers*perWorker {
		t.Fatalf("counter = %d, want %d", final, workers*perWorker)
	}
}

func TestRunTxnNonRetriableErrorSurfaces(t *testing.T) {
	_, coord := newTestSetup(t)
	sentinel := errors.New("application error")
	err := coord.RunTxn(context.Background(), func(ctx context.Context, tx *Txn) error { return sentinel })
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
}

func TestRunTxnAbortsOnError(t *testing.T) {
	_, coord := newTestSetup(t)
	ctx := context.Background()
	sentinel := errors.New("fail after write")
	coord.RunTxn(ctx, func(ctx context.Context, tx *Txn) error {
		tx.Put(ctx, k("x"), []byte("v"))
		return sentinel
	})
	// The intent must be gone: a read succeeds and finds nothing.
	if err := coord.RunTxn(ctx, func(ctx context.Context, tx *Txn) error {
		_, ok, err := tx.Get(ctx, k("x"))
		if err != nil {
			return err
		}
		if ok {
			return errors.New("aborted write visible")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestTxnIDsUnique(t *testing.T) {
	_, coord := newTestSetup(t)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		tx := coord.Begin()
		if seen[tx.ID()] {
			t.Fatalf("duplicate txn id %d", tx.ID())
		}
		seen[tx.ID()] = true
		tx.Abort(context.Background())
	}
}

func TestTxnDeleteCommit(t *testing.T) {
	_, coord := newTestSetup(t)
	ctx := context.Background()
	coord.RunTxn(ctx, func(ctx context.Context, tx *Txn) error { return tx.Put(ctx, k("d"), []byte("v")) })
	if err := coord.RunTxn(ctx, func(ctx context.Context, tx *Txn) error { return tx.Delete(ctx, k("d")) }); err != nil {
		t.Fatal(err)
	}
	coord.RunTxn(ctx, func(ctx context.Context, tx *Txn) error {
		_, ok, err := tx.Get(ctx, k("d"))
		if err != nil {
			return err
		}
		if ok {
			return errors.New("deleted key visible")
		}
		return nil
	})
}

func TestNoLostUpdateUnderConcurrency(t *testing.T) {
	// The classic bank-transfer invariant: concurrent transfers between two
	// accounts must conserve the total. Without the KV layer's timestamp
	// cache, a write can land below another transaction's completed read
	// and silently lose an update.
	_, coord := newTestSetup(t)
	ctx := context.Background()
	if err := coord.RunTxn(ctx, func(ctx context.Context, tx *Txn) error {
		if err := tx.Put(ctx, k("acct-a"), []byte{100}); err != nil {
			return err
		}
		return tx.Put(ctx, k("acct-b"), []byte{100})
	}); err != nil {
		t.Fatal(err)
	}
	const workers = 4
	const transfers = 6
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			src, dst := k("acct-a"), k("acct-b")
			if w%2 == 1 {
				src, dst = dst, src
			}
			for i := 0; i < transfers; i++ {
				err := coord.RunTxn(ctx, func(ctx context.Context, tx *Txn) error {
					sv, _, err := tx.Get(ctx, src)
					if err != nil {
						return err
					}
					dv, _, err := tx.Get(ctx, dst)
					if err != nil {
						return err
					}
					if sv[0] == 0 {
						return nil // insufficient funds; skip
					}
					if err := tx.Put(ctx, src, []byte{sv[0] - 1}); err != nil {
						return err
					}
					return tx.Put(ctx, dst, []byte{dv[0] + 1})
				})
				if err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	var total int
	if err := coord.RunTxn(ctx, func(ctx context.Context, tx *Txn) error {
		a, _, err := tx.Get(ctx, k("acct-a"))
		if err != nil {
			return err
		}
		b, _, err := tx.Get(ctx, k("acct-b"))
		if err != nil {
			return err
		}
		total = int(a[0]) + int(b[0])
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if total != 200 {
		t.Fatalf("invariant violated: total = %d, want 200 (lost update)", total)
	}
}

func TestRunTxnRetryAppearsAsSpanEvent(t *testing.T) {
	_, coord := newTestSetup(t)
	tr := trace.New(trace.Options{Clock: timeutil.NewRealClock(), Seed: 1})
	root := tr.StartRoot("test")
	ctx := trace.ContextWithSpan(context.Background(), root)

	attempts := 0
	err := coord.RunTxn(ctx, func(ctx context.Context, tx *Txn) error {
		attempts++
		if attempts == 1 {
			return &kvpb.WriteTooOldError{}
		}
		return tx.Put(ctx, k("retry-key"), []byte("v"))
	})
	root.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2", attempts)
	}
	children := root.Children()
	if len(children) == 0 || children[0].Op() != "txn.run" {
		t.Fatalf("txn.run span missing under root: %+v", children)
	}
	sp := children[0]
	var sawRetry, sawCommit bool
	for _, ev := range sp.Events() {
		if strings.Contains(ev.Msg, "retry attempt=1") {
			sawRetry = true
		}
		if strings.HasPrefix(ev.Msg, "commit txn=") {
			sawCommit = true
		}
	}
	if !sawRetry {
		t.Fatalf("no retry event on txn.run span; events = %+v", sp.Events())
	}
	if !sawCommit {
		t.Fatalf("no commit event on txn.run span; events = %+v", sp.Events())
	}
	if v, ok := sp.Attr("txn.attempts"); !ok || v.(int) != 2 {
		t.Fatalf("txn.attempts attr = %v ok=%v, want 2", v, ok)
	}
}
