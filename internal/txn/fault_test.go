package txn

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"crdbserverless/internal/faultinject"
	"crdbserverless/internal/hlc"
	"crdbserverless/internal/keys"
	"crdbserverless/internal/kvpb"
	"crdbserverless/internal/kvserver"
	"crdbserverless/internal/mvcc"
	"crdbserverless/internal/timeutil"
)

// newFaultSetup builds a 3-node cluster whose DistSender and coordinator
// consult reg's fault sites. Sequential dispatch keeps the order in which
// sites are consulted deterministic.
func newFaultSetup(t *testing.T, reg *faultinject.Registry) (*kvserver.Cluster, *Coordinator) {
	t.Helper()
	cheap := kvserver.CostConfig{ReadBatchOverhead: time.Nanosecond, WriteBatchOverhead: time.Nanosecond}
	var nodes []*kvserver.Node
	for i := 1; i <= 3; i++ {
		nodes = append(nodes, kvserver.NewNode(kvserver.NodeConfig{
			ID: kvserver.NodeID(i), VCPUs: 2, Cost: cheap,
		}))
	}
	c, err := kvserver.NewCluster(kvserver.ClusterConfig{Faults: reg}, nodes)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	ds := kvserver.NewDistSender(c, kvserver.Identity{Tenant: 2},
		kvserver.Config{Parallelism: 1, Faults: reg})
	coord := NewCoordinatorForDistSender(ds, c)
	coord.SetFaults(reg)
	return c, coord
}

// assertNoIntents fails the test if any node's engine holds an unresolved
// intent anywhere in the test tenant's keyspace.
func assertNoIntents(t *testing.T, c *kvserver.Cluster) {
	t.Helper()
	for _, n := range c.Nodes() {
		iks, err := mvcc.IntentKeys(n.Engine(), keys.MakeTenantSpan(2), 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(iks) != 0 {
			t.Fatalf("node %d has %d orphaned intents: %v", n.ID(), len(iks), iks)
		}
	}
}

// Regression: a cross-range batch that failed after part of it applied used
// to record no intents at all — the applied sub-batches' intents were
// orphaned, permanently blocking every later reader of those keys. Write
// footprints are now recorded before the batch goes out.
func TestAbortCleansUpPartiallyAppliedBatch(t *testing.T) {
	reg := faultinject.New(1, nil)
	c, coord := newFaultSetup(t, reg)
	ctx := context.Background()
	if err := c.SplitAt(k("m")); err != nil {
		t.Fatal(err)
	}
	// Fire once, on the batch's second per-range sub-batch: both sub-batches
	// apply server-side, but the second one's response is dropped and the
	// batch as a whole errors.
	reg.Enable("dist.subbatch.err", faultinject.Site{Probability: 1, After: 1, MaxFires: 1})

	tx := coord.Begin()
	_, err := tx.Send(ctx,
		kvpb.Request{Method: kvpb.Put, Key: k("a"), Value: []byte("v")},
		kvpb.Request{Method: kvpb.Put, Key: k("z"), Value: []byte("v")},
	)
	if !faultinject.IsInjected(err) {
		t.Fatalf("cross-range batch err = %v, want injected fault", err)
	}
	if err := tx.Abort(ctx); err != nil {
		t.Fatal(err)
	}
	assertNoIntents(t, c)
	// Both keys must be readable (and absent) afterwards.
	t2 := coord.Begin()
	defer t2.Abort(ctx)
	for _, key := range []keys.Key{k("a"), k("z")} {
		if _, ok, err := t2.Get(ctx, key); err != nil || ok {
			t.Fatalf("read %q after abort: ok=%v err=%v", key, ok, err)
		}
	}
}

// Companion regression: when a DeleteRange batch's response is lost, the
// coordinator never learns which keys were tombstoned. The span recorded
// before the send resolves them anyway, via ResolveIntentRange (the
// leaseholder enumerates the transaction's intents itself).
func TestAbortResolvesDeleteRangeIntentsBySpan(t *testing.T) {
	reg := faultinject.New(2, nil)
	c, coord := newFaultSetup(t, reg)
	ctx := context.Background()
	if err := coord.RunTxn(ctx, func(ctx context.Context, tx *Txn) error {
		for _, s := range []string{"a", "b", "c"} {
			if err := tx.Put(ctx, k(s), []byte("v")); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	reg.Enable("txn.postsend", faultinject.Site{Probability: 1, MaxFires: 1})
	tx := coord.Begin()
	_, err := tx.Send(ctx, kvpb.Request{Method: kvpb.DeleteRange, Key: k("a"), EndKey: k("d")})
	if !faultinject.IsInjected(err) {
		t.Fatalf("err = %v, want injected fault", err)
	}
	if err := tx.Abort(ctx); err != nil {
		t.Fatal(err)
	}
	assertNoIntents(t, c)
	// The aborted range delete must not have removed anything.
	if err := coord.RunTxn(ctx, func(ctx context.Context, tx *Txn) error {
		for _, s := range []string{"a", "b", "c"} {
			_, ok, err := tx.Get(ctx, k(s))
			if err != nil {
				return err
			}
			if !ok {
				return errors.New("aborted DeleteRange removed key " + s)
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// scriptedSender is a Sender whose failures come from a fault site; when the
// site doesn't fire it acks the batch without any backing cluster.
type scriptedSender struct {
	reg   *faultinject.Registry
	sends int
}

func (s *scriptedSender) Send(ctx context.Context, ba *kvpb.BatchRequest) (*kvpb.BatchResponse, error) {
	s.sends++
	if err := s.reg.MaybeErr("test.resolve.flaky"); err != nil {
		return nil, err
	}
	return &kvpb.BatchResponse{Responses: make([]kvpb.Response, len(ba.Requests))}, nil
}

// Regression: finish used to retry intent resolution in a tight busy loop —
// no backoff, no cancellation check — re-colliding with exactly the routing
// churn that failed the previous attempt. Every retry must now be preceded
// by a clock-driven sleep.
func TestFinishBacksOffBetweenResolveAttempts(t *testing.T) {
	manual := timeutil.NewManualClock(time.Unix(10, 0))
	reg := faultinject.New(3, nil)
	sender := &scriptedSender{reg: reg}
	coord := NewCoordinator(sender, hlc.NewClock(manual), 2)
	ctx := context.Background()

	tx := coord.Begin()
	if err := tx.Put(ctx, k("a"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	const failures = 3
	reg.Enable("test.resolve.flaky", faultinject.Site{Probability: 1, MaxFires: failures, Retriable: true})
	done := make(chan error, 1)
	go func() { done <- tx.Commit(ctx) }()
	// Each failed attempt must register a sleeper on the clock before the
	// next send; a tight retry loop would never produce a waiter and the
	// commit would have returned already.
	for i := 0; i < failures; i++ {
		for manual.NumWaiters() == 0 {
			select {
			case err := <-done:
				t.Fatalf("commit returned before backoff %d: %v", i, err)
			default:
				runtime.Gosched()
			}
		}
		manual.Advance(10 * time.Millisecond)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got := reg.Fires("test.resolve.flaky"); got != failures {
		t.Fatalf("injected %d resolve failures, want %d", got, failures)
	}
	// One send for the Put, then failures+1 resolve attempts.
	if want := 1 + failures + 1; sender.sends != want {
		t.Fatalf("sends = %d, want %d", sender.sends, want)
	}
}

// Regression companion: a cancelled context must end the resolve-retry loop
// promptly instead of burning the full retry budget.
func TestFinishHonorsContextCancellation(t *testing.T) {
	manual := timeutil.NewManualClock(time.Unix(10, 0))
	reg := faultinject.New(4, nil)
	coord := NewCoordinator(&scriptedSender{reg: reg}, hlc.NewClock(manual), 2)

	tx := coord.Begin()
	if err := tx.Put(context.Background(), k("a"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	// Unbounded retriable failures: without the ctx check the loop would run
	// all 8 attempts and return a retry-exhausted error instead.
	reg.Enable("test.resolve.flaky", faultinject.Site{Probability: 1, Retriable: true})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- tx.Commit(ctx) }()
	for manual.NumWaiters() == 0 {
		runtime.Gosched()
	}
	cancel()
	manual.Advance(time.Second) // release the sleeper into the ctx check
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
