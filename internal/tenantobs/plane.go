// Package tenantobs implements the tenant-dimensional observability plane:
// one place that turns per-request signals from every layer of the stack
// (proxy connections, SQL executions, txn retries, DistSender batches,
// admission waits, RU consumption, autoscaler decisions) into labeled
// metric vectors, windowed time series, and SLO burn rates, keyed by
// tenant. The paper's cluster-virtualization claim — thousands of tenants
// sharing one KV cluster — is only operable if exactly this per-tenant
// telemetry exists; the flat registry of PRs 1–2 could not distinguish a
// noisy neighbor from fleet-wide load.
//
// Every Plane method is nil-safe: a nil *Plane records nothing, so
// instrumented packages call unconditionally and tests that don't care
// about observability pay nothing, the same contract as nil trace spans.
//
// Tenant cardinality is hard-capped. Once MaxTenants distinct tenants have
// been seen, further tenants collapse into a single __overflow__
// pseudo-tenant (windows, SLO, and every labeled series included), so
// memory stays bounded no matter how many tenants a run creates, and the
// split is first-arrival deterministic.
package tenantobs

import (
	"sync"
	"time"

	"crdbserverless/internal/keys"
	"crdbserverless/internal/metric"
	"crdbserverless/internal/timeutil"
)

// Config configures a Plane.
type Config struct {
	// Registry receives the labeled vectors. Required.
	Registry *metric.Registry
	// Clock timestamps windowed observations. Required.
	Clock timeutil.Clock
	// MaxTenants caps distinct tenants (default 2048); excess tenants are
	// absorbed into the __overflow__ pseudo-tenant.
	MaxTenants int
	// WindowWidth and WindowCount size each tenant's window ring
	// (defaults: 15s x 240 = 1h retention).
	WindowWidth time.Duration
	WindowCount int
	// DefaultObjective is the SLO tenants get unless SetObjective is
	// called (default: 99.9% of requests good within 100ms).
	DefaultObjective metric.Objective
}

// tenantState is everything the plane keeps per tenant beyond the labeled
// vector children: the query-latency window ring and the SLO tracker.
type tenantState struct {
	name  string // label value; OverflowLabelValue for the shared overflow state
	id    keys.TenantID
	win   *metric.Windowed
	slo   *metric.SLO
	conns *metric.Counter // cached proxy.tenant_conns child
}

// Plane is the tenant observability plane. Safe for concurrent use.
type Plane struct {
	clock    timeutil.Clock
	max      int
	winWidth time.Duration
	winCount int
	defObj   metric.Objective

	conns       *metric.CounterVec   // proxy.tenant_conns{tenant}
	queries     *metric.CounterVec   // sql.tenant_queries{tenant,result}
	execLat     *metric.HistogramVec // sql.tenant_exec_latency{tenant}
	retries     *metric.CounterVec   // txn.tenant_retries{tenant}
	batches     *metric.CounterVec   // dist.tenant_batches{tenant}
	admWait     *metric.HistogramVec // admission.tenant_wait{tenant}
	ru          *metric.GaugeVec     // tenantcost.tenant_ru{tenant}
	scaleEvents *metric.CounterVec   // autoscaler.tenant_scale_events{tenant,result}
	rangeEvents *metric.CounterVec   // kv.tenant_range_events{tenant,result}

	mu       sync.Mutex
	byID     map[keys.TenantID]*tenantState
	byName   map[string]*tenantState
	states   []*tenantState // non-overflow states in creation order
	overflow *tenantState   // lazily created at the cap
	absorbed int64          // distinct tenants routed to overflow
}

// New builds a Plane and registers its labeled vectors on cfg.Registry.
func New(cfg Config) *Plane {
	if cfg.MaxTenants <= 0 {
		cfg.MaxTenants = metric.DefaultVecCardinality
	}
	if cfg.WindowWidth <= 0 {
		cfg.WindowWidth = metric.DefaultWindowWidth
	}
	if cfg.WindowCount <= 0 {
		cfg.WindowCount = metric.DefaultWindowCount
	}
	if cfg.DefaultObjective.Target <= 0 || cfg.DefaultObjective.Target >= 1 {
		cfg.DefaultObjective = metric.DefaultObjective()
	}
	r := cfg.Registry
	p := &Plane{
		clock:       cfg.Clock,
		max:         cfg.MaxTenants,
		winWidth:    cfg.WindowWidth,
		winCount:    cfg.WindowCount,
		defObj:      cfg.DefaultObjective,
		conns:       r.NewCounterVec("proxy.tenant_conns", "tenant"),
		queries:     r.NewCounterVec("sql.tenant_queries", "tenant", "result"),
		execLat:     r.NewHistogramVec("sql.tenant_exec_latency", "tenant"),
		retries:     r.NewCounterVec("txn.tenant_retries", "tenant"),
		batches:     r.NewCounterVec("dist.tenant_batches", "tenant"),
		admWait:     r.NewHistogramVec("admission.tenant_wait", "tenant"),
		ru:          r.NewGaugeVec("tenantcost.tenant_ru", "tenant"),
		scaleEvents: r.NewCounterVec("autoscaler.tenant_scale_events", "tenant", "result"),
		rangeEvents: r.NewCounterVec("kv.tenant_range_events", "tenant", "result"),
		byID:        make(map[keys.TenantID]*tenantState),
		byName:      make(map[string]*tenantState),
	}
	// The plane converts overflow tenants to the __overflow__ label before
	// touching any vector, so the vector-level caps only need to cover the
	// plane's own cap (plus the overflow child and the small result
	// dimension on two-label vectors).
	single := cfg.MaxTenants + 1
	double := 4 * (cfg.MaxTenants + 1)
	for _, v := range []interface{ SetMaxCardinality(int) }{p.conns, p.execLat, p.retries, p.batches, p.admWait, p.ru} {
		v.SetMaxCardinality(single)
	}
	p.queries.SetMaxCardinality(double)
	p.scaleEvents.SetMaxCardinality(double)
	p.rangeEvents.SetMaxCardinality(double)
	return p
}

// Now returns the plane's clock reading; the zero time when the plane is
// nil.
func (p *Plane) Now() time.Time {
	if p == nil {
		return time.Time{}
	}
	return p.clock.Now()
}

// newStateLocked builds a tenantState for name with the given objective.
func (p *Plane) newStateLocked(name string, id keys.TenantID, obj metric.Objective) *tenantState {
	return &tenantState{
		name:  name,
		id:    id,
		win:   metric.NewWindowed(p.winWidth, p.winCount),
		slo:   metric.NewSLO(obj, p.winWidth, p.winCount),
		conns: p.conns.With(name),
	}
}

// ensureLocked returns the state for (id, name), creating it if needed.
// Either id or name may be zero-valued; known halves are merged. Past the
// cap, new tenants map to the shared overflow state (and are remembered in
// the lookup maps, so each distinct tenant is absorbed exactly once).
// Caller must hold p.mu.
func (p *Plane) ensureLocked(id keys.TenantID, name string) *tenantState {
	if name != "" {
		if st, ok := p.byName[name]; ok {
			if id != 0 && st != p.overflow {
				if st.id == 0 {
					st.id = id
				}
				if _, ok := p.byID[id]; !ok {
					p.byID[id] = st
				}
			}
			return st
		}
	}
	if id != 0 {
		if st, ok := p.byID[id]; ok {
			return st
		}
	}
	if name == "" {
		name = id.String()
		if st, ok := p.byName[name]; ok {
			p.byID[id] = st
			return st
		}
	}
	if len(p.states) >= p.max {
		p.absorbed++
		if p.overflow == nil {
			p.overflow = p.newStateLocked(metric.OverflowLabelValue, 0, p.defObj)
		}
		p.byName[name] = p.overflow
		if id != 0 {
			p.byID[id] = p.overflow
		}
		return p.overflow
	}
	st := p.newStateLocked(name, id, p.defObj)
	p.byName[name] = st
	if id != 0 {
		p.byID[id] = st
	}
	p.states = append(p.states, st)
	return st
}

func (p *Plane) stateByID(id keys.TenantID) *tenantState {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.ensureLocked(id, "")
}

func (p *Plane) stateByName(name string) *tenantState {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.ensureLocked(0, name)
}

// RegisterTenant declares a tenant up front, binding its ID to its
// human-readable name so signals keyed by either converge on one series.
func (p *Plane) RegisterTenant(id keys.TenantID, name string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.ensureLocked(id, name)
}

// SetObjective declares a tenant's SLO, replacing the default one (and any
// accumulated SLO history — objectives are meant to be set at tenant
// creation).
func (p *Plane) SetObjective(name string, obj metric.Objective) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.ensureLocked(0, name)
	st.slo = metric.NewSLO(obj, p.winWidth, p.winCount)
}

// Absorbed returns how many distinct tenants were routed to the overflow
// pseudo-tenant.
func (p *Plane) Absorbed() int64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.absorbed
}

// TenantCount returns the number of distinct (non-overflow) tenants seen.
func (p *Plane) TenantCount() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.states)
}

// ConnOpened records an accepted, authenticated proxy connection.
func (p *Plane) ConnOpened(name string) {
	if p == nil {
		return
	}
	p.stateByName(name).conns.Inc(1)
}

// QueryDone records one completed SQL statement: its latency, and whether
// it errored. Feeds the labeled counters/histograms, the tenant's window
// ring, and its SLO.
func (p *Plane) QueryDone(id keys.TenantID, latency time.Duration, errored bool) {
	if p == nil {
		return
	}
	st := p.stateByID(id)
	result := "ok"
	if errored {
		result = "error"
	}
	p.queries.With(st.name, result).Inc(1)
	p.execLat.With(st.name).Record(latency)
	now := p.clock.Now()
	st.win.Observe(now, latency, errored)
	st.slo.Record(now, latency, errored)
}

// TxnRetry records one transaction retry.
func (p *Plane) TxnRetry(id keys.TenantID) {
	if p == nil {
		return
	}
	p.retries.With(p.stateByID(id).name).Inc(1)
}

// Batch records one DistSender batch sent on behalf of the tenant.
func (p *Plane) Batch(id keys.TenantID) {
	if p == nil {
		return
	}
	p.batches.With(p.stateByID(id).name).Inc(1)
}

// AdmissionWait records the admission-queue wait of one request.
func (p *Plane) AdmissionWait(id keys.TenantID, wait time.Duration) {
	if p == nil {
		return
	}
	p.admWait.With(p.stateByID(id).name).Record(wait)
}

// AddRU records request-unit consumption (tenantcost wires its node-bucket
// consumption here).
func (p *Plane) AddRU(id keys.TenantID, ru float64) {
	if p == nil {
		return
	}
	p.ru.With(p.stateByID(id).name).Add(ru)
}

// RangeEvent records a range-management decision on the tenant's keyspace:
// "split.load", "split.size", "merge", or "lease.load".
func (p *Plane) RangeEvent(id keys.TenantID, kind string) {
	if p == nil {
		return
	}
	p.rangeEvents.With(p.stateByID(id).name, kind).Inc(1)
}

// ScaleEvent records an autoscaler decision for the tenant: "up", "down",
// or "suspend".
func (p *Plane) ScaleEvent(name, kind string) {
	if p == nil {
		return
	}
	p.scaleEvents.With(p.stateByName(name).name, kind).Inc(1)
}

// lookup returns the state for name without creating one: nil when the
// tenant has never been seen. Read paths use this so that rendering a
// debug page never perturbs the set of series.
func (p *Plane) lookup(name string) *tenantState {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if name == metric.OverflowLabelValue {
		return p.overflow
	}
	return p.byName[name]
}

// Rate returns the tenant's query rate (QPS) over the trailing span, or 0
// for an unknown tenant.
func (p *Plane) Rate(name string, now time.Time, span time.Duration) float64 {
	st := p.lookup(name)
	if st == nil {
		return 0
	}
	return st.win.Rate(now, span)
}

// P99 returns the tenant's p99 query latency over the trailing span, or 0
// for an unknown tenant.
func (p *Plane) P99(name string, now time.Time, span time.Duration) time.Duration {
	st := p.lookup(name)
	if st == nil {
		return 0
	}
	return st.win.Quantile(now, span, 0.99)
}

// BurnRate returns the tenant's SLO burn rate over the trailing span, or 0
// for an unknown tenant.
func (p *Plane) BurnRate(name string, now time.Time, span time.Duration) float64 {
	st := p.lookup(name)
	if st == nil {
		return 0
	}
	return st.slo.BurnRate(now, span)
}

// RU returns the tenant's cumulative recorded request units.
func (p *Plane) RU(name string) float64 {
	st := p.lookup(name)
	if st == nil {
		return 0
	}
	if g := p.ru.Peek(st.name); g != nil {
		return g.Value()
	}
	return 0
}
