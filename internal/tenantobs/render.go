package tenantobs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"crdbserverless/internal/metric"
)

// This file renders the plane's two debug pages. Both are strictly
// deterministic: tenant rows come from a sorted snapshot, every top-k
// section breaks ties by ascending tenant name, and all numbers derive
// from the threaded clock — so same-seed simulated runs produce
// byte-identical pages, the property the determinism tests pin.

// row is one tenant's derived stats over the short burn window.
type row struct {
	name   string
	qps    float64
	p99    time.Duration
	ru     float64
	burn5  float64
	burn1h float64
	good5  float64
	obj    metric.Objective
}

// snapshotRows computes a row per seen tenant (overflow pseudo-tenant
// last), sorted by name.
func (p *Plane) snapshotRows(now time.Time) []row {
	p.mu.Lock()
	states := append([]*tenantState(nil), p.states...)
	overflow := p.overflow
	p.mu.Unlock()
	sort.Slice(states, func(i, j int) bool { return states[i].name < states[j].name })
	if overflow != nil {
		states = append(states, overflow)
	}
	rows := make([]row, 0, len(states))
	for _, st := range states {
		r := row{
			name:   st.name,
			qps:    st.win.Rate(now, metric.BurnShortWindow),
			p99:    st.win.Quantile(now, metric.BurnShortWindow, 0.99),
			burn5:  st.slo.BurnRate(now, metric.BurnShortWindow),
			burn1h: st.slo.BurnRate(now, metric.BurnLongWindow),
			good5:  st.slo.GoodFraction(now, metric.BurnShortWindow),
			obj:    st.slo.Objective(),
		}
		if g := p.ru.Peek(st.name); g != nil {
			r.ru = g.Value()
		}
		rows = append(rows, r)
	}
	return rows
}

// topBy returns the k highest rows by the given key, ties broken by
// ascending tenant name. The input order (name-sorted) makes the result
// fully deterministic.
func topBy(rows []row, k int, key func(row) float64) []row {
	out := append([]row(nil), rows...)
	sort.SliceStable(out, func(i, j int) bool {
		ki, kj := key(out[i]), key(out[j])
		if ki != kj {
			return ki > kj
		}
		return out[i].name < out[j].name
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

func writeRowHeader(b *strings.Builder) {
	fmt.Fprintf(b, "  %4s  %-24s %10s %10s %12s %8s %8s\n",
		"rank", "tenant", "qps", "p99", "ru", "burn5m", "burn1h")
}

func writeRow(b *strings.Builder, rank int, r row) {
	fmt.Fprintf(b, "  %4d  %-24s %10.2f %10v %12.1f %8.2f %8.2f\n",
		rank, r.name, r.qps, r.p99, r.ru, r.burn5, r.burn1h)
}

// WriteTenantz renders the /debug/tenantz page as of now: fleet summary
// plus top-k tenant tables by QPS, p99, RU, and 5m burn rate.
func (p *Plane) WriteTenantz(w io.Writer, now time.Time, topK int) error {
	if p == nil {
		_, err := io.WriteString(w, "tenant observability plane not configured\n")
		return err
	}
	if topK <= 0 {
		topK = 10
	}
	rows := p.snapshotRows(now)
	var b strings.Builder
	fmt.Fprintf(&b, "== tenantz @ %s ==\n", now.UTC().Format(time.RFC3339))
	fmt.Fprintf(&b, "tenants=%d cap=%d absorbed=%d window=%v\n",
		p.TenantCount(), p.max, p.Absorbed(), metric.BurnShortWindow)
	sections := []struct {
		title string
		key   func(row) float64
	}{
		{"qps", func(r row) float64 { return r.qps }},
		{"p99", func(r row) float64 { return r.p99.Seconds() }},
		{"ru", func(r row) float64 { return r.ru }},
		{"burn rate (5m)", func(r row) float64 { return r.burn5 }},
	}
	for _, sec := range sections {
		fmt.Fprintf(&b, "\n-- top %d by %s --\n", topK, sec.title)
		writeRowHeader(&b)
		for i, r := range topBy(rows, topK, sec.key) {
			writeRow(&b, i+1, r)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteTenant renders the per-tenant drill-down for /debug/tenantz?tenant=.
func (p *Plane) WriteTenant(w io.Writer, name string, now time.Time) error {
	st := p.lookup(name)
	if st == nil {
		_, err := fmt.Fprintf(w, "tenant %q: no data recorded\n", name)
		return err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== tenant %s @ %s ==\n", st.name, now.UTC().Format(time.RFC3339))
	fmt.Fprintf(&b, "objective: %v\n", st.slo.Objective())
	fmt.Fprintf(&b, "qps(5m)=%.2f p50(5m)=%v p99(5m)=%v\n",
		st.win.Rate(now, metric.BurnShortWindow),
		st.win.Quantile(now, metric.BurnShortWindow, 0.50),
		st.win.Quantile(now, metric.BurnShortWindow, 0.99))
	fmt.Fprintf(&b, "good(5m)=%.4f burn(5m)=%.2f burn(1h)=%.2f\n",
		st.slo.GoodFraction(now, metric.BurnShortWindow),
		st.slo.BurnRate(now, metric.BurnShortWindow),
		st.slo.BurnRate(now, metric.BurnLongWindow))
	counter := func(v *metric.CounterVec, values ...string) int64 {
		if c := v.Peek(values...); c != nil {
			return c.Value()
		}
		return 0
	}
	fmt.Fprintf(&b, "conns=%d queries ok=%d error=%d retries=%d batches=%d ru=%.1f\n",
		counter(p.conns, st.name),
		counter(p.queries, st.name, "ok"),
		counter(p.queries, st.name, "error"),
		counter(p.retries, st.name),
		counter(p.batches, st.name),
		p.RU(st.name))
	if h := p.admWait.Peek(st.name); h != nil {
		s := h.Snapshot()
		fmt.Fprintf(&b, "admission wait: n=%d p50=%v p99=%v\n", s.Count, s.P50, s.P99)
	}
	fmt.Fprintf(&b, "scale events: up=%d down=%d suspend=%d\n",
		counter(p.scaleEvents, st.name, "up"),
		counter(p.scaleEvents, st.name, "down"),
		counter(p.scaleEvents, st.name, "suspend"))
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteSLO renders the /debug/slo page: every tenant's objective and
// multi-window burn rates, worst burners first.
func (p *Plane) WriteSLO(w io.Writer, now time.Time) error {
	if p == nil {
		_, err := io.WriteString(w, "tenant observability plane not configured\n")
		return err
	}
	rows := p.snapshotRows(now)
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].burn5 != rows[j].burn5 {
			return rows[i].burn5 > rows[j].burn5
		}
		return rows[i].name < rows[j].name
	})
	var b strings.Builder
	fmt.Fprintf(&b, "== slo @ %s ==\n", now.UTC().Format(time.RFC3339))
	fmt.Fprintf(&b, "tenants=%d windows=%v/%v\n", len(rows), metric.BurnShortWindow, metric.BurnLongWindow)
	fmt.Fprintf(&b, "  %-24s %16s %10s %8s %8s\n", "tenant", "objective", "good5m", "burn5m", "burn1h")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-24s %16v %10.4f %8.2f %8.2f\n",
			r.name, r.obj, r.good5, r.burn5, r.burn1h)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
