package tenantobs

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"crdbserverless/internal/keys"
	"crdbserverless/internal/metric"
	"crdbserverless/internal/timeutil"
)

func newTestPlane(max int) (*Plane, *timeutil.ManualClock, *metric.Registry) {
	clock := timeutil.NewManualClock(time.Unix(1_000_000, 0))
	r := metric.NewRegistry()
	p := New(Config{Registry: r, Clock: clock, MaxTenants: max})
	return p, clock, r
}

func TestNilPlaneIsInert(t *testing.T) {
	var p *Plane
	p.RegisterTenant(2, "alpha")
	p.ConnOpened("alpha")
	p.QueryDone(2, time.Millisecond, false)
	p.TxnRetry(2)
	p.Batch(2)
	p.AdmissionWait(2, 0)
	p.AddRU(2, 1)
	p.ScaleEvent("alpha", "up")
	if p.TenantCount() != 0 || p.Absorbed() != 0 || p.RU("alpha") != 0 {
		t.Fatal("nil plane reported data")
	}
	var b strings.Builder
	if err := p.WriteTenantz(&b, time.Time{}, 5); err != nil {
		t.Fatal(err)
	}
	if err := p.WriteSLO(&b, time.Time{}); err != nil {
		t.Fatal(err)
	}
	if err := p.WriteTenant(&b, "alpha", time.Time{}); err != nil {
		t.Fatal(err)
	}
}

func TestPlaneRecordsPerTenant(t *testing.T) {
	p, clock, r := newTestPlane(0)
	p.RegisterTenant(2, "alpha")
	p.RegisterTenant(3, "beta")
	p.ConnOpened("alpha")
	for i := 0; i < 100; i++ {
		p.QueryDone(2, 10*time.Millisecond, false)
		clock.Advance(time.Second)
	}
	p.QueryDone(3, 500*time.Millisecond, true)
	p.TxnRetry(3)
	p.Batch(2)
	p.AdmissionWait(2, 3*time.Millisecond)
	p.AddRU(2, 42.5)
	p.ScaleEvent("beta", "suspend")

	now := clock.Now()
	if got := p.Rate("alpha", now, metric.BurnShortWindow); got == 0 {
		t.Fatal("alpha qps = 0, want > 0")
	}
	if got := p.BurnRate("beta", now, metric.BurnShortWindow); got == 0 {
		t.Fatal("beta burn rate = 0, want > 0 (its one query errored)")
	}
	if got := p.BurnRate("alpha", now, metric.BurnShortWindow); got != 0 {
		t.Fatalf("alpha burn rate = %v, want 0", got)
	}
	if got := p.RU("alpha"); got != 42.5 {
		t.Fatalf("alpha RU = %v, want 42.5", got)
	}

	// Signals keyed by ID and by name converge on the same labeled series.
	var b strings.Builder
	if err := r.WriteExposition(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`proxy_tenant_conns{tenant="alpha"} 1`,
		`sql_tenant_queries{result="ok",tenant="alpha"} 100`,
		`sql_tenant_queries{result="error",tenant="beta"} 1`,
		`txn_tenant_retries{tenant="beta"} 1`,
		`dist_tenant_batches{tenant="alpha"} 1`,
		`tenantcost_tenant_ru{tenant="alpha"} 42.5`,
		`autoscaler_tenant_scale_events{result="suspend",tenant="beta"} 1`,
		`admission_tenant_wait_count{tenant="alpha"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestPlaneUnknownIDGetsFallbackName(t *testing.T) {
	p, clock, _ := newTestPlane(0)
	p.QueryDone(7, time.Millisecond, false)
	if got := p.Rate("tenant-7", clock.Now(), metric.BurnShortWindow); got == 0 {
		t.Fatal("unregistered tenant not recorded under fallback name")
	}
	// A later registration binds the ID to the existing fallback state.
	p.RegisterTenant(7, "tenant-7")
	if got := p.TenantCount(); got != 1 {
		t.Fatalf("TenantCount = %d, want 1", got)
	}
}

// TestPlaneCardinalityGuard registers cap+1 tenants and checks the excess
// lands in the __overflow__ pseudo-tenant on every surface: state count,
// labeled series, and the tenantz page.
func TestPlaneCardinalityGuard(t *testing.T) {
	const max = 8
	p, clock, r := newTestPlane(max)
	for i := 0; i < max+1; i++ {
		id := keys.TenantID(i + 2)
		p.RegisterTenant(id, fmt.Sprintf("tenant-%04d", i))
		p.QueryDone(id, time.Millisecond, false)
	}
	if got := p.TenantCount(); got != max {
		t.Fatalf("TenantCount = %d, want cap %d", got, max)
	}
	if got := p.Absorbed(); got != 1 {
		t.Fatalf("Absorbed = %d, want 1", got)
	}
	// Re-recording for an absorbed tenant reuses the overflow state rather
	// than absorbing again.
	p.QueryDone(keys.TenantID(max+2), time.Millisecond, false)
	if got := p.Absorbed(); got != 1 {
		t.Fatalf("Absorbed after re-record = %d, want still 1", got)
	}
	var b strings.Builder
	if err := r.WriteExposition(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `sql_tenant_queries{result="ok",tenant="__overflow__"} 2`) {
		t.Fatalf("overflow series missing:\n%s", b.String())
	}
	b.Reset()
	if err := p.WriteTenantz(&b, clock.Now(), max+4); err != nil {
		t.Fatal(err)
	}
	page := b.String()
	if !strings.Contains(page, "absorbed=1") || !strings.Contains(page, "__overflow__") {
		t.Fatalf("tenantz page missing overflow accounting:\n%s", page)
	}
}

// TestPlaneRenderDeterministic: identical recording sequences produce
// byte-identical tenantz, slo, drill-down, and exposition pages — including
// the cardinality-overflow path (cap 4 < 10 tenants).
func TestPlaneRenderDeterministic(t *testing.T) {
	render := func() string {
		p, clock, r := newTestPlane(4)
		for i := 0; i < 10; i++ {
			id := keys.TenantID(i + 2)
			p.RegisterTenant(id, fmt.Sprintf("tenant-%04d", i))
		}
		for tick := 0; tick < 30; tick++ {
			for i := 0; i < 10; i++ {
				id := keys.TenantID(i + 2)
				lat := time.Duration(i+1) * time.Millisecond * time.Duration(tick%3+1)
				p.QueryDone(id, lat, (tick+i)%17 == 0)
				p.AddRU(id, float64(i))
			}
			clock.Advance(5 * time.Second)
		}
		now := clock.Now()
		var b strings.Builder
		if err := p.WriteTenantz(&b, now, 5); err != nil {
			t.Fatal(err)
		}
		if err := p.WriteSLO(&b, now); err != nil {
			t.Fatal(err)
		}
		if err := p.WriteTenant(&b, "tenant-0001", now); err != nil {
			t.Fatal(err)
		}
		if err := p.WriteTenant(&b, "no-such-tenant", now); err != nil {
			t.Fatal(err)
		}
		if err := r.WriteExposition(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	first := render()
	for i := 0; i < 3; i++ {
		if got := render(); got != first {
			t.Fatalf("render %d differs from first:\n--- first\n%s\n--- got\n%s", i, first, got)
		}
	}
	for _, want := range []string{"-- top 5 by qps --", "-- top 5 by burn rate (5m) --", "== slo", "== tenant tenant-0001", `no data recorded`} {
		if !strings.Contains(first, want) {
			t.Fatalf("rendered output missing %q:\n%s", want, first)
		}
	}
}

// TestPlaneTopKTieBreak: equal stats order by ascending tenant name.
func TestPlaneTopKTieBreak(t *testing.T) {
	p, clock, _ := newTestPlane(0)
	for _, name := range []string{"zeta", "alpha", "mid"} {
		p.RegisterTenant(0, name)
	}
	// Identical traffic for all three.
	for _, name := range []string{"zeta", "alpha", "mid"} {
		p.ConnOpened(name)
	}
	var b strings.Builder
	if err := p.WriteTenantz(&b, clock.Now(), 3); err != nil {
		t.Fatal(err)
	}
	page := b.String()
	ia, im, iz := strings.Index(page, "alpha"), strings.Index(page, "mid"), strings.Index(page, "zeta")
	if !(ia < im && im < iz) {
		t.Fatalf("tie-break not by ascending name (alpha@%d mid@%d zeta@%d):\n%s", ia, im, iz, page)
	}
}
