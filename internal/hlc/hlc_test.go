package hlc

import (
	"sync"
	"testing"
	"testing/quick"
	"time"

	"crdbserverless/internal/timeutil"
)

func TestTimestampOrdering(t *testing.T) {
	a := Timestamp{WallTime: 1, Logical: 0}
	b := Timestamp{WallTime: 1, Logical: 1}
	c := Timestamp{WallTime: 2, Logical: 0}
	if !a.Less(b) || !b.Less(c) || !a.Less(c) {
		t.Fatal("ordering broken")
	}
	if b.Less(a) || c.Less(b) {
		t.Fatal("reverse ordering broken")
	}
	if !a.LessEq(a) || !a.Equal(a) {
		t.Fatal("reflexivity broken")
	}
	if a.Compare(b) != -1 || b.Compare(a) != 1 || a.Compare(a) != 0 {
		t.Fatal("Compare broken")
	}
}

func TestTimestampNextPrevInverse(t *testing.T) {
	f := func(wall int64, logical int32) bool {
		if wall < 0 {
			wall = -wall
		}
		if logical < 0 {
			logical = -logical
		}
		ts := Timestamp{WallTime: wall, Logical: logical}
		return ts.Next().Prev().Equal(ts) && ts.Less(ts.Next())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTimestampPrevOfZero(t *testing.T) {
	var z Timestamp
	if !z.Prev().Equal(z) {
		t.Fatal("Prev of zero should be zero")
	}
	if !z.IsEmpty() {
		t.Fatal("zero should be empty")
	}
}

func TestTimestampNextAtLogicalMax(t *testing.T) {
	ts := Timestamp{WallTime: 5, Logical: int32(^uint32(0) >> 1)}
	next := ts.Next()
	if next.WallTime != 6 || next.Logical != 0 {
		t.Fatalf("overflow Next = %+v", next)
	}
}

func TestClockMonotonic(t *testing.T) {
	mc := timeutil.NewManualClock(time.Unix(100, 0))
	c := NewClock(mc)
	prev := c.Now()
	// Without advancing physical time, logical must increase.
	for i := 0; i < 100; i++ {
		cur := c.Now()
		if !prev.Less(cur) {
			t.Fatalf("clock not monotonic: %v then %v", prev, cur)
		}
		prev = cur
	}
	// Advancing physical time resets logical.
	mc.Advance(time.Second)
	cur := c.Now()
	if !prev.Less(cur) || cur.Logical != 0 {
		t.Fatalf("after advance: %v (prev %v)", cur, prev)
	}
}

func TestClockUpdateMergesRemote(t *testing.T) {
	mc := timeutil.NewManualClock(time.Unix(100, 0))
	c := NewClock(mc)
	remote := Timestamp{WallTime: time.Unix(200, 0).UnixNano(), Logical: 7}
	c.Update(remote)
	got := c.Now()
	if !remote.Less(got) {
		t.Fatalf("Now() = %v should exceed merged remote %v", got, remote)
	}
	// Updating with an older timestamp is a no-op.
	c.Update(Timestamp{WallTime: 1})
	got2 := c.Now()
	if !got.Less(got2) {
		t.Fatal("clock regressed after stale update")
	}
}

func TestClockConcurrentUniqueness(t *testing.T) {
	mc := timeutil.NewManualClock(time.Unix(100, 0))
	c := NewClock(mc)
	const goroutines = 8
	const per = 500
	results := make([][]Timestamp, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			out := make([]Timestamp, per)
			for i := 0; i < per; i++ {
				out[i] = c.Now()
			}
			results[g] = out
		}(g)
	}
	wg.Wait()
	seen := make(map[Timestamp]bool)
	for _, r := range results {
		for _, ts := range r {
			if seen[ts] {
				t.Fatalf("duplicate timestamp %v", ts)
			}
			seen[ts] = true
		}
	}
}

func TestTimestampString(t *testing.T) {
	ts := Timestamp{WallTime: 1500000000, Logical: 3}
	if got := ts.String(); got != "1.500000000,3" {
		t.Fatalf("String = %q", got)
	}
}

func TestGoTime(t *testing.T) {
	ts := Timestamp{WallTime: time.Unix(42, 99).UnixNano()}
	if !ts.GoTime().Equal(time.Unix(42, 99)) {
		t.Fatal("GoTime mismatch")
	}
}
