// Package hlc implements hybrid logical clock timestamps, the ordering
// primitive for MVCC versions and transaction timestamps in the KV layer
// (§3.1 of the paper; the design follows CockroachDB's HLC).
package hlc

import (
	"fmt"
	"sync"
	"time"

	"crdbserverless/internal/timeutil"
)

// Timestamp is a hybrid logical clock reading: wall nanoseconds plus a
// logical counter that breaks ties among events in the same wall tick.
type Timestamp struct {
	WallTime int64 // nanoseconds since the Unix epoch
	Logical  int32
}

// Less reports whether t orders strictly before o.
func (t Timestamp) Less(o Timestamp) bool {
	if t.WallTime != o.WallTime {
		return t.WallTime < o.WallTime
	}
	return t.Logical < o.Logical
}

// LessEq reports whether t orders before or equal to o.
func (t Timestamp) LessEq(o Timestamp) bool { return !o.Less(t) }

// Equal reports whether t and o are the same instant.
func (t Timestamp) Equal(o Timestamp) bool {
	return t.WallTime == o.WallTime && t.Logical == o.Logical
}

// IsEmpty reports whether t is the zero timestamp.
func (t Timestamp) IsEmpty() bool { return t.WallTime == 0 && t.Logical == 0 }

// Next returns the smallest timestamp strictly greater than t.
func (t Timestamp) Next() Timestamp {
	if t.Logical == int32(^uint32(0)>>1) {
		return Timestamp{WallTime: t.WallTime + 1}
	}
	return Timestamp{WallTime: t.WallTime, Logical: t.Logical + 1}
}

// Prev returns the largest timestamp strictly less than t. Calling Prev on
// the zero timestamp returns the zero timestamp.
func (t Timestamp) Prev() Timestamp {
	if t.Logical > 0 {
		return Timestamp{WallTime: t.WallTime, Logical: t.Logical - 1}
	}
	if t.WallTime > 0 {
		return Timestamp{WallTime: t.WallTime - 1, Logical: int32(^uint32(0) >> 1)}
	}
	return Timestamp{}
}

// GoTime converts the wall component to a time.Time.
func (t Timestamp) GoTime() time.Time { return time.Unix(0, t.WallTime) }

// String renders the timestamp as wall,logical.
func (t Timestamp) String() string {
	return fmt.Sprintf("%d.%09d,%d", t.WallTime/1e9, t.WallTime%1e9, t.Logical)
}

// Compare returns -1, 0, or +1 per the usual contract.
func (t Timestamp) Compare(o Timestamp) int {
	switch {
	case t.Less(o):
		return -1
	case o.Less(t):
		return 1
	default:
		return 0
	}
}

// Clock generates monotonically increasing hybrid logical timestamps from an
// underlying physical clock, merging observed remote timestamps so that
// causality is preserved across nodes. Safe for concurrent use.
type Clock struct {
	phys timeutil.Clock

	mu   sync.Mutex
	last Timestamp
}

// NewClock returns an HLC driven by the given physical clock.
func NewClock(phys timeutil.Clock) *Clock {
	return &Clock{phys: phys}
}

// Now returns the next HLC timestamp, strictly greater than any previously
// returned or observed timestamp.
func (c *Clock) Now() Timestamp {
	wall := c.phys.Now().UnixNano()
	c.mu.Lock()
	defer c.mu.Unlock()
	if wall > c.last.WallTime {
		c.last = Timestamp{WallTime: wall}
	} else {
		c.last = c.last.Next()
	}
	return c.last
}

// Update merges a remote timestamp into the clock so that subsequent Now
// calls return timestamps greater than remote.
func (c *Clock) Update(remote Timestamp) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.last.Less(remote) {
		c.last = remote
	}
}

// PhysicalTime returns the underlying physical clock's current time.
func (c *Clock) PhysicalTime() time.Time { return c.phys.Now() }

// Physical returns the underlying physical clock, so callers that already
// hold an HLC (e.g. the transaction coordinator's retry backoff) can wait on
// the same time source instead of the wall clock.
func (c *Clock) Physical() timeutil.Clock { return c.phys }
