// Package timeutil provides clock abstractions so that every component in the
// system can run against either real wall-clock time or a deterministic
// manually-advanced clock. The simulation harness (internal/sim) and all
// latency experiments depend on ManualClock for reproducibility.
package timeutil

import (
	"container/heap"
	"sync"
	"time"
)

// Clock abstracts time for components that need to observe or wait on it.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// Since returns the elapsed time since t.
	Since(t time.Time) time.Duration
	// After returns a channel that receives the then-current time once d has
	// elapsed on this clock.
	After(d time.Duration) <-chan time.Time
	// Sleep blocks until d has elapsed on this clock.
	Sleep(d time.Duration)
}

// RealClock is a Clock backed by the system clock.
type RealClock struct{}

// NewRealClock returns a Clock that reads the system time.
func NewRealClock() RealClock { return RealClock{} }

// Now implements Clock.
func (RealClock) Now() time.Time { return time.Now() }

// Since implements Clock.
func (RealClock) Since(t time.Time) time.Duration { return time.Since(t) }

// After implements Clock.
func (RealClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Sleep implements Clock.
func (RealClock) Sleep(d time.Duration) { time.Sleep(d) }

// ManualClock is a Clock whose time only moves when Advance is called. Waiters
// registered via After/Sleep fire when the clock passes their deadline. It is
// safe for concurrent use.
type ManualClock struct {
	mu      sync.Mutex
	now     time.Time
	waiters waiterHeap
}

// NewManualClock returns a ManualClock initialized to start.
func NewManualClock(start time.Time) *ManualClock {
	return &ManualClock{now: start}
}

// Now implements Clock.
func (c *ManualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Since implements Clock.
func (c *ManualClock) Since(t time.Time) time.Duration {
	return c.Now().Sub(t)
}

// After implements Clock.
func (c *ManualClock) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	c.mu.Lock()
	defer c.mu.Unlock()
	if d <= 0 {
		ch <- c.now
		return ch
	}
	heap.Push(&c.waiters, &waiter{at: c.now.Add(d), ch: ch})
	return ch
}

// Sleep implements Clock. It blocks until another goroutine advances the
// clock past the deadline.
func (c *ManualClock) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	<-c.After(d)
}

// Advance moves the clock forward by d, firing any waiters whose deadlines
// are reached.
func (c *ManualClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	fired := c.popDueLocked()
	now := c.now
	c.mu.Unlock()
	for _, w := range fired {
		w.ch <- now
	}
}

// AdvanceTo moves the clock to t if t is later than the current time.
func (c *ManualClock) AdvanceTo(t time.Time) {
	c.mu.Lock()
	if t.After(c.now) {
		c.now = t
	}
	fired := c.popDueLocked()
	now := c.now
	c.mu.Unlock()
	for _, w := range fired {
		w.ch <- now
	}
}

// NumWaiters returns the number of goroutines blocked on this clock. Useful
// for tests that step time until all waiters drain.
func (c *ManualClock) NumWaiters() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.waiters.Len()
}

// NextDeadline returns the earliest pending waiter deadline and true, or a
// zero time and false if there are no waiters.
func (c *ManualClock) NextDeadline() (time.Time, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.waiters.Len() == 0 {
		return time.Time{}, false
	}
	return c.waiters[0].at, true
}

func (c *ManualClock) popDueLocked() []*waiter {
	var fired []*waiter
	for c.waiters.Len() > 0 && !c.waiters[0].at.After(c.now) {
		fired = append(fired, heap.Pop(&c.waiters).(*waiter))
	}
	return fired
}

type waiter struct {
	at time.Time
	ch chan time.Time
}

type waiterHeap []*waiter

func (h waiterHeap) Len() int            { return len(h) }
func (h waiterHeap) Less(i, j int) bool  { return h[i].at.Before(h[j].at) }
func (h waiterHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *waiterHeap) Push(x interface{}) { *h = append(*h, x.(*waiter)) }
func (h *waiterHeap) Pop() interface{} {
	old := *h
	n := len(old)
	w := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return w
}
