package timeutil

import (
	"sync"
	"testing"
	"time"
)

func TestRealClockNow(t *testing.T) {
	c := NewRealClock()
	before := time.Now()
	now := c.Now()
	after := time.Now()
	if now.Before(before) || now.After(after) {
		t.Fatalf("real clock now %v outside [%v, %v]", now, before, after)
	}
}

func TestManualClockAdvance(t *testing.T) {
	start := time.Date(2025, 6, 22, 0, 0, 0, 0, time.UTC)
	c := NewManualClock(start)
	if got := c.Now(); !got.Equal(start) {
		t.Fatalf("Now() = %v, want %v", got, start)
	}
	c.Advance(5 * time.Second)
	if got, want := c.Now(), start.Add(5*time.Second); !got.Equal(want) {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
	if got, want := c.Since(start), 5*time.Second; got != want {
		t.Fatalf("Since = %v, want %v", got, want)
	}
}

func TestManualClockAfterFiresInOrder(t *testing.T) {
	start := time.Unix(0, 0)
	c := NewManualClock(start)
	ch1 := c.After(1 * time.Second)
	ch2 := c.After(2 * time.Second)

	c.Advance(1 * time.Second)
	select {
	case <-ch1:
	default:
		t.Fatal("ch1 should have fired at +1s")
	}
	select {
	case <-ch2:
		t.Fatal("ch2 fired early")
	default:
	}

	c.Advance(1 * time.Second)
	select {
	case <-ch2:
	default:
		t.Fatal("ch2 should have fired at +2s")
	}
}

func TestManualClockAfterNonPositive(t *testing.T) {
	c := NewManualClock(time.Unix(100, 0))
	select {
	case <-c.After(0):
	case <-time.After(time.Second):
		t.Fatal("After(0) did not fire immediately")
	}
	select {
	case <-c.After(-time.Second):
	case <-time.After(time.Second):
		t.Fatal("After(-1s) did not fire immediately")
	}
}

func TestManualClockSleepWakesOnAdvance(t *testing.T) {
	c := NewManualClock(time.Unix(0, 0))
	done := make(chan struct{})
	go func() {
		c.Sleep(3 * time.Second)
		close(done)
	}()
	// Wait for the sleeper to register.
	for c.NumWaiters() == 0 {
		time.Sleep(time.Millisecond)
	}
	c.Advance(3 * time.Second)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Sleep did not wake after Advance")
	}
}

func TestManualClockAdvanceTo(t *testing.T) {
	start := time.Unix(1000, 0)
	c := NewManualClock(start)
	target := start.Add(time.Minute)
	c.AdvanceTo(target)
	if !c.Now().Equal(target) {
		t.Fatalf("AdvanceTo: Now() = %v, want %v", c.Now(), target)
	}
	// Moving backwards is a no-op.
	c.AdvanceTo(start)
	if !c.Now().Equal(target) {
		t.Fatalf("AdvanceTo backwards moved the clock to %v", c.Now())
	}
}

func TestManualClockNextDeadline(t *testing.T) {
	c := NewManualClock(time.Unix(0, 0))
	if _, ok := c.NextDeadline(); ok {
		t.Fatal("NextDeadline should report no waiters")
	}
	c.After(10 * time.Second)
	c.After(5 * time.Second)
	dl, ok := c.NextDeadline()
	if !ok {
		t.Fatal("NextDeadline should report a waiter")
	}
	if want := time.Unix(5, 0); !dl.Equal(want) {
		t.Fatalf("NextDeadline = %v, want %v", dl, want)
	}
}

func TestManualClockConcurrentWaiters(t *testing.T) {
	c := NewManualClock(time.Unix(0, 0))
	const n = 50
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c.Sleep(time.Duration(i%10+1) * time.Second)
		}(i)
	}
	for c.NumWaiters() < n {
		time.Sleep(time.Millisecond)
	}
	c.Advance(10 * time.Second)
	doneCh := make(chan struct{})
	go func() { wg.Wait(); close(doneCh) }()
	select {
	case <-doneCh:
	case <-time.After(5 * time.Second):
		t.Fatal("not all sleepers woke")
	}
}
