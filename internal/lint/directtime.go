package lint

import (
	"fmt"
	"go/ast"
)

// bannedTimeFuncs are the time-package entry points that read or wait on the
// wall clock. Duration arithmetic and time.Time values are fine; observing
// "now" outside a timeutil.Clock is not.
var bannedTimeFuncs = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Since":     true,
	"Until":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// checkDirectTime flags direct wall-clock access. internal/timeutil is the
// one place allowed to touch the real clock (it implements RealClock), and
// _test.go files may use real timeouts for hang protection.
func checkDirectTime(f *file) []Diagnostic {
	if f.pkgDir == "internal/timeutil" || f.isTest || len(f.timeNames) == 0 {
		return nil
	}
	var diags []Diagnostic
	ast.Inspect(f.ast, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := pkgCall(call, f.timeNames); bannedTimeFuncs[fn] {
			diags = append(diags, Diagnostic{
				Pos:   f.fset.Position(call.Pos()),
				Check: "directtime",
				Message: fmt.Sprintf("direct time.%s call; thread a timeutil.Clock (or annotate: //lint:allow directtime <reason>)",
					fn),
			})
		}
		return true
	})
	return diags
}
