package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// checkFaultErr enforces that injected faults can never be silently dropped:
// any call whose callee (transitively, through the module call graph —
// interface calls included via their in-tree implementations) consults a
// faultinject site and returns an error must have that error consumed. The
// flagged shapes are the ones that structurally discard it:
//
//   - the call as a bare expression statement (result dropped);
//   - the error position assigned to the blank identifier;
//   - `go f(...)` / `defer f(...)` on such a call (the result is
//     unrecoverable).
//
// Binding the error to a variable counts as consuming it — `go vet` and the
// compiler's unused-variable check own the rest of that story. The check
// runs everywhere except inside the faultinject package itself.
func checkFaultErr(cg *callGraph, fn *funcNode) []Diagnostic {
	if isFaultinjectPkg(fn.pkg.Types) {
		return nil
	}
	var diags []Diagnostic
	flag := func(n ast.Node, call *ast.CallExpr, how string) {
		name := callName(cg.info, call)
		diags = append(diags, Diagnostic{
			Pos:   cg.tree.fset.Position(n.Pos()),
			Check: "faulterr",
			Message: fmt.Sprintf("%s of %s drops its error, but the callee can return an injected fault; check the error",
				how, name),
		})
	}
	ast.Inspect(fn.decl.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.ExprStmt:
			if call, ok := st.X.(*ast.CallExpr); ok && cg.faultErrCall(call) {
				flag(st, call, "statement-level call")
			}
		case *ast.GoStmt:
			if cg.faultErrCall(st.Call) {
				flag(st, st.Call, "go statement")
			}
		case *ast.DeferStmt:
			if cg.faultErrCall(st.Call) {
				flag(st, st.Call, "defer statement")
			}
		case *ast.AssignStmt:
			if len(st.Rhs) != 1 {
				return true
			}
			call, ok := st.Rhs[0].(*ast.CallExpr)
			if !ok || !cg.faultErrCall(call) {
				return true
			}
			// The error is the call's last result; with the multi-value
			// assign form it lands in the last LHS position.
			if last, ok := st.Lhs[len(st.Lhs)-1].(*ast.Ident); ok && last.Name == "_" {
				flag(last, call, "blank assignment")
			}
		}
		return true
	})
	return diags
}

// faultErrCall reports whether the call returns an error and may surface an
// injected fault: a fault-consulting resolved callee, or an interface-method
// call any of whose in-tree implementations consult a fault site.
func (cg *callGraph) faultErrCall(call *ast.CallExpr) bool {
	tv, ok := cg.info.Types[call]
	if !ok || !lastResultIsError(tv.Type) {
		return false
	}
	for _, callee := range cg.calleesOf(call) {
		if callee.consultsFault {
			return true
		}
	}
	// A direct (non-devirtualized) call to a consult entry point itself:
	// MaybeErr returns the injected error.
	if obj := calleeObj(cg.info, call); obj != nil &&
		faultConsultMethods[obj.Name()] && isFaultinjectPkg(obj.Pkg()) {
		return true
	}
	return false
}

// lastResultIsError reports whether a call's result type ends in error.
func lastResultIsError(t types.Type) bool {
	if t == nil {
		return false
	}
	if tuple, ok := t.(*types.Tuple); ok {
		if tuple.Len() == 0 {
			return false
		}
		t = tuple.At(tuple.Len() - 1).Type()
	}
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// callName renders a call's callee for diagnostics.
func callName(info *types.Info, call *ast.CallExpr) string {
	if obj := calleeObj(info, call); obj != nil {
		return obj.Name()
	}
	return types.ExprString(call.Fun)
}
