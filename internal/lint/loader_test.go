package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree materializes a synthetic source tree under t.TempDir.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for rel, src := range files {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func loadAndCheck(t *testing.T, root string) *Tree {
	t.Helper()
	tr, err := Load(root)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if err := tr.typecheck(); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return tr
}

func TestLoaderModuleTree(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod": "module example.com/mod\n\ngo 1.22\n",
		"a/a.go": "package a\n\nimport \"example.com/mod/b\"\n\nfunc Sum() int { return b.One() + b.One() }\n",
		"b/b.go": "package b\n\nfunc One() int { return 1 }\n",
	})
	tr := loadAndCheck(t, root)
	if len(tr.pkgs) != 2 {
		t.Fatalf("got %d packages, want 2", len(tr.pkgs))
	}
	// Dependency order: b must be type-checked before its importer a.
	if tr.pkgs[0].Dir != "b" || tr.pkgs[1].Dir != "a" {
		t.Errorf("package order = [%s %s], want [b a]", tr.pkgs[0].Dir, tr.pkgs[1].Dir)
	}
	for _, p := range tr.pkgs {
		if !p.typeOK() {
			t.Errorf("package %s failed to type-check: %v", p.Dir, p.TypeErrs)
		}
		if want := "example.com/mod/" + p.Dir; p.Path != want {
			t.Errorf("package %s path = %q, want %q", p.Dir, p.Path, want)
		}
	}
}

func TestLoaderCorpusTree(t *testing.T) {
	// Without a go.mod, packages import each other by root-relative dir —
	// the golden-corpus convention.
	root := writeTree(t, map[string]string{
		"lib/lib.go": "package lib\n\nfunc Two() int { return 2 }\n",
		"app/app.go": "package app\n\nimport \"lib\"\n\nfunc Four() int { return lib.Two() * 2 }\n",
	})
	tr := loadAndCheck(t, root)
	byDir := map[string]*Package{}
	for _, p := range tr.pkgs {
		byDir[p.Dir] = p
	}
	for dir, p := range byDir {
		if !p.typeOK() {
			t.Errorf("package %s failed to type-check: %v", dir, p.TypeErrs)
		}
		if p.Path != dir {
			t.Errorf("package %s path = %q, want the bare dir", dir, p.Path)
		}
	}
}

func TestLoaderTestFilesExcluded(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod":      "module example.com/mod\n\ngo 1.22\n",
		"a/a.go":      "package a\n\nfunc One() int { return 1 }\n",
		"a/a_test.go": "package a\n\nimport \"testing\"\n\nfunc TestOne(t *testing.T) { if One() != 1 { t.Fail() } }\n",
	})
	tr := loadAndCheck(t, root)
	if len(tr.pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(tr.pkgs))
	}
	p := tr.pkgs[0]
	if len(p.Files) != 1 || !strings.HasSuffix(p.Files[0].relPath, "a/a.go") {
		t.Errorf("package a files = %v, want only a/a.go", len(p.Files))
	}
	if !p.typeOK() {
		t.Errorf("package a failed to type-check: %v", p.TypeErrs)
	}
}

func TestLoaderImportCycle(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod": "module example.com/mod\n\ngo 1.22\n",
		"a/a.go": "package a\n\nimport \"example.com/mod/b\"\n\nvar _ = b.B\n",
		"b/b.go": "package b\n\nimport \"example.com/mod/a\"\n\nvar B = 1\n\nvar _ = a.A\n",
	})
	tr, err := Load(root)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	err = tr.typecheck()
	if err == nil || !strings.Contains(err.Error(), "import cycle") {
		t.Fatalf("typecheck err = %v, want an import-cycle error", err)
	}
}

func TestLoaderTypeErrorGatesPackage(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod":     "module example.com/mod\n\ngo 1.22\n",
		"bad/bad.go": "package bad\n\nfunc Broken() int { return \"not an int\" }\n",
		"ok/ok.go":   "package ok\n\nfunc Fine() int { return 1 }\n",
	})
	// A type error in one package must not fail the load; it only excludes
	// that package from the type-aware checks.
	tr := loadAndCheck(t, root)
	byDir := map[string]*Package{}
	for _, p := range tr.pkgs {
		byDir[p.Dir] = p
	}
	if byDir["bad"].typeOK() {
		t.Error("package bad reported typeOK despite a type error")
	}
	if !byDir["ok"].typeOK() {
		t.Errorf("package ok failed to type-check: %v", byDir["ok"].TypeErrs)
	}
}
