package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// funcNode is one declared function or method in the tree, with the summary
// facts the interprocedural checks consume.
type funcNode struct {
	obj  *types.Func
	decl *ast.FuncDecl
	file *file
	pkg  *Package

	// callees are the statically resolvable in-tree functions this function
	// may call, including conservative devirtualizations of interface-method
	// calls (see calleesOf) and calls made inside nested function literals
	// (a closure is assumed to run).
	callees []*funcNode

	// consultsFault: the function (transitively) consults a faultinject
	// site — Registry.Should or Registry.MaybeErr — so an injected fault
	// may surface through it.
	consultsFault bool
	// ordered: the function (transitively) performs an order-observable
	// effect — a channel send, a trace/metric/wire call, or a fault-site
	// consult — so calling it per-iteration leaks iteration order into
	// observable behavior.
	ordered bool
	// acquires is the set of lock classes the function may (transitively)
	// acquire; lockorder projects edges through it.
	acquires map[lockClass]bool
}

// callGraph indexes every declared function in the tree and the interface
// methods they may dispatch to, then computes per-function summaries to a
// fixpoint.
type callGraph struct {
	tree  *Tree
	info  *types.Info
	funcs map[*types.Func]*funcNode
	// methodsByName groups in-tree methods by name for the interface
	// devirtualization pass.
	methodsByName map[string][]*funcNode
}

// buildCallGraph enumerates functions across the type-checked packages,
// resolves call edges, and runs the summary fixpoints.
func buildCallGraph(t *Tree) *callGraph {
	cg := &callGraph{
		tree:          t,
		info:          t.info,
		funcs:         map[*types.Func]*funcNode{},
		methodsByName: map[string][]*funcNode{},
	}
	for _, p := range t.pkgs {
		if !p.typeOK() {
			continue
		}
		for _, f := range p.Files {
			for _, decl := range f.ast.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := t.info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fn := &funcNode{obj: obj, decl: fd, file: f, pkg: p, acquires: map[lockClass]bool{}}
				cg.funcs[obj] = fn
				if fd.Recv != nil {
					cg.methodsByName[fd.Name.Name] = append(cg.methodsByName[fd.Name.Name], fn)
				}
			}
		}
	}
	for _, fn := range cg.funcs {
		fn.callees = cg.calleesIn(fn.decl.Body)
		fn.consultsFault = cg.directFaultConsult(fn.decl.Body)
		fn.ordered = fn.consultsFault || cg.directOrdered(fn.decl.Body)
	}
	cg.propagate()
	return cg
}

// sortedFuncs returns every function node in deterministic order (by
// position), for checks that iterate the graph.
func (cg *callGraph) sortedFuncs() []*funcNode {
	fns := make([]*funcNode, 0, len(cg.funcs))
	for _, fn := range cg.funcs {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].decl.Pos() < fns[j].decl.Pos() })
	return fns
}

// calleesIn collects the resolvable callees of every call expression under
// n, nested function literals included.
func (cg *callGraph) calleesIn(n ast.Node) []*funcNode {
	var out []*funcNode
	seen := map[*funcNode]bool{}
	ast.Inspect(n, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, fn := range cg.calleesOf(call) {
			if !seen[fn] {
				seen[fn] = true
				out = append(out, fn)
			}
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].decl.Pos() < out[j].decl.Pos() })
	return out
}

// calleesOf resolves one call expression to the in-tree functions it may
// reach. A direct function or concrete-method call resolves exactly. An
// interface-method call devirtualizes to every in-tree method whose receiver
// type implements the interface (class-hierarchy style: sound for in-tree
// implementations, which is the linter's scope).
func (cg *callGraph) calleesOf(call *ast.CallExpr) []*funcNode {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := cg.info.Uses[fun].(*types.Func); ok {
			if fn := cg.funcs[f]; fn != nil {
				return []*funcNode{fn}
			}
		}
	case *ast.SelectorExpr:
		if sel, ok := cg.info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			m, ok := sel.Obj().(*types.Func)
			if !ok {
				return nil
			}
			if fn := cg.funcs[m]; fn != nil {
				return []*funcNode{fn} // concrete in-tree method
			}
			if iface, ok := sel.Recv().Underlying().(*types.Interface); ok {
				return cg.implementations(iface, m)
			}
			return nil
		}
		// Package-qualified call (pkg.Fn) has no selection entry.
		if f, ok := cg.info.Uses[fun.Sel].(*types.Func); ok {
			if fn := cg.funcs[f]; fn != nil {
				return []*funcNode{fn}
			}
		}
	}
	return nil
}

// implementations returns the in-tree methods named like m whose receiver
// type satisfies iface.
func (cg *callGraph) implementations(iface *types.Interface, m *types.Func) []*funcNode {
	var out []*funcNode
	for _, cand := range cg.methodsByName[m.Name()] {
		sig, ok := cand.obj.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			continue
		}
		recv := sig.Recv().Type()
		if types.Implements(recv, iface) || types.Implements(types.NewPointer(recv), iface) {
			out = append(out, cand)
		}
	}
	return out
}

// faultConsultMethods are the faultinject.Registry entry points that advance
// a site's schedule (and may sleep or return an injected error).
var faultConsultMethods = map[string]bool{"Should": true, "MaybeErr": true}

// isFaultinjectPkg matches the fault-injection package by import-path suffix
// so the golden corpus can model it under its own root.
func isFaultinjectPkg(pkg *types.Package) bool {
	if pkg == nil {
		return false
	}
	p := pkg.Path()
	return p == "faultinject" || strings.HasSuffix(p, "/faultinject")
}

// directFaultConsult reports whether the body directly calls a fault-site
// consult.
func (cg *callGraph) directFaultConsult(body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if obj, ok := cg.info.Uses[sel.Sel].(*types.Func); ok &&
				faultConsultMethods[obj.Name()] && isFaultinjectPkg(obj.Pkg()) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// orderedPkgSuffixes name the packages whose calls make iteration order
// observable: trace events, metric samples, and wire frames are all
// externally visible sequences.
var orderedPkgSuffixes = []string{"/trace", "/metric", "/wire"}

// isOrderedPkg reports whether pkg's effects are order-observable.
func isOrderedPkg(pkg *types.Package) bool {
	if pkg == nil {
		return false
	}
	p := pkg.Path()
	for _, suf := range orderedPkgSuffixes {
		if strings.HasSuffix(p, suf) || p == suf[1:] {
			return true
		}
	}
	return false
}

// directOrdered reports whether the body itself performs an order-observable
// effect: a channel send or a call into an ordered package.
func (cg *callGraph) directOrdered(body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			found = true
			return false
		case *ast.CallExpr:
			if obj := calleeObj(cg.info, n); obj != nil && isOrderedPkg(obj.Pkg()) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// calleeObj resolves the called function object (in-tree or not) of a call
// expression, or nil for builtins, conversions, and dynamic calls.
func calleeObj(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// propagate runs the summary fixpoints: consultsFault and ordered flow from
// callee to caller until stable.
func (cg *callGraph) propagate() {
	for changed := true; changed; {
		changed = false
		for _, fn := range cg.funcs {
			for _, callee := range fn.callees {
				if callee.consultsFault && !fn.consultsFault {
					fn.consultsFault = true
					fn.ordered = true
					changed = true
				}
				if callee.ordered && !fn.ordered {
					fn.ordered = true
					changed = true
				}
			}
		}
	}
}
