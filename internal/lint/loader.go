package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked in-tree package: the non-test files of one
// directory under the lint root. Test files stay out of the type-check (an
// external _test package cannot be checked together with its subject, and
// the type-aware checks skip tests anyway); they remain visible to the
// syntactic checks through Tree.files.
type Package struct {
	// Dir is the slash-separated directory relative to the lint root ("."
	// for the root itself).
	Dir string
	// Path is the import path the package was type-checked under: the
	// module path joined with Dir when the root carries a go.mod, Dir
	// itself otherwise (the golden corpus imports its packages by
	// root-relative path).
	Path string
	// Files are the package's non-test files in filename order.
	Files []*file
	// Types is the type-checked package object. It is non-nil even when
	// TypeErrs is not empty (go/types recovers and keeps checking).
	Types *types.Package
	// TypeErrs collects the type errors go/types reported. crdb-lint does
	// not re-report them — `go build` owns compile errors — but a package
	// that failed to type-check is excluded from the type-aware checks.
	TypeErrs []error
}

// typeOK reports whether the package type-checked cleanly enough for the
// type-aware checks to trust its info.
func (p *Package) typeOK() bool { return p.Types != nil && len(p.TypeErrs) == 0 }

// typecheck groups the tree's non-test files into packages, orders them by
// in-tree import dependencies, and type-checks each with go/types. Out-of-tree
// imports (the stdlib) resolve through go/importer: compiled export data when
// available, falling back to type-checking the dependency from source. All
// positions land in the tree's shared FileSet. The resulting packages and a
// shared types.Info are stored on the tree.
func (t *Tree) typecheck() error {
	if t.info != nil {
		return nil
	}
	modPath := readModulePath(filepath.Join(t.root, "go.mod"))

	byDir := map[string][]*file{}
	for _, f := range t.files {
		if f.isTest {
			continue
		}
		byDir[f.pkgDir] = append(byDir[f.pkgDir], f)
	}
	var pkgs []*Package
	byPath := map[string]*Package{}
	for dir, files := range byDir {
		sort.Slice(files, func(i, j int) bool { return files[i].relPath < files[j].relPath })
		path := dir
		if modPath != "" {
			path = modPath
			if dir != "." {
				path = modPath + "/" + dir
			}
		}
		p := &Package{Dir: dir, Path: path, Files: files}
		pkgs = append(pkgs, p)
		byPath[p.Path] = p
		if modPath != "" {
			// The corpus convention (import by root-relative dir) stays
			// available inside a module too; it costs nothing.
			byPath[dir] = p
		}
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Dir < pkgs[j].Dir })

	ordered, err := topoOrder(pkgs, byPath)
	if err != nil {
		return err
	}

	t.info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	imp := &treeImporter{
		inTree: map[string]*types.Package{},
		gc:     importer.ForCompiler(t.fset, "gc", nil),
		source: importer.ForCompiler(t.fset, "source", nil),
	}
	for _, p := range ordered {
		conf := types.Config{
			Importer: imp,
			Error:    func(err error) { p.TypeErrs = append(p.TypeErrs, err) },
		}
		files := make([]*ast.File, len(p.Files))
		for i, f := range p.Files {
			files[i] = f.ast
		}
		// Check returns a usable (if partial) package even on error; the
		// per-package TypeErrs gate decides whether checks may rely on it.
		tpkg, _ := conf.Check(p.Path, t.fset, files, t.info)
		p.Types = tpkg
		imp.inTree[p.Path] = tpkg
		if p.Path != p.Dir {
			imp.inTree[p.Dir] = tpkg
		}
	}
	t.pkgs = ordered
	return nil
}

// readModulePath extracts the module path from a go.mod file, or "" when the
// file does not exist or has no module directive.
func readModulePath(gomod string) string {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			rest = strings.TrimSpace(rest)
			if rest != "" {
				return strings.Trim(rest, `"`)
			}
		}
	}
	return ""
}

// topoOrder sorts packages so every in-tree import precedes its importer.
// An import cycle is an error (go build rejects it too, but the loader must
// not hang or type-check against a missing dependency).
func topoOrder(pkgs []*Package, byPath map[string]*Package) ([]*Package, error) {
	deps := map[*Package][]*Package{}
	for _, p := range pkgs {
		seen := map[*Package]bool{}
		for _, f := range p.Files {
			for _, spec := range f.ast.Imports {
				path := strings.Trim(spec.Path.Value, `"`)
				if dep, ok := byPath[path]; ok && dep != p && !seen[dep] {
					seen[dep] = true
					deps[p] = append(deps[p], dep)
				}
			}
		}
		sort.Slice(deps[p], func(i, j int) bool { return deps[p][i].Dir < deps[p][j].Dir })
	}
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[*Package]int{}
	var ordered []*Package
	var visit func(p *Package) error
	visit = func(p *Package) error {
		switch color[p] {
		case black:
			return nil
		case gray:
			return fmt.Errorf("lint: import cycle through %s", p.Dir)
		}
		color[p] = gray
		for _, dep := range deps[p] {
			if err := visit(dep); err != nil {
				return err
			}
		}
		color[p] = black
		ordered = append(ordered, p)
		return nil
	}
	for _, p := range pkgs {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return ordered, nil
}

// treeImporter resolves in-tree import paths to the packages the loader has
// already type-checked (dependency order guarantees they exist by the time
// an importer needs them) and delegates everything else to the stdlib
// importers: compiled export data first, source as the fallback, so the
// linter works both with and without a populated build cache.
type treeImporter struct {
	inTree map[string]*types.Package
	gc     types.Importer
	source types.Importer
	failed map[string]error
}

func (ti *treeImporter) Import(path string) (*types.Package, error) {
	if p, ok := ti.inTree[path]; ok {
		return p, nil
	}
	if err, ok := ti.failed[path]; ok {
		return nil, err
	}
	p, err := ti.gc.Import(path)
	if err != nil {
		p, err = ti.source.Import(path)
	}
	if err != nil {
		if ti.failed == nil {
			ti.failed = map[string]error{}
		}
		ti.failed[path] = err
		return nil, err
	}
	return p, nil
}
