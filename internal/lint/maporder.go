package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// checkMapOrder flags `range` statements over map values whose iteration
// order escapes into observable behavior. Go randomizes map iteration per
// run, so any order-dependent effect inside the loop breaks the
// reproduction's same-seed determinism (the PR-5 chaos-replay bug: intent
// resolution in map order made the fault-consult schedule differ between
// identically-seeded runs). The observable sinks are:
//
//   - appending a loop-derived value to a slice that is not deterministically
//     sorted later in the same function (the collect-then-sort idiom is the
//     sanctioned fix and is recognized);
//   - a channel send inside the loop body;
//   - passing a loop variable to a function that (transitively, through the
//     module call graph) performs an order-observable effect — a trace or
//     metric event, a wire frame, a channel send, or a fault-site consult;
//   - formatting a loop variable into a string or error (fmt/errors calls),
//     which bakes the order into a value something will eventually compare
//     or print.
//
// Loops whose body never leaks a loop variable (aggregations, copies into
// other maps, deletes) are inherently order-insensitive and pass.
func checkMapOrder(cg *callGraph, fn *funcNode) []Diagnostic {
	var diags []Diagnostic
	info := cg.info
	ast.Inspect(fn.decl.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := typeOf(info, rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		loopVars := rangeLoopVars(info, rs)
		if len(loopVars) == 0 {
			return true // `for range m` observes only the count
		}
		diags = append(diags, (&mapOrderScan{cg: cg, fn: fn, rs: rs, vars: loopVars}).scan()...)
		return true
	})
	return diags
}

// rangeLoopVars resolves the key/value loop variables to their objects.
func rangeLoopVars(info *types.Info, rs *ast.RangeStmt) map[types.Object]bool {
	vars := map[types.Object]bool{}
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		if obj := info.ObjectOf(id); obj != nil {
			vars[obj] = true
		}
	}
	return vars
}

type mapOrderScan struct {
	cg   *callGraph
	fn   *funcNode
	rs   *ast.RangeStmt
	vars map[types.Object]bool
}

// scan walks the loop body (nested function literals included — the loop
// variables are captured there too) collecting order-observable sinks.
func (m *mapOrderScan) scan() []Diagnostic {
	var diags []Diagnostic
	seenLine := map[int]bool{}
	flag := func(n ast.Node, format string, args ...any) {
		pos := m.cg.tree.fset.Position(n.Pos())
		if seenLine[pos.Line] {
			return // one finding per line; overlapping sinks restate the same fix
		}
		seenLine[pos.Line] = true
		diags = append(diags, Diagnostic{Pos: pos, Check: "maporder",
			Message: fmt.Sprintf(format, args...)})
	}
	ast.Inspect(m.rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			flag(n, "channel send inside range over map: receive order depends on map iteration order; iterate sorted keys")
		case *ast.CallExpr:
			m.scanCall(n, flag)
		}
		return true
	})
	return diags
}

func (m *mapOrderScan) scanCall(call *ast.CallExpr, flag func(ast.Node, string, ...any)) {
	info := m.cg.info

	// append(dst, ...loop-derived...): flagged unless dst is sorted later in
	// the enclosing function.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && b.Name() == "append" {
			if len(call.Args) >= 2 && m.usesLoopVar(call.Args[1:]) {
				if dst, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
					if obj := info.ObjectOf(dst); obj != nil && m.sortedAfterLoop(obj) {
						return
					}
					flag(call, "append in map order: %s's element order depends on map iteration order; sort it afterwards or iterate sorted keys", dst.Name)
					return
				}
				flag(call, "append in map order: the element order depends on map iteration order; sort afterwards or iterate sorted keys")
			}
			return
		}
	}

	obj := calleeObj(info, call)
	if obj == nil || !m.callMentionsLoopVar(call) {
		return
	}
	pkg := obj.Pkg()
	if pkg != nil && (pkg.Path() == "fmt" || pkg.Path() == "errors") {
		flag(call, "%s.%s formats a map-ordered value: the message depends on map iteration order; iterate sorted keys", pkg.Name(), obj.Name())
		return
	}
	if isOrderedPkg(pkg) {
		flag(call, "%s.%s inside range over map emits events in map iteration order; iterate sorted keys", pkg.Name(), obj.Name())
		return
	}
	if fn := m.cg.funcs[obj]; fn != nil && fn.ordered {
		flag(call, "%s is order-observable (it transitively sends, traces, or consults a fault site); calling it per map iteration leaks map order — iterate sorted keys", obj.Name())
	}
}

// usesLoopVar reports whether any expression references a loop variable.
func (m *mapOrderScan) usesLoopVar(exprs []ast.Expr) bool {
	for _, e := range exprs {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if m.vars[m.cg.info.ObjectOf(id)] {
					found = true
					return false
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// callMentionsLoopVar reports whether a loop variable flows into the call's
// arguments or receiver chain.
func (m *mapOrderScan) callMentionsLoopVar(call *ast.CallExpr) bool {
	if m.usesLoopVar(call.Args) {
		return true
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return m.usesLoopVar([]ast.Expr{sel.X})
	}
	return false
}

// sortedAfterLoop reports whether obj (a slice collected inside the loop) is
// passed to a recognized deterministic sort after the range statement in the
// enclosing function: sort.Strings/Ints/Float64s/Slice/SliceStable/
// Sort/Stable or slices.Sort/SortFunc/SortStableFunc.
func (m *mapOrderScan) sortedAfterLoop(obj types.Object) bool {
	found := false
	ast.Inspect(m.fn.decl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < m.rs.End() || len(call.Args) == 0 {
			return true
		}
		callee := calleeObj(m.cg.info, call)
		if callee == nil || callee.Pkg() == nil {
			return true
		}
		if p := callee.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok && m.cg.info.ObjectOf(id) == obj {
			found = true
			return false
		}
		return true
	})
	return found
}
