package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// lockMethods maps a mutex method name to whether it acquires (true) or
// releases (false).
var lockMethods = map[string]bool{
	"Lock": true, "RLock": true,
	"Unlock": false, "RUnlock": false,
}

// syncLockTypes are sync types that must never be copied after first use.
var syncLockTypes = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true, "Once": true, "Cond": true, "Pool": true, "Map": true,
}

// mutexRecvName reports whether the receiver of a Lock/Unlock-style call is
// named like a mutex. crdb-lint is syntactic, so this naming heuristic is
// what keeps Lock() methods on unrelated types (e.g. a table lock manager)
// from being misclassified.
func mutexRecvName(name string) bool {
	switch name {
	case "mu", "mtx", "lock":
		return true
	}
	return strings.HasSuffix(name, "Mu") || strings.HasSuffix(name, "Mtx") ||
		strings.HasSuffix(name, "Mutex") || strings.HasSuffix(name, "mutex")
}

// lockCall decodes a statement-level mutex call: the lock key (receiver
// expression, with "|R" appended for read locks), whether it acquires, and
// whether it matched at all.
func lockCall(call *ast.CallExpr) (key string, acquire, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	acquire, known := lockMethods[sel.Sel.Name]
	if !known || len(call.Args) != 0 {
		return "", false, false
	}
	recv := sel.X
	// The receiver's final component must be mutex-named.
	final := ""
	switch x := recv.(type) {
	case *ast.Ident:
		final = x.Name
	case *ast.SelectorExpr:
		final = x.Sel.Name
	default:
		return "", false, false
	}
	if !mutexRecvName(final) {
		return "", false, false
	}
	key = types.ExprString(recv)
	if strings.HasPrefix(sel.Sel.Name, "R") {
		key += "|R"
	}
	return key, acquire, true
}

// structIndex records, per "pkgDir:TypeName", whether the struct type
// (transitively) embeds a sync lock and therefore must not be copied.
type structIndex map[string]bool

// buildStructIndex scans every struct declaration in the tree and computes
// which types contain a lock, following same-package and cross-package
// (by import-path suffix) field references to a fixpoint.
func buildStructIndex(files []*file) structIndex {
	idx := structIndex{}
	pkgDirs := map[string]bool{}
	for _, f := range files {
		pkgDirs[f.pkgDir] = true
	}
	// refs[typeKey] = struct field type keys it embeds by value.
	refs := map[string][]string{}
	for _, f := range files {
		for _, decl := range f.ast.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				key := f.pkgDir + ":" + ts.Name.Name
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				if _, seen := idx[key]; !seen {
					idx[key] = false
				}
				for _, fld := range st.Fields.List {
					direct, ref := fieldLockInfo(fld.Type, f, pkgDirs)
					if direct {
						idx[key] = true
					}
					if ref != "" {
						refs[key] = append(refs[key], ref)
					}
				}
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for key, deps := range refs {
			if idx[key] {
				continue
			}
			for _, dep := range deps {
				if idx[dep] {
					idx[key] = true
					changed = true
					break
				}
			}
		}
	}
	return idx
}

// fieldLockInfo classifies a struct field type: direct reports a by-value
// sync lock; ref names another struct type key the field embeds by value.
func fieldLockInfo(expr ast.Expr, f *file, pkgDirs map[string]bool) (direct bool, ref string) {
	switch t := expr.(type) {
	case *ast.SelectorExpr:
		if id, ok := t.X.(*ast.Ident); ok {
			if f.syncNames[id.Name] && syncLockTypes[t.Sel.Name] {
				return true, ""
			}
			if dir := importDirFor(f, id.Name, pkgDirs); dir != "" {
				return false, dir + ":" + t.Sel.Name
			}
		}
	case *ast.Ident:
		return false, f.pkgDir + ":" + t.Name
	case *ast.StructType:
		for _, fld := range t.Fields.List {
			d, r := fieldLockInfo(fld.Type, f, pkgDirs)
			if d {
				return true, ""
			}
			if r != "" {
				ref = r // anonymous structs with a single embedded ref are rare; keep the last
			}
		}
		return false, ref
	}
	return false, ""
}

// importDirFor maps a file-local package name to a pkgDir inside the lint
// root, matching the import path by suffix. Returns "" for stdlib or
// out-of-tree imports.
func importDirFor(f *file, localName string, pkgDirs map[string]bool) string {
	for _, imp := range f.ast.Imports {
		p := strings.Trim(imp.Path.Value, `"`)
		name := ""
		if imp.Name != nil {
			name = imp.Name.Name
		} else if i := strings.LastIndexByte(p, '/'); i >= 0 {
			name = p[i+1:]
		} else {
			name = p
		}
		if name != localName {
			continue
		}
		for dir := range pkgDirs {
			if p == dir || strings.HasSuffix(p, "/"+dir) {
				return dir
			}
		}
	}
	return ""
}

// checkLockSafety runs the four lock-hygiene checks over one file.
func checkLockSafety(f *file, idx structIndex) []Diagnostic {
	var diags []Diagnostic
	la := &lockAnalyzer{f: f, idx: idx}
	for _, decl := range f.ast.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		diags = append(diags, la.checkCopiedLocks(fd)...)
		if fd.Body == nil {
			continue
		}
		diags = append(diags, la.checkMissingUnlock(fd)...)
		diags = append(diags, la.checkBody(fd.Body, map[string]bool{})...)
	}
	return diags
}

type lockAnalyzer struct {
	f   *file
	idx structIndex
}

// checkCopiedLocks flags by-value receivers and parameters whose type
// contains a sync lock.
func (la *lockAnalyzer) checkCopiedLocks(fd *ast.FuncDecl) []Diagnostic {
	var diags []Diagnostic
	flag := func(expr ast.Expr, what string) {
		if name, lockish := la.lockBearing(expr); lockish {
			diags = append(diags, Diagnostic{
				Pos:     la.f.fset.Position(expr.Pos()),
				Check:   "locksafety",
				Message: fmt.Sprintf("%s of %s passes the lock by value; use a pointer", what, name),
			})
		}
	}
	if fd.Recv != nil {
		for _, fld := range fd.Recv.List {
			flag(fld.Type, fmt.Sprintf("receiver of %s", fd.Name.Name))
		}
	}
	if fd.Type.Params != nil {
		for _, fld := range fd.Type.Params.List {
			flag(fld.Type, fmt.Sprintf("parameter of %s", fd.Name.Name))
		}
	}
	return diags
}

// lockBearing reports whether a non-pointer type expression names a
// lock-bearing type (a sync lock itself or a struct containing one).
func (la *lockAnalyzer) lockBearing(expr ast.Expr) (string, bool) {
	switch t := expr.(type) {
	case *ast.Ident:
		key := la.f.pkgDir + ":" + t.Name
		if la.idx[key] {
			return t.Name, true
		}
	case *ast.SelectorExpr:
		if id, ok := t.X.(*ast.Ident); ok {
			if la.f.syncNames[id.Name] && syncLockTypes[t.Sel.Name] {
				return "sync." + t.Sel.Name, true
			}
			pkgDirs := map[string]bool{}
			for k := range la.idx {
				if i := strings.LastIndexByte(k, ':'); i >= 0 {
					pkgDirs[k[:i]] = true
				}
			}
			if dir := importDirFor(la.f, id.Name, pkgDirs); dir != "" && la.idx[dir+":"+t.Sel.Name] {
				return types.ExprString(t), true
			}
		}
	}
	return "", false
}

// checkMissingUnlock tallies Lock/Unlock pairs across a whole function body
// (nested closures included, so `defer func() { mu.Unlock() }()` counts) and
// flags lock keys that are acquired but never released.
func (la *lockAnalyzer) checkMissingUnlock(fd *ast.FuncDecl) []Diagnostic {
	type tally struct {
		locks, unlocks int
		first          ast.Node
	}
	tallies := map[string]*tally{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		key, acquire, ok := lockCall(call)
		if !ok {
			return true
		}
		t := tallies[key]
		if t == nil {
			t = &tally{}
			tallies[key] = t
		}
		if acquire {
			t.locks++
			if t.first == nil {
				t.first = call
			}
		} else {
			t.unlocks++
		}
		return true
	})
	var diags []Diagnostic
	keys := make([]string, 0, len(tallies))
	for key := range tallies {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		t := tallies[key]
		if t.locks > 0 && t.unlocks == 0 {
			recv := strings.TrimSuffix(key, "|R")
			verb := "Lock"
			if strings.HasSuffix(key, "|R") {
				verb = "RLock"
			}
			diags = append(diags, Diagnostic{
				Pos:     la.f.fset.Position(t.first.Pos()),
				Check:   "locksafety",
				Message: fmt.Sprintf("%s.%s() in %s has no matching unlock on any path", recv, verb, fd.Name.Name),
			})
		}
	}
	return diags
}

// checkBody walks a function body statement by statement, tracking which
// locks are held, to flag `defer mu.Lock()` typos and channel sends
// performed while a lock is held. Nested function literals are analyzed as
// independent functions (a goroutine does not inherit the caller's locks),
// but they do inherit the set of function-local channels: a send on a
// freshly made (buffered or promptly-drained) local channel is not a
// blocking hazard and is exempt.
func (la *lockAnalyzer) checkBody(body *ast.BlockStmt, localChans map[string]bool) []Diagnostic {
	chans := make(map[string]bool, len(localChans))
	for k := range localChans {
		chans[k] = true
	}
	collectLocalChans(body, chans)
	var diags []Diagnostic
	var nested []*ast.FuncLit
	held := map[string]bool{}
	la.walkStmts(body.List, held, chans, &diags, &nested)
	for _, fl := range nested {
		diags = append(diags, la.checkBody(fl.Body, chans)...)
	}
	return diags
}

// collectLocalChans records identifiers assigned from make(chan ...) within
// body (not descending into nested function literals' own assignments is
// not worth the complexity; over-collection only suppresses, never flags).
func collectLocalChans(body *ast.BlockStmt, out map[string]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				continue
			}
			if fn, ok := call.Fun.(*ast.Ident); !ok || fn.Name != "make" {
				continue
			}
			if _, ok := call.Args[0].(*ast.ChanType); !ok {
				continue
			}
			if i < len(as.Lhs) {
				if id, ok := as.Lhs[i].(*ast.Ident); ok {
					out[id.Name] = true
				}
			}
		}
		return true
	})
}

// walkStmts processes stmts in order, mutating held. Branching constructs
// recurse with a copy of held (conservative: releases inside a branch do not
// propagate out).
func (la *lockAnalyzer) walkStmts(stmts []ast.Stmt, held, chans map[string]bool, diags *[]Diagnostic, nested *[]*ast.FuncLit) {
	copyHeld := func() map[string]bool {
		c := make(map[string]bool, len(held))
		for k := range held {
			c[k] = true
		}
		return c
	}
	for _, s := range stmts {
		la.collectFuncLits(s, nested)
		switch st := s.(type) {
		case *ast.ExprStmt:
			if call, ok := st.X.(*ast.CallExpr); ok {
				if key, acquire, ok := lockCall(call); ok {
					if acquire {
						held[key] = true
					} else {
						delete(held, key)
					}
				}
			}
		case *ast.DeferStmt:
			if key, acquire, ok := lockCall(st.Call); ok {
				if acquire {
					*diags = append(*diags, Diagnostic{
						Pos:     la.f.fset.Position(st.Pos()),
						Check:   "locksafety",
						Message: fmt.Sprintf("defer %s acquires at function exit — did you mean defer ...Unlock()?", types.ExprString(st.Call)),
					})
				}
				// defer Unlock: the lock stays held until return; leave it
				// in held so sends below it are still flagged.
				_ = key
			}
		case *ast.SendStmt:
			la.checkSend(st, held, chans, diags)
		case *ast.IfStmt:
			if st.Init != nil {
				la.walkStmts([]ast.Stmt{st.Init}, held, chans, diags, nested)
			}
			la.walkStmts(st.Body.List, copyHeld(), chans, diags, nested)
			if st.Else != nil {
				la.walkStmts([]ast.Stmt{st.Else}, copyHeld(), chans, diags, nested)
			}
		case *ast.BlockStmt:
			la.walkStmts(st.List, held, chans, diags, nested)
		case *ast.ForStmt:
			la.walkStmts(st.Body.List, copyHeld(), chans, diags, nested)
		case *ast.RangeStmt:
			la.walkStmts(st.Body.List, copyHeld(), chans, diags, nested)
		case *ast.SwitchStmt:
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					la.walkStmts(cc.Body, copyHeld(), chans, diags, nested)
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					la.walkStmts(cc.Body, copyHeld(), chans, diags, nested)
				}
			}
		case *ast.SelectStmt:
			for _, c := range st.Body.List {
				cc, ok := c.(*ast.CommClause)
				if !ok {
					continue
				}
				if send, ok := cc.Comm.(*ast.SendStmt); ok {
					la.checkSend(send, held, chans, diags)
				}
				la.walkStmts(cc.Body, copyHeld(), chans, diags, nested)
			}
		case *ast.LabeledStmt:
			la.walkStmts([]ast.Stmt{st.Stmt}, held, chans, diags, nested)
		}
	}
}

func (la *lockAnalyzer) checkSend(send *ast.SendStmt, held, chans map[string]bool, diags *[]Diagnostic) {
	if len(held) == 0 {
		return
	}
	if id, ok := send.Chan.(*ast.Ident); ok && chans[id.Name] {
		return
	}
	keys := make([]string, 0, len(held))
	for k := range held {
		keys = append(keys, strings.TrimSuffix(k, "|R"))
	}
	sort.Strings(keys)
	*diags = append(*diags, Diagnostic{
		Pos:     la.f.fset.Position(send.Pos()),
		Check:   "locksafety",
		Message: fmt.Sprintf("channel send while holding %s can deadlock; release the lock first", strings.Join(keys, ", ")),
	})
}

// collectFuncLits queues function literals found in a statement's
// expressions (closures, goroutine bodies, deferred funcs) for independent
// analysis, without descending into them here.
func (la *lockAnalyzer) collectFuncLits(s ast.Stmt, nested *[]*ast.FuncLit) {
	switch s.(type) {
	case *ast.BlockStmt, *ast.IfStmt, *ast.ForStmt, *ast.RangeStmt,
		*ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt, *ast.LabeledStmt:
		// Their nested statements are walked by walkStmts; literals inside
		// conditions/init are rare enough to skip.
		return
	}
	ast.Inspect(s, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			*nested = append(*nested, fl)
			return false
		}
		return true
	})
}
