package lint

import (
	"fmt"
	"go/ast"
)

// globalRandFuncs are the math/rand package-level functions that draw from
// the process-global source. Using them makes runs irreproducible.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
}

// checkGlobalRand enforces explicit RNG threading:
//
//   - global math/rand functions are banned everywhere (even in tests:
//     unseeded draws make failures unreproducible);
//   - rand.New / rand.NewSource are allowed only in internal/randutil (the
//     RNG factory) and in _test.go files, which may build their own seeded
//     generators;
//   - seeding from time.Now (rand.NewSource(time.Now().UnixNano()) and
//     friends) is flagged everywhere, including randutil and tests.
func checkGlobalRand(f *file) []Diagnostic {
	if len(f.randNames) == 0 {
		return nil
	}
	var diags []Diagnostic
	inRandutil := f.pkgDir == "internal/randutil"
	ast.Inspect(f.ast, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := pkgCall(call, f.randNames)
		switch {
		case globalRandFuncs[fn]:
			diags = append(diags, Diagnostic{
				Pos:   f.fset.Position(call.Pos()),
				Check: "globalrand",
				Message: fmt.Sprintf("global rand.%s draws from the process-wide source; thread a *rand.Rand (randutil.NewRand) instead",
					fn),
			})
		case fn == "New" || fn == "NewSource":
			if seededFromClock(call, f.timeNames) {
				diags = append(diags, Diagnostic{
					Pos:     f.fset.Position(call.Pos()),
					Check:   "globalrand",
					Message: fmt.Sprintf("rand.%s seeded from time.Now is irreproducible; use an explicit seed", fn),
				})
			} else if !inRandutil && !f.isTest {
				diags = append(diags, Diagnostic{
					Pos:     f.fset.Position(call.Pos()),
					Check:   "globalrand",
					Message: fmt.Sprintf("rand.%s outside internal/randutil; construct RNGs with randutil.NewRand/Fork so seeds are explicit", fn),
				})
			}
		}
		return true
	})
	return diags
}

// seededFromClock reports whether any argument of call contains a time.Now
// call (the classic rand.NewSource(time.Now().UnixNano()) anti-pattern).
func seededFromClock(call *ast.CallExpr, timeNames map[string]bool) bool {
	if len(timeNames) == 0 {
		return false
	}
	found := false
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			if inner, ok := n.(*ast.CallExpr); ok && pkgCall(inner, timeNames) == "Now" {
				found = true
				return false
			}
			return !found
		})
	}
	return found
}
