package lint

import (
	"fmt"
	"go/ast"
	"sort"
	"strings"
)

// lockScopeDirs are the package-directory base names where the lock-scope
// discipline is enforced: the storage engine and the replication group keep
// heavy work (sorts, SSTable builds, merge loops, fault-site consults that
// may sleep) outside their exclusive locks, so a flush or commit round never
// stalls concurrent readers. The check is deliberately scoped — elsewhere in
// the tree a sort under a lock is unremarkable.
var lockScopeDirs = map[string]bool{"lsm": true, "raftlite": true}

// lockScopeHeavyIdents are package-level functions considered heavy: calling
// them while a mutex is held defeats the write-path pipelining.
var lockScopeHeavyIdents = map[string]bool{"mergeRuns": true, "newSSTable": true}

// lockScopeHeavyMethods are method names considered heavy on any receiver:
// value-log GC rewrites re-append live records and take the engine lock per
// entry, and cache fills run LRU evictions under the cache's own mutex —
// none of which may nest inside a held engine lock.
var lockScopeHeavyMethods = map[string]bool{
	"addBlock":        true, // blockCache fill + eviction loop
	"addHot":          true, // hotCache fill + eviction loop
	"rewriteVlogFile": true, // value-log GC rewrite round
}

// lockScopeScoped reports whether the check applies to files in pkgDir.
func lockScopeScoped(pkgDir string) bool {
	base := pkgDir
	if i := strings.LastIndexByte(pkgDir, '/'); i >= 0 {
		base = pkgDir[i+1:]
	}
	return lockScopeDirs[base]
}

// checkLockScope flags heavy calls made while a mutex is held, in the
// packages that pin the out-of-lock invariant. Like the rest of crdb-lint it
// is syntactic: locks are recognized by lockCall's naming heuristic, and a
// function whose name ends in "Locked" is analyzed as if a caller's lock
// were already held (the repository's convention for helpers that require
// the lock).
func checkLockScope(f *file) []Diagnostic {
	if f.isTest || !lockScopeScoped(f.pkgDir) {
		return nil
	}
	var diags []Diagnostic
	for _, decl := range f.ast.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		held := map[string]bool{}
		if strings.HasSuffix(fd.Name.Name, "Locked") {
			held["the caller's lock"] = true
		}
		w := &lockScopeWalker{f: f}
		w.walk(fd.Body.List, held, &diags)
	}
	return diags
}

type lockScopeWalker struct {
	f *file
}

// walk processes stmts in order, mutating held, mirroring the traversal
// discipline of locksafety's walkStmts: branches recurse with a copy of the
// held set, and function literals are not entered (a goroutine or deferred
// closure does not inherit the enclosing critical section for this check's
// purposes — it is flagged only if it takes the lock itself).
func (w *lockScopeWalker) walk(stmts []ast.Stmt, held map[string]bool, diags *[]Diagnostic) {
	copyHeld := func() map[string]bool {
		c := make(map[string]bool, len(held))
		for k := range held {
			c[k] = true
		}
		return c
	}
	for _, s := range stmts {
		switch st := s.(type) {
		case *ast.ExprStmt:
			if call, ok := st.X.(*ast.CallExpr); ok {
				if key, acquire, ok := lockCall(call); ok {
					if acquire {
						held[key] = true
					} else {
						delete(held, key)
					}
					continue
				}
			}
			w.scan(st.X, held, diags)
		case *ast.DeferStmt:
			if _, acquire, ok := lockCall(st.Call); ok && !acquire {
				// defer Unlock: the lock stays held for the rest of the
				// body; leave held as is.
				continue
			}
			// Arguments are evaluated at defer time; the called function
			// runs at return, conservatively still inside the section when
			// an Unlock is also deferred — scan it all.
			w.scan(st.Call, held, diags)
		case *ast.GoStmt:
			// Only the call's operands are evaluated under the lock; the
			// goroutine body runs outside it.
			for _, arg := range st.Call.Args {
				w.scan(arg, held, diags)
			}
		case *ast.IfStmt:
			if st.Init != nil {
				w.walk([]ast.Stmt{st.Init}, held, diags)
			}
			w.scan(st.Cond, held, diags)
			w.walk(st.Body.List, copyHeld(), diags)
			if st.Else != nil {
				w.walk([]ast.Stmt{st.Else}, copyHeld(), diags)
			}
		case *ast.BlockStmt:
			w.walk(st.List, held, diags)
		case *ast.ForStmt:
			if st.Init != nil {
				w.walk([]ast.Stmt{st.Init}, held, diags)
			}
			if st.Cond != nil {
				w.scan(st.Cond, held, diags)
			}
			w.walk(st.Body.List, copyHeld(), diags)
		case *ast.RangeStmt:
			w.scan(st.X, held, diags)
			w.walk(st.Body.List, copyHeld(), diags)
		case *ast.SwitchStmt:
			if st.Tag != nil {
				w.scan(st.Tag, held, diags)
			}
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					w.walk(cc.Body, copyHeld(), diags)
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					w.walk(cc.Body, copyHeld(), diags)
				}
			}
		case *ast.SelectStmt:
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					w.walk(cc.Body, copyHeld(), diags)
				}
			}
		case *ast.LabeledStmt:
			w.walk([]ast.Stmt{st.Stmt}, held, diags)
		case *ast.AssignStmt:
			for _, e := range st.Rhs {
				w.scan(e, held, diags)
			}
			for _, e := range st.Lhs {
				w.scan(e, held, diags)
			}
		case *ast.ReturnStmt:
			for _, e := range st.Results {
				w.scan(e, held, diags)
			}
		case *ast.DeclStmt:
			w.scanNode(st, held, diags)
		case *ast.SendStmt:
			w.scan(st.Chan, held, diags)
			w.scan(st.Value, held, diags)
		case *ast.IncDecStmt:
			w.scan(st.X, held, diags)
		}
	}
}

// scan inspects one expression for heavy calls performed while held is
// non-empty, without descending into function literals.
func (w *lockScopeWalker) scan(expr ast.Expr, held map[string]bool, diags *[]Diagnostic) {
	if expr == nil || len(held) == 0 {
		return
	}
	w.scanNode(expr, held, diags)
}

func (w *lockScopeWalker) scanNode(n ast.Node, held map[string]bool, diags *[]Diagnostic) {
	if len(held) == 0 {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name := lockScopeHeavyCall(call); name != "" {
			*diags = append(*diags, Diagnostic{
				Pos:   w.f.fset.Position(call.Pos()),
				Check: "lockscope",
				Message: fmt.Sprintf("%s called while holding %s; move the work outside the critical section",
					name, heldDesc(held)),
			})
		}
		return true
	})
}

// heldDesc renders the held-lock set for a diagnostic, deterministically.
func heldDesc(held map[string]bool) string {
	keys := make([]string, 0, len(held))
	for k := range held {
		keys = append(keys, strings.TrimSuffix(k, "|R"))
	}
	sort.Strings(keys)
	return strings.Join(keys, ", ")
}

// lockScopeHeavyCall classifies a call as heavy work that must not run under
// a lock: merge loops and SSTable builds, sorts, fault-site consults (an
// armed site may sleep its configured Delay), and clock sleeps.
func lockScopeHeavyCall(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if lockScopeHeavyIdents[fun.Name] {
			return fun.Name
		}
	case *ast.SelectorExpr:
		sel := fun.Sel.Name
		if id, ok := fun.X.(*ast.Ident); ok && id.Name == "sort" &&
			(sel == "Slice" || sel == "SliceStable" || sel == "Sort" || sel == "Stable") {
			return "sort." + sel
		}
		if lockScopeHeavyMethods[sel] {
			return sel
		}
		final := ""
		switch x := fun.X.(type) {
		case *ast.Ident:
			final = x.Name
		case *ast.SelectorExpr:
			final = x.Sel.Name
		}
		switch sel {
		case "Should", "MaybeErr":
			// faultinject.Registry consults: g.faults.Should(...),
			// e.opts.Faults.MaybeErr(...).
			if strings.HasSuffix(final, "aults") {
				return final + "." + sel
			}
		case "Sleep":
			if final == "clock" || strings.HasSuffix(final, "Clock") {
				return final + ".Sleep"
			}
		}
	}
	return ""
}
