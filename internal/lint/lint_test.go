package lint

import (
	"go/parser"
	"go/token"
	"testing"
)

func parseSrc(t *testing.T, src string) (*token.FileSet, *file) {
	t.Helper()
	fset := token.NewFileSet()
	af, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	f := &file{relPath: "src.go", pkgDir: ".", fset: fset, ast: af}
	f.timeNames = importNames(af, "time")
	f.randNames = importNames(af, "math/rand")
	f.syncNames = importNames(af, "sync")
	return fset, f
}

func TestImportNames(t *testing.T) {
	_, f := parseSrc(t, `package p

import (
	"time"

	clk "time"
	_ "math/rand"
)
`)
	if !f.timeNames["time"] || !f.timeNames["clk"] || len(f.timeNames) != 2 {
		t.Errorf("timeNames = %v, want {time, clk}", f.timeNames)
	}
	if len(f.randNames) != 0 {
		t.Errorf("randNames = %v, want empty (blank import)", f.randNames)
	}
	if len(f.syncNames) != 0 {
		t.Errorf("syncNames = %v, want empty (not imported)", f.syncNames)
	}
}

func TestMutexRecvName(t *testing.T) {
	for name, want := range map[string]bool{
		"mu":       true,
		"mtx":      true,
		"lock":     true,
		"stateMu":  true,
		"poolMtx":  true,
		"mapMutex": true,
		"lm":       false,
		"l":        false,
		"q":        false,
		"lockMgr":  false,
		"Mud":      false,
	} {
		if got := mutexRecvName(name); got != want {
			t.Errorf("mutexRecvName(%q) = %v, want %v", name, got, want)
		}
	}
}

func TestParseAllows(t *testing.T) {
	_, f := parseSrc(t, `package p

import "time"

func f() {
	_ = time.Now() //lint:allow directtime wall clock wanted here
	//lint:allow directtime reason on the line above
	_ = time.Now()
	//lint:allow nosuch broken
	//lint:allow globalrand
}
`)
	diags, dirs := parseAllows(f)
	if len(diags) != 2 {
		t.Fatalf("got %d directive diagnostics, want 2: %v", len(diags), diags)
	}
	for _, d := range diags {
		if d.Check != "lintdirective" {
			t.Errorf("diagnostic check = %q, want lintdirective", d.Check)
		}
	}
	allows := map[allowKey]bool{}
	for _, dir := range dirs {
		for _, k := range dir.keys() {
			allows[k] = true
		}
	}
	// Same-line allow (line 6) and line-above allow (directive on 7 covers 8).
	for _, line := range []int{6, 7, 8} {
		if !allows[allowKey{"src.go", line, "directtime"}] {
			t.Errorf("line %d not covered by directtime allow", line)
		}
	}
	if allows[allowKey{"src.go", 10, "globalrand"}] {
		t.Error("reason-less directive must not register an allow")
	}
}

func TestMetricNameRE(t *testing.T) {
	for name, want := range map[string]bool{
		"proxy.migrations":         true,
		"kv.raft.apply_latency":    true,
		"orchestrator.pods_warm":   true,
		"nodots":                   false,
		"Proxy.Migrations":         false,
		"proxy..double":            false,
		"proxy.":                   false,
		".leading":                 false,
		"proxy.9starts_with_digit": false,
	} {
		if got := metricNameRE.MatchString(name); got != want {
			t.Errorf("metricNameRE(%q) = %v, want %v", name, got, want)
		}
	}
}
