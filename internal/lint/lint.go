// Package lint implements crdb-lint, a from-scratch static analyzer (stdlib
// only: go/parser, go/ast, go/token) that enforces the repository's
// correctness invariants:
//
//   - directtime: no direct time.Now/Sleep/After/... calls outside
//     internal/timeutil and _test.go files; components thread a
//     timeutil.Clock so the simulator and the latency experiments stay
//     deterministic.
//   - globalrand: no global math/rand functions anywhere, and no
//     rand.New/rand.NewSource outside internal/randutil and tests; RNGs are
//     threaded explicitly (randutil.NewRand/Fork) so every run is
//     reproducible. Seeding any source from time.Now is flagged everywhere.
//   - locksafety: mutex hygiene — a Lock with no Unlock on any path,
//     `defer mu.Lock()` typos, by-value receivers/params of lock-bearing
//     structs, and channel sends performed while a lock is held.
//   - lockscope: in internal/lsm and internal/raftlite, no heavy work while
//     a mutex is held — merge loops, SSTable builds, sorts, fault-site
//     consults (which may sleep an injected Delay), and clock sleeps must
//     run outside the critical section so flushes, compactions, and commit
//     rounds never stall concurrent readers. Functions named *Locked are
//     analyzed as if a caller's lock were held.
//   - metricnames: metric registration uses literal `subsystem.name` names
//     and never registers the same name twice.
//   - spanfinish: every trace span started in a function (StartSpan,
//     StartRoot, StartRemote, StartChild) is finished there or escapes to a
//     new owner; a leaked span never reaches the trace recorder.
//
// A finding can be suppressed with a justified escape hatch on the same line
// or the line above:
//
//	//lint:allow <check> <reason>
//
// A directive with an unknown check name or a missing reason is itself a
// violation.
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Checks is the set of known check names, in reporting order.
var Checks = []string{"directtime", "globalrand", "lockscope", "locksafety", "metricnames", "spanfinish"}

// Diagnostic is one reported violation.
type Diagnostic struct {
	Pos     token.Position
	Check   string
	Message string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// file is one parsed source file plus the metadata the checks need.
type file struct {
	// relPath is the slash-separated path relative to the lint root.
	relPath string
	// pkgDir is the slash-separated directory of relPath ("." for root).
	pkgDir string
	isTest bool
	fset   *token.FileSet
	ast    *ast.File
	// timeNames / randNames / syncNames are the local import names bound to
	// the "time", "math/rand", and "sync" packages (empty when not
	// imported; a package may be imported more than once under aliases).
	timeNames map[string]bool
	randNames map[string]bool
	syncNames map[string]bool
}

// Tree is a parsed source tree ready to be checked.
type Tree struct {
	root  string
	fset  *token.FileSet
	files []*file
}

// Load parses every .go file under root, skipping testdata, vendor, and
// hidden directories. Files that fail to parse are reported as errors.
func Load(root string) (*Tree, error) {
	t := &Tree{root: root, fset: token.NewFileSet()}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		af, err := parser.ParseFile(t.fset, path, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return fmt.Errorf("lint: parse %s: %w", path, err)
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			rel = path
		}
		rel = filepath.ToSlash(rel)
		f := &file{
			relPath: rel,
			pkgDir:  pathDir(rel),
			isTest:  strings.HasSuffix(name, "_test.go"),
			fset:    t.fset,
			ast:     af,
		}
		f.timeNames = importNames(af, "time")
		f.randNames = importNames(af, "math/rand")
		f.syncNames = importNames(af, "sync")
		t.files = append(t.files, f)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

func pathDir(rel string) string {
	if i := strings.LastIndexByte(rel, '/'); i >= 0 {
		return rel[:i]
	}
	return "."
}

// importNames returns every local name the file binds importPath to.
// Dot- and blank-imports contribute nothing.
func importNames(af *ast.File, importPath string) map[string]bool {
	names := map[string]bool{}
	for _, imp := range af.Imports {
		p := strings.Trim(imp.Path.Value, `"`)
		if p != importPath {
			continue
		}
		if imp.Name != nil {
			if imp.Name.Name != "_" && imp.Name.Name != "." {
				names[imp.Name.Name] = true
			}
			continue
		}
		// Default name is the last path element.
		if i := strings.LastIndexByte(p, '/'); i >= 0 {
			names[p[i+1:]] = true
		} else {
			names[p] = true
		}
	}
	return names
}

// Run lints the tree under root with every check and returns the surviving
// diagnostics sorted by position.
func Run(root string) ([]Diagnostic, error) {
	tree, err := Load(root)
	if err != nil {
		return nil, err
	}
	return tree.Check(), nil
}

// Check runs every check over the tree, applies //lint:allow directives, and
// returns the surviving diagnostics sorted by position.
func (t *Tree) Check() []Diagnostic {
	var diags []Diagnostic
	structIdx := buildStructIndex(t.files)
	reg := newMetricNameIndex()
	for _, f := range t.files {
		diags = append(diags, checkDirectTime(f)...)
		diags = append(diags, checkGlobalRand(f)...)
		diags = append(diags, checkLockSafety(f, structIdx)...)
		diags = append(diags, checkLockScope(f)...)
		diags = append(diags, checkMetricNames(f, reg)...)
		diags = append(diags, checkSpanFinish(f)...)
	}
	diags = append(diags, reg.duplicates()...)

	// Apply and validate //lint:allow directives.
	var out []Diagnostic
	allowed := map[allowKey]bool{}
	for _, f := range t.files {
		ds, allows := parseAllows(f)
		out = append(out, ds...)
		for k := range allows {
			allowed[k] = true
		}
	}
	for _, d := range diags {
		if allowed[allowKey{d.Pos.Filename, d.Pos.Line, d.Check}] {
			continue
		}
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return out
}

type allowKey struct {
	filename string
	line     int
	check    string
}

var allowRE = regexp.MustCompile(`^//lint:allow\s+(\S+)\s*(.*)$`)

// parseAllows extracts //lint:allow directives from f. A directive suppresses
// matching diagnostics on its own line and on the following line. Malformed
// directives (unknown check, missing reason) are returned as diagnostics.
func parseAllows(f *file) ([]Diagnostic, map[allowKey]bool) {
	var diags []Diagnostic
	allows := map[allowKey]bool{}
	for _, cg := range f.ast.Comments {
		for _, c := range cg.List {
			m := allowRE.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			pos := f.fset.Position(c.Pos())
			check, reason := m[1], strings.TrimSpace(m[2])
			if !knownCheck(check) {
				diags = append(diags, Diagnostic{Pos: pos, Check: "lintdirective",
					Message: fmt.Sprintf("lint:allow names unknown check %q (known: %s)", check, strings.Join(Checks, ", "))})
				continue
			}
			if reason == "" {
				diags = append(diags, Diagnostic{Pos: pos, Check: "lintdirective",
					Message: fmt.Sprintf("lint:allow %s needs a reason", check)})
				continue
			}
			allows[allowKey{pos.Filename, pos.Line, check}] = true
			allows[allowKey{pos.Filename, pos.Line + 1, check}] = true
		}
	}
	return diags, allows
}

func knownCheck(name string) bool {
	for _, c := range Checks {
		if c == name {
			return true
		}
	}
	return false
}

// pkgCall matches a call of the form pkg.Sel(...) where pkg is one of the
// given local package names, and returns Sel. The empty string means no
// match.
func pkgCall(call *ast.CallExpr, pkgNames map[string]bool) string {
	if len(pkgNames) == 0 {
		return ""
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || !pkgNames[id.Name] {
		return ""
	}
	return sel.Sel.Name
}
