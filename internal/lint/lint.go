// Package lint implements crdb-lint, a from-scratch static analyzer (stdlib
// only: go/parser, go/ast, go/token, go/types, go/importer) that enforces the
// repository's correctness invariants.
//
// Two layers of analysis feed the checks. The syntactic layer walks each
// file's AST. The type-checked layer loads every in-module package in
// dependency order through go/types (stdlib imports resolve via go/importer),
// builds a module-wide call graph — interface calls devirtualize to their
// in-tree implementations — and computes per-function summaries (fault-site
// consults, order-observable effects, lock acquisitions) to a fixpoint, so
// the interprocedural checks reason across package boundaries.
//
// Checks:
//
//   - directtime: no direct time.Now/Sleep/After/... calls outside
//     internal/timeutil and _test.go files; components thread a
//     timeutil.Clock so the simulator and the latency experiments stay
//     deterministic.
//   - faulterr: a call whose callee transitively consults a faultinject
//     site must not structurally drop its error result (bare expression
//     statement, blank assignment, go/defer) — an injected fault that is
//     silently swallowed turns every chaos run into a false negative.
//   - globalrand: no global math/rand functions anywhere, and no
//     rand.New/rand.NewSource outside internal/randutil and tests; RNGs are
//     threaded explicitly (randutil.NewRand/Fork) so every run is
//     reproducible. Seeding any source from time.Now is flagged everywhere.
//   - lockorder: the module-wide lock-acquisition graph (which mutex
//     classes are acquired while which are held, propagated through the
//     call graph; *Locked functions are analyzed under their receiver's
//     lock) must stay acyclic, so the pipelined flush/compaction/commit
//     paths cannot deadlock by construction.
//   - lockscope: in internal/lsm and internal/raftlite, no heavy work while
//     a mutex is held — merge loops, SSTable builds, sorts, fault-site
//     consults (which may sleep an injected Delay), and clock sleeps must
//     run outside the critical section so flushes, compactions, and commit
//     rounds never stall concurrent readers. Functions named *Locked are
//     analyzed as if a caller's lock were held.
//   - locksafety: mutex hygiene — a Lock with no Unlock on any path,
//     `defer mu.Lock()` typos, by-value receivers/params of lock-bearing
//     structs, and channel sends performed while a lock is held.
//   - maporder: iteration order of a map must not escape into observable
//     behavior (slice append without a later sort, channel send, trace or
//     metric or wire call, fault-site consult, formatted message); Go
//     randomizes map order per run, so an escaped order breaks same-seed
//     replay.
//   - metricnames: metric registration uses literal `subsystem.name` names
//     and never registers the same name twice.
//   - spanfinish: every trace span started in a function (StartSpan,
//     StartRoot, StartRemote, StartChild) is finished there or escapes to a
//     new owner; a leaked span never reaches the trace recorder.
//
// A finding can be suppressed with a justified escape hatch on the same line
// or the line above:
//
//	//lint:allow <check> <reason>
//
// A directive with an unknown check name or a missing reason is itself a
// violation, and so is a directive that suppresses nothing — the escape-hatch
// inventory cannot rot as checks tighten.
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Checks is the set of known check names, in reporting order.
var Checks = []string{
	"directtime", "faulterr", "globalrand", "lockorder", "lockscope",
	"locksafety", "maporder", "metricnames", "spanfinish",
}

// typedChecks are the checks that need the type-checked loader and the
// module call graph.
var typedChecks = map[string]bool{"faulterr": true, "lockorder": true, "maporder": true}

// Diagnostic is one reported violation.
type Diagnostic struct {
	Pos     token.Position
	Check   string
	Message string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// Options configures a lint run.
type Options struct {
	// Checks restricts the run to the named checks; empty means all.
	// Directive validation (malformed or unused //lint:allow) always runs,
	// but an unused-allow finding is only reported when the check the
	// directive names is enabled.
	Checks []string
}

// enabledSet expands Options.Checks, validating the names.
func (o Options) enabledSet() (map[string]bool, error) {
	enabled := map[string]bool{}
	if len(o.Checks) == 0 {
		for _, c := range Checks {
			enabled[c] = true
		}
		return enabled, nil
	}
	for _, c := range o.Checks {
		if !knownCheck(c) {
			return nil, fmt.Errorf("lint: unknown check %q (known: %s)", c, strings.Join(Checks, ", "))
		}
		enabled[c] = true
	}
	return enabled, nil
}

// file is one parsed source file plus the metadata the checks need.
type file struct {
	// relPath is the slash-separated path relative to the lint root.
	relPath string
	// pkgDir is the slash-separated directory of relPath ("." for root).
	pkgDir string
	isTest bool
	fset   *token.FileSet
	ast    *ast.File
	// timeNames / randNames / syncNames are the local import names bound to
	// the "time", "math/rand", and "sync" packages (empty when not
	// imported; a package may be imported more than once under aliases).
	timeNames map[string]bool
	randNames map[string]bool
	syncNames map[string]bool
}

// Tree is a parsed source tree ready to be checked.
type Tree struct {
	root  string
	fset  *token.FileSet
	files []*file

	// pkgs and info are populated lazily by typecheck() for the type-aware
	// checks: the in-tree packages in dependency order and the shared
	// type-checker output across all of them.
	pkgs []*Package
	info *types.Info
}

// Load parses every .go file under root, skipping testdata, vendor, and
// hidden directories. Files that fail to parse are reported as errors.
func Load(root string) (*Tree, error) {
	t := &Tree{root: root, fset: token.NewFileSet()}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		af, err := parser.ParseFile(t.fset, path, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return fmt.Errorf("lint: parse %s: %w", path, err)
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			rel = path
		}
		rel = filepath.ToSlash(rel)
		f := &file{
			relPath: rel,
			pkgDir:  pathDir(rel),
			isTest:  strings.HasSuffix(name, "_test.go"),
			fset:    t.fset,
			ast:     af,
		}
		f.timeNames = importNames(af, "time")
		f.randNames = importNames(af, "math/rand")
		f.syncNames = importNames(af, "sync")
		t.files = append(t.files, f)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

func pathDir(rel string) string {
	if i := strings.LastIndexByte(rel, '/'); i >= 0 {
		return rel[:i]
	}
	return "."
}

// importNames returns every local name the file binds importPath to.
// Dot- and blank-imports contribute nothing.
func importNames(af *ast.File, importPath string) map[string]bool {
	names := map[string]bool{}
	for _, imp := range af.Imports {
		p := strings.Trim(imp.Path.Value, `"`)
		if p != importPath {
			continue
		}
		if imp.Name != nil {
			if imp.Name.Name != "_" && imp.Name.Name != "." {
				names[imp.Name.Name] = true
			}
			continue
		}
		// Default name is the last path element.
		if i := strings.LastIndexByte(p, '/'); i >= 0 {
			names[p[i+1:]] = true
		} else {
			names[p] = true
		}
	}
	return names
}

// Run lints the tree under root with every check and returns the surviving
// diagnostics sorted by position.
func Run(root string) ([]Diagnostic, error) {
	return RunOpts(root, Options{})
}

// RunOpts lints the tree under root with the configured checks.
func RunOpts(root string, opts Options) ([]Diagnostic, error) {
	tree, err := Load(root)
	if err != nil {
		return nil, err
	}
	return tree.Check(opts)
}

// Check runs the enabled checks over the tree, applies //lint:allow
// directives, and returns the surviving diagnostics de-duplicated and sorted
// by position.
func (t *Tree) Check(opts Options) ([]Diagnostic, error) {
	enabled, err := opts.enabledSet()
	if err != nil {
		return nil, err
	}

	var diags []Diagnostic
	structIdx := buildStructIndex(t.files)
	reg := newMetricNameIndex()
	for _, f := range t.files {
		if enabled["directtime"] {
			diags = append(diags, checkDirectTime(f)...)
		}
		if enabled["globalrand"] {
			diags = append(diags, checkGlobalRand(f)...)
		}
		if enabled["locksafety"] {
			diags = append(diags, checkLockSafety(f, structIdx)...)
		}
		if enabled["lockscope"] {
			diags = append(diags, checkLockScope(f)...)
		}
		if enabled["metricnames"] {
			diags = append(diags, checkMetricNames(f, reg)...)
		}
		if enabled["spanfinish"] {
			diags = append(diags, checkSpanFinish(f)...)
		}
	}
	if enabled["metricnames"] {
		diags = append(diags, reg.duplicates()...)
	}

	if enabled["maporder"] || enabled["lockorder"] || enabled["faulterr"] {
		if err := t.typecheck(); err != nil {
			return nil, err
		}
		cg := buildCallGraph(t)
		for _, fn := range cg.sortedFuncs() {
			if enabled["maporder"] {
				diags = append(diags, checkMapOrder(cg, fn)...)
			}
			if enabled["faulterr"] {
				diags = append(diags, checkFaultErr(cg, fn)...)
			}
		}
		if enabled["lockorder"] {
			diags = append(diags, checkLockOrder(cg)...)
		}
	}

	// De-duplicate: overlapping checks (or one check reached through two
	// call paths) may produce byte-identical findings.
	seen := map[Diagnostic]bool{}
	deduped := diags[:0]
	for _, d := range diags {
		if !seen[d] {
			seen[d] = true
			deduped = append(deduped, d)
		}
	}
	diags = deduped

	// Apply and validate //lint:allow directives, tracking which ones
	// actually suppress something.
	var out []Diagnostic
	allowed := map[allowKey]*allowDirective{}
	var directives []*allowDirective
	for _, f := range t.files {
		ds, dirs := parseAllows(f)
		out = append(out, ds...)
		for _, dir := range dirs {
			directives = append(directives, dir)
			for _, k := range dir.keys() {
				allowed[k] = dir
			}
		}
	}
	for _, d := range diags {
		if dir := allowed[allowKey{d.Pos.Filename, d.Pos.Line, d.Check}]; dir != nil {
			dir.used = true
			continue
		}
		out = append(out, d)
	}
	for _, dir := range directives {
		if !dir.used && enabled[dir.check] {
			out = append(out, Diagnostic{Pos: dir.pos, Check: "lintdirective",
				Message: fmt.Sprintf("lint:allow %s suppresses no diagnostic; delete the stale directive", dir.check)})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
	return out, nil
}

type allowKey struct {
	filename string
	line     int
	check    string
}

// allowDirective is one well-formed //lint:allow, with its suppression
// footprint (its own line and the next) and whether it ever fired.
type allowDirective struct {
	pos   token.Position
	check string
	used  bool
}

func (a *allowDirective) keys() []allowKey {
	return []allowKey{
		{a.pos.Filename, a.pos.Line, a.check},
		{a.pos.Filename, a.pos.Line + 1, a.check},
	}
}

var allowRE = regexp.MustCompile(`^//lint:allow\s+(\S+)\s*(.*)$`)

// parseAllows extracts //lint:allow directives from f. A directive suppresses
// matching diagnostics on its own line and on the following line. Malformed
// directives (unknown check, missing reason) are returned as diagnostics.
func parseAllows(f *file) ([]Diagnostic, []*allowDirective) {
	var diags []Diagnostic
	var dirs []*allowDirective
	for _, cg := range f.ast.Comments {
		for _, c := range cg.List {
			m := allowRE.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			pos := f.fset.Position(c.Pos())
			check, reason := m[1], strings.TrimSpace(m[2])
			if !knownCheck(check) {
				diags = append(diags, Diagnostic{Pos: pos, Check: "lintdirective",
					Message: fmt.Sprintf("lint:allow names unknown check %q (known: %s)", check, strings.Join(Checks, ", "))})
				continue
			}
			if reason == "" {
				diags = append(diags, Diagnostic{Pos: pos, Check: "lintdirective",
					Message: fmt.Sprintf("lint:allow %s needs a reason", check)})
				continue
			}
			dirs = append(dirs, &allowDirective{pos: pos, check: check})
		}
	}
	return diags, dirs
}

func knownCheck(name string) bool {
	for _, c := range Checks {
		if c == name {
			return true
		}
	}
	return false
}

// pkgCall matches a call of the form pkg.Sel(...) where pkg is one of the
// given local package names, and returns Sel. The empty string means no
// match.
func pkgCall(call *ast.CallExpr, pkgNames map[string]bool) string {
	if len(pkgNames) == 0 {
		return ""
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || !pkgNames[id.Name] {
		return ""
	}
	return sel.Sel.Name
}
