package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// lockClass identifies a lock statically: every instance of a mutex stored
// in the same field of the same named type is one class (lock-order
// discipline is per class — "Engine.mu before Group.mu" — not per object).
// Package-level and function-local mutexes form their own classes.
type lockClass string

// lockEdge is one witnessed "acquire B while holding A" event.
type lockEdge struct {
	from, to lockClass
	pos      token.Pos
	fn       string // function the acquisition happens in
}

// checkLockOrder builds the module-wide lock-acquisition graph — which lock
// classes are acquired while which others are held, with calls propagated
// through the call graph and *Locked functions analyzed under their
// receiver's lock — and reports every cycle: a cycle means two goroutines
// can acquire the same locks in opposite orders and deadlock. Self-edges
// (re-acquiring a class, e.g. locking two ranges in key order) are out of
// scope; cycles of length two or more are rejected.
func checkLockOrder(cg *callGraph) []Diagnostic {
	lo := &lockOrder{cg: cg, pending: nil}
	for _, fn := range cg.sortedFuncs() {
		if fn.file.isTest {
			continue
		}
		held := map[lockClass]token.Pos{}
		for _, c := range entryHeld(cg, fn) {
			held[c] = fn.decl.Pos()
		}
		lo.walkFunc(fn, fn.decl.Body.List, held)
	}

	// Transitive acquires to a fixpoint, then project the call-site edges.
	for changed := true; changed; {
		changed = false
		for _, fn := range cg.funcs {
			for _, callee := range fn.callees {
				for c := range callee.acquires {
					if !fn.acquires[c] {
						fn.acquires[c] = true
						changed = true
					}
				}
			}
		}
	}
	for _, p := range lo.pending {
		for _, callee := range p.callees {
			for c := range callee.acquires {
				for _, h := range p.held {
					lo.addEdge(lockEdge{from: h, to: c, pos: p.pos, fn: p.fn})
				}
			}
		}
	}
	return lo.cycles()
}

// entryHeld returns the lock classes assumed held on entry, per the
// repository's *Locked naming convention. The convention does not say
// *which* lock the caller holds (splitLocked's promise is about the range
// latch, not the receiver's mutexes), so the assumption is evidence-based:
// a receiver mutex-struct field counts as held at entry only when the body
// reads state through it (`c.mu.nextRangeID`) without ever acquiring it
// itself — the signature of code that relies on a caller's critical section.
func entryHeld(cg *callGraph, fn *funcNode) []lockClass {
	if !strings.HasSuffix(fn.obj.Name(), "Locked") {
		return nil
	}
	sig, ok := fn.obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	named := namedOf(sig.Recv().Type())
	if named == nil {
		return nil
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	var out []lockClass
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !holdsMutex(f.Type()) {
			continue
		}
		reads, acquires := fieldLockUsage(cg, fn, named, f.Name())
		if reads && !acquires {
			out = append(out, classForNamedField(named, f.Name()))
		}
	}
	return out
}

// fieldLockUsage reports how fn's body uses the receiver's mutex-struct
// field: reads is true when guarded state is accessed through it
// (recv.field.x for non-lock-method x), acquires when the body locks it.
func fieldLockUsage(cg *callGraph, fn *funcNode, recv *types.Named, field string) (reads, acquires bool) {
	ast.Inspect(fn.decl.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
		if !ok || inner.Sel.Name != field {
			return true
		}
		if namedOf(typeOf(cg.info, inner.X)) != recv {
			return true
		}
		if _, isLockMethod := lockMethods[sel.Sel.Name]; isLockMethod {
			acquires = true
		} else {
			reads = true
		}
		return true
	})
	return reads, acquires
}

// holdsMutex reports whether t is a sync.Mutex/RWMutex or a struct that
// embeds one at its top level (the `mu struct { sync.Mutex; ... }` idiom).
func holdsMutex(t types.Type) bool {
	if isSyncMutex(t) {
		return true
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if f := st.Field(i); f.Embedded() && isSyncMutex(f.Type()) {
			return true
		}
	}
	return false
}

func isSyncMutex(t types.Type) bool {
	named := namedOf(t)
	if named == nil || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return false
	}
	name := named.Obj().Name()
	return name == "Mutex" || name == "RWMutex"
}

func namedOf(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

func classForNamedField(named *types.Named, field string) lockClass {
	pkg := ""
	if named.Obj().Pkg() != nil {
		pkg = named.Obj().Pkg().Path()
	}
	return lockClass(shortPkg(pkg) + "." + named.Obj().Name() + "." + field)
}

// shortPkg trims a module prefix down to the package's tree-local identity,
// keeping diagnostics stable across checkouts.
func shortPkg(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// pendingCall records "callees invoked at pos while held" for projection
// after the transitive-acquire fixpoint.
type pendingCall struct {
	callees []*funcNode
	held    []lockClass
	pos     token.Pos
	fn      string
}

type lockOrder struct {
	cg      *callGraph
	pending []pendingCall
	edges   map[[2]lockClass]lockEdge // first witness per (from, to)
}

// typedLockCall classifies a statement-level mutex call using type
// information: a zero-argument Lock/RLock/Unlock/RUnlock method whose
// receiver is a sync.Mutex or sync.RWMutex (directly or promoted through an
// embedded field). Returns the receiver's lock class.
func (lo *lockOrder) typedLockCall(fn *funcNode, call *ast.CallExpr) (class lockClass, acquire, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel || len(call.Args) != 0 {
		return "", false, false
	}
	acquire, known := lockMethods[sel.Sel.Name]
	if !known {
		return "", false, false
	}
	obj, isFn := lo.cg.info.Uses[sel.Sel].(*types.Func)
	if !isFn || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return "", false, false
	}
	return lo.classFor(fn, sel.X), acquire, true
}

// classFor names the lock class of a mutex-valued expression. A selector
// x.f is classed by the nearest named struct type in its receiver chain; a
// plain identifier is classed by its defining scope (package var or
// function-local).
func (lo *lockOrder) classFor(fn *funcNode, expr ast.Expr) lockClass {
	info := lo.cg.info
	switch e := ast.Unparen(expr).(type) {
	case *ast.SelectorExpr:
		if named := namedOf(typeOf(info, e.X)); named != nil {
			return classForNamedField(named, e.Sel.Name)
		}
		// Receiver is an anonymous struct (or similar): fold the field name
		// onto the receiver chain's class.
		return lo.classFor(fn, e.X) + lockClass("."+e.Sel.Name)
	case *ast.Ident:
		if obj := info.ObjectOf(e); obj != nil {
			if pkg := obj.Pkg(); pkg != nil {
				if pkg.Scope().Lookup(e.Name) == obj {
					return lockClass(shortPkg(pkg.Path()) + "." + e.Name)
				}
				return lockClass(shortPkg(pkg.Path()) + "." + fn.obj.Name() + "." + e.Name)
			}
		}
		return lockClass(e.Name)
	}
	return lockClass(types.ExprString(expr))
}

func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// walkFunc processes stmts in order, tracking the held set; branches recurse
// on copies (a release inside a branch does not propagate out, matching the
// conservative discipline of the other lock walkers). Function literals are
// walked as independent functions with an empty held set — a goroutine or
// callback does not inherit this goroutine's critical section — and calls
// they make are recorded under their own held tracking.
func (lo *lockOrder) walkFunc(fn *funcNode, stmts []ast.Stmt, held map[lockClass]token.Pos) {
	copyHeld := func() map[lockClass]token.Pos {
		c := make(map[lockClass]token.Pos, len(held))
		for k, v := range held {
			c[k] = v
		}
		return c
	}
	for _, s := range stmts {
		lo.visitFuncLits(fn, s)
		switch st := s.(type) {
		case *ast.ExprStmt:
			if call, ok := st.X.(*ast.CallExpr); ok {
				if class, acquire, ok := lo.typedLockCall(fn, call); ok {
					if acquire {
						lo.recordAcquire(fn, class, held, call.Pos())
						held[class] = call.Pos()
					} else {
						delete(held, class)
					}
					continue
				}
			}
			lo.scanCalls(fn, st.X, held)
		case *ast.DeferStmt:
			if _, acquire, ok := lo.typedLockCall(fn, st.Call); ok {
				if !acquire {
					// defer Unlock: held until return; leave the set as is.
					continue
				}
			}
			lo.scanCalls(fn, st.Call, held)
		case *ast.GoStmt:
			// The spawned goroutine's acquisitions do not nest inside this
			// goroutine's critical section; only argument evaluation runs
			// under the lock.
			for _, arg := range st.Call.Args {
				lo.scanCalls(fn, arg, held)
			}
		case *ast.IfStmt:
			if st.Init != nil {
				lo.walkFunc(fn, []ast.Stmt{st.Init}, held)
			}
			lo.scanCalls(fn, st.Cond, held)
			lo.walkFunc(fn, st.Body.List, copyHeld())
			if st.Else != nil {
				lo.walkFunc(fn, []ast.Stmt{st.Else}, copyHeld())
			}
		case *ast.BlockStmt:
			lo.walkFunc(fn, st.List, held)
		case *ast.ForStmt:
			if st.Init != nil {
				lo.walkFunc(fn, []ast.Stmt{st.Init}, held)
			}
			if st.Cond != nil {
				lo.scanCalls(fn, st.Cond, held)
			}
			lo.walkFunc(fn, st.Body.List, copyHeld())
		case *ast.RangeStmt:
			lo.scanCalls(fn, st.X, held)
			lo.walkFunc(fn, st.Body.List, copyHeld())
		case *ast.SwitchStmt:
			if st.Tag != nil {
				lo.scanCalls(fn, st.Tag, held)
			}
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					lo.walkFunc(fn, cc.Body, copyHeld())
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					lo.walkFunc(fn, cc.Body, copyHeld())
				}
			}
		case *ast.SelectStmt:
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					lo.walkFunc(fn, cc.Body, copyHeld())
				}
			}
		case *ast.LabeledStmt:
			lo.walkFunc(fn, []ast.Stmt{st.Stmt}, held)
		case *ast.AssignStmt:
			for _, e := range st.Rhs {
				lo.scanCalls(fn, e, held)
			}
		case *ast.ReturnStmt:
			for _, e := range st.Results {
				lo.scanCalls(fn, e, held)
			}
		case *ast.DeclStmt:
			lo.scanCalls(fn, st, held)
		case *ast.SendStmt:
			lo.scanCalls(fn, st.Chan, held)
			lo.scanCalls(fn, st.Value, held)
		}
	}
}

// visitFuncLits walks function literals nested directly in s as independent
// functions (empty entry held set). Container statements recurse via
// walkFunc, so only leaf statements are inspected here.
func (lo *lockOrder) visitFuncLits(fn *funcNode, s ast.Stmt) {
	switch s.(type) {
	case *ast.BlockStmt, *ast.IfStmt, *ast.ForStmt, *ast.RangeStmt,
		*ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt, *ast.LabeledStmt:
		return
	}
	ast.Inspect(s, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			lo.walkFunc(fn, fl.Body.List, map[lockClass]token.Pos{})
			return false
		}
		return true
	})
}

// recordAcquire registers direct edges from every held class to the newly
// acquired one.
func (lo *lockOrder) recordAcquire(fn *funcNode, class lockClass, held map[lockClass]token.Pos, pos token.Pos) {
	for h := range held {
		lo.addEdge(lockEdge{from: h, to: class, pos: pos, fn: fn.obj.Name()})
	}
	fn.acquires[class] = true
}

// scanCalls records calls found in an expression (excluding nested function
// literals, handled by visitFuncLits) for edge projection: while held, a
// callee's transitive acquisitions nest inside the critical section. Direct
// acquisitions by the callee set fn's acquires bit through the call graph
// fixpoint instead.
func (lo *lockOrder) scanCalls(fn *funcNode, n ast.Node, held map[lockClass]token.Pos) {
	if n == nil || len(held) == 0 {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callees := lo.cg.calleesOf(call)
		if len(callees) == 0 {
			return true
		}
		heldList := make([]lockClass, 0, len(held))
		for h := range held {
			heldList = append(heldList, h)
		}
		sort.Slice(heldList, func(i, j int) bool { return heldList[i] < heldList[j] })
		lo.pending = append(lo.pending, pendingCall{
			callees: callees, held: heldList, pos: call.Pos(), fn: fn.obj.Name(),
		})
		return true
	})
}

// addEdge records the first witness of a lock-order edge; self-edges are
// skipped by design.
func (lo *lockOrder) addEdge(e lockEdge) {
	if e.from == e.to {
		return
	}
	// Read and write locks of one class share an order identity.
	key := [2]lockClass{lockClass(strings.TrimSuffix(string(e.from), "|R")), lockClass(strings.TrimSuffix(string(e.to), "|R"))}
	if lo.edges == nil {
		lo.edges = map[[2]lockClass]lockEdge{}
	}
	if old, ok := lo.edges[key]; !ok || e.pos < old.pos {
		lo.edges[key] = e
	}
}

// cycles finds strongly connected components with two or more lock classes
// in the acquisition graph and reports one diagnostic per cycle, anchored at
// the witness of its lexicographically-smallest edge, with the full cycle
// path (and each edge's witness function) in the message.
func (lo *lockOrder) cycles() []Diagnostic {
	edgeKeys := make([][2]lockClass, 0, len(lo.edges))
	for key := range lo.edges {
		edgeKeys = append(edgeKeys, key)
	}
	sort.Slice(edgeKeys, func(i, j int) bool {
		if edgeKeys[i][0] != edgeKeys[j][0] {
			return edgeKeys[i][0] < edgeKeys[j][0]
		}
		return edgeKeys[i][1] < edgeKeys[j][1]
	})
	adj := map[lockClass][]lockClass{}
	nodes := map[lockClass]bool{}
	for _, key := range edgeKeys {
		// Key order makes each successor list sorted as built.
		adj[key[0]] = append(adj[key[0]], key[1])
		nodes[key[0]], nodes[key[1]] = true, true
	}
	ordered := make([]lockClass, 0, len(nodes))
	for n := range nodes {
		ordered = append(ordered, n)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i] < ordered[j] })

	sccs := tarjanSCC(ordered, adj)
	var diags []Diagnostic
	for _, scc := range sccs {
		if len(scc) < 2 {
			continue
		}
		inSCC := map[lockClass]bool{}
		for _, n := range scc {
			inSCC[n] = true
		}
		sort.Slice(scc, func(i, j int) bool { return scc[i] < scc[j] })
		// Walk a representative cycle starting from the smallest class,
		// always stepping to the smallest in-SCC successor not yet visited
		// (falling back to the start to close the loop).
		path := []lockClass{scc[0]}
		visited := map[lockClass]bool{scc[0]: true}
		for {
			cur := path[len(path)-1]
			var next lockClass
			found := false
			for _, s := range adj[cur] {
				if inSCC[s] && !visited[s] {
					next, found = s, true
					break
				}
			}
			if !found {
				break
			}
			visited[next] = true
			path = append(path, next)
		}
		var parts []string
		var anchor lockEdge
		anchorSet := false
		for i := range path {
			from, to := path[i], path[(i+1)%len(path)]
			e, ok := lo.edges[[2]lockClass{from, to}]
			if !ok {
				// The greedy walk can pick a non-edge closing step when the
				// SCC is not one simple cycle; fall back to any in-SCC edge.
				continue
			}
			pos := lo.cg.tree.fset.Position(e.pos)
			parts = append(parts, fmt.Sprintf("%s -> %s (%s at %s:%d)", from, to, e.fn, shortPath(pos.Filename), pos.Line))
			if !anchorSet || string(e.from) < string(anchor.from) {
				anchor, anchorSet = e, true
			}
		}
		if !anchorSet {
			continue
		}
		diags = append(diags, Diagnostic{
			Pos:   lo.cg.tree.fset.Position(anchor.pos),
			Check: "lockorder",
			Message: fmt.Sprintf("lock-order cycle: %s; acquire these locks in one global order",
				strings.Join(parts, ", ")),
		})
	}
	return diags
}

// tarjanSCC computes strongly connected components over the lock graph.
func tarjanSCC(nodes []lockClass, adj map[lockClass][]lockClass) [][]lockClass {
	index := map[lockClass]int{}
	low := map[lockClass]int{}
	onStack := map[lockClass]bool{}
	var stack []lockClass
	var sccs [][]lockClass
	next := 0
	var strong func(v lockClass)
	strong = func(v lockClass) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, seen := index[w]; !seen {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []lockClass
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for _, v := range nodes {
		if _, seen := index[v]; !seen {
			strong(v)
		}
	}
	return sccs
}
