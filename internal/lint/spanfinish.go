package lint

import (
	"fmt"
	"go/ast"
	"go/token"
)

// spanStartFuncs are the span-creating entry points of internal/trace. The
// check is name-based (this is a single-module tree linter): any selector
// call with one of these names is treated as starting a span.
var spanStartFuncs = map[string]bool{
	"StartSpan":        true,
	"StartRoot":        true,
	"StartRemote":      true,
	"StartChild":       true,
	"StartForkedChild": true,
}

// checkSpanFinish flags spans that are started and then leaked: the result
// of a Start* call that is dropped, assigned to the blank identifier, or
// bound to a variable with no v.Finish() call anywhere in the enclosing
// function. A span that escapes the function — returned, passed as a call
// argument, stored in a composite literal or another variable, sent on a
// channel, or address-taken — is assumed to be finished by its new owner.
// An unfinished span never reaches the recorder, so the leak silently
// drops trace data; //lint:allow spanfinish documents intentional cases.
func checkSpanFinish(f *file) []Diagnostic {
	// internal/trace owns span lifetimes: its constructors hand spans to
	// callers, and its tests exercise unfinished spans on purpose.
	if f.pkgDir == "internal/trace" {
		return nil
	}
	var diags []Diagnostic
	ast.Inspect(f.ast, func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch fn := n.(type) {
		case *ast.FuncDecl:
			body = fn.Body
		case *ast.FuncLit:
			body = fn.Body
		default:
			return true
		}
		if body != nil {
			diags = append(diags, spanFinishInFunc(f, body)...)
		}
		return true
	})
	return diags
}

// spanFinishInFunc checks the Start* sites that lexically belong to this
// function body (nested function literals are analyzed as their own
// functions), while Finish/escape uses are accepted anywhere in the body,
// including inside nested literals such as `defer func() { sp.Finish() }()`.
func spanFinishInFunc(f *file, body *ast.BlockStmt) []Diagnostic {
	var diags []Diagnostic
	flag := func(pos token.Pos, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Pos:     f.fset.Position(pos),
			Check:   "spanfinish",
			Message: fmt.Sprintf(format, args...),
		})
	}
	check := func(name string, ident *ast.Ident, fun string) {
		if ident.Name == "_" {
			flag(ident.Pos(), "span from %s is assigned to _ and can never be finished", fun)
			return
		}
		if !spanFinishedOrEscapes(body, ident.Name) {
			flag(ident.Pos(), "span %q from %s is never finished in this function (and does not escape); call %s.Finish() or annotate //lint:allow spanfinish", ident.Name, fun, ident.Name)
		}
	}
	walkOwnStmts(body, func(n ast.Node) {
		switch st := n.(type) {
		case *ast.ExprStmt:
			if fun, ok := spanStartCall(st.X); ok {
				flag(st.Pos(), "result of %s is dropped; the span can never be finished", fun)
			}
		case *ast.AssignStmt:
			if len(st.Rhs) != 1 {
				return
			}
			fun, ok := spanStartCall(st.Rhs[0])
			if !ok {
				return
			}
			// Two results means the (ctx, span) form; the span is the
			// second value. One result is the span itself.
			idx := 0
			if len(st.Lhs) == 2 {
				idx = 1
			}
			if ident, ok := st.Lhs[idx].(*ast.Ident); ok {
				check(fun, ident, fun)
			}
		case *ast.ValueSpec:
			if len(st.Values) != 1 {
				return
			}
			fun, ok := spanStartCall(st.Values[0])
			if !ok {
				return
			}
			idx := 0
			if len(st.Names) == 2 {
				idx = 1
			}
			if idx < len(st.Names) {
				check(fun, st.Names[idx], fun)
			}
		}
	})
	return diags
}

// walkOwnStmts visits the nodes of body without descending into nested
// function literals.
func walkOwnStmts(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

// spanStartCall reports whether e is a call of one of the span-starting
// selector methods, returning the rendered callee name.
func spanStartCall(e ast.Expr) (string, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !spanStartFuncs[sel.Sel.Name] {
		return "", false
	}
	return sel.Sel.Name, true
}

// spanFinishedOrEscapes reports whether the named span variable has a
// name.Finish() call anywhere in body, or escapes the function: returned,
// passed as a call argument, re-assigned, stored in a composite literal,
// sent on a channel, or address-taken. Matching is by identifier name (a
// shadowing redeclaration would fool it; the escape hatch covers such
// contortions).
func spanFinishedOrEscapes(body *ast.BlockStmt, name string) bool {
	isName := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && id.Name == name
	}
	done := false
	ast.Inspect(body, func(n ast.Node) bool {
		if done {
			return false
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Finish" && isName(sel.X) {
				done = true
				return false
			}
			for _, a := range x.Args {
				if isName(a) {
					done = true
					return false
				}
			}
		case *ast.ReturnStmt:
			for _, r := range x.Results {
				if isName(r) {
					done = true
					return false
				}
			}
		case *ast.AssignStmt:
			for _, r := range x.Rhs {
				if isName(r) {
					done = true
					return false
				}
			}
		case *ast.CompositeLit:
			for _, e := range x.Elts {
				v := e
				if kv, ok := e.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if isName(v) {
					done = true
					return false
				}
			}
		case *ast.SendStmt:
			if isName(x.Value) {
				done = true
				return false
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND && isName(x.X) {
				done = true
				return false
			}
		}
		return true
	})
	return done
}
