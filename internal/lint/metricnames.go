package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// metricNameRE is the registration convention: lowercase dot-separated
// `subsystem.name` (at least two components, snake_case within each).
var metricNameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$`)

// metricRegisterFuncs are the metric-registration entry points
// (metric.Registry methods). For the New* helpers a non-string first
// argument means the call is actually the package-level constructor
// (metric.NewHistogram(), metric.NewTimeSeries(retention)) and is skipped.
var metricRegisterFuncs = map[string]bool{
	"MustRegister":  true,
	"NewCounter":    true,
	"NewGauge":      true,
	"NewHistogram":  true,
	"NewTimeSeries": true,
}

// metricVecFuncs are the labeled-vector constructors. Their trailing
// arguments are label keys, which carry their own conventions: literal
// lowercase snake_case strings drawn from the allowed vocabulary, and at
// least one of them (an unlabeled vector should be a plain metric).
var metricVecFuncs = map[string]bool{
	"NewCounterVec":   true,
	"NewGaugeVec":     true,
	"NewHistogramVec": true,
}

// metricLabelKeyRE is the shape of a label key: lowercase snake_case.
var metricLabelKeyRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// metricAllowedLabelKeys is the label vocabulary shared across dashboards;
// a new dimension is a deliberate act, added here first.
var metricAllowedLabelKeys = map[string]bool{
	"tenant": true,
	"region": true,
	"node":   true,
	"result": true,
}

// metricNameIndex tracks every literal registration site in the tree so the
// second registration of a name can be reported as a duplicate.
type metricNameIndex struct {
	sites map[string][]token.Position
}

func newMetricNameIndex() *metricNameIndex {
	return &metricNameIndex{sites: map[string][]token.Position{}}
}

// checkMetricNames validates metric registration call sites in one file and
// records them for tree-wide duplicate detection. Test files may register
// freely (each test builds its own registry) but still get name-format
// validation.
func checkMetricNames(f *file, idx *metricNameIndex) []Diagnostic {
	// internal/metric implements the registration plumbing: its helpers
	// forward non-literal names to MustRegister by design.
	if f.pkgDir == "internal/metric" {
		return nil
	}
	var diags []Diagnostic
	ast.Inspect(f.ast, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (!metricRegisterFuncs[sel.Sel.Name] && !metricVecFuncs[sel.Sel.Name]) {
			return true
		}
		if metricVecFuncs[sel.Sel.Name] {
			diags = append(diags, checkVecLabelKeys(f, sel.Sel.Name, call)...)
		}
		lit, ok := call.Args[0].(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			// MustRegister and the *Vec constructors are unambiguous; their
			// names must be literals so the duplicate check can see them.
			// The other New* helpers double as package-level constructors,
			// so a non-string first argument simply means "not a
			// registration".
			if sel.Sel.Name == "MustRegister" || metricVecFuncs[sel.Sel.Name] {
				diags = append(diags, Diagnostic{
					Pos:     f.fset.Position(call.Args[0].Pos()),
					Check:   "metricnames",
					Message: "metric name must be a string literal so duplicate registration is statically checkable",
				})
			}
			return true
		}
		name, err := strconv.Unquote(lit.Value)
		if err != nil {
			return true
		}
		pos := f.fset.Position(lit.Pos())
		if !metricNameRE.MatchString(name) {
			diags = append(diags, Diagnostic{
				Pos:     pos,
				Check:   "metricnames",
				Message: fmt.Sprintf("metric name %q does not follow the subsystem.name convention (lowercase, dot-separated, snake_case)", name),
			})
			return true
		}
		if !f.isTest {
			idx.sites[name] = append(idx.sites[name], pos)
		}
		return true
	})
	return diags
}

// checkVecLabelKeys validates the label-key arguments of a labeled-vector
// constructor: at least one key, each a literal lowercase snake_case string
// from the allowed vocabulary.
func checkVecLabelKeys(f *file, fn string, call *ast.CallExpr) []Diagnostic {
	var diags []Diagnostic
	if len(call.Args) < 2 {
		diags = append(diags, Diagnostic{
			Pos:     f.fset.Position(call.Pos()),
			Check:   "metricnames",
			Message: fmt.Sprintf("%s without label keys: an unlabeled vector should be a plain metric", fn),
		})
		return diags
	}
	for _, arg := range call.Args[1:] {
		lit, ok := arg.(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			diags = append(diags, Diagnostic{
				Pos:     f.fset.Position(arg.Pos()),
				Check:   "metricnames",
				Message: "label key must be a string literal so the label schema is statically checkable",
			})
			continue
		}
		key, err := strconv.Unquote(lit.Value)
		if err != nil {
			continue
		}
		pos := f.fset.Position(lit.Pos())
		if !metricLabelKeyRE.MatchString(key) {
			diags = append(diags, Diagnostic{
				Pos:     pos,
				Check:   "metricnames",
				Message: fmt.Sprintf("label key %q is not lowercase snake_case", key),
			})
			continue
		}
		if !metricAllowedLabelKeys[key] {
			diags = append(diags, Diagnostic{
				Pos:     pos,
				Check:   "metricnames",
				Message: fmt.Sprintf("label key %q is not in the allowed vocabulary (tenant, region, node, result)", key),
			})
		}
	}
	return diags
}

// duplicates reports every name registered more than once (each site after
// the first is flagged, pointing back at the first).
func (idx *metricNameIndex) duplicates() []Diagnostic {
	var diags []Diagnostic
	names := make([]string, 0, len(idx.sites))
	for name := range idx.sites {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		sites := idx.sites[name]
		if len(sites) < 2 {
			continue
		}
		sort.Slice(sites, func(i, j int) bool {
			if sites[i].Filename != sites[j].Filename {
				return sites[i].Filename < sites[j].Filename
			}
			return sites[i].Line < sites[j].Line
		})
		first := sites[0]
		for _, dup := range sites[1:] {
			diags = append(diags, Diagnostic{
				Pos:   dup,
				Check: "metricnames",
				Message: fmt.Sprintf("metric %q registered twice (first at %s:%d)",
					name, shortPath(first.Filename), first.Line),
			})
		}
	}
	return diags
}

func shortPath(p string) string {
	if i := strings.LastIndexByte(p, '/'); i >= 0 {
		return p[i+1:]
	}
	return p
}
