// Package randutil provides seeded pseudo-random helpers used throughout the
// simulation: jittered latency distributions, Zipf-like skew for workload
// generators, and reproducible per-component RNG forking.
package randutil

import (
	"math"
	"math/rand"
	"time"
)

// NewRand returns a rand.Rand with the given seed. All simulation components
// receive their RNG explicitly so experiments are reproducible.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Fork derives a new independent RNG from r. The child stream is decorrelated
// from subsequent draws on r.
func Fork(r *rand.Rand) *rand.Rand {
	return rand.New(rand.NewSource(r.Int63()))
}

// Jitter returns d scaled by a uniform factor in [1-frac, 1+frac]. frac is
// clamped to [0, 1]. A zero or negative duration is returned unchanged.
func Jitter(r *rand.Rand, d time.Duration, frac float64) time.Duration {
	if d <= 0 {
		return d
	}
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	scale := 1 + frac*(2*r.Float64()-1)
	return time.Duration(float64(d) * scale)
}

// LogNormal returns a duration drawn from a log-normal distribution with the
// given median and sigma (the shape parameter of the underlying normal).
// Latency distributions in real systems are heavy-tailed; the cold-start
// prober and network model use this.
func LogNormal(r *rand.Rand, median time.Duration, sigma float64) time.Duration {
	if median <= 0 {
		return 0
	}
	mu := math.Log(float64(median))
	x := math.Exp(mu + sigma*r.NormFloat64())
	return time.Duration(x)
}

// Exponential returns a duration drawn from an exponential distribution with
// the given mean.
func Exponential(r *rand.Rand, mean time.Duration) time.Duration {
	if mean <= 0 {
		return 0
	}
	return time.Duration(r.ExpFloat64() * float64(mean))
}

// Zipf generates values in [0, n) with a Zipfian skew parameterized by theta
// in (0, 1). theta near 1 is highly skewed. This is the classic YCSB
// generator (Gray et al.'s method).
type Zipf struct {
	r     *rand.Rand
	n     uint64
	theta float64
	alpha float64
	zetan float64
	eta   float64
}

// NewZipf returns a Zipf generator over [0, n). theta must be in (0, 1);
// values outside are clamped to 0.99 (skewed) or 0.01.
func NewZipf(r *rand.Rand, n uint64, theta float64) *Zipf {
	if n == 0 {
		n = 1
	}
	if theta <= 0 {
		theta = 0.01
	}
	if theta >= 1 {
		theta = 0.99
	}
	z := &Zipf{r: r, n: n, theta: theta}
	z.zetan = zeta(n, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2.0/float64(n), 1-theta)) / (1 - zeta(2, theta)/z.zetan)
	return z
}

func zeta(n uint64, theta float64) float64 {
	var sum float64
	for i := uint64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next returns the next Zipf-distributed value in [0, n).
func (z *Zipf) Next() uint64 {
	u := z.r.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	v := uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if v >= z.n {
		v = z.n - 1
	}
	return v
}

// WeightedChoice picks an index from weights proportionally. Weights must be
// non-negative; if all are zero it returns 0.
func WeightedChoice(r *rand.Rand, weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return 0
	}
	x := r.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		if x < w {
			return i
		}
		x -= w
	}
	return len(weights) - 1
}

// RandBytes fills a new slice of length n with printable pseudo-random bytes.
func RandBytes(r *rand.Rand, n int) []byte {
	const alphabet = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
	b := make([]byte, n)
	for i := range b {
		b[i] = alphabet[r.Intn(len(alphabet))]
	}
	return b
}
