package randutil

import (
	"math"
	"testing"
	"time"
)

func TestNewRandDeterminism(t *testing.T) {
	a := NewRand(42)
	b := NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same seed must yield same stream")
		}
	}
}

func TestForkIndependence(t *testing.T) {
	r := NewRand(1)
	c1 := Fork(r)
	c2 := Fork(r)
	if c1.Int63() == c2.Int63() && c1.Int63() == c2.Int63() && c1.Int63() == c2.Int63() {
		t.Fatal("forked streams should differ")
	}
}

func TestJitterBounds(t *testing.T) {
	r := NewRand(7)
	base := 100 * time.Millisecond
	for i := 0; i < 1000; i++ {
		d := Jitter(r, base, 0.2)
		if d < 80*time.Millisecond || d > 120*time.Millisecond {
			t.Fatalf("jittered value %v outside ±20%% of %v", d, base)
		}
	}
}

func TestJitterZeroAndClamp(t *testing.T) {
	r := NewRand(7)
	if d := Jitter(r, 0, 0.5); d != 0 {
		t.Fatalf("Jitter(0) = %v, want 0", d)
	}
	if d := Jitter(r, -time.Second, 0.5); d != -time.Second {
		t.Fatalf("Jitter(-1s) = %v, want -1s", d)
	}
	// frac > 1 clamps to 1 — result stays in [0, 2x].
	for i := 0; i < 100; i++ {
		d := Jitter(r, time.Second, 5)
		if d < 0 || d > 2*time.Second {
			t.Fatalf("clamped jitter out of range: %v", d)
		}
	}
}

func TestLogNormalMedian(t *testing.T) {
	r := NewRand(3)
	median := 500 * time.Millisecond
	var below, above int
	for i := 0; i < 5000; i++ {
		if LogNormal(r, median, 0.5) < median {
			below++
		} else {
			above++
		}
	}
	// The median should split the samples roughly evenly.
	ratio := float64(below) / 5000
	if ratio < 0.45 || ratio > 0.55 {
		t.Fatalf("median split %f, want ~0.5", ratio)
	}
}

func TestLogNormalNonPositive(t *testing.T) {
	r := NewRand(3)
	if d := LogNormal(r, 0, 1); d != 0 {
		t.Fatalf("LogNormal(0) = %v", d)
	}
}

func TestExponentialMean(t *testing.T) {
	r := NewRand(11)
	mean := time.Second
	var sum time.Duration
	const n = 20000
	for i := 0; i < n; i++ {
		sum += Exponential(r, mean)
	}
	got := float64(sum) / n
	if math.Abs(got-float64(mean))/float64(mean) > 0.05 {
		t.Fatalf("exponential mean %v, want ~%v", time.Duration(got), mean)
	}
}

func TestZipfRangeAndSkew(t *testing.T) {
	r := NewRand(5)
	z := NewZipf(r, 1000, 0.99)
	counts := make(map[uint64]int)
	const n = 50000
	for i := 0; i < n; i++ {
		v := z.Next()
		if v >= 1000 {
			t.Fatalf("zipf value %d out of range", v)
		}
		counts[v]++
	}
	// Item 0 should be dramatically more popular than item 500.
	if counts[0] < 10*counts[500]+1 {
		t.Fatalf("zipf not skewed: counts[0]=%d counts[500]=%d", counts[0], counts[500])
	}
}

func TestZipfDegenerate(t *testing.T) {
	r := NewRand(5)
	z := NewZipf(r, 0, 0.5) // n clamped to 1
	for i := 0; i < 100; i++ {
		if v := z.Next(); v != 0 {
			t.Fatalf("zipf over n=1 returned %d", v)
		}
	}
	// Out-of-range theta is clamped rather than panicking.
	NewZipf(r, 10, -1).Next()
	NewZipf(r, 10, 2).Next()
}

func TestWeightedChoice(t *testing.T) {
	r := NewRand(9)
	weights := []float64{1, 0, 3}
	counts := make([]int, 3)
	for i := 0; i < 40000; i++ {
		counts[WeightedChoice(r, weights)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight index chosen %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.5 || ratio > 3.5 {
		t.Fatalf("weight ratio %f, want ~3", ratio)
	}
}

func TestWeightedChoiceAllZero(t *testing.T) {
	r := NewRand(9)
	if got := WeightedChoice(r, []float64{0, 0}); got != 0 {
		t.Fatalf("all-zero weights returned %d", got)
	}
}

func TestRandBytes(t *testing.T) {
	r := NewRand(13)
	b := RandBytes(r, 64)
	if len(b) != 64 {
		t.Fatalf("len = %d", len(b))
	}
	for _, c := range b {
		if c < '0' || c > 'z' {
			t.Fatalf("non-printable byte %q", c)
		}
	}
}
