package keys

import (
	"bytes"
	"sort"
	"testing"
	"testing/quick"
)

func TestTenantPrefixRoundTrip(t *testing.T) {
	for _, id := range []TenantID{1, 2, 10, 12345, 1 << 40} {
		p := MakeTenantPrefix(id)
		got, rest, ok := DecodeTenantPrefix(p)
		if !ok || got != id || len(rest) != 0 {
			t.Fatalf("round trip %d: got %d rest %q ok %v", id, got, rest, ok)
		}
	}
}

func TestTenantPrefixOrdering(t *testing.T) {
	// Tenant segments must be contiguous and ordered by ID so that no two
	// tenants can share a range (§3.2.1).
	var prev Key
	for id := TenantID(1); id < 100; id++ {
		p := MakeTenantPrefix(id)
		if prev != nil && !prev.Less(p) {
			t.Fatalf("tenant %d prefix does not sort after tenant %d", id, id-1)
		}
		// The previous tenant's span must end at or before this prefix.
		if prev != nil {
			end := prev.PrefixEnd()
			if p.Less(end) {
				t.Fatalf("tenant %d span overlaps tenant %d prefix", id-1, id)
			}
		}
		prev = p
	}
}

func TestTenantSpanContainsOwnKeysOnly(t *testing.T) {
	s1 := MakeTenantSpan(5)
	s2 := MakeTenantSpan(6)
	k := append(MakeTenantPrefix(5), []byte("table1row")...)
	if !s1.ContainsKey(k) {
		t.Fatal("tenant span should contain its own key")
	}
	if s2.ContainsKey(k) {
		t.Fatal("tenant 6 span must not contain tenant 5 key")
	}
	if s1.Overlaps(s2) {
		t.Fatal("tenant spans must not overlap")
	}
}

func TestDecodeTenantPrefixRejectsOther(t *testing.T) {
	if _, _, ok := DecodeTenantPrefix(MetaPrefix); ok {
		t.Fatal("meta key should not decode as tenant")
	}
	if _, _, ok := DecodeTenantPrefix(Key{tenantPrefixByte, 1, 2}); ok {
		t.Fatal("truncated tenant key should not decode")
	}
	if _, _, ok := DecodeTenantPrefix(nil); ok {
		t.Fatal("empty key should not decode")
	}
}

func TestKeyNext(t *testing.T) {
	k := Key("abc")
	n := k.Next()
	if !k.Less(n) {
		t.Fatal("Next not greater")
	}
	// Nothing sorts strictly between k and k.Next().
	if between := Key("abc\x00"); !between.Equal(n) {
		t.Fatalf("Next = %q", n)
	}
}

func TestPrefixEnd(t *testing.T) {
	cases := []struct {
		in, want Key
	}{
		{Key("a"), Key("b")},
		{Key("ab"), Key("ac")},
		{Key{0x01, 0xff}, Key{0x02}},
		{Key{0xff, 0xff}, MaxKey},
		{Key{}, MaxKey},
	}
	for _, c := range cases {
		if got := c.in.PrefixEnd(); !got.Equal(c.want) {
			t.Fatalf("PrefixEnd(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestPrefixEndProperty(t *testing.T) {
	// Property: any key with prefix p sorts before p.PrefixEnd().
	f := func(prefix, suffix []byte) bool {
		if len(prefix) == 0 {
			return true
		}
		p := Key(prefix)
		k := append(p.Clone(), suffix...)
		end := p.PrefixEnd()
		return k.Less(end) || end.Equal(MaxKey)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSpanBasics(t *testing.T) {
	s := Span{Key: Key("b"), EndKey: Key("d")}
	if !s.Valid() {
		t.Fatal("span should be valid")
	}
	if !s.ContainsKey(Key("b")) || !s.ContainsKey(Key("c")) {
		t.Fatal("span should contain b and c")
	}
	if s.ContainsKey(Key("d")) || s.ContainsKey(Key("a")) {
		t.Fatal("span end is exclusive; start is inclusive")
	}
	point := Span{Key: Key("x")}
	if !point.IsPoint() || !point.ContainsKey(Key("x")) || point.ContainsKey(Key("y")) {
		t.Fatal("point span behavior")
	}
	if (Span{Key: Key("d"), EndKey: Key("b")}).Valid() {
		t.Fatal("inverted span should be invalid")
	}
}

func TestSpanContainsAndOverlaps(t *testing.T) {
	outer := Span{Key: Key("b"), EndKey: Key("z")}
	inner := Span{Key: Key("c"), EndKey: Key("f")}
	if !outer.Contains(inner) || inner.Contains(outer) {
		t.Fatal("Contains broken")
	}
	if !outer.Overlaps(inner) || !inner.Overlaps(outer) {
		t.Fatal("Overlaps broken")
	}
	disjoint := Span{Key: Key("z"), EndKey: Key("zz")}
	if outer.Overlaps(disjoint) {
		t.Fatal("adjacent spans should not overlap (end exclusive)")
	}
	p := Span{Key: Key("c")}
	if !outer.Contains(p) || !outer.Overlaps(p) {
		t.Fatal("point containment broken")
	}
}

func TestKeyString(t *testing.T) {
	if MinKey.String() != "/Min" {
		t.Fatalf("MinKey = %s", MinKey)
	}
	if MaxKey.String() != "/Max" {
		t.Fatalf("MaxKey = %s", MaxKey)
	}
	k := MakeTenantPrefix(7)
	if got := k.String(); got != `/Tenant/7/""` {
		t.Fatalf("tenant key string = %s", got)
	}
}

func TestUint64EncodingOrder(t *testing.T) {
	f := func(a, b uint64) bool {
		ka := EncodeUint64(nil, a)
		kb := EncodeUint64(nil, b)
		cmp := bytes.Compare(ka, kb)
		switch {
		case a < b:
			return cmp < 0
		case a > b:
			return cmp > 0
		default:
			return cmp == 0
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInt64EncodingOrderAndRoundTrip(t *testing.T) {
	f := func(a, b int64) bool {
		ka := EncodeInt64(nil, a)
		kb := EncodeInt64(nil, b)
		if (a < b) != (bytes.Compare(ka, kb) < 0) {
			return false
		}
		rest, got, err := DecodeInt64(ka)
		return err == nil && got == a && len(rest) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBytesEncodingRoundTrip(t *testing.T) {
	f := func(data, tail []byte) bool {
		enc := EncodeBytes(nil, data)
		enc = append(enc, tail...)
		rest, got, err := DecodeBytes(enc)
		return err == nil && bytes.Equal(got, data) && bytes.Equal(rest, tail)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestBytesEncodingOrder(t *testing.T) {
	f := func(a, b []byte) bool {
		ka := EncodeBytes(nil, a)
		kb := EncodeBytes(nil, b)
		return (bytes.Compare(a, b) < 0) == (bytes.Compare(ka, kb) < 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestBytesEncodingEmbeddedZeros(t *testing.T) {
	in := []byte{0x00, 0x01, 0x00, 0x00, 0xff}
	enc := EncodeBytes(nil, in)
	_, out, err := DecodeBytes(enc)
	if err != nil || !bytes.Equal(in, out) {
		t.Fatalf("round trip with zeros: %v %q", err, out)
	}
}

func TestDecodeBytesErrors(t *testing.T) {
	if _, _, err := DecodeBytes(Key{0x99}); err == nil {
		t.Fatal("bad marker should error")
	}
	if _, _, err := DecodeBytes(Key{bytesMarker, 'a'}); err == nil {
		t.Fatal("unterminated should error")
	}
	if _, _, err := DecodeBytes(Key{bytesMarker, 0x00}); err == nil {
		t.Fatal("truncated escape should error")
	}
	if _, _, err := DecodeBytes(Key{bytesMarker, 0x00, 0x55}); err == nil {
		t.Fatal("invalid escape should error")
	}
	if _, _, err := DecodeUint64(Key{1, 2}); err == nil {
		t.Fatal("short uint64 should error")
	}
}

func TestStringEncoding(t *testing.T) {
	enc := EncodeString(nil, "hello")
	rest, s, err := DecodeString(enc)
	if err != nil || s != "hello" || len(rest) != 0 {
		t.Fatalf("string round trip: %v %q", err, s)
	}
	if _, _, err := DecodeString(Key{0x99}); err == nil {
		t.Fatal("bad string should error")
	}
}

func TestTableIndexPrefix(t *testing.T) {
	k := MakeTableIndexPrefix(3, 50, 1)
	tenant, table, index, rest, err := DecodeTableIndexPrefix(append(k, 'x'))
	if err != nil {
		t.Fatal(err)
	}
	if tenant != 3 || table != 50 || index != 1 || string(rest) != "x" {
		t.Fatalf("decoded %d %d %d %q", tenant, table, index, rest)
	}
	if _, _, _, _, err := DecodeTableIndexPrefix(MetaPrefix); err == nil {
		t.Fatal("meta key should not decode as table key")
	}
	if _, _, _, _, err := DecodeTableIndexPrefix(MakeTenantPrefix(3)); err == nil {
		t.Fatal("bare tenant prefix should not decode as table key")
	}
}

func TestTableIndexSpanOrdering(t *testing.T) {
	// Index spans within a table are disjoint and ordered.
	spans := []Span{
		MakeTableIndexSpan(1, 10, 1),
		MakeTableIndexSpan(1, 10, 2),
		MakeTableIndexSpan(1, 11, 1),
		MakeTableIndexSpan(2, 10, 1),
	}
	sorted := sort.SliceIsSorted(spans, func(i, j int) bool {
		return spans[i].Key.Less(spans[j].Key)
	})
	if !sorted {
		t.Fatal("index spans not ordered by (tenant, table, index)")
	}
	for i := 0; i < len(spans); i++ {
		for j := i + 1; j < len(spans); j++ {
			if spans[i].Overlaps(spans[j]) {
				t.Fatalf("spans %d and %d overlap", i, j)
			}
		}
	}
}
