package keys

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Order-preserving encodings. Encoded values compare bytewise in the same
// order as the source values, which lets composite SQL index keys sort
// correctly in the KV keyspace.

// EncodeUint64 appends an 8-byte big-endian encoding of v, which orders the
// same as v.
func EncodeUint64(b Key, v uint64) Key {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], v)
	return append(b, buf[:]...)
}

// DecodeUint64 consumes the encoding produced by EncodeUint64.
func DecodeUint64(b Key) (rest Key, v uint64, err error) {
	if len(b) < 8 {
		return nil, 0, errors.New("keys: buffer too short for uint64")
	}
	return b[8:], binary.BigEndian.Uint64(b[:8]), nil
}

// EncodeInt64 appends an order-preserving encoding of a signed integer by
// flipping the sign bit.
func EncodeInt64(b Key, v int64) Key {
	return EncodeUint64(b, uint64(v)^(1<<63))
}

// DecodeInt64 consumes the encoding produced by EncodeInt64.
func DecodeInt64(b Key) (rest Key, v int64, err error) {
	rest, u, err := DecodeUint64(b)
	if err != nil {
		return nil, 0, err
	}
	return rest, int64(u ^ (1 << 63)), nil
}

const (
	bytesMarker    = 0x12
	escapeByte     = 0x00
	escapedFF      = 0xff
	terminatorByte = 0x01
)

// EncodeBytes appends an order-preserving encoding of a byte string. Embedded
// 0x00 bytes are escaped as {0x00, 0xff}; the value is terminated with
// {0x00, 0x01}. Longer strings with a shared prefix sort after shorter ones,
// matching Go's bytes.Compare on the source values.
func EncodeBytes(b Key, data []byte) Key {
	b = append(b, bytesMarker)
	for _, c := range data {
		if c == escapeByte {
			b = append(b, escapeByte, escapedFF)
		} else {
			b = append(b, c)
		}
	}
	return append(b, escapeByte, terminatorByte)
}

// DecodeBytes consumes the encoding produced by EncodeBytes.
func DecodeBytes(b Key) (rest Key, data []byte, err error) {
	if len(b) == 0 || b[0] != bytesMarker {
		return nil, nil, errors.New("keys: missing bytes marker")
	}
	b = b[1:]
	out := make([]byte, 0, len(b))
	for i := 0; i < len(b); i++ {
		c := b[i]
		if c != escapeByte {
			out = append(out, c)
			continue
		}
		if i+1 >= len(b) {
			return nil, nil, errors.New("keys: truncated escape sequence")
		}
		switch b[i+1] {
		case escapedFF:
			out = append(out, escapeByte)
			i++
		case terminatorByte:
			return b[i+2:], out, nil
		default:
			return nil, nil, fmt.Errorf("keys: invalid escape byte 0x%02x", b[i+1])
		}
	}
	return nil, nil, errors.New("keys: unterminated bytes encoding")
}

// EncodeString appends an order-preserving encoding of a string.
func EncodeString(b Key, s string) Key { return EncodeBytes(b, []byte(s)) }

// DecodeString consumes the encoding produced by EncodeString.
func DecodeString(b Key) (rest Key, s string, err error) {
	rest, data, err := DecodeBytes(b)
	if err != nil {
		return nil, "", err
	}
	return rest, string(data), nil
}

// Table keyspace layout within a tenant.

// TableID identifies a table within a tenant's catalog.
type TableID uint32

// IndexID identifies an index within a table. The primary index is 1.
type IndexID uint32

// PrimaryIndexID is the IndexID of every table's primary index.
const PrimaryIndexID IndexID = 1

// MakeTableIndexPrefix returns the key prefix of (tenant, table, index).
func MakeTableIndexPrefix(tenant TenantID, table TableID, index IndexID) Key {
	k := MakeTenantPrefix(tenant)
	k = EncodeUint64(k, uint64(table))
	k = EncodeUint64(k, uint64(index))
	return k
}

// MakeTableIndexSpan returns the span covering the whole (table, index).
func MakeTableIndexSpan(tenant TenantID, table TableID, index IndexID) Span {
	p := MakeTableIndexPrefix(tenant, table, index)
	return Span{Key: p, EndKey: p.PrefixEnd()}
}

// DecodeTableIndexPrefix parses a key laid out by MakeTableIndexPrefix,
// returning the components and the trailing (datum) portion of the key.
func DecodeTableIndexPrefix(k Key) (tenant TenantID, table TableID, index IndexID, rest Key, err error) {
	tenant, rest, ok := DecodeTenantPrefix(k)
	if !ok {
		return 0, 0, 0, nil, errors.New("keys: key lacks tenant prefix")
	}
	rest, t, err := DecodeUint64(rest)
	if err != nil {
		return 0, 0, 0, nil, err
	}
	rest, i, err := DecodeUint64(rest)
	if err != nil {
		return 0, 0, 0, nil, err
	}
	return tenant, TableID(t), IndexID(i), rest, nil
}
