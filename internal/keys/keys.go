// Package keys defines the logical keyspace of the cluster: order-preserving
// encodings, the tenant prefix scheme that implements keyspace virtualization
// (§3.2.1, Fig 2 of the paper), and the table/index key layout used by the
// SQL layer.
//
// Layout of the global keyspace, in order:
//
//	/Min
//	/Meta/...                     range-addressing metadata (the META range)
//	/Tenant/<id>/...              one contiguous segment per tenant
//	/Max
//
// Within a tenant's segment the SQL layer lays out data as
// /Tenant/<id>/Table/<tableID>/Index/<indexID>/<datums...>.
package keys

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// Key is a byte string in the global keyspace. Keys order lexicographically.
type Key []byte

// Prefix bytes carving up the top level of the keyspace.
const (
	metaPrefixByte   = 0x02
	tenantPrefixByte = 0xfe
	maxByte          = 0xff
)

// MinKey is the smallest possible key.
var MinKey = Key{}

// MaxKey is a key greater than every valid key.
var MaxKey = Key{maxByte, maxByte}

// MetaPrefix is the prefix of the META (range addressing) keyspace.
var MetaPrefix = Key{metaPrefixByte}

// TenantID identifies a virtual cluster. The system tenant is TenantID 1 and
// has heightened privileges (§3.2.4).
type TenantID uint64

// SystemTenantID is the ID of the system tenant.
const SystemTenantID TenantID = 1

// IsSystem reports whether the tenant is the system tenant.
func (t TenantID) IsSystem() bool { return t == SystemTenantID }

// IsValid reports whether the ID identifies a real tenant (IDs start at 1).
func (t TenantID) IsValid() bool { return t >= 1 }

// String implements fmt.Stringer.
func (t TenantID) String() string { return fmt.Sprintf("tenant-%d", uint64(t)) }

// MakeTenantPrefix returns the key prefix that bounds the tenant's segment of
// the keyspace. All of the tenant's data lives in
// [MakeTenantPrefix(id), MakeTenantPrefix(id).PrefixEnd()).
func MakeTenantPrefix(id TenantID) Key {
	k := Key{tenantPrefixByte}
	return EncodeUint64(k, uint64(id))
}

// MakeTenantSpan returns the span covering the whole tenant keyspace.
func MakeTenantSpan(id TenantID) Span {
	p := MakeTenantPrefix(id)
	return Span{Key: p, EndKey: p.PrefixEnd()}
}

// DecodeTenantPrefix extracts the tenant ID from a key that carries a tenant
// prefix. It returns the remainder of the key after the prefix. Keys outside
// any tenant segment (e.g. META keys) return ok=false.
func DecodeTenantPrefix(k Key) (id TenantID, rest Key, ok bool) {
	if len(k) < 1+8 || k[0] != tenantPrefixByte {
		return 0, nil, false
	}
	v := binary.BigEndian.Uint64(k[1 : 1+8])
	return TenantID(v), k[1+8:], true
}

// Next returns the smallest key strictly greater than k.
func (k Key) Next() Key {
	out := make(Key, len(k)+1)
	copy(out, k)
	return out
}

// PrefixEnd returns the smallest key that does not have k as a prefix, i.e.
// the exclusive end of the span of keys prefixed by k. For a key of all 0xff
// bytes (or an empty key), MaxKey is returned.
func (k Key) PrefixEnd() Key {
	if len(k) == 0 {
		return MaxKey
	}
	out := append(Key(nil), k...)
	for i := len(out) - 1; i >= 0; i-- {
		if out[i] != 0xff {
			out[i]++
			return out[:i+1]
		}
	}
	return append(Key(nil), MaxKey...)
}

// Compare returns -1, 0, or 1 comparing k to o lexicographically.
func (k Key) Compare(o Key) int { return bytes.Compare(k, o) }

// Equal reports byte equality.
func (k Key) Equal(o Key) bool { return bytes.Equal(k, o) }

// Less reports whether k sorts before o.
func (k Key) Less(o Key) bool { return bytes.Compare(k, o) < 0 }

// Clone returns a copy of k.
func (k Key) Clone() Key { return append(Key(nil), k...) }

// String renders the key, decoding a tenant prefix when present.
func (k Key) String() string {
	if len(k) == 0 {
		return "/Min"
	}
	if k.Equal(MaxKey) {
		return "/Max"
	}
	if id, rest, ok := DecodeTenantPrefix(k); ok {
		return fmt.Sprintf("/Tenant/%d/%q", uint64(id), []byte(rest))
	}
	if k[0] == metaPrefixByte {
		return fmt.Sprintf("/Meta/%q", []byte(k[1:]))
	}
	return fmt.Sprintf("/%q", []byte(k))
}

// Span is a half-open key interval [Key, EndKey).
type Span struct {
	Key    Key
	EndKey Key
}

// Valid reports whether the span is well formed (Key < EndKey, or a point
// span with empty EndKey).
func (s Span) Valid() bool {
	if len(s.EndKey) == 0 {
		return len(s.Key) > 0
	}
	return s.Key.Less(s.EndKey)
}

// IsPoint reports whether the span addresses a single key.
func (s Span) IsPoint() bool { return len(s.EndKey) == 0 }

// ContainsKey reports whether k falls inside the span.
func (s Span) ContainsKey(k Key) bool {
	if s.IsPoint() {
		return s.Key.Equal(k)
	}
	return !k.Less(s.Key) && k.Less(s.EndKey)
}

// Contains reports whether s fully contains o.
func (s Span) Contains(o Span) bool {
	if o.IsPoint() {
		return s.ContainsKey(o.Key)
	}
	if s.IsPoint() {
		return false
	}
	return !o.Key.Less(s.Key) && !s.EndKey.Less(o.EndKey)
}

// Overlaps reports whether the two spans share any key.
func (s Span) Overlaps(o Span) bool {
	se, oe := s.EndKey, o.EndKey
	if s.IsPoint() {
		se = s.Key.Next()
	}
	if o.IsPoint() {
		oe = o.Key.Next()
	}
	return s.Key.Less(oe) && o.Key.Less(se)
}

// String implements fmt.Stringer.
func (s Span) String() string {
	if s.IsPoint() {
		return s.Key.String()
	}
	return fmt.Sprintf("[%s, %s)", s.Key, s.EndKey)
}
