package mvcc

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"crdbserverless/internal/hlc"
	"crdbserverless/internal/keys"
	"crdbserverless/internal/kvpb"
	"crdbserverless/internal/lsm"
)

func ts(wall int64) hlc.Timestamp { return hlc.Timestamp{WallTime: wall} }

func newEngine() *lsm.Engine { return lsm.New(lsm.Options{}) }

func TestEncodeKeyNewestFirst(t *testing.T) {
	k := keys.Key("user")
	newer := EncodeKey(k, ts(10))
	older := EncodeKey(k, ts(5))
	if bytes.Compare(newer, older) >= 0 {
		t.Fatal("newer version must sort before older")
	}
	sameWall := EncodeKey(k, hlc.Timestamp{WallTime: 10, Logical: 3})
	if bytes.Compare(sameWall, newer) >= 0 {
		t.Fatal("higher logical must sort before lower at same wall")
	}
}

func TestKeyRoundTrip(t *testing.T) {
	f := func(user []byte, wall int64, logical int32) bool {
		if wall < 0 {
			wall = -wall
		}
		if logical < 0 {
			logical = -logical
		}
		in := hlc.Timestamp{WallTime: wall, Logical: logical}
		k, gotTs, err := DecodeKey(EncodeKey(keys.Key(user), in))
		return err == nil && bytes.Equal(k, user) && gotTs.Equal(in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeKeyErrors(t *testing.T) {
	if _, _, err := DecodeKey([]byte{0x99}); err == nil {
		t.Fatal("garbage key should error")
	}
	valid := EncodeKey(keys.Key("k"), ts(1))
	if _, _, err := DecodeKey(valid[:len(valid)-1]); err == nil {
		t.Fatal("truncated key should error")
	}
	if _, _, err := DecodeKey(append(valid, 0x01)); err == nil {
		t.Fatal("trailing bytes should error")
	}
}

func TestPutGetAtTimestamps(t *testing.T) {
	e := newEngine()
	defer e.Close()
	k := keys.Key("k")
	if err := Put(e, k, ts(10), 0, []byte("v10")); err != nil {
		t.Fatal(err)
	}
	if err := Put(e, k, ts(20), 0, []byte("v20")); err != nil {
		t.Fatal(err)
	}
	// Read below the first version: not found.
	if _, ok, err := Get(e, k, ts(5), 0); err != nil || ok {
		t.Fatalf("read@5 = ok=%v err=%v", ok, err)
	}
	// Snapshot reads see the version at or below their timestamp.
	if v, ok, _ := Get(e, k, ts(10), 0); !ok || string(v) != "v10" {
		t.Fatalf("read@10 = %q %v", v, ok)
	}
	if v, ok, _ := Get(e, k, ts(15), 0); !ok || string(v) != "v10" {
		t.Fatalf("read@15 = %q %v", v, ok)
	}
	if v, ok, _ := Get(e, k, ts(25), 0); !ok || string(v) != "v20" {
		t.Fatalf("read@25 = %q %v", v, ok)
	}
}

func TestWriteTooOld(t *testing.T) {
	e := newEngine()
	defer e.Close()
	k := keys.Key("k")
	Put(e, k, ts(20), 0, []byte("v"))
	err := Put(e, k, ts(10), 0, []byte("stale"))
	var wto *kvpb.WriteTooOldError
	if !errors.As(err, &wto) {
		t.Fatalf("expected WriteTooOldError, got %v", err)
	}
	if !ts(20).Less(wto.ActualTs) {
		t.Fatalf("ActualTs %v must exceed existing version ts", wto.ActualTs)
	}
}

func TestDeleteTombstone(t *testing.T) {
	e := newEngine()
	defer e.Close()
	k := keys.Key("k")
	Put(e, k, ts(10), 0, []byte("v"))
	if err := Delete(e, k, ts(20), 0); err != nil {
		t.Fatal(err)
	}
	// Old snapshot still sees the value (time travel).
	if v, ok, _ := Get(e, k, ts(15), 0); !ok || string(v) != "v" {
		t.Fatalf("read@15 after delete = %q %v", v, ok)
	}
	// New snapshot sees the deletion.
	if _, ok, _ := Get(e, k, ts(25), 0); ok {
		t.Fatal("read@25 should not see deleted key")
	}
}

func TestIntentVisibilityRules(t *testing.T) {
	e := newEngine()
	defer e.Close()
	k := keys.Key("k")
	Put(e, k, ts(10), 0, []byte("committed"))
	if err := Put(e, k, ts(20), 77, []byte("provisional")); err != nil {
		t.Fatal(err)
	}
	// The writing txn reads its own intent.
	if v, ok, err := Get(e, k, ts(20), 77); err != nil || !ok || string(v) != "provisional" {
		t.Fatalf("own intent read = %q %v %v", v, ok, err)
	}
	// Another reader below the intent timestamp reads underneath it.
	if v, ok, err := Get(e, k, ts(15), 0); err != nil || !ok || string(v) != "committed" {
		t.Fatalf("read below intent = %q %v %v", v, ok, err)
	}
	// A reader at/above the intent timestamp conflicts.
	_, _, err := Get(e, k, ts(25), 0)
	var wie *kvpb.WriteIntentError
	if !errors.As(err, &wie) || wie.TxnID != 77 {
		t.Fatalf("expected WriteIntentError{77}, got %v", err)
	}
}

func TestWriteWriteConflict(t *testing.T) {
	e := newEngine()
	defer e.Close()
	k := keys.Key("k")
	Put(e, k, ts(10), 1, []byte("txn1"))
	err := Put(e, k, ts(20), 2, []byte("txn2"))
	var wie *kvpb.WriteIntentError
	if !errors.As(err, &wie) || wie.TxnID != 1 {
		t.Fatalf("expected WriteIntentError{1}, got %v", err)
	}
}

func TestIntentRewriteBySameTxn(t *testing.T) {
	e := newEngine()
	defer e.Close()
	k := keys.Key("k")
	Put(e, k, ts(10), 5, []byte("v1"))
	if err := Put(e, k, ts(12), 5, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := Get(e, k, ts(12), 5)
	if err != nil || !ok || string(v) != "v2" {
		t.Fatalf("rewritten intent = %q %v %v", v, ok, err)
	}
	// Only one intent exists: committing yields exactly one version.
	if err := ResolveIntent(e, k, 5, true, ts(12)); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := Get(e, k, ts(100), 0); !ok || string(v) != "v2" {
		t.Fatalf("after commit = %q %v", v, ok)
	}
}

func TestResolveIntentCommit(t *testing.T) {
	e := newEngine()
	defer e.Close()
	k := keys.Key("k")
	Put(e, k, ts(10), 9, []byte("v"))
	if err := ResolveIntent(e, k, 9, true, ts(12)); err != nil {
		t.Fatal(err)
	}
	// Committed at ts 12, not 10.
	if _, ok, _ := Get(e, k, ts(11), 0); ok {
		t.Fatal("value should not be visible below commit ts")
	}
	if v, ok, err := Get(e, k, ts(12), 0); err != nil || !ok || string(v) != "v" {
		t.Fatalf("committed read = %q %v %v", v, ok, err)
	}
}

func TestResolveIntentAbort(t *testing.T) {
	e := newEngine()
	defer e.Close()
	k := keys.Key("k")
	Put(e, k, ts(5), 0, []byte("old"))
	Put(e, k, ts(10), 9, []byte("aborted"))
	if err := ResolveIntent(e, k, 9, false, hlc.Timestamp{}); err != nil {
		t.Fatal(err)
	}
	v, ok, err := Get(e, k, ts(100), 0)
	if err != nil || !ok || string(v) != "old" {
		t.Fatalf("after abort = %q %v %v", v, ok, err)
	}
}

func TestResolveIntentIdempotent(t *testing.T) {
	e := newEngine()
	defer e.Close()
	k := keys.Key("k")
	Put(e, k, ts(10), 9, []byte("v"))
	ResolveIntent(e, k, 9, true, ts(10))
	// Second resolution is a no-op, not an error, and must not disturb the
	// committed version.
	if err := ResolveIntent(e, k, 9, true, ts(10)); err != nil {
		t.Fatal(err)
	}
	// Resolving a different txn's id is also a no-op.
	if err := ResolveIntent(e, k, 42, false, hlc.Timestamp{}); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := Get(e, k, ts(10), 0); !ok || string(v) != "v" {
		t.Fatalf("value disturbed: %q %v", v, ok)
	}
}

func TestScanBasics(t *testing.T) {
	e := newEngine()
	defer e.Close()
	for i := 0; i < 5; i++ {
		Put(e, keys.Key(fmt.Sprintf("k%d", i)), ts(10), 0, []byte(fmt.Sprintf("v%d", i)))
	}
	Delete(e, keys.Key("k2"), ts(20), 0)
	res, err := Scan(e, keys.Span{Key: keys.Key("k0"), EndKey: keys.Key("k9")}, ts(30), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, r := range res.Rows {
		got = append(got, string(r.Key)+"="+string(r.Value))
	}
	want := []string{"k0=v0", "k1=v1", "k3=v3", "k4=v4"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("scan = %v, want %v", got, want)
	}
	if res.Resume != nil {
		t.Fatal("unexpected resume span")
	}
}

func TestScanSnapshot(t *testing.T) {
	e := newEngine()
	defer e.Close()
	Put(e, keys.Key("a"), ts(10), 0, []byte("a10"))
	Put(e, keys.Key("a"), ts(30), 0, []byte("a30"))
	Put(e, keys.Key("b"), ts(20), 0, []byte("b20"))
	res, err := Scan(e, keys.Span{Key: keys.Key("a"), EndKey: keys.Key("z")}, ts(15), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || string(res.Rows[0].Value) != "a10" {
		t.Fatalf("snapshot scan = %+v", res.Rows)
	}
}

func TestScanResumeSpan(t *testing.T) {
	e := newEngine()
	defer e.Close()
	for i := 0; i < 10; i++ {
		Put(e, keys.Key(fmt.Sprintf("k%d", i)), ts(10), 0, []byte("v"))
	}
	span := keys.Span{Key: keys.Key("k0"), EndKey: keys.Key("k9\xff")}
	res, err := Scan(e, span, ts(20), 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(res.Rows))
	}
	if res.Resume == nil || !res.Resume.Key.Equal(keys.Key("k3")) {
		t.Fatalf("resume = %v, want start at k3", res.Resume)
	}
	// Resuming covers the remainder exactly once.
	res2, err := Scan(e, *res.Resume, ts(20), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Rows) != 7 {
		t.Fatalf("resumed scan rows = %d, want 7", len(res2.Rows))
	}
}

func TestScanIntentConflict(t *testing.T) {
	e := newEngine()
	defer e.Close()
	Put(e, keys.Key("a"), ts(10), 0, []byte("v"))
	Put(e, keys.Key("b"), ts(10), 3, []byte("intent"))
	_, err := Scan(e, keys.Span{Key: keys.Key("a"), EndKey: keys.Key("z")}, ts(20), 0, 0)
	var wie *kvpb.WriteIntentError
	if !errors.As(err, &wie) || wie.TxnID != 3 {
		t.Fatalf("expected intent conflict, got %v", err)
	}
	// The same scan by the intent's owner succeeds and sees the intent.
	res, err := Scan(e, keys.Span{Key: keys.Key("a"), EndKey: keys.Key("z")}, ts(20), 3, 0)
	if err != nil || len(res.Rows) != 2 {
		t.Fatalf("owner scan = %+v, %v", res.Rows, err)
	}
}

func TestScanPointSpan(t *testing.T) {
	e := newEngine()
	defer e.Close()
	Put(e, keys.Key("a"), ts(10), 0, []byte("v"))
	Put(e, keys.Key("a2"), ts(10), 0, []byte("x"))
	res, err := Scan(e, keys.Span{Key: keys.Key("a")}, ts(20), 0, 0)
	if err != nil || len(res.Rows) != 1 || string(res.Rows[0].Key) != "a" {
		t.Fatalf("point scan = %+v %v", res.Rows, err)
	}
}

func TestGCOldVersions(t *testing.T) {
	e := newEngine()
	defer e.Close()
	k := keys.Key("k")
	for i := int64(1); i <= 5; i++ {
		Put(e, k, ts(i*10), 0, []byte(fmt.Sprintf("v%d", i)))
	}
	// Keep versions newer than ts 100 (none) -> newest committed survives.
	n, err := GCOldVersions(e, keys.Span{Key: keys.Key("a"), EndKey: keys.Key("z")}, ts(100))
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("gc removed %d versions, want 4", n)
	}
	if v, ok, _ := Get(e, k, ts(100), 0); !ok || string(v) != "v5" {
		t.Fatalf("newest version lost: %q %v", v, ok)
	}
	// Historical read below the GC'd versions now misses.
	if _, ok, _ := Get(e, k, ts(15), 0); ok {
		t.Fatal("GC'd version still visible")
	}
}

func TestGCKeepsIntentsAndRecent(t *testing.T) {
	e := newEngine()
	defer e.Close()
	k := keys.Key("k")
	Put(e, k, ts(10), 0, []byte("old"))
	Put(e, k, ts(20), 0, []byte("mid"))
	Put(e, k, ts(30), 7, []byte("intent"))
	// keepAfter=15: version@20 is recent, intent survives, version@10 is
	// shadowed by version@20 (the newest committed <= keepAfter boundary
	// logic retains the newest non-recent committed version as well).
	n, err := GCOldVersions(e, keys.Span{Key: keys.Key("a"), EndKey: keys.Key("z")}, ts(15))
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("gc removed %d, want 1 (only v@10)", n)
	}
	if v, ok, err := Get(e, k, ts(30), 7); err != nil || !ok || string(v) != "intent" {
		t.Fatalf("intent lost: %q %v %v", v, ok, err)
	}
	if v, ok, _ := Get(e, k, ts(25), 0); !ok || string(v) != "mid" {
		t.Fatalf("recent version lost: %q %v", v, ok)
	}
}

func TestMVCCPropertySnapshotIsolation(t *testing.T) {
	// Property: non-transactional writes at increasing timestamps; any read
	// at timestamp T sees exactly the last write at or before T.
	type write struct {
		KeyIdx uint8
		Val    uint16
	}
	f := func(ws []write) bool {
		e := newEngine()
		defer e.Close()
		history := map[string][]struct {
			ts  int64
			val string
		}{}
		for i, w := range ws {
			k := fmt.Sprintf("k%d", w.KeyIdx%8)
			v := fmt.Sprintf("v%d", w.Val)
			wts := int64(i + 1)
			if err := Put(e, keys.Key(k), ts(wts), 0, []byte(v)); err != nil {
				return false
			}
			history[k] = append(history[k], struct {
				ts  int64
				val string
			}{wts, v})
		}
		for k, h := range history {
			for _, probe := range []int64{0, 1, int64(len(ws) / 2), int64(len(ws)) + 5} {
				var want string
				found := false
				for _, rec := range h {
					if rec.ts <= probe {
						want = rec.val
						found = true
					}
				}
				got, ok, err := Get(e, keys.Key(k), ts(probe), 0)
				if err != nil {
					return false
				}
				if ok != found || (found && string(got) != want) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Intent resolution reaches the engine as ordinary Delete+Set batches, so a
// hot-key-cached engine must invalidate the resolved keys: a raw read cached
// before resolution cannot be served stale afterwards, and the committed
// version must be immediately visible at the MVCC level.
func TestResolveIntentInvalidatesHotCache(t *testing.T) {
	e := lsm.New(lsm.Options{HotKeyCacheSize: 64, ValueThreshold: 16})
	defer e.Close()
	k := keys.Key("acct")
	val := bytes.Repeat([]byte("x"), 32) // above the separation threshold

	if err := Put(e, k, ts(5), 77, val); err != nil {
		t.Fatal(err)
	}
	// Warm the hot cache on the intent's raw storage key.
	raw := EncodeKey(k, ts(5))
	for i := 0; i < 2; i++ {
		if v, ok, err := e.Get(raw); err != nil || !ok || len(v) == 0 {
			t.Fatalf("raw intent read %d = ok=%v err=%v", i, ok, err)
		}
	}
	if e.Metrics().HotCacheHits == 0 {
		t.Fatal("repeat raw read did not hit the hot cache")
	}

	if err := ResolveIntent(e, k, 77, true, ts(9)); err != nil {
		t.Fatal(err)
	}
	// The provisional version was deleted; a stale cache would still serve it.
	if _, ok, err := e.Get(raw); err != nil || ok {
		t.Fatalf("resolved intent's raw key still visible: ok=%v err=%v (stale cache?)", ok, err)
	}
	// The committed version is visible at and after the commit timestamp.
	if v, ok, err := Get(e, k, ts(10), 0); err != nil || !ok || !bytes.Equal(v, val) {
		t.Fatalf("committed read = %d bytes ok=%v err=%v", len(v), ok, err)
	}

	// Abort path: the intent vanishes and cached raw reads cannot resurrect it.
	if err := Put(e, k, ts(12), 88, []byte("provisional")); err != nil {
		t.Fatal(err)
	}
	rawAbort := EncodeKey(k, ts(12))
	e.Get(rawAbort)
	e.Get(rawAbort) // cached
	if err := ResolveIntent(e, k, 88, false, hlc.Timestamp{}); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := e.Get(rawAbort); ok {
		t.Fatal("aborted intent's raw key still visible (stale cache?)")
	}
	if v, ok, err := Get(e, k, ts(20), 0); err != nil || !ok || !bytes.Equal(v, val) {
		t.Fatalf("read after abort = %d bytes ok=%v err=%v", len(v), ok, err)
	}
}
