// Package mvcc layers multi-version concurrency control over the LSM engine:
// versioned keys ordered newest-first, provisional write intents, snapshot
// reads at a timestamp, and intent resolution. The transaction layer
// (internal/txn) and the replica state machine (internal/kvserver) are built
// on these primitives.
package mvcc

import (
	"errors"
	"fmt"

	"crdbserverless/internal/hlc"
	"crdbserverless/internal/keys"
	"crdbserverless/internal/kvpb"
	"crdbserverless/internal/lsm"
)

// EncodeKey builds the storage key for (user key, timestamp). For a single
// user key, versions sort newest-first, so the first storage entry for a key
// is its latest version.
func EncodeKey(user keys.Key, ts hlc.Timestamp) []byte {
	k := keys.EncodeBytes(nil, user)
	k = keys.EncodeUint64(k, ^uint64(ts.WallTime))
	k = keys.EncodeUint64(k, ^uint64(uint32(ts.Logical)))
	return k
}

// keyPrefix returns the storage prefix covering every version of user.
func keyPrefix(user keys.Key) []byte {
	return keys.EncodeBytes(nil, user)
}

// DecodeKey splits a storage key into its user key and timestamp.
func DecodeKey(storage []byte) (keys.Key, hlc.Timestamp, error) {
	rest, user, err := keys.DecodeBytes(storage)
	if err != nil {
		return nil, hlc.Timestamp{}, err
	}
	rest, wall, err := keys.DecodeUint64(rest)
	if err != nil {
		return nil, hlc.Timestamp{}, err
	}
	rest, logical, err := keys.DecodeUint64(rest)
	if err != nil {
		return nil, hlc.Timestamp{}, err
	}
	if len(rest) != 0 {
		return nil, hlc.Timestamp{}, errors.New("mvcc: trailing bytes in storage key")
	}
	return user, hlc.Timestamp{
		WallTime: int64(^wall),
		Logical:  int32(^uint32(logical)),
	}, nil
}

// Version is one decoded version of a key.
type Version struct {
	Ts        hlc.Timestamp
	TxnID     uint64 // nonzero marks an unresolved intent
	Tombstone bool
	Data      []byte
}

// IsIntent reports whether the version is a provisional transactional write.
func (v Version) IsIntent() bool { return v.TxnID != 0 }

const (
	flagTombstone = 1 << 0
)

// encodeValue serializes a version's value portion (timestamp lives in the
// key).
func encodeValue(v Version) []byte {
	out := make([]byte, 0, 9+len(v.Data))
	var flags byte
	if v.Tombstone {
		flags |= flagTombstone
	}
	out = append(out, flags)
	out = keys.EncodeUint64(out, v.TxnID)
	return append(out, v.Data...)
}

func decodeValue(b []byte) (Version, error) {
	if len(b) < 9 {
		return Version{}, fmt.Errorf("mvcc: short value (%d bytes)", len(b))
	}
	var v Version
	v.Tombstone = b[0]&flagTombstone != 0
	_, txnID, err := keys.DecodeUint64(keys.Key(b[1:9]))
	if err != nil {
		return Version{}, err
	}
	v.TxnID = txnID
	if len(b) > 9 {
		v.Data = b[9:]
	}
	return v, nil
}

// Put writes value for key at ts. If txnID is nonzero the write is an intent
// owned by that transaction. Put returns WriteIntentError when another
// transaction holds an intent on the key, and WriteTooOldError when a
// committed version exists at or above ts.
func Put(e *lsm.Engine, key keys.Key, ts hlc.Timestamp, txnID uint64, value []byte) error {
	return putVersion(e, key, Version{Ts: ts, TxnID: txnID, Data: value}, false)
}

// Delete writes a deletion tombstone version for key at ts, with the same
// conflict rules as Put.
func Delete(e *lsm.Engine, key keys.Key, ts hlc.Timestamp, txnID uint64) error {
	return putVersion(e, key, Version{Ts: ts, TxnID: txnID, Tombstone: true}, false)
}

// ApplyPut is the replication-side Put: it skips conflict checking, which
// already ran on the leaseholder during evaluation. Replicas applying a
// committed command — including a recovered store replaying raft entries over
// partially surviving state — must not re-check, because a half-applied
// command's own versions would read as conflicts and make deterministic
// application fail partway through. It is idempotent: re-applying writes the
// identical version at the identical timestamp.
func ApplyPut(e *lsm.Engine, key keys.Key, ts hlc.Timestamp, txnID uint64, value []byte) error {
	return putVersion(e, key, Version{Ts: ts, TxnID: txnID, Data: value}, true)
}

// ApplyDelete is the replication-side Delete (see ApplyPut).
func ApplyDelete(e *lsm.Engine, key keys.Key, ts hlc.Timestamp, txnID uint64) error {
	return putVersion(e, key, Version{Ts: ts, TxnID: txnID, Tombstone: true}, true)
}

// CheckWriteConflict reports the conflict a write at (ts, txnID) on key would
// encounter: WriteIntentError for another transaction's intent, or
// WriteTooOldError for a committed version at or above ts. The KV layer runs
// this during evaluation, before replicating a command, so that command
// application cannot fail partway through a batch.
func CheckWriteConflict(e *lsm.Engine, key keys.Key, ts hlc.Timestamp, txnID uint64) error {
	newest, ok, err := newestVersion(e, key)
	if err != nil {
		return err
	}
	if !ok {
		return nil
	}
	if newest.IsIntent() {
		if newest.TxnID != txnID {
			return &kvpb.WriteIntentError{Key: key.Clone(), TxnID: newest.TxnID}
		}
		return nil
	}
	if !newest.Ts.Less(ts) {
		return &kvpb.WriteTooOldError{Key: key.Clone(), ActualTs: newest.Ts.Next()}
	}
	return nil
}

func putVersion(e *lsm.Engine, key keys.Key, v Version, replay bool) error {
	if !replay {
		if err := CheckWriteConflict(e, key, v.Ts, v.TxnID); err != nil {
			return err
		}
	}
	newest, ok, err := newestVersion(e, key)
	if err != nil {
		return err
	}
	if ok && newest.IsIntent() && newest.TxnID == v.TxnID && v.IsIntent() {
		// Same transaction rewriting its intent: replace the old provisional
		// version. Tombstone and replacement go through one engine batch (one
		// WAL record) so a crash can never surface both versions — or neither.
		return e.ApplyBatch([]lsm.Entry{
			{Key: EncodeKey(key, newest.Ts), Tombstone: true},
			{Key: EncodeKey(key, v.Ts), Value: encodeValue(v)},
		})
	}
	return e.Set(EncodeKey(key, v.Ts), encodeValue(v))
}

// newestVersion returns the latest version of key, decoded.
func newestVersion(e *lsm.Engine, key keys.Key) (Version, bool, error) {
	prefix := keyPrefix(key)
	it := e.NewIter(prefix, keys.Key(prefix).PrefixEnd())
	if !it.Valid() {
		return Version{}, false, nil
	}
	user, ts, err := DecodeKey(it.Key())
	if err != nil {
		return Version{}, false, err
	}
	if !user.Equal(key) {
		return Version{}, false, nil
	}
	v, err := decodeValue(it.Value())
	if err != nil {
		return Version{}, false, err
	}
	v.Ts = ts
	return v, true, nil
}

// Get returns the value of key visible at readTs to transaction txnID (0 for
// non-transactional reads). A visible intent from another transaction yields
// WriteIntentError. A tombstone or absent key reads as not found.
func Get(e *lsm.Engine, key keys.Key, readTs hlc.Timestamp, txnID uint64) ([]byte, bool, error) {
	prefix := keyPrefix(key)
	it := e.NewIter(prefix, keys.Key(prefix).PrefixEnd())
	for ; it.Valid(); it.Next() {
		user, ts, err := DecodeKey(it.Key())
		if err != nil {
			return nil, false, err
		}
		if !user.Equal(key) {
			break
		}
		v, err := decodeValue(it.Value())
		if err != nil {
			return nil, false, err
		}
		v.Ts = ts
		visible, err := visibleVersion(v, key, readTs, txnID)
		if err != nil {
			return nil, false, err
		}
		if !visible {
			continue
		}
		if v.Tombstone {
			return nil, false, nil
		}
		return v.Data, true, nil
	}
	return nil, false, nil
}

// visibleVersion applies the snapshot visibility rules and surfaces intent
// conflicts.
func visibleVersion(v Version, key keys.Key, readTs hlc.Timestamp, txnID uint64) (bool, error) {
	if v.IsIntent() && v.TxnID == txnID {
		// A transaction always reads its own provisional writes.
		return true, nil
	}
	if readTs.Less(v.Ts) {
		// Version (or foreign intent) above the read timestamp: skip and
		// read below it.
		return false, nil
	}
	if v.IsIntent() {
		return false, &kvpb.WriteIntentError{Key: key.Clone(), TxnID: v.TxnID}
	}
	return true, nil
}

// ScanResult is the outcome of a Scan.
type ScanResult struct {
	Rows []kvpb.KeyValue
	// Resume is the remainder of the span when maxKeys was reached.
	Resume *keys.Span
}

// Scan returns up to maxKeys live rows in span visible at readTs to txnID.
// maxKeys <= 0 means unlimited.
func Scan(e *lsm.Engine, span keys.Span, readTs hlc.Timestamp, txnID uint64, maxKeys int64) (ScanResult, error) {
	lo := keyPrefix(span.Key)
	var hi []byte
	if span.IsPoint() {
		hi = keys.Key(lo).PrefixEnd()
	} else {
		hi = keyPrefix(span.EndKey)
	}
	var res ScanResult
	it := e.NewIter(lo, hi)
	var curKey keys.Key
	decided := false // whether visibility for curKey has been settled
	for ; it.Valid(); it.Next() {
		user, ts, err := DecodeKey(it.Key())
		if err != nil {
			return ScanResult{}, err
		}
		if !user.Equal(curKey) {
			if maxKeys > 0 && int64(len(res.Rows)) >= maxKeys {
				rs := keys.Span{Key: user.Clone(), EndKey: span.EndKey}
				res.Resume = &rs
				return res, nil
			}
			curKey = user.Clone()
			decided = false
		}
		if decided {
			continue
		}
		v, err := decodeValue(it.Value())
		if err != nil {
			return ScanResult{}, err
		}
		v.Ts = ts
		visible, err := visibleVersion(v, curKey, readTs, txnID)
		if err != nil {
			return ScanResult{}, err
		}
		if !visible {
			continue
		}
		decided = true
		if !v.Tombstone {
			res.Rows = append(res.Rows, kvpb.KeyValue{Key: curKey, Value: v.Data})
		}
	}
	return res, nil
}

// ResolveIntent finalizes txnID's intent on key. When commit is true the
// provisional version is rewritten as committed at commitTs; otherwise it is
// removed. Resolving a key with no matching intent is a no-op (resolution
// must be idempotent: the txn layer retries it). The intent removal and the
// committed rewrite go through one engine batch — one WAL record — so a crash
// mid-resolution can never lose the committed version while having dropped
// the intent (or leave both visible).
func ResolveIntent(e *lsm.Engine, key keys.Key, txnID uint64, commit bool, commitTs hlc.Timestamp) error {
	v, ok, err := newestVersion(e, key)
	if err != nil {
		return err
	}
	if !ok || !v.IsIntent() || v.TxnID != txnID {
		return nil
	}
	if !commit {
		return e.Delete(EncodeKey(key, v.Ts))
	}
	committed := Version{Ts: commitTs, Tombstone: v.Tombstone, Data: v.Data}
	return e.ApplyBatch([]lsm.Entry{
		{Key: EncodeKey(key, v.Ts), Tombstone: true},
		{Key: EncodeKey(key, commitTs), Value: encodeValue(committed)},
	})
}

// GCOldVersions removes all but the newest committed version of each key in
// span, retaining any version newer than keepAfter. It returns the number of
// versions removed. This is the storage reclamation path (MVCC GC).
func GCOldVersions(e *lsm.Engine, span keys.Span, keepAfter hlc.Timestamp) (int, error) {
	lo := keyPrefix(span.Key)
	var hi []byte
	if span.IsPoint() {
		hi = keys.Key(lo).PrefixEnd()
	} else {
		hi = keyPrefix(span.EndKey)
	}
	var toDelete [][]byte
	var curKey keys.Key
	kept := false
	for it := e.NewIter(lo, hi); it.Valid(); it.Next() {
		user, ts, err := DecodeKey(it.Key())
		if err != nil {
			return 0, err
		}
		if !user.Equal(curKey) {
			curKey = user.Clone()
			kept = false
		}
		v, err := decodeValue(it.Value())
		if err != nil {
			return 0, err
		}
		if v.IsIntent() || keepAfter.Less(ts) {
			kept = true // intents and recent versions always survive
			continue
		}
		if !kept {
			kept = true // newest committed version survives
			continue
		}
		toDelete = append(toDelete, append([]byte(nil), it.Key()...))
	}
	for _, k := range toDelete {
		if err := e.Delete(k); err != nil {
			return 0, err
		}
	}
	return len(toDelete), nil
}

// IntentKeys returns the user keys in span holding an unresolved intent, in
// key order. A nonzero txnID restricts the result to that transaction's
// intents. An intent is always a key's newest version (committed writes
// cannot land above one), so only the first storage entry per user key needs
// decoding. ResolveIntentRange evaluation and the chaos harness's
// orphaned-intent invariant are built on this.
func IntentKeys(e *lsm.Engine, span keys.Span, txnID uint64) ([]keys.Key, error) {
	lo, hi := EngineSpan(span)
	var out []keys.Key
	var curKey keys.Key
	for it := e.NewIter(lo, hi); it.Valid(); it.Next() {
		user, _, err := DecodeKey(it.Key())
		if err != nil {
			return nil, err
		}
		if user.Equal(curKey) {
			continue
		}
		curKey = user.Clone()
		v, err := decodeValue(it.Value())
		if err != nil {
			return nil, err
		}
		if v.IsIntent() && (txnID == 0 || v.TxnID == txnID) {
			out = append(out, curKey)
		}
	}
	return out, nil
}

// EngineSpan translates a user-key span into the raw storage-key bounds that
// cover every MVCC version (and intent) of keys in the span. Replica
// rebalancing copies engine data with these bounds.
func EngineSpan(span keys.Span) (lo, hi []byte) {
	lo = keyPrefix(span.Key)
	if span.IsPoint() {
		hi = keys.Key(lo).PrefixEnd()
	} else {
		hi = keyPrefix(span.EndKey)
	}
	return lo, hi
}
