package kvserver

import (
	"container/heap"
	"sort"
	"sync"
	"time"
)

// loadIndex is the incremental maintenance index: per-node lease and replica
// sets, a lease-renewal heap, a cold-range merge-check heap, and the set of
// ranges whose load changed since the last tick. Every split, merge, replica
// move, and lease transfer updates it in O(log n) or O(1), so Tick,
// rebalancing, and drain read aggregates instead of rescanning every range —
// maintenance cost scales with what changed, not with cluster size.
//
// Lock ordering: idx.mu is a strict leaf. Methods never call back into the
// cluster or touch c.mu/rs.latch; callers extract IDs, release idx.mu, and
// re-resolve ranges through the cluster afterwards.
type loadIndex struct {
	mu sync.Mutex
	// leases[n] and replicas[n] are the ranges node n holds a lease for /
	// has a replica of. Aggregate counts are len() of these sets.
	leases   map[NodeID]map[RangeID]struct{}
	replicas map[NodeID]map[RangeID]struct{}
	// holder is the last lease grant the cluster observed; holderGen
	// lazily invalidates renewal-heap entries from superseded grants.
	holder    map[RangeID]NodeID
	holderGen map[RangeID]uint64
	// needsLease holds ranges with no observed holder; the tick drains it.
	needsLease map[RangeID]struct{}
	// changed holds ranges whose load signal moved since the last drain.
	changed map[RangeID]struct{}
	// registered guards against resurrecting state for merged-away ranges.
	registered map[RangeID]struct{}
	renewals   renewalHeap
	mergeQ     mergeHeap
	// mergeQueued dedups merge-check scheduling per range.
	mergeQueued map[RangeID]struct{}
}

func newLoadIndex() *loadIndex {
	return &loadIndex{
		leases:      make(map[NodeID]map[RangeID]struct{}),
		replicas:    make(map[NodeID]map[RangeID]struct{}),
		holder:      make(map[RangeID]NodeID),
		holderGen:   make(map[RangeID]uint64),
		needsLease:  make(map[RangeID]struct{}),
		changed:     make(map[RangeID]struct{}),
		registered:  make(map[RangeID]struct{}),
		mergeQueued: make(map[RangeID]struct{}),
	}
}

// registerRange records a new range with the given replica set and no lease.
func (x *loadIndex) registerRange(id RangeID, replicas []NodeID) {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.registered[id] = struct{}{}
	for _, n := range replicas {
		x.addSetLocked(x.replicas, n, id)
	}
	x.needsLease[id] = struct{}{}
}

// unregisterRange forgets a range (merge or failed split cleanup).
func (x *loadIndex) unregisterRange(id RangeID, replicas []NodeID) {
	x.mu.Lock()
	defer x.mu.Unlock()
	delete(x.registered, id)
	for _, n := range replicas {
		x.delSetLocked(x.replicas, n, id)
	}
	if h, ok := x.holder[id]; ok {
		x.delSetLocked(x.leases, h, id)
		delete(x.holder, id)
	}
	x.holderGen[id]++ // invalidate queued renewals
	delete(x.needsLease, id)
	delete(x.changed, id)
	delete(x.mergeQueued, id)
}

// moveReplica swaps one replica of id from one node to another.
func (x *loadIndex) moveReplica(id RangeID, from, to NodeID) {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.delSetLocked(x.replicas, from, id)
	x.addSetLocked(x.replicas, to, id)
	if x.holder[id] == from {
		x.delSetLocked(x.leases, from, id)
		delete(x.holder, id)
		x.holderGen[id]++
		x.needsLease[id] = struct{}{}
	}
}

// noteLease records an observed lease grant and schedules its renewal at the
// half-life of the lease. Stale renewals from a prior holder die by
// generation mismatch when popped.
func (x *loadIndex) noteLease(id RangeID, node NodeID, renewAt time.Time) {
	x.mu.Lock()
	defer x.mu.Unlock()
	if _, ok := x.registered[id]; !ok {
		return
	}
	if prev, ok := x.holder[id]; ok {
		if prev == node {
			return
		}
		x.delSetLocked(x.leases, prev, id)
	}
	x.holder[id] = node
	x.addSetLocked(x.leases, node, id)
	delete(x.needsLease, id)
	x.holderGen[id]++
	heap.Push(&x.renewals, renewalItem{due: renewAt, id: id, gen: x.holderGen[id]})
}

// holderOf returns the recorded leaseholder, if any.
func (x *loadIndex) holderOf(id RangeID) (NodeID, bool) {
	x.mu.Lock()
	defer x.mu.Unlock()
	h, ok := x.holder[id]
	return h, ok
}

// markNeedsLease flags a range whose lease op failed for retry next tick.
func (x *loadIndex) markNeedsLease(id RangeID) {
	x.mu.Lock()
	defer x.mu.Unlock()
	if _, ok := x.registered[id]; !ok {
		return
	}
	if h, ok := x.holder[id]; ok {
		x.delSetLocked(x.leases, h, id)
		delete(x.holder, id)
		x.holderGen[id]++
	}
	x.needsLease[id] = struct{}{}
}

// markChanged flags a range for the next tick's load pass.
func (x *loadIndex) markChanged(id RangeID) {
	x.mu.Lock()
	defer x.mu.Unlock()
	if _, ok := x.registered[id]; ok {
		x.changed[id] = struct{}{}
	}
}

// drainChanged returns (sorted) and clears the changed set.
func (x *loadIndex) drainChanged() []RangeID {
	x.mu.Lock()
	defer x.mu.Unlock()
	out := sortedIDsLocked(x.changed)
	x.changed = make(map[RangeID]struct{})
	return out
}

// drainNeedsLease returns (sorted) and clears the needs-lease set.
func (x *loadIndex) drainNeedsLease() []RangeID {
	x.mu.Lock()
	defer x.mu.Unlock()
	out := sortedIDsLocked(x.needsLease)
	x.needsLease = make(map[RangeID]struct{})
	return out
}

// dueRenewals pops every renewal due at or before now whose generation is
// still current, returning range IDs in due order.
func (x *loadIndex) dueRenewals(now time.Time) []RangeID {
	x.mu.Lock()
	defer x.mu.Unlock()
	var out []RangeID
	for len(x.renewals) > 0 && !x.renewals[0].due.After(now) {
		it := heap.Pop(&x.renewals).(renewalItem)
		if it.gen != x.holderGen[it.id] {
			continue // superseded grant
		}
		out = append(out, it.id)
	}
	return out
}

// scheduleMergeCheck queues a cold-range re-check at due (deduped per range).
func (x *loadIndex) scheduleMergeCheck(id RangeID, due time.Time) {
	x.mu.Lock()
	defer x.mu.Unlock()
	if _, ok := x.registered[id]; !ok {
		return
	}
	if _, ok := x.mergeQueued[id]; ok {
		return
	}
	x.mergeQueued[id] = struct{}{}
	heap.Push(&x.mergeQ, mergeItem{due: due, id: id})
}

// dueMergeChecks pops every merge check due at or before now.
func (x *loadIndex) dueMergeChecks(now time.Time) []RangeID {
	x.mu.Lock()
	defer x.mu.Unlock()
	var out []RangeID
	for len(x.mergeQ) > 0 && !x.mergeQ[0].due.After(now) {
		it := heap.Pop(&x.mergeQ).(mergeItem)
		if _, ok := x.mergeQueued[it.id]; !ok {
			continue
		}
		delete(x.mergeQueued, it.id)
		if _, ok := x.registered[it.id]; !ok {
			continue
		}
		out = append(out, it.id)
	}
	return out
}

// leaseCount and replicaCount are O(1) aggregate reads.
func (x *loadIndex) leaseCount(n NodeID) int {
	x.mu.Lock()
	defer x.mu.Unlock()
	return len(x.leases[n])
}

func (x *loadIndex) replicaCount(n NodeID) int {
	x.mu.Lock()
	defer x.mu.Unlock()
	return len(x.replicas[n])
}

// leasesOf returns the node's lease set, sorted for deterministic iteration.
func (x *loadIndex) leasesOf(n NodeID) []RangeID {
	x.mu.Lock()
	defer x.mu.Unlock()
	return sortedIDsLocked(x.leases[n])
}

// replicasOf returns the node's replica set, sorted.
func (x *loadIndex) replicasOf(n NodeID) []RangeID {
	x.mu.Lock()
	defer x.mu.Unlock()
	return sortedIDsLocked(x.replicas[n])
}

func (x *loadIndex) addSetLocked(m map[NodeID]map[RangeID]struct{}, n NodeID, id RangeID) {
	s, ok := m[n]
	if !ok {
		s = make(map[RangeID]struct{})
		m[n] = s
	}
	s[id] = struct{}{}
}

func (x *loadIndex) delSetLocked(m map[NodeID]map[RangeID]struct{}, n NodeID, id RangeID) {
	if s, ok := m[n]; ok {
		delete(s, id)
	}
}

func sortedIDsLocked(s map[RangeID]struct{}) []RangeID {
	out := make([]RangeID, 0, len(s))
	for id := range s {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// renewalHeap orders lease renewals by due time (range ID tie-break keeps
// pop order deterministic).
type renewalItem struct {
	due time.Time
	id  RangeID
	gen uint64
}

type renewalHeap []renewalItem

func (h renewalHeap) Len() int { return len(h) }
func (h renewalHeap) Less(i, j int) bool {
	if !h[i].due.Equal(h[j].due) {
		return h[i].due.Before(h[j].due)
	}
	return h[i].id < h[j].id
}
func (h renewalHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *renewalHeap) Push(v interface{}) { *h = append(*h, v.(renewalItem)) }
func (h *renewalHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// mergeHeap orders cold-range merge re-checks by due time.
type mergeItem struct {
	due time.Time
	id  RangeID
}

type mergeHeap []mergeItem

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	if !h[i].due.Equal(h[j].due) {
		return h[i].due.Before(h[j].due)
	}
	return h[i].id < h[j].id
}
func (h mergeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(v interface{}) { *h = append(*h, v.(mergeItem)) }
func (h *mergeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// TickStats reports what the last maintenance tick actually did — the
// O(changed) evidence the fleet benchmark gates on.
type TickStats struct {
	RangesVisited      int // ranges examined by lease/load/merge passes
	LeaseOps           int // acquire/extend/renewal operations issued
	LeaseTransfers     int // count-balancing lease transfers
	LoadLeaseTransfers int // load-driven lease transfers
	LoadReplicaMoves   int // load-driven replica moves (lease travels along)
	Merges             int // cold-range merges performed
}
