package kvserver

import (
	"fmt"

	"crdbserverless/internal/kvpb"
	"crdbserverless/internal/lsm"
	"crdbserverless/internal/mvcc"
	"crdbserverless/internal/raftlite"
)

// Replica movement and KV fleet membership — the substrate for automatic
// KV/storage node scaling, the paper's first future-work item (§8): "CRDB's
// architecture already supports dynamic sharding and rebalancing to make use
// of added nodes or shift data away from nodes being removed."

// AddNode joins a new KV node to the cluster. New ranges may place replicas
// on it immediately; existing data moves via MoveReplica/RebalanceReplicas.
func (c *Cluster) AddNode(n *Node) error {
	c.nodesMu.Lock()
	defer c.nodesMu.Unlock()
	if _, dup := c.nodesMu.nodes[n.id]; dup {
		return fmt.Errorf("kvserver: node %d already exists", n.id)
	}
	c.nodesMu.nodes[n.id] = n
	c.nodesMu.nodeOrder = append(c.nodesMu.nodeOrder, n.id)
	return nil
}

// RemoveNode removes an empty KV node from the cluster. Every range must
// have been moved off it first (drain with MoveReplica).
func (c *Cluster) RemoveNode(id NodeID) error {
	if n := c.replicaCount(id); n > 0 {
		return fmt.Errorf("kvserver: node %d still holds %d replicas", id, n)
	}
	c.nodesMu.Lock()
	n, ok := c.nodesMu.nodes[id]
	if !ok {
		c.nodesMu.Unlock()
		return fmt.Errorf("kvserver: unknown node %d", id)
	}
	delete(c.nodesMu.nodes, id)
	for i, x := range c.nodesMu.nodeOrder {
		if x == id {
			c.nodesMu.nodeOrder = append(c.nodesMu.nodeOrder[:i], c.nodesMu.nodeOrder[i+1:]...)
			break
		}
	}
	c.nodesMu.Unlock()
	n.Close()
	return nil
}

// replicaCount returns the number of range replicas on a node — an O(1)
// read of the maintenance index, not a cluster scan.
func (c *Cluster) replicaCount(id NodeID) int {
	return c.idx.replicaCount(id)
}

// ReplicaCounts returns replicas per node across all ranges, read from the
// incrementally-maintained per-node aggregates in O(nodes).
func (c *Cluster) ReplicaCounts() map[NodeID]int {
	c.nodesMu.RLock()
	ids := append([]NodeID(nil), c.nodesMu.nodeOrder...)
	c.nodesMu.RUnlock()
	out := make(map[NodeID]int, len(ids))
	for _, id := range ids {
		if n := c.idx.replicaCount(id); n > 0 {
			out[id] = n
		}
	}
	return out
}

// MoveReplica relocates one range replica from one node to another: the
// range's data is copied from a healthy replica's engine to the target, and
// the replication group is rebuilt over the new membership. Writes to the
// range are blocked (range latch) for the duration.
func (c *Cluster) MoveReplica(rangeID RangeID, from, to NodeID) error {
	c.mu.RLock()
	rs, ok := c.mu.ranges[rangeID]
	c.mu.RUnlock()
	if !ok {
		return &kvpb.RangeNotFoundError{RangeID: int64(rangeID)}
	}
	target, ok := c.Node(to)
	if !ok {
		return fmt.Errorf("kvserver: unknown target node %d", to)
	}

	rs.latch.Lock()
	defer rs.latch.Unlock()

	desc := rs.desc
	hasFrom, hasTo := false, false
	for _, r := range desc.Replicas {
		if r == from {
			hasFrom = true
		}
		if r == to {
			hasTo = true
		}
	}
	if !hasFrom {
		return fmt.Errorf("kvserver: range %d has no replica on node %d", rangeID, from)
	}
	if hasTo {
		return fmt.Errorf("kvserver: range %d already has a replica on node %d", rangeID, to)
	}

	// Copy the range's data from a live replica (prefer the leaseholder).
	src := from
	if lh, ok := rs.group.Leaseholder(); ok {
		src = lh
	}
	srcNode, ok := c.Node(src)
	if !ok || !srcNode.Live() {
		// Fall back to any live replica.
		found := false
		for _, r := range desc.Replicas {
			if n, ok := c.Node(r); ok && n.Live() {
				srcNode = n
				src = r
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("kvserver: range %d has no live replica to copy from", rangeID)
		}
	}
	if err := copySpanData(srcNode.Engine(), target.Engine(), rs); err != nil {
		return err
	}

	// Rebuild membership and the replication group. The copied engine state
	// is the new replica's snapshot; the fresh group's log starts after it.
	newReplicas := make([]NodeID, 0, len(desc.Replicas))
	for _, r := range desc.Replicas {
		if r != from {
			newReplicas = append(newReplicas, r)
		}
	}
	newReplicas = append(newReplicas, to)
	sms := make([]raftlite.StateMachine, len(newReplicas))
	for i, nid := range newReplicas {
		n, ok := c.Node(nid)
		if !ok {
			return fmt.Errorf("kvserver: unknown node %d", nid)
		}
		sms[i] = engineSM{n: n, rs: rs}
	}
	group, err := raftlite.NewGroup(raftlite.Config{
		RangeID:            int64(rangeID),
		Clock:              c.clock,
		Liveness:           c.liveness,
		LeaseDuration:      c.cfg.LeaseDuration,
		DisableGroupCommit: c.cfg.DisableGroupCommit,
		CommitOverhead:     c.cfg.CommitOverhead,
		CommitMetrics:      c.cfg.CommitMetrics,
		LogRetention:       c.cfg.RaftLogRetention,
	}, newReplicas, sms)
	if err != nil {
		return err
	}
	// The rebuilt group continues the old group's history: surviving replicas
	// keep their engine state at their old applied indexes, and the new
	// replica holds a copy of src's engine, so it starts at src's applied
	// index. Seeding at the old commit keeps any lagging survivor reading as
	// lagging (it heals via snapshot) instead of as caught up.
	applied := make(map[NodeID]uint64, len(newReplicas))
	for _, nid := range newReplicas {
		if nid == to {
			continue
		}
		if a, err := rs.group.AppliedIndex(nid); err == nil {
			applied[nid] = a
		}
	}
	if a, err := rs.group.AppliedIndex(src); err == nil {
		applied[to] = a
	}
	group.SeedState(rs.group.CommitIndex(), applied)
	// Restore a lease: the previous holder if it survived the move,
	// otherwise the new replica.
	prevLH, hadLease := rs.group.Leaseholder()
	newLH := to
	if hadLease && prevLH != from {
		newLH = prevLH
	}
	//lint:allow faulterr lease restore after a replica move is best-effort; the next request re-acquires
	_ = group.AcquireLease(newLH)

	newDesc := desc.clone()
	newDesc.Replicas = newReplicas
	newDesc.Generation++

	c.mu.Lock()
	rs.desc = newDesc
	rs.descAtomic.Store(newDesc)
	rs.group = group
	err = c.dir.replace(rangeID, newDesc)
	c.mu.Unlock()
	if err == nil {
		// Keep the maintenance index in step: the replica moved, and the
		// restored lease (if it took) has a new holder to track.
		c.idx.moveReplica(rangeID, from, to)
		if lh, ok := group.Leaseholder(); ok {
			c.idx.noteLease(rangeID, lh, c.renewAt())
		} else {
			c.idx.markNeedsLease(rangeID)
		}
		c.markChanged(rs)
	}
	return err
}

// copySpanData copies every raw engine entry of the range's span from src to
// dst. Intents and all MVCC versions move as-is.
func copySpanData(src, dst *lsm.Engine, rs *rangeState) error {
	lo, hi := mvcc.EngineSpan(rs.desc.Span)
	var batch []lsm.Entry
	for it := src.NewIter(lo, hi); it.Valid(); it.Next() {
		batch = append(batch, lsm.Entry{
			Key:   append([]byte(nil), it.Key()...),
			Value: append([]byte(nil), it.Value()...),
		})
		if len(batch) >= 1024 {
			if err := dst.ApplyBatch(batch); err != nil {
				return err
			}
			batch = batch[:0]
		}
	}
	if len(batch) > 0 {
		return dst.ApplyBatch(batch)
	}
	return nil
}

// RebalanceReplicas moves up to maxMoves replicas from the most-loaded node
// to the least-loaded live node, preferring the hottest movable range so
// each move sheds as much load as possible. Per-node counts come from the
// maintenance index (O(nodes)), and candidates from the most-loaded node's
// replica set — never a cluster-wide scan. It returns the number of moves
// performed.
func (c *Cluster) RebalanceReplicas(maxMoves int) int {
	now := c.clock.Now()
	moves := 0
	for moves < maxMoves {
		var maxNode, minNode NodeID
		maxCount, minCount := -1, 1<<30
		for _, n := range c.Nodes() {
			if !n.Live() {
				continue
			}
			cnt := c.idx.replicaCount(n.id)
			if cnt > maxCount {
				maxCount, maxNode = cnt, n.id
			}
			if cnt < minCount {
				minCount, minNode = cnt, n.id
			}
		}
		if maxNode == 0 || minNode == 0 || maxNode == minNode || maxCount-minCount <= 1 {
			return moves
		}
		// Among maxNode's ranges without a replica on minNode, pick the one
		// carrying the most decayed load (ties break toward the lowest
		// RangeID — the index iteration is already sorted).
		var candidate RangeID
		bestWeight := -1.0
		for _, id := range c.idx.replicasOf(maxNode) {
			rs := c.rangeByID(id)
			if rs == nil {
				continue
			}
			if hasReplica(rs, minNode) {
				continue
			}
			if w := rs.load.weightAt(now, c.cfg.LoadHalfLife); w > bestWeight {
				bestWeight, candidate = w, id
			}
		}
		if candidate == 0 {
			return moves
		}
		if err := c.MoveReplica(candidate, maxNode, minNode); err != nil {
			return moves
		}
		moves++
	}
	return moves
}

// DrainNodeReplicas moves every replica off a node (preparing it for
// removal), spreading them over the live nodes with the fewest replicas.
// Candidates come straight from the node's replica set in the maintenance
// index; targets from the per-node aggregates.
func (c *Cluster) DrainNodeReplicas(id NodeID) error {
	for {
		candidates := c.idx.replicasOf(id)
		if len(candidates) == 0 {
			return nil
		}
		candidate := candidates[0]
		rs := c.rangeByID(candidate)
		if rs == nil {
			// The range merged away between the index read and now; the
			// unregister already dropped it from the set.
			continue
		}
		// Target: live non-member with the fewest replicas.
		var target NodeID
		best := 1 << 30
		for _, n := range c.Nodes() {
			if n.id == id || hasReplica(rs, n.id) || !n.Live() {
				continue
			}
			if cnt := c.idx.replicaCount(n.id); cnt < best {
				best = cnt
				target = n.id
			}
		}
		if target == 0 {
			return fmt.Errorf("kvserver: no target node to drain range %d onto", candidate)
		}
		if err := c.MoveReplica(candidate, id, target); err != nil {
			return err
		}
	}
}
