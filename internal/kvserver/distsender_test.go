package kvserver

import (
	"context"
	"fmt"
	"testing"
	"time"

	"crdbserverless/internal/keys"
	"crdbserverless/internal/kvpb"
	"crdbserverless/internal/randutil"
)

// splitTenantKeyspace splits tenant 2's keyspace at each of the given suffixes.
func splitTenantKeyspace(t testing.TB, c *Cluster, suffixes ...string) {
	t.Helper()
	for _, s := range suffixes {
		if err := c.SplitAt(tenantKey(2, s)); err != nil {
			t.Fatal(err)
		}
	}
}

// loadKeys writes n keys k000..k<n-1> through ds and returns their suffixes
// in order.
func loadKeys(t testing.TB, ds *DistSender, n int) []string {
	t.Helper()
	ctx := context.Background()
	out := make([]string, n)
	for i := 0; i < n; i++ {
		s := fmt.Sprintf("k%03d", i)
		out[i] = s
		if _, err := ds.Send(ctx, &kvpb.BatchRequest{Tenant: 2, Requests: []kvpb.Request{
			putReq(tenantKey(2, s), fmt.Sprintf("v%03d", i))}}); err != nil {
			t.Fatal(err)
		}
	}
	return out
}

// paginateScan drives a MaxKeys-limited scan to completion, asserting that
// every page respects the limit and that rows arrive in strictly ascending
// key order. It returns the concatenated row keys (tenant suffix only).
func paginateScan(t *testing.T, ds *DistSender, maxKeys int64) []string {
	t.Helper()
	ctx := context.Background()
	span := keys.MakeTenantSpan(2)
	req := kvpb.Request{Method: kvpb.Scan, Key: span.Key, EndKey: span.EndKey, MaxKeys: maxKeys}
	prefix := len(keys.MakeTenantPrefix(2))
	var got []string
	for page := 0; page < 1000; page++ {
		resp, err := ds.Send(ctx, &kvpb.BatchRequest{Tenant: 2, Requests: []kvpb.Request{req}})
		if err != nil {
			t.Fatal(err)
		}
		r := resp.Responses[0]
		if maxKeys > 0 && int64(len(r.Rows)) > maxKeys {
			t.Fatalf("page %d returned %d rows, limit %d", page, len(r.Rows), maxKeys)
		}
		for _, row := range r.Rows {
			s := string(row.Key[prefix:])
			if len(got) > 0 && s <= got[len(got)-1] {
				t.Fatalf("rows out of order: %q after %q", s, got[len(got)-1])
			}
			got = append(got, s)
		}
		if r.ResumeSpan == nil {
			return got
		}
		if maxKeys > 0 && int64(len(r.Rows)) < maxKeys {
			t.Fatalf("page %d returned %d rows under the limit %d yet set a ResumeSpan", page, len(r.Rows), maxKeys)
		}
		if len(got) > 0 && string(r.ResumeSpan.Key[prefix:]) <= got[len(got)-1] {
			t.Fatalf("ResumeSpan %q does not advance past %q", r.ResumeSpan.Key, got[len(got)-1])
		}
		req.Key = r.ResumeSpan.Key
		req.EndKey = r.ResumeSpan.EndKey
	}
	t.Fatal("scan did not terminate in 1000 pages")
	return nil
}

// TestCrossRangeScanMaxKeys covers scans spanning four ranges with MaxKeys
// limits under both sequential and parallel fan-out: merged row order, limit
// enforcement, and ResumeSpan correctness.
func TestCrossRangeScanMaxKeys(t *testing.T) {
	for _, mode := range []struct {
		name        string
		parallelism int
	}{
		{"sequential", 1},
		{"parallel", DefaultParallelism},
	} {
		t.Run(mode.name, func(t *testing.T) {
			c := newTestCluster(t, 3)
			ds := NewDistSender(c, Identity{Tenant: 2}, Config{Parallelism: mode.parallelism})
			want := loadKeys(t, ds, 12)
			splitTenantKeyspace(t, c, "k003", "k006", "k009")
			for _, maxKeys := range []int64{0, 1, 4, 5, 100} {
				got := paginateScan(t, ds, maxKeys)
				if fmt.Sprint(got) != fmt.Sprint(want) {
					t.Fatalf("maxKeys=%d: got %v, want %v", maxKeys, got, want)
				}
			}
		})
	}
}

// TestParallelBatchMergesInRequestOrder sends one batch whose requests are
// deliberately shuffled across four ranges and checks every response lands
// at its original index.
func TestParallelBatchMergesInRequestOrder(t *testing.T) {
	c := newTestCluster(t, 3)
	ds := NewDistSender(c, Identity{Tenant: 2})
	want := loadKeys(t, ds, 16)
	splitTenantKeyspace(t, c, "k004", "k008", "k012")

	// Interleave the ranges: 0, 4, 8, 12, 1, 5, ... so adjacent requests
	// never share a range and any completion-order merge would scramble.
	var reqs []kvpb.Request
	var order []int
	for off := 0; off < 4; off++ {
		for i := off; i < 16; i += 4 {
			reqs = append(reqs, getReq(tenantKey(2, want[i])))
			order = append(order, i)
		}
	}
	resp, err := ds.Send(context.Background(), &kvpb.BatchRequest{Tenant: 2, Requests: reqs})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Responses) != len(reqs) {
		t.Fatalf("got %d responses, want %d", len(resp.Responses), len(reqs))
	}
	for j, r := range resp.Responses {
		wantVal := fmt.Sprintf("v%03d", order[j])
		if string(r.Value) != wantVal {
			t.Fatalf("response %d = %q, want %q", j, r.Value, wantVal)
		}
	}
}

// TestRandomizedSplitScanProperty is a property test: under random splits
// and random page limits (seeded RNG), a paginated scan always returns
// every key exactly once, in order, under both fan-out modes.
func TestRandomizedSplitScanProperty(t *testing.T) {
	const numKeys = 40
	for _, seed := range []int64{1, 7, 42} {
		for _, parallelism := range []int{1, DefaultParallelism} {
			t.Run(fmt.Sprintf("seed=%d/parallelism=%d", seed, parallelism), func(t *testing.T) {
				rng := randutil.NewRand(seed)
				c := newTestCluster(t, 3)
				ds := NewDistSender(c, Identity{Tenant: 2}, Config{Parallelism: parallelism})
				want := loadKeys(t, ds, numKeys)
				// 3..6 random distinct split points inside the key run.
				nSplits := 3 + rng.Intn(4)
				used := map[int]bool{}
				for len(used) < nSplits {
					i := 1 + rng.Intn(numKeys-1)
					if !used[i] {
						used[i] = true
						splitTenantKeyspace(t, c, want[i])
					}
				}
				maxKeys := int64(1 + rng.Intn(7))
				got := paginateScan(t, ds, maxKeys)
				if fmt.Sprint(got) != fmt.Sprint(want) {
					t.Fatalf("got %v, want %v", got, want)
				}
			})
		}
	}
}

// TestDistSenderCacheBounds crosses the descriptor-cache and lease-hint caps
// and checks the caps hold after every operation.
func TestDistSenderCacheBounds(t *testing.T) {
	const limit = 4
	c := newTestCluster(t, 3)
	seed := NewDistSender(c, Identity{Tenant: 2})
	want := loadKeys(t, seed, 24)
	// 11 extra ranges: far more than the cap.
	splitTenantKeyspace(t, c, want[2], want[4], want[6], want[8], want[10],
		want[12], want[14], want[16], want[18], want[20], want[22])

	ds := NewDistSender(c, Identity{Tenant: 2}, Config{CacheLimit: limit})
	ctx := context.Background()
	for i, s := range want {
		resp, err := ds.Send(ctx, &kvpb.BatchRequest{Tenant: 2, Requests: []kvpb.Request{
			getReq(tenantKey(2, s))}})
		if err != nil {
			t.Fatal(err)
		}
		if wantVal := fmt.Sprintf("v%03d", i); string(resp.Responses[0].Value) != wantVal {
			t.Fatalf("key %s = %q, want %q", s, resp.Responses[0].Value, wantVal)
		}
		descs, hints := ds.CacheSizes()
		if descs > limit {
			t.Fatalf("descriptor cache grew to %d, cap %d", descs, limit)
		}
		if hints > limit {
			t.Fatalf("lease hints grew to %d, cap %d", hints, limit)
		}
	}
	// The caches are bounded but still functional: a full scan works.
	got := paginateScan(t, ds, 5)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("scan with bounded caches: got %v, want %v", got, want)
	}
}

// newFanoutCluster builds a cluster whose reads cost real executor time, so
// the wall-clock difference between sequential and parallel dispatch is
// measurable. 8 vCPUs per node keeps workers from being the bottleneck.
func newFanoutCluster(t testing.TB) (*Cluster, []string) {
	t.Helper()
	costs := CostConfig{
		ReadBatchOverhead:  5 * time.Millisecond,
		WriteBatchOverhead: time.Nanosecond,
		ReadRequestCost:    time.Microsecond,
		WriteRequestCost:   time.Nanosecond,
	}
	c := newTestCluster(t, 4, func(cfg *NodeConfig) {
		cfg.VCPUs = 8
		cfg.Cost = costs
	})
	ds := NewDistSender(c, Identity{Tenant: 2})
	want := loadKeys(t, ds, 64)
	splitTenantKeyspace(t, c, want[8], want[16], want[24], want[32], want[40], want[48], want[56])
	return c, want
}

func batchOf64Gets(suffixes []string) *kvpb.BatchRequest {
	ba := &kvpb.BatchRequest{Tenant: 2}
	for _, s := range suffixes {
		ba.Requests = append(ba.Requests, getReq(tenantKey(2, s)))
	}
	return ba
}

// timeBatch measures the fastest of three sends (the minimum discards
// scheduler noise and cold descriptor caches).
func timeBatch(t *testing.T, ds *DistSender, ba *kvpb.BatchRequest) time.Duration {
	t.Helper()
	ctx := context.Background()
	best := time.Duration(1<<63 - 1)
	for i := 0; i < 3; i++ {
		start := time.Now()
		if _, err := ds.Send(ctx, ba); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}

// TestParallelFanoutSpeedup is the ≥2x acceptance criterion: a 64-request
// batch across 8 ranges, each sub-batch costing ~5ms of executor time, must
// run at least twice as fast under parallel fan-out as sequentially
// (theoretically ~8x: 8 range visits overlap instead of serializing).
func TestParallelFanoutSpeedup(t *testing.T) {
	c, want := newFanoutCluster(t)
	ba := batchOf64Gets(want)

	seq := NewDistSender(c, Identity{Tenant: 2}, Config{Parallelism: 1})
	par := NewDistSender(c, Identity{Tenant: 2})
	seqD := timeBatch(t, seq, ba)
	parD := timeBatch(t, par, ba)
	if seqD < 2*parD {
		t.Fatalf("parallel fan-out not ≥2x faster: sequential %v, parallel %v", seqD, parD)
	}
}
