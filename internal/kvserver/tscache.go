package kvserver

import (
	"crdbserverless/internal/hlc"
	"crdbserverless/internal/keys"
)

// tsCache is a per-range timestamp cache: it remembers the highest timestamp
// at which each key (or span) has been read, so that a later write below
// that timestamp is pushed — closing the lost-update anomaly where a
// transaction writes underneath another transaction's already-served read.
// This mirrors CockroachDB's timestamp cache; entries carry the reading
// transaction's ID so a transaction is never pushed by its own reads.
//
// The cache is bounded: evicted entries fold into a low-water mark, which is
// a safe over-approximation (it can cause spurious pushes, never missed
// ones). It is not internally synchronized; the range latch serializes
// access.
type tsCache struct {
	lowWater hlc.Timestamp
	points   map[string]tsCacheEntry
	spans    []spanEntry
}

type tsCacheEntry struct {
	ts    hlc.Timestamp
	txnID uint64
}

type spanEntry struct {
	span  keys.Span
	ts    hlc.Timestamp
	txnID uint64
}

const (
	tsCacheMaxPoints = 4096
	tsCacheMaxSpans  = 64
)

func newTSCache() *tsCache {
	return &tsCache{points: make(map[string]tsCacheEntry)}
}

// recordRead notes that span was read at ts by txnID.
func (tc *tsCache) recordRead(span keys.Span, ts hlc.Timestamp, txnID uint64) {
	if span.IsPoint() {
		k := string(span.Key)
		if cur, ok := tc.points[k]; !ok || cur.ts.Less(ts) {
			if len(tc.points) >= tsCacheMaxPoints {
				tc.foldPoints()
			}
			tc.points[k] = tsCacheEntry{ts: ts, txnID: txnID}
		}
		return
	}
	if len(tc.spans) >= tsCacheMaxSpans {
		tc.foldSpans()
	}
	tc.spans = append(tc.spans, spanEntry{span: span, ts: ts, txnID: txnID})
}

// foldPoints collapses all point entries into the low-water mark.
func (tc *tsCache) foldPoints() {
	for _, e := range tc.points {
		if tc.lowWater.Less(e.ts) {
			tc.lowWater = e.ts
		}
	}
	tc.points = make(map[string]tsCacheEntry)
}

// foldSpans collapses all span entries into the low-water mark.
func (tc *tsCache) foldSpans() {
	for _, e := range tc.spans {
		if tc.lowWater.Less(e.ts) {
			tc.lowWater = e.ts
		}
	}
	tc.spans = tc.spans[:0]
}

// maxReadOther returns the highest recorded read timestamp covering key from
// any transaction other than txnID (the low-water mark is ownerless and
// always applies).
func (tc *tsCache) maxReadOther(key keys.Key, txnID uint64) hlc.Timestamp {
	max := tc.lowWater
	if e, ok := tc.points[string(key)]; ok {
		if (txnID == 0 || e.txnID != txnID) && max.Less(e.ts) {
			max = e.ts
		}
	}
	for _, e := range tc.spans {
		if e.span.ContainsKey(key) && (txnID == 0 || e.txnID != txnID) && max.Less(e.ts) {
			max = e.ts
		}
	}
	return max
}
