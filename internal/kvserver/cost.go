package kvserver

import (
	"time"

	"crdbserverless/internal/kvpb"
)

// CostConfig is the ground-truth CPU cost of serving KV work on a node. The
// executor charges these durations as service time, making CPU the physical
// bottleneck the experiments exercise. The estimated-CPU model of §5.2.1 is
// trained against (and evaluated against) this ground truth, mirroring how
// the paper trains its model against measured CPU on dedicated clusters.
type CostConfig struct {
	// Per-batch overheads (request parsing, raft proposal, response
	// assembly). Writes cost more: WAL append and replication.
	ReadBatchOverhead  time.Duration
	WriteBatchOverhead time.Duration
	// Per-request costs within a batch.
	ReadRequestCost  time.Duration
	WriteRequestCost time.Duration
	// Per-byte costs for payloads.
	ReadByteCost  time.Duration // per byte returned
	WriteByteCost time.Duration // per byte written
	// MarshalByteCost is charged per response byte when rows cross a
	// process boundary to a separate SQL server — the serialization tax
	// that makes full-scan aggregations 2.3x more expensive in Serverless
	// deployments (§6.1.2). Colocated (traditional) execution skips it.
	MarshalByteCost time.Duration
	// BatchAmortization is the maximum fractional discount on per-batch
	// overhead at high batch rates — the Fig 5 non-linearity: nodes
	// processing more batches/sec use CPU more efficiently.
	BatchAmortization float64
	// AmortizationRate is the batches/sec at which half the maximum
	// discount applies.
	AmortizationRate float64
}

// DefaultCostConfig returns the calibration used across the experiments.
func DefaultCostConfig() CostConfig {
	return CostConfig{
		ReadBatchOverhead:  40 * time.Microsecond,
		WriteBatchOverhead: 80 * time.Microsecond,
		ReadRequestCost:    4 * time.Microsecond,
		WriteRequestCost:   6 * time.Microsecond,
		ReadByteCost:       10 * time.Nanosecond,
		WriteByteCost:      30 * time.Nanosecond,
		MarshalByteCost:    15 * time.Nanosecond,
		BatchAmortization:  0.4,
		AmortizationRate:   2000,
	}
}

// amortizationFactor returns the multiplier applied to per-batch overhead at
// the given recent batch rate: 1.0 at rate 0, falling toward
// 1-BatchAmortization as the rate grows (a smooth saturating curve).
func (c CostConfig) amortizationFactor(batchesPerSec float64) float64 {
	if batchesPerSec <= 0 || c.BatchAmortization <= 0 || c.AmortizationRate <= 0 {
		return 1
	}
	frac := batchesPerSec / (batchesPerSec + c.AmortizationRate)
	return 1 - c.BatchAmortization*frac
}

// BatchCost returns the ground-truth CPU cost of one batch round trip.
// batchesPerSec is the node's recent batch arrival rate (for the Fig 5
// amortization); remote reports whether the response crosses a process
// boundary to a separate SQL server.
func (c CostConfig) BatchCost(req *kvpb.BatchRequest, resp *kvpb.BatchResponse, batchesPerSec float64, remote bool) time.Duration {
	amort := c.amortizationFactor(batchesPerSec)
	var cost time.Duration
	var reads, writes int64
	for _, r := range req.Requests {
		if r.Method.IsWrite() {
			writes++
		} else {
			reads++
		}
	}
	if reads > 0 {
		cost += time.Duration(float64(c.ReadBatchOverhead) * amort)
		cost += time.Duration(reads) * c.ReadRequestCost
	}
	if writes > 0 {
		cost += time.Duration(float64(c.WriteBatchOverhead) * amort)
		cost += time.Duration(writes) * c.WriteRequestCost
		cost += time.Duration(req.WriteBytes()) * c.WriteByteCost
	}
	if resp != nil {
		rb := resp.ReadBytes()
		// The scan work is charged on bytes read, which exceeds bytes
		// returned when a pushed-down filter dropped rows; marshaling is
		// charged only on what actually crosses the process boundary.
		scanned := rb
		for i := range resp.Responses {
			if s := resp.Responses[i].ScannedBytes; s > int64(len(resp.Responses[i].Value)) {
				scanned += s - sumRowBytes(&resp.Responses[i])
			}
		}
		cost += time.Duration(scanned) * c.ReadByteCost
		if remote {
			cost += time.Duration(rb) * c.MarshalByteCost
		}
	}
	return cost
}

func sumRowBytes(r *kvpb.Response) int64 {
	var n int64
	for _, kv := range r.Rows {
		n += int64(len(kv.Key) + len(kv.Value))
	}
	return n
}
