package kvserver

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"crdbserverless/internal/keys"
	"crdbserverless/internal/kvpb"
	"crdbserverless/internal/timeutil"
	"crdbserverless/internal/trace"
)

// newTestCluster builds an n-node cluster with tiny costs so tests run fast.
func newTestCluster(t testing.TB, n int, opts ...func(*NodeConfig)) *Cluster {
	t.Helper()
	cheap := CostConfig{
		ReadBatchOverhead:  time.Nanosecond,
		WriteBatchOverhead: time.Nanosecond,
		ReadRequestCost:    time.Nanosecond,
		WriteRequestCost:   time.Nanosecond,
	}
	var nodes []*Node
	for i := 1; i <= n; i++ {
		cfg := NodeConfig{ID: NodeID(i), VCPUs: 2, Cost: cheap}
		for _, o := range opts {
			o(&cfg)
		}
		cfg.ID = NodeID(i)
		nodes = append(nodes, NewNode(cfg))
	}
	c, err := NewCluster(ClusterConfig{}, nodes)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func tenantKey(tid keys.TenantID, s string) keys.Key {
	return append(keys.MakeTenantPrefix(tid), []byte(s)...)
}

func putReq(k keys.Key, v string) kvpb.Request {
	return kvpb.Request{Method: kvpb.Put, Key: k, Value: []byte(v)}
}

func getReq(k keys.Key) kvpb.Request {
	return kvpb.Request{Method: kvpb.Get, Key: k}
}

func TestClusterPutGet(t *testing.T) {
	c := newTestCluster(t, 3)
	ds := NewDistSender(c, Identity{Tenant: 2})
	ctx := context.Background()

	k := tenantKey(2, "hello")
	if _, err := ds.Send(ctx, &kvpb.BatchRequest{Tenant: 2, Requests: []kvpb.Request{putReq(k, "world")}}); err != nil {
		t.Fatal(err)
	}
	resp, err := ds.Send(ctx, &kvpb.BatchRequest{Tenant: 2, Requests: []kvpb.Request{getReq(k)}})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Responses[0].Exists || string(resp.Responses[0].Value) != "world" {
		t.Fatalf("get = %+v", resp.Responses[0])
	}
	// Missing key.
	resp, err = ds.Send(ctx, &kvpb.BatchRequest{Tenant: 2, Requests: []kvpb.Request{getReq(tenantKey(2, "missing"))}})
	if err != nil || resp.Responses[0].Exists {
		t.Fatalf("missing get = %+v err=%v", resp.Responses[0], err)
	}
}

func TestClusterWritesReplicatedToAllReplicas(t *testing.T) {
	c := newTestCluster(t, 3)
	ds := NewDistSender(c, Identity{Tenant: 2})
	k := tenantKey(2, "replicated")
	if _, err := ds.Send(context.Background(), &kvpb.BatchRequest{Tenant: 2, Requests: []kvpb.Request{putReq(k, "v")}}); err != nil {
		t.Fatal(err)
	}
	desc, err := c.LookupRange(k)
	if err != nil {
		t.Fatal(err)
	}
	if len(desc.Replicas) != 3 {
		t.Fatalf("replicas = %v", desc.Replicas)
	}
	// Every replica's engine holds the raw version.
	for _, nid := range desc.Replicas {
		n, _ := c.Node(nid)
		it := n.Engine().NewIter(nil, nil)
		found := false
		for ; it.Valid(); it.Next() {
			found = true
			break
		}
		if !found {
			t.Fatalf("node %d engine empty; replication failed", nid)
		}
	}
}

func TestClusterScanAndDelete(t *testing.T) {
	c := newTestCluster(t, 3)
	ds := NewDistSender(c, Identity{Tenant: 2})
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		k := tenantKey(2, fmt.Sprintf("k%02d", i))
		if _, err := ds.Send(ctx, &kvpb.BatchRequest{Tenant: 2, Requests: []kvpb.Request{putReq(k, fmt.Sprintf("v%d", i))}}); err != nil {
			t.Fatal(err)
		}
	}
	span := keys.MakeTenantSpan(2)
	scan := kvpb.Request{Method: kvpb.Scan, Key: span.Key, EndKey: span.EndKey}
	resp, err := ds.Send(ctx, &kvpb.BatchRequest{Tenant: 2, Requests: []kvpb.Request{scan}})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Responses[0].Rows) != 10 {
		t.Fatalf("scan rows = %d", len(resp.Responses[0].Rows))
	}
	// Delete a key and rescan.
	del := kvpb.Request{Method: kvpb.Delete, Key: tenantKey(2, "k05")}
	if _, err := ds.Send(ctx, &kvpb.BatchRequest{Tenant: 2, Requests: []kvpb.Request{del}}); err != nil {
		t.Fatal(err)
	}
	resp, err = ds.Send(ctx, &kvpb.BatchRequest{Tenant: 2, Requests: []kvpb.Request{scan}})
	if err != nil || len(resp.Responses[0].Rows) != 9 {
		t.Fatalf("post-delete scan rows = %d err=%v", len(resp.Responses[0].Rows), err)
	}
}

func TestClusterScanMaxKeysResume(t *testing.T) {
	c := newTestCluster(t, 3)
	ds := NewDistSender(c, Identity{Tenant: 2})
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		k := tenantKey(2, fmt.Sprintf("k%02d", i))
		ds.Send(ctx, &kvpb.BatchRequest{Tenant: 2, Requests: []kvpb.Request{putReq(k, "v")}})
	}
	span := keys.MakeTenantSpan(2)
	var rows int
	req := kvpb.Request{Method: kvpb.Scan, Key: span.Key, EndKey: span.EndKey, MaxKeys: 3}
	for i := 0; i < 10; i++ {
		resp, err := ds.Send(ctx, &kvpb.BatchRequest{Tenant: 2, Requests: []kvpb.Request{req}})
		if err != nil {
			t.Fatal(err)
		}
		r := resp.Responses[0]
		rows += len(r.Rows)
		if r.ResumeSpan == nil {
			break
		}
		req.Key = r.ResumeSpan.Key
		req.EndKey = r.ResumeSpan.EndKey
	}
	if rows != 10 {
		t.Fatalf("paginated scan returned %d rows, want 10", rows)
	}
}

func TestClusterDeleteRange(t *testing.T) {
	c := newTestCluster(t, 3)
	ds := NewDistSender(c, Identity{Tenant: 2})
	ctx := context.Background()
	for i := 0; i < 6; i++ {
		ds.Send(ctx, &kvpb.BatchRequest{Tenant: 2, Requests: []kvpb.Request{
			putReq(tenantKey(2, fmt.Sprintf("k%d", i)), "v")}})
	}
	dr := kvpb.Request{Method: kvpb.DeleteRange, Key: tenantKey(2, "k2"), EndKey: tenantKey(2, "k5")}
	if _, err := ds.Send(ctx, &kvpb.BatchRequest{Tenant: 2, Requests: []kvpb.Request{dr}}); err != nil {
		t.Fatal(err)
	}
	span := keys.MakeTenantSpan(2)
	resp, _ := ds.Send(ctx, &kvpb.BatchRequest{Tenant: 2, Requests: []kvpb.Request{
		{Method: kvpb.Scan, Key: span.Key, EndKey: span.EndKey}}})
	var got []string
	for _, r := range resp.Responses[0].Rows {
		got = append(got, string(r.Key[len(keys.MakeTenantPrefix(2)):]))
	}
	want := []string{"k0", "k1", "k5"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("after delete range: %v, want %v", got, want)
	}
}

func TestSplitAtAndMultiRangeScan(t *testing.T) {
	c := newTestCluster(t, 3)
	ds := NewDistSender(c, Identity{Tenant: 2})
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		ds.Send(ctx, &kvpb.BatchRequest{Tenant: 2, Requests: []kvpb.Request{
			putReq(tenantKey(2, fmt.Sprintf("k%02d", i)), "v")}})
	}
	if err := c.SplitAt(tenantKey(2, "k05")); err != nil {
		t.Fatal(err)
	}
	// The directory now has one more range; spans still partition the keyspace.
	descs := c.Descriptors()
	for i := 1; i < len(descs); i++ {
		if !descs[i-1].Span.EndKey.Equal(descs[i].Span.Key) {
			t.Fatalf("gap between %s and %s", descs[i-1], descs[i])
		}
	}
	// A scan across the split boundary still returns everything, through a
	// DistSender whose cache is stale.
	span := keys.MakeTenantSpan(2)
	resp, err := ds.Send(ctx, &kvpb.BatchRequest{Tenant: 2, Requests: []kvpb.Request{
		{Method: kvpb.Scan, Key: span.Key, EndKey: span.EndKey}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Responses[0].Rows) != 10 {
		t.Fatalf("cross-split scan rows = %d, want 10", len(resp.Responses[0].Rows))
	}
	// Writes on both sides of the split work.
	if _, err := ds.Send(ctx, &kvpb.BatchRequest{Tenant: 2, Requests: []kvpb.Request{
		putReq(tenantKey(2, "k02x"), "left"), putReq(tenantKey(2, "k07x"), "right")}}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitAtExistingBoundaryNoop(t *testing.T) {
	c := newTestCluster(t, 3)
	if err := c.SplitAt(keys.MakeTenantPrefix(2)); err != nil {
		t.Fatal(err)
	}
	n := len(c.Descriptors())
	if err := c.SplitAt(keys.MakeTenantPrefix(2)); err != nil {
		t.Fatal(err)
	}
	if got := len(c.Descriptors()); got != n {
		t.Fatalf("repeat split changed range count %d -> %d", n, got)
	}
}

func TestSizeSplitTriggers(t *testing.T) {
	cheap := CostConfig{ReadBatchOverhead: time.Nanosecond, WriteBatchOverhead: time.Nanosecond}
	n1 := NewNode(NodeConfig{ID: 1, VCPUs: 2, Cost: cheap})
	c, err := NewCluster(ClusterConfig{SplitSizeThreshold: 4096, ReplicationFactor: 1}, []*Node{n1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ds := NewDistSender(c, Identity{Tenant: 2})
	ctx := context.Background()
	before := len(c.Descriptors())
	payload := make([]byte, 256)
	for i := 0; i < 64; i++ {
		k := tenantKey(2, fmt.Sprintf("key-%04d", i))
		if _, err := ds.Send(ctx, &kvpb.BatchRequest{Tenant: 2, Requests: []kvpb.Request{
			{Method: kvpb.Put, Key: k, Value: payload}}}); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(c.Descriptors()); got <= before {
		t.Fatalf("no size-based split: %d ranges", got)
	}
	// All data still readable.
	span := keys.MakeTenantSpan(2)
	resp, err := ds.Send(ctx, &kvpb.BatchRequest{Tenant: 2, Requests: []kvpb.Request{
		{Method: kvpb.Scan, Key: span.Key, EndKey: span.EndKey}}})
	if err != nil || len(resp.Responses[0].Rows) != 64 {
		t.Fatalf("post-split scan = %d rows, err=%v", len(resp.Responses[0].Rows), err)
	}
}

func TestAuthorizerEnforced(t *testing.T) {
	c := newTestCluster(t, 3)
	c.SetAuthorizer(authFunc(func(id Identity, ba *kvpb.BatchRequest) error {
		for _, r := range ba.Requests {
			if !keys.MakeTenantSpan(id.Tenant).ContainsKey(r.Key) {
				return &kvpb.TenantAuthError{Authenticated: id.Tenant, Requested: ba.Tenant, Key: r.Key}
			}
		}
		return nil
	}))
	ds := NewDistSender(c, Identity{Tenant: 2})
	ctx := context.Background()
	// Own keyspace: fine.
	if _, err := ds.Send(ctx, &kvpb.BatchRequest{Tenant: 2, Requests: []kvpb.Request{
		putReq(tenantKey(2, "mine"), "v")}}); err != nil {
		t.Fatal(err)
	}
	// Another tenant's keyspace: rejected.
	_, err := ds.Send(ctx, &kvpb.BatchRequest{Tenant: 3, Requests: []kvpb.Request{
		putReq(tenantKey(3, "theirs"), "v")}})
	var tae *kvpb.TenantAuthError
	if !errors.As(err, &tae) {
		t.Fatalf("cross-tenant write = %v", err)
	}
}

type authFunc func(Identity, *kvpb.BatchRequest) error

func (f authFunc) Authorize(id Identity, ba *kvpb.BatchRequest) error { return f(id, ba) }

func TestFollowerReadServedByNonLeaseholder(t *testing.T) {
	c := newTestCluster(t, 3)
	ds := NewDistSender(c, Identity{Tenant: 2})
	ctx := context.Background()
	k := tenantKey(2, "k")
	ds.Send(ctx, &kvpb.BatchRequest{Tenant: 2, Requests: []kvpb.Request{putReq(k, "v")}})

	desc, _ := c.LookupRange(k)
	lh, ok := func() (NodeID, bool) {
		c.mu.RLock()
		defer c.mu.RUnlock()
		return c.mu.ranges[desc.RangeID].group.Leaseholder()
	}()
	if !ok {
		t.Fatal("no leaseholder")
	}
	// Pick a replica that is not the leaseholder and read directly from it.
	var follower NodeID
	for _, r := range desc.Replicas {
		if r != lh {
			follower = r
			break
		}
	}
	ba := &kvpb.BatchRequest{Tenant: 2, FollowerRead: true, Timestamp: c.Clock().Now(),
		Requests: []kvpb.Request{getReq(k)}}
	resp, err := c.Batch(ctx, follower, Identity{Tenant: 2}, ba)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Responses[0].Exists || string(resp.Responses[0].Value) != "v" {
		t.Fatalf("follower read = %+v", resp.Responses[0])
	}
	// The same read without the follower flag redirects.
	ba2 := &kvpb.BatchRequest{Tenant: 2, Timestamp: c.Clock().Now(), Requests: []kvpb.Request{getReq(k)}}
	_, err = c.Batch(ctx, follower, Identity{Tenant: 2}, ba2)
	var nle *kvpb.NotLeaseholderError
	if !errors.As(err, &nle) || nle.Leaseholder != lh {
		t.Fatalf("non-follower read from follower = %v", err)
	}
}

func TestDistSenderChasesLeaseholder(t *testing.T) {
	c := newTestCluster(t, 3)
	ds := NewDistSender(c, Identity{Tenant: 2})
	ctx := context.Background()
	k := tenantKey(2, "k")
	if _, err := ds.Send(ctx, &kvpb.BatchRequest{Tenant: 2, Requests: []kvpb.Request{putReq(k, "v1")}}); err != nil {
		t.Fatal(err)
	}
	// Move the lease away; the DistSender's hint is now stale.
	desc, _ := c.LookupRange(k)
	c.mu.RLock()
	rs := c.mu.ranges[desc.RangeID]
	c.mu.RUnlock()
	lh, _ := rs.group.Leaseholder()
	var other NodeID
	for _, r := range desc.Replicas {
		if r != lh {
			other = r
			break
		}
	}
	if err := rs.group.TransferLease(lh, other); err != nil {
		t.Fatal(err)
	}
	_ = rs.group.CatchUp(other)
	if _, err := ds.Send(ctx, &kvpb.BatchRequest{Tenant: 2, Requests: []kvpb.Request{putReq(k, "v2")}}); err != nil {
		t.Fatalf("send after lease move: %v", err)
	}
	resp, _ := ds.Send(ctx, &kvpb.BatchRequest{Tenant: 2, Requests: []kvpb.Request{getReq(k)}})
	if string(resp.Responses[0].Value) != "v2" {
		t.Fatalf("read after lease move = %q", resp.Responses[0].Value)
	}
}

func TestWriteTooOldRetriedByServer(t *testing.T) {
	c := newTestCluster(t, 3)
	ds := NewDistSender(c, Identity{Tenant: 2})
	ctx := context.Background()
	k := tenantKey(2, "k")
	// Write at a high explicit timestamp.
	future := c.Clock().Now()
	future.WallTime += int64(time.Hour)
	if _, err := ds.Send(ctx, &kvpb.BatchRequest{Tenant: 2, Timestamp: future,
		Requests: []kvpb.Request{putReq(k, "future")}}); err != nil {
		t.Fatal(err)
	}
	// A current-time write conflicts (WriteTooOld) and surfaces to the
	// caller as a retriable error.
	_, err := ds.Send(ctx, &kvpb.BatchRequest{Tenant: 2, Requests: []kvpb.Request{putReq(k, "now")}})
	var wto *kvpb.WriteTooOldError
	if !errors.As(err, &wto) {
		t.Fatalf("conflicting write = %v", err)
	}
	if !kvpb.IsRetriable(err) {
		t.Fatal("WriteTooOld should be retriable")
	}
}

func TestLeaseCountsAndRebalance(t *testing.T) {
	c := newTestCluster(t, 3)
	// Create several ranges via tenant boundary splits.
	for tid := keys.TenantID(2); tid < 12; tid++ {
		if err := c.SplitAt(keys.MakeTenantPrefix(tid)); err != nil {
			t.Fatal(err)
		}
	}
	c.Tick() // acquire leases + rebalance
	for i := 0; i < 10; i++ {
		c.Tick()
	}
	counts := c.LeaseCounts()
	var total, max, min int
	min = 1 << 30
	for _, n := range []NodeID{1, 2, 3} {
		cnt := counts[n]
		total += cnt
		if cnt > max {
			max = cnt
		}
		if cnt < min {
			min = cnt
		}
	}
	if total != len(c.Descriptors()) {
		t.Fatalf("total leases %d != ranges %d", total, len(c.Descriptors()))
	}
	if max-min > 2 {
		t.Fatalf("leases unbalanced: %v", counts)
	}
}

func TestBatchEmptyRequests(t *testing.T) {
	c := newTestCluster(t, 1)
	resp, err := c.Batch(context.Background(), 1, Identity{Tenant: 2}, &kvpb.BatchRequest{Tenant: 2})
	if err != nil || len(resp.Responses) != 0 {
		t.Fatalf("empty batch = %+v, %v", resp, err)
	}
}

func TestBatchUnknownNode(t *testing.T) {
	c := newTestCluster(t, 1)
	_, err := c.Batch(context.Background(), 99, Identity{}, &kvpb.BatchRequest{})
	if err == nil {
		t.Fatal("unknown node should error")
	}
}

func TestNodeCPUAccounting(t *testing.T) {
	c := newTestCluster(t, 1, func(cfg *NodeConfig) {
		cfg.Cost = CostConfig{ReadBatchOverhead: 100 * time.Microsecond}
	})
	ds := NewDistSender(c, Identity{Tenant: 2})
	ctx := context.Background()
	n, _ := c.Node(1)
	before := n.CPUBusy()
	for i := 0; i < 10; i++ {
		ds.Send(ctx, &kvpb.BatchRequest{Tenant: 2, Requests: []kvpb.Request{getReq(tenantKey(2, "x"))}})
	}
	if n.CPUBusy()-before < 900*time.Microsecond {
		t.Fatalf("cpu busy delta = %v, want >= ~1ms", n.CPUBusy()-before)
	}
	if n.BatchCount() < 10 {
		t.Fatalf("batch count = %d", n.BatchCount())
	}
}

func TestConcurrentWritersDistinctKeys(t *testing.T) {
	c := newTestCluster(t, 3)
	ctx := context.Background()
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ds := NewDistSender(c, Identity{Tenant: 2})
			for i := 0; i < 25; i++ {
				k := tenantKey(2, fmt.Sprintf("g%d-k%d", g, i))
				if _, err := ds.Send(ctx, &kvpb.BatchRequest{Tenant: 2,
					Requests: []kvpb.Request{putReq(k, "v")}}); err != nil {
					errCh <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	ds := NewDistSender(c, Identity{Tenant: 2})
	span := keys.MakeTenantSpan(2)
	resp, err := ds.Send(ctx, &kvpb.BatchRequest{Tenant: 2, Requests: []kvpb.Request{
		{Method: kvpb.Scan, Key: span.Key, EndKey: span.EndKey}}})
	if err != nil || len(resp.Responses[0].Rows) != 200 {
		t.Fatalf("scan rows = %d err=%v", len(resp.Responses[0].Rows), err)
	}
}

func TestCostConfigShapes(t *testing.T) {
	cfg := DefaultCostConfig()
	readBatch := &kvpb.BatchRequest{Requests: []kvpb.Request{getReq(keys.Key("k"))}}
	writeBatch := &kvpb.BatchRequest{Requests: []kvpb.Request{putReq(keys.Key("k"), "v")}}
	if cfg.BatchCost(writeBatch, nil, 0, false) <= cfg.BatchCost(readBatch, nil, 0, false) {
		t.Fatal("writes should cost more than reads")
	}
	// Amortization: per-batch cost falls at high rates.
	low := cfg.BatchCost(readBatch, nil, 0, false)
	high := cfg.BatchCost(readBatch, nil, 1e6, false)
	if high >= low {
		t.Fatalf("amortization missing: %v >= %v", high, low)
	}
	// Remote responses cost more (marshaling).
	resp := &kvpb.BatchResponse{Responses: []kvpb.Response{{Rows: []kvpb.KeyValue{
		{Key: keys.Key("k"), Value: make([]byte, 10000)}}}}}
	local := cfg.BatchCost(readBatch, resp, 0, false)
	remote := cfg.BatchCost(readBatch, resp, 0, true)
	if remote <= local {
		t.Fatal("remote marshaling cost missing")
	}
}

func TestMetaDirectoryInvariants(t *testing.T) {
	var dir metaDirectory
	d1 := &RangeDescriptor{RangeID: 1, Span: keys.Span{Key: keys.Key("a"), EndKey: keys.Key("m")}}
	d2 := &RangeDescriptor{RangeID: 2, Span: keys.Span{Key: keys.Key("m"), EndKey: keys.Key("z")}}
	if err := dir.insert(d1); err != nil {
		t.Fatal(err)
	}
	if err := dir.insert(d2); err != nil {
		t.Fatal(err)
	}
	// Overlap rejected.
	if err := dir.insert(&RangeDescriptor{RangeID: 3, Span: keys.Span{Key: keys.Key("l"), EndKey: keys.Key("n")}}); err == nil {
		t.Fatal("overlapping insert allowed")
	}
	got, err := dir.lookup(keys.Key("hello"))
	if err != nil || got.RangeID != 1 {
		t.Fatalf("lookup = %+v, %v", got, err)
	}
	if _, err := dir.lookup(keys.Key("zz")); err == nil {
		t.Fatal("out-of-bounds lookup should fail")
	}
	// Replace keeps ordering.
	l := &RangeDescriptor{RangeID: 1, Span: keys.Span{Key: keys.Key("a"), EndKey: keys.Key("g")}}
	r := &RangeDescriptor{RangeID: 4, Span: keys.Span{Key: keys.Key("g"), EndKey: keys.Key("m")}}
	if err := dir.replace(1, l, r); err != nil {
		t.Fatal(err)
	}
	if err := dir.replace(99); err == nil {
		t.Fatal("replacing unknown range should fail")
	}
	all := dir.all()
	if len(all) != 3 || all[0].RangeID != 1 || all[1].RangeID != 4 || all[2].RangeID != 2 {
		t.Fatalf("directory after replace: %v", all)
	}
}

func TestCommandRoundTrip(t *testing.T) {
	c := command{Mutations: []mutation{
		{Kind: mutPut, Key: keys.Key("k"), Value: []byte("v"), TxnID: 7},
		{Kind: mutResolve, Key: keys.Key("k"), TxnID: 7, Commit: true},
	}}
	b, err := encodeCommand(c)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeCommand(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Mutations) != 2 || string(got.Mutations[0].Value) != "v" || !got.Mutations[1].Commit {
		t.Fatalf("round trip = %+v", got)
	}
	if _, err := decodeCommand([]byte("garbage")); err == nil {
		t.Fatal("garbage command should fail to decode")
	}
}

func TestDistSenderRedirectEventOnSpan(t *testing.T) {
	c := newTestCluster(t, 3)
	ds := NewDistSender(c, Identity{Tenant: 2})
	tr := trace.New(trace.Options{Clock: timeutil.NewRealClock(), Seed: 1})
	root := tr.StartRoot("test")
	ctx := trace.ContextWithSpan(context.Background(), root)
	k := tenantKey(2, "k")
	if _, err := ds.Send(ctx, &kvpb.BatchRequest{Tenant: 2, Requests: []kvpb.Request{putReq(k, "v1")}}); err != nil {
		t.Fatal(err)
	}
	// Move the lease so the DistSender's leaseholder hint goes stale.
	desc, _ := c.LookupRange(k)
	c.mu.RLock()
	rs := c.mu.ranges[desc.RangeID]
	c.mu.RUnlock()
	lh, _ := rs.group.Leaseholder()
	var other NodeID
	for _, r := range desc.Replicas {
		if r != lh {
			other = r
			break
		}
	}
	if err := rs.group.TransferLease(lh, other); err != nil {
		t.Fatal(err)
	}
	_ = rs.group.CatchUp(other)
	if _, err := ds.Send(ctx, &kvpb.BatchRequest{Tenant: 2, Requests: []kvpb.Request{putReq(k, "v2")}}); err != nil {
		t.Fatalf("send after lease move: %v", err)
	}
	root.Finish()

	// The redirected send's dist.send span must carry a structured
	// redirect event naming the stale target and the leaseholder hint.
	var sawRedirect bool
	for _, sp := range root.Children() {
		if sp.Op() != "dist.send" {
			continue
		}
		for _, ev := range sp.Events() {
			if strings.Contains(ev.Msg, "redirect: not leaseholder") {
				sawRedirect = true
			}
		}
	}
	if !sawRedirect {
		t.Fatalf("no redirect event recorded on any dist.send span")
	}
}
