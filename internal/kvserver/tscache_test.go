package kvserver

import (
	"fmt"
	"testing"

	"crdbserverless/internal/hlc"
	"crdbserverless/internal/keys"
)

func tcts(wall int64) hlc.Timestamp { return hlc.Timestamp{WallTime: wall} }

func TestTSCachePointReads(t *testing.T) {
	tc := newTSCache()
	k := keys.Key("k")
	if got := tc.maxReadOther(k, 0); !got.IsEmpty() {
		t.Fatalf("empty cache = %v", got)
	}
	tc.recordRead(keys.Span{Key: k}, tcts(10), 1)
	// Another txn's write below 10 sees the read.
	if got := tc.maxReadOther(k, 2); !got.Equal(tcts(10)) {
		t.Fatalf("maxReadOther = %v", got)
	}
	// The reading txn itself is not pushed by its own read.
	if got := tc.maxReadOther(k, 1); !got.IsEmpty() {
		t.Fatalf("own read pushed: %v", got)
	}
	// Higher reads replace lower ones; lower reads don't regress.
	tc.recordRead(keys.Span{Key: k}, tcts(20), 3)
	tc.recordRead(keys.Span{Key: k}, tcts(5), 4)
	if got := tc.maxReadOther(k, 0); !got.Equal(tcts(20)) {
		t.Fatalf("after overwrite = %v", got)
	}
	// Other keys unaffected.
	if got := tc.maxReadOther(keys.Key("other"), 0); !got.IsEmpty() {
		t.Fatalf("other key = %v", got)
	}
}

func TestTSCacheSpanReads(t *testing.T) {
	tc := newTSCache()
	tc.recordRead(keys.Span{Key: keys.Key("b"), EndKey: keys.Key("m")}, tcts(7), 9)
	if got := tc.maxReadOther(keys.Key("c"), 1); !got.Equal(tcts(7)) {
		t.Fatalf("span covered key = %v", got)
	}
	if got := tc.maxReadOther(keys.Key("z"), 1); !got.IsEmpty() {
		t.Fatalf("outside span = %v", got)
	}
	// The scanning txn is not pushed by its own scan.
	if got := tc.maxReadOther(keys.Key("c"), 9); !got.IsEmpty() {
		t.Fatalf("own scan pushed: %v", got)
	}
}

func TestTSCacheFoldIntoLowWater(t *testing.T) {
	tc := newTSCache()
	// Overflow the point capacity: evicted entries become the ownerless
	// low-water mark, a safe over-approximation.
	for i := 0; i <= tsCacheMaxPoints; i++ {
		k := keys.Key(fmt.Sprintf("k%06d", i))
		tc.recordRead(keys.Span{Key: k}, tcts(int64(i+1)), 5)
	}
	// A key evicted into the low-water mark still pushes — even the txn
	// that read it (ownership is lost in the fold).
	if got := tc.maxReadOther(keys.Key("unrelated"), 5); got.IsEmpty() {
		t.Fatal("low-water mark not applied")
	}
	// Span overflow folds too.
	tc2 := newTSCache()
	for i := 0; i <= tsCacheMaxSpans; i++ {
		tc2.recordRead(keys.Span{
			Key:    keys.Key(fmt.Sprintf("a%03d", i)),
			EndKey: keys.Key(fmt.Sprintf("a%03d\xff", i)),
		}, tcts(int64(i+1)), 5)
	}
	if got := tc2.maxReadOther(keys.Key("zzz"), 1); got.IsEmpty() {
		t.Fatal("span low-water mark not applied")
	}
}
