package kvserver

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"crdbserverless/internal/hlc"
	"crdbserverless/internal/keys"
	"crdbserverless/internal/lsm"
	"crdbserverless/internal/mvcc"
)

// Commands are the units replicated through a range's raft group. The
// leaseholder evaluates a batch into logical MVCC mutations under the range
// latch; every replica applies the same mutations deterministically.

// mutationKind enumerates replicated MVCC operations.
type mutationKind int

const (
	mutPut mutationKind = iota
	mutDelete
	mutResolve
)

// mutation is one replicated MVCC operation.
type mutation struct {
	Kind     mutationKind
	Key      keys.Key
	Ts       hlc.Timestamp
	TxnID    uint64
	Value    []byte
	Commit   bool          // for mutResolve
	CommitTs hlc.Timestamp // for mutResolve
}

// command is the replicated payload: an ordered list of mutations.
type command struct {
	Mutations []mutation
}

func encodeCommand(c command) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(c); err != nil {
		return nil, fmt.Errorf("kvserver: encoding command: %w", err)
	}
	return buf.Bytes(), nil
}

func decodeCommand(b []byte) (command, error) {
	var c command
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&c); err != nil {
		return command{}, fmt.Errorf("kvserver: decoding command: %w", err)
	}
	return c, nil
}

// applyMutations applies a decoded command to an engine. It is the state
// machine transition shared by every replica. It uses the replication-side
// MVCC variants: conflict checking already ran during evaluation on the
// leaseholder, and application must succeed deterministically — including
// when a recovered store re-applies a command whose effects partially
// survived a crash (see mvcc.ApplyPut).
func applyMutations(e *lsm.Engine, c command) error {
	for _, m := range c.Mutations {
		var err error
		switch m.Kind {
		case mutPut:
			err = mvcc.ApplyPut(e, m.Key, m.Ts, m.TxnID, m.Value)
		case mutDelete:
			err = mvcc.ApplyDelete(e, m.Key, m.Ts, m.TxnID)
		case mutResolve:
			err = mvcc.ResolveIntent(e, m.Key, m.TxnID, m.Commit, m.CommitTs)
		default:
			err = fmt.Errorf("kvserver: unknown mutation kind %d", m.Kind)
		}
		if err != nil {
			return err
		}
	}
	return nil
}
