package kvserver

import (
	"context"
	"errors"
	"sort"
	"sync"

	"crdbserverless/internal/keys"
	"crdbserverless/internal/kvpb"
	"crdbserverless/internal/trace"
)

// DistSender routes batches to the right ranges and nodes on behalf of one
// authenticated client (a SQL node). It keeps a range-descriptor cache fed
// by META lookups — which tolerate staleness, like the follower reads of
// §3.2.5 — and repairs the cache on NotLeaseholder / RangeKeyMismatch
// redirects.
type DistSender struct {
	cluster  *Cluster
	identity Identity

	mu struct {
		sync.Mutex
		// cache maps range start keys to descriptors (possibly stale).
		cache []*RangeDescriptor
		// leaseHints remembers the last known leaseholder per range.
		leaseHints map[RangeID]NodeID
	}
}

// NewDistSender returns a sender for the given identity.
func NewDistSender(c *Cluster, id Identity) *DistSender {
	ds := &DistSender{cluster: c, identity: id}
	ds.mu.leaseHints = make(map[RangeID]NodeID)
	return ds
}

// Identity returns the sender's authenticated identity.
func (ds *DistSender) Identity() Identity { return ds.identity }

// maxSendRetries bounds redirect-chasing per sub-batch.
const maxSendRetries = 16

// Send routes and executes the batch, merging per-range responses back into
// request order.
func (ds *DistSender) Send(ctx context.Context, ba *kvpb.BatchRequest) (*kvpb.BatchResponse, error) {
	ctx, sp := trace.StartSpan(ctx, "dist.send")
	defer sp.Finish()
	sp.SetAttr("dist.requests", len(ba.Requests))
	if ba.Timestamp.IsEmpty() && ba.Txn == nil {
		ba.Timestamp = ds.cluster.Clock().Now()
	}
	// Fast path: single range handles everything.
	groups, err := ds.splitByRange(ba.Requests)
	if err != nil {
		return nil, err
	}
	out := &kvpb.BatchResponse{Timestamp: ba.ReadTs()}
	responses := make([]kvpb.Response, len(ba.Requests))
	for _, g := range groups {
		sub := *ba
		sub.Requests = g.requests
		resp, err := ds.sendToRange(ctx, g.desc, &sub)
		if err != nil {
			return nil, err
		}
		for i, r := range resp.Responses {
			responses[g.indexes[i]] = r
		}
	}
	out.Responses = responses
	return out, nil
}

// requestGroup is a set of requests addressed to one range.
type requestGroup struct {
	desc     *RangeDescriptor
	requests []kvpb.Request
	indexes  []int // positions in the original batch
}

// splitByRange partitions requests by the (cached) range containing each
// request's start key. Scans that cross range boundaries are split into
// per-range sub-scans by sendToRange's mismatch handling.
func (ds *DistSender) splitByRange(reqs []kvpb.Request) ([]requestGroup, error) {
	byRange := make(map[RangeID]*requestGroup)
	var order []RangeID
	for i, r := range reqs {
		desc, err := ds.lookup(r.Key)
		if err != nil {
			return nil, err
		}
		g, ok := byRange[desc.RangeID]
		if !ok {
			g = &requestGroup{desc: desc}
			byRange[desc.RangeID] = g
			order = append(order, desc.RangeID)
		}
		g.requests = append(g.requests, r)
		g.indexes = append(g.indexes, i)
	}
	out := make([]requestGroup, 0, len(order))
	for _, id := range order {
		out = append(out, *byRange[id])
	}
	return out, nil
}

// sendToRange delivers a sub-batch to its range, chasing redirects and
// splitting scans at range boundaries as needed.
func (ds *DistSender) sendToRange(ctx context.Context, desc *RangeDescriptor, ba *kvpb.BatchRequest) (*kvpb.BatchResponse, error) {
	// Clip multi-range scans to the range and continue on the remainder.
	for attempt := 0; attempt < maxSendRetries; attempt++ {
		clipped, remainder := clipToRange(ba.Requests, desc.Span)
		sub := *ba
		sub.Requests = clipped
		target := ds.target(desc, ba)
		resp, err := ds.cluster.Batch(ctx, target, ds.identity, &sub)
		if err == nil {
			ds.noteLeaseholder(desc.RangeID, target)
			if len(remainder) == 0 {
				return resp, nil
			}
			// Continue the scan(s) on the following range(s).
			trace.SpanFromContext(ctx).Eventf("range lookup: scan continues past r%d", desc.RangeID)
			nextDesc, lerr := ds.lookupFresh(remainder[0].Key)
			if lerr != nil {
				return nil, lerr
			}
			rest := *ba
			rest.Requests = remainder
			restResp, rerr := ds.sendToRange(ctx, nextDesc, &rest)
			if rerr != nil {
				return nil, rerr
			}
			return mergeClippedResponses(ba.Requests, clipped, resp, restResp), nil
		}

		var nle *kvpb.NotLeaseholderError
		var rkm *kvpb.RangeKeyMismatchError
		var rnf *kvpb.RangeNotFoundError
		switch {
		case errors.As(err, &nle):
			trace.SpanFromContext(ctx).Eventf(
				"redirect: not leaseholder for r%d on n%d, leaseholder hint n%d (attempt %d)",
				desc.RangeID, target, nle.Leaseholder, attempt+1)
			if nle.Leaseholder != 0 {
				ds.noteLeaseholder(desc.RangeID, nle.Leaseholder)
			} else {
				ds.clearLeaseHint(desc.RangeID)
			}
		case errors.As(err, &rkm), errors.As(err, &rnf):
			// Stale cache: refresh from META and retry.
			trace.SpanFromContext(ctx).Eventf("range lookup: stale descriptor for r%d (attempt %d): %v",
				desc.RangeID, attempt+1, err)
			fresh, lerr := ds.lookupFresh(ba.Requests[0].Key)
			if lerr != nil {
				return nil, lerr
			}
			desc = fresh
		default:
			return nil, err
		}
	}
	return nil, errRetryExhausted
}

// target picks the node to contact: follower reads go to the first replica
// (in production, the nearest); everything else goes to the lease hint or,
// absent one, a replica that may acquire the lease.
func (ds *DistSender) target(desc *RangeDescriptor, ba *kvpb.BatchRequest) NodeID {
	if ba.FollowerRead && ba.IsReadOnly() {
		return desc.Replicas[0]
	}
	ds.mu.Lock()
	hint, ok := ds.mu.leaseHints[desc.RangeID]
	ds.mu.Unlock()
	if ok {
		return hint
	}
	return desc.Replicas[0]
}

func (ds *DistSender) noteLeaseholder(id RangeID, n NodeID) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	ds.mu.leaseHints[id] = n
}

func (ds *DistSender) clearLeaseHint(id RangeID) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	delete(ds.mu.leaseHints, id)
}

// lookup serves a descriptor from the cache, falling back to META.
func (ds *DistSender) lookup(key keys.Key) (*RangeDescriptor, error) {
	ds.mu.Lock()
	i := sort.Search(len(ds.mu.cache), func(i int) bool {
		return key.Less(ds.mu.cache[i].Span.Key)
	})
	if i > 0 && ds.mu.cache[i-1].ContainsKey(key) {
		d := ds.mu.cache[i-1]
		ds.mu.Unlock()
		return d, nil
	}
	ds.mu.Unlock()
	return ds.lookupFresh(key)
}

// lookupFresh reads META and updates the cache.
func (ds *DistSender) lookupFresh(key keys.Key) (*RangeDescriptor, error) {
	desc, err := ds.cluster.LookupRange(key)
	if err != nil {
		return nil, err
	}
	ds.mu.Lock()
	defer ds.mu.Unlock()
	// Evict overlapping stale entries, insert the fresh one, restore order.
	kept := ds.mu.cache[:0]
	for _, d := range ds.mu.cache {
		if !d.Span.Overlaps(desc.Span) {
			kept = append(kept, d)
		}
	}
	kept = append(kept, desc)
	sort.Slice(kept, func(i, j int) bool { return kept[i].Span.Key.Less(kept[j].Span.Key) })
	ds.mu.cache = kept
	return desc, nil
}

// clipToRange truncates requests to the range span. Point requests and
// in-range spans pass through; scans extending beyond the range are split
// into an in-range part and a remainder.
func clipToRange(reqs []kvpb.Request, span keys.Span) (clipped, remainder []kvpb.Request) {
	for _, r := range reqs {
		s := r.Span()
		if s.IsPoint() || !span.EndKey.Less(s.EndKey) {
			clipped = append(clipped, r)
			continue
		}
		head := r
		head.EndKey = span.EndKey.Clone()
		clipped = append(clipped, head)
		tail := r
		tail.Key = span.EndKey.Clone()
		remainder = append(remainder, tail)
	}
	return clipped, remainder
}

// mergeClippedResponses merges the responses of a clipped scan and its
// remainder back into one response per original request.
func mergeClippedResponses(orig, clipped []kvpb.Request, head, rest *kvpb.BatchResponse) *kvpb.BatchResponse {
	out := &kvpb.BatchResponse{Timestamp: head.Timestamp}
	restIdx := 0
	for i := range orig {
		r := head.Responses[i]
		// A clipped ranged request has its continuation in rest, in order.
		if len(orig[i].EndKey) != 0 && !orig[i].EndKey.Equal(clipped[i].EndKey) {
			if restIdx < len(rest.Responses) {
				cont := rest.Responses[restIdx]
				restIdx++
				if r.ResumeSpan == nil {
					r.Rows = append(r.Rows, cont.Rows...)
					r.ResumeSpan = cont.ResumeSpan
				}
			}
		}
		// Re-apply a scan's row limit across the merged parts.
		if max := orig[i].MaxKeys; max > 0 && int64(len(r.Rows)) > max {
			resume := keys.Span{Key: r.Rows[max].Key.Clone(), EndKey: orig[i].EndKey}
			r.Rows = r.Rows[:max]
			r.ResumeSpan = &resume
		}
		out.Responses = append(out.Responses, r)
	}
	return out
}
