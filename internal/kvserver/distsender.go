package kvserver

import (
	"context"
	"errors"
	"sort"
	"sync"

	"crdbserverless/internal/faultinject"
	"crdbserverless/internal/keys"
	"crdbserverless/internal/kvpb"
	"crdbserverless/internal/tenantobs"
	"crdbserverless/internal/trace"
)

// DistSender routes batches to the right ranges and nodes on behalf of one
// authenticated client (a SQL node). It keeps a range-descriptor cache fed
// by META lookups — which tolerate staleness, like the follower reads of
// §3.2.5 — and repairs the cache on NotLeaseholder / RangeKeyMismatch
// redirects.
//
// Send dispatches the per-range sub-batches of a multi-range batch
// concurrently on a bounded worker pool (production CRDB's per-range RPC
// fan-out), merging responses back into request order. Parallel dispatch
// preserves trace determinism: each sub-batch runs under a forked child
// span whose ID stream is drawn from the seeded tracer RNG in request
// order before any goroutine launches, and branches attach to the parent
// span in that same order, never in completion order.
type DistSender struct {
	cluster  *Cluster
	identity Identity
	// parallelism bounds concurrent sub-batch dispatch; 1 means
	// sequential.
	parallelism int
	// cacheLimit caps both the descriptor cache and the lease-hint map.
	cacheLimit int
	// faults, when non-nil, arms the sender's fault-injection sites
	// (dist.subbatch.err, dist.desc.stale).
	faults *faultinject.Registry
	// obs, when non-nil, counts each batch against the sender's tenant
	// (dist.tenant_batches).
	obs *tenantobs.Plane

	mu struct {
		sync.Mutex
		// cache maps range start keys to descriptors (possibly stale).
		cache []*RangeDescriptor
		// leaseHints remembers the last known leaseholder per range.
		leaseHints map[RangeID]NodeID
	}
}

// Config tunes a DistSender. The zero value means defaults everywhere.
type Config struct {
	// Parallelism bounds how many per-range sub-batches Send dispatches
	// concurrently. The effective fan-out is min(Parallelism, number of
	// ranges addressed). 0 means DefaultParallelism; 1 disables the
	// fan-out entirely (sequential dispatch in request order).
	Parallelism int
	// CacheLimit caps the range-descriptor cache and the lease-hint map.
	// Crossing the cap triggers a full reset (cheap, and correct: both
	// structures are best-effort hints repaired by redirects). 0 means
	// DefaultCacheLimit.
	CacheLimit int
	// Faults, when non-nil, arms the sender's fault-injection sites:
	// dist.subbatch.err fails a per-range sub-batch after the server applied
	// it (the response is dropped on the floor), and dist.desc.stale makes a
	// META lookup return a stale cached descriptor instead of the fresh one.
	Faults *faultinject.Registry
	// Obs, when non-nil, counts each Send against the sender's tenant on
	// the tenant observability plane.
	Obs *tenantobs.Plane
}

// DefaultParallelism is the default bound on concurrent per-range dispatch.
const DefaultParallelism = 8

// DefaultCacheLimit is the default cap on the descriptor cache and the
// lease-hint map. Long-lived senders on split-heavy clusters would
// otherwise grow those without bound.
const DefaultCacheLimit = 512

// NewDistSender returns a sender for the given identity. An optional Config
// tunes fan-out parallelism and cache bounds.
func NewDistSender(c *Cluster, id Identity, cfg ...Config) *DistSender {
	var conf Config
	if len(cfg) > 0 {
		conf = cfg[0]
	}
	if conf.Parallelism <= 0 {
		conf.Parallelism = DefaultParallelism
	}
	if conf.CacheLimit <= 0 {
		conf.CacheLimit = DefaultCacheLimit
	}
	ds := &DistSender{
		cluster:     c,
		identity:    id,
		parallelism: conf.Parallelism,
		cacheLimit:  conf.CacheLimit,
		faults:      conf.Faults,
		obs:         conf.Obs,
	}
	ds.mu.leaseHints = make(map[RangeID]NodeID)
	return ds
}

// Identity returns the sender's authenticated identity.
func (ds *DistSender) Identity() Identity { return ds.identity }

// maxSendRetries bounds redirect-chasing per range visited.
const maxSendRetries = 16

// Send routes and executes the batch, merging per-range responses back into
// request order.
func (ds *DistSender) Send(ctx context.Context, ba *kvpb.BatchRequest) (*kvpb.BatchResponse, error) {
	ctx, sp := trace.StartSpan(ctx, "dist.send")
	defer sp.Finish()
	sp.SetAttr("dist.requests", len(ba.Requests))
	ds.obs.Batch(ds.identity.Tenant)
	if ba.Timestamp.IsEmpty() && ba.Txn == nil {
		ba.Timestamp = ds.cluster.Clock().Now()
	}
	groups, err := ds.splitByRange(ba.Requests)
	if err != nil {
		return nil, err
	}
	// Pre-draw per-sub-batch fault decisions sequentially in group order —
	// the same discipline as the pre-forked trace spans — so parallel
	// dispatch cannot reorder schedule consultations. An injected sub-batch
	// failure surfaces after the server applied the sub-batch: the write
	// landed but the client never hears about it (a lost response).
	var injected []error
	if ds.faults != nil {
		injected = make([]error, len(groups))
		for i := range groups {
			injected[i] = ds.faults.MaybeErr("dist.subbatch.err")
		}
	}
	out := &kvpb.BatchResponse{Timestamp: ba.ReadTs()}
	responses := make([]kvpb.Response, len(ba.Requests))
	if len(groups) > 1 && ds.parallelism > 1 {
		sp.SetAttr("dist.ranges", len(groups))
		err = ds.sendParallel(ctx, sp, groups, ba, responses, injected)
	} else {
		err = ds.sendSequential(ctx, groups, ba, responses, injected)
	}
	if err != nil {
		return nil, err
	}
	out.Responses = responses
	return out, nil
}

// sendSequential dispatches the groups one at a time in request order — the
// single-range fast path and the Parallelism<=1 configuration.
func (ds *DistSender) sendSequential(ctx context.Context, groups []requestGroup, ba *kvpb.BatchRequest, responses []kvpb.Response, injected []error) error {
	for gi, g := range groups {
		sub := *ba
		sub.Requests = g.requests
		resp, err := ds.sendToRange(ctx, g.desc, &sub)
		if err == nil && injected != nil && injected[gi] != nil {
			// The sub-batch applied; its response is lost.
			err = injected[gi]
		}
		if err != nil {
			return err
		}
		for i, r := range resp.Responses {
			responses[g.indexes[i]] = r
		}
	}
	return nil
}

// sendParallel dispatches one goroutine per group on a bounded worker pool.
// Trace determinism: the per-branch dist.fanout spans (and the forked ID
// streams their descendants draw from) are created sequentially in group
// order before any goroutine starts, and responses merge by group index —
// completion order never leaks into the trace or the response.
func (ds *DistSender) sendParallel(ctx context.Context, sp *trace.Span, groups []requestGroup, ba *kvpb.BatchRequest, responses []kvpb.Response, injected []error) error {
	type branch struct {
		ctx  context.Context
		sp   *trace.Span
		resp *kvpb.BatchResponse
		err  error
	}
	branches := make([]branch, len(groups))
	for i := range groups {
		bsp := sp.StartForkedChild("dist.fanout")
		bsp.SetAttr("dist.range", groups[i].desc.RangeID)
		branches[i] = branch{ctx: trace.ContextWithSpan(ctx, bsp), sp: bsp}
	}
	workers := ds.parallelism
	if workers > len(groups) {
		workers = len(groups)
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i := range groups {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			b := &branches[i]
			sub := *ba
			sub.Requests = groups[i].requests
			b.resp, b.err = ds.sendToRange(b.ctx, groups[i].desc, &sub)
			if b.err == nil && injected != nil && injected[i] != nil {
				// The sub-batch applied; its response is lost.
				b.err = injected[i]
			}
			b.sp.Finish()
		}(i)
	}
	wg.Wait()
	for i, g := range groups {
		if branches[i].err != nil {
			return branches[i].err
		}
		for j, r := range branches[i].resp.Responses {
			responses[g.indexes[j]] = r
		}
	}
	return nil
}

// requestGroup is a set of requests addressed to one range.
type requestGroup struct {
	desc     *RangeDescriptor
	requests []kvpb.Request
	indexes  []int // positions in the original batch
}

// splitByRange partitions requests by the (cached) range containing each
// request's start key. The descriptor cache is consulted once for the whole
// batch under a single lock acquisition; only misses fall back to META via
// lookupFresh. Scans that cross range boundaries are split into per-range
// sub-scans by sendToRange's mismatch handling.
func (ds *DistSender) splitByRange(reqs []kvpb.Request) ([]requestGroup, error) {
	descs := make([]*RangeDescriptor, len(reqs))
	var misses []int
	ds.mu.Lock()
	for i, r := range reqs {
		if d := ds.cachedDescLocked(r.Key); d != nil {
			descs[i] = d
		} else {
			misses = append(misses, i)
		}
	}
	ds.mu.Unlock()
	var last *RangeDescriptor
	for _, i := range misses {
		if last != nil && last.ContainsKey(reqs[i].Key) {
			descs[i] = last
			continue
		}
		d, err := ds.lookupFresh(reqs[i].Key)
		if err != nil {
			return nil, err
		}
		descs[i] = d
		last = d
	}

	byRange := make(map[RangeID]*requestGroup)
	var order []RangeID
	for i, r := range reqs {
		desc := descs[i]
		g, ok := byRange[desc.RangeID]
		if !ok {
			g = &requestGroup{desc: desc}
			byRange[desc.RangeID] = g
			order = append(order, desc.RangeID)
		}
		g.requests = append(g.requests, r)
		g.indexes = append(g.indexes, i)
	}
	out := make([]requestGroup, 0, len(order))
	for _, id := range order {
		out = append(out, *byRange[id])
	}
	return out, nil
}

// sendToRange delivers a sub-batch to its range, chasing redirects and
// splitting scans at range boundaries as needed. Cross-range continuation is
// iterative — one segment per range visited, folded back together at the
// end — so a scan over many ranges neither grows the stack nor interleaves
// its trace events out of range order.
func (ds *DistSender) sendToRange(ctx context.Context, desc *RangeDescriptor, ba *kvpb.BatchRequest) (*kvpb.BatchResponse, error) {
	// segment records one range's worth of the walk: the requests pending
	// when the range was reached, how each was routed (sent, truncated, or
	// deferred to the continuation), and the range's response.
	type segment struct {
		pending []kvpb.Request
		clip    rangeClip
		resp    *kvpb.BatchResponse
		remIdx  []int
	}
	var segs []segment
	pending := ba.Requests
	for {
		var seg segment
		seg.pending = pending
		sent := false
		for attempt := 0; attempt < maxSendRetries; attempt++ {
			// Clip inside the retry loop: a stale-descriptor refresh can
			// change the range span and with it the routing.
			clip := clipToRange(pending, desc.Span)
			sub := *ba
			sub.Requests = clip.sent
			target := ds.target(desc, ba, attempt)
			resp, err := ds.cluster.Batch(ctx, target, ds.identity, &sub)
			if err == nil {
				ds.noteLeaseholder(desc.RangeID, target)
				seg.clip = clip
				seg.resp = resp
				sent = true
				break
			}

			var nle *kvpb.NotLeaseholderError
			var rkm *kvpb.RangeKeyMismatchError
			var rnf *kvpb.RangeNotFoundError
			switch {
			case errors.As(err, &nle):
				trace.SpanFromContext(ctx).Eventf(
					"redirect: not leaseholder for r%d on n%d, leaseholder hint n%d (attempt %d)",
					desc.RangeID, target, nle.Leaseholder, attempt+1)
				if nle.Leaseholder != 0 {
					ds.noteLeaseholder(desc.RangeID, nle.Leaseholder)
				} else {
					ds.clearLeaseHint(desc.RangeID)
				}
			case errors.As(err, &rkm), errors.As(err, &rnf):
				// Stale cache: refresh from META and retry. The fresh
				// descriptor is guaranteed to contain pending[0], so the
				// next attempt always sends at least one request.
				trace.SpanFromContext(ctx).Eventf("range lookup: stale descriptor for r%d (attempt %d): %v",
					desc.RangeID, attempt+1, err)
				fresh, lerr := ds.lookupFresh(pending[0].Key)
				if lerr != nil {
					return nil, lerr
				}
				desc = fresh
			default:
				return nil, err
			}
		}
		if !sent {
			return nil, errRetryExhausted
		}
		remainder, remIdx := seg.clip.continuation(pending, seg.resp)
		seg.remIdx = remIdx
		segs = append(segs, seg)
		if len(remainder) == 0 {
			break
		}
		// Continue on the range containing the next pending request. Every
		// iteration fully serves at least one request (or strictly advances
		// a scan's start key past desc.Span.EndKey), so the walk terminates.
		trace.SpanFromContext(ctx).Eventf("range lookup: batch continues past r%d", desc.RangeID)
		nextDesc, lerr := ds.lookupFresh(remainder[0].Key)
		if lerr != nil {
			return nil, lerr
		}
		desc = nextDesc
		pending = remainder
	}

	// Fold the per-range segments back into one response per original
	// request, right to left: each segment merges its continuation (the
	// already-folded tail) into its own responses. The last segment has no
	// continuation but still needs the merge pass — a truncated scan that
	// satisfied its limit in-range must have its resume window re-pointed
	// at the original scan end rather than the clip end.
	var merged *kvpb.BatchResponse
	for i := len(segs) - 1; i >= 0; i-- {
		merged = segs[i].clip.merge(segs[i].pending, segs[i].remIdx, segs[i].resp, merged)
	}
	return merged, nil
}

// target picks the node to contact: follower reads go to the first replica
// (in production, the nearest); everything else goes to the lease hint or,
// absent one, a replica that may acquire the lease.
func (ds *DistSender) target(desc *RangeDescriptor, ba *kvpb.BatchRequest, attempt int) NodeID {
	if ba.FollowerRead && ba.IsReadOnly() {
		return desc.Replicas[0]
	}
	ds.mu.Lock()
	hint, ok := ds.mu.leaseHints[desc.RangeID]
	ds.mu.Unlock()
	if ok {
		return hint
	}
	// No hint: rotate through the replicas across attempts. Always retrying
	// Replicas[0] exhausts the retry budget when that node is dead (it can
	// never acquire the lease) even though a live replica could serve — a
	// gap the chaos harness's liveness flaps exposed.
	return desc.Replicas[attempt%len(desc.Replicas)]
}

func (ds *DistSender) noteLeaseholder(id RangeID, n NodeID) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if _, ok := ds.mu.leaseHints[id]; !ok && len(ds.mu.leaseHints) >= ds.cacheLimit {
		// Full reset on overflow: hints are best-effort and repaired by
		// the next NotLeaseholder redirect.
		ds.mu.leaseHints = make(map[RangeID]NodeID)
	}
	ds.mu.leaseHints[id] = n
}

func (ds *DistSender) clearLeaseHint(id RangeID) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	delete(ds.mu.leaseHints, id)
}

// CacheSizes reports the current descriptor-cache and lease-hint entry
// counts (tests assert the bounds hold).
func (ds *DistSender) CacheSizes() (descriptors, leaseHints int) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	return len(ds.mu.cache), len(ds.mu.leaseHints)
}

// cachedDescLocked returns the cached descriptor containing key, or nil.
// Caller holds ds.mu.
func (ds *DistSender) cachedDescLocked(key keys.Key) *RangeDescriptor {
	i := sort.Search(len(ds.mu.cache), func(i int) bool {
		return key.Less(ds.mu.cache[i].Span.Key)
	})
	if i > 0 && ds.mu.cache[i-1].ContainsKey(key) {
		return ds.mu.cache[i-1]
	}
	return nil
}

// lookup serves a descriptor from the cache, falling back to META.
func (ds *DistSender) lookup(key keys.Key) (*RangeDescriptor, error) {
	ds.mu.Lock()
	d := ds.cachedDescLocked(key)
	ds.mu.Unlock()
	if d != nil {
		return d, nil
	}
	return ds.lookupFresh(key)
}

// lookupFresh reads META and updates the cache.
func (ds *DistSender) lookupFresh(key keys.Key) (*RangeDescriptor, error) {
	desc, err := ds.cluster.LookupRange(key)
	if err != nil {
		return nil, err
	}
	injectStale := ds.faults.Should("dist.desc.stale")
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if injectStale {
		// Stale-descriptor injection: serve the superseded cached entry
		// instead of the fresh one, modeling a lagging META follower read
		// (§3.2.5 tolerates exactly this). The misrouted batch draws a
		// RangeKeyMismatch redirect and the next lookup repairs the cache.
		if stale := ds.cachedDescLocked(key); stale != nil && stale.RangeID != desc.RangeID {
			return stale, nil
		}
	}
	// Evict overlapping stale entries, insert the fresh one, restore order.
	kept := ds.mu.cache[:0]
	for _, d := range ds.mu.cache {
		if !d.Span.Overlaps(desc.Span) {
			kept = append(kept, d)
		}
	}
	kept = append(kept, desc)
	if len(kept) > ds.cacheLimit {
		// Full reset on overflow, retaining only the fresh entry.
		kept = []*RangeDescriptor{desc}
	}
	sort.Slice(kept, func(i, j int) bool { return kept[i].Span.Key.Less(kept[j].Span.Key) })
	ds.mu.cache = kept
	return desc, nil
}

// rangeClip describes how one range's visit routed the pending requests. A
// request whose start key lies inside the range is sent (a scan extending
// past the range end is truncated at it first); a request whose start key
// lies in some other range — possible when a stale cache grouped points
// that a split has since scattered — is deferred wholly to the
// continuation.
type rangeClip struct {
	sent []kvpb.Request
	// sentIdx maps each pending index to its position in sent, or -1 if
	// the request was deferred.
	sentIdx []int
	// truncated marks pending indexes whose scan was cut at clipEnd.
	truncated []bool
	// clipEnd is the range's end key, where truncated scans resume.
	clipEnd keys.Key
}

// clipToRange routes requests for a visit to the range covering span.
func clipToRange(reqs []kvpb.Request, span keys.Span) rangeClip {
	c := rangeClip{
		sentIdx:   make([]int, len(reqs)),
		truncated: make([]bool, len(reqs)),
		clipEnd:   span.EndKey,
	}
	for i, r := range reqs {
		s := r.Span()
		if !span.ContainsKey(s.Key) {
			c.sentIdx[i] = -1
			continue
		}
		if s.IsPoint() || !span.EndKey.Less(s.EndKey) {
			c.sentIdx[i] = len(c.sent)
			c.sent = append(c.sent, r)
			continue
		}
		head := r
		head.EndKey = span.EndKey.Clone()
		c.sentIdx[i] = len(c.sent)
		c.sent = append(c.sent, head)
		c.truncated[i] = true
	}
	return c
}

// continuation builds the requests still pending after this range's
// response: deferred requests pass through unchanged, and truncated scans
// that have not yet hit their row limit resume at clipEnd with a
// correspondingly reduced limit. remIdx maps each pending index to its
// position in the continuation, or -1.
func (c *rangeClip) continuation(reqs []kvpb.Request, resp *kvpb.BatchResponse) (remainder []kvpb.Request, remIdx []int) {
	remIdx = make([]int, len(reqs))
	for i, r := range reqs {
		remIdx[i] = -1
		si := c.sentIdx[i]
		if si < 0 {
			remIdx[i] = len(remainder)
			remainder = append(remainder, r)
			continue
		}
		if !c.truncated[i] {
			continue
		}
		tail := r
		tail.Key = c.clipEnd.Clone()
		if r.MaxKeys > 0 {
			got := int64(len(resp.Responses[si].Rows))
			if got >= r.MaxKeys {
				// Limit already satisfied inside this range; merge will
				// surface the resume point without visiting further ranges.
				continue
			}
			tail.MaxKeys = r.MaxKeys - got
		}
		remIdx[i] = len(remainder)
		remainder = append(remainder, tail)
	}
	return remainder, remIdx
}

// merge folds the continuation's (already-merged) responses into this
// range's responses, yielding one response per pending request.
func (c *rangeClip) merge(reqs []kvpb.Request, remIdx []int, head, rest *kvpb.BatchResponse) *kvpb.BatchResponse {
	out := &kvpb.BatchResponse{Timestamp: head.Timestamp}
	for i := range reqs {
		si := c.sentIdx[i]
		if si < 0 {
			out.Responses = append(out.Responses, rest.Responses[remIdx[i]])
			continue
		}
		r := head.Responses[si]
		if c.truncated[i] {
			if ri := remIdx[i]; ri >= 0 {
				cont := rest.Responses[ri]
				r.Rows = append(r.Rows, cont.Rows...)
				r.ResumeSpan = cont.ResumeSpan
			} else if r.ResumeSpan != nil {
				// The range-local scan stopped at its limit; re-point the
				// resume window at the original scan end, not the clip end.
				r.ResumeSpan = &keys.Span{Key: r.ResumeSpan.Key, EndKey: reqs[i].EndKey}
			} else {
				// Limit satisfied exactly at the clip boundary: resume from
				// the next range even though the server saw no overflow.
				r.ResumeSpan = &keys.Span{Key: c.clipEnd.Clone(), EndKey: reqs[i].EndKey}
			}
		}
		// Re-apply the scan's row limit across the merged parts.
		if max := reqs[i].MaxKeys; max > 0 && int64(len(r.Rows)) > max {
			resume := keys.Span{Key: r.Rows[max].Key.Clone(), EndKey: reqs[i].EndKey}
			r.Rows = r.Rows[:max]
			r.ResumeSpan = &resume
		}
		out.Responses = append(out.Responses, r)
	}
	return out
}
