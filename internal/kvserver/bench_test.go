package kvserver

import (
	"context"
	"fmt"
	"testing"

	"crdbserverless/internal/keys"
	"crdbserverless/internal/kvpb"
)

// BenchmarkKVBatchGet8Ranges measures a 64-request Get batch spread across 8
// ranges under both fan-out modes; each sub-batch costs ~5ms of executor
// time, so the benchmark reflects dispatch overlap, not Go overhead.
func BenchmarkKVBatchGet8Ranges(b *testing.B) {
	for _, mode := range []struct {
		name        string
		parallelism int
	}{
		{"sequential", 1},
		{"parallel", DefaultParallelism},
	} {
		b.Run(mode.name, func(b *testing.B) {
			c, want := newFanoutCluster(b)
			ds := NewDistSender(c, Identity{Tenant: 2}, Config{Parallelism: mode.parallelism})
			ba := batchOf64Gets(want)
			ctx := context.Background()
			// Warm the descriptor cache so the measurement is dispatch only.
			if _, err := ds.Send(ctx, ba); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ds.Send(ctx, ba); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkKVScanMultiRange measures a full-keyspace scan crossing 8 ranges
// (the iterative continuation walk) with cheap per-request costs.
func BenchmarkKVScanMultiRange(b *testing.B) {
	c := newTestCluster(b, 3)
	ds := NewDistSender(c, Identity{Tenant: 2})
	want := loadKeys(b, ds, 64)
	splitTenantKeyspace(b, c, want[8], want[16], want[24], want[32], want[40], want[48], want[56])
	span := keys.MakeTenantSpan(2)
	ba := &kvpb.BatchRequest{Tenant: 2, Requests: []kvpb.Request{
		{Method: kvpb.Scan, Key: span.Key, EndKey: span.EndKey}}}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := ds.Send(ctx, ba)
		if err != nil {
			b.Fatal(err)
		}
		if len(resp.Responses[0].Rows) != 64 {
			b.Fatalf("scan rows = %d, want 64", len(resp.Responses[0].Rows))
		}
	}
}

// BenchmarkKVPutThroughput measures single-key write dispatch.
func BenchmarkKVPutThroughput(b *testing.B) {
	c := newTestCluster(b, 3)
	ds := NewDistSender(c, Identity{Tenant: 2})
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := tenantKey(2, fmt.Sprintf("bench-%06d", i))
		if _, err := ds.Send(ctx, &kvpb.BatchRequest{Tenant: 2, Requests: []kvpb.Request{
			putReq(k, "v")}}); err != nil {
			b.Fatal(err)
		}
	}
}
