package kvserver

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"crdbserverless/internal/faultinject"
	"crdbserverless/internal/hlc"
	"crdbserverless/internal/keys"
	"crdbserverless/internal/kvpb"
	"crdbserverless/internal/mvcc"
	"crdbserverless/internal/raftlite"
	"crdbserverless/internal/rowfilter"
	"crdbserverless/internal/tenantobs"
	"crdbserverless/internal/timeutil"
	"crdbserverless/internal/trace"
)

// Identity is the authenticated identity a KV client (SQL node) presents —
// the role of the per-tenant mTLS certificate (§3.2.3).
type Identity struct {
	Tenant keys.TenantID
}

// Authorizer checks that a request from an authenticated identity may touch
// the keyspace it addresses. The cluster-virtualization layer (internal/core)
// supplies the implementation.
type Authorizer interface {
	Authorize(id Identity, ba *kvpb.BatchRequest) error
}

// ClusterConfig configures a Cluster.
type ClusterConfig struct {
	Clock timeutil.Clock
	// ReplicationFactor is the number of replicas per range (capped by the
	// node count). Defaults to 3.
	ReplicationFactor int
	// SplitSizeThreshold triggers a size-based split once a range has
	// absorbed this many logical write bytes. Defaults to 64 MiB.
	SplitSizeThreshold int64
	// LeaseDuration for range leases. Defaults to 9s.
	LeaseDuration time.Duration
	// Faults, when non-nil, arms fault-injection sites in every range's
	// replication group (see internal/faultinject).
	Faults *faultinject.Registry
	// DisableGroupCommit turns off proposal coalescing in every range's
	// replication group: each Propose runs its own commit round, the
	// pre-pipelining baseline (the write-path analogue of the LSM's
	// DisableWritePipelining).
	DisableGroupCommit bool
	// CommitOverhead is the fixed per-commit-round cost charged inside each
	// group's critical section (quorum RTT + log fsync). Zero — the default
	// and every deterministic configuration — charges nothing; benchmarks
	// set it to make the cost group commit amortizes visible.
	CommitOverhead time.Duration
	// CommitMetrics, when non-nil, is shared by every range's replication
	// group (raft.commit.batch_size and friends).
	CommitMetrics *raftlite.CommitMetrics
	// RaftLogRetention is the number of committed entries each range's
	// replication group keeps behind the slowest live replica. 0 (the
	// default) never truncates; with a positive value a replica that falls
	// behind the truncation point — a store revived after a crash — rejoins
	// via state snapshot instead of log replay.
	RaftLogRetention uint64
	// LoadSplitQPSThreshold enables load-based splitting: a range whose
	// decayed QPS estimate exceeds it splits at the load-weighted sample
	// median. 0 (the default) disables load splits.
	LoadSplitQPSThreshold float64
	// LoadHalfLife is the half-life of the per-range and per-node load
	// EWMAs. Defaults to 10s.
	LoadHalfLife time.Duration
	// LoadRebalancing enables QPS-weighted lease placement: the tick moves
	// leases off nodes whose decayed load dominates a replica peer's, and
	// the count-based balancer leaves load-significant ranges to it.
	LoadRebalancing bool
	// MergeEnabled turns on cold-range merging: a range whose load and size
	// stay below the hysteresis thresholds for MergeDelay merges into its
	// right neighbor's span.
	MergeEnabled bool
	// MergeQPSFraction is the hysteresis gap between split and merge: a
	// range is merge-cold only while its QPS sits below
	// LoadSplitQPSThreshold×MergeQPSFraction. Defaults to 0.25.
	MergeQPSFraction float64
	// MergeDelay is how long a range must stay cold before it merges
	// (re-checked once after this delay). Defaults to 30s.
	MergeDelay time.Duration
	// RangeMetrics, when non-nil, counts split/merge/transfer decisions.
	RangeMetrics *RangeMetrics
	// Obs, when non-nil, receives per-tenant range-management events.
	Obs *tenantobs.Plane
}

// rangeState is one range: descriptor, replication group, and stats.
type rangeState struct {
	// latch serializes batch evaluation on the range (reads and writes):
	// read evaluation records into the timestamp cache and write evaluation
	// consults it, and the two must not interleave.
	latch sync.Mutex
	desc  *RangeDescriptor
	group *raftlite.Group
	// descAtomic mirrors desc for readers that run under the replication
	// group's lock (snapshot generation and application): they must not take
	// the cluster lock — splitLocked holds it while calling into the group —
	// so they read the descriptor through this pointer instead.
	descAtomic atomic.Pointer[RangeDescriptor]
	// tsc is the range's timestamp cache (lost-update protection).
	tsc *tsCache
	// load is the range's decayed QPS/write-byte signal and key reservoir.
	load *rangeLoad
	// dirty guards duplicate changed-set insertions between ticks: only the
	// first batch after a drain pays the index lock.
	dirty atomic.Bool

	statsMu      sync.Mutex
	writtenBytes int64
	// loadMoveAt is when the load balancer last moved this range's lease.
	// Until the node counters re-converge from observed traffic (a few
	// half-lives), the transferred weight is double-counted on the target
	// and re-moving the range would thrash.
	loadMoveAt time.Time
}

// engineSM adapts a node's engine to the raftlite.SnapshotStateMachine
// interface for one (range, node) replica.
type engineSM struct {
	n  *Node
	rs *rangeState
}

// Apply implements raftlite.StateMachine. After the command's mutations it
// persists the applied index under the range's raw applied key, so a store
// recovering from a crash can tell the replication group how far its durable
// state actually reached (Cluster.RecoverNode).
func (sm engineSM) Apply(index uint64, cmd []byte) error {
	c, err := decodeCommand(cmd)
	if err != nil {
		return err
	}
	e := sm.n.Engine()
	if err := applyMutations(e, c); err != nil {
		return err
	}
	desc := sm.rs.descAtomic.Load()
	return e.Set(appliedKey(desc.RangeID), keys.EncodeUint64(nil, index))
}

// Cluster is a set of KV nodes hosting the partitioned, replicated keyspace.
type Cluster struct {
	cfg   ClusterConfig
	clock timeutil.Clock
	hlc   *hlc.Clock

	// nodesMu guards the node map separately from mu: liveness callbacks
	// fire from lease checks that may run while mu is held.
	nodesMu struct {
		sync.RWMutex
		nodes     map[NodeID]*Node
		nodeOrder []NodeID
	}
	mu struct {
		sync.RWMutex
		ranges      map[RangeID]*rangeState
		nextRangeID RangeID
		auth        Authorizer
		rowDecoder  RowDecoder
	}
	dir metaDirectory
	// idx is the incremental maintenance index (per-node lease/replica
	// aggregates, renewal and merge heaps, the changed set). Lock order:
	// (latches) → c.mu → idx.mu; idx.mu is a strict leaf.
	idx *loadIndex

	tickMu    sync.Mutex
	lastTick  TickStats
	tickCount int64
}

// NewCluster creates a cluster from the given nodes with a single range
// covering the entire keyspace.
func NewCluster(cfg ClusterConfig, nodes []*Node) (*Cluster, error) {
	if len(nodes) == 0 {
		return nil, errors.New("kvserver: cluster needs at least one node")
	}
	if cfg.Clock == nil {
		cfg.Clock = timeutil.NewRealClock()
	}
	if cfg.ReplicationFactor <= 0 {
		cfg.ReplicationFactor = 3
	}
	if cfg.SplitSizeThreshold <= 0 {
		cfg.SplitSizeThreshold = 64 << 20
	}
	if cfg.LeaseDuration <= 0 {
		cfg.LeaseDuration = 9 * time.Second
	}
	if cfg.LoadHalfLife <= 0 {
		cfg.LoadHalfLife = 10 * time.Second
	}
	if cfg.MergeQPSFraction <= 0 {
		cfg.MergeQPSFraction = 0.25
	}
	if cfg.MergeDelay <= 0 {
		cfg.MergeDelay = 30 * time.Second
	}
	c := &Cluster{cfg: cfg, clock: cfg.Clock, hlc: hlc.NewClock(cfg.Clock), idx: newLoadIndex()}
	c.nodesMu.nodes = make(map[NodeID]*Node)
	c.mu.ranges = make(map[RangeID]*rangeState)
	c.mu.nextRangeID = 1
	for _, n := range nodes {
		if _, dup := c.nodesMu.nodes[n.id]; dup {
			return nil, fmt.Errorf("kvserver: duplicate node id %d", n.id)
		}
		c.nodesMu.nodes[n.id] = n
		c.nodesMu.nodeOrder = append(c.nodesMu.nodeOrder, n.id)
	}
	// Initial range spans the whole keyspace.
	span := keys.Span{Key: keys.MinKey.Next(), EndKey: keys.MaxKey}
	if _, err := c.createRangeLocked(span, c.pickReplicasLocked()); err != nil {
		return nil, err
	}
	return c, nil
}

// Clock returns the cluster's HLC.
func (c *Cluster) Clock() *hlc.Clock { return c.hlc }

// WallClock returns the underlying physical clock.
func (c *Cluster) WallClock() timeutil.Clock { return c.clock }

// SetAuthorizer installs the SQL/KV boundary authorization check.
func (c *Cluster) SetAuthorizer(a Authorizer) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.mu.auth = a
}

// RowDecoder decodes a stored row value into the column accessor the
// row-filter evaluator consumes. The SQL layer registers its codec here;
// without one, pushed-down filters are ignored and full rows are returned
// (the pre-push-down behavior).
type RowDecoder func(value []byte) (rowfilter.RowAccessor, error)

// SetRowDecoder registers the row codec used for filter push-down (§8).
func (c *Cluster) SetRowDecoder(dec RowDecoder) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.mu.rowDecoder = dec
}

func (c *Cluster) rowDecoder() RowDecoder {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.mu.rowDecoder
}

// Node returns the node with the given ID.
func (c *Cluster) Node(id NodeID) (*Node, bool) {
	c.nodesMu.RLock()
	defer c.nodesMu.RUnlock()
	n, ok := c.nodesMu.nodes[id]
	return n, ok
}

// Nodes returns all nodes in insertion order.
func (c *Cluster) Nodes() []*Node {
	c.nodesMu.RLock()
	defer c.nodesMu.RUnlock()
	out := make([]*Node, 0, len(c.nodesMu.nodeOrder))
	for _, id := range c.nodesMu.nodeOrder {
		out = append(out, c.nodesMu.nodes[id])
	}
	return out
}

// liveness reports node health for lease decisions.
func (c *Cluster) liveness(id raftlite.NodeID) bool {
	n, ok := c.Node(id)
	return ok && n.Live()
}

// pickReplicasLocked chooses replica nodes for a new range, preferring an
// even spread (round-robin from a rotating offset).
func (c *Cluster) pickReplicasLocked() []NodeID {
	c.nodesMu.RLock()
	defer c.nodesMu.RUnlock()
	order := c.nodesMu.nodeOrder
	rf := c.cfg.ReplicationFactor
	if rf > len(order) {
		rf = len(order)
	}
	start := int(c.mu.nextRangeID) % len(order)
	out := make([]NodeID, 0, rf)
	for i := 0; i < rf; i++ {
		out = append(out, order[(start+i)%len(order)])
	}
	return out
}

// createRangeLocked registers a new range over span with the given replicas
// and inserts it into the directory.
func (c *Cluster) createRangeLocked(span keys.Span, replicas []NodeID) (*rangeState, error) {
	rs, err := c.newRangeStateLocked(span, replicas)
	if err != nil {
		return nil, err
	}
	if err := c.dir.insert(rs.desc); err != nil {
		c.idx.unregisterRange(rs.desc.RangeID, rs.desc.Replicas)
		delete(c.mu.ranges, rs.desc.RangeID)
		return nil, err
	}
	return rs, nil
}

// newRangeStateLocked allocates a range (ID, group, state) without touching
// the directory; split commits the directory change atomically via replace.
func (c *Cluster) newRangeStateLocked(span keys.Span, replicas []NodeID) (*rangeState, error) {
	id := c.mu.nextRangeID
	c.mu.nextRangeID++
	// The range state exists before its group: each replica's state machine
	// reads the descriptor (and writes the applied key) through it.
	rs := &rangeState{
		desc: &RangeDescriptor{
			RangeID:  id,
			Span:     span,
			Replicas: append([]NodeID(nil), replicas...),
		},
		tsc:  newTSCache(),
		load: newRangeLoad(id),
	}
	rs.descAtomic.Store(rs.desc)
	sms := make([]raftlite.StateMachine, len(replicas))
	for i, nid := range replicas {
		n, ok := c.Node(nid)
		if !ok {
			return nil, fmt.Errorf("kvserver: unknown node %d", nid)
		}
		sms[i] = engineSM{n: n, rs: rs}
	}
	group, err := raftlite.NewGroup(raftlite.Config{
		RangeID:            int64(id),
		Clock:              c.clock,
		Liveness:           c.liveness,
		LeaseDuration:      c.cfg.LeaseDuration,
		Faults:             c.cfg.Faults,
		DisableGroupCommit: c.cfg.DisableGroupCommit,
		CommitOverhead:     c.cfg.CommitOverhead,
		CommitMetrics:      c.cfg.CommitMetrics,
		LogRetention:       c.cfg.RaftLogRetention,
	}, replicas, sms)
	if err != nil {
		return nil, err
	}
	rs.group = group
	c.mu.ranges[id] = rs
	// Register in the maintenance index: replica aggregates plus a
	// needs-lease entry the next tick drains.
	c.idx.registerRange(id, replicas)
	return rs, nil
}

// rangeByID resolves a range ID to its live state (nil once merged away).
func (c *Cluster) rangeByID(id RangeID) *rangeState {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.mu.ranges[id]
}

// rangeFor returns the range state containing key.
func (c *Cluster) rangeFor(key keys.Key) (*rangeState, error) {
	desc, err := c.dir.lookup(key)
	if err != nil {
		return nil, err
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	rs, ok := c.mu.ranges[desc.RangeID]
	if !ok {
		return nil, &kvpb.RangeNotFoundError{RangeID: int64(desc.RangeID)}
	}
	return rs, nil
}

// LookupRange returns the descriptor for the range containing key — the META
// range lookup. Reads of META tolerate staleness (follower reads, §3.2.5):
// callers cache results and rely on redirects when ranges move.
func (c *Cluster) LookupRange(key keys.Key) (*RangeDescriptor, error) {
	return c.dir.lookup(key)
}

// Descriptors returns all range descriptors in key order.
func (c *Cluster) Descriptors() []*RangeDescriptor { return c.dir.all() }

// SplitAt splits the range containing key so that key becomes a range start.
// Used both by size/load-based splitting and by the cluster-virtualization
// layer to place tenant boundaries on range boundaries (§3.2.1: the KV layer
// enforces that no two tenants share a range).
func (c *Cluster) SplitAt(key keys.Key) error {
	rs, err := c.rangeFor(key)
	if err != nil {
		return err
	}
	rs.latch.Lock()
	defer rs.latch.Unlock()
	_, err = c.splitLocked(rs, key)
	return err
}

// splitLocked performs the split with rs.latch held. It reports whether a
// split actually happened (false when key is already a boundary).
func (c *Cluster) splitLocked(rs *rangeState, key keys.Key) (bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	desc := rs.desc
	if key.Equal(desc.Span.Key) {
		return false, nil // already a boundary
	}
	if !desc.Span.ContainsKey(key) {
		return false, &kvpb.RangeKeyMismatchError{RequestedKey: key, ActualSpan: desc.Span}
	}
	rightSpan := keys.Span{Key: key.Clone(), EndKey: desc.Span.EndKey}
	// The right side inherits the parent's replicas: data stays in place.
	right, err := c.newRangeStateLocked(rightSpan, desc.Replicas)
	if err != nil {
		return false, err
	}
	// The right group continues the parent's history: its data already lives
	// in every replica's engine at the parent's applied indexes. Seed it at
	// the parent's commit so a replica that was lagging in the parent reads
	// as lagging here too and heals via snapshot — a fresh group at commit
	// zero would consider such a replica caught up and its right-span state
	// would stay stale forever once the parent's log truncates.
	applied := make(map[NodeID]uint64, len(desc.Replicas))
	for _, nid := range desc.Replicas {
		if a, err := rs.group.AppliedIndex(nid); err == nil {
			applied[nid] = a
		}
	}
	right.group.SeedState(rs.group.CommitIndex(), applied)
	// Shrink the left side and commit both descriptors atomically.
	newLeft := desc.clone()
	newLeft.Span.EndKey = key.Clone()
	newLeft.Generation++
	if err := c.dir.replace(desc.RangeID, newLeft, right.desc); err != nil {
		c.idx.unregisterRange(right.desc.RangeID, right.desc.Replicas)
		delete(c.mu.ranges, right.desc.RangeID)
		return false, err
	}
	rs.desc = newLeft
	rs.descAtomic.Store(newLeft)
	// The new right range's lease starts with the parent's leaseholder so
	// serving continues without interruption.
	if lh, ok := rs.group.Leaseholder(); ok {
		if err := right.group.AcquireLease(lh); err == nil {
			c.idx.noteLease(right.desc.RangeID, lh, c.renewAt())
		}
	}
	// Split halves the parent's accumulated size statistic and partitions
	// the load signal at the boundary.
	rs.statsMu.Lock()
	rs.writtenBytes /= 2
	right.writtenBytes = rs.writtenBytes
	rs.statsMu.Unlock()
	rs.load.halve(key, right.load)
	c.markChanged(rs)
	c.markChanged(right)
	if c.cfg.MergeEnabled {
		// Both halves are merge candidates once the hysteresis delay
		// passes — a split that stops being hot collapses back.
		due := c.clock.Now().Add(c.cfg.MergeDelay)
		c.idx.scheduleMergeCheck(desc.RangeID, due)
		c.idx.scheduleMergeCheck(right.desc.RangeID, due)
	}
	return true, nil
}

// markChanged adds the range to the next tick's changed set, paying the
// index lock only on the first change since the last drain.
func (c *Cluster) markChanged(rs *rangeState) {
	if rs.dirty.CompareAndSwap(false, true) {
		c.idx.markChanged(rs.descAtomic.Load().RangeID)
	}
}

// renewAt is when a lease granted now should be proactively renewed.
func (c *Cluster) renewAt() time.Time {
	return c.clock.Now().Add(c.cfg.LeaseDuration / 2)
}

// splitPoint chooses a split key for the range: the load-weighted sample
// median when the reservoir has seen enough traffic, else a bounded scan's
// midpoint on the leaseholder's engine. Never scans more than
// middleKeyScanLimit rows.
func (c *Cluster) splitPoint(rs *rangeState, leaseholder NodeID) keys.Key {
	span := rs.descAtomic.Load().Span
	if mid := rs.load.splitKey(span); mid != nil {
		return mid
	}
	n, ok := c.Node(leaseholder)
	if !ok {
		return nil
	}
	return boundedMiddleKey(n, span)
}

// maybeSizeSplit splits rs at the load-weighted (or sampled-midpoint) key if
// it has absorbed enough writes.
func (c *Cluster) maybeSizeSplit(rs *rangeState, leaseholder NodeID) {
	rs.statsMu.Lock()
	over := rs.writtenBytes > c.cfg.SplitSizeThreshold
	rs.statsMu.Unlock()
	if !over {
		return
	}
	mid := c.splitPoint(rs, leaseholder)
	if mid == nil {
		return
	}
	rs.latch.Lock()
	defer rs.latch.Unlock()
	// Size splits are opportunistic; a failure is retried at the next
	// threshold crossing.
	if did, err := c.splitLocked(rs, mid); err == nil && did {
		c.cfg.RangeMetrics.sizeSplit()
		c.rangeEvent(mid, "split.size")
	}
}

// maybeLoadSplit splits rs at the load-weighted sample median once its
// decayed QPS crosses the configured threshold.
func (c *Cluster) maybeLoadSplit(rs *rangeState, leaseholder NodeID) {
	thr := c.cfg.LoadSplitQPSThreshold
	if thr <= 0 {
		return
	}
	if rs.load.qps(c.clock.Now(), c.cfg.LoadHalfLife) < thr {
		return
	}
	mid := rs.load.splitKey(rs.descAtomic.Load().Span)
	if mid == nil {
		return // single hot key or not enough samples: nothing to split
	}
	rs.latch.Lock()
	defer rs.latch.Unlock()
	if did, err := c.splitLocked(rs, mid); err == nil && did {
		c.cfg.RangeMetrics.loadSplit()
		c.rangeEvent(mid, "split.load")
	}
}

// rangeEvent forwards a range-management decision to the per-tenant
// observability plane (no-op without one).
func (c *Cluster) rangeEvent(key keys.Key, kind string) {
	if c.cfg.Obs == nil {
		return
	}
	if tid, _, ok := keys.DecodeTenantPrefix(key); ok {
		c.cfg.Obs.RangeEvent(tid, kind)
	}
}

// LeaseCounts returns the number of valid range leases held by each node —
// the per-node lease series of Fig 12.
func (c *Cluster) LeaseCounts() map[NodeID]int {
	c.mu.RLock()
	ranges := make([]*rangeState, 0, len(c.mu.ranges))
	for _, rs := range c.mu.ranges {
		ranges = append(ranges, rs)
	}
	c.mu.RUnlock()
	sort.Slice(ranges, func(i, j int) bool { return ranges[i].desc.RangeID < ranges[j].desc.RangeID })
	out := make(map[NodeID]int)
	for _, rs := range ranges {
		if lh, ok := rs.group.Leaseholder(); ok {
			out[lh]++
		}
	}
	return out
}

// NodeLeaseLoads returns each node's effective load — decayed leaseholder
// QPS-weight inflated by queueing occupancy, the signal the load-based
// lease and replica balancers compare. Pairs with LeaseCounts the way
// QPS-weighted placement pairs with count balancing.
func (c *Cluster) NodeLeaseLoads() map[NodeID]float64 {
	now := c.clock.Now()
	out := make(map[NodeID]float64)
	for _, n := range c.Nodes() {
		out[n.id] = c.effectiveLoad(n, now, c.cfg.LoadHalfLife)
	}
	return out
}

// RangeLoadInfo describes one range's placement and load signal — the
// per-range view behind load-management debugging and benchmarks.
type RangeLoadInfo struct {
	RangeID     RangeID
	Start       keys.Key
	Leaseholder NodeID // 0 if leaderless
	QPS         float64
}

// RangeLoads returns every range's leaseholder and decayed-QPS estimate,
// ordered by RangeID.
func (c *Cluster) RangeLoads() []RangeLoadInfo {
	now := c.clock.Now()
	out := make([]RangeLoadInfo, 0, 16)
	for _, rs := range c.rangesByID() {
		info := RangeLoadInfo{
			RangeID: rs.desc.RangeID,
			Start:   rs.descAtomic.Load().Span.Key,
			QPS:     rs.load.qps(now, c.cfg.LoadHalfLife),
		}
		if lh, ok := rs.group.Leaseholder(); ok {
			info.Leaseholder = lh
		}
		out = append(out, info)
	}
	return out
}

// Tick runs periodic cluster maintenance: node ticks (AIMD, token refills,
// capacity estimation), lease upkeep, cold-range merge checks, and lease
// rebalancing. Range work is driven entirely by the maintenance index —
// needs-lease drains, dead-holder lease sets, due renewals, and the
// changed-since-last-tick set — so an idle cluster's tick visits no ranges
// at all, regardless of how many exist.
func (c *Cluster) Tick() {
	for _, n := range c.Nodes() {
		n.Tick()
	}
	now := c.clock.Now()
	var stats TickStats

	// Leaderless ranges (new splits/merges, failed prior attempts). All
	// index drains return RangeID order, not map order: lease maintenance
	// triggers catch-up applies, and those must consult fault-injection
	// sites in a deterministic sequence for seeded chaos runs to reproduce.
	for _, id := range c.idx.drainNeedsLease() {
		if rs := c.rangeByID(id); rs != nil {
			stats.RangesVisited++
			c.ensureLease(rs, &stats)
		}
	}

	// Leases recorded on nodes that are no longer live: sweep them to a
	// live replica. Visits only the dead nodes' lease sets.
	c.nodesMu.RLock()
	nodeIDs := append([]NodeID(nil), c.nodesMu.nodeOrder...)
	c.nodesMu.RUnlock()
	for _, nid := range nodeIDs {
		if c.liveness(nid) {
			continue
		}
		for _, id := range c.idx.leasesOf(nid) {
			if rs := c.rangeByID(id); rs != nil {
				stats.RangesVisited++
				c.ensureLease(rs, &stats)
			}
		}
	}

	// Proactive renewals at the lease half-life.
	for _, id := range c.idx.dueRenewals(now) {
		if rs := c.rangeByID(id); rs != nil {
			stats.RangesVisited++
			c.ensureLease(rs, &stats)
		}
	}

	// Ranges whose load moved since the last tick: clear their dirty flags
	// and queue cold ones for a merge re-check after the hysteresis delay.
	changed := c.idx.drainChanged()
	for _, id := range changed {
		rs := c.rangeByID(id)
		if rs == nil {
			continue
		}
		stats.RangesVisited++
		rs.dirty.Store(false)
		if c.cfg.MergeEnabled && c.isMergeCold(rs, now) {
			c.idx.scheduleMergeCheck(id, now.Add(c.cfg.MergeDelay))
		}
	}

	// Cold-range merges whose hysteresis delay expired and that are still
	// cold get merged into their right neighbor.
	if c.cfg.MergeEnabled {
		for _, id := range c.idx.dueMergeChecks(now) {
			rs := c.rangeByID(id)
			if rs == nil {
				continue
			}
			stats.RangesVisited++
			if !c.isMergeCold(rs, now) {
				// Still hot or large: keep watching at the hysteresis
				// cadence rather than dropping the candidate.
				c.idx.scheduleMergeCheck(id, now.Add(c.cfg.MergeDelay))
				continue
			}
			if did, err := c.mergeRight(rs); err == nil && did {
				stats.Merges++
			}
		}
	}

	c.rebalanceLeases(now, changed, &stats)

	c.tickMu.Lock()
	c.lastTick = stats
	c.tickCount++
	c.tickMu.Unlock()
}

// LastTickStats reports what the most recent Tick did — the O(changed)
// evidence the fleet benchmark and tests gate on.
func (c *Cluster) LastTickStats() TickStats {
	c.tickMu.Lock()
	defer c.tickMu.Unlock()
	return c.lastTick
}

// ensureLease makes sure the range has a live leaseholder, preferring the
// current holder (extend) and falling back to the first live replica
// (AcquireLease applies any entries the taker missed before granting). The
// outcome is recorded in the maintenance index either way.
func (c *Cluster) ensureLease(rs *rangeState, stats *TickStats) {
	id := rs.descAtomic.Load().RangeID
	if lh, ok := rs.group.Leaseholder(); ok {
		if n, exists := c.Node(lh); exists && n.Live() {
			stats.LeaseOps++
			if err := rs.group.ExtendLease(lh); err == nil {
				c.idx.noteLease(id, lh, c.renewAt())
				return
			}
		}
	}
	for _, nid := range rs.group.Replicas() {
		if c.liveness(nid) {
			stats.LeaseOps++
			if err := rs.group.AcquireLease(nid); err == nil {
				c.idx.noteLease(id, nid, c.renewAt())
				return
			}
		}
	}
	// No live replica could take the lease; retry next tick.
	c.idx.markNeedsLease(id)
}

// isMergeCold reports whether the range's load and size sit below the merge
// hysteresis thresholds.
func (c *Cluster) isMergeCold(rs *rangeState, now time.Time) bool {
	rs.statsMu.Lock()
	small := rs.writtenBytes <= c.cfg.SplitSizeThreshold/2
	rs.statsMu.Unlock()
	if !small {
		return false
	}
	if c.cfg.LoadSplitQPSThreshold <= 0 {
		// No QPS threshold configured: size alone decides.
		return true
	}
	return rs.load.qps(now, c.cfg.LoadHalfLife) < c.cfg.LoadSplitQPSThreshold*c.cfg.MergeQPSFraction
}

// rebalanceLeases moves leases toward an even spread (mechanism (a) of
// §5.1.1, operating at a longer time scale than admission). With
// LoadRebalancing enabled a first pass moves the hottest changed ranges off
// QPS-overloaded nodes; the count pass then evens out lease counts using the
// index aggregates, walking only the most-loaded node's lease set.
func (c *Cluster) rebalanceLeases(now time.Time, changed []RangeID, stats *TickStats) {
	c.nodesMu.RLock()
	liveIDs := make([]NodeID, 0, len(c.nodesMu.nodeOrder))
	for _, nid := range c.nodesMu.nodeOrder {
		if n := c.nodesMu.nodes[nid]; n != nil && n.Live() {
			liveIDs = append(liveIDs, nid)
		}
	}
	c.nodesMu.RUnlock()
	if len(liveIDs) < 2 {
		return
	}
	sort.Slice(liveIDs, func(i, j int) bool { return liveIDs[i] < liveIDs[j] })
	halfLife := c.cfg.LoadHalfLife

	if c.cfg.LoadRebalancing {
		c.rebalanceLeasesByLoad(now, changed, halfLife, stats)
	}

	// Count pass: even the spread using the index's O(1) per-node counts.
	counts := make(map[NodeID]int, len(liveIDs))
	for _, nid := range liveIDs {
		counts[nid] = c.idx.leaseCount(nid)
	}
	for iter := 0; iter < 128; iter++ {
		maxN, minN := liveIDs[0], liveIDs[0]
		for _, nid := range liveIDs[1:] {
			if counts[nid] > counts[maxN] {
				maxN = nid
			}
			if counts[nid] < counts[minN] {
				minN = nid
			}
		}
		if counts[maxN]-counts[minN] <= 1 {
			return
		}
		moved := false
		for _, id := range c.idx.leasesOf(maxN) {
			rs := c.rangeByID(id)
			if rs == nil {
				continue
			}
			if c.cfg.LoadRebalancing && rs.load.weightAt(now, halfLife) >= loadSignificanceWeight {
				continue // the load pass owns hot ranges
			}
			lh, ok := rs.group.Leaseholder()
			if !ok || lh != maxN {
				continue
			}
			best := lh
			for _, nid := range rs.group.Replicas() {
				if c.liveness(nid) && counts[nid] < counts[best] {
					best = nid
				}
			}
			if best == lh || counts[lh]-counts[best] <= 1 {
				continue
			}
			// TransferLease catches the target up before handing over.
			if err := rs.group.TransferLease(lh, best); err == nil {
				c.idx.noteLease(id, best, c.renewAt())
				counts[lh]--
				counts[best]++
				stats.LeaseTransfers++
				moved = true
				break
			}
		}
		if !moved {
			return
		}
	}
}

// effectiveLoad is a node's placement-comparable load: delivered QPS-weight
// inflated by smoothed per-vCPU occupancy. A node pushed past capacity
// delivers no more QPS — the overload shows up only as queue growth — so
// comparing delivered weight alone under-reports saturated nodes and the
// balancer converges to a placement that still drowns them. The occupancy
// term (Little's law over the decayed batch node-seconds) keeps growing
// with congestion and restores the signal.
func (c *Cluster) effectiveLoad(n *Node, now time.Time, halfLife time.Duration) float64 {
	eff, _ := c.nodeLoad(n, now, halfLife)
	return eff
}

// nodeLoad returns a node's effective load and the inflation factor applied
// to its delivered weight. The factor is capped: occupancy is a noisy
// instantaneous-ish signal, and an uncapped multiplier would let one
// congested sample dominate every placement comparison for a half-life.
func (c *Cluster) nodeLoad(n *Node, now time.Time, halfLife time.Duration) (eff, inflation float64) {
	raw := n.leaseLoad.value(now, halfLife)
	inflation = 1.0
	if halfLife > 0 {
		occupancy := n.waitLoad.value(now, halfLife) * math.Ln2 / halfLife.Seconds()
		inflation += occupancy / float64(n.vcpus)
		if inflation > 4 {
			inflation = 4
		}
	}
	return raw * inflation, inflation
}

// rebalanceLeasesByLoad moves the hottest recently-changed ranges' leases
// off nodes whose decayed QPS load dominates a peer's. A lease transfer to a
// colder replica peer is the cheap first choice; when every peer is hot too
// — a split-up hot range's pieces all inherit the parent's replica set, so
// the peers heat up together — the leaseholder's replica moves to the
// globally coldest non-member node instead, and the lease travels with it.
func (c *Cluster) rebalanceLeasesByLoad(now time.Time, changed []RangeID, halfLife time.Duration, stats *TickStats) {
	const maxMovesPerTick = 4
	const maxReplicaMovesPerTick = 2
	type cand struct {
		id RangeID
		w  float64
	}
	cands := make([]cand, 0, len(changed))
	for _, id := range changed {
		rs := c.rangeByID(id)
		if rs == nil {
			continue
		}
		if w := rs.load.weightAt(now, halfLife); w >= loadRebalanceMinWeight {
			cands = append(cands, cand{id: id, w: w})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].w != cands[j].w {
			return cands[i].w > cands[j].w
		}
		return cands[i].id < cands[j].id
	})
	moves := 0
	for _, cd := range cands {
		if moves >= maxMovesPerTick {
			return
		}
		rs := c.rangeByID(cd.id)
		if rs == nil {
			continue
		}
		rs.statsMu.Lock()
		cooling := !rs.loadMoveAt.IsZero() && now.Sub(rs.loadMoveAt) < 3*halfLife
		rs.statsMu.Unlock()
		if cooling {
			continue
		}
		lh, ok := rs.group.Leaseholder()
		if !ok {
			continue
		}
		lhNode, ok := c.Node(lh)
		if !ok || !lhNode.Live() {
			continue
		}
		lhLoad, lhInfl := c.nodeLoad(lhNode, now, halfLife)
		// The candidate's weight is delivered QPS too, deflated by the same
		// saturation that deflates its node's counter: compare hysteresis in
		// the inflated space or every inflated diff clears a raw threshold
		// and the balancer thrashes.
		wEff := cd.w * lhInfl
		best, bestLoad := lh, lhLoad
		var bestNode *Node
		for _, nid := range rs.group.Replicas() {
			if nid == lh || !c.liveness(nid) {
				continue
			}
			n, exists := c.Node(nid)
			if !exists {
				continue
			}
			if l := c.effectiveLoad(n, now, halfLife); l < bestLoad {
				best, bestLoad, bestNode = nid, l, n
			}
		}
		// Move only when the holder's load exceeds the target's by more
		// than the range's own weight — otherwise the transfer would just
		// swap which node is hot (thrash).
		// Two-part hysteresis: the holder must dominate the target by the
		// candidate's own inflated weight (or the move just swaps which node
		// is hot) and by a 20% multiplicative margin (or late-stage noise
		// keeps the balancer shuffling proportionally-equal nodes forever).
		if best != lh && lhLoad-bestLoad > 1.5*wEff && lhLoad > 1.2*bestLoad {
			if err := rs.group.TransferLease(lh, best); err != nil {
				continue
			}
			c.idx.noteLease(cd.id, best, c.renewAt())
			rs.statsMu.Lock()
			rs.loadMoveAt = now
			rs.statsMu.Unlock()
			// Credit the target now; let the source decay to its reduced
			// traffic naturally. Debiting the source would make it look
			// colder than its true load for a half-life, attracting a
			// compensating move and oscillating load between node pairs —
			// overstating both sides instead pauses the balancer until the
			// counters re-converge on observed traffic.
			bestNode.leaseLoad.add(now, halfLife, cd.w)
			stats.LoadLeaseTransfers++
			c.cfg.RangeMetrics.loadLeaseTransfer()
			c.rangeEvent(rs.descAtomic.Load().Span.Key, "lease.load")
			moves++
			continue
		}
		// No replica peer can absorb the load. Look for a colder node
		// outside the replica set: move the leaseholder's replica there
		// (MoveReplica re-grants the departing holder's lease at the
		// destination), bounded tighter than lease transfers because a
		// replica move copies span data.
		if stats.LoadReplicaMoves >= maxReplicaMovesPerTick {
			continue
		}
		coldest, coldLoad := NodeID(0), lhLoad
		var coldNode *Node
		for _, n := range c.Nodes() {
			if n.id == lh || !n.Live() || hasReplica(rs, n.id) {
				continue
			}
			if l := c.effectiveLoad(n, now, halfLife); l < coldLoad {
				coldest, coldLoad, coldNode = n.id, l, n
			}
		}
		if coldest == 0 || lhLoad-coldLoad <= 1.5*wEff || lhLoad <= 1.2*coldLoad {
			continue
		}
		if err := c.MoveReplica(cd.id, lh, coldest); err != nil {
			continue
		}
		rs.statsMu.Lock()
		rs.loadMoveAt = now
		rs.statsMu.Unlock()
		coldNode.leaseLoad.add(now, halfLife, cd.w)
		stats.LoadReplicaMoves++
		c.cfg.RangeMetrics.loadReplicaMove()
		c.rangeEvent(rs.descAtomic.Load().Span.Key, "replica.load")
		moves++
	}
}

// ReplicaStatus reports one replica's replication progress.
type ReplicaStatus struct {
	RangeID RangeID
	Node    NodeID
	Applied uint64
	Commit  uint64
}

// ReplicaStatuses returns the applied and commit indexes of every replica of
// every range, ordered by (range, replica). The chaos harness's convergence
// invariant — all applied state reaches the commit index after quiescence —
// reads these.
func (c *Cluster) ReplicaStatuses() []ReplicaStatus {
	var out []ReplicaStatus
	for _, rs := range c.rangesByID() {
		commit := rs.group.CommitIndex()
		for _, nid := range rs.group.Replicas() {
			applied, err := rs.group.AppliedIndex(nid)
			if err != nil {
				continue
			}
			out = append(out, ReplicaStatus{
				RangeID: rs.desc.RangeID, Node: nid, Applied: applied, Commit: commit,
			})
		}
	}
	return out
}

// RaftSnapshots returns the total number of snapshot catch-ups performed
// across every range's replication group — replicas that fell behind the
// truncated log (crashed stores) and rejoined via state transfer.
func (c *Cluster) RaftSnapshots() int64 {
	var total int64
	for _, rs := range c.rangesByID() {
		total += rs.group.Snapshots()
	}
	return total
}

// CatchUpReplicas applies pending committed entries on every replica of every
// range — the quiescence step before checking convergence, standing in for
// the raft log replay a revived node performs.
func (c *Cluster) CatchUpReplicas() error {
	var firstErr error
	for _, rs := range c.rangesByID() {
		for _, nid := range rs.group.Replicas() {
			if err := rs.group.CatchUp(nid); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

// rangesByID snapshots the range states in RangeID order.
func (c *Cluster) rangesByID() []*rangeState {
	c.mu.RLock()
	ranges := make([]*rangeState, 0, len(c.mu.ranges))
	for _, rs := range c.mu.ranges {
		ranges = append(ranges, rs)
	}
	c.mu.RUnlock()
	sort.Slice(ranges, func(i, j int) bool { return ranges[i].desc.RangeID < ranges[j].desc.RangeID })
	return ranges
}

// RunGC reclaims old MVCC versions across every range and node, retaining
// versions newer than keepAfter (and always the newest committed version and
// all intents). It returns the number of versions removed. This is the
// storage-reclamation path behind "the only cost is for storage" (§4.2.3):
// suspended tenants' data keeps getting compacted down.
func (c *Cluster) RunGC(keepAfter hlc.Timestamp) (int, error) {
	removed := 0
	c.mu.RLock()
	ranges := make([]*rangeState, 0, len(c.mu.ranges))
	for _, rs := range c.mu.ranges {
		ranges = append(ranges, rs)
	}
	c.mu.RUnlock()
	// GC visits ranges in RangeID order so injected storage faults land on a
	// deterministic range regardless of map iteration.
	sort.Slice(ranges, func(i, j int) bool { return ranges[i].desc.RangeID < ranges[j].desc.RangeID })
	for _, rs := range ranges {
		rs.latch.Lock()
		for _, nid := range rs.desc.Replicas {
			n, ok := c.Node(nid)
			if !ok {
				continue
			}
			nRemoved, err := mvcc.GCOldVersions(n.Engine(), rs.desc.Span, keepAfter)
			if err != nil {
				rs.latch.Unlock()
				return removed, err
			}
			removed += nRemoved
		}
		rs.latch.Unlock()
	}
	return removed, nil
}

// TenantStorageBytes reports the logical bytes a tenant stores (latest
// visible versions, summed over one replica) — the storage-billing input for
// suspended tenants (§6.2: storage is the only cost at zero compute).
func (c *Cluster) TenantStorageBytes(tenant keys.TenantID) (int64, error) {
	span := keys.MakeTenantSpan(tenant)
	c.mu.RLock()
	ranges := make([]*rangeState, 0)
	for _, rs := range c.mu.ranges {
		if rs.desc.Span.Overlaps(span) {
			ranges = append(ranges, rs)
		}
	}
	c.mu.RUnlock()
	sort.Slice(ranges, func(i, j int) bool { return ranges[i].desc.RangeID < ranges[j].desc.RangeID })
	var total int64
	readTs := c.hlc.Now()
	for _, rs := range ranges {
		// Read from any replica; storage accounting tolerates staleness.
		n, ok := c.Node(rs.desc.Replicas[0])
		if !ok {
			continue
		}
		overlap := rs.desc.Span
		if overlap.Key.Less(span.Key) {
			overlap.Key = span.Key
		}
		if span.EndKey.Less(overlap.EndKey) {
			overlap.EndKey = span.EndKey
		}
		res, err := mvcc.Scan(n.Engine(), overlap, readTs, 0, 0)
		if err != nil {
			return 0, err
		}
		for _, kv := range res.Rows {
			total += int64(len(kv.Key) + len(kv.Value))
		}
	}
	return total, nil
}

// Close shuts down all nodes.
func (c *Cluster) Close() {
	for _, n := range c.Nodes() {
		n.Close()
	}
}

var errRetryExhausted = errors.New("kvserver: internal retry budget exhausted")

// Batch executes a batch on the given node — the KV RPC entry point. The
// node must hold the lease for the addressed range (or the batch must be a
// follower read on a node holding a replica). Authorization (§3.2.3) runs
// before any data access.
func (c *Cluster) Batch(ctx context.Context, nodeID NodeID, id Identity, ba *kvpb.BatchRequest) (*kvpb.BatchResponse, error) {
	ctx, sp := trace.StartSpan(ctx, "kv.eval")
	defer sp.Finish()
	sp.SetAttr("kv.node", nodeID)
	n, ok := c.Node(nodeID)
	if !ok {
		return nil, fmt.Errorf("kvserver: unknown node %d", nodeID)
	}
	c.mu.RLock()
	auth := c.mu.auth
	c.mu.RUnlock()
	if auth != nil {
		if err := auth.Authorize(id, ba); err != nil {
			return nil, err
		}
	}
	if len(ba.Requests) == 0 {
		return &kvpb.BatchResponse{Timestamp: ba.ReadTs()}, nil
	}

	// Locate the range; every request in the batch must fall within it
	// (DistSender splits batches at range boundaries).
	rs, err := c.rangeFor(ba.Requests[0].Key)
	if err != nil {
		return nil, err
	}
	for _, r := range ba.Requests {
		span := r.Span()
		if !rs.desc.Span.ContainsKey(span.Key) {
			return nil, &kvpb.RangeKeyMismatchError{RequestedKey: span.Key, ActualSpan: rs.desc.Span}
		}
		if !span.IsPoint() && rs.desc.Span.EndKey.Less(span.EndKey) {
			return nil, &kvpb.RangeKeyMismatchError{RequestedKey: span.EndKey, ActualSpan: rs.desc.Span}
		}
	}

	// Lease check. Follower reads only need a local replica.
	if ba.FollowerRead && ba.IsReadOnly() {
		if !hasReplica(rs, nodeID) {
			return nil, &kvpb.RangeNotFoundError{RangeID: int64(rs.desc.RangeID)}
		}
	} else {
		lh, ok := rs.group.Leaseholder()
		if !ok {
			// Try to acquire for ourselves.
			// AcquireLease itself catches the node up to the commit index
			// before granting, so the new leaseholder serves current state.
			if err := rs.group.AcquireLease(nodeID); err != nil {
				var nle *kvpb.NotLeaseholderError
				if errors.As(err, &nle) {
					return nil, nle
				}
				return nil, &kvpb.NotLeaseholderError{RangeID: int64(rs.desc.RangeID)}
			}
			c.idx.noteLease(rs.desc.RangeID, nodeID, c.renewAt())
		} else if lh != nodeID {
			return nil, &kvpb.NotLeaseholderError{RangeID: int64(rs.desc.RangeID), Leaseholder: lh}
		}
	}

	sp.SetAttr("kv.range", rs.desc.RangeID)

	// Admission control (§5.1): writes pass the write queue, everything
	// passes the CPU queue.
	admitStart := c.clock.Now()
	if err := n.admitWrite(ctx, ba); err != nil {
		return nil, err
	}
	releaseCPU, err := n.admitCPU(ctx, ba)
	if err != nil {
		return nil, err
	}
	sp.SetAttr("admission.wait", c.clock.Since(admitStart))

	resp, evalErr := c.evaluateBatch(ctx, n, rs, ba)
	// Charge ground-truth CPU: the work happens whether or not evaluation
	// errored (conflict checks consume CPU too), but successful responses
	// carry the payload costs.
	cost := n.chargeCPU(ba, resp, !ba.Colocated)
	releaseCPU(cost)
	if evalErr != nil {
		return nil, evalErr
	}
	// Load accounting: decay-and-add the range and leaseholder counters,
	// sample the first request key into the split reservoir, and flag the
	// range for the next maintenance tick. Split checks run outside the
	// range latch.
	var writeBytes int64
	if !ba.IsReadOnly() {
		for _, r := range ba.Requests {
			writeBytes += int64(len(r.Key) + len(r.Value))
		}
	}
	now := c.clock.Now()
	rs.load.record(now, c.cfg.LoadHalfLife, len(ba.Requests), writeBytes, ba.Requests[0].Key)
	n.leaseLoad.add(now, c.cfg.LoadHalfLife, float64(len(ba.Requests)))
	n.waitLoad.add(now, c.cfg.LoadHalfLife, now.Sub(admitStart).Seconds())
	c.markChanged(rs)
	c.maybeLoadSplit(rs, nodeID)
	if !ba.IsReadOnly() {
		c.maybeSizeSplit(rs, nodeID)
	}
	return resp, nil
}

func hasReplica(rs *rangeState, nodeID NodeID) bool {
	for _, r := range rs.descAtomic.Load().Replicas {
		if r == nodeID {
			return true
		}
	}
	return false
}

// evaluateBatch runs the batch against the node's engine, proposing writes
// through the range's replication group.
func (c *Cluster) evaluateBatch(ctx context.Context, n *Node, rs *rangeState, ba *kvpb.BatchRequest) (*kvpb.BatchResponse, error) {
	readTs := ba.ReadTs()
	if readTs.IsEmpty() {
		readTs = c.hlc.Now()
	}
	var txnID uint64
	if ba.Txn != nil {
		txnID = ba.Txn.ID
	}

	resp := &kvpb.BatchResponse{Timestamp: readTs}

	// All evaluation runs under the range latch: reads record into the
	// timestamp cache and writes consult it, so a write can never land
	// below a timestamp at which another transaction already read the key
	// (the lost-update protection CRDB implements with its timestamp
	// cache). Follower reads are intentionally stale and skip the cache.
	rs.latch.Lock()
	defer rs.latch.Unlock()

	// Reads record into the timestamp cache only after the whole batch has
	// been checked: a batch's own reads must not push its own writes (they
	// all happen atomically at one timestamp).
	var readSpans []keys.Span
	defer func() {
		if ba.FollowerRead {
			return // intentionally stale; not a serializable read point
		}
		for _, sp := range readSpans {
			rs.tsc.recordRead(sp, readTs, txnID)
		}
	}()

	if ba.IsReadOnly() {
		for _, r := range ba.Requests {
			out, err := evalRead(n, r, readTs, txnID, c.rowDecoder())
			if err != nil {
				return nil, err
			}
			readSpans = append(readSpans, r.Span())
			resp.Responses = append(resp.Responses, out)
		}
		return resp, nil
	}

	// checkWrite combines the timestamp-cache push with MVCC conflicts.
	checkWrite := func(key keys.Key) error {
		if cached := rs.tsc.maxReadOther(key, txnID); !cached.Less(readTs) {
			return &kvpb.WriteTooOldError{Key: key.Clone(), ActualTs: cached.Next()}
		}
		return mvcc.CheckWriteConflict(n.Engine(), key, readTs, txnID)
	}

	var cmd command
	var writtenBytes int64
	for _, r := range ba.Requests {
		switch r.Method {
		case kvpb.Get, kvpb.Scan:
			out, err := evalRead(n, r, readTs, txnID, c.rowDecoder())
			if err != nil {
				return nil, err
			}
			readSpans = append(readSpans, r.Span())
			resp.Responses = append(resp.Responses, out)
		case kvpb.Put:
			if err := checkWrite(r.Key); err != nil {
				return nil, err
			}
			cmd.Mutations = append(cmd.Mutations, mutation{
				Kind: mutPut, Key: r.Key.Clone(), Ts: readTs, TxnID: txnID, Value: r.Value,
			})
			writtenBytes += int64(len(r.Key) + len(r.Value))
			resp.Responses = append(resp.Responses, kvpb.Response{Method: r.Method})
		case kvpb.Delete:
			if err := checkWrite(r.Key); err != nil {
				return nil, err
			}
			cmd.Mutations = append(cmd.Mutations, mutation{
				Kind: mutDelete, Key: r.Key.Clone(), Ts: readTs, TxnID: txnID,
			})
			writtenBytes += int64(len(r.Key))
			resp.Responses = append(resp.Responses, kvpb.Response{Method: r.Method})
		case kvpb.DeleteRange:
			res, err := mvcc.Scan(n.Engine(), r.Span(), readTs, txnID, 0)
			if err != nil {
				return nil, err
			}
			// Report the deleted keys so a transactional caller can track
			// (and later resolve) the intents this request lays down.
			readSpans = append(readSpans, r.Span())
			deleted := kvpb.Response{Method: r.Method}
			for _, kv := range res.Rows {
				if err := checkWrite(kv.Key); err != nil {
					return nil, err
				}
				cmd.Mutations = append(cmd.Mutations, mutation{
					Kind: mutDelete, Key: kv.Key.Clone(), Ts: readTs, TxnID: txnID,
				})
				writtenBytes += int64(len(kv.Key))
				deleted.Rows = append(deleted.Rows, kvpb.KeyValue{Key: kv.Key.Clone()})
			}
			resp.Responses = append(resp.Responses, deleted)
		case kvpb.ResolveIntent:
			cmd.Mutations = append(cmd.Mutations, mutation{
				Kind: mutResolve, Key: r.Key.Clone(), TxnID: r.ResolveTxnID,
				Commit: r.ResolveCommit, CommitTs: r.ResolveTs,
			})
			resp.Responses = append(resp.Responses, kvpb.Response{Method: r.Method})
		case kvpb.ResolveIntentRange:
			// The leaseholder enumerates the transaction's intents in the
			// span and replicates one point resolution per key, so every
			// replica applies the identical mutation list.
			iks, err := mvcc.IntentKeys(n.Engine(), r.Span(), r.ResolveTxnID)
			if err != nil {
				return nil, err
			}
			out := kvpb.Response{Method: r.Method}
			for _, k := range iks {
				cmd.Mutations = append(cmd.Mutations, mutation{
					Kind: mutResolve, Key: k, TxnID: r.ResolveTxnID,
					Commit: r.ResolveCommit, CommitTs: r.ResolveTs,
				})
				out.Rows = append(out.Rows, kvpb.KeyValue{Key: k})
			}
			resp.Responses = append(resp.Responses, out)
		default:
			return nil, fmt.Errorf("kvserver: unsupported method %s", r.Method)
		}
	}

	if len(cmd.Mutations) > 0 {
		payload, err := encodeCommand(cmd)
		if err != nil {
			return nil, err
		}
		if err := rs.group.ProposeCtx(ctx, n.id, payload); err != nil {
			return nil, err
		}
		rs.statsMu.Lock()
		rs.writtenBytes += writtenBytes
		rs.statsMu.Unlock()
	}
	return resp, nil
}

// evalRead serves a read request from the node's local engine.
func evalRead(n *Node, r kvpb.Request, readTs hlc.Timestamp, txnID uint64, dec RowDecoder) (kvpb.Response, error) {
	switch r.Method {
	case kvpb.Get:
		v, ok, err := mvcc.Get(n.Engine(), r.Key, readTs, txnID)
		if err != nil {
			return kvpb.Response{}, err
		}
		return kvpb.Response{Method: r.Method, Value: v, Exists: ok}, nil
	case kvpb.Scan:
		res, err := mvcc.Scan(n.Engine(), r.Span(), readTs, txnID, r.MaxKeys)
		if err != nil {
			return kvpb.Response{}, err
		}
		out := kvpb.Response{Method: r.Method, Rows: res.Rows, ResumeSpan: res.Resume}
		for _, kv := range res.Rows {
			out.ScannedBytes += int64(len(kv.Key) + len(kv.Value))
		}
		// Row-filter push-down (§8): drop non-matching rows before they
		// cross the process boundary. Requires a registered row codec;
		// undecodable rows are returned unfiltered (fail open — the SQL
		// layer re-applies the full predicate regardless).
		if len(r.Filter) > 0 && dec != nil {
			filter, ferr := rowfilter.Decode(r.Filter)
			if ferr != nil {
				return kvpb.Response{}, ferr
			}
			kept := out.Rows[:0]
			for _, kv := range out.Rows {
				acc, derr := dec(kv.Value)
				if derr != nil || filter.Matches(acc) {
					kept = append(kept, kv)
				}
			}
			out.Rows = kept
		}
		return out, nil
	default:
		return kvpb.Response{}, fmt.Errorf("kvserver: %s is not a read", r.Method)
	}
}
