package kvserver

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"crdbserverless/internal/faultinject"
	"crdbserverless/internal/hlc"
	"crdbserverless/internal/keys"
	"crdbserverless/internal/kvpb"
	"crdbserverless/internal/mvcc"
	"crdbserverless/internal/raftlite"
	"crdbserverless/internal/rowfilter"
	"crdbserverless/internal/timeutil"
	"crdbserverless/internal/trace"
)

// Identity is the authenticated identity a KV client (SQL node) presents —
// the role of the per-tenant mTLS certificate (§3.2.3).
type Identity struct {
	Tenant keys.TenantID
}

// Authorizer checks that a request from an authenticated identity may touch
// the keyspace it addresses. The cluster-virtualization layer (internal/core)
// supplies the implementation.
type Authorizer interface {
	Authorize(id Identity, ba *kvpb.BatchRequest) error
}

// ClusterConfig configures a Cluster.
type ClusterConfig struct {
	Clock timeutil.Clock
	// ReplicationFactor is the number of replicas per range (capped by the
	// node count). Defaults to 3.
	ReplicationFactor int
	// SplitSizeThreshold triggers a size-based split once a range has
	// absorbed this many logical write bytes. Defaults to 64 MiB.
	SplitSizeThreshold int64
	// LeaseDuration for range leases. Defaults to 9s.
	LeaseDuration time.Duration
	// Faults, when non-nil, arms fault-injection sites in every range's
	// replication group (see internal/faultinject).
	Faults *faultinject.Registry
	// DisableGroupCommit turns off proposal coalescing in every range's
	// replication group: each Propose runs its own commit round, the
	// pre-pipelining baseline (the write-path analogue of the LSM's
	// DisableWritePipelining).
	DisableGroupCommit bool
	// CommitOverhead is the fixed per-commit-round cost charged inside each
	// group's critical section (quorum RTT + log fsync). Zero — the default
	// and every deterministic configuration — charges nothing; benchmarks
	// set it to make the cost group commit amortizes visible.
	CommitOverhead time.Duration
	// CommitMetrics, when non-nil, is shared by every range's replication
	// group (raft.commit.batch_size and friends).
	CommitMetrics *raftlite.CommitMetrics
	// RaftLogRetention is the number of committed entries each range's
	// replication group keeps behind the slowest live replica. 0 (the
	// default) never truncates; with a positive value a replica that falls
	// behind the truncation point — a store revived after a crash — rejoins
	// via state snapshot instead of log replay.
	RaftLogRetention uint64
}

// rangeState is one range: descriptor, replication group, and stats.
type rangeState struct {
	// latch serializes batch evaluation on the range (reads and writes):
	// read evaluation records into the timestamp cache and write evaluation
	// consults it, and the two must not interleave.
	latch sync.Mutex
	desc  *RangeDescriptor
	group *raftlite.Group
	// descAtomic mirrors desc for readers that run under the replication
	// group's lock (snapshot generation and application): they must not take
	// the cluster lock — splitLocked holds it while calling into the group —
	// so they read the descriptor through this pointer instead.
	descAtomic atomic.Pointer[RangeDescriptor]
	// tsc is the range's timestamp cache (lost-update protection).
	tsc *tsCache

	statsMu      sync.Mutex
	writtenBytes int64
}

// engineSM adapts a node's engine to the raftlite.SnapshotStateMachine
// interface for one (range, node) replica.
type engineSM struct {
	n  *Node
	rs *rangeState
}

// Apply implements raftlite.StateMachine. After the command's mutations it
// persists the applied index under the range's raw applied key, so a store
// recovering from a crash can tell the replication group how far its durable
// state actually reached (Cluster.RecoverNode).
func (sm engineSM) Apply(index uint64, cmd []byte) error {
	c, err := decodeCommand(cmd)
	if err != nil {
		return err
	}
	e := sm.n.Engine()
	if err := applyMutations(e, c); err != nil {
		return err
	}
	desc := sm.rs.descAtomic.Load()
	return e.Set(appliedKey(desc.RangeID), keys.EncodeUint64(nil, index))
}

// Cluster is a set of KV nodes hosting the partitioned, replicated keyspace.
type Cluster struct {
	cfg   ClusterConfig
	clock timeutil.Clock
	hlc   *hlc.Clock

	// nodesMu guards the node map separately from mu: liveness callbacks
	// fire from lease checks that may run while mu is held.
	nodesMu struct {
		sync.RWMutex
		nodes     map[NodeID]*Node
		nodeOrder []NodeID
	}
	mu struct {
		sync.RWMutex
		ranges      map[RangeID]*rangeState
		nextRangeID RangeID
		auth        Authorizer
		rowDecoder  RowDecoder
	}
	dir metaDirectory
}

// NewCluster creates a cluster from the given nodes with a single range
// covering the entire keyspace.
func NewCluster(cfg ClusterConfig, nodes []*Node) (*Cluster, error) {
	if len(nodes) == 0 {
		return nil, errors.New("kvserver: cluster needs at least one node")
	}
	if cfg.Clock == nil {
		cfg.Clock = timeutil.NewRealClock()
	}
	if cfg.ReplicationFactor <= 0 {
		cfg.ReplicationFactor = 3
	}
	if cfg.SplitSizeThreshold <= 0 {
		cfg.SplitSizeThreshold = 64 << 20
	}
	if cfg.LeaseDuration <= 0 {
		cfg.LeaseDuration = 9 * time.Second
	}
	c := &Cluster{cfg: cfg, clock: cfg.Clock, hlc: hlc.NewClock(cfg.Clock)}
	c.nodesMu.nodes = make(map[NodeID]*Node)
	c.mu.ranges = make(map[RangeID]*rangeState)
	c.mu.nextRangeID = 1
	for _, n := range nodes {
		if _, dup := c.nodesMu.nodes[n.id]; dup {
			return nil, fmt.Errorf("kvserver: duplicate node id %d", n.id)
		}
		c.nodesMu.nodes[n.id] = n
		c.nodesMu.nodeOrder = append(c.nodesMu.nodeOrder, n.id)
	}
	// Initial range spans the whole keyspace.
	span := keys.Span{Key: keys.MinKey.Next(), EndKey: keys.MaxKey}
	if _, err := c.createRangeLocked(span, c.pickReplicasLocked()); err != nil {
		return nil, err
	}
	return c, nil
}

// Clock returns the cluster's HLC.
func (c *Cluster) Clock() *hlc.Clock { return c.hlc }

// WallClock returns the underlying physical clock.
func (c *Cluster) WallClock() timeutil.Clock { return c.clock }

// SetAuthorizer installs the SQL/KV boundary authorization check.
func (c *Cluster) SetAuthorizer(a Authorizer) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.mu.auth = a
}

// RowDecoder decodes a stored row value into the column accessor the
// row-filter evaluator consumes. The SQL layer registers its codec here;
// without one, pushed-down filters are ignored and full rows are returned
// (the pre-push-down behavior).
type RowDecoder func(value []byte) (rowfilter.RowAccessor, error)

// SetRowDecoder registers the row codec used for filter push-down (§8).
func (c *Cluster) SetRowDecoder(dec RowDecoder) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.mu.rowDecoder = dec
}

func (c *Cluster) rowDecoder() RowDecoder {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.mu.rowDecoder
}

// Node returns the node with the given ID.
func (c *Cluster) Node(id NodeID) (*Node, bool) {
	c.nodesMu.RLock()
	defer c.nodesMu.RUnlock()
	n, ok := c.nodesMu.nodes[id]
	return n, ok
}

// Nodes returns all nodes in insertion order.
func (c *Cluster) Nodes() []*Node {
	c.nodesMu.RLock()
	defer c.nodesMu.RUnlock()
	out := make([]*Node, 0, len(c.nodesMu.nodeOrder))
	for _, id := range c.nodesMu.nodeOrder {
		out = append(out, c.nodesMu.nodes[id])
	}
	return out
}

// liveness reports node health for lease decisions.
func (c *Cluster) liveness(id raftlite.NodeID) bool {
	n, ok := c.Node(id)
	return ok && n.Live()
}

// pickReplicasLocked chooses replica nodes for a new range, preferring an
// even spread (round-robin from a rotating offset).
func (c *Cluster) pickReplicasLocked() []NodeID {
	c.nodesMu.RLock()
	defer c.nodesMu.RUnlock()
	order := c.nodesMu.nodeOrder
	rf := c.cfg.ReplicationFactor
	if rf > len(order) {
		rf = len(order)
	}
	start := int(c.mu.nextRangeID) % len(order)
	out := make([]NodeID, 0, rf)
	for i := 0; i < rf; i++ {
		out = append(out, order[(start+i)%len(order)])
	}
	return out
}

// createRangeLocked registers a new range over span with the given replicas
// and inserts it into the directory.
func (c *Cluster) createRangeLocked(span keys.Span, replicas []NodeID) (*rangeState, error) {
	rs, err := c.newRangeStateLocked(span, replicas)
	if err != nil {
		return nil, err
	}
	if err := c.dir.insert(rs.desc); err != nil {
		delete(c.mu.ranges, rs.desc.RangeID)
		return nil, err
	}
	return rs, nil
}

// newRangeStateLocked allocates a range (ID, group, state) without touching
// the directory; split commits the directory change atomically via replace.
func (c *Cluster) newRangeStateLocked(span keys.Span, replicas []NodeID) (*rangeState, error) {
	id := c.mu.nextRangeID
	c.mu.nextRangeID++
	// The range state exists before its group: each replica's state machine
	// reads the descriptor (and writes the applied key) through it.
	rs := &rangeState{
		desc: &RangeDescriptor{
			RangeID:  id,
			Span:     span,
			Replicas: append([]NodeID(nil), replicas...),
		},
		tsc: newTSCache(),
	}
	rs.descAtomic.Store(rs.desc)
	sms := make([]raftlite.StateMachine, len(replicas))
	for i, nid := range replicas {
		n, ok := c.Node(nid)
		if !ok {
			return nil, fmt.Errorf("kvserver: unknown node %d", nid)
		}
		sms[i] = engineSM{n: n, rs: rs}
	}
	group, err := raftlite.NewGroup(raftlite.Config{
		RangeID:            int64(id),
		Clock:              c.clock,
		Liveness:           c.liveness,
		LeaseDuration:      c.cfg.LeaseDuration,
		Faults:             c.cfg.Faults,
		DisableGroupCommit: c.cfg.DisableGroupCommit,
		CommitOverhead:     c.cfg.CommitOverhead,
		CommitMetrics:      c.cfg.CommitMetrics,
		LogRetention:       c.cfg.RaftLogRetention,
	}, replicas, sms)
	if err != nil {
		return nil, err
	}
	rs.group = group
	c.mu.ranges[id] = rs
	return rs, nil
}

// rangeFor returns the range state containing key.
func (c *Cluster) rangeFor(key keys.Key) (*rangeState, error) {
	desc, err := c.dir.lookup(key)
	if err != nil {
		return nil, err
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	rs, ok := c.mu.ranges[desc.RangeID]
	if !ok {
		return nil, &kvpb.RangeNotFoundError{RangeID: int64(desc.RangeID)}
	}
	return rs, nil
}

// LookupRange returns the descriptor for the range containing key — the META
// range lookup. Reads of META tolerate staleness (follower reads, §3.2.5):
// callers cache results and rely on redirects when ranges move.
func (c *Cluster) LookupRange(key keys.Key) (*RangeDescriptor, error) {
	return c.dir.lookup(key)
}

// Descriptors returns all range descriptors in key order.
func (c *Cluster) Descriptors() []*RangeDescriptor { return c.dir.all() }

// SplitAt splits the range containing key so that key becomes a range start.
// Used both by size/load-based splitting and by the cluster-virtualization
// layer to place tenant boundaries on range boundaries (§3.2.1: the KV layer
// enforces that no two tenants share a range).
func (c *Cluster) SplitAt(key keys.Key) error {
	rs, err := c.rangeFor(key)
	if err != nil {
		return err
	}
	rs.latch.Lock()
	defer rs.latch.Unlock()
	return c.splitLocked(rs, key)
}

// splitLocked performs the split with rs.latch held.
func (c *Cluster) splitLocked(rs *rangeState, key keys.Key) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	desc := rs.desc
	if key.Equal(desc.Span.Key) {
		return nil // already a boundary
	}
	if !desc.Span.ContainsKey(key) {
		return &kvpb.RangeKeyMismatchError{RequestedKey: key, ActualSpan: desc.Span}
	}
	rightSpan := keys.Span{Key: key.Clone(), EndKey: desc.Span.EndKey}
	// The right side inherits the parent's replicas: data stays in place.
	right, err := c.newRangeStateLocked(rightSpan, desc.Replicas)
	if err != nil {
		return err
	}
	// The right group continues the parent's history: its data already lives
	// in every replica's engine at the parent's applied indexes. Seed it at
	// the parent's commit so a replica that was lagging in the parent reads
	// as lagging here too and heals via snapshot — a fresh group at commit
	// zero would consider such a replica caught up and its right-span state
	// would stay stale forever once the parent's log truncates.
	applied := make(map[NodeID]uint64, len(desc.Replicas))
	for _, nid := range desc.Replicas {
		if a, err := rs.group.AppliedIndex(nid); err == nil {
			applied[nid] = a
		}
	}
	right.group.SeedState(rs.group.CommitIndex(), applied)
	// Shrink the left side and commit both descriptors atomically.
	newLeft := desc.clone()
	newLeft.Span.EndKey = key.Clone()
	newLeft.Generation++
	if err := c.dir.replace(desc.RangeID, newLeft, right.desc); err != nil {
		delete(c.mu.ranges, right.desc.RangeID)
		return err
	}
	rs.desc = newLeft
	rs.descAtomic.Store(newLeft)
	// The new right range's lease starts with the parent's leaseholder so
	// serving continues without interruption.
	if lh, ok := rs.group.Leaseholder(); ok {
		//lint:allow faulterr lease transfer after split is best-effort; the right range serves leaseless until the next request acquires one
		_ = right.group.AcquireLease(lh)
	}
	// Split halves the parent's accumulated size statistic.
	rs.statsMu.Lock()
	rs.writtenBytes /= 2
	rs.statsMu.Unlock()
	return nil
}

// maybeSizeSplit splits rs down the middle if it has absorbed enough writes.
func (c *Cluster) maybeSizeSplit(rs *rangeState, leaseholder NodeID) {
	rs.statsMu.Lock()
	over := rs.writtenBytes > c.cfg.SplitSizeThreshold
	rs.statsMu.Unlock()
	if !over {
		return
	}
	n, ok := c.Node(leaseholder)
	if !ok {
		return
	}
	mid := middleKey(n, rs.desc.Span)
	if mid == nil {
		return
	}
	rs.latch.Lock()
	defer rs.latch.Unlock()
	//lint:allow faulterr size splits are opportunistic; a failed split is retried at the next threshold crossing
	_ = c.splitLocked(rs, mid)
}

// middleKey finds a user key roughly halfway through the span's data on the
// given node's engine.
func middleKey(n *Node, span keys.Span) keys.Key {
	res, err := mvcc.Scan(n.Engine(), span, hlc.Timestamp{WallTime: 1<<62 - 1}, 0, 0)
	if err != nil || len(res.Rows) < 2 {
		return nil
	}
	mid := res.Rows[len(res.Rows)/2].Key
	if mid.Equal(span.Key) {
		return nil
	}
	return mid
}

// LeaseCounts returns the number of valid range leases held by each node —
// the per-node lease series of Fig 12.
func (c *Cluster) LeaseCounts() map[NodeID]int {
	c.mu.RLock()
	ranges := make([]*rangeState, 0, len(c.mu.ranges))
	for _, rs := range c.mu.ranges {
		ranges = append(ranges, rs)
	}
	c.mu.RUnlock()
	sort.Slice(ranges, func(i, j int) bool { return ranges[i].desc.RangeID < ranges[j].desc.RangeID })
	out := make(map[NodeID]int)
	for _, rs := range ranges {
		if lh, ok := rs.group.Leaseholder(); ok {
			out[lh]++
		}
	}
	return out
}

// Tick runs periodic cluster maintenance: node ticks (AIMD, token refills,
// capacity estimation), lease acquisition for leaderless ranges, lease
// extension for healthy holders, and lease rebalancing toward an even spread.
func (c *Cluster) Tick() {
	for _, n := range c.Nodes() {
		n.Tick()
	}
	// RangeID order, not map order: lease maintenance triggers catch-up
	// applies, and those must consult fault-injection sites in a
	// deterministic sequence for seeded chaos runs to reproduce.
	ranges := c.rangesByID()

	for _, rs := range ranges {
		if lh, ok := rs.group.Leaseholder(); ok {
			if n, exists := c.Node(lh); exists && n.Live() {
				_ = rs.group.ExtendLease(lh)
				continue
			}
		}
		// Leaderless (or holder dead): the first live replica takes over
		// (AcquireLease applies any entries it missed before granting).
		for _, nid := range rs.group.Replicas() {
			if c.liveness(nid) {
				if err := rs.group.AcquireLease(nid); err == nil {
					break
				}
			}
		}
	}
	c.rebalanceLeases(ranges)
}

// rebalanceLeases moves leases from overloaded holders toward live nodes
// with fewer leases (mechanism (a) of §5.1.1, operating at a longer time
// scale than admission).
func (c *Cluster) rebalanceLeases(ranges []*rangeState) {
	counts := make(map[NodeID]int)
	for _, rs := range ranges {
		if lh, ok := rs.group.Leaseholder(); ok {
			counts[lh]++
		}
	}
	for _, rs := range ranges {
		lh, ok := rs.group.Leaseholder()
		if !ok {
			continue
		}
		// Find the live replica with the fewest leases.
		best := lh
		for _, nid := range rs.group.Replicas() {
			if c.liveness(nid) && counts[nid] < counts[best] {
				best = nid
			}
		}
		if best != lh && counts[lh]-counts[best] > 1 {
			// TransferLease catches the target up before handing over.
			if err := rs.group.TransferLease(lh, best); err == nil {
				counts[lh]--
				counts[best]++
			}
		}
	}
}

// ReplicaStatus reports one replica's replication progress.
type ReplicaStatus struct {
	RangeID RangeID
	Node    NodeID
	Applied uint64
	Commit  uint64
}

// ReplicaStatuses returns the applied and commit indexes of every replica of
// every range, ordered by (range, replica). The chaos harness's convergence
// invariant — all applied state reaches the commit index after quiescence —
// reads these.
func (c *Cluster) ReplicaStatuses() []ReplicaStatus {
	var out []ReplicaStatus
	for _, rs := range c.rangesByID() {
		commit := rs.group.CommitIndex()
		for _, nid := range rs.group.Replicas() {
			applied, err := rs.group.AppliedIndex(nid)
			if err != nil {
				continue
			}
			out = append(out, ReplicaStatus{
				RangeID: rs.desc.RangeID, Node: nid, Applied: applied, Commit: commit,
			})
		}
	}
	return out
}

// RaftSnapshots returns the total number of snapshot catch-ups performed
// across every range's replication group — replicas that fell behind the
// truncated log (crashed stores) and rejoined via state transfer.
func (c *Cluster) RaftSnapshots() int64 {
	var total int64
	for _, rs := range c.rangesByID() {
		total += rs.group.Snapshots()
	}
	return total
}

// CatchUpReplicas applies pending committed entries on every replica of every
// range — the quiescence step before checking convergence, standing in for
// the raft log replay a revived node performs.
func (c *Cluster) CatchUpReplicas() error {
	var firstErr error
	for _, rs := range c.rangesByID() {
		for _, nid := range rs.group.Replicas() {
			if err := rs.group.CatchUp(nid); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

// rangesByID snapshots the range states in RangeID order.
func (c *Cluster) rangesByID() []*rangeState {
	c.mu.RLock()
	ranges := make([]*rangeState, 0, len(c.mu.ranges))
	for _, rs := range c.mu.ranges {
		ranges = append(ranges, rs)
	}
	c.mu.RUnlock()
	sort.Slice(ranges, func(i, j int) bool { return ranges[i].desc.RangeID < ranges[j].desc.RangeID })
	return ranges
}

// RunGC reclaims old MVCC versions across every range and node, retaining
// versions newer than keepAfter (and always the newest committed version and
// all intents). It returns the number of versions removed. This is the
// storage-reclamation path behind "the only cost is for storage" (§4.2.3):
// suspended tenants' data keeps getting compacted down.
func (c *Cluster) RunGC(keepAfter hlc.Timestamp) (int, error) {
	removed := 0
	c.mu.RLock()
	ranges := make([]*rangeState, 0, len(c.mu.ranges))
	for _, rs := range c.mu.ranges {
		ranges = append(ranges, rs)
	}
	c.mu.RUnlock()
	// GC visits ranges in RangeID order so injected storage faults land on a
	// deterministic range regardless of map iteration.
	sort.Slice(ranges, func(i, j int) bool { return ranges[i].desc.RangeID < ranges[j].desc.RangeID })
	for _, rs := range ranges {
		rs.latch.Lock()
		for _, nid := range rs.desc.Replicas {
			n, ok := c.Node(nid)
			if !ok {
				continue
			}
			nRemoved, err := mvcc.GCOldVersions(n.Engine(), rs.desc.Span, keepAfter)
			if err != nil {
				rs.latch.Unlock()
				return removed, err
			}
			removed += nRemoved
		}
		rs.latch.Unlock()
	}
	return removed, nil
}

// TenantStorageBytes reports the logical bytes a tenant stores (latest
// visible versions, summed over one replica) — the storage-billing input for
// suspended tenants (§6.2: storage is the only cost at zero compute).
func (c *Cluster) TenantStorageBytes(tenant keys.TenantID) (int64, error) {
	span := keys.MakeTenantSpan(tenant)
	c.mu.RLock()
	ranges := make([]*rangeState, 0)
	for _, rs := range c.mu.ranges {
		if rs.desc.Span.Overlaps(span) {
			ranges = append(ranges, rs)
		}
	}
	c.mu.RUnlock()
	sort.Slice(ranges, func(i, j int) bool { return ranges[i].desc.RangeID < ranges[j].desc.RangeID })
	var total int64
	readTs := c.hlc.Now()
	for _, rs := range ranges {
		// Read from any replica; storage accounting tolerates staleness.
		n, ok := c.Node(rs.desc.Replicas[0])
		if !ok {
			continue
		}
		overlap := rs.desc.Span
		if overlap.Key.Less(span.Key) {
			overlap.Key = span.Key
		}
		if span.EndKey.Less(overlap.EndKey) {
			overlap.EndKey = span.EndKey
		}
		res, err := mvcc.Scan(n.Engine(), overlap, readTs, 0, 0)
		if err != nil {
			return 0, err
		}
		for _, kv := range res.Rows {
			total += int64(len(kv.Key) + len(kv.Value))
		}
	}
	return total, nil
}

// Close shuts down all nodes.
func (c *Cluster) Close() {
	for _, n := range c.Nodes() {
		n.Close()
	}
}

var errRetryExhausted = errors.New("kvserver: internal retry budget exhausted")

// Batch executes a batch on the given node — the KV RPC entry point. The
// node must hold the lease for the addressed range (or the batch must be a
// follower read on a node holding a replica). Authorization (§3.2.3) runs
// before any data access.
func (c *Cluster) Batch(ctx context.Context, nodeID NodeID, id Identity, ba *kvpb.BatchRequest) (*kvpb.BatchResponse, error) {
	ctx, sp := trace.StartSpan(ctx, "kv.eval")
	defer sp.Finish()
	sp.SetAttr("kv.node", nodeID)
	n, ok := c.Node(nodeID)
	if !ok {
		return nil, fmt.Errorf("kvserver: unknown node %d", nodeID)
	}
	c.mu.RLock()
	auth := c.mu.auth
	c.mu.RUnlock()
	if auth != nil {
		if err := auth.Authorize(id, ba); err != nil {
			return nil, err
		}
	}
	if len(ba.Requests) == 0 {
		return &kvpb.BatchResponse{Timestamp: ba.ReadTs()}, nil
	}

	// Locate the range; every request in the batch must fall within it
	// (DistSender splits batches at range boundaries).
	rs, err := c.rangeFor(ba.Requests[0].Key)
	if err != nil {
		return nil, err
	}
	for _, r := range ba.Requests {
		span := r.Span()
		if !rs.desc.Span.ContainsKey(span.Key) {
			return nil, &kvpb.RangeKeyMismatchError{RequestedKey: span.Key, ActualSpan: rs.desc.Span}
		}
		if !span.IsPoint() && rs.desc.Span.EndKey.Less(span.EndKey) {
			return nil, &kvpb.RangeKeyMismatchError{RequestedKey: span.EndKey, ActualSpan: rs.desc.Span}
		}
	}

	// Lease check. Follower reads only need a local replica.
	if ba.FollowerRead && ba.IsReadOnly() {
		if !hasReplica(rs, nodeID) {
			return nil, &kvpb.RangeNotFoundError{RangeID: int64(rs.desc.RangeID)}
		}
	} else {
		lh, ok := rs.group.Leaseholder()
		if !ok {
			// Try to acquire for ourselves.
			// AcquireLease itself catches the node up to the commit index
			// before granting, so the new leaseholder serves current state.
			if err := rs.group.AcquireLease(nodeID); err != nil {
				var nle *kvpb.NotLeaseholderError
				if errors.As(err, &nle) {
					return nil, nle
				}
				return nil, &kvpb.NotLeaseholderError{RangeID: int64(rs.desc.RangeID)}
			}
		} else if lh != nodeID {
			return nil, &kvpb.NotLeaseholderError{RangeID: int64(rs.desc.RangeID), Leaseholder: lh}
		}
	}

	sp.SetAttr("kv.range", rs.desc.RangeID)

	// Admission control (§5.1): writes pass the write queue, everything
	// passes the CPU queue.
	admitStart := c.clock.Now()
	if err := n.admitWrite(ctx, ba); err != nil {
		return nil, err
	}
	releaseCPU, err := n.admitCPU(ctx, ba)
	if err != nil {
		return nil, err
	}
	sp.SetAttr("admission.wait", c.clock.Since(admitStart))

	resp, evalErr := c.evaluateBatch(ctx, n, rs, ba)
	// Charge ground-truth CPU: the work happens whether or not evaluation
	// errored (conflict checks consume CPU too), but successful responses
	// carry the payload costs.
	cost := n.chargeCPU(ba, resp, !ba.Colocated)
	releaseCPU(cost)
	if evalErr != nil {
		return nil, evalErr
	}
	// Size-based split check runs outside the range latch.
	if !ba.IsReadOnly() {
		c.maybeSizeSplit(rs, nodeID)
	}
	return resp, nil
}

func hasReplica(rs *rangeState, nodeID NodeID) bool {
	for _, r := range rs.desc.Replicas {
		if r == nodeID {
			return true
		}
	}
	return false
}

// evaluateBatch runs the batch against the node's engine, proposing writes
// through the range's replication group.
func (c *Cluster) evaluateBatch(ctx context.Context, n *Node, rs *rangeState, ba *kvpb.BatchRequest) (*kvpb.BatchResponse, error) {
	readTs := ba.ReadTs()
	if readTs.IsEmpty() {
		readTs = c.hlc.Now()
	}
	var txnID uint64
	if ba.Txn != nil {
		txnID = ba.Txn.ID
	}

	resp := &kvpb.BatchResponse{Timestamp: readTs}

	// All evaluation runs under the range latch: reads record into the
	// timestamp cache and writes consult it, so a write can never land
	// below a timestamp at which another transaction already read the key
	// (the lost-update protection CRDB implements with its timestamp
	// cache). Follower reads are intentionally stale and skip the cache.
	rs.latch.Lock()
	defer rs.latch.Unlock()

	// Reads record into the timestamp cache only after the whole batch has
	// been checked: a batch's own reads must not push its own writes (they
	// all happen atomically at one timestamp).
	var readSpans []keys.Span
	defer func() {
		if ba.FollowerRead {
			return // intentionally stale; not a serializable read point
		}
		for _, sp := range readSpans {
			rs.tsc.recordRead(sp, readTs, txnID)
		}
	}()

	if ba.IsReadOnly() {
		for _, r := range ba.Requests {
			out, err := evalRead(n, r, readTs, txnID, c.rowDecoder())
			if err != nil {
				return nil, err
			}
			readSpans = append(readSpans, r.Span())
			resp.Responses = append(resp.Responses, out)
		}
		return resp, nil
	}

	// checkWrite combines the timestamp-cache push with MVCC conflicts.
	checkWrite := func(key keys.Key) error {
		if cached := rs.tsc.maxReadOther(key, txnID); !cached.Less(readTs) {
			return &kvpb.WriteTooOldError{Key: key.Clone(), ActualTs: cached.Next()}
		}
		return mvcc.CheckWriteConflict(n.Engine(), key, readTs, txnID)
	}

	var cmd command
	var writtenBytes int64
	for _, r := range ba.Requests {
		switch r.Method {
		case kvpb.Get, kvpb.Scan:
			out, err := evalRead(n, r, readTs, txnID, c.rowDecoder())
			if err != nil {
				return nil, err
			}
			readSpans = append(readSpans, r.Span())
			resp.Responses = append(resp.Responses, out)
		case kvpb.Put:
			if err := checkWrite(r.Key); err != nil {
				return nil, err
			}
			cmd.Mutations = append(cmd.Mutations, mutation{
				Kind: mutPut, Key: r.Key.Clone(), Ts: readTs, TxnID: txnID, Value: r.Value,
			})
			writtenBytes += int64(len(r.Key) + len(r.Value))
			resp.Responses = append(resp.Responses, kvpb.Response{Method: r.Method})
		case kvpb.Delete:
			if err := checkWrite(r.Key); err != nil {
				return nil, err
			}
			cmd.Mutations = append(cmd.Mutations, mutation{
				Kind: mutDelete, Key: r.Key.Clone(), Ts: readTs, TxnID: txnID,
			})
			writtenBytes += int64(len(r.Key))
			resp.Responses = append(resp.Responses, kvpb.Response{Method: r.Method})
		case kvpb.DeleteRange:
			res, err := mvcc.Scan(n.Engine(), r.Span(), readTs, txnID, 0)
			if err != nil {
				return nil, err
			}
			// Report the deleted keys so a transactional caller can track
			// (and later resolve) the intents this request lays down.
			readSpans = append(readSpans, r.Span())
			deleted := kvpb.Response{Method: r.Method}
			for _, kv := range res.Rows {
				if err := checkWrite(kv.Key); err != nil {
					return nil, err
				}
				cmd.Mutations = append(cmd.Mutations, mutation{
					Kind: mutDelete, Key: kv.Key.Clone(), Ts: readTs, TxnID: txnID,
				})
				writtenBytes += int64(len(kv.Key))
				deleted.Rows = append(deleted.Rows, kvpb.KeyValue{Key: kv.Key.Clone()})
			}
			resp.Responses = append(resp.Responses, deleted)
		case kvpb.ResolveIntent:
			cmd.Mutations = append(cmd.Mutations, mutation{
				Kind: mutResolve, Key: r.Key.Clone(), TxnID: r.ResolveTxnID,
				Commit: r.ResolveCommit, CommitTs: r.ResolveTs,
			})
			resp.Responses = append(resp.Responses, kvpb.Response{Method: r.Method})
		case kvpb.ResolveIntentRange:
			// The leaseholder enumerates the transaction's intents in the
			// span and replicates one point resolution per key, so every
			// replica applies the identical mutation list.
			iks, err := mvcc.IntentKeys(n.Engine(), r.Span(), r.ResolveTxnID)
			if err != nil {
				return nil, err
			}
			out := kvpb.Response{Method: r.Method}
			for _, k := range iks {
				cmd.Mutations = append(cmd.Mutations, mutation{
					Kind: mutResolve, Key: k, TxnID: r.ResolveTxnID,
					Commit: r.ResolveCommit, CommitTs: r.ResolveTs,
				})
				out.Rows = append(out.Rows, kvpb.KeyValue{Key: k})
			}
			resp.Responses = append(resp.Responses, out)
		default:
			return nil, fmt.Errorf("kvserver: unsupported method %s", r.Method)
		}
	}

	if len(cmd.Mutations) > 0 {
		payload, err := encodeCommand(cmd)
		if err != nil {
			return nil, err
		}
		if err := rs.group.ProposeCtx(ctx, n.id, payload); err != nil {
			return nil, err
		}
		rs.statsMu.Lock()
		rs.writtenBytes += writtenBytes
		rs.statsMu.Unlock()
	}
	return resp, nil
}

// evalRead serves a read request from the node's local engine.
func evalRead(n *Node, r kvpb.Request, readTs hlc.Timestamp, txnID uint64, dec RowDecoder) (kvpb.Response, error) {
	switch r.Method {
	case kvpb.Get:
		v, ok, err := mvcc.Get(n.Engine(), r.Key, readTs, txnID)
		if err != nil {
			return kvpb.Response{}, err
		}
		return kvpb.Response{Method: r.Method, Value: v, Exists: ok}, nil
	case kvpb.Scan:
		res, err := mvcc.Scan(n.Engine(), r.Span(), readTs, txnID, r.MaxKeys)
		if err != nil {
			return kvpb.Response{}, err
		}
		out := kvpb.Response{Method: r.Method, Rows: res.Rows, ResumeSpan: res.Resume}
		for _, kv := range res.Rows {
			out.ScannedBytes += int64(len(kv.Key) + len(kv.Value))
		}
		// Row-filter push-down (§8): drop non-matching rows before they
		// cross the process boundary. Requires a registered row codec;
		// undecodable rows are returned unfiltered (fail open — the SQL
		// layer re-applies the full predicate regardless).
		if len(r.Filter) > 0 && dec != nil {
			filter, ferr := rowfilter.Decode(r.Filter)
			if ferr != nil {
				return kvpb.Response{}, ferr
			}
			kept := out.Rows[:0]
			for _, kv := range out.Rows {
				acc, derr := dec(kv.Value)
				if derr != nil || filter.Matches(acc) {
					kept = append(kept, kv)
				}
			}
			out.Rows = kept
		}
		return out, nil
	default:
		return kvpb.Response{}, fmt.Errorf("kvserver: %s is not a read", r.Method)
	}
}
