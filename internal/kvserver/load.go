package kvserver

import (
	"math"
	"sort"
	"sync"
	"time"

	"crdbserverless/internal/hlc"
	"crdbserverless/internal/keys"
	"crdbserverless/internal/mvcc"
)

// Per-range load tracking: exponentially decaying request/write-byte
// counters plus a key-sample reservoir, the signal behind load-based
// splitting, cold-range merging, and QPS-weighted lease placement.
//
// Decay is clock-driven, not tick-driven: a counter carries the timestamp of
// its last update, and every read or update first scales the stored weight
// by 2^(-dt/halfLife). Under a seeded (manual) clock the decay factors are
// exact functions of the op sequence, so every decision derived from load is
// deterministic and chaos replays stay byte-identical. The weight-to-rate
// conversion is qps = weight * ln2 / halfLife: a steady arrival rate r
// converges to weight r*halfLife/ln2, so the estimate reads in requests per
// second once the counter has seen about one half-life of traffic.

const (
	// loadSampleCap bounds the per-range key reservoir.
	loadSampleCap = 32
	// loadSplitMinSamples is the minimum reservoir size before a sampled
	// split key is trusted; below it the bounded-scan fallback runs.
	loadSplitMinSamples = 8
	// middleKeyScanLimit bounds the fallback split-key scan. The old
	// middleKey materialized every row of the span; the fallback reads at
	// most this many rows and takes their midpoint.
	middleKeyScanLimit = 256
	// loadSignificanceWeight is the decayed weight below which a range is
	// treated as idle: the count-based lease balancer ignores hotter ranges
	// (the load-aware pass owns them) and the load-aware pass ignores colder
	// ones.
	loadSignificanceWeight = 1.0
	// loadRebalanceMinWeight is the decayed weight a range must carry before
	// the load balancer will move its lease. Moving a barely-warm range costs
	// a NotLeaseholder retry storm and shifts almost no load; those ranges
	// are left to decay back under the count balancer's threshold instead.
	loadRebalanceMinWeight = 8.0
)

// decayedCounter is an exponentially decaying accumulator with lazy,
// clock-driven decay. The zero value is ready to use.
type decayedCounter struct {
	mu     sync.Mutex
	weight float64
	last   time.Time
}

// decayLocked scales the stored weight down to now.
func (d *decayedCounter) decayLocked(now time.Time, halfLife time.Duration) {
	if !d.last.IsZero() && halfLife > 0 {
		if dt := now.Sub(d.last); dt > 0 {
			d.weight *= math.Exp2(-float64(dt) / float64(halfLife))
		}
	}
	if now.After(d.last) {
		d.last = now
	}
}

// add decays to now, then adds delta (which may be negative — lease
// transfers move a range's weight between node accumulators). The weight is
// clamped at zero: transfer bookkeeping is approximate and must never drive
// a node's load negative.
func (d *decayedCounter) add(now time.Time, halfLife time.Duration, delta float64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.decayLocked(now, halfLife)
	d.weight += delta
	if d.weight < 0 {
		d.weight = 0
	}
}

// value returns the weight decayed to now.
func (d *decayedCounter) value(now time.Time, halfLife time.Duration) float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.decayLocked(now, halfLife)
	return d.weight
}

// splitmix64 is an 8-byte deterministic PRNG (Steele et al.'s SplitMix64)
// for reservoir admission decisions. A math/rand source would cost ~5KB per
// range — ruinous at fleet scale where suspended tenants keep their range
// state resident — and reservoir sampling needs nothing stronger.
type splitmix64 uint64

func (s *splitmix64) next() uint64 {
	*s += 0x9e3779b97f4a7c15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// rangeLoad is one range's load signal: decayed request and write-byte
// weights plus a reservoir of request start keys. The reservoir's RNG is
// seeded by RangeID, so under a single-threaded deterministic workload the
// sampled split key is a pure function of the op sequence.
type rangeLoad struct {
	mu          sync.Mutex
	weight      float64 // decayed request count
	writeWeight float64 // decayed logical write bytes
	last        time.Time
	samples     []keys.Key
	seen        int64
	rng         splitmix64
}

func newRangeLoad(id RangeID) *rangeLoad {
	return &rangeLoad{rng: splitmix64(id)}
}

func (l *rangeLoad) decayLocked(now time.Time, halfLife time.Duration) {
	if !l.last.IsZero() && halfLife > 0 {
		if dt := now.Sub(l.last); dt > 0 {
			f := math.Exp2(-float64(dt) / float64(halfLife))
			l.weight *= f
			l.writeWeight *= f
		}
	}
	if now.After(l.last) {
		l.last = now
	}
}

// record absorbs one batch: requests request-units, writeBytes logical write
// bytes, and one sampled key (nil to skip sampling).
func (l *rangeLoad) record(now time.Time, halfLife time.Duration, requests int, writeBytes int64, sample keys.Key) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.decayLocked(now, halfLife)
	l.weight += float64(requests)
	l.writeWeight += float64(writeBytes)
	if sample == nil {
		return
	}
	l.seen++
	if len(l.samples) < loadSampleCap {
		l.samples = append(l.samples, sample.Clone())
	} else if j := l.rng.next() % uint64(l.seen); j < loadSampleCap {
		l.samples[j] = sample.Clone()
	}
}

// weightAt returns the decayed request weight at now.
func (l *rangeLoad) weightAt(now time.Time, halfLife time.Duration) float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.decayLocked(now, halfLife)
	return l.weight
}

// qps returns the decayed requests-per-second estimate at now.
func (l *rangeLoad) qps(now time.Time, halfLife time.Duration) float64 {
	if halfLife <= 0 {
		return 0
	}
	return l.weightAt(now, halfLife) * math.Ln2 / halfLife.Seconds()
}

// splitKey returns the load-weighted split point for span: the median of the
// sampled request keys, which bisects the recent load rather than the
// keyspace. Returns nil when the reservoir is too small or every sample sits
// on the span start (a single hot key cannot be split).
func (l *rangeLoad) splitKey(span keys.Span) keys.Key {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.samples) < loadSplitMinSamples {
		return nil
	}
	sorted := make([]keys.Key, 0, len(l.samples))
	for _, k := range l.samples {
		if span.ContainsKey(k) {
			sorted = append(sorted, k)
		}
	}
	if len(sorted) < loadSplitMinSamples {
		return nil
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Less(sorted[j]) })
	// Walk forward from the median to the first key that is a legal
	// boundary (strictly inside the span).
	for i := len(sorted) / 2; i < len(sorted); i++ {
		if span.Key.Less(sorted[i]) {
			return sorted[i].Clone()
		}
	}
	return nil
}

// halve splits the load signal in two at key: the receiver keeps the weight
// and samples of the left half, the returned rangeLoad carries the right
// half. Mirrors what splitting does to writtenBytes.
func (l *rangeLoad) halve(key keys.Key, right *rangeLoad) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.weight /= 2
	l.writeWeight /= 2
	right.mu.Lock()
	right.weight = l.weight
	right.writeWeight = l.writeWeight
	right.last = l.last
	var lo, hi []keys.Key
	for _, k := range l.samples {
		if k.Less(key) {
			lo = append(lo, k)
		} else {
			hi = append(hi, k)
		}
	}
	l.samples, l.seen = lo, int64(len(lo))
	right.samples, right.seen = hi, int64(len(hi))
	right.mu.Unlock()
}

// absorb folds other's load into l (the merge counterpart of halve).
func (l *rangeLoad) absorb(other *rangeLoad) {
	other.mu.Lock()
	ow, owb, osamples, olast := other.weight, other.writeWeight, other.samples, other.last
	other.mu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	if olast.After(l.last) {
		l.decayLocked(olast, 0) // only bumps last; weights already decayed lazily
	}
	l.weight += ow
	l.writeWeight += owb
	for _, k := range osamples {
		if len(l.samples) < loadSampleCap {
			l.samples = append(l.samples, k)
		}
	}
	l.seen += int64(len(osamples))
}

// boundedMiddleKey is the fallback split point for ranges with no load
// samples yet: a bounded scan (at most middleKeyScanLimit rows, at the
// maximum timestamp) whose middle row becomes the boundary. Unlike the old
// middleKey it never materializes the whole span.
func boundedMiddleKey(n *Node, span keys.Span) keys.Key {
	res, err := mvcc.Scan(n.Engine(), span, hlc.Timestamp{WallTime: 1<<62 - 1}, 0, middleKeyScanLimit)
	if err != nil || len(res.Rows) < 2 {
		return nil
	}
	mid := res.Rows[len(res.Rows)/2].Key
	if mid.Equal(span.Key) {
		return nil
	}
	return mid
}
