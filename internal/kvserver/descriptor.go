// Package kvserver implements the shared transactional KV layer (§3.1 of the
// paper): a cluster of nodes hosting replicated ranges, range splits by size
// and load, a META directory mapping keys to ranges, DistSender-style request
// routing with redirect handling, per-node admission control, and the
// authorization hook at the SQL/KV boundary.
package kvserver

import (
	"fmt"
	"sort"
	"sync"

	"crdbserverless/internal/keys"
	"crdbserverless/internal/kvpb"
)

// RangeID identifies a range.
type RangeID int64

// NodeID identifies a KV node.
type NodeID = kvpb.NodeID

// RangeDescriptor describes one range: its key span and replica placement.
type RangeDescriptor struct {
	RangeID  RangeID
	Span     keys.Span
	Replicas []NodeID
	// Generation increments on every split or replica change, letting
	// caches detect staleness.
	Generation int64
}

// ContainsKey reports whether the range's span contains k.
func (d *RangeDescriptor) ContainsKey(k keys.Key) bool { return d.Span.ContainsKey(k) }

// String implements fmt.Stringer.
func (d *RangeDescriptor) String() string {
	return fmt.Sprintf("r%d:%s replicas=%v gen=%d", d.RangeID, d.Span, d.Replicas, d.Generation)
}

// metaDirectory is the range-addressing index — the role of the META range
// (§3.2.5). Lookups may be served from stale snapshots (modeling follower
// reads); the source of truth is updated transactionally on splits.
type metaDirectory struct {
	mu sync.RWMutex
	// byStart holds descriptors sorted by span start key; spans partition
	// the keyspace with no overlaps.
	byStart []*RangeDescriptor
}

// lookup returns the descriptor whose span contains k.
func (m *metaDirectory) lookup(k keys.Key) (*RangeDescriptor, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	i := sort.Search(len(m.byStart), func(i int) bool {
		return k.Less(m.byStart[i].Span.Key)
	})
	if i == 0 {
		return nil, fmt.Errorf("kvserver: no range contains key %s", k)
	}
	d := m.byStart[i-1]
	if !d.ContainsKey(k) {
		return nil, fmt.Errorf("kvserver: no range contains key %s", k)
	}
	return d.clone(), nil
}

// all returns a snapshot of all descriptors in key order.
func (m *metaDirectory) all() []*RangeDescriptor {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]*RangeDescriptor, len(m.byStart))
	for i, d := range m.byStart {
		out[i] = d.clone()
	}
	return out
}

// insert adds a descriptor; spans must not overlap existing ones.
func (m *metaDirectory) insert(d *RangeDescriptor) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, existing := range m.byStart {
		if existing.Span.Overlaps(d.Span) {
			return fmt.Errorf("kvserver: descriptor %s overlaps %s", d, existing)
		}
	}
	m.byStart = append(m.byStart, d.clone())
	sort.Slice(m.byStart, func(i, j int) bool {
		return m.byStart[i].Span.Key.Less(m.byStart[j].Span.Key)
	})
	return nil
}

// replace atomically swaps old for the given descriptors (the split commit).
func (m *metaDirectory) replace(old RangeID, with ...*RangeDescriptor) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	idx := -1
	for i, d := range m.byStart {
		if d.RangeID == old {
			idx = i
			break
		}
	}
	if idx == -1 {
		return fmt.Errorf("kvserver: range %d not in directory", old)
	}
	out := make([]*RangeDescriptor, 0, len(m.byStart)-1+len(with))
	out = append(out, m.byStart[:idx]...)
	out = append(out, m.byStart[idx+1:]...)
	for _, d := range with {
		out = append(out, d.clone())
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].Span.Key.Less(out[j].Span.Key)
	})
	m.byStart = out
	return nil
}

func (d *RangeDescriptor) clone() *RangeDescriptor {
	out := *d
	out.Replicas = append([]NodeID(nil), d.Replicas...)
	return &out
}
